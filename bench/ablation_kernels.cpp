/// \file ablation_kernels.cpp
/// \brief End-to-end ablation of the cracking kernel choice (§4.2 / [44]):
/// the same adaptive-indexing workload executed with the branchy scalar
/// kernel, the predicated out-of-place kernel, the SIMD compress-store
/// tier, and parallel cracking (static slices vs. work-stealing morsels)
/// at several thread counts.

#include "bench_common.h"
#include "cracking/crack_kernels_simd.h"
#include "cracking/cracker_column.h"
#include "util/timer.h"

using namespace holix;
using namespace holix::bench;

int main() {
  const BenchEnv env = ReadEnv(/*rows=*/1u << 22, /*queries=*/500);
  PrintScaleNote(env, 1);

  WorkloadSpec spec;
  spec.num_queries = env.queries;
  spec.num_attributes = 1;
  spec.domain = env.domain;
  spec.pattern = QueryPattern::kRandom;
  spec.seed = env.seed;
  const auto queries = GenerateWorkload(spec);
  const auto base = GenerateUniformColumn(env.rows, env.domain, env.seed);

  struct Variant {
    std::string label;
    CrackAlgo algo;
    size_t threads;
    ParallelCrackMode mode;
  };
  std::vector<Variant> variants = {
      {"scalar (branchy, in-place)", CrackAlgo::kScalar, 1,
       ParallelCrackMode::kMorsels},
      {"out-of-place (predicated)", CrackAlgo::kOutOfPlace, 1,
       ParallelCrackMode::kMorsels},
      {"simd (" + std::string(SimdLevelName(DetectSimdLevel())) + ")",
       CrackAlgo::kSimd, 1, ParallelCrackMode::kMorsels},
  };
  for (size_t th = 2; th <= env.cores; th *= 2) {
    variants.push_back({"parallel-static x" + std::to_string(th),
                        CrackAlgo::kParallel, th,
                        ParallelCrackMode::kStaticSlices});
    variants.push_back({"parallel-morsel x" + std::to_string(th),
                        CrackAlgo::kParallel, th,
                        ParallelCrackMode::kMorsels});
  }

  ReportTable t("Ablation: cracking kernel, 1-attribute workload");
  t.SetHeader({"kernel", "total cost (s)", "first query (s)"});
  for (const auto& v : variants) {
    ThreadPool pool(v.threads);
    CrackConfig cfg;
    cfg.algo = v.algo;
    cfg.pool = &pool;
    cfg.parallel_threads = v.threads;
    cfg.parallel_mode = v.mode;
    CrackerColumn<int64_t> col("a0", base);
    ResponseSeries series;
    for (const auto& q : queries) {
      Timer timer;
      col.SelectRange(q.low, q.high, cfg);
      series.Add(timer.ElapsedSeconds());
    }
    t.AddRow({v.label, FormatSeconds(series.Total()),
              FormatSeconds(series.latencies()[0])});
  }
  t.Print();
  SaveBenchJson(t, "ablation_kernels");
  std::printf("\n# [44]: out-of-place beats the branchy kernel, SIMD beats "
              "both; parallel cracking accelerates the big early cracks and "
              "morsel stealing beats static slices under skew\n");
  return 0;
}
