/// \file ablation_monitor.cpp
/// \brief Ablation of the CPU-monitoring design (§4.1/§4.2): the tuning
/// cycle interval (the paper uses 1 s — at laptop scale we sweep down to
/// 0.5 ms) and the monitor implementation (deterministic slot accounting
/// vs. kernel statistics from /proc/stat).

#include "bench_common.h"

using namespace holix;
using namespace holix::bench;

int main() {
  const BenchEnv env = ReadEnv(/*rows=*/1u << 21, /*queries=*/600);
  const size_t attrs = 10;
  PrintScaleNote(env, attrs);

  WorkloadSpec spec;
  spec.num_queries = env.queries;
  spec.num_attributes = attrs;
  spec.domain = env.domain;
  spec.pattern = QueryPattern::kRandom;
  spec.selectivity = 0.001;
  spec.seed = env.seed;
  const auto queries = GenerateWorkload(spec);

  {
    ReportTable t("Ablation: tuning-cycle monitor interval");
    t.SetHeader({"interval (ms)", "total cost (s)", "activations",
                 "worker cracks"});
    for (double ms : {0.5, 1.0, 2.0, 5.0, 10.0, 50.0}) {
      DatabaseOptions opts =
          HolisticOptions(env.cores / 2, env.cores / 4, 2, env.cores);
      opts.holistic.monitor_interval_seconds = ms / 1000.0;
      Database db(opts);
      LoadUniformTable(db, "r", attrs, env.rows, env.domain, env.seed);
      const RunResult r =
          RunWorkload(db, "r", MakeAttributeNames(attrs), queries);
      t.AddRow({FormatDouble(ms, 1), FormatSeconds(r.series.Total()),
                std::to_string(db.holistic()->Activations().size()),
                std::to_string(db.holistic()->TotalWorkerCracks())});
    }
    t.Print();
    SaveBenchJson(t, "ablation_monitor_interval");
  }

  {
    ReportTable t("Ablation: monitor implementation");
    t.SetHeader({"monitor", "total cost (s)", "worker cracks"});
    for (bool proc_stat : {false, true}) {
      DatabaseOptions opts =
          HolisticOptions(env.cores / 2, env.cores / 4, 2, env.cores);
      opts.use_proc_stat_monitor = proc_stat;
      opts.holistic.monitor_interval_seconds = proc_stat ? 0.02 : 0.001;
      Database db(opts);
      LoadUniformTable(db, "r", attrs, env.rows, env.domain, env.seed);
      const RunResult r =
          RunWorkload(db, "r", MakeAttributeNames(attrs), queries);
      t.AddRow({proc_stat ? "kernel stats (/proc/stat)" : "slot accounting",
                FormatSeconds(r.series.Total()),
                std::to_string(db.holistic()->TotalWorkerCracks())});
    }
    t.Print();
    SaveBenchJson(t, "ablation_monitor_impl");
  }
  std::printf("\n# shorter cycles react faster at laptop scale; kernel "
              "statistics match the paper's mechanism but need longer "
              "windows for stable readings\n");
  return 0;
}
