/// \file ablation_pivot_policy.cpp
/// \brief Ablation of §4.2's "Index Refinement" design decision: workers
/// picking random pivots vs. targeting the biggest or smallest piece.
/// The paper claims random pivots are the most cost-efficient because the
/// targeted policies must discover piece sizes (an O(#pieces) scan per
/// refinement here; a priority queue with update costs in general), while
/// random choice is free and converges to a balanced index anyway.

#include "bench_common.h"

using namespace holix;
using namespace holix::bench;

int main() {
  const BenchEnv env = ReadEnv(/*rows=*/1u << 21, /*queries=*/1000);
  const size_t attrs = 10;
  PrintScaleNote(env, attrs);

  WorkloadSpec spec;
  spec.num_queries = env.queries;
  spec.num_attributes = attrs;
  spec.domain = env.domain;
  spec.pattern = QueryPattern::kRandom;
  spec.selectivity = 0.001;
  spec.seed = env.seed;
  const auto queries = GenerateWorkload(spec);

  const PivotPolicy policies[] = {PivotPolicy::kRandom,
                                  PivotPolicy::kBiggestPiece,
                                  PivotPolicy::kSmallestPiece};

  ReportTable t("Ablation: worker pivot policy (workload cost + worker work)");
  t.SetHeader({"policy", "total cost (s)", "worker cracks", "final pieces"});
  for (PivotPolicy p : policies) {
    DatabaseOptions opts =
        HolisticOptions(env.cores / 2, env.cores / 4, 2, env.cores);
    opts.holistic.pivot_policy = p;
    Database db(opts);
    LoadUniformTable(db, "r", attrs, env.rows, env.domain, env.seed);
    const RunResult r =
        RunWorkload(db, "r", MakeAttributeNames(attrs), queries);
    t.AddRow({PivotPolicyName(p), FormatSeconds(r.series.Total()),
              std::to_string(db.holistic()->TotalWorkerCracks()),
              std::to_string(db.TotalIndexPieces())});
  }
  t.Print();
  SaveBenchJson(t, "ablation_pivot_policy");
  std::printf("\n# paper (§4.2): random pivots win — no piece-size "
              "bookkeeping, balanced convergence\n");
  return 0;
}
