/// \file bench_common.h
/// \brief Shared plumbing for the figure/table reproduction benchmarks.
///
/// Every bench binary prints the same rows/series the paper's plot shows,
/// at laptop scale. `HOLIX_SCALE` multiplies column sizes, `HOLIX_QUERIES`
/// overrides query counts, `HOLIX_CORES` overrides the modelled number of
/// hardware contexts.

#pragma once

#include <sys/resource.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "harness/report.h"
#include "harness/runner.h"
#include "obs/metrics.h"
#include "util/env.h"
#include "workload/workload.h"

namespace holix::bench {

/// Environment-derived experiment scale.
struct BenchEnv {
  size_t rows;     ///< Rows per attribute column.
  size_t queries;  ///< Queries in the workload.
  size_t cores;    ///< Modelled hardware contexts.
  int64_t domain = int64_t{1} << 30;
  uint64_t seed = 1907;
};

inline BenchEnv ReadEnv(size_t default_rows, size_t default_queries) {
  BenchEnv env;
  env.rows = ScaledSize(default_rows);
  env.queries = QueryCount(default_queries);
  const int64_t forced_cores = EnvInt("HOLIX_CORES", 0);
  env.cores = forced_cores > 0
                  ? static_cast<size_t>(forced_cores)
                  : std::max<size_t>(2, std::thread::hardware_concurrency());
  return env;
}

/// HOLIX_KERNEL=scalar|oop|parallel|simd overrides the select-path crack
/// kernel of every bench database (A/B runs without recompiling).
inline void ApplyKernelEnv(DatabaseOptions& opts) {
  const char* env = std::getenv("HOLIX_KERNEL");
  if (env == nullptr || *env == '\0') return;
  if (auto algo = CrackAlgoFromString(env)) {
    opts.kernel = *algo;
  } else {
    std::fprintf(stderr, "# ignoring unknown HOLIX_KERNEL '%s'\n", env);
  }
}

/// Options for a plain (non-holistic) mode with \p user_threads contexts.
inline DatabaseOptions PlainOptions(ExecMode mode, size_t user_threads) {
  DatabaseOptions opts;
  opts.mode = mode;
  opts.user_threads = user_threads;
  ApplyKernelEnv(opts);
  return opts;
}

/// Options for holistic mode: the paper's "u{U}w{W}x{Z}" thread split plus
/// x refinements per worker.
inline DatabaseOptions HolisticOptions(size_t user_threads, size_t workers,
                                       size_t threads_per_worker,
                                       size_t total_cores,
                                       size_t refinements_per_worker = 16,
                                       Strategy strategy = Strategy::kW4) {
  DatabaseOptions opts;
  opts.mode = ExecMode::kHolistic;
  opts.user_threads = user_threads;
  opts.total_cores = total_cores;
  opts.holistic.max_workers = workers;
  opts.holistic.threads_per_worker = threads_per_worker;
  opts.holistic.refinements_per_worker = refinements_per_worker;
  opts.holistic.strategy = strategy;
  opts.holistic.monitor_interval_seconds = 0.001;
  ApplyKernelEnv(opts);
  return opts;
}

/// "uXwYxZ" label as used on the paper's bar charts.
inline std::string SplitLabel(size_t u, size_t w, size_t z) {
  std::string label("u");
  label += std::to_string(u);
  if (w > 0) {
    label += "w";
    label += std::to_string(w);
    label += "x";
    label += std::to_string(z);
  }
  return label;
}

/// Runs one mode over a freshly loaded copy of the standard uniform table.
/// Returns the per-query latency series.
inline RunResult RunMode(const DatabaseOptions& opts, const BenchEnv& env,
                         size_t num_attrs,
                         const std::vector<RangeQuery>& queries) {
  Database db(opts);
  LoadUniformTable(db, "r", num_attrs, env.rows, env.domain, env.seed);
  const auto names = MakeAttributeNames(num_attrs);
  return RunWorkload(db, "r", names, queries);
}

/// Double-keyed variant of RunMode: loads genuine double columns and
/// replays the same workload through the double-bound facade.
inline RunResult RunModeF64(const DatabaseOptions& opts, const BenchEnv& env,
                            size_t num_attrs,
                            const std::vector<RangeQuery>& queries) {
  Database db(opts);
  LoadUniformDoubleTable(db, "r", num_attrs, env.rows, env.domain, env.seed);
  const auto names = MakeAttributeNames(num_attrs);
  return RunWorkloadF64(db, "r", names, queries);
}

/// Raises the soft RLIMIT_NOFILE toward \p want (bounded by the hard
/// limit). The socket sweeps open >2k fds in one process (client and
/// server ends both live here), which overruns the common 1024 default.
/// \return the resulting soft limit.
inline size_t RaiseFdLimit(size_t want) {
  rlimit rl{};
  if (::getrlimit(RLIMIT_NOFILE, &rl) != 0) return 0;
  if (rl.rlim_cur < want) {
    rlimit raised = rl;
    raised.rlim_cur = rl.rlim_max == RLIM_INFINITY
                          ? want
                          : std::min<rlim_t>(want, rl.rlim_max);
    if (::setrlimit(RLIMIT_NOFILE, &raised) == 0) rl = raised;
  }
  return rl.rlim_cur == RLIM_INFINITY ? want
                                      : static_cast<size_t>(rl.rlim_cur);
}

inline void PrintScaleNote(const BenchEnv& env, size_t num_attrs) {
  std::printf("# rows/attribute=%zu attrs=%zu queries=%zu cores=%zu "
              "(paper: 2^30 rows, 32 contexts; set HOLIX_SCALE to grow)\n",
              env.rows, num_attrs, env.queries, env.cores);
}

/// Machine-readable bench output: when `HOLIX_BENCH_JSON=<dir>` is set,
/// writes the table as `<dir>/BENCH_<name>.json` so the perf trajectory of
/// every figure is recordable (CI uploads these as artifacts).
/// \return true when a file was written.
inline bool SaveBenchJson(const ReportTable& t, const std::string& name) {
  const char* dir = std::getenv("HOLIX_BENCH_JSON");
  if (dir == nullptr || *dir == '\0') return false;
  const std::string path = std::string(dir) + "/BENCH_" + name + ".json";
  if (!t.SaveJson(path)) {
    std::fprintf(stderr, "# failed to write %s\n", path.c_str());
    return false;
  }
  std::printf("# wrote %s\n", path.c_str());
  // The engine-side telemetry behind the numbers (cracks, bytes moved,
  // pieces, per-mode latency histograms...) rides along so a perf
  // regression in the table can be diagnosed from the same artifact set.
  const std::string mpath =
      std::string(dir) + "/METRICS_" + name + ".json";
  std::ofstream mf(mpath);
  if (mf) {
    mf << obs::MetricsJson(obs::MetricsRegistry::Global().Snapshot());
    std::printf("# wrote %s\n", mpath.c_str());
  }
  return true;
}

}  // namespace holix::bench
