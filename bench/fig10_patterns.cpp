/// \file fig10_patterns.cpp
/// \brief Reproduces Figure 10: the predicate-position patterns of the five
/// workloads (Random, Skewed, Periodic, Sequential, SkyServer). Prints the
/// (query sequence, predicate value) series the paper plots, plus summary
/// statistics showing each pattern's character.

#include "bench_common.h"
#include "util/stats.h"

using namespace holix;
using namespace holix::bench;

int main() {
  const BenchEnv env = ReadEnv(/*rows=*/0, /*queries=*/100);
  const QueryPattern patterns[] = {
      QueryPattern::kRandom, QueryPattern::kSkewed, QueryPattern::kPeriodic,
      QueryPattern::kSequential, QueryPattern::kSkyServer};

  for (QueryPattern p : patterns) {
    WorkloadSpec spec;
    spec.num_queries =
        p == QueryPattern::kSkyServer ? env.queries * 10 : env.queries;
    spec.num_attributes = 1;
    spec.domain = env.domain;
    spec.pattern = p;
    spec.selectivity = 0.001;
    spec.seed = env.seed;
    const auto queries = GenerateWorkload(spec);

    ReportTable t(std::string("Fig 10: ") + QueryPatternName(p) +
                  " predicate positions");
    t.SetHeader({"query", "predicate value"});
    const size_t step = std::max<size_t>(1, queries.size() / 25);
    for (size_t i = 0; i < queries.size(); i += step) {
      t.AddRow({std::to_string(i + 1), std::to_string(queries[i].low)});
    }
    t.Print();
    SaveBenchJson(t, std::string("fig10_") + QueryPatternName(p));

    SampleStats stats;
    for (const auto& q : queries) stats.Add(static_cast<double>(q.low));
    std::printf("# %-10s n=%zu min=%.0f p50=%.0f max=%.0f "
                "(domain 0..%lld)\n",
                QueryPatternName(p), queries.size(), stats.Min(),
                stats.Percentile(50), stats.Max(),
                static_cast<long long>(env.domain));
  }
  return 0;
}
