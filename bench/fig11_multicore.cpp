/// \file fig11_multicore.cpp
/// \brief Reproduces Figure 11 (§5.2): holistic indexing vs. multi-core
/// adaptive indexing baselines (mP-CCGI, PVDC, PVSDC) while varying the
/// number of available cores. Holistic gives half the cores to user
/// queries and the rest to workers (the paper's best configuration).

#include "bench_common.h"

using namespace holix;
using namespace holix::bench;

int main() {
  const BenchEnv env = ReadEnv(/*rows=*/1u << 21, /*queries=*/1000);
  const size_t attrs = 10;
  PrintScaleNote(env, attrs);

  WorkloadSpec spec;
  spec.num_queries = env.queries;
  spec.num_attributes = attrs;
  spec.domain = env.domain;
  spec.pattern = QueryPattern::kRandom;
  spec.seed = env.seed;
  const auto queries = GenerateWorkload(spec);

  std::vector<size_t> core_counts;
  for (size_t c = 2; c < env.cores; c *= 2) core_counts.push_back(c);
  core_counts.push_back(env.cores);

  ReportTable t("Fig 11: total processing cost (s) vs cores");
  t.SetHeader({"cores", "mP-CCGI", "PVDC", "PVSDC", "HI", "HI split",
               "checksum"});
  bool checksums_ok = true;
  for (size_t c : core_counts) {
    std::vector<std::string> row = {std::to_string(c)};
    // Every mode answers the same workload over the same data, so the
    // per-mode result checksums must agree; one shared cell per row keeps
    // the committed baseline a correctness probe as well as a perf gate.
    std::vector<uint64_t> sums;
    {
      DatabaseOptions o = PlainOptions(ExecMode::kCCGI, c);
      o.ccgi_chunks = c;
      const RunResult r = RunMode(o, env, attrs, queries);
      row.push_back(FormatSeconds(r.series.Total()));
      sums.push_back(r.result_checksum);
    }
    for (const ExecMode mode :
         {ExecMode::kAdaptive, ExecMode::kStochastic}) {
      const RunResult r =
          RunMode(PlainOptions(mode, c), env, attrs, queries);
      row.push_back(FormatSeconds(r.series.Total()));
      sums.push_back(r.result_checksum);
    }
    // Half the cores to user queries, half to workers (z=2 when possible).
    const size_t u = std::max<size_t>(1, c / 2);
    const size_t z = c >= 8 ? 2 : 1;
    const size_t w = std::max<size_t>(1, (c - u) / z);
    {
      const RunResult r =
          RunMode(HolisticOptions(u, w, z, c), env, attrs, queries);
      row.push_back(FormatSeconds(r.series.Total()));
      sums.push_back(r.result_checksum);
    }
    row.push_back(SplitLabel(u, w, z));
    for (uint64_t s : sums) {
      if (s != sums.front()) checksums_ok = false;
    }
    row.push_back(checksums_ok ? std::to_string(sums.front()) : "MISMATCH");
    t.AddRow(row);
  }
  t.Print();
  SaveBenchJson(t, "fig11");
  std::printf("\n# paper: all methods improve with cores; HI wins at every "
              "core count because it is active all the time\n");
  if (!checksums_ok) {
    std::fprintf(stderr, "# FAIL: result checksums diverged across modes\n");
    return 1;
  }
  return 0;
}
