/// \file fig12_robustness.cpp
/// \brief Reproduces Figure 12 (§5.3): robustness of holistic indexing vs.
/// PVDC and PVSDC across the five workload patterns (Random, Skewed,
/// Periodic, Sequential, SkyServer-like).

#include "bench_common.h"

using namespace holix;
using namespace holix::bench;

int main() {
  const BenchEnv env = ReadEnv(/*rows=*/1u << 21, /*queries=*/1000);
  const size_t attrs = 10;
  PrintScaleNote(env, attrs);

  const QueryPattern patterns[] = {
      QueryPattern::kRandom, QueryPattern::kSkewed, QueryPattern::kPeriodic,
      QueryPattern::kSequential, QueryPattern::kSkyServer};

  ReportTable t("Fig 12: total processing cost (s) per workload");
  t.SetHeader({"workload", "PVDC", "PVSDC", "HI"});
  for (QueryPattern p : patterns) {
    WorkloadSpec spec;
    spec.num_queries =
        p == QueryPattern::kSkyServer ? env.queries * 2 : env.queries;
    spec.num_attributes = attrs;
    spec.domain = env.domain;
    spec.pattern = p;
    spec.selectivity = 0.001;  // narrow ranges make the pattern matter
    spec.seed = env.seed;
    const auto queries = GenerateWorkload(spec);

    const double pvdc =
        RunMode(PlainOptions(ExecMode::kAdaptive, env.cores), env, attrs,
                queries)
            .series.Total();
    const double pvsdc =
        RunMode(PlainOptions(ExecMode::kStochastic, env.cores), env, attrs,
                queries)
            .series.Total();
    const double hi =
        RunMode(HolisticOptions(env.cores / 2, env.cores / 4, 2, env.cores),
                env, attrs, queries)
            .series.Total();
    t.AddRow({QueryPatternName(p), FormatSeconds(pvdc), FormatSeconds(pvsdc),
              FormatSeconds(hi)});
  }
  t.Print();
  SaveBenchJson(t, "fig12");
  std::printf("\n# paper: HI outperforms PVDC by 2-10x depending on "
              "pattern, and never loses to PVSDC\n");
  return 0;
}
