/// \file fig13_schemas.cpp
/// \brief Reproduces Figure 13 (§5.4): more attributes -> bigger holistic
/// gains, and the W1-W4 index-decision strategies compared against PVDC
/// and PVSDC on four workload shapes:
///   (a) random attributes, random values    (c) skewed attributes, random
///   (b) random attributes, periodic values  (d) skewed attributes, periodic

#include "bench_common.h"

using namespace holix;
using namespace holix::bench;

int main() {
  const BenchEnv env = ReadEnv(/*rows=*/1u << 20, /*queries=*/600);
  PrintScaleNote(env, 10);

  struct Panel {
    const char* name;
    const char* slug;  ///< BENCH_<slug>.json file name.
    bool skewed_attrs;
    QueryPattern pattern;
  };
  const Panel panels[] = {
      {"(a) random attrs, random values", "fig13a", false,
       QueryPattern::kRandom},
      {"(b) random attrs, periodic values", "fig13b", false,
       QueryPattern::kPeriodic},
      {"(c) skewed attrs, random values", "fig13c", true,
       QueryPattern::kRandom},
      {"(d) skewed attrs, periodic values", "fig13d", true,
       QueryPattern::kPeriodic},
  };
  const Strategy strategies[] = {Strategy::kW1, Strategy::kW2, Strategy::kW3,
                                 Strategy::kW4};

  for (const Panel& panel : panels) {
    ReportTable t(std::string("Fig 13 ") + panel.name +
                  ": total cost (s) vs #attributes");
    t.SetHeader({"#attrs", "PVDC", "PVSDC", "HI(W1)", "HI(W2)", "HI(W3)",
                 "HI(W4)"});
    for (size_t attrs = 5; attrs <= 10; ++attrs) {
      WorkloadSpec spec;
      spec.num_queries = env.queries;
      spec.num_attributes = attrs;
      spec.domain = env.domain;
      spec.pattern = panel.pattern;
      spec.skewed_attributes = panel.skewed_attrs;
      spec.selectivity = 0.001;
      spec.seed = env.seed + attrs;
      const auto queries = GenerateWorkload(spec);

      std::vector<std::string> row = {std::to_string(attrs)};
      row.push_back(FormatSeconds(
          RunMode(PlainOptions(ExecMode::kAdaptive, env.cores), env, attrs,
                  queries)
              .series.Total()));
      row.push_back(FormatSeconds(
          RunMode(PlainOptions(ExecMode::kStochastic, env.cores), env, attrs,
                  queries)
              .series.Total()));
      for (Strategy s : strategies) {
        row.push_back(FormatSeconds(
            RunMode(HolisticOptions(env.cores / 2, env.cores / 4, 2,
                                    env.cores, 16, s),
                    env, attrs, queries)
                .series.Total()));
      }
      t.AddRow(row);
    }
    t.Print();
    SaveBenchJson(t, panel.slug);
  }
  std::printf("\n# paper: HI gains grow with #attributes; W4 (random) is "
              "robust and clearly best on periodic values\n");
  return 0;
}
