/// \file fig13_schemas.cpp
/// \brief Reproduces Figure 13 (§5.4): more attributes -> bigger holistic
/// gains, and the W1-W4 index-decision strategies compared against PVDC
/// and PVSDC on four workload shapes:
///   (a) random attributes, random values    (c) skewed attributes, random
///   (b) random attributes, periodic values  (d) skewed attributes, periodic

#include "bench_common.h"

using namespace holix;
using namespace holix::bench;

int main() {
  const BenchEnv env = ReadEnv(/*rows=*/1u << 20, /*queries=*/600);
  PrintScaleNote(env, 10);

  struct Panel {
    const char* name;
    const char* slug;  ///< BENCH_<slug>.json file name.
    bool skewed_attrs;
    QueryPattern pattern;
  };
  const Panel panels[] = {
      {"(a) random attrs, random values", "fig13a", false,
       QueryPattern::kRandom},
      {"(b) random attrs, periodic values", "fig13b", false,
       QueryPattern::kPeriodic},
      {"(c) skewed attrs, random values", "fig13c", true,
       QueryPattern::kRandom},
      {"(d) skewed attrs, periodic values", "fig13d", true,
       QueryPattern::kPeriodic},
  };
  const Strategy strategies[] = {Strategy::kW1, Strategy::kW2, Strategy::kW3,
                                 Strategy::kW4};

  for (const Panel& panel : panels) {
    ReportTable t(std::string("Fig 13 ") + panel.name +
                  ": total cost (s) vs #attributes");
    t.SetHeader({"#attrs", "PVDC", "PVSDC", "HI(W1)", "HI(W2)", "HI(W3)",
                 "HI(W4)"});
    for (size_t attrs = 5; attrs <= 10; ++attrs) {
      WorkloadSpec spec;
      spec.num_queries = env.queries;
      spec.num_attributes = attrs;
      spec.domain = env.domain;
      spec.pattern = panel.pattern;
      spec.skewed_attributes = panel.skewed_attrs;
      spec.selectivity = 0.001;
      spec.seed = env.seed + attrs;
      const auto queries = GenerateWorkload(spec);

      std::vector<std::string> row = {std::to_string(attrs)};
      row.push_back(FormatSeconds(
          RunMode(PlainOptions(ExecMode::kAdaptive, env.cores), env, attrs,
                  queries)
              .series.Total()));
      row.push_back(FormatSeconds(
          RunMode(PlainOptions(ExecMode::kStochastic, env.cores), env, attrs,
                  queries)
              .series.Total()));
      for (Strategy s : strategies) {
        row.push_back(FormatSeconds(
            RunMode(HolisticOptions(env.cores / 2, env.cores / 4, 2,
                                    env.cores, 16, s),
                    env, attrs, queries)
                .series.Total()));
      }
      t.AddRow(row);
    }
    t.Print();
    SaveBenchJson(t, panel.slug);
  }
  // Panel (e): the same sweep over genuine DOUBLE key columns — the typed
  // core cracks floating-point attributes through every execution mode
  // (scan/offline/online/cracking/stochastic/CCGI/holistic). Every mode's
  // checksum must equal the scan oracle's exactly (counts are integers
  // even over double keys); a mismatch aborts the bench.
  {
    ReportTable t(
        "Fig 13 (e) double keys, random attrs/values: total cost (s) vs "
        "#attributes");
    t.SetHeader({"#attrs", "Scan", "Offline", "Online", "PVDC", "PVSDC",
                 "CCGI", "HI(W4)"});
    const ExecMode plain_modes[] = {ExecMode::kScan, ExecMode::kOffline,
                                    ExecMode::kOnline, ExecMode::kAdaptive,
                                    ExecMode::kStochastic, ExecMode::kCCGI};
    for (size_t attrs = 5; attrs <= 10; ++attrs) {
      WorkloadSpec spec;
      spec.num_queries = env.queries;
      spec.num_attributes = attrs;
      spec.domain = env.domain;
      spec.pattern = QueryPattern::kRandom;
      spec.selectivity = 0.001;
      spec.seed = env.seed + 100 + attrs;
      const auto queries = GenerateWorkload(spec);

      std::vector<std::string> row = {std::to_string(attrs)};
      uint64_t oracle = 0;
      bool have_oracle = false;
      auto run_checked = [&](const DatabaseOptions& opts) {
        const RunResult r = RunModeF64(opts, env, attrs, queries);
        if (!have_oracle) {
          oracle = r.result_checksum;  // kScan runs first: the oracle
          have_oracle = true;
        } else if (r.result_checksum != oracle) {
          std::printf("!! double-panel checksum mismatch vs scan oracle "
                      "(mode %s, attrs %zu)\n",
                      ExecModeName(opts.mode), attrs);
          std::exit(1);
        }
        return r.series.Total();
      };
      for (ExecMode m : plain_modes) {
        row.push_back(FormatSeconds(run_checked(PlainOptions(m, env.cores))));
      }
      row.push_back(FormatSeconds(
          run_checked(HolisticOptions(env.cores / 2, env.cores / 4, 2,
                                      env.cores, 16, Strategy::kW4))));
      t.AddRow(row);
    }
    t.Print();
    SaveBenchJson(t, "fig13e");
  }

  std::printf("\n# paper: HI gains grow with #attributes; W4 (random) is "
              "robust and clearly best on periodic values; panel (e) runs "
              "genuine double key columns oracle-checked across all 7 "
              "modes\n");
  return 0;
}
