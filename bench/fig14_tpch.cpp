/// \file fig14_tpch.cpp
/// \brief Reproduces Figure 14 (§5.6): TPC-H Queries 1, 6 and 12 — 30
/// random variations each — on four systems: plain scans ("MonetDB"),
/// pre-sorted projections ("Presorted MonetDB", pre-sort cost excluded
/// from the curve but reported), sideways-style cracking, and cracking
/// with holistic workers. l_extendedprice / l_discount are genuine double
/// columns (dollars / fractions); every variation's result is checked
/// against the scan oracle (exact for counts, relative-tolerance for the
/// double money sums) and a mismatch fails the run.

#include <cstdio>

#include "bench_common.h"
#include "tpch/tpch_data.h"
#include "tpch/tpch_queries.h"
#include "util/timer.h"

using namespace holix;
using namespace holix::bench;

namespace {

constexpr size_t kVariations = 30;

template <typename MakeParams, typename RunScan, typename RunSorted,
          typename RunCracked, typename RunHolistic>
void RunQuery(const char* title, uint64_t seed, MakeParams make_params,
              RunScan run_scan, RunSorted run_sorted, RunCracked run_cracked,
              RunHolistic run_holistic) {
  ReportTable t(title);
  t.SetHeader({"variation", "MonetDB(scan)", "Presorted", "Cracking",
               "Holistic"});
  Rng rng(seed);
  std::vector<decltype(make_params(rng))> params;
  for (size_t i = 0; i < kVariations; ++i) params.push_back(make_params(rng));

  std::vector<double> scan_t, sorted_t, cracked_t, holi_t;
  for (size_t i = 0; i < params.size(); ++i) {
    Timer timer;
    const auto a = run_scan(params[i]);
    scan_t.push_back(timer.ElapsedSeconds());
    timer.Restart();
    const auto b = run_sorted(params[i]);
    sorted_t.push_back(timer.ElapsedSeconds());
    timer.Restart();
    const auto c = run_cracked(params[i]);
    cracked_t.push_back(timer.ElapsedSeconds());
    timer.Restart();
    const auto d = run_holistic(params[i]);
    holi_t.push_back(timer.ElapsedSeconds());
    if (!(ApproxEqual(a, b) && ApproxEqual(a, c) && ApproxEqual(a, d))) {
      std::printf("!! result mismatch at variation %zu\n", i);
      std::exit(1);
    }
    t.AddRow({std::to_string(i + 1), FormatSeconds(scan_t[i]),
              FormatSeconds(sorted_t[i]), FormatSeconds(cracked_t[i]),
              FormatSeconds(holi_t[i])});
  }
  t.Print();
  SaveBenchJson(t, "fig14");
  auto total = [](const std::vector<double>& v) {
    double s = 0;
    for (double x : v) s += x;
    return s;
  };
  std::printf("# totals: scan %.3fs | presorted %.3fs | cracking %.3fs | "
              "holistic %.3fs\n",
              total(scan_t), total(sorted_t), total(cracked_t),
              total(holi_t));
}

/// Runs holistic worker refinement between queries, emulating the engine's
/// idle-cycle exploitation on the TPC-H cracker columns.
class HolisticTpch {
 public:
  explicit HolisticTpch(const TpchData& data) : exec_(data) {
    HolisticConfig cfg;
    cfg.max_workers = 4;
    cfg.refinements_per_worker = 16;
    cfg.monitor_interval_seconds = 0.0005;
    auto monitor = std::make_unique<SlotCpuMonitor>(
        std::thread::hardware_concurrency(), cfg.monitor_interval_seconds);
    slots_ = monitor.get();
    engine_ = std::make_unique<HolisticEngine>(cfg, std::move(monitor));
    engine_->store().Register(exec_.ShipdateIndex(), ConfigKind::kActual);
    engine_->store().Register(exec_.ReceiptdateIndex(), ConfigKind::kActual);
    engine_->Start();
  }
  ~HolisticTpch() { engine_->Stop(); }

  TpchCrackedExecutor& exec() { return exec_; }

 private:
  TpchCrackedExecutor exec_;
  std::unique_ptr<HolisticEngine> engine_;
  SlotCpuMonitor* slots_ = nullptr;
};

}  // namespace

int main() {
  const double sf = EnvDouble("HOLIX_TPCH_SF", 0.1);
  std::printf("# TPC-H scale factor %.2f (paper: SF 10); 30 variations per "
              "query\n",
              sf);
  Timer gen_timer;
  const TpchData data = TpchData::Generate(sf);
  std::printf("# generated %zu lineitems / %zu orders in %.2fs\n",
              data.NumLineitems(), data.NumOrders(),
              gen_timer.ElapsedSeconds());

  TpchScanExecutor scan(data);
  Timer presort_timer;
  TpchPresortedExecutor sorted(data);
  const double presort_cost = presort_timer.ElapsedSeconds();
  TpchCrackedExecutor cracked(data);
  HolisticTpch holistic(data);

  std::printf("# presorting cost (excluded from curves, as in the paper): "
              "%.3fs\n",
              presort_cost);

  RunQuery(
      "Fig 14(a): TPC-H Query 1 (s)", 1001,
      [](Rng& rng) { return RandomQ1Params(rng); },
      [&](const Q1Params& p) { return scan.Q1(p); },
      [&](const Q1Params& p) { return sorted.Q1(p); },
      [&](const Q1Params& p) { return cracked.Q1(p); },
      [&](const Q1Params& p) { return holistic.exec().Q1(p); });
  RunQuery(
      "Fig 14(b): TPC-H Query 6 (s)", 1006,
      [](Rng& rng) { return RandomQ6Params(rng); },
      [&](const Q6Params& p) { return scan.Q6(p); },
      [&](const Q6Params& p) { return sorted.Q6(p); },
      [&](const Q6Params& p) { return cracked.Q6(p); },
      [&](const Q6Params& p) { return holistic.exec().Q6(p); });
  RunQuery(
      "Fig 14(c): TPC-H Query 12 (s)", 1012,
      [](Rng& rng) { return RandomQ12Params(rng); },
      [&](const Q12Params& p) { return scan.Q12(p); },
      [&](const Q12Params& p) { return sorted.Q12(p); },
      [&](const Q12Params& p) { return cracked.Q12(p); },
      [&](const Q12Params& p) { return holistic.exec().Q12(p); });

  std::printf("\n# paper: holistic matches presorted performance without "
              "the offline cost; first cracked query pays the copy\n"
              "# note: price/discount are real double columns; results are "
              "oracle-checked per variation\n");
  return 0;
}
