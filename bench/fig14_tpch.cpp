/// \file fig14_tpch.cpp
/// \brief Reproduces Figure 14 (§5.6): TPC-H Queries 1, 6 and 12 — 30
/// random variations each — on four systems: plain scans ("MonetDB"),
/// pre-sorted projections ("Presorted MonetDB", pre-sort cost excluded
/// from the curve but reported), sideways-style cracking, and cracking
/// with holistic workers. l_extendedprice / l_discount are genuine double
/// columns (dollars / fractions); every variation's result is checked
/// against the scan oracle (exact for counts, relative-tolerance for the
/// double money sums) and a mismatch fails the run.
///
/// Panel (d) runs Q6 a second way — as a genuine three-predicate
/// QuerySpec conjunction (l_shipdate x l_discount x l_quantity, no
/// sideways payload lanes) through the engine facade in scan, PVDC and
/// holistic modes. Every predicate column cracks its own adaptive index;
/// results (count, sum of l_extendedprice, revenue reconstructed from the
/// returned rowids) are checked bit-exactly against a full-scan
/// conjunction oracle, and a mismatch fails the run.

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "tpch/tpch_data.h"
#include "tpch/tpch_queries.h"
#include "util/timer.h"

using namespace holix;
using namespace holix::bench;

namespace {

constexpr size_t kVariations = 30;

template <typename MakeParams, typename RunScan, typename RunSorted,
          typename RunCracked, typename RunHolistic>
void RunQuery(const char* title, const char* slug, uint64_t seed,
              MakeParams make_params,
              RunScan run_scan, RunSorted run_sorted, RunCracked run_cracked,
              RunHolistic run_holistic) {
  ReportTable t(title);
  t.SetHeader({"variation", "MonetDB(scan)", "Presorted", "Cracking",
               "Holistic"});
  Rng rng(seed);
  std::vector<decltype(make_params(rng))> params;
  for (size_t i = 0; i < kVariations; ++i) params.push_back(make_params(rng));

  std::vector<double> scan_t, sorted_t, cracked_t, holi_t;
  for (size_t i = 0; i < params.size(); ++i) {
    Timer timer;
    const auto a = run_scan(params[i]);
    scan_t.push_back(timer.ElapsedSeconds());
    timer.Restart();
    const auto b = run_sorted(params[i]);
    sorted_t.push_back(timer.ElapsedSeconds());
    timer.Restart();
    const auto c = run_cracked(params[i]);
    cracked_t.push_back(timer.ElapsedSeconds());
    timer.Restart();
    const auto d = run_holistic(params[i]);
    holi_t.push_back(timer.ElapsedSeconds());
    if (!(ApproxEqual(a, b) && ApproxEqual(a, c) && ApproxEqual(a, d))) {
      std::printf("!! result mismatch at variation %zu\n", i);
      std::exit(1);
    }
    t.AddRow({std::to_string(i + 1), FormatSeconds(scan_t[i]),
              FormatSeconds(sorted_t[i]), FormatSeconds(cracked_t[i]),
              FormatSeconds(holi_t[i])});
  }
  t.Print();
  SaveBenchJson(t, slug);
  auto total = [](const std::vector<double>& v) {
    double s = 0;
    for (double x : v) s += x;
    return s;
  };
  std::printf("# totals: scan %.3fs | presorted %.3fs | cracking %.3fs | "
              "holistic %.3fs\n",
              total(scan_t), total(sorted_t), total(cracked_t),
              total(holi_t));
}

/// Runs holistic worker refinement between queries, emulating the engine's
/// idle-cycle exploitation on the TPC-H cracker columns.
class HolisticTpch {
 public:
  explicit HolisticTpch(const TpchData& data) : exec_(data) {
    HolisticConfig cfg;
    cfg.max_workers = 4;
    cfg.refinements_per_worker = 16;
    cfg.monitor_interval_seconds = 0.0005;
    auto monitor = std::make_unique<SlotCpuMonitor>(
        std::thread::hardware_concurrency(), cfg.monitor_interval_seconds);
    slots_ = monitor.get();
    engine_ = std::make_unique<HolisticEngine>(cfg, std::move(monitor));
    engine_->store().Register(exec_.ShipdateIndex(), ConfigKind::kActual);
    engine_->store().Register(exec_.ReceiptdateIndex(), ConfigKind::kActual);
    engine_->Start();
  }
  ~HolisticTpch() { engine_->Stop(); }

  TpchCrackedExecutor& exec() { return exec_; }

 private:
  TpchCrackedExecutor exec_;
  std::unique_ptr<HolisticEngine> engine_;
  SlotCpuMonitor* slots_ = nullptr;
};

/// What one Q6-shaped conjunction answers (all three checked bit-exactly).
struct Q6SpecResult {
  int64_t count = 0;
  double sum_price = 0;  ///< sum(l_extendedprice) over qualifying rows.
  double revenue = 0;    ///< sum(l_extendedprice * l_discount).

  bool operator==(const Q6SpecResult&) const = default;
};

/// One engine under test for panel (d): a Database holding the four Q6
/// columns, queried through the declarative multi-predicate facade.
class Q6SpecEngine {
 public:
  Q6SpecEngine(const TpchData& data, DatabaseOptions opts)
      : d_(data), db_(opts) {
    db_.LoadColumn("lineitem", "l_shipdate", data.l_shipdate);
    db_.LoadColumn<double>("lineitem", "l_discount", data.l_discount);
    db_.LoadColumn("lineitem", "l_quantity", data.l_quantity);
    db_.LoadColumn<double>("lineitem", "l_extendedprice",
                           data.l_extendedprice);
    h_ship_ = db_.Resolve("lineitem", "l_shipdate");
    h_disc_ = db_.Resolve("lineitem", "l_discount");
    h_qty_ = db_.Resolve("lineitem", "l_quantity");
    h_price_ = db_.Resolve("lineitem", "l_extendedprice");
  }

  Q6SpecResult Q6(const Q6Params& p) {
    QuerySpec spec;
    // The inclusive discount_hi becomes the exclusive next double; both
    // bounds derive from integer percents, so the edge stays exact.
    spec.Where(h_ship_, p.date_lo, p.date_lo + 365)
        .Where(h_disc_, p.discount_lo,
               std::nextafter(p.discount_hi, 1.0))
        .Where(h_qty_, int64_t{0}, p.max_quantity)
        .Count()
        .Sum(h_price_)
        .RowIds();
    const QueryResult r = db_.Execute(spec);
    Q6SpecResult out;
    out.count = r.values[0].i;
    out.sum_price = r.values[1].d;
    // Late reconstruction of the price*discount product from the sorted
    // rowid list (the product is not a single-column aggregate).
    for (RowId rid : r.rowids) {
      out.revenue += d_.l_extendedprice[rid] * d_.l_discount[rid];
    }
    return out;
  }

  Database& db() { return db_; }
  /// Piece counts of the three predicate columns' adaptive indices.
  std::vector<size_t> PredicatePieces() {
    std::vector<size_t> pieces;
    for (const ColumnHandle* h : {&h_ship_, &h_disc_, &h_qty_}) {
      DispatchIndexableType(h->type(), [&](auto tag) {
        using T = typename decltype(tag)::type;
        auto c = h->entry()->runtime<T>().cracker.load();
        pieces.push_back(c == nullptr ? 1 : c->NumPieces());
      });
    }
    return pieces;
  }

 private:
  const TpchData& d_;
  Database db_;
  ColumnHandle h_ship_, h_disc_, h_qty_, h_price_;
};

/// Full-scan conjunction oracle (ascending row order, the same order the
/// engine's sorted rowid set induces, so the double sums match bit-exact).
Q6SpecResult Q6SpecOracle(const TpchData& d, const Q6Params& p) {
  Q6SpecResult out;
  for (size_t i = 0; i < d.NumLineitems(); ++i) {
    if (d.l_shipdate[i] < p.date_lo || d.l_shipdate[i] >= p.date_lo + 365) {
      continue;
    }
    if (d.l_discount[i] < p.discount_lo || d.l_discount[i] > p.discount_hi) {
      continue;
    }
    if (d.l_quantity[i] < 0 || d.l_quantity[i] >= p.max_quantity) continue;
    ++out.count;
    out.sum_price += d.l_extendedprice[i];
    out.revenue += d.l_extendedprice[i] * d.l_discount[i];
  }
  return out;
}

/// Panel (d): Q6 on the real multi-predicate path.
void RunQ6QuerySpec(const TpchData& data) {
  const size_t threads = 2;
  Q6SpecEngine scan(data, PlainOptions(ExecMode::kScan, threads));
  Q6SpecEngine cracked(data, PlainOptions(ExecMode::kAdaptive, threads));
  Q6SpecEngine holistic(
      data, HolisticOptions(threads, /*workers=*/2, /*threads_per_worker=*/1,
                            /*total_cores=*/std::max<size_t>(
                                4, std::thread::hardware_concurrency())));

  ReportTable t("Fig 14(d): TPC-H Q6 as a 3-predicate QuerySpec (s)");
  t.SetHeader({"variation", "Scan", "Cracking", "Holistic"});
  Rng rng(1406);
  bool ok = true;
  for (size_t i = 0; i < kVariations; ++i) {
    const Q6Params p = RandomQ6Params(rng);
    const Q6SpecResult oracle = Q6SpecOracle(data, p);
    Timer timer;
    const Q6SpecResult a = scan.Q6(p);
    const double scan_t = timer.ElapsedSeconds();
    timer.Restart();
    const Q6SpecResult b = cracked.Q6(p);
    const double cracked_t = timer.ElapsedSeconds();
    timer.Restart();
    const Q6SpecResult c = holistic.Q6(p);
    const double holi_t = timer.ElapsedSeconds();
    // The multi-predicate path aggregates over the ascending qualifying
    // row set in every mode — bit-exact equality, no tolerance.
    if (!(a == oracle && b == oracle && c == oracle)) {
      std::printf("!! QuerySpec Q6 mismatch at variation %zu\n", i);
      ok = false;
    }
    t.AddRow({std::to_string(i + 1), FormatSeconds(scan_t),
              FormatSeconds(cracked_t), FormatSeconds(holi_t)});
  }
  t.Print();
  SaveBenchJson(t, "fig14d");
  const auto pieces = cracked.PredicatePieces();
  std::printf("# PVDC adaptive-index pieces after %zu conjunctions: "
              "l_shipdate=%zu l_discount=%zu l_quantity=%zu (every "
              "predicate column refines)\n",
              kVariations, pieces[0], pieces[1], pieces[2]);
  if (pieces[0] < 2 || pieces[1] < 2 || pieces[2] < 2) {
    std::printf("!! a predicate column never cracked\n");
    ok = false;
  }
  if (!ok) std::exit(1);
}

}  // namespace

int main() {
  const double sf = EnvDouble("HOLIX_TPCH_SF", 0.1);
  std::printf("# TPC-H scale factor %.2f (paper: SF 10); 30 variations per "
              "query\n",
              sf);
  Timer gen_timer;
  const TpchData data = TpchData::Generate(sf);
  std::printf("# generated %zu lineitems / %zu orders in %.2fs\n",
              data.NumLineitems(), data.NumOrders(),
              gen_timer.ElapsedSeconds());

  TpchScanExecutor scan(data);
  Timer presort_timer;
  TpchPresortedExecutor sorted(data);
  const double presort_cost = presort_timer.ElapsedSeconds();
  TpchCrackedExecutor cracked(data);
  HolisticTpch holistic(data);

  std::printf("# presorting cost (excluded from curves, as in the paper): "
              "%.3fs\n",
              presort_cost);

  RunQuery(
      "Fig 14(a): TPC-H Query 1 (s)", "fig14a", 1001,
      [](Rng& rng) { return RandomQ1Params(rng); },
      [&](const Q1Params& p) { return scan.Q1(p); },
      [&](const Q1Params& p) { return sorted.Q1(p); },
      [&](const Q1Params& p) { return cracked.Q1(p); },
      [&](const Q1Params& p) { return holistic.exec().Q1(p); });
  RunQuery(
      "Fig 14(b): TPC-H Query 6 (s)", "fig14b", 1006,
      [](Rng& rng) { return RandomQ6Params(rng); },
      [&](const Q6Params& p) { return scan.Q6(p); },
      [&](const Q6Params& p) { return sorted.Q6(p); },
      [&](const Q6Params& p) { return cracked.Q6(p); },
      [&](const Q6Params& p) { return holistic.exec().Q6(p); });
  RunQuery(
      "Fig 14(c): TPC-H Query 12 (s)", "fig14c", 1012,
      [](Rng& rng) { return RandomQ12Params(rng); },
      [&](const Q12Params& p) { return scan.Q12(p); },
      [&](const Q12Params& p) { return sorted.Q12(p); },
      [&](const Q12Params& p) { return cracked.Q12(p); },
      [&](const Q12Params& p) { return holistic.exec().Q12(p); });
  RunQ6QuerySpec(data);

  std::printf("\n# paper: holistic matches presorted performance without "
              "the offline cost; first cracked query pays the copy\n"
              "# note: price/discount are real double columns; results are "
              "oracle-checked per variation\n"
              "# note: panel (d) runs Q6 as a declarative 3-predicate "
              "conjunction (QuerySpec) — no sideways payload lanes\n");
  return 0;
}
