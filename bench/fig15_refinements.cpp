/// \file fig15_refinements.cpp
/// \brief Reproduces Figure 15 (§5.5): sensitivity to x, the number of
/// index refinements each holistic worker performs per activation, across
/// the five workloads, with PVDC/PVSDC reference bars.

#include "bench_common.h"

using namespace holix;
using namespace holix::bench;

int main() {
  const BenchEnv env = ReadEnv(/*rows=*/1u << 21, /*queries=*/1000);
  const size_t attrs = 10;
  PrintScaleNote(env, attrs);

  const QueryPattern patterns[] = {
      QueryPattern::kRandom, QueryPattern::kSkewed, QueryPattern::kPeriodic,
      QueryPattern::kSequential, QueryPattern::kSkyServer};
  const size_t xs[] = {1, 2, 4, 8, 16, 32};

  ReportTable t("Fig 15: total cost (s) vs refinements per worker (x)");
  t.SetHeader({"workload", "PVDC", "PVSDC", "x=1", "x=2", "x=4", "x=8",
               "x=16", "x=32"});
  for (QueryPattern p : patterns) {
    WorkloadSpec spec;
    spec.num_queries = env.queries;
    spec.num_attributes = attrs;
    spec.domain = env.domain;
    spec.pattern = p;
    spec.selectivity = 0.001;
    spec.seed = env.seed;
    const auto queries = GenerateWorkload(spec);

    std::vector<std::string> row = {QueryPatternName(p)};
    row.push_back(FormatSeconds(
        RunMode(PlainOptions(ExecMode::kAdaptive, env.cores), env, attrs,
                queries)
            .series.Total()));
    row.push_back(FormatSeconds(
        RunMode(PlainOptions(ExecMode::kStochastic, env.cores), env, attrs,
                queries)
            .series.Total()));
    for (size_t x : xs) {
      row.push_back(FormatSeconds(
          RunMode(HolisticOptions(env.cores / 2, env.cores / 4, 2, env.cores,
                                  x),
                  env, attrs, queries)
              .series.Total()));
    }
    t.AddRow(row);
  }
  t.Print();
  SaveBenchJson(t, "fig15");
  std::printf("\n# paper: cost falls as x grows, with diminishing returns "
              "from 16 to 32 -> x=16 is the default\n");
  return 0;
}
