/// \file fig16_updates.cpp
/// \brief Reproduces Figure 16 (§5.7): read/write workloads. HFLV = 10
/// inserts every 10 queries, LFHV = 100 inserts every 100 queries; 500
/// selects + 500 inserts on one attribute, with an idle gap after the 10th
/// query. Single-threaded adaptive indexing vs. holistic indexing with one
/// worker that refines (and merges pending inserts) in the background.

#include <chrono>
#include <thread>

#include "bench_common.h"
#include "util/timer.h"

using namespace holix;
using namespace holix::bench;

namespace {

double RunScenario(Database& db, const std::vector<WorkloadOp>& ops) {
  double query_seconds = 0;
  for (const auto& op : ops) {
    switch (op.kind) {
      case WorkloadOp::Kind::kQuery: {
        Timer t;
        db.CountRange("r", "a0", op.query.low, op.query.high);
        query_seconds += t.ElapsedSeconds();
        break;
      }
      case WorkloadOp::Kind::kInsert:
        db.Insert("r", "a0", op.insert_value);
        break;
      case WorkloadOp::Kind::kIdle:
        std::this_thread::sleep_for(
            std::chrono::duration<double>(op.idle_seconds));
        break;
    }
  }
  return query_seconds;
}

}  // namespace

int main() {
  const BenchEnv env = ReadEnv(/*rows=*/1u << 22, /*queries=*/500);
  PrintScaleNote(env, 1);
  // The paper idles 20 s at 10^9 rows; scale the gap with the data.
  const double idle_seconds =
      EnvDouble("HOLIX_IDLE_SECONDS",
                2.0 * static_cast<double>(env.rows) / (1u << 22));

  const UpdateScenario scenarios[] = {
      UpdateScenario::kHighFrequencyLowVolume,
      UpdateScenario::kLowFrequencyHighVolume};
  const char* labels[] = {"HFLV", "LFHV"};

  ReportTable t("Fig 16: update workloads, total query cost (s)");
  t.SetHeader({"scenario", "adaptive", "holistic", "merged by workers"});
  for (size_t s = 0; s < 2; ++s) {
    const auto ops = GenerateUpdateWorkload(scenarios[s], env.queries,
                                            env.domain, idle_seconds,
                                            env.seed + s);
    double adaptive_cost, holistic_cost;
    uint64_t merged = 0;
    {
      // Single-threaded adaptive indexing, as in the paper's §5.7 set-up.
      Database db(PlainOptions(ExecMode::kAdaptive, 1));
      db.LoadColumn("r", "a0",
                    GenerateUniformColumn(env.rows, env.domain, env.seed));
      adaptive_cost = RunScenario(db, ops);
    }
    {
      // Holistic with a single worker exploiting idle time.
      DatabaseOptions opts = HolisticOptions(1, 1, 1, 2);
      Database db(opts);
      db.LoadColumn("r", "a0",
                    GenerateUniformColumn(env.rows, env.domain, env.seed));
      holistic_cost = RunScenario(db, ops);
      if (auto* engine = db.holistic()) {
        const auto idx = engine->store().Find("r.a0");
        if (idx != nullptr) {
          merged = idx->stats().merged_inserts.load();
        }
      }
    }
    t.AddRow({labels[s], FormatSeconds(adaptive_cost),
              FormatSeconds(holistic_cost), std::to_string(merged)});
  }
  t.Print();
  SaveBenchJson(t, "fig16");
  std::printf("\n# paper: holistic keeps its ~50%% advantage under updates; "
              "workers also consume pending inserts\n");
  return 0;
}
