/// \file fig17_clients.cpp
/// \brief Reproduces Figure 17 (§5.8): varying the number of concurrent
/// clients. With few clients there are idle contexts for holistic workers;
/// as clients saturate the machine, holistic indexing detects the load and
/// stays out of the way (its benefit, and its interference, vanish).

#include "bench_common.h"

using namespace holix;
using namespace holix::bench;

int main() {
  const BenchEnv env = ReadEnv(/*rows=*/1u << 21, /*queries=*/1024);
  const size_t attrs = 10;
  PrintScaleNote(env, attrs);

  WorkloadSpec spec;
  spec.num_queries = env.queries;
  spec.num_attributes = attrs;
  spec.domain = env.domain;
  spec.pattern = QueryPattern::kRandom;
  spec.seed = env.seed;
  const auto queries = GenerateWorkload(spec);
  const auto names = MakeAttributeNames(attrs);

  std::vector<size_t> client_counts;
  for (size_t c = 1; c < env.cores; c *= 2) client_counts.push_back(c);
  client_counts.push_back(env.cores);

  ReportTable t("Fig 17: total processing cost (s) vs #clients");
  t.SetHeader({"clients", "PVDC", "HI", "PVDC split", "HI split"});
  for (size_t clients : client_counts) {
    // Divide the machine's contexts across clients (each query runs with
    // total/clients threads), as the paper's labels u32, u16w8x2, ... do.
    const size_t per_query = std::max<size_t>(1, env.cores / clients);
    double pvdc, hi;
    {
      Database db(PlainOptions(ExecMode::kAdaptive, per_query));
      LoadUniformTable(db, "r", attrs, env.rows, env.domain, env.seed);
      pvdc = RunWorkloadConcurrent(db, "r", names, queries, clients);
    }
    // Holistic: user queries take half the per-client budget when there is
    // room; the rest of the machine is worker territory.
    const size_t u = std::max<size_t>(1, per_query / 2);
    const size_t w = std::max<size_t>(1, (env.cores - u * clients) /
                                             (2 * std::max<size_t>(1, clients)));
    const size_t z = 2;
    {
      Database db(HolisticOptions(u, w, z, env.cores));
      LoadUniformTable(db, "r", attrs, env.rows, env.domain, env.seed);
      hi = RunWorkloadConcurrent(db, "r", names, queries, clients);
    }
    t.AddRow({std::to_string(clients), FormatSeconds(pvdc), FormatSeconds(hi),
              SplitLabel(per_query, 0, 0), SplitLabel(u, w, z)});
  }
  t.Print();
  SaveBenchJson(t, "fig17");
  std::printf("\n# paper: big HI benefit with few clients; benefit "
              "disappears as clients saturate all contexts\n");
  return 0;
}
