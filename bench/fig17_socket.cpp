/// \file fig17_socket.cpp
/// \brief Figure 17 (§5.8) rerun over loopback TCP: the same concurrent-
/// client sweep as fig17_clients, but every client is a real HolixClient
/// on a socket talking to a HolixServer in front of the database. The
/// side-by-side in-process and socket columns expose the network tax on
/// the paper's robustness result; identical result checksums prove the
/// service layer returns exactly what the in-process session path returns.

#include <atomic>
#include <cstdint>
#include <deque>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "server/client.h"
#include "server/server.h"
#include "util/timer.h"

using namespace holix;
using namespace holix::bench;

namespace {

struct SocketRun {
  double seconds;
  uint64_t checksum;
};

/// Drives \p clients socket clients against a fresh server over \p db:
/// each client thread consumes queries round-robin (same driver shape as
/// the in-process run), pipelining a small window of requests to keep the
/// wire busy. Connections, handshakes, and sessions are established
/// before the clock starts — mirroring the in-process run, whose sessions
/// and handles are also built outside the timed region — so the two
/// columns differ only by per-query transport cost.
SocketRun RunWorkloadOverSockets(Database& db,
                                 const std::vector<std::string>& columns,
                                 const std::vector<RangeQuery>& queries,
                                 size_t clients) {
  net::HolixServer server(db, net::ServerOptions{});
  server.Start();
  const uint16_t port = server.port();

  std::vector<net::HolixClient> conns(clients);
  std::vector<uint64_t> sessions(clients);
  for (size_t c = 0; c < clients; ++c) {
    conns[c].Connect("127.0.0.1", port);
    sessions[c] = conns[c].OpenSession();
  }

  constexpr size_t kWindow = 8;  // pipelined requests per client
  std::atomic<size_t> next{0};
  std::atomic<uint64_t> checksum{0};
  std::vector<std::thread> threads;
  threads.reserve(clients);
  Timer wall;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      net::HolixClient& client = conns[c];
      const uint64_t session = sessions[c];
      uint64_t local = 0;
      std::vector<uint64_t> window;  // in-flight request ids, oldest first
      window.reserve(kWindow);
      size_t head = 0;
      for (;;) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= queries.size()) break;
        const RangeQuery& q = queries[i];
        window.push_back(
            client.SendCountRange(session, "r", columns[q.attr], q.low,
                                  q.high));
        if (window.size() - head >= kWindow) {
          local += client.AwaitCount(window[head++]);
        }
      }
      for (; head < window.size(); ++head) {
        local += client.AwaitCount(window[head]);
      }
      client.CloseSession(session);
      checksum.fetch_add(local, std::memory_order_relaxed);
    });
  }
  for (auto& t : threads) t.join();
  const double seconds = wall.ElapsedSeconds();
  server.Stop();
  return {seconds, checksum.load(std::memory_order_relaxed)};
}

/// The 1k-connection sweep: \p clients connections multiplexed across a
/// small fixed set of driver threads (mirroring the server's own
/// event-loop shape — neither side runs a thread per connection). Each
/// worker owns clients/workers pipelined connections and round-robins
/// between them; the query set, pipeline window and checksum are the same
/// as the thread-per-client driver, so rows are comparable.
SocketRun RunWorkloadMultiplexed(Database& db,
                                 const std::vector<std::string>& columns,
                                 const std::vector<RangeQuery>& queries,
                                 size_t clients, size_t workers) {
  net::HolixServer server(db, net::ServerOptions{});
  server.Start();
  const uint16_t port = server.port();

  struct ConnState {
    net::HolixClient cli;
    uint64_t sid = 0;
    std::deque<uint64_t> window;  // in-flight request ids, oldest first
  };
  // Connections and sessions open before the clock starts, as in the
  // thread-per-client driver.
  std::vector<std::vector<ConnState>> shards(workers);
  for (size_t w = 0; w < workers; ++w) {
    const size_t lo = w * clients / workers;
    const size_t hi = (w + 1) * clients / workers;
    shards[w] = std::vector<ConnState>(hi - lo);
    for (auto& cs : shards[w]) {
      cs.cli.Connect("127.0.0.1", port);
      cs.sid = cs.cli.OpenSession();
    }
  }

  constexpr size_t kWindow = 8;  // pipelined requests per connection
  std::atomic<size_t> next{0};
  std::atomic<uint64_t> checksum{0};
  std::vector<std::thread> threads;
  threads.reserve(workers);
  Timer wall;
  for (size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      std::vector<ConnState>& conns = shards[w];
      uint64_t local = 0;
      bool exhausted = false;
      while (!exhausted) {
        bool sent = false;
        for (auto& cs : conns) {
          if (cs.window.size() >= kWindow) {
            local += cs.cli.AwaitCount(cs.window.front());
            cs.window.pop_front();
          }
          const size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= queries.size()) {
            exhausted = true;
            break;
          }
          const RangeQuery& q = queries[i];
          cs.window.push_back(cs.cli.SendCountRange(cs.sid, "r",
                                                    columns[q.attr], q.low,
                                                    q.high));
          sent = true;
        }
        if (!sent) break;
      }
      for (auto& cs : conns) {
        while (!cs.window.empty()) {
          local += cs.cli.AwaitCount(cs.window.front());
          cs.window.pop_front();
        }
        cs.cli.CloseSession(cs.sid);
      }
      checksum.fetch_add(local, std::memory_order_relaxed);
    });
  }
  for (auto& t : threads) t.join();
  const double seconds = wall.ElapsedSeconds();
  server.Stop();
  return {seconds, checksum.load(std::memory_order_relaxed)};
}

}  // namespace

int main() {
  const BenchEnv env = ReadEnv(/*rows=*/1u << 21, /*queries=*/1024);
  const size_t attrs = 10;
  PrintScaleNote(env, attrs);

  WorkloadSpec spec;
  spec.num_queries = env.queries;
  spec.num_attributes = attrs;
  spec.domain = env.domain;
  spec.pattern = QueryPattern::kRandom;
  spec.seed = env.seed;
  const auto queries = GenerateWorkload(spec);
  const auto names = MakeAttributeNames(attrs);

  std::vector<size_t> client_counts;
  for (size_t c = 1; c < env.cores; c *= 2) client_counts.push_back(c);
  client_counts.push_back(env.cores);

  bool checksums_ok = true;
  ReportTable t(
      "Fig 17 over loopback TCP: total processing cost (s) vs #clients");
  t.SetHeader({"clients", "PVDC inproc", "PVDC socket", "HI inproc",
               "HI socket", "checksum", "match"});
  for (size_t clients : client_counts) {
    const size_t per_query = std::max<size_t>(1, env.cores / clients);
    // PVDC: in-process baseline and the socket rerun, each on a fresh
    // database (both pay first-touch cracking; only the transport differs).
    ConcurrentRunResult pvdc_inproc{};
    SocketRun pvdc_socket{};
    {
      Database db(PlainOptions(ExecMode::kAdaptive, per_query));
      LoadUniformTable(db, "r", attrs, env.rows, env.domain, env.seed);
      pvdc_inproc =
          RunWorkloadConcurrentChecked(db, "r", names, queries, clients);
    }
    {
      Database db(PlainOptions(ExecMode::kAdaptive, per_query));
      LoadUniformTable(db, "r", attrs, env.rows, env.domain, env.seed);
      pvdc_socket = RunWorkloadOverSockets(db, names, queries, clients);
    }
    // Holistic: same thread split as fig17_clients.
    const size_t u = std::max<size_t>(1, per_query / 2);
    const size_t w = std::max<size_t>(
        1, (env.cores - u * clients) / (2 * std::max<size_t>(1, clients)));
    const size_t z = 2;
    ConcurrentRunResult hi_inproc{};
    SocketRun hi_socket{};
    {
      Database db(HolisticOptions(u, w, z, env.cores));
      LoadUniformTable(db, "r", attrs, env.rows, env.domain, env.seed);
      hi_inproc =
          RunWorkloadConcurrentChecked(db, "r", names, queries, clients);
    }
    {
      Database db(HolisticOptions(u, w, z, env.cores));
      LoadUniformTable(db, "r", attrs, env.rows, env.domain, env.seed);
      hi_socket = RunWorkloadOverSockets(db, names, queries, clients);
    }
    const bool match = pvdc_inproc.result_checksum == pvdc_socket.checksum &&
                       hi_inproc.result_checksum == hi_socket.checksum &&
                       pvdc_inproc.result_checksum ==
                           hi_inproc.result_checksum;
    checksums_ok = checksums_ok && match;
    t.AddRow({std::to_string(clients), FormatSeconds(pvdc_inproc.seconds),
              FormatSeconds(pvdc_socket.seconds),
              FormatSeconds(hi_inproc.seconds),
              FormatSeconds(hi_socket.seconds),
              std::to_string(pvdc_inproc.result_checksum),
              match ? "yes" : "MISMATCH"});
  }
  t.Print();
  SaveBenchJson(t, "fig17_socket");

  // The 1k-connection sweep: way past a thread-per-client regime, driven
  // by a fixed worker pool multiplexing pipelined connections. The
  // in-process oracle checksum comes from one adaptive run (the checksum
  // is a property of the query set, not the client count); wall-clock per
  // row must stay flat as connections grow, since the query count is
  // fixed and idle connections cost the event loop nothing.
  uint64_t oracle_checksum = 0;
  {
    Database db(PlainOptions(ExecMode::kAdaptive, env.cores));
    LoadUniformTable(db, "r", attrs, env.rows, env.domain, env.seed);
    oracle_checksum =
        RunWorkloadConcurrentChecked(db, "r", names, queries, 1)
            .result_checksum;
  }
  const size_t sweep_workers = std::min<size_t>(8, 2 * env.cores);
  // Both socket ends live in this process: 1024 connections need ~2.2k
  // fds, over the common 1024 default soft limit.
  const size_t fd_limit = RaiseFdLimit(4096);
  ReportTable ts("Fig 17 socket sweep: 1k+ connections, fixed query count");
  ts.SetHeader({"clients", "PVDC socket", "HI socket", "checksum", "match"});
  for (size_t clients : {size_t{16}, size_t{64}, size_t{256}, size_t{1024}}) {
    if (fd_limit > 0 && 2 * clients + 128 > fd_limit) {
      std::printf("# skipping %zu clients: RLIMIT_NOFILE=%zu too low "
                  "(raise ulimit -n)\n",
                  clients, fd_limit);
      continue;
    }
    SocketRun pvdc{};
    {
      Database db(PlainOptions(ExecMode::kAdaptive, env.cores));
      LoadUniformTable(db, "r", attrs, env.rows, env.domain, env.seed);
      pvdc = RunWorkloadMultiplexed(db, names, queries, clients,
                                    sweep_workers);
    }
    const size_t u = std::max<size_t>(1, env.cores / 2);
    SocketRun hi{};
    {
      Database db(HolisticOptions(u, 1, 2, env.cores));
      LoadUniformTable(db, "r", attrs, env.rows, env.domain, env.seed);
      hi = RunWorkloadMultiplexed(db, names, queries, clients, sweep_workers);
    }
    const bool match =
        pvdc.checksum == oracle_checksum && hi.checksum == oracle_checksum;
    checksums_ok = checksums_ok && match;
    ts.AddRow({std::to_string(clients), FormatSeconds(pvdc.seconds),
               FormatSeconds(hi.seconds), std::to_string(pvdc.checksum),
               match ? "yes" : "MISMATCH"});
  }
  ts.Print();
  SaveBenchJson(ts, "fig17_socket_sweep");

  std::printf("\n# paper: Fig. 17's robustness story, now with the network "
              "tax; socket checksums must equal the in-process run\n");
  if (!checksums_ok) {
    std::fprintf(stderr, "# CHECKSUM MISMATCH between socket and in-process "
                         "runs\n");
    return 1;
  }
  return 0;
}
