/// \file fig17_socket.cpp
/// \brief Figure 17 (§5.8) rerun over loopback TCP: the same concurrent-
/// client sweep as fig17_clients, but every client is a real HolixClient
/// on a socket talking to a HolixServer in front of the database. The
/// side-by-side in-process and socket columns expose the network tax on
/// the paper's robustness result; identical result checksums prove the
/// service layer returns exactly what the in-process session path returns.

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "server/client.h"
#include "server/server.h"
#include "util/timer.h"

using namespace holix;
using namespace holix::bench;

namespace {

struct SocketRun {
  double seconds;
  uint64_t checksum;
};

/// Drives \p clients socket clients against a fresh server over \p db:
/// each client thread consumes queries round-robin (same driver shape as
/// the in-process run), pipelining a small window of requests to keep the
/// wire busy. Connections, handshakes, and sessions are established
/// before the clock starts — mirroring the in-process run, whose sessions
/// and handles are also built outside the timed region — so the two
/// columns differ only by per-query transport cost.
SocketRun RunWorkloadOverSockets(Database& db,
                                 const std::vector<std::string>& columns,
                                 const std::vector<RangeQuery>& queries,
                                 size_t clients) {
  net::HolixServer server(db, net::ServerOptions{});
  server.Start();
  const uint16_t port = server.port();

  std::vector<net::HolixClient> conns(clients);
  std::vector<uint64_t> sessions(clients);
  for (size_t c = 0; c < clients; ++c) {
    conns[c].Connect("127.0.0.1", port);
    sessions[c] = conns[c].OpenSession();
  }

  constexpr size_t kWindow = 8;  // pipelined requests per client
  std::atomic<size_t> next{0};
  std::atomic<uint64_t> checksum{0};
  std::vector<std::thread> threads;
  threads.reserve(clients);
  Timer wall;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      net::HolixClient& client = conns[c];
      const uint64_t session = sessions[c];
      uint64_t local = 0;
      std::vector<uint64_t> window;  // in-flight request ids, oldest first
      window.reserve(kWindow);
      size_t head = 0;
      for (;;) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= queries.size()) break;
        const RangeQuery& q = queries[i];
        window.push_back(
            client.SendCountRange(session, "r", columns[q.attr], q.low,
                                  q.high));
        if (window.size() - head >= kWindow) {
          local += client.AwaitCount(window[head++]);
        }
      }
      for (; head < window.size(); ++head) {
        local += client.AwaitCount(window[head]);
      }
      client.CloseSession(session);
      checksum.fetch_add(local, std::memory_order_relaxed);
    });
  }
  for (auto& t : threads) t.join();
  const double seconds = wall.ElapsedSeconds();
  server.Stop();
  return {seconds, checksum.load(std::memory_order_relaxed)};
}

}  // namespace

int main() {
  const BenchEnv env = ReadEnv(/*rows=*/1u << 21, /*queries=*/1024);
  const size_t attrs = 10;
  PrintScaleNote(env, attrs);

  WorkloadSpec spec;
  spec.num_queries = env.queries;
  spec.num_attributes = attrs;
  spec.domain = env.domain;
  spec.pattern = QueryPattern::kRandom;
  spec.seed = env.seed;
  const auto queries = GenerateWorkload(spec);
  const auto names = MakeAttributeNames(attrs);

  std::vector<size_t> client_counts;
  for (size_t c = 1; c < env.cores; c *= 2) client_counts.push_back(c);
  client_counts.push_back(env.cores);

  bool checksums_ok = true;
  ReportTable t(
      "Fig 17 over loopback TCP: total processing cost (s) vs #clients");
  t.SetHeader({"clients", "PVDC inproc", "PVDC socket", "HI inproc",
               "HI socket", "checksum", "match"});
  for (size_t clients : client_counts) {
    const size_t per_query = std::max<size_t>(1, env.cores / clients);
    // PVDC: in-process baseline and the socket rerun, each on a fresh
    // database (both pay first-touch cracking; only the transport differs).
    ConcurrentRunResult pvdc_inproc{};
    SocketRun pvdc_socket{};
    {
      Database db(PlainOptions(ExecMode::kAdaptive, per_query));
      LoadUniformTable(db, "r", attrs, env.rows, env.domain, env.seed);
      pvdc_inproc =
          RunWorkloadConcurrentChecked(db, "r", names, queries, clients);
    }
    {
      Database db(PlainOptions(ExecMode::kAdaptive, per_query));
      LoadUniformTable(db, "r", attrs, env.rows, env.domain, env.seed);
      pvdc_socket = RunWorkloadOverSockets(db, names, queries, clients);
    }
    // Holistic: same thread split as fig17_clients.
    const size_t u = std::max<size_t>(1, per_query / 2);
    const size_t w = std::max<size_t>(
        1, (env.cores - u * clients) / (2 * std::max<size_t>(1, clients)));
    const size_t z = 2;
    ConcurrentRunResult hi_inproc{};
    SocketRun hi_socket{};
    {
      Database db(HolisticOptions(u, w, z, env.cores));
      LoadUniformTable(db, "r", attrs, env.rows, env.domain, env.seed);
      hi_inproc =
          RunWorkloadConcurrentChecked(db, "r", names, queries, clients);
    }
    {
      Database db(HolisticOptions(u, w, z, env.cores));
      LoadUniformTable(db, "r", attrs, env.rows, env.domain, env.seed);
      hi_socket = RunWorkloadOverSockets(db, names, queries, clients);
    }
    const bool match = pvdc_inproc.result_checksum == pvdc_socket.checksum &&
                       hi_inproc.result_checksum == hi_socket.checksum &&
                       pvdc_inproc.result_checksum ==
                           hi_inproc.result_checksum;
    checksums_ok = checksums_ok && match;
    t.AddRow({std::to_string(clients), FormatSeconds(pvdc_inproc.seconds),
              FormatSeconds(pvdc_socket.seconds),
              FormatSeconds(hi_inproc.seconds),
              FormatSeconds(hi_socket.seconds),
              std::to_string(pvdc_inproc.result_checksum),
              match ? "yes" : "MISMATCH"});
  }
  t.Print();
  SaveBenchJson(t, "fig17_socket");
  std::printf("\n# paper: Fig. 17's robustness story, now with the network "
              "tax; socket checksums must equal the in-process run\n");
  if (!checksums_ok) {
    std::fprintf(stderr, "# CHECKSUM MISMATCH between socket and in-process "
                         "runs\n");
    return 1;
  }
  return 0;
}
