/// \file fig6_state_of_the_art.cpp
/// \brief Reproduces Figure 6 (§5.1): holistic indexing vs. no indexing,
/// offline, online and adaptive indexing on the 1000-query / 10-attribute
/// microbenchmark with random ranges.
///
/// Prints:
///  (a) the cumulative response-time curve per method (log-spaced points),
///  (b) the 1 / 9 / 90 / 900 breakdown for adaptive vs holistic,
///  (c) cumulative index partitions for adaptive vs holistic,
///  (d) holistic worker activations (time and worker count per cycle).

#include "bench_common.h"

using namespace holix;
using namespace holix::bench;

int main() {
  const BenchEnv env = ReadEnv(/*rows=*/1u << 21, /*queries=*/1000);
  const size_t attrs = 10;
  PrintScaleNote(env, attrs);

  WorkloadSpec spec;
  spec.num_queries = env.queries;
  spec.num_attributes = attrs;
  spec.domain = env.domain;
  spec.pattern = QueryPattern::kRandom;
  spec.selectivity = 0;  // random ranges, as in the paper
  spec.seed = env.seed;
  const auto queries = GenerateWorkload(spec);

  const size_t u = env.cores / 2;          // user-query contexts
  const size_t w = env.cores / 4;          // holistic workers (x2 threads)
  struct ModeRun {
    const char* label;
    DatabaseOptions opts;
  };
  std::vector<ModeRun> modes = {
      {"no indexing", PlainOptions(ExecMode::kScan, env.cores)},
      {"offline indexing", PlainOptions(ExecMode::kOffline, env.cores)},
      {"online indexing", PlainOptions(ExecMode::kOnline, env.cores)},
      {"adaptive indexing", PlainOptions(ExecMode::kAdaptive, env.cores)},
      {"holistic indexing", HolisticOptions(u, w, 2, env.cores)},
  };

  std::vector<ResponseSeries> series(modes.size());
  std::vector<size_t> final_pieces(modes.size(), 0);
  std::vector<ActivationRecord> activations;

  for (size_t m = 0; m < modes.size(); ++m) {
    Database db(modes[m].opts);
    LoadUniformTable(db, "r", attrs, env.rows, env.domain, env.seed);
    const auto names = MakeAttributeNames(attrs);
    RunResult r = RunWorkload(db, "r", names, queries);
    series[m] = std::move(r.series);
    final_pieces[m] = db.TotalIndexPieces();
    if (db.holistic() != nullptr) activations = db.holistic()->Activations();
    std::printf("# %-18s total=%8.3fs checksum=%llu\n", modes[m].label,
                series[m].Total(),
                static_cast<unsigned long long>(r.result_checksum));
  }

  {
    ReportTable t("Fig 6(a): cumulative response time (seconds)");
    std::vector<std::string> header = {"queries"};
    for (const auto& m : modes) header.push_back(m.label);
    t.SetHeader(header);
    const auto marks = series[0].LogSpacedCurve();
    for (const auto& [k, _] : marks) {
      std::vector<std::string> row = {std::to_string(k)};
      for (auto& s : series) row.push_back(FormatSeconds(s.CumulativeAt(k)));
      t.AddRow(row);
    }
    t.Print();
    SaveBenchJson(t, "fig6a");
  }

  {
    ReportTable t("Fig 6(b): breakdown of total response time (seconds)");
    t.SetHeader({"queries", "adaptive", "holistic"});
    const auto a = series[3].DecadeBreakdown();
    const auto h = series[4].DecadeBreakdown();
    const char* buckets[] = {"1", "9", "90", "900"};
    for (size_t i = 0; i < a.size() && i < 4; ++i) {
      t.AddRow({buckets[i], FormatSeconds(a[i]),
                i < h.size() ? FormatSeconds(h[i]) : "-"});
    }
    t.Print();
    SaveBenchJson(t, "fig6b");
  }

  {
    ReportTable t("Fig 6(c): index partitions after the workload");
    t.SetHeader({"method", "total pieces across 10 indices"});
    t.AddRow({"adaptive indexing", std::to_string(final_pieces[3])});
    t.AddRow({"holistic indexing", std::to_string(final_pieces[4])});
    t.Print();
    SaveBenchJson(t, "fig6c");
  }

  {
    ReportTable t("Fig 6(d): holistic worker activations");
    t.SetHeader({"activation", "t(s)", "#workers", "cycle time(s)"});
    const size_t n = activations.size();
    const size_t step = n > 40 ? n / 40 : 1;
    for (size_t i = 0; i < n; i += step) {
      t.AddRow({std::to_string(i + 1), FormatSeconds(activations[i].at_seconds),
                std::to_string(activations[i].workers),
                FormatSeconds(activations[i].cycle_seconds)});
    }
    t.Print();
    SaveBenchJson(t, "fig6d");
    std::printf("# %zu activations total\n", n);
  }

  const double speedup = series[3].Total() / series[4].Total();
  std::printf("\n# holistic vs adaptive speedup: %.2fx (paper: ~2x)\n",
              speedup);
  return 0;
}
