/// \file fig7_thread_split.cpp
/// \brief Reproduces Figure 7 (§5.1): how distributing hardware contexts
/// between user queries (uX) and holistic workers (wYxZ) affects the total
/// processing cost. The paper's headline: an even split beats giving all
/// contexts to user-query cracking.

#include "bench_common.h"

using namespace holix;
using namespace holix::bench;

int main() {
  const BenchEnv env = ReadEnv(/*rows=*/1u << 21, /*queries=*/1000);
  const size_t attrs = 10;
  PrintScaleNote(env, attrs);

  WorkloadSpec spec;
  spec.num_queries = env.queries;
  spec.num_attributes = attrs;
  spec.domain = env.domain;
  spec.pattern = QueryPattern::kRandom;
  spec.seed = env.seed;
  const auto queries = GenerateWorkload(spec);

  const size_t c = env.cores;  // paper: 32
  struct Split {
    size_t u, w, z;
  };
  // Mirrors the paper's list (u32, u30w2x1, ..., u2w5x6) scaled to c cores.
  std::vector<Split> splits = {
      {c, 0, 0},           {c - 2, 2, 1},       {c - 2, 1, 2},
      {c / 2, c / 2, 1},   {c / 2, 1, c / 2},   {c / 2, c / 8, 4},
      {c / 2, 2, c / 4},   {c / 2, c / 4, 2},   {2, c - 2, 1},
      {2, 1, c - 2},       {2, (c - 2) / 5, 5},
  };

  ReportTable t("Fig 7: thread distribution users vs holistic workers");
  t.SetHeader({"split", "total cost (s)"});
  double all_user_cost = 0;
  double best_cost = 1e30;
  std::string best_label;
  for (const auto& s : splits) {
    if (s.u == 0 || (s.w > 0 && s.z == 0)) continue;
    DatabaseOptions opts =
        s.w == 0 ? PlainOptions(ExecMode::kAdaptive, s.u)
                 : HolisticOptions(s.u, s.w, s.z, c);
    RunResult r = RunMode(opts, env, attrs, queries);
    const double cost = r.series.Total();
    const std::string label = SplitLabel(s.u, s.w, s.z);
    t.AddRow({label, FormatSeconds(cost)});
    if (s.w == 0) all_user_cost = cost;
    if (cost < best_cost) {
      best_cost = cost;
      best_label = label;
    }
  }
  t.Print();
  SaveBenchJson(t, "fig7");
  std::printf(
      "\n# best split %s: %.2fx faster than all-user u%zu "
      "(paper: even split wins by ~2x)\n",
      best_label.c_str(), all_user_cost / best_cost, c);
  return 0;
}
