/// \file fig8_per_query.cpp
/// \brief Reproduces Figure 8 (§5.1): per-query response time of adaptive
/// indexing on one attribute — early queries reorganize big partitions and
/// are slow; later ones touch ever-smaller pieces.

#include "bench_common.h"

using namespace holix;
using namespace holix::bench;

int main() {
  const BenchEnv env = ReadEnv(/*rows=*/1u << 22, /*queries=*/100);
  PrintScaleNote(env, 1);

  WorkloadSpec spec;
  spec.num_queries = env.queries;
  spec.num_attributes = 1;
  spec.domain = env.domain;
  spec.pattern = QueryPattern::kRandom;
  spec.seed = env.seed;
  const auto queries = GenerateWorkload(spec);

  RunResult r =
      RunMode(PlainOptions(ExecMode::kAdaptive, env.cores), env, 1, queries);

  ReportTable t("Fig 8: per-query response time, adaptive indexing");
  t.SetHeader({"query", "response time (s)"});
  for (size_t i = 0; i < r.series.size(); ++i) {
    t.AddRow({std::to_string(i + 1), FormatSeconds(r.series.latencies()[i])});
  }
  t.Print();
  SaveBenchJson(t, "fig8");
  const auto& lat = r.series.latencies();
  double first10 = 0, last10 = 0;
  for (size_t i = 0; i < 10 && i < lat.size(); ++i) first10 += lat[i];
  for (size_t i = lat.size() >= 10 ? lat.size() - 10 : 0; i < lat.size(); ++i)
    last10 += lat[i];
  std::printf("\n# first-10 total %.4fs vs last-10 total %.4fs "
              "(paper: early queries dominate)\n",
              first10, last10);
  return 0;
}
