/// \file fig9_idle_before.cpp
/// \brief Reproduces Figure 9 (§5.1): when idle time exists before the
/// workload, holistic indexing seeds C_potential with speculative indices
/// and refines them before the first query, so even the earliest queries
/// find pre-refined indices. Adaptive indexing cannot exploit the gap.

#include <chrono>
#include <thread>

#include "bench_common.h"

using namespace holix;
using namespace holix::bench;

int main() {
  const BenchEnv env = ReadEnv(/*rows=*/1u << 21, /*queries=*/1000);
  const size_t attrs = 10;
  PrintScaleNote(env, attrs);
  // The paper induces 22 s of idle time at 2^30 scale; we scale the gap
  // with the data (default ~1.5 s at 2^21).
  const double idle_seconds =
      EnvDouble("HOLIX_IDLE_SECONDS",
                1.5 * static_cast<double>(env.rows) / (1u << 21));

  WorkloadSpec spec;
  spec.num_queries = env.queries;
  spec.num_attributes = attrs;
  spec.domain = env.domain;
  spec.pattern = QueryPattern::kRandom;
  spec.seed = env.seed;
  const auto queries = GenerateWorkload(spec);
  const auto names = MakeAttributeNames(attrs);

  // Adaptive: the idle time is wasted.
  ResponseSeries adaptive;
  {
    Database db(PlainOptions(ExecMode::kAdaptive, env.cores));
    LoadUniformTable(db, "r", attrs, env.rows, env.domain, env.seed);
    std::this_thread::sleep_for(std::chrono::duration<double>(idle_seconds));
    adaptive = RunWorkload(db, "r", names, queries).series;
  }

  // Holistic: seed all attributes into C_potential; workers refine during
  // the idle gap.
  ResponseSeries holistic;
  size_t pre_cracks = 0;
  {
    Database db(HolisticOptions(env.cores / 2, env.cores / 4, 2, env.cores));
    LoadUniformTable(db, "r", attrs, env.rows, env.domain, env.seed);
    for (const auto& name : names) db.SeedPotentialIndex("r", name);
    std::this_thread::sleep_for(std::chrono::duration<double>(idle_seconds));
    pre_cracks = db.holistic()->TotalWorkerCracks();
    holistic = RunWorkload(db, "r", names, queries).series;
  }

  ReportTable t("Fig 9: idle time before query processing (breakdown, s)");
  t.SetHeader({"queries", "adaptive", "holistic"});
  const auto a = adaptive.DecadeBreakdown();
  const auto h = holistic.DecadeBreakdown();
  const char* buckets[] = {"1", "9", "90", "900"};
  for (size_t i = 0; i < a.size() && i < 4; ++i) {
    t.AddRow({buckets[i], FormatSeconds(a[i]),
              i < h.size() ? FormatSeconds(h[i]) : "-"});
  }
  t.Print();
  SaveBenchJson(t, "fig9");
  std::printf("\n# idle gap %.2fs; worker cracks during idle: %zu; "
              "totals: adaptive %.3fs vs holistic %.3fs\n",
              idle_seconds, pre_cracks, adaptive.Total(), holistic.Total());
  return 0;
}
