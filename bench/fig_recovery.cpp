/// \file fig_recovery.cpp
/// \brief Durability figure (no paper counterpart): checkpoint cost, crash
/// recovery time, and cold vs warm restart time-to-convergence. A database
/// cracks under a random workload and checkpoints; a "crash" is then
/// simulated two ways — a cold restart that reloads raw data and re-cracks
/// from scratch, and a warm start that recovers the snapshot + WAL tail and
/// re-cracks to the saved pivots before serving. The warm path should pay
/// its cost once in recovery and answer its first queries at
/// post-convergence latency.

#include <cstdint>
#include <filesystem>
#include <string>

#include "bench_common.h"
#include "persist/persistence.h"
#include "util/timer.h"

using namespace holix;
using namespace holix::bench;

namespace {

constexpr size_t kAttrs = 2;

double RunQueries(Database& db, const std::vector<std::string>& names,
                  const std::vector<RangeQuery>& queries, double* first) {
  double total = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    Timer t;
    db.CountRange("r", names[queries[i].attr], queries[i].low,
                  queries[i].high);
    const double s = t.ElapsedSeconds();
    if (i == 0 && first != nullptr) *first = s;
    total += s;
  }
  return total;
}

uint64_t DirectoryBytes(const std::string& dir) {
  uint64_t bytes = 0;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(dir, ec)) {
    if (entry.is_regular_file(ec)) bytes += entry.file_size(ec);
  }
  return bytes;
}

}  // namespace

int main() {
  const BenchEnv env = ReadEnv(/*rows=*/1u << 22, /*queries=*/200);
  PrintScaleNote(env, kAttrs);

  const std::filesystem::path root =
      std::filesystem::temp_directory_path() / "holix_fig_recovery";
  std::filesystem::remove_all(root);
  std::filesystem::create_directories(root);
  const std::string dir = (root / "data").string();

  WorkloadSpec spec;
  spec.num_queries = env.queries;
  spec.num_attributes = kAttrs;
  spec.domain = env.domain;
  spec.pattern = QueryPattern::kRandom;
  spec.seed = env.seed;
  const auto queries = GenerateWorkload(spec);
  const auto names = MakeAttributeNames(kAttrs);

  persist::PersistOptions popts;
  popts.data_dir = dir;
  popts.fsync = persist::FsyncPolicy::kAlways;

  // Build: crack under the workload, checkpoint, then leave a WAL tail of
  // durable inserts that recovery must replay on top of the snapshot.
  const size_t wal_tail = std::min<size_t>(env.queries * 2, 1000);
  double build_seconds, checkpoint_seconds, wal_seconds;
  {
    Database db(PlainOptions(ExecMode::kAdaptive, env.cores));
    LoadUniformTable(db, "r", kAttrs, env.rows, env.domain, env.seed);
    persist::PersistenceManager pm(db, popts);
    build_seconds = RunQueries(db, names, queries, nullptr);
    Timer ckpt;
    pm.Checkpoint();
    checkpoint_seconds = ckpt.ElapsedSeconds();
    Timer wal;
    for (size_t i = 0; i < wal_tail; ++i) {
      db.Insert("r", "a0", env.domain + 1 + static_cast<int64_t>(i));
    }
    wal_seconds = wal.ElapsedSeconds();
  }
  const uint64_t snapshot_bytes = DirectoryBytes(dir);

  // Cold restart: reload the raw column data, re-apply the updates, and
  // let the same workload re-crack from nothing.
  double cold_load_seconds, cold_first = 0, cold_total;
  {
    Database db(PlainOptions(ExecMode::kAdaptive, env.cores));
    Timer load;
    LoadUniformTable(db, "r", kAttrs, env.rows, env.domain, env.seed);
    for (size_t i = 0; i < wal_tail; ++i) {
      db.Insert("r", "a0", env.domain + 1 + static_cast<int64_t>(i));
    }
    cold_load_seconds = load.ElapsedSeconds();
    cold_total = RunQueries(db, names, queries, &cold_first);
  }

  // Warm restart: recover snapshot + WAL and re-crack to the saved pivots,
  // then serve the same workload against the already-converged index.
  double recover_seconds, warm_first = 0, warm_total;
  {
    Database db(PlainOptions(ExecMode::kAdaptive, env.cores));
    Timer rec;
    persist::PersistenceManager pm(db, popts);
    recover_seconds = rec.ElapsedSeconds();
    warm_total = RunQueries(db, names, queries, &warm_first);
  }

  ReportTable t("Fig R: crash recovery and warm-start convergence");
  t.SetHeader({"stage", "seconds"});
  t.AddRow({"build: " + std::to_string(env.queries) + " cracking queries",
            FormatSeconds(build_seconds)});
  t.AddRow({"checkpoint (" +
                std::to_string(snapshot_bytes / (1024 * 1024)) + " MiB)",
            FormatSeconds(checkpoint_seconds)});
  t.AddRow({"wal tail: " + std::to_string(wal_tail) +
                " durable inserts (fsync=always)",
            FormatSeconds(wal_seconds)});
  t.AddRow({"cold restart: reload + re-apply updates",
            FormatSeconds(cold_load_seconds)});
  t.AddRow({"cold: first query", FormatSeconds(cold_first)});
  t.AddRow({"cold: full workload re-converges", FormatSeconds(cold_total)});
  t.AddRow({"warm recovery: snapshot + wal replay + re-crack",
            FormatSeconds(recover_seconds)});
  t.AddRow({"warm: first query", FormatSeconds(warm_first)});
  t.AddRow({"warm: full workload", FormatSeconds(warm_total)});
  t.Print();
  SaveBenchJson(t, "fig_recovery");

  std::printf("\n# warm first query %.1fx faster than cold; workload total "
              "%.1fx (warm start inherits the converged index)\n",
              cold_first / std::max(warm_first, 1e-9),
              cold_total / std::max(warm_total, 1e-9));
  std::filesystem::remove_all(root);
  return 0;
}
