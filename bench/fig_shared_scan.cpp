/// \file fig_shared_scan.cpp
/// \brief Shared-scan coalescing under concurrent socket clients: N
/// clients hammering range counts on the SAME column should cost far less
/// than N independent crack/scan passes, because the event-loop server
/// batches concurrent requests into one Database::CountRangeBatchScalar
/// pass (union of the bounds cracked once, per-request counts carved out
/// of a single scan).
///
/// The sweep grows the client count with a fixed total query budget and
/// reports wall seconds with the coalescer ON vs OFF, plus how many
/// batches the ON run needed (requests/batches is the average batch
/// size). Total cost must stay sublinear in client count on the ON
/// column, and both columns must reproduce the in-process checksum
/// exactly — coalescing is a scheduling optimisation, never a semantic
/// one.

#include <atomic>
#include <cstdint>
#include <deque>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "server/client.h"
#include "server/server.h"
#include "util/timer.h"

using namespace holix;
using namespace holix::bench;

namespace {

struct SharedScanRun {
  double seconds = 0;
  uint64_t checksum = 0;
  uint64_t batches = 0;
  uint64_t requests = 0;
};

/// Drives \p clients pipelined connections (multiplexed over a small
/// worker pool) through \p queries same-column counts against a fresh
/// server on \p db with the coalescer toggled by \p shared.
SharedScanRun RunSharedScanWorkload(Database& db,
                                    const std::vector<RangeQuery>& queries,
                                    size_t clients, size_t workers,
                                    bool shared) {
  net::ServerOptions sopts;
  sopts.shared_scans = shared;
  net::HolixServer server(db, sopts);
  server.Start();
  const uint16_t port = server.port();

  struct ConnState {
    net::HolixClient cli;
    uint64_t sid = 0;
    std::deque<uint64_t> window;
  };
  std::vector<std::vector<ConnState>> shards(workers);
  for (size_t w = 0; w < workers; ++w) {
    const size_t lo = w * clients / workers;
    const size_t hi = (w + 1) * clients / workers;
    shards[w] = std::vector<ConnState>(hi - lo);
    for (auto& cs : shards[w]) {
      cs.cli.Connect("127.0.0.1", port);
      cs.sid = cs.cli.OpenSession();
    }
  }

  constexpr size_t kWindow = 8;
  std::atomic<size_t> next{0};
  std::atomic<uint64_t> checksum{0};
  std::vector<std::thread> threads;
  threads.reserve(workers);
  Timer wall;
  for (size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      std::vector<ConnState>& conns = shards[w];
      uint64_t local = 0;
      bool exhausted = false;
      while (!exhausted) {
        bool sent = false;
        for (auto& cs : conns) {
          if (cs.window.size() >= kWindow) {
            local += cs.cli.AwaitCount(cs.window.front());
            cs.window.pop_front();
          }
          const size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= queries.size()) {
            exhausted = true;
            break;
          }
          const RangeQuery& q = queries[i];
          cs.window.push_back(
              cs.cli.SendCountRange(cs.sid, "r", "a0", q.low, q.high));
          sent = true;
        }
        if (!sent) break;
      }
      for (auto& cs : conns) {
        while (!cs.window.empty()) {
          local += cs.cli.AwaitCount(cs.window.front());
          cs.window.pop_front();
        }
        cs.cli.CloseSession(cs.sid);
      }
      checksum.fetch_add(local, std::memory_order_relaxed);
    });
  }
  for (auto& t : threads) t.join();
  SharedScanRun run;
  run.seconds = wall.ElapsedSeconds();
  run.checksum = checksum.load(std::memory_order_relaxed);
  run.batches = server.SharedScanBatches();
  run.requests = server.SharedScanRequests();
  server.Stop();
  return run;
}

}  // namespace

int main() {
  const BenchEnv env = ReadEnv(/*rows=*/1u << 21, /*queries=*/1024);
  PrintScaleNote(env, /*num_attrs=*/1);

  WorkloadSpec spec;
  spec.num_queries = env.queries;
  spec.num_attributes = 1;  // every query hits the same column
  spec.domain = env.domain;
  spec.pattern = QueryPattern::kRandom;
  spec.seed = env.seed;
  const auto queries = GenerateWorkload(spec);

  // In-process oracle checksum (the checksum is a property of the query
  // set; client count and transport must not change it).
  uint64_t oracle = 0;
  {
    Database db(PlainOptions(ExecMode::kAdaptive, env.cores));
    LoadUniformTable(db, "r", 1, env.rows, env.domain, env.seed);
    Session s = db.OpenSession();
    for (const RangeQuery& q : queries) {
      oracle += s.CountRange("r", "a0", q.low, q.high);
    }
  }

  const size_t workers = std::min<size_t>(8, 2 * env.cores);
  RaiseFdLimit(2048);  // both socket ends live in this process
  bool checksums_ok = true;
  ReportTable t(
      "Shared scans: same-column counts, coalesced vs independent (s)");
  t.SetHeader({"clients", "shared", "independent", "batches", "avg batch",
               "checksum", "match"});
  for (size_t clients : {size_t{1}, size_t{4}, size_t{16}, size_t{64},
                         size_t{256}}) {
    SharedScanRun on{};
    {
      Database db(PlainOptions(ExecMode::kAdaptive, env.cores));
      LoadUniformTable(db, "r", 1, env.rows, env.domain, env.seed);
      on = RunSharedScanWorkload(db, queries, clients, workers, true);
    }
    SharedScanRun off{};
    {
      Database db(PlainOptions(ExecMode::kAdaptive, env.cores));
      LoadUniformTable(db, "r", 1, env.rows, env.domain, env.seed);
      off = RunSharedScanWorkload(db, queries, clients, workers, false);
    }
    const bool match = on.checksum == oracle && off.checksum == oracle;
    checksums_ok = checksums_ok && match;
    const double avg_batch =
        on.batches > 0 ? static_cast<double>(on.requests) /
                             static_cast<double>(on.batches)
                       : 0.0;
    char avg[32];
    std::snprintf(avg, sizeof(avg), "%.1f", avg_batch);
    t.AddRow({std::to_string(clients), FormatSeconds(on.seconds),
              FormatSeconds(off.seconds), std::to_string(on.batches), avg,
              std::to_string(on.checksum), match ? "yes" : "MISMATCH"});
  }
  t.Print();
  SaveBenchJson(t, "fig_shared_scan");

  std::printf("\n# shared scans batch concurrent same-column counts into "
              "single crack/scan passes; checksums must match the "
              "in-process oracle\n");
  if (!checksums_ok) {
    std::fprintf(stderr, "# CHECKSUM MISMATCH in shared-scan runs\n");
    return 1;
  }
  return 0;
}
