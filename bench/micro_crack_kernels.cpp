/// \file micro_crack_kernels.cpp
/// \brief google-benchmark microbenchmarks of the cracking kernels and the
/// cracker index: the CPU-efficiency story behind §4.2 / [44].

#include <benchmark/benchmark.h>

#include <vector>

#include "cracking/crack_kernels.h"
#include "cracking/cracker_column.h"
#include "cracking/cracker_index.h"
#include "cracking/parallel_crack.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using namespace holix;

std::vector<int64_t> MakeData(size_t n) {
  Rng rng(7);
  std::vector<int64_t> v(n);
  for (auto& x : v) x = static_cast<int64_t>(rng.Below(1u << 30));
  return v;
}

void BM_CrackInTwoScalar(benchmark::State& state) {
  const size_t n = state.range(0);
  const auto base = MakeData(n);
  std::vector<RowId> ids(n);
  for (auto _ : state) {
    state.PauseTiming();
    auto v = base;
    for (size_t i = 0; i < n; ++i) ids[i] = i;
    state.ResumeTiming();
    benchmark::DoNotOptimize(CrackInTwoScalar(
        v.data(), 0, n, int64_t{1} << 29, [&](size_t i, size_t j) {
          std::swap(v[i], v[j]);
          std::swap(ids[i], ids[j]);
        }));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CrackInTwoScalar)->Range(1 << 14, 1 << 22);

void BM_CrackInTwoOutOfPlace(benchmark::State& state) {
  const size_t n = state.range(0);
  const auto base = MakeData(n);
  std::vector<RowId> ids(n);
  CrackScratch<int64_t> scratch;
  for (auto _ : state) {
    state.PauseTiming();
    auto v = base;
    for (size_t i = 0; i < n; ++i) ids[i] = i;
    state.ResumeTiming();
    benchmark::DoNotOptimize(CrackInTwoOutOfPlace(
        v.data(), ids.data(), 0, n, int64_t{1} << 29, scratch));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CrackInTwoOutOfPlace)->Range(1 << 14, 1 << 22);

void BM_ParallelCrackInTwo(benchmark::State& state) {
  const size_t n = 1 << 22;
  const size_t threads = state.range(0);
  const auto base = MakeData(n);
  std::vector<RowId> ids(n);
  ThreadPool pool(threads);
  for (auto _ : state) {
    state.PauseTiming();
    auto v = base;
    for (size_t i = 0; i < n; ++i) ids[i] = i;
    state.ResumeTiming();
    benchmark::DoNotOptimize(ParallelCrackInTwo(v.data(), ids.data(), 0, n,
                                                int64_t{1} << 29, pool,
                                                threads));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ParallelCrackInTwo)->RangeMultiplier(2)->Range(1, 16);

void BM_CrackerIndexLookup(benchmark::State& state) {
  const size_t boundaries = state.range(0);
  CrackerIndex<int64_t> index;
  Rng rng(3);
  for (size_t i = 0; i < boundaries; ++i) {
    index.Insert(static_cast<int64_t>(rng.Below(1u << 30)), i);
  }
  int64_t probe = 0;
  for (auto _ : state) {
    probe = (probe + 0x9E3779B9) & ((1u << 30) - 1);
    benchmark::DoNotOptimize(index.FindPiece(probe, boundaries + 1));
  }
}
BENCHMARK(BM_CrackerIndexLookup)->Range(16, 1 << 16);

void BM_SelectRangeConverged(benchmark::State& state) {
  // Query latency once an index is fully refined: the holistic end state.
  const size_t n = 1 << 22;
  CrackerColumn<int64_t> col("bench", MakeData(n));
  Rng rng(11);
  for (int i = 0; i < 4096; ++i) {
    col.TryRefineAt(static_cast<int64_t>(rng.Below(1u << 30)));
  }
  for (auto _ : state) {
    const int64_t lo = static_cast<int64_t>(rng.Below(1u << 30));
    benchmark::DoNotOptimize(col.SelectRange(lo, lo + (1 << 20)));
  }
}
BENCHMARK(BM_SelectRangeConverged);

}  // namespace

BENCHMARK_MAIN();
