/// \file micro_crack_kernels.cpp
/// \brief Microbenchmarks of the cracking kernels and the cracker index:
/// the CPU-efficiency story behind §4.2 / [44] and the SIMD kernel tier.
///
/// Two output stages:
///   1. A fixed summary table at `HOLIX_MICRO_N` rows (default 2^24):
///      seconds per crack-in-two for scalar / out-of-place / SIMD and the
///      static-slice vs morsel parallel modes, each with the resulting cut
///      index as a correctness checksum. With `HOLIX_BENCH_JSON=<dir>` the
///      table lands in `<dir>/BENCH_micro_kernels.json`, which
///      `tools/bench_compare.py` gates against `bench/results/`.
///      `HOLIX_MICRO_SUMMARY_ONLY=1` exits after this stage (CI).
///   2. The google-benchmark size/thread sweeps.
///
/// Timing discipline: inputs are pre-generated once and cracked through a
/// small ring of pristine copies; the restore memcpy runs outside the
/// measured window (`UseManualTime`). The previous PauseTiming/ResumeTiming
/// pattern paid the timer bookkeeping inside the measured loop, which
/// skewed the small-N rows by a measurable constant.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <numeric>
#include <string>
#include <string_view>
#include <vector>

#include "cracking/crack_config.h"
#include "cracking/crack_kernels.h"
#include "cracking/crack_kernels_simd.h"
#include "cracking/cracker_column.h"
#include "cracking/cracker_index.h"
#include "cracking/parallel_crack.h"
#include "harness/report.h"
#include "util/env.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using namespace holix;

constexpr int64_t kDomain = int64_t{1} << 30;
constexpr int64_t kPivot = int64_t{1} << 29;

template <typename T>
std::vector<T> MakeData(size_t n) {
  Rng rng(7);
  std::vector<T> v(n);
  for (auto& x : v) {
    x = static_cast<T>(static_cast<int64_t>(rng.Below(kDomain)));
  }
  return v;
}

double Seconds(std::chrono::steady_clock::time_point t0,
               std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

/// A ring of pristine copies of one (values, rowids) column. Each timed
/// iteration cracks the next slot; the slot is then restored from the base
/// copy outside the measured window. Rotating across several copies keeps
/// the just-restored (cache-hot) buffer from being the very next input at
/// small N. The ring is capped by a memory budget so 2^22-row inputs do not
/// allocate gigabytes.
template <typename T>
class RotatingInputs {
 public:
  explicit RotatingInputs(size_t n, size_t budget_bytes = size_t{256} << 20)
      : n_(n), base_v_(MakeData<T>(n)), base_i_(n) {
    std::iota(base_i_.begin(), base_i_.end(), RowId{0});
    const size_t copy_bytes = n * (sizeof(T) + sizeof(RowId));
    size_t copies =
        std::max<size_t>(1, budget_bytes / std::max<size_t>(1, copy_bytes));
    copies = std::min<size_t>(copies, 8);
    v_.resize(copies);
    ids_.resize(copies);
    for (size_t c = 0; c < copies; ++c) {
      v_[c] = base_v_;
      ids_[c] = base_i_;
    }
  }

  size_t Acquire() { return next_++ % v_.size(); }
  T* values(size_t slot) { return v_[slot].data(); }
  RowId* rowids(size_t slot) { return ids_[slot].data(); }
  size_t size() const { return n_; }

  void Restore(size_t slot) {
    std::memcpy(v_[slot].data(), base_v_.data(), n_ * sizeof(T));
    std::memcpy(ids_[slot].data(), base_i_.data(), n_ * sizeof(RowId));
  }

 private:
  size_t n_;
  std::vector<T> base_v_;
  std::vector<RowId> base_i_;
  std::vector<std::vector<T>> v_;
  std::vector<std::vector<RowId>> ids_;
  size_t next_ = 0;
};

/// Shared manual-time loop: crack(values, rowids, n) on a pristine slot per
/// iteration, restore untimed.
template <typename Fn>
void RunKernelBench(benchmark::State& state, size_t n, Fn crack) {
  RotatingInputs<int64_t> rot(n);
  for (auto _ : state) {
    const size_t slot = rot.Acquire();
    const auto t0 = std::chrono::steady_clock::now();
    const size_t cut = crack(rot.values(slot), rot.rowids(slot), n);
    const auto t1 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(cut);
    state.SetIterationTime(Seconds(t0, t1));
    rot.Restore(slot);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}

void BM_CrackInTwoScalar(benchmark::State& state) {
  RunKernelBench(state, static_cast<size_t>(state.range(0)),
                 [](int64_t* v, RowId* ids, size_t n) {
                   return CrackInTwoScalar(v, 0, n, kPivot,
                                           [&](size_t i, size_t j) {
                                             std::swap(v[i], v[j]);
                                             std::swap(ids[i], ids[j]);
                                           });
                 });
}
BENCHMARK(BM_CrackInTwoScalar)->Range(1 << 14, 1 << 22)->UseManualTime();

void BM_CrackInTwoOutOfPlace(benchmark::State& state) {
  CrackScratch<int64_t> scratch;
  RunKernelBench(state, static_cast<size_t>(state.range(0)),
                 [&](int64_t* v, RowId* ids, size_t n) {
                   return CrackInTwoOutOfPlace(v, ids, 0, n, kPivot, scratch);
                 });
}
BENCHMARK(BM_CrackInTwoOutOfPlace)->Range(1 << 14, 1 << 22)->UseManualTime();

void BM_CrackInTwoSimd(benchmark::State& state) {
  CrackScratch<int64_t> scratch;
  RunKernelBench(state, static_cast<size_t>(state.range(0)),
                 [&](int64_t* v, RowId* ids, size_t n) {
                   return CrackInTwoSimd(v, ids, 0, n, kPivot, scratch);
                 });
}
BENCHMARK(BM_CrackInTwoSimd)->Range(1 << 14, 1 << 22)->UseManualTime();

/// Static-slice vs morsel parallel cracking at a fixed 2^22 rows; the
/// argument is the thread count.
void RunParallelBench(benchmark::State& state, ParallelCrackMode mode) {
  const size_t n = 1 << 22;
  const size_t threads = static_cast<size_t>(state.range(0));
  ThreadPool pool(threads);
  ParallelCrackOptions opts;
  opts.threads = threads;
  opts.mode = mode;
  RotatingInputs<int64_t> rot(n);
  for (auto _ : state) {
    const size_t slot = rot.Acquire();
    const auto t0 = std::chrono::steady_clock::now();
    const size_t cut = ParallelCrackInTwo(rot.values(slot), rot.rowids(slot),
                                          0, n, kPivot, pool, opts);
    const auto t1 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(cut);
    state.SetIterationTime(Seconds(t0, t1));
    rot.Restore(slot);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}

void BM_ParallelCrackStatic(benchmark::State& state) {
  RunParallelBench(state, ParallelCrackMode::kStaticSlices);
}
BENCHMARK(BM_ParallelCrackStatic)->RangeMultiplier(2)->Range(1, 16)
    ->UseManualTime();

void BM_ParallelCrackMorsel(benchmark::State& state) {
  RunParallelBench(state, ParallelCrackMode::kMorsels);
}
BENCHMARK(BM_ParallelCrackMorsel)->RangeMultiplier(2)->Range(1, 16)
    ->UseManualTime();

void BM_CrackerIndexLookup(benchmark::State& state) {
  const size_t boundaries = state.range(0);
  CrackerIndex<int64_t> index;
  Rng rng(3);
  for (size_t i = 0; i < boundaries; ++i) {
    index.Insert(static_cast<int64_t>(rng.Below(kDomain)), i);
  }
  int64_t probe = 0;
  for (auto _ : state) {
    probe = (probe + 0x9E3779B9) & (kDomain - 1);
    benchmark::DoNotOptimize(index.FindPiece(probe, boundaries + 1));
  }
}
BENCHMARK(BM_CrackerIndexLookup)->Range(16, 1 << 16);

void BM_SelectRangeConverged(benchmark::State& state) {
  // Query latency once an index is fully refined: the holistic end state.
  const size_t n = 1 << 22;
  CrackerColumn<int64_t> col("bench", MakeData<int64_t>(n));
  Rng rng(11);
  for (int i = 0; i < 4096; ++i) {
    col.TryRefineAt(static_cast<int64_t>(rng.Below(kDomain)));
  }
  for (auto _ : state) {
    const int64_t lo = static_cast<int64_t>(rng.Below(kDomain));
    benchmark::DoNotOptimize(col.SelectRange(lo, lo + (1 << 20)));
  }
}
BENCHMARK(BM_SelectRangeConverged);

// ---------------------------------------------------------------------------
// Summary table: the committed/gated baseline artifact.

/// Best-of-\p reps seconds for one crack kernel over a single restorable
/// buffer (at summary N a rotation ring would cost gigabytes; one copy is
/// DRAM-resident anyway at 2^24 rows).
template <typename T, typename Fn>
double BestOf(int reps, std::vector<T>& v, std::vector<RowId>& ids,
              const std::vector<T>& base_v, const std::vector<RowId>& base_i,
              size_t* cut_out, Fn crack) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    std::memcpy(v.data(), base_v.data(), base_v.size() * sizeof(T));
    std::memcpy(ids.data(), base_i.data(), base_i.size() * sizeof(RowId));
    const auto t0 = std::chrono::steady_clock::now();
    const size_t cut = crack(v.data(), ids.data(), v.size());
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, Seconds(t0, t1));
    *cut_out = cut;
  }
  return best;
}

/// One typed scalar/simd row pair on its own freshly generated column. Both
/// rows crack the same data, so their checksums must match; pairing the two
/// tiers per element type keeps the committed speedups apples-to-apples
/// (an int64 scalar vs int32 simd ratio would conflate width with kernel).
template <typename T>
double AddTypedRows(ReportTable& table, const std::string& suffix, size_t n,
                    int reps) {
  const auto base_v = MakeData<T>(n);
  std::vector<RowId> base_i(n);
  std::iota(base_i.begin(), base_i.end(), RowId{0});
  auto v = base_v;
  auto ids = base_i;
  CrackScratch<T> scratch;
  size_t cut = 0;
  const double scalar_s =
      BestOf<T>(reps, v, ids, base_v, base_i, &cut,
                [](T* vv, RowId* ii, size_t nn) {
                  return CrackInTwoScalar(vv, 0, nn, static_cast<T>(kPivot),
                                          [&](size_t i, size_t j) {
                                            std::swap(vv[i], vv[j]);
                                            std::swap(ii[i], ii[j]);
                                          });
                });
  table.AddRow({"scalar-" + suffix, FormatSeconds(scalar_s),
                std::to_string(cut)});
  const double simd_s = BestOf<T>(reps, v, ids, base_v, base_i, &cut,
                                  [&](T* vv, RowId* ii, size_t nn) {
                                    return CrackInTwoSimd(
                                        vv, ii, 0, nn, static_cast<T>(kPivot),
                                        scratch);
                                  });
  table.AddRow({"simd-" + suffix, FormatSeconds(simd_s),
                std::to_string(cut)});
  return scalar_s / simd_s;
}

/// Times every kernel tier at HOLIX_MICRO_N rows and writes the gateable
/// table. The scalar / oop / simd / parallel rows all crack the same int64
/// column with the same pivot, so their "cut checksum" cells must agree —
/// a baseline diff in that column is a correctness bug, not a perf delta.
void RunSummary() {
  const size_t n = static_cast<size_t>(
      std::max<int64_t>(1, EnvInt("HOLIX_MICRO_N", int64_t{1} << 24)));
  const int reps = static_cast<int>(
      std::max<int64_t>(1, EnvInt("HOLIX_MICRO_REPS", 3)));
  const size_t threads = static_cast<size_t>(
      std::max<int64_t>(1, EnvInt("HOLIX_MICRO_THREADS", 4)));
  std::printf("# micro_kernels summary: n=%zu reps=%d threads=%zu "
              "simd=%s (HOLIX_MICRO_N / HOLIX_MICRO_REPS / "
              "HOLIX_MICRO_THREADS / HOLIX_SIMD override)\n",
              n, reps, threads, SimdLevelName(DetectSimdLevel()));

  const auto base_v = MakeData<int64_t>(n);
  std::vector<RowId> base_i(n);
  std::iota(base_i.begin(), base_i.end(), RowId{0});
  auto v = base_v;
  auto ids = base_i;
  CrackScratch<int64_t> scratch;
  size_t cut = 0;

  ReportTable table("micro crack kernels: seconds per crack-in-two, n=2^" +
                    std::to_string(static_cast<int>(std::log2(double(n)))));
  table.SetHeader({"kernel", "seconds/crack", "cut checksum"});

  const double scalar_s =
      BestOf<int64_t>(reps, v, ids, base_v, base_i, &cut,
                      [](int64_t* vv, RowId* ii, size_t nn) {
                        return CrackInTwoScalar(vv, 0, nn, kPivot,
                                                [&](size_t i, size_t j) {
                                                  std::swap(vv[i], vv[j]);
                                                  std::swap(ii[i], ii[j]);
                                                });
                      });
  table.AddRow({"scalar", FormatSeconds(scalar_s), std::to_string(cut)});

  const double oop_s =
      BestOf<int64_t>(reps, v, ids, base_v, base_i, &cut,
                      [&](int64_t* vv, RowId* ii, size_t nn) {
                        return CrackInTwoOutOfPlace(vv, ii, 0, nn, kPivot,
                                                    scratch);
                      });
  table.AddRow({"oop", FormatSeconds(oop_s), std::to_string(cut)});

  const double simd_s =
      BestOf<int64_t>(reps, v, ids, base_v, base_i, &cut,
                      [&](int64_t* vv, RowId* ii, size_t nn) {
                        return CrackInTwoSimd(vv, ii, 0, nn, kPivot, scratch);
                      });
  table.AddRow({"simd", FormatSeconds(simd_s), std::to_string(cut)});

  const double int32_speedup = AddTypedRows<int32_t>(table, "int32", n, reps);
  const double f64_speedup = AddTypedRows<double>(table, "f64", n, reps);

  {
    ThreadPool pool(threads);
    for (const auto mode : {ParallelCrackMode::kStaticSlices,
                            ParallelCrackMode::kMorsels}) {
      ParallelCrackOptions opts;
      opts.threads = threads;
      opts.mode = mode;
      const double s =
          BestOf<int64_t>(reps, v, ids, base_v, base_i, &cut,
                          [&](int64_t* vv, RowId* ii, size_t nn) {
                            return ParallelCrackInTwo(vv, ii, 0, nn, kPivot,
                                                      pool, opts);
                          });
      const std::string name =
          (mode == ParallelCrackMode::kMorsels ? "parallel-morsel x"
                                               : "parallel-static x") +
          std::to_string(threads);
      table.AddRow({name, FormatSeconds(s), std::to_string(cut)});
    }
  }

  std::printf("# simd vs scalar: %.2fx (int64), %.2fx (int32), %.2fx (f64); "
              "simd vs oop: %.2fx\n",
              scalar_s / simd_s, int32_speedup, f64_speedup, oop_s / simd_s);
  table.Print();

  const char* dir = std::getenv("HOLIX_BENCH_JSON");
  if (dir != nullptr && *dir != '\0') {
    const std::string path =
        std::string(dir) + "/BENCH_micro_kernels.json";
    if (table.SaveJson(path)) {
      std::printf("# wrote %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "# failed to write %s\n", path.c_str());
    }
  }
}

bool SummaryOnly() {
  const char* s = std::getenv("HOLIX_MICRO_SUMMARY_ONLY");
  return s != nullptr && *s != '\0' && std::string_view(s) != "0";
}

}  // namespace

int main(int argc, char** argv) {
  RunSummary();
  if (SummaryOnly()) return 0;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
