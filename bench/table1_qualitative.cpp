/// \file table1_qualitative.cpp
/// \brief Reproduces Table 1: the qualitative comparison of offline,
/// online, adaptive and holistic indexing. The rows are derived from the
/// implemented systems' actual properties (which module does what), not
/// hard-coded prose — see the assertions in tests/table1_properties_test.cpp.

#include "bench_common.h"
#include "harness/report.h"

int main() {
  holix::ReportTable t(
      "Table 1: qualitative difference among indexing approaches");
  t.SetHeader({"Indexing", "Statistical analysis before query processing",
               "Exploit idle resources before queries",
               "Exploit idle resources during queries", "Index materialization",
               "Updates/projection cost", "Workload"});
  t.AddRow({"Offline", "yes", "yes", "no", "full", "high", "static"});
  t.AddRow({"Online", "yes", "no", "yes(periodic)", "full", "high", "dynamic"});
  t.AddRow({"Adaptive", "no", "no", "no", "partial", "low", "dynamic"});
  t.AddRow({"Holistic", "yes", "yes", "yes", "partial", "low", "dynamic"});
  t.Print();
  holix::bench::SaveBenchJson(t, "table1");
  std::printf(
      "\nMapping to modules:\n"
      "  Offline  -> baselines/sorted_index.h + Database::PrepareOfflineIndexes\n"
      "  Online   -> engine ExecMode::kOnline (observe, then sort)\n"
      "  Adaptive -> cracking/cracker_column.h (PVDC/PVSDC kernels)\n"
      "  Holistic -> holistic/holistic_engine.h (always-on tuning thread)\n");
  return 0;
}
