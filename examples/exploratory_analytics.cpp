/// \file exploratory_analytics.cpp
/// \brief A SkyServer-style exploration session (the paper's motivating
/// scenario): an astronomer sweeps across regions of the sky with ad-hoc
/// range predicates. No index is ever declared; holistic indexing watches
/// the session and keeps refining the touched attributes on idle cores,
/// comparing the session cost against plain adaptive indexing.

#include <cstdio>

#include "engine/database.h"
#include "harness/runner.h"
#include "util/env.h"
#include "util/timer.h"
#include "workload/workload.h"

using namespace holix;

namespace {

double RunSession(Database& db, const std::vector<RangeQuery>& queries,
                  const std::vector<std::string>& names) {
  Timer wall;
  double first_region = -1;
  for (size_t i = 0; i < queries.size(); ++i) {
    const auto& q = queries[i];
    db.CountRange("sky", names[q.attr], q.low, q.high);
    if (i == queries.size() / 4 && first_region < 0) {
      first_region = wall.ElapsedSeconds();
      std::printf("  first region explored after %.3fs (%zu queries)\n",
                  first_region, i + 1);
    }
  }
  return wall.ElapsedSeconds();
}

}  // namespace

int main() {
  const size_t rows = ScaledSize(1u << 21);
  const size_t num_queries = QueryCount(2000);
  const int64_t domain = int64_t{1} << 30;

  // Two "photometric" attributes: right ascension and declination.
  WorkloadSpec spec;
  spec.num_queries = num_queries;
  spec.num_attributes = 2;
  spec.domain = domain;
  spec.pattern = QueryPattern::kSkyServer;  // dwell-and-jump sky sweeps
  spec.selectivity = 0.002;
  spec.seed = 2015;
  const auto queries = GenerateWorkload(spec);
  const std::vector<std::string> names = {"right_ascension", "declination"};

  std::printf("exploration session: %zu queries over %zu-row sky table\n",
              num_queries, rows);

  double adaptive_cost;
  {
    DatabaseOptions opts;
    opts.mode = ExecMode::kAdaptive;
    opts.user_threads = 4;
    Database db(opts);
    db.LoadColumn("sky", names[0], GenerateUniformColumn(rows, domain, 1));
    db.LoadColumn("sky", names[1], GenerateUniformColumn(rows, domain, 2));
    std::printf("\n[adaptive indexing]\n");
    adaptive_cost = RunSession(db, queries, names);
    std::printf("  session total: %.3fs, %zu index pieces\n", adaptive_cost,
                db.TotalIndexPieces());
  }

  double holistic_cost;
  {
    DatabaseOptions opts;
    opts.mode = ExecMode::kHolistic;
    opts.user_threads = 4;
    opts.holistic.max_workers = 4;
    Database db(opts);
    db.LoadColumn("sky", names[0], GenerateUniformColumn(rows, domain, 1));
    db.LoadColumn("sky", names[1], GenerateUniformColumn(rows, domain, 2));
    std::printf("\n[holistic indexing]\n");
    holistic_cost = RunSession(db, queries, names);
    std::printf("  session total: %.3fs, %zu index pieces, "
                "%llu background cracks\n",
                holistic_cost, db.TotalIndexPieces(),
                static_cast<unsigned long long>(
                    db.holistic()->TotalWorkerCracks()));
    std::printf("  configurations: actual=%zu optimal=%zu\n",
                db.holistic()->store().Count(ConfigKind::kActual),
                db.holistic()->store().Count(ConfigKind::kOptimal));
  }

  std::printf("\nholistic vs adaptive session speedup: %.2fx\n",
              adaptive_cost / holistic_cost);
  return 0;
}
