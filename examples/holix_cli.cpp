/// \file holix_cli.cpp
/// \brief Interactive REPL over the Holix wire protocol: connect to a
/// running holix_server, open a session, and issue queries line by line.
///
///   holix_cli [--host 127.0.0.1] [--port N]
///
/// Commands (one per line; EOF or `quit` exits):
///   count  <table> <column> <low> <high>
///   sum    <table> <column> <low> <high>
///   psum   <table> <where_col> <project_col> <low> <high>
///   select <table> <column> <low> <high>
///   insert <table> <column> <value>
///   delete <table> <column> <value>
///   query  <table> <col> <lo> <hi> [and <col> <lo> <hi>]...
///          [count] [sum <col>] [psum <col>] [rowids]
///   stats
///   help
///
/// `stats` fetches the server's live telemetry snapshot (protocol-v4
/// GetStats) and prints the human-readable one-pager: every holix_*
/// counter/gauge/histogram plus the recent-query trace ring.
///
/// `query` is the protocol-v3 declarative form: a conjunction of range
/// predicates (each one cracks its own index server-side) answered with
/// any mix of count / per-column sums / rowids in one round trip; with no
/// result keyword it defaults to `count`.
///
/// Bounds and values are typed: a token that parses as a plain integer is
/// sent as an int64 scalar, anything else ("2.5", "1e9", "inf", "nan") as
/// a double scalar. Sums over double columns print as doubles.

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/metrics.h"
#include "server/client.h"

namespace {

using holix::KeyScalar;

/// Parses a numeric token into a typed scalar: plain integers become i64
/// carriers, everything else (fractions, exponents, inf, nan) doubles.
bool ParseScalar(const std::string& tok, KeyScalar* out) {
  if (tok.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long i = std::strtoll(tok.c_str(), &end, 10);
  if (errno == 0 && end != nullptr && *end == '\0') {
    *out = KeyScalar::I64(i);
    return true;
  }
  errno = 0;
  const double d = std::strtod(tok.c_str(), &end);
  if (end == tok.c_str() || *end != '\0') return false;
  *out = KeyScalar::F64(d);
  return true;
}

void PrintScalar(const KeyScalar& s) {
  if (s.is_f64()) {
    std::printf("%.17g\n", s.d);
  } else {
    std::printf("%lld\n", static_cast<long long>(s.i));
  }
}

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  count  <table> <column> <low> <high>   select count(*)\n"
      "  sum    <table> <column> <low> <high>   select sum(column)\n"
      "  psum   <table> <where> <proj> <low> <high>  projected sum\n"
      "  select <table> <column> <low> <high>   qualifying rowids\n"
      "  insert <table> <column> <value>\n"
      "  delete <table> <column> <value>\n"
      "  query  <table> <col> <lo> <hi> [and <col> <lo> <hi>]...\n"
      "         [count] [sum <col>] [psum <col>] [rowids]\n"
      "         multi-predicate conjunction (default result: count)\n"
      "  stats                                  server telemetry snapshot\n"
      "  help | quit\n");
}

/// Parses the `query` command tail into wire predicates + result specs.
/// Grammar: triples of <col> <lo> <hi> (optionally separated by "and")
/// until a result keyword; then any mix of count / sum <col> /
/// psum <col> / rowids.
bool ParseQueryCommand(std::istringstream& in,
                       std::vector<holix::net::QueryPredicateWire>* preds,
                       std::vector<holix::net::QueryResultSpecWire>* results) {
  std::string tok;
  bool in_results = false;
  while (in >> tok) {
    if (tok == "and") continue;
    if (tok == "count") {
      in_results = true;
      results->push_back({0, ""});
    } else if (tok == "sum" || tok == "psum") {
      in_results = true;
      std::string col;
      if (!(in >> col)) return false;
      results->push_back({static_cast<uint8_t>(tok == "sum" ? 1 : 3), col});
    } else if (tok == "rowids") {
      in_results = true;
      results->push_back({2, ""});
    } else {
      if (in_results) return false;  // predicate after a result keyword
      holix::net::QueryPredicateWire p;
      p.column = tok;
      std::string lo_tok, hi_tok;
      if (!(in >> lo_tok >> hi_tok) || !ParseScalar(lo_tok, &p.low) ||
          !ParseScalar(hi_tok, &p.high)) {
        return false;
      }
      preds->push_back(std::move(p));
    }
  }
  if (preds->empty()) return false;
  if (results->empty()) results->push_back({0, ""});  // default: count
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--host") {
      host = next();
    } else if (arg == "--port") {
      port = static_cast<uint16_t>(std::atoi(next()));
    } else {
      std::fprintf(stderr, "usage: holix_cli [--host H] [--port N]\n");
      return arg == "--help" ? 0 : 2;
    }
  }
  if (port == 0) {
    std::fprintf(stderr, "holix_cli: --port is required\n");
    return 2;
  }

  holix::net::HolixClient client;
  try {
    client.Connect(host, port);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "holix_cli: %s\n", e.what());
    return 1;
  }
  const uint64_t session = client.OpenSession();
  std::printf("connected to %s:%u (session %llu)\n", host.c_str(), port,
              static_cast<unsigned long long>(session));

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd) || cmd.empty() || cmd[0] == '#') continue;
    try {
      if (cmd == "quit" || cmd == "exit") {
        break;
      } else if (cmd == "help") {
        PrintHelp();
      } else if (cmd == "stats") {
        std::printf("%s", holix::obs::HumanText(client.GetStats()).c_str());
      } else if (cmd == "count" || cmd == "sum" || cmd == "select") {
        std::string table, column, lo_tok, hi_tok;
        KeyScalar low, high;
        if (!(in >> table >> column >> lo_tok >> hi_tok) ||
            !ParseScalar(lo_tok, &low) || !ParseScalar(hi_tok, &high)) {
          std::printf("usage: %s <table> <column> <low> <high>\n",
                      cmd.c_str());
          continue;
        }
        if (cmd == "count") {
          std::printf("%llu\n",
                      static_cast<unsigned long long>(client.CountRangeScalar(
                          session, table, column, low, high)));
        } else if (cmd == "sum") {
          PrintScalar(
              client.SumRangeScalar(session, table, column, low, high));
        } else {
          const auto rowids =
              client.SelectRowIdsScalar(session, table, column, low, high);
          std::printf("%zu rowids", rowids.size());
          for (size_t i = 0; i < rowids.size() && i < 8; ++i) {
            std::printf(" %llu", static_cast<unsigned long long>(rowids[i]));
          }
          std::printf(rowids.size() > 8 ? " ...\n" : "\n");
        }
      } else if (cmd == "query") {
        std::string table;
        std::vector<holix::net::QueryPredicateWire> preds;
        std::vector<holix::net::QueryResultSpecWire> results;
        if (!(in >> table) || !ParseQueryCommand(in, &preds, &results)) {
          std::printf(
              "usage: query <table> <col> <lo> <hi> [and <col> <lo> <hi>]..."
              " [count] [sum <col>] [psum <col>] [rowids]\n");
          continue;
        }
        const auto res = client.ExecuteQuery(session, table, preds, results);
        for (size_t i = 0; i < results.size() && i < res.values.size(); ++i) {
          if (results[i].kind == 2) {
            std::printf("%zu rowids", res.rowids.size());
            for (size_t j = 0; j < res.rowids.size() && j < 8; ++j) {
              std::printf(" %llu",
                          static_cast<unsigned long long>(res.rowids[j]));
            }
            std::printf(res.rowids.size() > 8 ? " ...\n" : "\n");
          } else {
            PrintScalar(res.values[i]);
          }
        }
      } else if (cmd == "psum") {
        std::string table, where_col, proj_col, lo_tok, hi_tok;
        KeyScalar low, high;
        if (!(in >> table >> where_col >> proj_col >> lo_tok >> hi_tok) ||
            !ParseScalar(lo_tok, &low) || !ParseScalar(hi_tok, &high)) {
          std::printf("usage: psum <table> <where> <proj> <low> <high>\n");
          continue;
        }
        PrintScalar(client.ProjectSumScalar(session, table, where_col,
                                            proj_col, low, high));
      } else if (cmd == "insert" || cmd == "delete") {
        std::string table, column, val_tok;
        KeyScalar value;
        if (!(in >> table >> column >> val_tok) ||
            !ParseScalar(val_tok, &value)) {
          std::printf("usage: %s <table> <column> <value>\n", cmd.c_str());
          continue;
        }
        if (cmd == "insert") {
          std::printf("rowid %llu\n",
                      static_cast<unsigned long long>(client.InsertScalar(
                          session, table, column, value)));
        } else {
          std::printf("%s\n",
                      client.DeleteScalar(session, table, column, value)
                          ? "deleted"
                          : "not found");
        }
      } else {
        std::printf("unknown command '%s' (try `help`)\n", cmd.c_str());
      }
    } catch (const std::exception& e) {
      std::printf("error: %s\n", e.what());
      if (!client.connected()) return 1;
    }
  }
  if (client.connected()) client.CloseSession(session);
  return 0;
}
