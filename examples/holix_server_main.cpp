/// \file holix_server_main.cpp
/// \brief Standalone Holix network server: loads a synthetic table and
/// serves it over the wire protocol until SIGINT/SIGTERM, then shuts down
/// cleanly (drains in-flight queries) and exits 0.
///
///   holix_server [--port N] [--mode adaptive|holistic|...] [--rows N]
///                [--attrs N] [--threads N] [--io-threads N]
///                [--kernel scalar|oop|parallel|simd]
///                [--no-shared-scans] [--seed N] [--metrics-port N]
///                [--data-dir PATH] [--fsync always|interval|never]
///                [--checkpoint-interval SECONDS]
///
/// `--port 0` (the default) binds an ephemeral port; the chosen port is
/// printed as `listening on 127.0.0.1:<port>` so scripts (CI's server
/// smoke step) can parse it.
///
/// Durability: `--data-dir PATH` attaches the persist layer. When PATH
/// already holds a manifest the server *recovers* from it (snapshot + WAL
/// replay + cracker warm-start; the synthetic load is skipped) and prints
/// `recovered from <path> (lsn ...)`; otherwise the freshly loaded table
/// is checkpointed once so the directory becomes recoverable. `--fsync`
/// picks the WAL policy (default always), `--checkpoint-interval N` cuts a
/// background checkpoint every N seconds, and SIGUSR2 forces one on
/// demand.
///
/// Observability: `--metrics-port N` serves `GET /metrics` (Prometheus
/// text exposition) over plain HTTP on the same event loop (`--metrics-port
/// 0` stays disabled; the bound port is printed as `metrics on ...`).
/// SIGUSR1 prints a one-page human-readable telemetry snapshot to stdout
/// without disturbing service, and shutdown prints a final summary line.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "engine/database.h"
#include "harness/runner.h"
#include "obs/metrics.h"
#include "persist/persistence.h"
#include "workload/workload.h"
#include "server/server.h"

namespace {

std::atomic<bool> g_stop{false};
std::atomic<bool> g_dump{false};
std::atomic<bool> g_checkpoint{false};

void HandleSignal(int) { g_stop.store(true, std::memory_order_release); }

void HandleDumpSignal(int) { g_dump.store(true, std::memory_order_release); }

void HandleCheckpointSignal(int) {
  g_checkpoint.store(true, std::memory_order_release);
}

holix::ExecMode ParseMode(const std::string& name) {
  using holix::ExecMode;
  for (ExecMode m : {ExecMode::kScan, ExecMode::kOffline, ExecMode::kOnline,
                     ExecMode::kAdaptive, ExecMode::kStochastic,
                     ExecMode::kCCGI, ExecMode::kHolistic}) {
    if (name == holix::ExecModeName(m)) return m;
  }
  std::fprintf(stderr, "unknown mode '%s'\n", name.c_str());
  std::exit(2);
}

holix::CrackAlgo ParseKernel(const std::string& name) {
  if (auto algo = holix::CrackAlgoFromString(name)) return *algo;
  std::fprintf(stderr, "unknown kernel '%s' (scalar|oop|parallel|simd)\n",
               name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 0;
  holix::ExecMode mode = holix::ExecMode::kAdaptive;
  size_t rows = 1u << 18;
  size_t attrs = 4;
  size_t threads = 2;
  size_t io_threads = 2;
  holix::CrackAlgo kernel = holix::CrackAlgo::kParallel;
  bool shared_scans = true;
  uint64_t seed = 1907;
  uint16_t metrics_port = 0;
  bool metrics_http = false;
  std::string data_dir;
  holix::persist::FsyncPolicy fsync = holix::persist::FsyncPolicy::kAlways;
  double checkpoint_interval = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      port = static_cast<uint16_t>(std::atoi(next()));
    } else if (arg == "--mode") {
      mode = ParseMode(next());
    } else if (arg == "--rows") {
      rows = static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--attrs") {
      attrs = static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--threads") {
      threads = static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--io-threads") {
      io_threads = static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--kernel") {
      kernel = ParseKernel(next());
    } else if (arg == "--no-shared-scans") {
      shared_scans = false;
    } else if (arg == "--seed") {
      seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg == "--metrics-port") {
      metrics_port = static_cast<uint16_t>(std::atoi(next()));
      metrics_http = true;
    } else if (arg == "--data-dir") {
      data_dir = next();
    } else if (arg == "--fsync") {
      const std::string name = next();
      if (auto p = holix::persist::FsyncPolicyFromString(name)) {
        fsync = *p;
      } else {
        std::fprintf(stderr, "unknown fsync policy '%s' (always|interval|never)\n",
                     name.c_str());
        return 2;
      }
    } else if (arg == "--checkpoint-interval") {
      checkpoint_interval = std::atof(next());
    } else {
      std::fprintf(stderr,
                   "usage: holix_server [--port N] [--mode M] [--rows N] "
                   "[--attrs N] [--threads N] [--io-threads N] "
                   "[--kernel scalar|oop|parallel|simd] "
                   "[--no-shared-scans] [--seed N] [--metrics-port N] "
                   "[--data-dir PATH] [--fsync always|interval|never] "
                   "[--checkpoint-interval SECONDS]\n");
      return arg == "--help" ? 0 : 2;
    }
  }

  holix::DatabaseOptions opts;
  opts.mode = mode;
  opts.user_threads = threads;
  opts.kernel = kernel;
  holix::Database db(opts);
  std::unique_ptr<holix::persist::PersistenceManager> persistence;
  holix::persist::PersistOptions popts;
  popts.data_dir = data_dir;
  popts.fsync = fsync;
  popts.checkpoint_interval_seconds = checkpoint_interval;
  if (!data_dir.empty() && holix::persist::HasManifest(data_dir)) {
    // Warm start: snapshot + WAL replay + re-crack at the saved pivots.
    // The synthetic load is skipped — the data is whatever was durable.
    persistence =
        std::make_unique<holix::persist::PersistenceManager>(db, popts);
    std::printf("recovered from %s (lsn %llu, mode=%s)\n", data_dir.c_str(),
                static_cast<unsigned long long>(persistence->recovered_lsn()),
                holix::ExecModeName(mode));
  } else {
    holix::LoadUniformTable(db, "r", attrs, rows, /*domain=*/int64_t{1} << 30,
                            seed);
    // One genuine double attribute beside the integer ones, so socket
    // clients can exercise the typed f64 scalar path (e.g. `sum r d0 ...`
    // from holix_cli prints a double).
    db.LoadColumn<double>(
        "r", "d0",
        holix::GenerateUniformDoubleColumn(rows, int64_t{1} << 30, seed + 97));
    std::printf("loaded table r: %zu attrs x %zu rows + double d0 (mode=%s)\n",
                attrs, rows, holix::ExecModeName(mode));
    if (!data_dir.empty()) {
      persistence =
          std::make_unique<holix::persist::PersistenceManager>(db, popts);
      const uint64_t lsn = persistence->Checkpoint();
      std::printf("checkpointed load to %s (lsn %llu)\n", data_dir.c_str(),
                  static_cast<unsigned long long>(lsn));
    }
  }

  holix::net::ServerOptions server_opts;
  server_opts.port = port;
  server_opts.io_threads = io_threads;
  server_opts.shared_scans = shared_scans;
  server_opts.metrics_http = metrics_http;
  server_opts.metrics_port = metrics_port;
  holix::net::HolixServer server(db, server_opts);
  server.Start();
  std::printf("listening on 127.0.0.1:%u\n", server.port());
  if (server.metrics_port() != 0) {
    std::printf("metrics on http://127.0.0.1:%u/metrics\n",
                server.metrics_port());
  }
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGUSR1, HandleDumpSignal);
  std::signal(SIGUSR2, HandleCheckpointSignal);
  while (!g_stop.load(std::memory_order_acquire)) {
    if (g_dump.exchange(false, std::memory_order_acq_rel)) {
      // One-page operator snapshot on demand; service is undisturbed (the
      // snapshot is the same lock-free read the wire path uses).
      std::printf("%s", holix::obs::HumanText(db.MetricsSnapshot()).c_str());
      std::fflush(stdout);
    }
    if (persistence != nullptr &&
        g_checkpoint.exchange(false, std::memory_order_acq_rel)) {
      const uint64_t lsn = persistence->Checkpoint();
      std::printf("checkpoint cut at lsn %llu\n",
                  static_cast<unsigned long long>(lsn));
      std::fflush(stdout);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf(
      "shutting down: %llu connections (peak %llu open), %llu requests, "
      "%llu shared-scan batches for %llu requests\n",
      static_cast<unsigned long long>(server.TotalConnections()),
      static_cast<unsigned long long>(server.PeakConnections()),
      static_cast<unsigned long long>(server.TotalRequests()),
      static_cast<unsigned long long>(server.SharedScanBatches()),
      static_cast<unsigned long long>(server.SharedScanRequests()));
  server.Stop();
  std::printf("clean shutdown\n");
  return 0;
}
