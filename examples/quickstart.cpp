/// \file quickstart.cpp
/// \brief Minimal tour of holix: load a table, run range queries under
/// holistic indexing, and watch the index space refine itself.

#include <cstdio>

#include "engine/database.h"
#include "harness/runner.h"
#include "util/env.h"
#include "workload/workload.h"

int main() {
  using namespace holix;

  // A database in holistic mode: user queries get 4 hardware contexts,
  // everything else is fair game for holistic workers.
  DatabaseOptions opts;
  opts.mode = ExecMode::kHolistic;
  opts.user_threads = 4;
  opts.holistic.max_workers = 4;
  opts.holistic.refinements_per_worker = 16;
  Database db(opts);

  // One table, three uniform integer attributes.
  const size_t rows = ScaledSize(1u << 20);
  const int64_t domain = int64_t{1} << 30;
  LoadUniformTable(db, "r", /*num_attrs=*/3, rows, domain, /*seed=*/7);
  std::printf("loaded table r: 3 attributes x %zu rows\n", rows);

  // Fire a few ad-hoc range queries; the first on each attribute builds an
  // adaptive index, later ones (and holistic workers, in the background)
  // refine it.
  WorkloadSpec spec;
  spec.num_queries = QueryCount(64);
  spec.num_attributes = 3;
  spec.domain = domain;
  spec.selectivity = 0.01;
  const auto queries = GenerateWorkload(spec);
  const auto names = MakeAttributeNames(3);

  for (size_t i = 0; i < queries.size(); ++i) {
    const auto& q = queries[i];
    const size_t n = db.CountRange("r", names[q.attr], q.low, q.high);
    if ((i + 1) % 16 == 0 || i == 0) {
      std::printf("query %3zu: count(a%zu in [%lld, %lld)) = %zu | "
                  "indices=%zu pieces=%zu\n",
                  i + 1, q.attr, static_cast<long long>(q.low),
                  static_cast<long long>(q.high), n,
                  db.NumAdaptiveIndices(), db.TotalIndexPieces());
    }
  }

  if (auto* engine = db.holistic()) {
    std::printf("\nholistic engine: %llu refinement steps, %llu cracks, "
                "%zu activations\n",
                static_cast<unsigned long long>(engine->TotalRefinementSteps()),
                static_cast<unsigned long long>(engine->TotalWorkerCracks()),
                engine->Activations().size());
    std::printf("configurations: actual=%zu potential=%zu optimal=%zu\n",
                engine->store().Count(ConfigKind::kActual),
                engine->store().Count(ConfigKind::kPotential),
                engine->store().Count(ConfigKind::kOptimal));
  }
  return 0;
}
