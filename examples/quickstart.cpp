/// \file quickstart.cpp
/// \brief Minimal tour of holix: load a table, open a client session,
/// resolve column handles once, run range queries under holistic indexing
/// (sync and async), and watch the index space refine itself.

#include <cstdio>
#include <future>
#include <vector>

#include "engine/database.h"
#include "harness/runner.h"
#include "util/env.h"
#include "workload/workload.h"

int main() {
  using namespace holix;

  // A database in holistic mode: user queries get 4 hardware contexts,
  // everything else is fair game for holistic workers.
  DatabaseOptions opts;
  opts.mode = ExecMode::kHolistic;
  opts.user_threads = 4;
  opts.holistic.max_workers = 4;
  opts.holistic.refinements_per_worker = 16;
  Database db(opts);

  // One table, three uniform integer attributes.
  const size_t rows = ScaledSize(1u << 20);
  const int64_t domain = int64_t{1} << 30;
  LoadUniformTable(db, "r", /*num_attrs=*/3, rows, domain, /*seed=*/7);
  std::printf("loaded table r: 3 attributes x %zu rows\n", rows);

  // A client talks to the engine through a session: resolve each attribute
  // to a handle once, then query through the handles — the hot path does
  // no name hashing and takes no global lock.
  Session session = db.OpenSession();
  const auto names = MakeAttributeNames(3);
  std::vector<ColumnHandle> handles;
  for (const auto& name : names) handles.push_back(session.Handle("r", name));

  // Fire a few ad-hoc range queries; the first on each attribute builds an
  // adaptive index, later ones (and holistic workers, in the background)
  // refine it.
  WorkloadSpec spec;
  spec.num_queries = QueryCount(64);
  spec.num_attributes = 3;
  spec.domain = domain;
  spec.selectivity = 0.01;
  const auto queries = GenerateWorkload(spec);

  for (size_t i = 0; i < queries.size(); ++i) {
    const auto& q = queries[i];
    const size_t n = session.CountRange(handles[q.attr], q.low, q.high);
    if ((i + 1) % 16 == 0 || i == 0) {
      std::printf("query %3zu: count(a%zu in [%lld, %lld)) = %zu | "
                  "indices=%zu pieces=%zu\n",
                  i + 1, q.attr, static_cast<long long>(q.low),
                  static_cast<long long>(q.high), n,
                  db.NumAdaptiveIndices(), db.TotalIndexPieces());
    }
  }

  // Async submission: overlap a batch of counts through the client pool.
  std::vector<std::future<size_t>> batch;
  for (size_t a = 0; a < handles.size(); ++a) {
    batch.push_back(
        session.SubmitCountRange(handles[a], 0, domain / 2));
  }
  size_t below_half = 0;
  for (auto& f : batch) below_half += f.get();
  std::printf("\nasync batch: %zu values below domain/2 across 3 attributes\n",
              below_half);

  if (auto* engine = db.holistic()) {
    std::printf("holistic engine: %llu refinement steps, %llu cracks, "
                "%zu activations\n",
                static_cast<unsigned long long>(engine->TotalRefinementSteps()),
                static_cast<unsigned long long>(engine->TotalWorkerCracks()),
                engine->Activations().size());
    std::printf("configurations: actual=%zu potential=%zu optimal=%zu\n",
                engine->store().Count(ConfigKind::kActual),
                engine->store().Count(ConfigKind::kPotential),
                engine->store().Count(ConfigKind::kOptimal));
  }
  return 0;
}
