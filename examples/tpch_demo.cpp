/// \file tpch_demo.cpp
/// \brief TPC-H without tuning: runs a stream of Q6 and Q12 variations on
/// a freshly generated database, comparing "just scan", "spend the offline
/// budget pre-sorting", and "let holistic indexing handle it" — the
/// trade-off Figure 14 quantifies.

#include <cstdio>

#include "holistic/holistic_engine.h"
#include "tpch/tpch_data.h"
#include "tpch/tpch_queries.h"
#include "util/env.h"
#include "util/timer.h"

using namespace holix;

int main() {
  const double sf = EnvDouble("HOLIX_TPCH_SF", 0.05);
  const size_t variations = static_cast<size_t>(QueryCount(20));
  std::printf("TPC-H demo at SF %.2f, %zu variations of Q6 and Q12\n", sf,
              variations);

  Timer t;
  const TpchData data = TpchData::Generate(sf);
  std::printf("generated %zu lineitems in %.2fs\n", data.NumLineitems(),
              t.ElapsedSeconds());

  Rng rng(99);
  std::vector<Q6Params> q6s;
  std::vector<Q12Params> q12s;
  for (size_t i = 0; i < variations; ++i) {
    q6s.push_back(RandomQ6Params(rng));
    q12s.push_back(RandomQ12Params(rng));
  }

  // 1. Plain scans: zero preparation, every query pays a full pass.
  {
    TpchScanExecutor scan(data);
    Timer timer;
    double sink = 0;
    for (size_t i = 0; i < variations; ++i) {
      sink += scan.Q6(q6s[i]).revenue;
      sink += static_cast<double>(scan.Q12(q12s[i]).high_line_count[0]);
    }
    std::printf("[scan]      total %.3fs (checksum %.2f)\n",
                timer.ElapsedSeconds(), sink);
  }

  // 2. Offline: pay the pre-sorting bill first, then query fast.
  {
    Timer prep;
    TpchPresortedExecutor sorted(data);
    const double prep_cost = prep.ElapsedSeconds();
    Timer timer;
    double sink = 0;
    for (size_t i = 0; i < variations; ++i) {
      sink += sorted.Q6(q6s[i]).revenue;
      sink += static_cast<double>(sorted.Q12(q12s[i]).high_line_count[0]);
    }
    std::printf("[presorted] total %.3fs + %.3fs offline prep "
                "(checksum %.2f)\n",
                timer.ElapsedSeconds(), prep_cost, sink);
  }

  // 3. Holistic: no preparation; cracker columns refine themselves between
  //    and during queries using idle cores.
  {
    TpchCrackedExecutor cracked(data);
    HolisticConfig cfg;
    cfg.max_workers = 4;
    cfg.monitor_interval_seconds = 0.001;
    HolisticEngine engine(cfg, std::make_unique<SlotCpuMonitor>(
                                   8, cfg.monitor_interval_seconds));
    engine.store().Register(cracked.ShipdateIndex(), ConfigKind::kActual);
    engine.store().Register(cracked.ReceiptdateIndex(), ConfigKind::kActual);
    engine.Start();
    Timer timer;
    double sink = 0;
    for (size_t i = 0; i < variations; ++i) {
      sink += cracked.Q6(q6s[i]).revenue;
      sink += static_cast<double>(cracked.Q12(q12s[i]).high_line_count[0]);
    }
    const double cost = timer.ElapsedSeconds();
    engine.Stop();
    std::printf("[holistic]  total %.3fs, zero prep, %llu background cracks "
                "(checksum %.2f)\n",
                cost,
                static_cast<unsigned long long>(engine.TotalWorkerCracks()),
                sink);
  }
  return 0;
}
