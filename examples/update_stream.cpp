/// \file update_stream.cpp
/// \brief A read/write session (§5.7): range queries interleaved with a
/// stream of inserts and deletes against the same attribute. Shows pending
/// updates being merged on demand by queries and, under holistic indexing,
/// proactively by background workers.

#include <chrono>
#include <cstdio>
#include <thread>

#include "engine/database.h"
#include "util/env.h"
#include "util/rng.h"
#include "util/timer.h"
#include "workload/workload.h"

using namespace holix;

int main() {
  const size_t rows = ScaledSize(1u << 20);
  const int64_t domain = 1 << 20;
  const size_t rounds = QueryCount(50);

  DatabaseOptions opts;
  opts.mode = ExecMode::kHolistic;
  opts.user_threads = 2;
  opts.holistic.max_workers = 2;
  Database db(opts);
  db.LoadColumn("orders", "amount", GenerateUniformColumn(rows, domain, 3));
  std::printf("orders.amount: %zu rows, domain [0, %lld)\n", rows,
              static_cast<long long>(domain));

  // The writer is one client session: the attribute resolves to a handle
  // once, and every read/write after that goes through the handle.
  Session session = db.OpenSession();
  const ColumnHandle amount = session.Handle("orders", "amount");

  Rng rng(8);
  size_t total_rows = rows;
  Timer wall;
  for (size_t round = 0; round < rounds; ++round) {
    // A burst of fresh orders...
    for (int i = 0; i < 20; ++i) {
      session.Insert(amount, static_cast<int64_t>(rng.Below(domain)));
      ++total_rows;
    }
    // ...a few cancellations...
    for (int i = 0; i < 5; ++i) {
      if (session.Delete(amount, static_cast<int64_t>(rng.Below(domain)))) {
        --total_rows;
      }
    }
    // ...and an analyst query over a random amount band.
    const int64_t lo = static_cast<int64_t>(rng.Below(domain));
    const int64_t hi = std::min<int64_t>(domain, lo + domain / 100);
    const size_t count = session.CountRange(amount, lo, hi);
    if ((round + 1) % 10 == 0) {
      const auto idx = db.holistic()->store().Find("orders.amount");
      std::printf("round %3zu: band [%7lld,%7lld) -> %6zu rows | "
                  "pieces=%zu merged(ins/del)=%llu/%llu\n",
                  round + 1, static_cast<long long>(lo),
                  static_cast<long long>(hi), count, db.TotalIndexPieces(),
                  static_cast<unsigned long long>(
                      idx->stats().merged_inserts.load()),
                  static_cast<unsigned long long>(
                      idx->stats().merged_deletes.load()));
    }
  }

  // Verify the full count converges to loaded + inserted - deleted.
  const size_t full = session.CountRange(amount, 0, domain);
  std::printf("\nfinal count over the whole domain: %zu (expected %zu) %s\n",
              full, total_rows, full == total_rows ? "OK" : "MISMATCH");
  std::printf("session wall time: %.3fs; background cracks: %llu\n",
              wall.ElapsedSeconds(),
              static_cast<unsigned long long>(
                  db.holistic()->TotalWorkerCracks()));
  return full == total_rows ? 0 : 1;
}
