// Anchor translation unit for the baselines library.
#include "baselines/full_scan.h"
#include "baselines/sorted_index.h"

namespace holix {
template class SortedIndex<int32_t>;
template class SortedIndex<int64_t>;
}  // namespace holix
