/// \file full_scan.h
/// \brief The no-indexing baseline: parallel range-select scans (§5.1).
///
/// MonetDB's parallel select scans the whole column with tight loops; we
/// do the same with static partitioning over a thread pool, returning the
/// qualifying count and (optionally) materialized positions.

#pragma once

#include <cstddef>
#include <vector>

#include "storage/column.h"
#include "storage/position_list.h"
#include "storage/types.h"
#include "util/thread_pool.h"

namespace holix {

/// Counts values in [low, high) — or [low, high] when \p closed_high — by
/// scanning \p data in parallel shards. The closed bound exists so callers
/// can select up to max(T) inclusive, which the exclusive form cannot
/// express without overflowing.
template <typename T>
size_t ParallelScanCount(const T* data, size_t n, T low, T high,
                         ThreadPool& pool, size_t threads,
                         bool closed_high = false) {
  const auto hit = [low, high, closed_high](T v) {
    return !KeyTraits<T>::Less(v, low) &&
           (closed_high ? !KeyTraits<T>::Less(high, v)
                        : KeyTraits<T>::Less(v, high));
  };
  threads = std::max<size_t>(1, std::min(threads, pool.size() + 1));
  if (threads <= 1 || n < (1u << 14)) {
    size_t count = 0;
    for (size_t i = 0; i < n; ++i) count += hit(data[i]) ? 1 : 0;
    return count;
  }
  std::vector<size_t> partial(threads, 0);
  const size_t chunk = (n + threads - 1) / threads;
  pool.ParallelFor(0, threads, [&](size_t t) {
    const size_t lo = std::min(n, t * chunk);
    const size_t hi = std::min(n, lo + chunk);
    size_t count = 0;
    for (size_t i = lo; i < hi; ++i) count += hit(data[i]) ? 1 : 0;
    partial[t] = count;
  });
  size_t total = 0;
  for (size_t c : partial) total += c;
  return total;
}

/// Materializes the positions of values in [low, high) — or [low, high]
/// when \p closed_high — in row order.
template <typename T>
PositionList ParallelScanSelect(const T* data, size_t n, T low, T high,
                                ThreadPool& pool, size_t threads,
                                bool closed_high = false) {
  const auto hit = [low, high, closed_high](T v) {
    return !KeyTraits<T>::Less(v, low) &&
           (closed_high ? !KeyTraits<T>::Less(high, v)
                        : KeyTraits<T>::Less(v, high));
  };
  threads = std::max<size_t>(1, std::min(threads, pool.size() + 1));
  if (threads <= 1 || n < (1u << 14)) {
    PositionList out;
    for (size_t i = 0; i < n; ++i) {
      if (hit(data[i])) out.push_back(i);
    }
    return out;
  }
  std::vector<PositionList> partial(threads);
  const size_t chunk = (n + threads - 1) / threads;
  pool.ParallelFor(0, threads, [&](size_t t) {
    const size_t lo = std::min(n, t * chunk);
    const size_t hi = std::min(n, lo + chunk);
    PositionList& out = partial[t];
    for (size_t i = lo; i < hi; ++i) {
      if (hit(data[i])) out.push_back(i);
    }
  });
  PositionList out;
  size_t total = 0;
  for (const auto& p : partial) total += p.size();
  out.reserve(total);
  for (auto& p : partial) out.insert(out.end(), p.begin(), p.end());
  return out;
}

}  // namespace holix
