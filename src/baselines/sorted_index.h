/// \file sorted_index.h
/// \brief Full indexing baseline: a sorted (value, rowid) projection with
/// binary-search range selects (§3.1/§5.1).
///
/// Offline indexing builds one of these per column before query processing;
/// online indexing builds them after an observation window. The sort itself
/// is the parallel merge sort of util/parallel_sort.h (the paper uses the
/// NUMA-aware m-way sort of [9] — same role, same scaling story).

#pragma once

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "storage/position_list.h"
#include "storage/types.h"
#include "util/parallel_sort.h"
#include "util/thread_pool.h"

namespace holix {

/// Sorted projection of one attribute.
template <typename T>
class SortedIndex {
 public:
  /// Builds the index by copying and parallel-sorting \p base.
  /// This is the O(N log N) investment offline/online indexing pays.
  SortedIndex(std::string name, const std::vector<T>& base, ThreadPool& pool)
      : name_(std::move(name)) {
    entries_.resize(base.size());
    for (size_t i = 0; i < base.size(); ++i) {
      entries_[i] = {base[i], static_cast<RowId>(i)};
    }
    ParallelSort(entries_, pool, [](const Entry& a, const Entry& b) {
      if (KeyTraits<T>::Less(a.value, b.value)) return true;
      return KeyTraits<T>::Eq(a.value, b.value) && a.rowid < b.rowid;
    });
  }

  /// Attribute name.
  const std::string& name() const { return name_; }
  /// Number of rows.
  size_t size() const { return entries_.size(); }

  /// Positions (in sorted order) of values in [low, high): O(log N).
  PositionRange SelectRange(T low, T high) const {
    const auto cmp = [](const Entry& e, T v) {
      return KeyTraits<T>::Less(e.value, v);
    };
    const auto b = std::lower_bound(entries_.begin(), entries_.end(), low, cmp);
    const auto e = std::lower_bound(entries_.begin(), entries_.end(), high, cmp);
    return {static_cast<size_t>(b - entries_.begin()),
            static_cast<size_t>(e - entries_.begin())};
  }

  /// Count of values in [low, high).
  size_t CountRange(T low, T high) const { return SelectRange(low, high).size(); }

  /// Positions of values in the closed range [low, high]: the form that can
  /// reach the total-order maximum, which the exclusive-high select cannot
  /// express.
  PositionRange SelectRangeClosed(T low, T high) const {
    const auto cmp = [](const Entry& e, T v) {
      return KeyTraits<T>::Less(e.value, v);
    };
    const auto b = std::lower_bound(entries_.begin(), entries_.end(), low, cmp);
    const auto e = std::upper_bound(
        entries_.begin(), entries_.end(), high,
        [](T v, const Entry& en) { return KeyTraits<T>::Less(v, en.value); });
    return {static_cast<size_t>(b - entries_.begin()),
            static_cast<size_t>(e - entries_.begin())};
  }

  /// Count of values in the closed range [low, high].
  size_t CountRangeClosed(T low, T high) const {
    return SelectRangeClosed(low, high).size();
  }

  /// Value at sorted position \p pos.
  T ValueAt(size_t pos) const { return entries_[pos].value; }
  /// Rowid at sorted position \p pos (tuple reconstruction).
  RowId RowIdAt(size_t pos) const { return entries_[pos].rowid; }

  /// Materializes rowids for \p range.
  PositionList FetchRowIds(PositionRange range) const {
    PositionList out;
    out.reserve(range.size());
    for (size_t i = range.begin; i < range.end; ++i) {
      out.push_back(entries_[i].rowid);
    }
    return out;
  }

  /// Bytes materialized by this index.
  size_t SizeBytes() const { return entries_.size() * sizeof(Entry); }

 private:
  struct Entry {
    T value;
    RowId rowid;
  };
  std::string name_;
  std::vector<Entry> entries_;
};

}  // namespace holix
