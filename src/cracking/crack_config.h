/// \file crack_config.h
/// \brief Per-call configuration of cracking behaviour.

#pragma once

#include <cstddef>

#include "util/rng.h"
#include "util/thread_pool.h"

namespace holix {

/// Which physical reorganization kernel a crack should use.
enum class CrackAlgo {
  kScalar,      ///< Branchy in-place Hoare partition [27].
  kOutOfPlace,  ///< Predicated out-of-place kernel (vectorized cracking [44]).
  kParallel,    ///< Refined partition & merge across threads [44].
};

/// Options carried by select operators and holistic workers into the
/// cracker column. Plain value type: cheap to copy per call.
struct CrackConfig {
  /// Kernel choice; kParallel requires `pool`.
  CrackAlgo algo = CrackAlgo::kOutOfPlace;

  /// Pool used by kParallel cracks (not owned). May be shared.
  ThreadPool* pool = nullptr;

  /// Threads per parallel crack (the "slice" count of Figure 4).
  size_t parallel_threads = 1;

  /// Pieces smaller than this fall back to the out-of-place kernel even
  /// when kParallel is requested.
  size_t min_parallel_piece = 1u << 16;

  /// Stochastic cracking (PVSDC [21,44]): before cracking the target piece
  /// at the query bound, repeatedly crack it at data-driven random pivots
  /// while it is larger than `stochastic_min_piece`.
  bool stochastic = false;

  /// RNG for stochastic pivots (not owned; required when stochastic).
  Rng* rng = nullptr;

  /// Stop stochastic pre-cracking below this piece size.
  size_t stochastic_min_piece = 1u << 14;
};

}  // namespace holix
