/// \file crack_config.h
/// \brief Per-call configuration of cracking behaviour.

#pragma once

#include <cstddef>
#include <optional>
#include <string_view>

#include "util/rng.h"
#include "util/thread_pool.h"

namespace holix {

/// Which physical reorganization kernel a crack should use.
enum class CrackAlgo {
  kScalar,      ///< Branchy in-place Hoare partition [27].
  kOutOfPlace,  ///< Predicated out-of-place kernel (vectorized cracking [44]).
  kParallel,    ///< Morsel-driven partition & merge across threads [44].
  kSimd,        ///< AVX2/AVX-512 compress-store tier (crack_kernels_simd.h);
                ///< falls back to kOutOfPlace below AVX2, same output bytes.
};

/// Canonical short name, as accepted by CrackAlgoFromString.
inline const char* CrackAlgoName(CrackAlgo algo) {
  switch (algo) {
    case CrackAlgo::kScalar:
      return "scalar";
    case CrackAlgo::kOutOfPlace:
      return "oop";
    case CrackAlgo::kParallel:
      return "parallel";
    case CrackAlgo::kSimd:
      return "simd";
  }
  return "scalar";
}

/// Parses a kernel name (server --kernel flag, HOLIX_KERNEL env var).
inline std::optional<CrackAlgo> CrackAlgoFromString(std::string_view s) {
  if (s == "scalar") return CrackAlgo::kScalar;
  if (s == "oop" || s == "out-of-place" || s == "outofplace")
    return CrackAlgo::kOutOfPlace;
  if (s == "parallel" || s == "morsel") return CrackAlgo::kParallel;
  if (s == "simd") return CrackAlgo::kSimd;
  return std::nullopt;
}

/// How kParallel distributes a piece across threads.
enum class ParallelCrackMode {
  kMorsels,       ///< ~L2-sized morsels on a work-stealing deque (default).
  kStaticSlices,  ///< Exactly-`threads` static slices (the pre-morsel
                  ///< scheme; kept for A/B benchmarking).
};

/// Options carried by select operators and holistic workers into the
/// cracker column. Plain value type: cheap to copy per call.
struct CrackConfig {
  /// Kernel choice; kParallel requires `pool`.
  CrackAlgo algo = CrackAlgo::kOutOfPlace;

  /// Pool used by kParallel cracks (not owned). May be shared.
  ThreadPool* pool = nullptr;

  /// Threads per parallel crack (the slice/morsel worker count of Figure 4).
  size_t parallel_threads = 1;

  /// Pieces smaller than this fall back to the single-threaded SIMD kernel
  /// even when kParallel is requested.
  size_t min_parallel_piece = 1u << 16;

  /// Scheduling of kParallel cracks.
  ParallelCrackMode parallel_mode = ParallelCrackMode::kMorsels;

  /// Rows per morsel; 0 derives ~one L2 worth of (value, rowid) pairs.
  size_t morsel_rows = 0;

  /// Stochastic cracking (PVSDC [21,44]): before cracking the target piece
  /// at the query bound, repeatedly crack it at data-driven random pivots
  /// while it is larger than `stochastic_min_piece`.
  bool stochastic = false;

  /// RNG for stochastic pivots (not owned; required when stochastic).
  Rng* rng = nullptr;

  /// Stop stochastic pre-cracking below this piece size.
  size_t stochastic_min_piece = 1u << 14;
};

}  // namespace holix
