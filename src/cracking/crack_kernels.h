/// \file crack_kernels.h
/// \brief Physical reorganization kernels for database cracking (§3.2).
///
/// Three kernels are provided:
///  * CrackInTwoScalar     — branchy in-place Hoare partition (the classic
///                           cracking kernel of [27]),
///  * CrackInThreeScalar   — single-pass three-way partition, used when both
///                           query bounds fall into the same piece,
///  * CrackInTwoOutOfPlace — the predicated out-of-place kernel in the
///                           spirit of the vectorized cracking of Pirk et
///                           al. [44]: one sequential read stream, two
///                           sequential write streams, no data-dependent
///                           branches in the hot loop.
///
/// All kernels partition values and co-move an attached rowid array (and,
/// for the scalar kernels, arbitrary extra payload arrays via the swap
/// functor), because cracker columns are (value, rowid) pairs.
///
/// Ordering goes through KeyTraits<T>::Less, never raw `<`: for integers it
/// compiles to the identical compare, for doubles it is the engine's total
/// order (NaN above +inf, -0.0 == +0.0) — with raw `<` a NaN would satisfy
/// neither `< pivot` nor `>= pivot` and the Hoare kernel would spin.

#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "storage/types.h"

namespace holix {

/// In-place two-way partition of [lo, hi): values < pivot first.
/// \param swap  callable swap(i, j) exchanging full rows i and j.
/// \return the cut: first position whose value is >= pivot.
template <typename T, typename SwapFn>
size_t CrackInTwoScalar(T* v, size_t lo, size_t hi, T pivot, SwapFn&& swap) {
  size_t i = lo;
  size_t j = hi;
  while (i < j) {
    while (i < j && KeyTraits<T>::Less(v[i], pivot)) ++i;
    while (i < j && !KeyTraits<T>::Less(v[j - 1], pivot)) --j;
    if (i < j) {
      swap(i, j - 1);
      ++i;
      --j;
    }
  }
  return i;
}

/// In-place three-way partition of [lo_idx, hi_idx):
/// `< low` first, then `[low, high)`, then `>= high`. Requires low < high.
/// \return pair (a, b): [lo_idx,a) < low; [a,b) in range; [b,hi_idx) >= high.
template <typename T, typename SwapFn>
std::pair<size_t, size_t> CrackInThreeScalar(T* v, size_t lo_idx,
                                             size_t hi_idx, T low, T high,
                                             SwapFn&& swap) {
  size_t i = lo_idx;  // next slot for "< low"
  size_t k = lo_idx;  // scan cursor
  size_t j = hi_idx;  // first slot of ">= high"
  while (k < j) {
    if (KeyTraits<T>::Less(v[k], low)) {
      if (i != k) swap(i, k);
      ++i;
      ++k;
    } else if (!KeyTraits<T>::Less(v[k], high)) {
      --j;
      swap(k, j);
    } else {
      ++k;
    }
  }
  return {i, k};
}

/// Scratch buffers reused across out-of-place cracks by one thread.
template <typename T>
struct CrackScratch {
  std::vector<T> values;
  std::vector<RowId> rowids;
};

/// Thread-local scratch for out-of-place cracking.
template <typename T>
CrackScratch<T>& ThreadLocalCrackScratch() {
  thread_local CrackScratch<T> scratch;
  return scratch;
}

/// Out-of-place two-way partition of values+rowids in [lo, hi).
///
/// Reads the piece once sequentially, writes lows forward / highs backward
/// into scratch with predicated cursor updates (no mispredicted branches),
/// then copies back. This keeps the memory-access character of vectorized
/// cracking [44] — sequential streams instead of the random-ish swap
/// pattern of the Hoare kernel — at the cost of piece-sized scratch, which
/// shrinks as cracking progresses.
/// \return the cut: first position whose value is >= pivot.
template <typename T>
size_t CrackInTwoOutOfPlace(T* v, RowId* ids, size_t lo, size_t hi, T pivot,
                            CrackScratch<T>& scratch) {
  const size_t n = hi - lo;
  if (n == 0) return lo;
  if (scratch.values.size() < n) {
    scratch.values.resize(n);
    scratch.rowids.resize(n);
  }
  T* vb = scratch.values.data();
  RowId* ib = scratch.rowids.data();
  size_t f = 0;
  size_t b = n - 1;
  for (size_t k = lo; k < hi; ++k) {
    const T x = v[k];
    const RowId r = ids[k];
    // Write to both candidate slots, advance exactly one cursor.
    vb[f] = x;
    ib[f] = r;
    vb[b] = x;
    ib[b] = r;
    const bool lt = KeyTraits<T>::Less(x, pivot);
    f += lt;
    b -= !lt;
  }
  std::copy_n(vb, n, v + lo);
  std::copy_n(ib, n, ids + lo);
  return lo + f;
}

}  // namespace holix
