/// \file crack_kernels_simd.h
/// \brief SIMD crack-in-two kernels (the "vectorized cracking" tier, §5.1).
///
/// Runtime-dispatched AVX2 / AVX-512 implementations of the out-of-place
/// crack-in-two for the three indexable key types (int32, int64, double),
/// co-moving the rowid array. The hot loop is compare → movemask →
/// compress-store: AVX2 emulates the compress with a table-driven
/// cross-lane permute (`vpermd`), AVX-512 uses native `vcompress` stores.
///
/// Layout contract — the SIMD kernels produce *byte-identical* output to
/// `CrackInTwoOutOfPlace`: lows keep input order at the front of the piece,
/// highs land in reverse input order at the back. Internally each vector of
/// keys+rowids is loaded into registers first, then its lows are compressed
/// *directly into the column* at the low cursor — safe because the low
/// cursor can never outrun the read cursor by more than the vector already
/// held in registers — while highs stream forward into scratch and are
/// copied back reversed (with a lane-reversing vector loop) at the end.
/// Writing highs straight to the back is impossible under this contract:
/// the tail of the piece is exactly the input that has not been read yet.
/// This costs ~3 bytes of traffic per input byte (read, low/high write,
/// high re-read+write) versus ~4 for the naive both-streams-in-scratch
/// scheme, which is what the memory-bound large-N case is limited by.
/// Because the portable fallback *is* `CrackInTwoOutOfPlace`, a `kSimd`
/// crack returns the same array bytes on every host regardless of the
/// dispatched level — checksums never depend on the ISA.
///
/// Ordering semantics: integer lanes compare with signed `<`, which equals
/// `KeyTraits<int>::Less`. Double lanes compare with IEEE `LT_OQ`, which
/// equals `KeyTraits<double>::Less` for every non-NaN pivot (NaN lanes
/// compare false on both sides; -0.0 == +0.0 under IEEE, matching the rank
/// order). A NaN pivot sits above +inf in the engine's total order, so for
/// that single case the predicate becomes "lane is ordered" (`ORD_Q`). The
/// scalar tail (n mod lane-width) goes through `KeyTraits<T>::Less` proper.
///
/// Dispatch: `DetectSimdLevel()` CPUID-probes once (cached); the
/// `HOLIX_SIMD` env var (`portable|avx2|avx512`) clamps the level down for
/// testing. Building with `-DHOLIX_NATIVE=ON` (-march=native) turns the
/// probe into a compile-time constant on hosts whose ISA is baked into the
/// binary.

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string_view>
#include <type_traits>

#include "cracking/crack_kernels.h"
#include "obs/metrics.h"
#include "storage/types.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define HOLIX_SIMD_X86 1
#include <immintrin.h>
#else
#define HOLIX_SIMD_X86 0
#endif

namespace holix {

/// Instruction-set tier a crack kernel may use.
enum class SimdLevel : int {
  kPortable = 0,  ///< Scalar predicated kernel (CrackInTwoOutOfPlace).
  kAvx2 = 1,      ///< 256-bit compare/movemask + table-driven compress.
  kAvx512 = 2,    ///< 512-bit compare-into-mask + native vcompress stores.
};

inline const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
    default:
      return "portable";
  }
}

/// Parses a HOLIX_SIMD value; unknown strings yield nullopt (= no override).
inline std::optional<SimdLevel> ParseSimdLevel(std::string_view s) {
  if (s == "portable" || s == "scalar" || s == "off" || s == "0")
    return SimdLevel::kPortable;
  if (s == "avx2") return SimdLevel::kAvx2;
  if (s == "avx512") return SimdLevel::kAvx512;
  return std::nullopt;
}

/// The best tier this CPU supports (ignores the env override).
inline SimdLevel DetectHardwareSimdLevel() {
#if HOLIX_SIMD_X86
#if defined(__AVX512F__)
  // -march=native on an AVX-512 host: the whole binary already assumes the
  // ISA, so the probe folds to a constant.
  return SimdLevel::kAvx512;
#else
  if (__builtin_cpu_supports("avx512f")) return SimdLevel::kAvx512;
#if defined(__AVX2__)
  return SimdLevel::kAvx2;
#else
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
  return SimdLevel::kPortable;
#endif
#endif
#else
  return SimdLevel::kPortable;
#endif
}

/// Hardware level clamped by the HOLIX_SIMD env override; cached after the
/// first call. An override can only lower the tier — requesting avx512 on
/// an AVX2-only host still dispatches AVX2.
inline SimdLevel DetectSimdLevel() {
  static const SimdLevel level = [] {
    SimdLevel hw = DetectHardwareSimdLevel();
    if (const char* env = std::getenv("HOLIX_SIMD")) {
      if (auto forced = ParseSimdLevel(env)) {
        if (static_cast<int>(*forced) < static_cast<int>(hw)) hw = *forced;
      }
    }
    return hw;
  }();
  return level;
}

namespace simd_internal {

/// Slack elements past the high stream's nominal end: AVX2 compress
/// emulation always stores a full vector and advances the cursor by the
/// popcount, so up to lane-width-1 garbage elements spill past the last
/// valid slot.
inline constexpr size_t kLanePad = 16;

/// HOLIX_SCRATCH_PREFAULT=<bytes>: floor for per-thread scratch sizing, so
/// steady-state cracks never grow (and re-fault) scratch mid-query. The
/// resize itself value-initializes, i.e. touches every page — combined with
/// pinned workers (HOLIX_PIN_THREADS) first-touch places the pages on the
/// worker's own NUMA node.
inline size_t ScratchPrefaultBytes() {
  static const size_t bytes = []() -> size_t {
    const char* env = std::getenv("HOLIX_SCRATCH_PREFAULT");
    if (env == nullptr || *env == '\0') return 0;
    return std::strtoull(env, nullptr, 10);
  }();
  return bytes;
}

/// The forward high-side output stream carved out of one CrackScratch.
/// (Lows are compressed directly into the column; see the file comment.)
template <typename T>
struct Streams {
  T* high_v;
  RowId* high_i;
};

template <typename T>
Streams<T> PrepareStreams(CrackScratch<T>& scratch, size_t n) {
  // + kLanePad garbage slop, + one cache line of alignment slack: the
  // bounce-buffer flushes below store 64-byte-aligned blocks.
  size_t need = n + kLanePad + 64 / sizeof(T);
  const size_t floor_elems =
      ScratchPrefaultBytes() / (sizeof(T) + sizeof(RowId));
  need = std::max(need, floor_elems);
  if (scratch.values.size() < need) {
    scratch.values.resize(need);
    scratch.rowids.resize(need);
  }
  auto align64 = [](auto* p) {
    using P = std::remove_reference_t<decltype(*p)>;
    return reinterpret_cast<P*>(
        (reinterpret_cast<uintptr_t>(p) + 63) & ~uintptr_t{63});
  };
  return Streams<T>{align64(scratch.values.data()),
                    align64(scratch.rowids.data())};
}

/// Finishes the remaining [k, n) rows through KeyTraits::Less. Lows append
/// in place at the low cursor (f <= k always, and v[lo+k] is read into x
/// before the store can land on it); highs keep streaming into scratch.
template <typename T>
void ScalarTail(T* v, RowId* ids, size_t lo, size_t n, size_t k, T pivot,
                const Streams<T>& st, size_t& f, size_t& h) {
  for (; k < n; ++k) {
    const T x = v[lo + k];
    const RowId r = ids[lo + k];
    if (KeyTraits<T>::Less(x, pivot)) {
      v[lo + f] = x;
      ids[lo + f] = r;
      ++f;
    } else {
      st.high_v[h] = x;
      st.high_i[h] = r;
      ++h;
    }
  }
}

#if HOLIX_SIMD_X86

/// Streams at least this many bytes with non-temporal stores in the high
/// copy-back. NT stores skip the read-for-ownership a cold destination line
/// otherwise costs (a third of the copy-back's memory traffic at large N),
/// but deliberately bypass the cache — so small pieces, which later queries
/// re-crack while still cache-resident, keep regular stores.
inline constexpr size_t kNtCopyBytes = size_t{32} << 20;

/// Reversed copies: dst[h-1-i] = src[i]. Lane-reversing permute + backward
/// block stores; bitwise copies, so double NaN payloads survive intact.
/// Only reachable once dispatch has established AVX2 support.
__attribute__((target("avx2"))) inline void ReverseCopy64(
    const uint64_t* src, uint64_t* dst, size_t h) {
  size_t i = 0;
  if (h * sizeof(uint64_t) >= kNtCopyBytes) {
    // Scalar head until the descending store cursor is 32-byte aligned
    // (reached within 4 steps), then stream the bulk.
    while (h - i >= 4 &&
           (reinterpret_cast<uintptr_t>(dst + h - 4 - i) & 31u) != 0) {
      dst[h - 1 - i] = src[i];
      ++i;
    }
    for (; i + 4 <= h; i += 4) {
      const __m256i x =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
      _mm256_stream_si256(reinterpret_cast<__m256i*>(dst + h - 4 - i),
                          _mm256_permute4x64_epi64(x, 0x1B));
    }
    _mm_sfence();
  } else {
    for (; i + 4 <= h; i += 4) {
      const __m256i x =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + h - 4 - i),
                          _mm256_permute4x64_epi64(x, 0x1B));
    }
  }
  for (; i < h; ++i) dst[h - 1 - i] = src[i];
}

__attribute__((target("avx2"))) inline void ReverseCopy32(
    const uint32_t* src, uint32_t* dst, size_t h) {
  const __m256i rev = _mm256_setr_epi32(7, 6, 5, 4, 3, 2, 1, 0);
  size_t i = 0;
  if (h * sizeof(uint32_t) >= kNtCopyBytes) {
    while (h - i >= 8 &&
           (reinterpret_cast<uintptr_t>(dst + h - 8 - i) & 31u) != 0) {
      dst[h - 1 - i] = src[i];
      ++i;
    }
    for (; i + 8 <= h; i += 8) {
      const __m256i x =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
      _mm256_stream_si256(reinterpret_cast<__m256i*>(dst + h - 8 - i),
                          _mm256_permutevar8x32_epi32(x, rev));
    }
    _mm_sfence();
  } else {
    for (; i + 8 <= h; i += 8) {
      const __m256i x =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + h - 8 - i),
                          _mm256_permutevar8x32_epi32(x, rev));
    }
  }
  for (; i < h; ++i) dst[h - 1 - i] = src[i];
}

/// Copies the high stream back reversed into the piece tail — exactly the
/// layout CrackInTwoOutOfPlace leaves behind (lows are already in place).
template <typename T>
size_t CopyBack(T* v, RowId* ids, size_t lo, size_t n, const Streams<T>& st,
                size_t f, size_t h) {
  static_assert(sizeof(RowId) == 8);
  if constexpr (sizeof(T) == 8) {
    ReverseCopy64(reinterpret_cast<const uint64_t*>(st.high_v),
                  reinterpret_cast<uint64_t*>(v + lo + n - h), h);
  } else {
    static_assert(sizeof(T) == 4);
    ReverseCopy32(reinterpret_cast<const uint32_t*>(st.high_v),
                  reinterpret_cast<uint32_t*>(v + lo + n - h), h);
  }
  ReverseCopy64(st.high_i, ids + lo + n - h, h);
  return lo + f;
}

/// L1-resident staging for the high stream. The hot loop's compress stores
/// append here at an unaligned cursor (with garbage slop past it, like the
/// scratch stream used to take); full kCap blocks then flush to scratch
/// with cache-line-aligned block stores — non-temporal for large pieces, so
/// a cold 100+ MB scratch stream never pays read-for-ownership. Small
/// pieces flush with regular stores and stay cache-resident for the
/// copy-back.
template <typename T>
struct HighBounce {
  static constexpr size_t kCap = 1024;
  alignas(64) T v[kCap + kLanePad];
  alignas(64) RowId i[kCap + kLanePad];
};

/// Aligned block copy; \p bytes must be a multiple of 32 and both pointers
/// 32-byte aligned.
__attribute__((target("avx2"))) inline void CopyBlock256(const void* src,
                                                         void* dst,
                                                         size_t bytes,
                                                         bool nt) {
  const char* s = static_cast<const char*>(src);
  char* d = static_cast<char*>(dst);
  if (nt) {
    for (size_t off = 0; off < bytes; off += 32) {
      _mm256_stream_si256(
          reinterpret_cast<__m256i*>(d + off),
          _mm256_load_si256(reinterpret_cast<const __m256i*>(s + off)));
    }
  } else {
    for (size_t off = 0; off < bytes; off += 32) {
      _mm256_store_si256(
          reinterpret_cast<__m256i*>(d + off),
          _mm256_load_si256(reinterpret_cast<const __m256i*>(s + off)));
    }
  }
}

/// Flushes one full kCap block from the bounce to the scratch stream and
/// slides the (< lane-width) overhang back to the front.
template <typename T>
__attribute__((target("avx2"))) inline void FlushHigh(HighBounce<T>& b,
                                                      const Streams<T>& st,
                                                      size_t& h, size_t& hb,
                                                      bool nt) {
  constexpr size_t kCap = HighBounce<T>::kCap;
  CopyBlock256(b.v, st.high_v + h, kCap * sizeof(T), nt);
  CopyBlock256(b.i, st.high_i + h, kCap * sizeof(RowId), nt);
  h += kCap;
  hb -= kCap;
  std::memmove(b.v, b.v + kCap, hb * sizeof(T));
  std::memmove(b.i, b.i + kCap, hb * sizeof(RowId));
}

/// Moves whatever is left in the bounce to the scratch stream (vector-loop
/// epilogue, before the scalar tail appends straight to scratch).
template <typename T>
inline void DrainHigh(HighBounce<T>& b, const Streams<T>& st, size_t& h,
                      size_t& hb) {
  std::memcpy(st.high_v + h, b.v, hb * sizeof(T));
  std::memcpy(st.high_i + h, b.i, hb * sizeof(RowId));
  h += hb;
  hb = 0;
}

/// vpermd index table compressing the set lanes of an 8-bit mask to the
/// front (ascending lane order, i.e. stable).
struct CompressLut8 {
  alignas(32) uint32_t idx[256][8];
};
inline constexpr CompressLut8 kCompressLut8 = [] {
  CompressLut8 lut{};
  for (unsigned m = 0; m < 256; ++m) {
    unsigned out = 0;
    for (unsigned lane = 0; lane < 8; ++lane) {
      if (m & (1u << lane)) lut.idx[m][out++] = lane;
    }
    for (; out < 8; ++out) lut.idx[m][out] = 0;
  }
  return lut;
}();

/// Same, for four 64-bit elements addressed as epi32 pairs.
struct CompressLut4 {
  alignas(32) uint32_t idx[16][8];
};
inline constexpr CompressLut4 kCompressLut4 = [] {
  CompressLut4 lut{};
  for (unsigned m = 0; m < 16; ++m) {
    unsigned out = 0;
    for (unsigned lane = 0; lane < 4; ++lane) {
      if (m & (1u << lane)) {
        lut.idx[m][out++] = 2 * lane;
        lut.idx[m][out++] = 2 * lane + 1;
      }
    }
    for (; out < 8; ++out) lut.idx[m][out] = 0;
  }
  return lut;
}();

__attribute__((target("avx2"))) inline __m256i Lut8Perm(unsigned mask) {
  return _mm256_load_si256(
      reinterpret_cast<const __m256i*>(kCompressLut8.idx[mask]));
}
__attribute__((target("avx2"))) inline __m256i Lut4Perm(unsigned mask) {
  return _mm256_load_si256(
      reinterpret_cast<const __m256i*>(kCompressLut4.idx[mask]));
}

// ---------------------------------------------------------------- AVX2 --

__attribute__((target("avx2"))) inline size_t CrackAvx2(
    int32_t* v, RowId* ids, size_t lo, size_t hi, int32_t pivot,
    CrackScratch<int32_t>& scratch) {
  const size_t n = hi - lo;
  const Streams<int32_t> st = PrepareStreams(scratch, n);
  HighBounce<int32_t> b;
  const bool nt = n * (sizeof(int32_t) + sizeof(RowId)) >= kNtCopyBytes;
  const __m256i pv = _mm256_set1_epi32(pivot);
  size_t f = 0, h = 0, hb = 0, k = 0;
  for (; k + 8 <= n; k += 8) {
    _mm_prefetch(reinterpret_cast<const char*>(v + lo + k) + 1024,
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(ids + lo + k) + 1024,
                 _MM_HINT_T0);
    const __m256i x = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(v + lo + k));
    const __m256i ra = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(ids + lo + k));
    const __m256i rb = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(ids + lo + k + 4));
    // Lane i set iff v[i] < pivot (signed), == KeyTraits<int32_t>::Less.
    const unsigned m = static_cast<unsigned>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpgt_epi32(pv, x))));
    const unsigned mn = ~m & 0xFFu;
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(v + lo + f),
                        _mm256_permutevar8x32_epi32(x, Lut8Perm(m)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(b.v + hb),
                        _mm256_permutevar8x32_epi32(x, Lut8Perm(mn)));
    // Rowids are 64-bit: compress each 4-lane nibble separately, the second
    // store starting where the first nibble's survivors ended.
    const unsigned m_a = m & 0xFu, m_b = (m >> 4) & 0xFu;
    const unsigned n_a = mn & 0xFu, n_b = (mn >> 4) & 0xFu;
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(ids + lo + f),
                        _mm256_permutevar8x32_epi32(ra, Lut4Perm(m_a)));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(ids + lo + f + __builtin_popcount(m_a)),
        _mm256_permutevar8x32_epi32(rb, Lut4Perm(m_b)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(b.i + hb),
                        _mm256_permutevar8x32_epi32(ra, Lut4Perm(n_a)));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(b.i + hb + __builtin_popcount(n_a)),
        _mm256_permutevar8x32_epi32(rb, Lut4Perm(n_b)));
    const size_t c = static_cast<size_t>(__builtin_popcount(m));
    f += c;
    hb += 8 - c;
    if (hb >= HighBounce<int32_t>::kCap) FlushHigh(b, st, h, hb, nt);
  }
  DrainHigh(b, st, h, hb);
  ScalarTail(v, ids, lo, n, k, pivot, st, f, h);
  return CopyBack(v, ids, lo, n, st, f, h);
}

__attribute__((target("avx2"))) inline size_t CrackAvx2(
    int64_t* v, RowId* ids, size_t lo, size_t hi, int64_t pivot,
    CrackScratch<int64_t>& scratch) {
  const size_t n = hi - lo;
  const Streams<int64_t> st = PrepareStreams(scratch, n);
  HighBounce<int64_t> b;
  const bool nt = n * (sizeof(int64_t) + sizeof(RowId)) >= kNtCopyBytes;
  const __m256i pv = _mm256_set1_epi64x(pivot);
  size_t f = 0, h = 0, hb = 0, k = 0;
  for (; k + 4 <= n; k += 4) {
    _mm_prefetch(reinterpret_cast<const char*>(v + lo + k) + 1024,
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(ids + lo + k) + 1024,
                 _MM_HINT_T0);
    const __m256i x = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(v + lo + k));
    const __m256i r = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(ids + lo + k));
    const unsigned m = static_cast<unsigned>(_mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpgt_epi64(pv, x))));
    const unsigned mn = ~m & 0xFu;
    const __m256i pl = Lut4Perm(m), ph = Lut4Perm(mn);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(v + lo + f),
                        _mm256_permutevar8x32_epi32(x, pl));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(ids + lo + f),
                        _mm256_permutevar8x32_epi32(r, pl));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(b.v + hb),
                        _mm256_permutevar8x32_epi32(x, ph));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(b.i + hb),
                        _mm256_permutevar8x32_epi32(r, ph));
    const size_t c = static_cast<size_t>(__builtin_popcount(m));
    f += c;
    hb += 4 - c;
    if (hb >= HighBounce<int64_t>::kCap) FlushHigh(b, st, h, hb, nt);
  }
  DrainHigh(b, st, h, hb);
  ScalarTail(v, ids, lo, n, k, pivot, st, f, h);
  return CopyBack(v, ids, lo, n, st, f, h);
}

__attribute__((target("avx2"))) inline size_t CrackAvx2(
    double* v, RowId* ids, size_t lo, size_t hi, double pivot,
    CrackScratch<double>& scratch) {
  const size_t n = hi - lo;
  const Streams<double> st = PrepareStreams(scratch, n);
  HighBounce<double> b;
  const bool nt = n * (sizeof(double) + sizeof(RowId)) >= kNtCopyBytes;
  const __m256d pv = _mm256_set1_pd(pivot);
  // IEEE LT_OQ equals KeyTraits<double>::Less for every non-NaN pivot (NaN
  // lanes are never-less either way; -0.0 == +0.0). A NaN pivot ranks above
  // everything, so there "less" means "lane is not NaN" (ORD_Q vs itself).
  const bool nan_pivot = pivot != pivot;
  size_t f = 0, h = 0, hb = 0, k = 0;
  for (; k + 4 <= n; k += 4) {
    _mm_prefetch(reinterpret_cast<const char*>(v + lo + k) + 1024,
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(ids + lo + k) + 1024,
                 _MM_HINT_T0);
    const __m256d x = _mm256_loadu_pd(v + lo + k);
    const __m256i r = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(ids + lo + k));
    const __m256d lt = nan_pivot ? _mm256_cmp_pd(x, x, _CMP_ORD_Q)
                                 : _mm256_cmp_pd(x, pv, _CMP_LT_OQ);
    const unsigned m = static_cast<unsigned>(_mm256_movemask_pd(lt));
    const unsigned mn = ~m & 0xFu;
    const __m256i xi = _mm256_castpd_si256(x);
    const __m256i pl = Lut4Perm(m), ph = Lut4Perm(mn);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(v + lo + f),
                        _mm256_permutevar8x32_epi32(xi, pl));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(ids + lo + f),
                        _mm256_permutevar8x32_epi32(r, pl));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(b.v + hb),
                        _mm256_permutevar8x32_epi32(xi, ph));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(b.i + hb),
                        _mm256_permutevar8x32_epi32(r, ph));
    const size_t c = static_cast<size_t>(__builtin_popcount(m));
    f += c;
    hb += 4 - c;
    if (hb >= HighBounce<double>::kCap) FlushHigh(b, st, h, hb, nt);
  }
  DrainHigh(b, st, h, hb);
  ScalarTail(v, ids, lo, n, k, pivot, st, f, h);
  return CopyBack(v, ids, lo, n, st, f, h);
}

// -------------------------------------------------------------- AVX-512 --

__attribute__((target("avx512f"))) inline size_t CrackAvx512(
    int32_t* v, RowId* ids, size_t lo, size_t hi, int32_t pivot,
    CrackScratch<int32_t>& scratch) {
  const size_t n = hi - lo;
  const Streams<int32_t> st = PrepareStreams(scratch, n);
  HighBounce<int32_t> b;
  const bool nt = n * (sizeof(int32_t) + sizeof(RowId)) >= kNtCopyBytes;
  const __m512i pv = _mm512_set1_epi32(pivot);
  size_t f = 0, h = 0, hb = 0, k = 0;
  for (; k + 16 <= n; k += 16) {
    _mm_prefetch(reinterpret_cast<const char*>(v + lo + k) + 1024,
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(ids + lo + k) + 1024,
                 _MM_HINT_T0);
    const __m512i x = _mm512_loadu_si512(v + lo + k);
    const __m512i ra = _mm512_loadu_si512(ids + lo + k);
    const __m512i rb = _mm512_loadu_si512(ids + lo + k + 8);
    const __mmask16 m = _mm512_cmp_epi32_mask(x, pv, _MM_CMPINT_LT);
    const __mmask16 mn = static_cast<__mmask16>(~m);
    // Compress in registers and issue plain full-width stores: vcompress-
    // to-memory microcodes to a slow store on most Xeons. The garbage lanes
    // past each cursor are overwritten by the next store (see file comment).
    _mm512_storeu_si512(v + lo + f, _mm512_maskz_compress_epi32(m, x));
    _mm512_storeu_si512(b.v + hb, _mm512_maskz_compress_epi32(mn, x));
    const __mmask8 m_a = static_cast<__mmask8>(m);
    const __mmask8 m_b = static_cast<__mmask8>(m >> 8);
    const __mmask8 n_a = static_cast<__mmask8>(mn);
    const __mmask8 n_b = static_cast<__mmask8>(mn >> 8);
    _mm512_storeu_si512(ids + lo + f, _mm512_maskz_compress_epi64(m_a, ra));
    _mm512_storeu_si512(ids + lo + f + __builtin_popcount(m_a),
                        _mm512_maskz_compress_epi64(m_b, rb));
    _mm512_storeu_si512(b.i + hb, _mm512_maskz_compress_epi64(n_a, ra));
    _mm512_storeu_si512(b.i + hb + __builtin_popcount(n_a),
                        _mm512_maskz_compress_epi64(n_b, rb));
    const size_t c = static_cast<size_t>(__builtin_popcount(m));
    f += c;
    hb += 16 - c;
    if (hb >= HighBounce<int32_t>::kCap) FlushHigh(b, st, h, hb, nt);
  }
  DrainHigh(b, st, h, hb);
  ScalarTail(v, ids, lo, n, k, pivot, st, f, h);
  return CopyBack(v, ids, lo, n, st, f, h);
}

__attribute__((target("avx512f"))) inline size_t CrackAvx512(
    int64_t* v, RowId* ids, size_t lo, size_t hi, int64_t pivot,
    CrackScratch<int64_t>& scratch) {
  const size_t n = hi - lo;
  const Streams<int64_t> st = PrepareStreams(scratch, n);
  HighBounce<int64_t> b;
  const bool nt = n * (sizeof(int64_t) + sizeof(RowId)) >= kNtCopyBytes;
  const __m512i pv = _mm512_set1_epi64(pivot);
  size_t f = 0, h = 0, hb = 0, k = 0;
  for (; k + 8 <= n; k += 8) {
    _mm_prefetch(reinterpret_cast<const char*>(v + lo + k) + 1024,
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(ids + lo + k) + 1024,
                 _MM_HINT_T0);
    const __m512i x = _mm512_loadu_si512(v + lo + k);
    const __m512i r = _mm512_loadu_si512(ids + lo + k);
    const __mmask8 m = _mm512_cmp_epi64_mask(x, pv, _MM_CMPINT_LT);
    const __mmask8 mn = static_cast<__mmask8>(~m);
    // Register-compress + full-width stores (see the int32 kernel note).
    _mm512_storeu_si512(v + lo + f, _mm512_maskz_compress_epi64(m, x));
    _mm512_storeu_si512(ids + lo + f, _mm512_maskz_compress_epi64(m, r));
    _mm512_storeu_si512(b.v + hb, _mm512_maskz_compress_epi64(mn, x));
    _mm512_storeu_si512(b.i + hb, _mm512_maskz_compress_epi64(mn, r));
    const size_t c = static_cast<size_t>(__builtin_popcount(m));
    f += c;
    hb += 8 - c;
    if (hb >= HighBounce<int64_t>::kCap) FlushHigh(b, st, h, hb, nt);
  }
  DrainHigh(b, st, h, hb);
  ScalarTail(v, ids, lo, n, k, pivot, st, f, h);
  return CopyBack(v, ids, lo, n, st, f, h);
}

__attribute__((target("avx512f"))) inline size_t CrackAvx512(
    double* v, RowId* ids, size_t lo, size_t hi, double pivot,
    CrackScratch<double>& scratch) {
  const size_t n = hi - lo;
  const Streams<double> st = PrepareStreams(scratch, n);
  HighBounce<double> b;
  const bool nt = n * (sizeof(double) + sizeof(RowId)) >= kNtCopyBytes;
  const __m512d pv = _mm512_set1_pd(pivot);
  const bool nan_pivot = pivot != pivot;
  size_t f = 0, h = 0, hb = 0, k = 0;
  for (; k + 8 <= n; k += 8) {
    _mm_prefetch(reinterpret_cast<const char*>(v + lo + k) + 1024,
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(ids + lo + k) + 1024,
                 _MM_HINT_T0);
    const __m512d x = _mm512_loadu_pd(v + lo + k);
    const __m512i r = _mm512_loadu_si512(ids + lo + k);
    const __mmask8 m = nan_pivot ? _mm512_cmp_pd_mask(x, x, _CMP_ORD_Q)
                                 : _mm512_cmp_pd_mask(x, pv, _CMP_LT_OQ);
    const __mmask8 mn = static_cast<__mmask8>(~m);
    // Register-compress + full-width stores (see the int32 kernel note).
    _mm512_storeu_pd(v + lo + f, _mm512_maskz_compress_pd(m, x));
    _mm512_storeu_si512(ids + lo + f, _mm512_maskz_compress_epi64(m, r));
    _mm512_storeu_pd(b.v + hb, _mm512_maskz_compress_pd(mn, x));
    _mm512_storeu_si512(b.i + hb, _mm512_maskz_compress_epi64(mn, r));
    const size_t c = static_cast<size_t>(__builtin_popcount(m));
    f += c;
    hb += 8 - c;
    if (hb >= HighBounce<double>::kCap) FlushHigh(b, st, h, hb, nt);
  }
  DrainHigh(b, st, h, hb);
  ScalarTail(v, ids, lo, n, k, pivot, st, f, h);
  return CopyBack(v, ids, lo, n, st, f, h);
}

#endif  // HOLIX_SIMD_X86

inline void CountSimdCrack() {
  static obs::Counter& ops =
      obs::MetricsRegistry::Global().GetCounter("holix_crack_simd_ops_total");
  ops.Inc();
}

}  // namespace simd_internal

/// SIMD out-of-place two-way partition of values+rowids in [lo, hi).
/// Key types without a vector kernel — and the portable tier — fall back to
/// CrackInTwoOutOfPlace, whose output layout the vector kernels reproduce
/// exactly, so results are deterministic across dispatch levels.
/// \return the cut: first position whose value is >= pivot.
template <typename T>
size_t CrackInTwoSimd(T* v, RowId* ids, size_t lo, size_t hi, T pivot,
                      CrackScratch<T>& scratch,
                      SimdLevel level = DetectSimdLevel()) {
  (void)level;
#if HOLIX_SIMD_X86
  if constexpr (std::is_same_v<T, int32_t> || std::is_same_v<T, int64_t> ||
                std::is_same_v<T, double>) {
    if (level == SimdLevel::kAvx512) {
      simd_internal::CountSimdCrack();
      return simd_internal::CrackAvx512(v, ids, lo, hi, pivot, scratch);
    }
    if (level == SimdLevel::kAvx2) {
      simd_internal::CountSimdCrack();
      return simd_internal::CrackAvx2(v, ids, lo, hi, pivot, scratch);
    }
  }
#endif
  return CrackInTwoOutOfPlace(v, ids, lo, hi, pivot, scratch);
}

}  // namespace holix
