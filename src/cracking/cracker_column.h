/// \file cracker_column.h
/// \brief The adaptive index: a cracker column plus its cracker index
/// (§3.2), with piece-level concurrency control (§4.2, Figure 3), Ripple
/// update merging [28], and optional payload alignment in the spirit of
/// partial sideways cracking [29].
///
/// Latch ordering (outermost first):
///   1. column latch   — read for cracks/scans, write for Ripple merges
///                       (merges shift positions of many pieces at once);
///   2. piece latch    — write to reorganize one piece, read to scan it;
///   3. tree mutex     — shared to look up pieces, unique to add boundaries.
/// A thread never acquires a piece latch while holding the tree mutex, so
/// boundary inserts (piece latch -> unique tree) cannot deadlock against
/// lookups (shared tree only).

#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <limits>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "cracking/crack_config.h"
#include "cracking/crack_kernels.h"
#include "cracking/crack_kernels_simd.h"
#include "cracking/cracker_index.h"
#include "cracking/parallel_crack.h"
#include "obs/metrics.h"
#include "storage/pending_updates.h"
#include "storage/position_list.h"
#include "storage/types.h"

namespace holix {

/// Monotonic counters describing the life of one adaptive index. All fields
/// are safe to read concurrently; they feed the holistic statistics store.
struct CrackStats {
  std::atomic<uint64_t> accesses{0};       ///< User-query selects (f_I).
  std::atomic<uint64_t> exact_hits{0};     ///< Selects with both bounds present (f_Ih).
  std::atomic<uint64_t> query_cracks{0};   ///< Piece splits caused by queries.
  std::atomic<uint64_t> worker_cracks{0};  ///< Piece splits caused by workers.
  std::atomic<uint64_t> worker_skips{0};   ///< Worker try-latch failures (Fig. 3d).
  std::atomic<uint64_t> merged_inserts{0}; ///< Pending inserts merged.
  std::atomic<uint64_t> merged_deletes{0}; ///< Pending deletes merged.
};

/// An adaptive (cracked) index over one attribute.
///
/// The column stores (value, rowid) pairs which cracking physically
/// reorganizes; an optional set of aligned payload columns is co-moved by
/// the scalar kernels (sideways-style cracking, used by the TPC-H module).
template <typename T>
class CrackerColumn {
 public:
  /// Builds the cracker column as a copy of \p base with rowids 0..N-1.
  /// This is the copy the first query pays for in adaptive indexing.
  CrackerColumn(std::string name, const std::vector<T>& base)
      : name_(std::move(name)), values_(base) {
    rowids_.resize(values_.size());
    for (size_t i = 0; i < rowids_.size(); ++i) rowids_[i] = i;
    InitDomain();
  }

  /// Builds from explicit (value, rowid) vectors (tuple order preserved).
  CrackerColumn(std::string name, std::vector<T> values,
                std::vector<RowId> rowids)
      : name_(std::move(name)),
        values_(std::move(values)),
        rowids_(std::move(rowids)) {
    if (values_.size() != rowids_.size()) {
      throw std::invalid_argument("values/rowids length mismatch");
    }
    InitDomain();
  }

  CrackerColumn(const CrackerColumn&) = delete;
  CrackerColumn& operator=(const CrackerColumn&) = delete;

  /// Attribute name this index covers.
  const std::string& name() const { return name_; }

  /// Number of rows. Lock-free snapshot: Ripple merges grow/shrink the
  /// column under the exclusive latch, so unlatched readers (statistics,
  /// Equation-1 distance) need this mirror rather than values_.size().
  size_t size() const { return row_count_.load(std::memory_order_relaxed); }

  /// Number of pieces (boundaries + 1). Lock-free snapshot.
  size_t NumPieces() const {
    return num_boundaries_.load(std::memory_order_relaxed) + 1;
  }

  /// Smallest base value (meaningful only when size() > 0). Lock-free
  /// snapshot: Ripple merges widen the domain under the exclusive latch
  /// while holistic workers read it unlatched.
  T MinValue() const { return min_value_.load(std::memory_order_relaxed); }
  /// Largest base value. Lock-free snapshot.
  T MaxValue() const { return max_value_.load(std::memory_order_relaxed); }

  /// Mutable counters (updated by operations, read by holistic indexing).
  CrackStats& stats() { return stats_; }
  /// Read-only counters.
  const CrackStats& stats() const { return stats_; }

  /// Pending-update queues of this attribute.
  PendingUpdates<T>& pending() { return pending_; }

  /// Attaches an aligned payload column (sideways cracking): payload row i
  /// moves together with value row i from now on. Only allowed before any
  /// cracking has happened; scalar kernels are then used for all cracks.
  void AttachPayload(std::vector<int64_t> payload) {
    if (payload.size() != values_.size()) {
      throw std::invalid_argument("payload length mismatch");
    }
    if (NumPieces() != 1) {
      throw std::logic_error("AttachPayload requires an uncracked column");
    }
    payloads_.push_back(std::move(payload));
  }

  /// Number of aligned payload columns.
  size_t NumPayloads() const { return payloads_.size(); }

  // ---------------------------------------------------------------------
  // Select path (user queries)
  // ---------------------------------------------------------------------

  /// Range select: returns the contiguous positions whose values lie in
  /// [low, high). Cracks at both bounds as a side effect; merges pending
  /// updates overlapping the range first (Ripple, [28]).
  PositionRange SelectRange(T low, T high, const CrackConfig& cfg = {}) {
    stats_.accesses.fetch_add(1, std::memory_order_relaxed);
    if (!KeyTraits<T>::Less(low, high)) return {0, 0};
    // Merge before the emptiness check: a column loaded empty can still
    // have pending inserts in range, and they must become visible here.
    MergePendingInRange(low, high);
    if (size() == 0) return {0, 0};

    ReadGuard column_guard(column_latch_);
    // Exact hit: both bounds already are boundaries -> no reorganization.
    {
      std::shared_lock<std::shared_mutex> lk(tree_mu_);
      if (index_.HasBoundary(low) && index_.HasBoundary(high)) {
        const size_t b = index_.FindPiece(low, size()).begin;
        const size_t e = index_.FindPiece(high, size()).begin;
        stats_.exact_hits.fetch_add(1, std::memory_order_relaxed);
        return {b, e};
      }
    }
    // Fast path: both bounds inside the same piece -> crack-in-three.
    if (auto range = TryCrackInThree(low, high, cfg)) return *range;
    const size_t b = CrackAtBlocking(low, cfg);
    const size_t e = CrackAtBlocking(high, cfg);
    return {b, e};
  }

  /// Range select over the closed interval [low, high]: the form that can
  /// reach the total-order maximum (max(T) for integers, the NaN key for
  /// doubles), which SelectRange's exclusive high cannot express. Away from
  /// the order's top this is exactly SelectRange(low, Next(high)); at
  /// high == Highest() it cracks the low bound only and the qualifying
  /// rows run to the end of the column.
  PositionRange SelectRangeClosed(T low, T high, const CrackConfig& cfg = {}) {
    if (!KeyTraits<T>::IsHighest(high)) {
      return SelectRange(low, KeyTraits<T>::Next(high), cfg);
    }
    stats_.accesses.fetch_add(1, std::memory_order_relaxed);
    if (KeyTraits<T>::Less(high, low)) return {0, 0};
    MergePendingAtLeast(low);
    if (size() == 0) return {0, 0};
    ReadGuard column_guard(column_latch_);
    {
      std::shared_lock<std::shared_mutex> lk(tree_mu_);
      if (index_.HasBoundary(low)) {
        const size_t b = index_.FindPiece(low, size()).begin;
        stats_.exact_hits.fetch_add(1, std::memory_order_relaxed);
        return {b, size()};
      }
    }
    const size_t b = CrackAtBlocking(low, cfg);
    return {b, size()};
  }

  /// Cracks at a single bound (blocking); returns the first position whose
  /// value is >= w. Exposed for operators that need one-sided predicates.
  size_t CrackAtBlocking(T w, const CrackConfig& cfg = {}) {
    for (;;) {
      PieceRef<T> piece = LookupPiece(w);
      if (piece.exact) return piece.begin;
      piece.latch->LockWrite();
      PieceRef<T> cur = LookupPiece(w);
      if (cur.exact) {
        piece.latch->UnlockWrite();
        return cur.begin;
      }
      if (cur.latch != piece.latch) {
        piece.latch->UnlockWrite();
        continue;  // the piece was split under us; retry on the new piece
      }
      // Stochastic cracking: impose extra order inside big target pieces
      // with data-driven random pivots before the query-bound crack.
      while (cfg.stochastic && cfg.rng != nullptr &&
             cur.size() > cfg.stochastic_min_piece) {
        const size_t probe =
            cur.begin + cfg.rng->Below(std::max<size_t>(1, cur.size()));
        const T rnd_pivot = values_[probe];
        const bool degenerate =
            !KeyTraits<T>::Less(cur.lo_value.value_or(KeyTraits<T>::Lowest()),
                                rnd_pivot) ||
            KeyTraits<T>::Eq(rnd_pivot, w);
        if (degenerate) break;  // no order to impose
        const size_t cut = Partition(cur.begin, cur.end, rnd_pivot, cfg);
        InsertBoundary(rnd_pivot, cut);
        stats_.query_cracks.fetch_add(1, std::memory_order_relaxed);
        if (KeyTraits<T>::Less(w, rnd_pivot)) {
          cur.end = cut;
          cur.hi_value = rnd_pivot;
        } else if (KeyTraits<T>::Less(rnd_pivot, w)) {
          // Piece latch of [cut, end) is the new boundary's latch; we must
          // switch latches: release ours, retry from the top.
          piece.latch->UnlockWrite();
          goto retry;
        } else {
          piece.latch->UnlockWrite();
          return cut;
        }
      }
      {
        const size_t cut = Partition(cur.begin, cur.end, w, cfg);
        InsertBoundary(w, cut);
        stats_.query_cracks.fetch_add(1, std::memory_order_relaxed);
        piece.latch->UnlockWrite();
        return cut;
      }
    retry:;
    }
  }

  // ---------------------------------------------------------------------
  // Holistic refinement path (worker threads)
  // ---------------------------------------------------------------------

  /// One holistic refinement step: crack the piece containing \p pivot.
  /// Never blocks on a piece latch — if the piece is busy the caller picks
  /// another pivot (Figure 3). Also merges pending updates overlapping the
  /// piece, so workers bring the index up to date as a side effect (§4.2).
  /// \return true when a crack happened.
  bool TryRefineAt(T pivot, const CrackConfig& cfg = {}) {
    {
      ReadGuard column_guard(column_latch_);
      PieceRef<T> piece = LookupPiece(pivot);
      if (piece.exact) return false;
      if (!piece.latch->TryLockWrite()) {
        stats_.worker_skips.fetch_add(1, std::memory_order_relaxed);
        static obs::Counter& latch_failures =
            obs::MetricsRegistry::Global().GetCounter(
                "holix_latch_failures_total");
        latch_failures.Inc();
        return false;
      }
      PieceRef<T> cur = LookupPiece(pivot);
      if (cur.exact || cur.latch != piece.latch) {
        piece.latch->UnlockWrite();
        return false;
      }
      const size_t cut = Partition(cur.begin, cur.end, pivot, cfg);
      InsertBoundary(pivot, cut);
      stats_.worker_cracks.fetch_add(1, std::memory_order_relaxed);
      piece.latch->UnlockWrite();
    }
    // Merge any pending updates that the refined pieces cover; uses the
    // column write latch, so it happens outside the read-guarded section.
    MergePendingAround(pivot);
    return true;
  }

  // ---------------------------------------------------------------------
  // Result consumption
  // ---------------------------------------------------------------------

  /// Applies fn(value, rowid) to every row in \p range, taking piece read
  /// latches so concurrent cracks of the same pieces cannot tear rows.
  template <typename Fn>
  void ScanRange(PositionRange range, Fn&& fn) const {
    if (range.begin < range.end) {
      const uint64_t nbytes = static_cast<uint64_t>(range.size()) *
                              (sizeof(T) + sizeof(RowId));
      static obs::Counter& scan_bytes =
          obs::MetricsRegistry::Global().GetCounter("holix_scan_bytes_total");
      scan_bytes.Inc(nbytes);
      obs::TraceAddBytesScanned(nbytes);
    }
    ReadGuard column_guard(column_latch_);
    size_t pos = range.begin;
    while (pos < range.end) {
      PieceRef<T> piece;
      {
        std::shared_lock<std::shared_mutex> lk(tree_mu_);
        piece = index_.FindPieceByPosition(pos, size());
      }
      piece.latch->LockRead();
      // Revalidate: the piece may have been split between lookup and latch
      // acquisition, in which case positions past the new cut belong to a
      // different latch and must not be read under this one.
      PieceRef<T> cur;
      {
        std::shared_lock<std::shared_mutex> lk(tree_mu_);
        cur = index_.FindPieceByPosition(pos, size());
      }
      if (cur.latch != piece.latch) {
        piece.latch->UnlockRead();
        continue;
      }
      const size_t stop = std::min(range.end, cur.end);
      for (size_t i = pos; i < stop; ++i) fn(values_[i], rowids_[i]);
      piece.latch->UnlockRead();
      pos = stop;
    }
  }

  /// Sum of values in \p range (a cheap aggregate used by benchmarks to
  /// force result consumption). Accumulates in the key type's Sum type:
  /// int64 for integer keys, double for double keys.
  typename KeyTraits<T>::Sum SumRange(PositionRange range) const {
    typename KeyTraits<T>::Sum sum = 0;
    ScanRange(range, [&](T v, RowId) {
      sum += static_cast<typename KeyTraits<T>::Sum>(v);
    });
    return sum;
  }

  /// Materializes the rowids in \p range (tuple reconstruction input).
  PositionList FetchRowIds(PositionRange range) const {
    PositionList out;
    out.reserve(range.size());
    ScanRange(range, [&](T, RowId r) { out.push_back(r); });
    return out;
  }

  /// Unsynchronized value access. Callers must guarantee quiescence (tests,
  /// single-threaded tools); concurrent cracks may reorder rows under you.
  T ValueAtUnsafe(size_t pos) const { return values_[pos]; }
  /// Unsynchronized rowid access (same caveat as ValueAtUnsafe).
  RowId RowIdAtUnsafe(size_t pos) const { return rowids_[pos]; }
  /// Unsynchronized payload access (same caveat as ValueAtUnsafe).
  int64_t PayloadAtUnsafe(size_t payload_idx, size_t pos) const {
    return payloads_[payload_idx][pos];
  }

  // ---------------------------------------------------------------------
  // Updates (Ripple, [28])
  // ---------------------------------------------------------------------

  /// Merges every pending insert/delete whose value lies in [low, high)
  /// into the cracker column without invalidating any boundary.
  void MergePendingInRange(T low, T high) {
    // Cheap peek outside the column latch: long-lived out-of-range
    // entries must not force every select onto the exclusive path.
    if (!pending_.AnyInRange(low, high)) return;
    // Take the exclusive column latch BEFORE draining the queues. Items
    // must never sit outside both the queue and the column while readers
    // can run: a concurrent query would see empty queues, early-return
    // here, and count without the in-flight rows (lost-update window).
    WriteGuard column_guard(column_latch_);
    std::unique_lock<std::shared_mutex> lk(tree_mu_);
    ApplyTakenLocked(pending_.TakeInsertsInRange(low, high),
                     pending_.TakeDeletesInRange(low, high));
  }

  /// Merges every pending insert/delete whose value is >= \p low (the
  /// closed tail [low, max(T)] that MergePendingInRange cannot express).
  void MergePendingAtLeast(T low) {
    if (!pending_.AnyAtLeast(low)) return;
    WriteGuard column_guard(column_latch_);
    std::unique_lock<std::shared_mutex> lk(tree_mu_);
    ApplyTakenLocked(pending_.TakeInsertsAtLeast(low),
                     pending_.TakeDeletesAtLeast(low));
  }

  /// Piece-resolution cardinality estimate for [low, high) — or
  /// [low, high] with \p closed_high — used by the multi-predicate planner
  /// to order conjuncts by selectivity. Never cracks and never merges
  /// pending updates: it reads the existing boundary tree only, returning
  /// the span from the start of the piece containing \p low to the end of
  /// the piece containing \p high (an upper bound that tightens as the
  /// index refines; exact once both bounds are boundaries).
  size_t EstimateRange(T low, T high, bool closed_high = false) const {
    ReadGuard column_guard(column_latch_);
    std::shared_lock<std::shared_mutex> lk(tree_mu_);
    const size_t n = size();
    if (n == 0) return 0;
    const PieceRef<T> lo_piece = index_.FindPiece(low, n);
    const size_t begin = lo_piece.begin;
    size_t end;
    if (closed_high && KeyTraits<T>::IsHighest(high)) {
      end = n;  // the closed tail runs to the end of the column
    } else {
      const PieceRef<T> hi_piece = index_.FindPiece(high, n);
      // An exact boundary at the exclusive high makes the estimate exact
      // on that side; a closed high may extend into the next piece.
      end = (hi_piece.exact && !closed_high) ? hi_piece.begin : hi_piece.end;
    }
    return end > begin ? end - begin : 0;
  }

  /// Suggests a refinement pivot inside the biggest (or smallest) piece.
  /// This is the O(#pieces) bookkeeping scan the paper's "Index
  /// Refinement" discussion warns about; exposed so the pivot-policy
  /// ablation can measure the trade-off. Returns a data-driven value from
  /// inside the chosen piece, or nullopt when no piece is crackable.
  /// \param biggest    true = largest piece, false = smallest (size >= 2).
  /// \param rng        position sampler within the chosen piece.
  /// \param min_piece  ignore pieces smaller than this many rows.
  std::optional<T> SuggestExtremePiecePivot(bool biggest, Rng& rng,
                                            size_t min_piece = 2) const {
    ReadGuard column_guard(column_latch_);
    std::shared_lock<std::shared_mutex> lk(tree_mu_);
    size_t best_begin = 0, best_end = 0;
    bool found = false;
    size_t prev = 0;
    auto consider = [&](size_t lo, size_t hi) {
      const size_t len = hi - lo;
      if (len < std::max<size_t>(2, min_piece)) return;
      const size_t best_len = best_end - best_begin;
      if (!found || (biggest ? len > best_len : len < best_len)) {
        best_begin = lo;
        best_end = hi;
        found = true;
      }
    };
    index_.ForEachBoundary([&](const typename CrackerIndex<T>::Node& n) {
      consider(prev, n.pos);
      prev = n.pos;
    });
    consider(prev, size());
    if (!found) return std::nullopt;
    const size_t probe =
        best_begin + rng.Below(static_cast<uint64_t>(best_end - best_begin));
    return values_[probe];
  }

  /// Boundary (value, position) pairs in ascending value order — the
  /// warm-start payload a checkpoint persists. A boundary's position is a
  /// pure function of the column multiset (#{x : x < value}), so
  /// re-cracking a restored column at these values reproduces the
  /// boundaries bit-identically.
  std::vector<std::pair<T, size_t>> ExportBoundaries() const {
    ReadGuard column_guard(column_latch_);
    std::shared_lock<std::shared_mutex> lk(tree_mu_);
    std::vector<std::pair<T, size_t>> out;
    out.reserve(num_boundaries_.load(std::memory_order_relaxed));
    index_.ForEachBoundary([&](const typename CrackerIndex<T>::Node& n) {
      out.emplace_back(n.value, n.pos);
    });
    return out;
  }

  /// Pieces of diagnostics: piece sizes in position order.
  std::vector<size_t> PieceSizes() const {
    ReadGuard column_guard(column_latch_);
    std::shared_lock<std::shared_mutex> lk(tree_mu_);
    std::vector<size_t> sizes;
    size_t prev = 0;
    index_.ForEachBoundary([&](const typename CrackerIndex<T>::Node& n) {
      sizes.push_back(n.pos - prev);
      prev = n.pos;
    });
    sizes.push_back(size() - prev);
    return sizes;
  }

  /// Verifies the cracker invariant: every piece only holds values within
  /// its boundary range, and boundary positions are monotone. O(N).
  /// \return true when consistent. Test/debug helper.
  bool CheckInvariants() const {
    ReadGuard column_guard(column_latch_);
    std::shared_lock<std::shared_mutex> lk(tree_mu_);
    size_t prev_pos = 0;
    std::optional<T> prev_val;
    bool ok = true;
    auto check_piece = [&](size_t lo, size_t hi, std::optional<T> lo_v,
                           std::optional<T> hi_v) {
      for (size_t i = lo; i < hi; ++i) {
        if (lo_v && KeyTraits<T>::Less(values_[i], *lo_v)) ok = false;
        if (hi_v && !KeyTraits<T>::Less(values_[i], *hi_v)) ok = false;
      }
    };
    std::optional<T> lo_v;
    index_.ForEachBoundary([&](const typename CrackerIndex<T>::Node& n) {
      if (n.pos < prev_pos) ok = false;
      if (prev_val && !KeyTraits<T>::Less(*prev_val, n.value)) ok = false;
      check_piece(prev_pos, n.pos, lo_v, n.value);
      prev_pos = n.pos;
      lo_v = n.value;
      prev_val = n.value;
    });
    check_piece(prev_pos, size(), lo_v, std::nullopt);
    return ok;
  }

 private:
  /// Ripple-applies already-extracted pending entries. The caller holds the
  /// column write latch and the unique tree lock.
  void ApplyTakenLocked(std::vector<std::pair<T, RowId>> ins,
                        std::vector<std::pair<T, RowId>> del) {
    if (ins.empty() && del.empty()) return;
    auto nodes = index_.CollectBoundaries();
    for (const auto& [v, rid] : ins) RippleInsert(nodes, v, rid);
    for (const auto& [v, rid] : del) RippleDelete(nodes, v, rid);
    stats_.merged_inserts.fetch_add(ins.size(), std::memory_order_relaxed);
    stats_.merged_deletes.fetch_add(del.size(), std::memory_order_relaxed);
    static obs::Counter& ripple_ins = obs::MetricsRegistry::Global().GetCounter(
        "holix_ripple_merged_inserts_total");
    static obs::Counter& ripple_del = obs::MetricsRegistry::Global().GetCounter(
        "holix_ripple_merged_deletes_total");
    ripple_ins.Inc(ins.size());
    ripple_del.Inc(del.size());
  }

  void InitDomain() {
    row_count_.store(values_.size(), std::memory_order_relaxed);
    if (!values_.empty()) {
      auto [mn, mx] = std::minmax_element(
          values_.begin(), values_.end(),
          [](T a, T b) { return KeyTraits<T>::Less(a, b); });
      min_value_.store(KeyTraits<T>::Canonical(*mn), std::memory_order_relaxed);
      max_value_.store(KeyTraits<T>::Canonical(*mx), std::memory_order_relaxed);
    }
  }

  PieceRef<T> LookupPiece(T w) const {
    std::shared_lock<std::shared_mutex> lk(tree_mu_);
    return index_.FindPiece(w, size());
  }

  /// Partitions [begin, end) at \p pivot with the configured kernel while
  /// the caller holds the piece's write latch. Columns with aligned
  /// payloads always use the scalar kernel (it co-moves payload rows).
  size_t Partition(size_t begin, size_t end, T pivot,
                   const CrackConfig& cfg) {
    CountCrackKernel(begin, end);
    if (!payloads_.empty()) {
      return CrackInTwoScalar(values_.data(), begin, end, pivot,
                              [this](size_t i, size_t j) { SwapRows(i, j); });
    }
    switch (cfg.algo) {
      case CrackAlgo::kScalar:
        return CrackInTwoScalar(
            values_.data(), begin, end, pivot, [this](size_t i, size_t j) {
              std::swap(values_[i], values_[j]);
              std::swap(rowids_[i], rowids_[j]);
            });
      case CrackAlgo::kParallel:
        if (cfg.pool != nullptr && cfg.parallel_threads > 1) {
          ParallelCrackOptions opts;
          opts.threads = cfg.parallel_threads;
          opts.min_parallel_piece = cfg.min_parallel_piece;
          opts.mode = cfg.parallel_mode;
          opts.morsel_rows = cfg.morsel_rows;
          return ParallelCrackInTwo(values_.data(), rowids_.data(), begin,
                                    end, pivot, *cfg.pool, opts);
        }
        [[fallthrough]];
      case CrackAlgo::kSimd:
        return CrackInTwoSimd(values_.data(), rowids_.data(), begin, end,
                              pivot, ThreadLocalCrackScratch<T>());
      case CrackAlgo::kOutOfPlace:
        return CrackInTwoOutOfPlace(values_.data(), rowids_.data(), begin,
                                    end, pivot,
                                    ThreadLocalCrackScratch<T>());
    }
    return begin;
  }

  void SwapRows(size_t i, size_t j) {
    std::swap(values_[i], values_[j]);
    std::swap(rowids_[i], rowids_[j]);
    for (auto& p : payloads_) std::swap(p[i], p[j]);
  }

  void InsertBoundary(T value, size_t pos) {
    {
      std::unique_lock<std::shared_mutex> lk(tree_mu_);
      index_.Insert(value, pos);
      num_boundaries_.store(index_.num_boundaries(),
                            std::memory_order_relaxed);
    }
    CountPiecesCreated(1);
  }

  static void CountCrackKernel(size_t begin, size_t end) {
    static obs::Counter& cracks =
        obs::MetricsRegistry::Global().GetCounter("holix_cracks_total");
    static obs::Counter& moved = obs::MetricsRegistry::Global().GetCounter(
        "holix_crack_bytes_moved_total");
    cracks.Inc();
    moved.Inc(static_cast<uint64_t>(end - begin) *
              (sizeof(T) + sizeof(RowId)));
  }

  static void CountPiecesCreated(uint32_t n) {
    static obs::Counter& pieces = obs::MetricsRegistry::Global().GetCounter(
        "holix_pieces_created_total");
    pieces.Inc(n);
    obs::TraceAddPiecesCreated(n);
  }

  /// Crack-in-three fast path: both bounds in one piece, one latch, one
  /// pass over the data. Returns nullopt when the bounds span pieces (the
  /// caller falls back to two crack-in-twos).
  std::optional<PositionRange> TryCrackInThree(T low, T high,
                                               const CrackConfig& cfg) {
    PieceRef<T> piece = LookupPiece(low);
    // The piece must strictly contain both bounds: high below (not at)
    // the piece's upper boundary when one exists.
    if (piece.exact ||
        KeyTraits<T>::Less(piece.hi_value.value_or(high), high) ||
        (piece.hi_value && KeyTraits<T>::Eq(*piece.hi_value, high))) {
      return std::nullopt;
    }
    piece.latch->LockWrite();
    PieceRef<T> cur = LookupPiece(low);
    const bool still_spans =
        !cur.exact && cur.latch == piece.latch &&
        (!cur.hi_value || KeyTraits<T>::Less(high, *cur.hi_value));
    if (!still_spans) {
      piece.latch->UnlockWrite();
      return std::nullopt;
    }
    // Stochastic pre-cracks would complicate the three-way path; stochastic
    // configurations use the two-sided path instead.
    if (cfg.stochastic && cur.size() > cfg.stochastic_min_piece) {
      piece.latch->UnlockWrite();
      return std::nullopt;
    }
    size_t a, b;
    CountCrackKernel(cur.begin, cur.end);
    if (!payloads_.empty()) {
      std::tie(a, b) = CrackInThreeScalar(
          values_.data(), cur.begin, cur.end, low, high,
          [this](size_t i, size_t j) { SwapRows(i, j); });
    } else {
      std::tie(a, b) = CrackInThreeScalar(
          values_.data(), cur.begin, cur.end, low, high,
          [this](size_t i, size_t j) {
            std::swap(values_[i], values_[j]);
            std::swap(rowids_[i], rowids_[j]);
          });
    }
    {
      std::unique_lock<std::shared_mutex> lk(tree_mu_);
      index_.Insert(low, a);
      index_.Insert(high, b);
      num_boundaries_.store(index_.num_boundaries(),
                            std::memory_order_relaxed);
    }
    CountPiecesCreated(2);
    stats_.query_cracks.fetch_add(2, std::memory_order_relaxed);
    piece.latch->UnlockWrite();
    return PositionRange{a, b};
  }

  /// Merges pending updates covering the piece around \p pivot (worker
  /// side-job). Cheap when the pending queues are empty.
  void MergePendingAround(T pivot) {
    if (pending_.PendingInserts() == 0 && pending_.PendingDeletes() == 0)
      return;
    std::optional<T> lo_v, hi_v;
    {
      std::shared_lock<std::shared_mutex> lk(tree_mu_);
      const PieceRef<T> piece = index_.FindPiece(pivot, size());
      lo_v = piece.lo_value;
      hi_v = piece.hi_value;
    }
    const T low = lo_v.value_or(KeyTraits<T>::Lowest());
    if (hi_v.has_value()) {
      MergePendingInRange(low, *hi_v);
    } else {
      // Tail piece: the closed tail [low, Highest()] — an exclusive high
      // cannot express the order's top, and an approximation would leave a
      // pending row holding exactly the maximum key unmerged.
      MergePendingAtLeast(low);
    }
  }

  /// Ripple-inserts (v, rid), keeping every boundary valid. The caller
  /// holds the column write latch and the unique tree lock; \p nodes is the
  /// boundary list in ascending value order (positions updated in place).
  void RippleInsert(std::vector<typename CrackerIndex<T>::Node*>& nodes,
                    T v, RowId rid) {
    if (!payloads_.empty()) {
      throw std::logic_error("updates unsupported on payload-aligned column");
    }
    // Index of the first boundary whose value is > v: the target piece ends
    // at that boundary's position.
    size_t j = nodes.size();
    for (size_t i = 0; i < nodes.size(); ++i) {
      if (KeyTraits<T>::Less(v, nodes[i]->value)) {
        j = i;
        break;
      }
    }
    values_.push_back(v);
    rowids_.push_back(rid);
    size_t hole = values_.size() - 1;
    for (size_t i = nodes.size(); i-- > j;) {
      const size_t p = nodes[i]->pos;
      values_[hole] = values_[p];
      rowids_[hole] = rowids_[p];
      hole = p;
      nodes[i]->pos = p + 1;
    }
    values_[hole] = v;
    rowids_[hole] = rid;
    row_count_.store(values_.size(), std::memory_order_relaxed);
    if (values_.size() == 1) {
      // First row of a column loaded empty: seed the domain rather than
      // widening from the T{} sentinel.
      min_value_.store(v, std::memory_order_relaxed);
      max_value_.store(v, std::memory_order_relaxed);
    } else {
      if (KeyTraits<T>::Less(v, min_value_.load(std::memory_order_relaxed)))
        min_value_.store(v, std::memory_order_relaxed);
      if (KeyTraits<T>::Less(max_value_.load(std::memory_order_relaxed), v))
        max_value_.store(v, std::memory_order_relaxed);
    }
  }

  /// Ripple-deletes the row (v, rid). Returns silently when absent (the
  /// value may never have existed or was already deleted).
  void RippleDelete(std::vector<typename CrackerIndex<T>::Node*>& nodes,
                    T v, RowId rid) {
    if (values_.empty()) return;
    size_t j = nodes.size();
    size_t begin = 0;
    for (size_t i = 0; i < nodes.size(); ++i) {
      if (KeyTraits<T>::Less(v, nodes[i]->value)) {
        j = i;
        break;
      }
      begin = nodes[i]->pos;
    }
    const size_t end = j < nodes.size() ? nodes[j]->pos : values_.size();
    size_t found = end;
    for (size_t i = begin; i < end; ++i) {
      if (KeyTraits<T>::Eq(values_[i], v) && rowids_[i] == rid) {
        found = i;
        break;
      }
    }
    if (found == end) return;  // not materialized
    // Fill the hole with the target piece's last row, then bubble the hole
    // upward one piece at a time.
    values_[found] = values_[end - 1];
    rowids_[found] = rowids_[end - 1];
    size_t hole = end - 1;
    for (size_t i = j; i < nodes.size(); ++i) {
      const size_t piece_end =
          (i + 1 < nodes.size()) ? nodes[i + 1]->pos : values_.size();
      values_[hole] = values_[piece_end - 1];
      rowids_[hole] = rowids_[piece_end - 1];
      nodes[i]->pos = nodes[i]->pos - 1;
      hole = piece_end - 1;
    }
    values_.pop_back();
    rowids_.pop_back();
    row_count_.store(values_.size(), std::memory_order_relaxed);
  }

  std::string name_;
  std::vector<T> values_;
  std::vector<RowId> rowids_;
  std::vector<std::vector<int64_t>> payloads_;

  CrackerIndex<T> index_;
  mutable std::shared_mutex tree_mu_;
  mutable RwSpinLatch column_latch_;
  std::atomic<size_t> num_boundaries_{0};
  std::atomic<size_t> row_count_{0};

  PendingUpdates<T> pending_;
  CrackStats stats_;
  std::atomic<T> min_value_{};
  std::atomic<T> max_value_{};
};

using Int32CrackerColumn = CrackerColumn<int32_t>;
using Int64CrackerColumn = CrackerColumn<int64_t>;
using DoubleCrackerColumn = CrackerColumn<double>;

}  // namespace holix
