/// \file cracker_index.h
/// \brief The cracker index: an AVL tree over piece boundaries (§3.2).
///
/// A node (v, p) records the invariant "every position < p holds a value
/// < v, and every position >= p holds a value >= v". Consecutive nodes in
/// value order therefore delimit the *pieces* of the cracker column. Each
/// node owns the latch of the piece that starts at its position; the piece
/// before the first boundary is guarded by a head latch owned by the tree.
///
/// Thread-safety: the tree structure itself is protected externally (the
/// cracker column holds a shared_mutex); nodes are heap-allocated and never
/// freed before the tree dies, so latch pointers taken under the shared lock
/// stay valid after it is released (rotations relink nodes, they do not
/// destroy them).

#pragma once

#include <cassert>
#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "storage/types.h"
#include "util/latch.h"

namespace holix {

/// Descriptor of one piece of a cracker column, as returned by lookups.
template <typename T>
struct PieceRef {
  size_t begin = 0;            ///< First position of the piece.
  size_t end = 0;              ///< One past the last position.
  RwSpinLatch* latch = nullptr;///< Latch guarding the piece.
  bool exact = false;          ///< Lookup key equals an existing boundary.
  std::optional<T> lo_value;   ///< Boundary value at begin (empty: -inf).
  std::optional<T> hi_value;   ///< Boundary value at end (empty: +inf).

  /// Number of positions in the piece.
  size_t size() const { return end - begin; }
};

/// AVL tree of cracker boundaries for one column.
template <typename T>
class CrackerIndex {
 public:
  /// One boundary. Nodes are stable in memory for the tree's lifetime.
  struct Node {
    T value;
    size_t pos;
    mutable RwSpinLatch latch;  ///< Guards the piece starting at pos.
    int height = 1;
    std::unique_ptr<Node> left;
    std::unique_ptr<Node> right;

    Node(T v, size_t p) : value(v), pos(p) {}
  };

  CrackerIndex() = default;
  CrackerIndex(const CrackerIndex&) = delete;
  CrackerIndex& operator=(const CrackerIndex&) = delete;

  /// Number of boundaries (pieces = boundaries + 1).
  size_t num_boundaries() const { return count_; }

  /// True when a boundary with exactly this value exists.
  bool HasBoundary(T value) const {
    const Node* n = root_.get();
    while (n != nullptr) {
      if (KeyTraits<T>::Eq(value, n->value)) return true;
      n = KeyTraits<T>::Less(value, n->value) ? n->left.get()
                                              : n->right.get();
    }
    return false;
  }

  /// Inserts boundary (value, pos). Inserting an existing value is a no-op.
  void Insert(T value, size_t pos) { InsertRec(root_, value, pos); }

  /// Finds the piece whose value range contains \p value.
  /// \param column_size  total number of rows (the end of the last piece).
  PieceRef<T> FindPiece(T value, size_t column_size) const {
    PieceRef<T> ref;
    ref.end = column_size;
    ref.latch = &head_latch_;
    const Node* n = root_.get();
    const Node* lower = nullptr;  // largest boundary value <= value
    const Node* upper = nullptr;  // smallest boundary value >  value
    while (n != nullptr) {
      if (!KeyTraits<T>::Less(value, n->value)) {
        lower = n;
        n = n->right.get();
      } else {
        upper = n;
        n = n->left.get();
      }
    }
    if (lower != nullptr) {
      ref.begin = lower->pos;
      ref.latch = &lower->latch;
      ref.lo_value = lower->value;
      ref.exact = KeyTraits<T>::Eq(lower->value, value);
    }
    if (upper != nullptr) {
      ref.end = upper->pos;
      ref.hi_value = upper->value;
    }
    return ref;
  }

  /// Finds the piece that contains row position \p pos. With empty pieces
  /// (equal boundary positions) the value-largest boundary at or below pos
  /// wins, so the returned piece is never empty unless the column is.
  PieceRef<T> FindPieceByPosition(size_t pos, size_t column_size) const {
    PieceRef<T> ref;
    ref.end = column_size;
    ref.latch = &head_latch_;
    const Node* n = root_.get();
    const Node* lower = nullptr;
    const Node* upper = nullptr;
    while (n != nullptr) {
      if (n->pos <= pos) {
        lower = n;
        n = n->right.get();
      } else {
        upper = n;
        n = n->left.get();
      }
    }
    if (lower != nullptr) {
      ref.begin = lower->pos;
      ref.latch = &lower->latch;
      ref.lo_value = lower->value;
    }
    if (upper != nullptr) {
      ref.end = upper->pos;
      ref.hi_value = upper->value;
    }
    return ref;
  }

  /// In-order (ascending value) visit of every boundary node.
  void ForEachBoundary(const std::function<void(Node&)>& fn) {
    ForEachRec(root_.get(), fn);
  }

  /// Read-only in-order visit, for const readers (piece statistics,
  /// invariant checks) that only need a shared tree lock.
  void ForEachBoundary(const std::function<void(const Node&)>& fn) const {
    ForEachConstRec(root_.get(), fn);
  }

  /// Collects boundary nodes in ascending value order.
  std::vector<Node*> CollectBoundaries() {
    std::vector<Node*> nodes;
    nodes.reserve(count_);
    ForEachBoundary([&](Node& n) { nodes.push_back(&n); });
    return nodes;
  }

  /// Latch of the piece that precedes the first boundary.
  RwSpinLatch& head_latch() const { return head_latch_; }

  /// Removes every boundary (piece structure resets to one piece).
  void Clear() {
    root_.reset();
    count_ = 0;
  }

 private:
  static int Height(const std::unique_ptr<Node>& n) {
    return n ? n->height : 0;
  }

  static void Update(std::unique_ptr<Node>& n) {
    n->height = 1 + std::max(Height(n->left), Height(n->right));
  }

  static void RotateRight(std::unique_ptr<Node>& n) {
    std::unique_ptr<Node> l = std::move(n->left);
    n->left = std::move(l->right);
    Update(n);
    l->right = std::move(n);
    n = std::move(l);
    Update(n);
  }

  static void RotateLeft(std::unique_ptr<Node>& n) {
    std::unique_ptr<Node> r = std::move(n->right);
    n->right = std::move(r->left);
    Update(n);
    r->left = std::move(n);
    n = std::move(r);
    Update(n);
  }

  static void Rebalance(std::unique_ptr<Node>& n) {
    Update(n);
    const int balance = Height(n->left) - Height(n->right);
    if (balance > 1) {
      if (Height(n->left->left) < Height(n->left->right)) {
        RotateLeft(n->left);
      }
      RotateRight(n);
    } else if (balance < -1) {
      if (Height(n->right->right) < Height(n->right->left)) {
        RotateRight(n->right);
      }
      RotateLeft(n);
    }
  }

  void InsertRec(std::unique_ptr<Node>& n, T value, size_t pos) {
    if (!n) {
      n = std::make_unique<Node>(value, pos);
      ++count_;
      return;
    }
    if (KeyTraits<T>::Eq(value, n->value)) return;  // boundary already present
    if (KeyTraits<T>::Less(value, n->value)) {
      InsertRec(n->left, value, pos);
    } else {
      InsertRec(n->right, value, pos);
    }
    Rebalance(n);
  }

  void ForEachRec(Node* n, const std::function<void(Node&)>& fn) {
    if (n == nullptr) return;
    ForEachRec(n->left.get(), fn);
    fn(*n);
    ForEachRec(n->right.get(), fn);
  }

  static void ForEachConstRec(const Node* n,
                              const std::function<void(const Node&)>& fn) {
    if (n == nullptr) return;
    ForEachConstRec(n->left.get(), fn);
    fn(*n);
    ForEachConstRec(n->right.get(), fn);
  }

  std::unique_ptr<Node> root_;
  size_t count_ = 0;
  mutable RwSpinLatch head_latch_;
};

}  // namespace holix
