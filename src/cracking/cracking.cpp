// Anchor translation unit: explicit instantiations of the cracking
// templates for the engine's supported key types.
#include "cracking/cracker_column.h"
#include "cracking/cracker_index.h"
#include "cracking/pre_crack.h"

namespace holix {
template class CrackerIndex<int32_t>;
template class CrackerIndex<int64_t>;
template class CrackerColumn<int32_t>;
template class CrackerColumn<int64_t>;
}  // namespace holix
