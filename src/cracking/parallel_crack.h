/// \file parallel_crack.h
/// \brief Multi-threaded crack-in-two (refined partition & merge, [44] §4.2),
/// morsel-driven.
///
/// The paper's parallel vectorized cracking splits the to-be-cracked piece
/// into independent slices, cracks them independently, and merges the
/// partial results into one contiguously partitioned piece (Figure 4). We
/// implement the same contract but carve the piece into ~L2-sized *morsels*
/// scheduled on a work-stealing deque (ThreadPool::ParallelForMorsels)
/// instead of exactly-`threads` static slices: a straggler (page fault,
/// preemption, skewed memory node) no longer stalls the whole crack, it
/// just loses its remaining morsels to thieves. Each morsel is partitioned
/// by the SIMD out-of-place kernel; the global cut is the sum of morsel
/// cuts, and the (provably equal-sized) sets of misplaced highs before the
/// cut / misplaced lows after the cut are swapped pairwise (neutralization).
/// The outcome — a contiguous `< pivot | >= pivot` piece — is identical to
/// Figure 4(b). The pre-morsel static-slice scheme is kept behind
/// ParallelCrackMode::kStaticSlices for A/B benchmarking.

#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "cracking/crack_config.h"
#include "cracking/crack_kernels.h"
#include "cracking/crack_kernels_simd.h"
#include "obs/metrics.h"
#include "storage/types.h"
#include "util/cache_info.h"
#include "util/thread_pool.h"

namespace holix {

namespace internal {

/// A maximal run of misplaced rows [begin, end) within one block.
struct MisplacedRun {
  size_t begin;
  size_t end;
};

}  // namespace internal

/// Rows per morsel so one morsel's (value, rowid) pairs fill about one L2.
template <typename T>
size_t DefaultMorselRows() {
  const size_t rows = L2CacheBytes() / (sizeof(T) + sizeof(RowId));
  return std::max<size_t>(rows, 1u << 12);
}

/// Per-call knobs for ParallelCrackInTwo.
struct ParallelCrackOptions {
  size_t threads = 1;                 ///< Max participants (incl. caller).
  size_t min_parallel_piece = 1u << 16;  ///< Below this: single-threaded.
  ParallelCrackMode mode = ParallelCrackMode::kMorsels;
  size_t morsel_rows = 0;             ///< 0 = DefaultMorselRows<T>().
  SimdLevel simd = DetectSimdLevel(); ///< Kernel tier for each block.
};

/// Parallel two-way partition of values+rowids in [lo, hi) using up to
/// `opts.threads` workers from \p pool. Falls back to the single-threaded
/// SIMD kernel for small pieces.
/// \return the cut: first position whose value is >= pivot.
template <typename T>
size_t ParallelCrackInTwo(T* v, RowId* ids, size_t lo, size_t hi, T pivot,
                          ThreadPool& pool, const ParallelCrackOptions& opts) {
  const size_t n = hi - lo;
  const size_t threads = std::min(opts.threads, pool.size() + 1);
  if (threads <= 1 || n < opts.min_parallel_piece) {
    return CrackInTwoSimd(v, ids, lo, hi, pivot, ThreadLocalCrackScratch<T>(),
                          opts.simd);
  }

  // Carve [lo, hi) into contiguous blocks: ~L2-sized morsels, or exactly
  // `threads` slices in the legacy static scheme.
  size_t block_rows;
  if (opts.mode == ParallelCrackMode::kStaticSlices) {
    block_rows = (n + threads - 1) / threads;
  } else {
    block_rows = opts.morsel_rows != 0 ? opts.morsel_rows
                                       : DefaultMorselRows<T>();
  }
  block_rows = std::max<size_t>(block_rows, 1);
  const size_t blocks = (n + block_rows - 1) / block_rows;
  std::vector<size_t> block_lo(blocks), block_hi(blocks), block_cut(blocks);
  for (size_t s = 0; s < blocks; ++s) {
    block_lo[s] = lo + std::min(n, s * block_rows);
    block_hi[s] = lo + std::min(n, (s + 1) * block_rows);
  }
  const SimdLevel simd = opts.simd;
  auto crack_block = [&](size_t s) {
    block_cut[s] = CrackInTwoSimd(v, ids, block_lo[s], block_hi[s], pivot,
                                  ThreadLocalCrackScratch<T>(), simd);
  };
  if (opts.mode == ParallelCrackMode::kStaticSlices) {
    pool.ParallelFor(0, blocks, crack_block);
  } else {
    const MorselRunStats stats =
        pool.ParallelForMorsels(0, blocks, crack_block, threads);
    static obs::Counter& morsels = obs::MetricsRegistry::Global().GetCounter(
        "holix_crack_morsels_total");
    static obs::Counter& steals = obs::MetricsRegistry::Global().GetCounter(
        "holix_crack_morsel_steals_total");
    morsels.Inc(stats.morsels);
    if (stats.steals != 0) steals.Inc(stats.steals);
  }

  size_t lows = 0;
  for (size_t s = 0; s < blocks; ++s) lows += block_cut[s] - block_lo[s];
  const size_t cut = lo + lows;

  // Neutralization: highs that ended up before the global cut trade places
  // with lows that ended up after it. Both run sets have equal total size;
  // the argument is independent of the block count, so it holds for morsels
  // exactly as it did for slices.
  std::vector<internal::MisplacedRun> highs_before, lows_after;
  for (size_t s = 0; s < blocks; ++s) {
    const size_t hb = std::min(block_hi[s], cut);
    if (block_cut[s] < hb) highs_before.push_back({block_cut[s], hb});
    const size_t la = std::max(block_lo[s], cut);
    if (la < block_cut[s]) lows_after.push_back({la, block_cut[s]});
  }
  size_t hi_idx = 0, hi_pos = highs_before.empty() ? 0 : highs_before[0].begin;
  size_t lo_idx = 0, lo_pos = lows_after.empty() ? 0 : lows_after[0].begin;
  while (hi_idx < highs_before.size() && lo_idx < lows_after.size()) {
    std::swap(v[hi_pos], v[lo_pos]);
    std::swap(ids[hi_pos], ids[lo_pos]);
    if (++hi_pos == highs_before[hi_idx].end && ++hi_idx < highs_before.size())
      hi_pos = highs_before[hi_idx].begin;
    if (++lo_pos == lows_after[lo_idx].end && ++lo_idx < lows_after.size())
      lo_pos = lows_after[lo_idx].begin;
  }
  return cut;
}

/// Legacy signature: morsel scheduling with default knobs.
template <typename T>
size_t ParallelCrackInTwo(T* v, RowId* ids, size_t lo, size_t hi, T pivot,
                          ThreadPool& pool, size_t threads,
                          size_t min_parallel_piece = (1u << 16)) {
  ParallelCrackOptions opts;
  opts.threads = threads;
  opts.min_parallel_piece = min_parallel_piece;
  return ParallelCrackInTwo(v, ids, lo, hi, pivot, pool, opts);
}

}  // namespace holix
