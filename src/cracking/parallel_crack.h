/// \file parallel_crack.h
/// \brief Multi-threaded crack-in-two (refined partition & merge, [44] §4.2).
///
/// The paper's parallel vectorized cracking splits the to-be-cracked piece
/// into as many slices as threads, cracks the slices independently, and
/// merges the partial results into one contiguously partitioned piece
/// (Figure 4). We implement the same contract with a slice-partition +
/// neutralization scheme: each thread partitions its contiguous slice, the
/// global cut is the sum of slice cuts, and the (provably equal-sized) sets
/// of misplaced highs before the cut / misplaced lows after the cut are
/// swapped pairwise. The outcome — a contiguous `< pivot | >= pivot` piece —
/// is identical to Figure 4(b).

#pragma once

#include <cstddef>
#include <vector>

#include "cracking/crack_kernels.h"
#include "storage/types.h"
#include "util/thread_pool.h"

namespace holix {

namespace internal {

/// A maximal run of misplaced rows [begin, end) within one slice.
struct MisplacedRun {
  size_t begin;
  size_t end;
};

}  // namespace internal

/// Parallel two-way partition of values+rowids in [lo, hi) using up to
/// \p threads workers from \p pool. Falls back to the out-of-place scalar
/// kernel for small pieces.
/// \return the cut: first position whose value is >= pivot.
template <typename T>
size_t ParallelCrackInTwo(T* v, RowId* ids, size_t lo, size_t hi, T pivot,
                          ThreadPool& pool, size_t threads,
                          size_t min_parallel_piece = (1u << 16)) {
  const size_t n = hi - lo;
  threads = std::min(threads, pool.size() + 1);
  if (threads <= 1 || n < min_parallel_piece) {
    return CrackInTwoOutOfPlace(v, ids, lo, hi, pivot,
                                ThreadLocalCrackScratch<T>());
  }

  const size_t slices = threads;
  const size_t chunk = (n + slices - 1) / slices;
  std::vector<size_t> slice_lo(slices), slice_hi(slices), slice_cut(slices);
  for (size_t s = 0; s < slices; ++s) {
    slice_lo[s] = lo + std::min(n, s * chunk);
    slice_hi[s] = lo + std::min(n, (s + 1) * chunk);
  }
  pool.ParallelFor(0, slices, [&](size_t s) {
    slice_cut[s] = CrackInTwoOutOfPlace(v, ids, slice_lo[s], slice_hi[s],
                                        pivot, ThreadLocalCrackScratch<T>());
  });

  size_t lows = 0;
  for (size_t s = 0; s < slices; ++s) lows += slice_cut[s] - slice_lo[s];
  const size_t cut = lo + lows;

  // Neutralization: highs that ended up before the global cut trade places
  // with lows that ended up after it. Both run sets have equal total size.
  std::vector<internal::MisplacedRun> highs_before, lows_after;
  for (size_t s = 0; s < slices; ++s) {
    const size_t hb = std::min(slice_hi[s], cut);
    if (slice_cut[s] < hb) highs_before.push_back({slice_cut[s], hb});
    const size_t la = std::max(slice_lo[s], cut);
    if (la < slice_cut[s]) lows_after.push_back({la, slice_cut[s]});
  }
  size_t hi_idx = 0, hi_pos = highs_before.empty() ? 0 : highs_before[0].begin;
  size_t lo_idx = 0, lo_pos = lows_after.empty() ? 0 : lows_after[0].begin;
  while (hi_idx < highs_before.size() && lo_idx < lows_after.size()) {
    std::swap(v[hi_pos], v[lo_pos]);
    std::swap(ids[hi_pos], ids[lo_pos]);
    if (++hi_pos == highs_before[hi_idx].end && ++hi_idx < highs_before.size())
      hi_pos = highs_before[hi_idx].begin;
    if (++lo_pos == lows_after[lo_idx].end && ++lo_idx < lows_after.size())
      lo_pos = lows_after[lo_idx].begin;
  }
  return cut;
}

}  // namespace holix
