/// \file pre_crack.h
/// \brief Coarse-granular pre-partitioning (the mP-CCGI baseline, [8] as
/// modified in §5.2 of the paper).
///
/// P-CCGI range-partitions the data before the first query can benefit
/// from cracking; our modified variant keeps a single contiguous array (so
/// downstream operators see dense ranges, i.e. the consolidation the paper
/// added is implicit) by inserting k-1 equi-width boundaries up front. The
/// whole pre-partitioning cost lands on the first query, exactly the
/// penalty Figure 11 attributes to mP-CCGI.

#pragma once

#include <cmath>
#include <cstddef>
#include <type_traits>

#include "cracking/crack_config.h"
#include "cracking/cracker_column.h"

namespace holix {

/// The i-th of n equi-width grid pivots between \p lo and \p hi. Integer
/// domains interpolate in rank space (exact, overflow-free for domains
/// spanning all of T); double domains interpolate in value space when the
/// endpoints are finite, falling back to rank space for domains that reach
/// the infinities (where "value width" is meaningless).
template <typename T>
T EquiWidthPivot(T lo, T hi, size_t i, size_t n) {
  const double f = static_cast<double>(i) / static_cast<double>(n);
  if constexpr (std::is_floating_point_v<T>) {
    if (std::isfinite(lo) && std::isfinite(hi)) {
      // Convex combination: never overflows for finite endpoints.
      const T p = static_cast<T>(lo * (1.0 - f) + hi * f);
      if (std::isfinite(p)) return p;
    }
  }
  const uint64_t rlo = KeyTraits<T>::ToRank(lo);
  const uint64_t rhi = KeyTraits<T>::ToRank(hi);
  const uint64_t off =
      static_cast<uint64_t>(static_cast<double>(rhi - rlo) * f);
  return KeyTraits<T>::FromRank(rlo + off);
}

/// Splits \p col into \p pieces equi-width value ranges by cracking at the
/// k-1 interior grid pivots. Uses the kernel selected by \p cfg (parallel
/// cracking makes this scale with cores, as in [8]).
template <typename T>
void PreCrackEquiWidth(CrackerColumn<T>& col, size_t pieces,
                       const CrackConfig& cfg = {}) {
  if (pieces < 2 || col.size() == 0) return;
  const T lo = col.MinValue();
  const T hi = col.MaxValue();
  if (!KeyTraits<T>::Less(lo, hi)) return;
  for (size_t i = 1; i < pieces; ++i) {
    const T pivot = EquiWidthPivot(lo, hi, i, pieces);
    if (!KeyTraits<T>::Less(lo, pivot) || KeyTraits<T>::Less(hi, pivot)) {
      continue;
    }
    col.CrackAtBlocking(pivot, cfg);
  }
}

}  // namespace holix
