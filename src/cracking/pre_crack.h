/// \file pre_crack.h
/// \brief Coarse-granular pre-partitioning (the mP-CCGI baseline, [8] as
/// modified in §5.2 of the paper).
///
/// P-CCGI range-partitions the data before the first query can benefit
/// from cracking; our modified variant keeps a single contiguous array (so
/// downstream operators see dense ranges, i.e. the consolidation the paper
/// added is implicit) by inserting k-1 equi-width boundaries up front. The
/// whole pre-partitioning cost lands on the first query, exactly the
/// penalty Figure 11 attributes to mP-CCGI.

#pragma once

#include <cstddef>

#include "cracking/crack_config.h"
#include "cracking/cracker_column.h"

namespace holix {

/// Splits \p col into \p pieces equi-width value ranges by cracking at the
/// k-1 interior grid pivots. Uses the kernel selected by \p cfg (parallel
/// cracking makes this scale with cores, as in [8]).
template <typename T>
void PreCrackEquiWidth(CrackerColumn<T>& col, size_t pieces,
                       const CrackConfig& cfg = {}) {
  if (pieces < 2 || col.size() == 0) return;
  const T lo = col.MinValue();
  const T hi = col.MaxValue();
  if (lo >= hi) return;
  const double width =
      (static_cast<double>(hi) - static_cast<double>(lo)) / pieces;
  for (size_t i = 1; i < pieces; ++i) {
    const T pivot = static_cast<T>(static_cast<double>(lo) + width * i);
    if (pivot <= lo || pivot > hi) continue;
    col.CrackAtBlocking(pivot, cfg);
  }
}

}  // namespace holix
