/// \file column_registry.h
/// \brief Name resolution and per-column runtime state for the query engine.
///
/// The registry resolves `(table, column)` ONCE into a cheap, copyable
/// ColumnHandle; every later query through the handle touches no global
/// mutex and hashes no strings. Lookups go through an RCU-style snapshot:
/// readers atomically load a `shared_ptr` to an immutable name->entry map,
/// while mutations (LoadColumn, DropTable) build a new map under a writer
/// mutex and swap it in. Entries themselves are stable heap objects, so a
/// resolved handle stays valid across snapshot swaps; dropping a table
/// flips the entry's `dropped` flag, which executors check before touching
/// base data.
///
/// Each entry carries the *typed* runtime of its attribute — the base
/// Column<T> plus lazily built CrackerColumn<T> / SortedIndex<T>, published
/// through atomic shared_ptr slots — which is what makes the engine layer
/// generic over the element type (int32_t, int64_t and double; doubles
/// order through the KeyTraits<double> total order).

#pragma once

#include <atomic>
#include <cassert>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "baselines/sorted_index.h"
#include "cracking/cracker_column.h"
#include "holistic/adaptive_index.h"
#include "storage/column.h"
#include "storage/types.h"

namespace holix {

/// Where an entry's adaptive index currently sits in the holistic
/// statistics store. Mirrored on the entry so the query hot path can skip
/// the store mutex whenever no configuration transition is due.
enum class StoreState : uint8_t {
  kUnregistered,  ///< No adaptive index registered (or it was evicted).
  kActual,        ///< Registered in C_actual.
  kPotential,     ///< Registered in C_potential (seeded, not yet queried).
  kOptimal,       ///< Retired into C_optimal.
};

/// The typed per-attribute runtime: base storage plus the lazily built
/// index structures. Index slots are atomic shared_ptrs so the hot path
/// reads them lock-free; construction serializes on the entry's build_mu.
template <typename T>
struct TypedColumnRuntime {
  /// Base column (owned by the catalog; stable for the table's lifetime).
  const Column<T>* base = nullptr;

  /// Adaptive (cracked) index; null until first cracked access.
  std::atomic<std::shared_ptr<CrackerColumn<T>>> cracker{};

  /// Sorted projection; null until offline/online indexing builds it.
  std::atomic<std::shared_ptr<SortedIndex<T>>> sorted{};

  /// Cached [min, max] of the base column, computed lazily (one O(N) pass
  /// under the entry's build_mu) for selectivity interpolation on columns
  /// that have no index yet. Read domain_min/domain_max only after an
  /// acquire-load of domain_ready observes true.
  std::atomic<bool> domain_ready{false};
  T domain_min{};
  T domain_max{};
};

/// One registered attribute. Stable in memory from LoadColumn until the
/// last handle dies; `dropped` turns stale handles into errors instead of
/// dangling base pointers.
class ColumnEntry {
 public:
  ColumnEntry(std::string table, std::string column, ValueType type)
      : table_(std::move(table)),
        column_(std::move(column)),
        key_(table_ + "." + column_),
        type_(type) {
    DispatchIndexableType(type_, [this](auto tag) {
      using T = typename decltype(tag)::type;
      rt<T>().reset(new TypedColumnRuntime<T>());
    });
  }

  const std::string& table() const { return table_; }
  const std::string& column() const { return column_; }
  /// Unique "table.column" key (also the index name in the stats store).
  const std::string& key() const { return key_; }
  ValueType type() const { return type_; }

  /// The typed runtime slot. Only the slot matching type() is populated;
  /// callers dispatch on type() first (DispatchIndexableType).
  template <typename T>
  std::unique_ptr<TypedColumnRuntime<T>>& rt() {
    static_assert(std::is_same_v<T, int32_t> || std::is_same_v<T, int64_t> ||
                      std::is_same_v<T, double>,
                  "no typed runtime for this element type");
    if constexpr (std::is_same_v<T, int32_t>) {
      return rt32_;
    } else if constexpr (std::is_same_v<T, int64_t>) {
      return rt64_;
    } else {
      return rtf64_;
    }
  }
  template <typename T>
  TypedColumnRuntime<T>& runtime() {
    auto& slot = rt<T>();
    assert(slot != nullptr && "typed runtime accessed with the wrong T");
    return *slot;
  }

  /// Drops every built index structure and forgets the store registration
  /// (storage-budget eviction, table drop). Queries holding the old
  /// shared_ptr finish safely; the next access rebuilds.
  void ResetIndexRuntime() {
    if (rt32_) {
      rt32_->cracker.store(nullptr, std::memory_order_release);
      rt32_->sorted.store(nullptr, std::memory_order_release);
    }
    if (rt64_) {
      rt64_->cracker.store(nullptr, std::memory_order_release);
      rt64_->sorted.store(nullptr, std::memory_order_release);
    }
    if (rtf64_) {
      rtf64_->cracker.store(nullptr, std::memory_order_release);
      rtf64_->sorted.store(nullptr, std::memory_order_release);
    }
    adapter.store(nullptr, std::memory_order_release);
    store_state.store(StoreState::kUnregistered, std::memory_order_release);
  }

  /// Serializes slow-path index construction for this attribute only.
  std::mutex build_mu;

  /// Set by DropTable; checked by executors before dereferencing base.
  std::atomic<bool> dropped{false};

  /// Holistic bookkeeping (meaningful only in kHolistic mode).
  std::atomic<StoreState> store_state{StoreState::kUnregistered};
  std::atomic<std::shared_ptr<AdaptiveIndex>> adapter{};
  std::atomic<uint32_t> access_tick{0};  ///< Throttles weight refreshes.

 private:
  std::string table_;
  std::string column_;
  std::string key_;
  ValueType type_;
  std::unique_ptr<TypedColumnRuntime<int32_t>> rt32_;
  std::unique_ptr<TypedColumnRuntime<int64_t>> rt64_;
  std::unique_ptr<TypedColumnRuntime<double>> rtf64_;
};

/// A resolved reference to one attribute: resolve once, query many times.
/// Cheap to copy (one shared_ptr); safe to cache per client/session. A
/// default-constructed handle is invalid; a handle whose table was dropped
/// reports !valid() and makes queries throw instead of touching freed data.
class ColumnHandle {
 public:
  ColumnHandle() = default;
  explicit ColumnHandle(std::shared_ptr<ColumnEntry> entry)
      : entry_(std::move(entry)) {}

  /// True when the handle resolves to a live (not dropped) attribute.
  bool valid() const {
    return entry_ != nullptr &&
           !entry_->dropped.load(std::memory_order_acquire);
  }
  explicit operator bool() const { return valid(); }

  /// "table.column" of the referenced attribute (handle must be non-null).
  const std::string& key() const { return entry_->key(); }
  /// Element type of the referenced attribute (handle must be non-null).
  ValueType type() const { return entry_->type(); }

  /// Engine-internal access to the entry (null for a default handle).
  ColumnEntry* entry() const { return entry_.get(); }
  const std::shared_ptr<ColumnEntry>& entry_ptr() const { return entry_; }

 private:
  std::shared_ptr<ColumnEntry> entry_;
};

/// The name -> entry registry with RCU-style snapshot lookups.
class ColumnRegistry {
 public:
  using Snapshot = std::unordered_map<std::string, std::shared_ptr<ColumnEntry>>;

  ColumnRegistry() { snapshot_.store(std::make_shared<const Snapshot>()); }

  ColumnRegistry(const ColumnRegistry&) = delete;
  ColumnRegistry& operator=(const ColumnRegistry&) = delete;

  /// The canonical "table.column" key.
  static std::string Key(const std::string& table, const std::string& column) {
    return table + "." + column;
  }

  /// Registers attribute (table, column) backed by \p base. Replaces a
  /// previously dropped entry; re-registering a live attribute throws.
  template <typename T>
  ColumnHandle Add(const std::string& table, const std::string& column,
                   const Column<T>* base) {
    auto entry =
        std::make_shared<ColumnEntry>(table, column, ValueTypeOf<T>::value);
    entry->template runtime<T>().base = base;
    std::lock_guard<std::mutex> lk(mutate_mu_);
    auto next = std::make_shared<Snapshot>(*snapshot_.load());
    auto [it, inserted] = next->emplace(entry->key(), entry);
    if (!inserted) {
      if (!it->second->dropped.load(std::memory_order_acquire)) {
        throw std::invalid_argument("column already registered: " +
                                    entry->key());
      }
      it->second = entry;
    }
    snapshot_.store(std::shared_ptr<const Snapshot>(std::move(next)),
                    std::memory_order_release);
    return ColumnHandle(std::move(entry));
  }

  /// Resolves (table, column) to a handle, or a null handle when absent.
  /// One snapshot load + one hash; no global mutex.
  ColumnHandle TryResolve(const std::string& table,
                          const std::string& column) const {
    return FindByKey(Key(table, column));
  }

  /// Resolves (table, column); throws std::out_of_range when absent.
  ColumnHandle Resolve(const std::string& table,
                       const std::string& column) const {
    ColumnHandle h = TryResolve(table, column);
    if (h.entry() == nullptr) {
      throw std::out_of_range("no column " + Key(table, column));
    }
    return h;
  }

  /// Lookup by pre-built "table.column" key (eviction callbacks).
  ColumnHandle FindByKey(const std::string& key) const {
    const auto snap = snapshot_.load(std::memory_order_acquire);
    const auto it = snap->find(key);
    return it == snap->end() ? ColumnHandle() : ColumnHandle(it->second);
  }

  /// Removes every attribute of \p table from the namespace and marks the
  /// entries dropped (outstanding handles turn invalid). Returns the
  /// removed entries so the owner can deregister indices.
  std::vector<std::shared_ptr<ColumnEntry>> DropTable(
      const std::string& table) {
    std::vector<std::shared_ptr<ColumnEntry>> removed;
    std::lock_guard<std::mutex> lk(mutate_mu_);
    auto next = std::make_shared<Snapshot>();
    const auto snap = snapshot_.load();
    next->reserve(snap->size());
    for (const auto& [key, entry] : *snap) {
      if (entry->table() == table) {
        entry->dropped.store(true, std::memory_order_release);
        removed.push_back(entry);
      } else {
        next->emplace(key, entry);
      }
    }
    snapshot_.store(std::shared_ptr<const Snapshot>(std::move(next)),
                    std::memory_order_release);
    return removed;
  }

  /// Applies \p fn to every live entry (snapshot iteration; entries added
  /// or dropped concurrently may be missed — statistics use only).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    const auto snap = snapshot_.load(std::memory_order_acquire);
    for (const auto& [_, entry] : *snap) fn(*entry);
  }

  /// Number of registered attributes.
  size_t size() const { return snapshot_.load()->size(); }

 private:
  mutable std::mutex mutate_mu_;  ///< Writers only; readers never take it.
  std::atomic<std::shared_ptr<const Snapshot>> snapshot_;
};

}  // namespace holix
