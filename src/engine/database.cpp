#include "engine/database.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <thread>

namespace holix {

namespace {

/// Stochastic cracking pivots must come from a thread-safe source; each
/// query thread gets its own generator.
Rng& ThreadLocalQueryRng(uint64_t seed) {
  thread_local Rng rng(seed ^
                       std::hash<std::thread::id>{}(std::this_thread::get_id()));
  return rng;
}

}  // namespace

const char* ExecModeName(ExecMode m) {
  switch (m) {
    case ExecMode::kScan:
      return "scan";
    case ExecMode::kOffline:
      return "offline";
    case ExecMode::kOnline:
      return "online";
    case ExecMode::kAdaptive:
      return "adaptive";
    case ExecMode::kStochastic:
      return "stochastic";
    case ExecMode::kCCGI:
      return "ccgi";
    case ExecMode::kHolistic:
      return "holistic";
  }
  return "?";
}

Database::Database(DatabaseOptions options) : options_(options) {
  if (options_.total_cores == 0) {
    options_.total_cores = std::max<unsigned>(
        1, std::thread::hardware_concurrency());
  }
  options_.user_threads = std::max<size_t>(1, options_.user_threads);
  // The calling (client) thread counts as one context; the pool supplies
  // the rest of the query's thread budget.
  query_pool_ = std::make_unique<ThreadPool>(options_.user_threads - 1 == 0
                                                 ? 1
                                                 : options_.user_threads - 1);
  if (options_.mode == ExecMode::kHolistic) {
    std::unique_ptr<CpuMonitor> monitor;
    if (options_.use_proc_stat_monitor) {
      monitor = std::make_unique<ProcStatCpuMonitor>(
          options_.holistic.monitor_interval_seconds);
    } else {
      auto slot = std::make_unique<SlotCpuMonitor>(
          options_.total_cores, options_.holistic.monitor_interval_seconds);
      slot_monitor_ = slot.get();
      monitor = std::move(slot);
    }
    holistic_ =
        std::make_unique<HolisticEngine>(options_.holistic, std::move(monitor));
    holistic_->Start();
  }
}

Database::~Database() {
  if (holistic_ != nullptr) holistic_->Stop();
}

void Database::LoadColumn(const std::string& table, const std::string& column,
                          std::vector<int64_t> data) {
  Table& t = catalog_.CreateTable(table);
  const size_t rows = data.size();
  t.AddColumn<int64_t>(column, std::move(data));
  uint64_t expected = next_insert_rowid_.load(std::memory_order_relaxed);
  while (expected < rows && !next_insert_rowid_.compare_exchange_weak(
                                expected, rows, std::memory_order_relaxed)) {
  }
}

const Column<int64_t>& Database::BaseColumn(const std::string& table,
                                            const std::string& column) const {
  return catalog_.GetTable(table).GetColumn<int64_t>(column);
}

Database::ColumnRuntime& Database::Runtime(const std::string& key) {
  // Caller holds runtime_mu_.
  return runtime_[key];
}

std::shared_ptr<CrackerColumn<int64_t>> Database::EnsureCracker(
    const std::string& table, const std::string& column) {
  const std::string key = Key(table, column);
  {
    std::lock_guard<std::mutex> lk(runtime_mu_);
    auto it = runtime_.find(key);
    if (it != runtime_.end() && it->second.cracker != nullptr) {
      return it->second.cracker;
    }
  }
  // Build outside the lock (copying the base column may be expensive),
  // then race to install; the loser's copy is discarded.
  const Column<int64_t>& base = BaseColumn(table, column);
  auto fresh = std::make_shared<CrackerColumn<int64_t>>(key, base.values());
  std::shared_ptr<CrackerColumn<int64_t>> installed;
  {
    std::lock_guard<std::mutex> lk(runtime_mu_);
    ColumnRuntime& rt = Runtime(key);
    if (rt.cracker == nullptr) rt.cracker = fresh;
    installed = rt.cracker;
  }
  const bool won = installed == fresh;
  if (won && options_.mode == ExecMode::kCCGI) {
    const size_t chunks =
        options_.ccgi_chunks != 0 ? options_.ccgi_chunks : options_.user_threads;
    PreCrackEquiWidth(*installed, chunks, QueryCrackConfig());
  }
  if (won && holistic_ != nullptr) {
    auto adapter = std::make_shared<CrackerAdaptiveIndex<int64_t>>(installed);
    std::vector<std::string> evicted;
    if (!holistic_->store().Contains(key)) {
      holistic_->store().Register(adapter, ConfigKind::kActual, &evicted);
    } else {
      holistic_->store().RecordQueryAccess(key);
    }
    // Budget evictions drop the cracker columns; the store already forgot
    // them, so queries will rebuild on next access.
    if (!evicted.empty()) {
      std::lock_guard<std::mutex> lk(runtime_mu_);
      for (const auto& name : evicted) {
        auto it = runtime_.find(name);
        if (it != runtime_.end()) it->second.cracker.reset();
      }
    }
  }
  return installed;
}

std::shared_ptr<SortedIndex<int64_t>> Database::EnsureSorted(
    const std::string& table, const std::string& column) {
  const std::string key = Key(table, column);
  {
    std::lock_guard<std::mutex> lk(runtime_mu_);
    auto it = runtime_.find(key);
    if (it != runtime_.end() && it->second.sorted != nullptr) {
      return it->second.sorted;
    }
  }
  const Column<int64_t>& base = BaseColumn(table, column);
  auto fresh =
      std::make_shared<SortedIndex<int64_t>>(key, base.values(), *query_pool_);
  std::lock_guard<std::mutex> lk(runtime_mu_);
  ColumnRuntime& rt = Runtime(key);
  if (rt.sorted == nullptr) rt.sorted = fresh;
  return rt.sorted;
}

CrackConfig Database::QueryCrackConfig() {
  CrackConfig cfg;
  cfg.algo = CrackAlgo::kParallel;
  cfg.pool = query_pool_.get();
  cfg.parallel_threads = options_.user_threads;
  if (options_.mode == ExecMode::kStochastic) {
    cfg.stochastic = true;
    cfg.rng = &ThreadLocalQueryRng(options_.seed);
  }
  return cfg;
}

PositionRange Database::CrackedSelect(
    const std::string& table, const std::string& column, int64_t low,
    int64_t high, std::shared_ptr<CrackerColumn<int64_t>>* out) {
  auto cracker = EnsureCracker(table, column);
  if (holistic_ != nullptr) {
    holistic_->store().RecordQueryAccess(Key(table, column));
  }
  const PositionRange range = cracker->SelectRange(low, high,
                                                   QueryCrackConfig());
  if (holistic_ != nullptr) {
    holistic_->store().UpdateAfterRefinement(Key(table, column));
  }
  if (out != nullptr) *out = std::move(cracker);
  return range;
}

size_t Database::CountRange(const std::string& table,
                            const std::string& column, int64_t low,
                            int64_t high) {
  SlotLease lease(slot_monitor_, options_.user_threads);
  const uint64_t query_no =
      queries_executed_.fetch_add(1, std::memory_order_relaxed);
  switch (options_.mode) {
    case ExecMode::kScan: {
      const auto& base = BaseColumn(table, column);
      return ParallelScanCount(base.data(), base.size(), low, high,
                               *query_pool_, options_.user_threads);
    }
    case ExecMode::kOffline: {
      if (!offline_prepared_) PrepareOfflineIndexes();
      return EnsureSorted(table, column)->CountRange(low, high);
    }
    case ExecMode::kOnline: {
      if (query_no < options_.online_observation_window) {
        const auto& base = BaseColumn(table, column);
        return ParallelScanCount(base.data(), base.size(), low, high,
                                 *query_pool_, options_.user_threads);
      }
      return EnsureSorted(table, column)->CountRange(low, high);
    }
    case ExecMode::kAdaptive:
    case ExecMode::kStochastic:
    case ExecMode::kCCGI:
    case ExecMode::kHolistic: {
      return CrackedSelect(table, column, low, high, nullptr).size();
    }
  }
  return 0;
}

int64_t Database::SumRange(const std::string& table,
                           const std::string& column, int64_t low,
                           int64_t high) {
  SlotLease lease(slot_monitor_, options_.user_threads);
  switch (options_.mode) {
    case ExecMode::kScan:
    case ExecMode::kOnline: {
      // Online mode may have a sorted index already; reuse CountRange's
      // decision logic by checking the runtime map.
      if (options_.mode == ExecMode::kOnline) {
        std::shared_ptr<SortedIndex<int64_t>> sorted;
        {
          std::lock_guard<std::mutex> lk(runtime_mu_);
          auto it = runtime_.find(Key(table, column));
          if (it != runtime_.end()) sorted = it->second.sorted;
        }
        if (sorted != nullptr) {
          const PositionRange r = sorted->SelectRange(low, high);
          int64_t sum = 0;
          for (size_t i = r.begin; i < r.end; ++i) sum += sorted->ValueAt(i);
          return sum;
        }
      }
      const auto& base = BaseColumn(table, column);
      const int64_t* data = base.data();
      int64_t sum = 0;
      for (size_t i = 0; i < base.size(); ++i) {
        if (data[i] >= low && data[i] < high) sum += data[i];
      }
      return sum;
    }
    case ExecMode::kOffline: {
      if (!offline_prepared_) PrepareOfflineIndexes();
      auto sorted = EnsureSorted(table, column);
      const PositionRange r = sorted->SelectRange(low, high);
      int64_t sum = 0;
      for (size_t i = r.begin; i < r.end; ++i) sum += sorted->ValueAt(i);
      return sum;
    }
    default: {
      std::shared_ptr<CrackerColumn<int64_t>> cracker;
      const PositionRange r = CrackedSelect(table, column, low, high, &cracker);
      return cracker->SumRange(r);
    }
  }
}

PositionList Database::SelectRowIds(const std::string& table,
                                    const std::string& column, int64_t low,
                                    int64_t high) {
  SlotLease lease(slot_monitor_, options_.user_threads);
  switch (options_.mode) {
    case ExecMode::kScan:
    case ExecMode::kOnline: {
      const auto& base = BaseColumn(table, column);
      return ParallelScanSelect(base.data(), base.size(), low, high,
                                *query_pool_, options_.user_threads);
    }
    case ExecMode::kOffline: {
      if (!offline_prepared_) PrepareOfflineIndexes();
      auto sorted = EnsureSorted(table, column);
      return sorted->FetchRowIds(sorted->SelectRange(low, high));
    }
    default: {
      std::shared_ptr<CrackerColumn<int64_t>> cracker;
      const PositionRange r = CrackedSelect(table, column, low, high, &cracker);
      return cracker->FetchRowIds(r);
    }
  }
}

int64_t Database::ProjectSum(const std::string& table,
                             const std::string& where_column,
                             const std::string& project_column, int64_t low,
                             int64_t high) {
  const Column<int64_t>& projected = BaseColumn(table, project_column);
  // Cracked modes avoid materializing the position list: the project
  // operator reads rowids straight out of the cracker column under piece
  // read latches.
  switch (options_.mode) {
    case ExecMode::kAdaptive:
    case ExecMode::kStochastic:
    case ExecMode::kCCGI:
    case ExecMode::kHolistic: {
      SlotLease lease(slot_monitor_, options_.user_threads);
      std::shared_ptr<CrackerColumn<int64_t>> cracker;
      const PositionRange r =
          CrackedSelect(table, where_column, low, high, &cracker);
      int64_t sum = 0;
      cracker->ScanRange(r, [&](int64_t, RowId rid) {
        sum += projected[rid];
      });
      return sum;
    }
    default: {
      const PositionList rows = SelectRowIds(table, where_column, low, high);
      int64_t sum = 0;
      for (RowId rid : rows) sum += projected[rid];
      return sum;
    }
  }
}

RowId Database::Insert(const std::string& table, const std::string& column,
                       int64_t value) {
  if (options_.mode != ExecMode::kAdaptive &&
      options_.mode != ExecMode::kStochastic &&
      options_.mode != ExecMode::kCCGI &&
      options_.mode != ExecMode::kHolistic) {
    throw std::logic_error("updates require a cracking mode");
  }
  auto cracker = EnsureCracker(table, column);
  const RowId rid = next_insert_rowid_.fetch_add(1, std::memory_order_relaxed);
  cracker->pending().AddInsert(value, rid);
  return rid;
}

bool Database::Delete(const std::string& table, const std::string& column,
                      int64_t value) {
  auto cracker = EnsureCracker(table, column);
  // Resolve the rowid of one matching row: select the unit range (this is
  // itself an index-refining access) and take the first qualifying rowid.
  // A concurrent Ripple merge (holistic worker) may shift positions
  // between the select and the read, so verify the value and retry.
  for (int attempt = 0; attempt < 8; ++attempt) {
    const PositionRange r =
        cracker->SelectRange(value, value + 1, QueryCrackConfig());
    if (r.empty()) return false;
    bool found = false;
    RowId rid = 0;
    cracker->ScanRange({r.begin, r.begin + 1}, [&](int64_t v, RowId rr) {
      if (v == value) {
        rid = rr;
        found = true;
      }
    });
    if (found) {
      cracker->pending().AddDelete(value, rid);
      return true;
    }
  }
  return false;
}

void Database::PrepareOfflineIndexes() {
  offline_prepared_ = true;
  for (const auto& table_name : catalog_.TableNames()) {
    const Table& t = catalog_.GetTable(table_name);
    for (const auto& column_name : t.ColumnNames()) {
      EnsureSorted(table_name, column_name);
    }
  }
}

void Database::SeedPotentialIndex(const std::string& table,
                                  const std::string& column) {
  if (holistic_ == nullptr) {
    throw std::logic_error("potential indices require kHolistic mode");
  }
  const std::string key = Key(table, column);
  if (holistic_->store().Contains(key)) return;
  const Column<int64_t>& base = BaseColumn(table, column);
  auto fresh = std::make_shared<CrackerColumn<int64_t>>(key, base.values());
  std::shared_ptr<CrackerColumn<int64_t>> installed;
  {
    std::lock_guard<std::mutex> lk(runtime_mu_);
    ColumnRuntime& rt = Runtime(key);
    if (rt.cracker == nullptr) rt.cracker = fresh;
    installed = rt.cracker;
  }
  auto adapter = std::make_shared<CrackerAdaptiveIndex<int64_t>>(installed);
  std::vector<std::string> evicted;
  holistic_->store().Register(adapter, ConfigKind::kPotential, &evicted);
  if (!evicted.empty()) {
    std::lock_guard<std::mutex> lk(runtime_mu_);
    for (const auto& name : evicted) {
      auto it = runtime_.find(name);
      if (it != runtime_.end()) it->second.cracker.reset();
    }
  }
}

size_t Database::TotalIndexPieces() const {
  std::lock_guard<std::mutex> lk(runtime_mu_);
  size_t pieces = 0;
  for (const auto& [_, rt] : runtime_) {
    if (rt.cracker != nullptr) pieces += rt.cracker->NumPieces();
  }
  return pieces;
}

size_t Database::NumAdaptiveIndices() const {
  std::lock_guard<std::mutex> lk(runtime_mu_);
  size_t n = 0;
  for (const auto& [_, rt] : runtime_) n += (rt.cracker != nullptr) ? 1 : 0;
  return n;
}

}  // namespace holix
