#include "engine/database.h"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <tuple>

#include "engine/scalar_convert.h"

namespace holix {

namespace {

/// Rank image of an applied update value: the exact KeyFromScalar
/// conversion the executor performed, then ToRank. Only called for values
/// the executor already accepted.
template <typename T>
uint64_t AppliedRank(KeyScalar value) {
  T v{};
  KeyFromScalar<T>(value, &v);
  return KeyTraits<T>::ToRank(v);
}

/// Installs (or returns) a column's cracker for the restore path. Mirrors
/// the executors' EnsureCracker minus the mode hooks: saved pivots already
/// encode any pre-cracking, and holistic registration happens at the end
/// of FinishRestore.
template <typename T>
std::shared_ptr<CrackerColumn<T>> EnsureRestoredCracker(ColumnEntry& e) {
  auto& rt = e.runtime<T>();
  auto cracker = rt.cracker.load(std::memory_order_acquire);
  if (cracker == nullptr) {
    std::lock_guard<std::mutex> lk(e.build_mu);
    cracker = rt.cracker.load(std::memory_order_acquire);
    if (cracker == nullptr) {
      cracker = std::make_shared<CrackerColumn<T>>(e.key(), rt.base->values());
      rt.cracker.store(cracker, std::memory_order_release);
    }
  }
  return cracker;
}

StoreState StoreStateOf(ConfigKind kind) {
  switch (kind) {
    case ConfigKind::kActual:
      return StoreState::kActual;
    case ConfigKind::kPotential:
      return StoreState::kPotential;
    case ConfigKind::kOptimal:
      return StoreState::kOptimal;
  }
  return StoreState::kUnregistered;
}

}  // namespace

const char* ExecModeName(ExecMode m) {
  switch (m) {
    case ExecMode::kScan:
      return "scan";
    case ExecMode::kOffline:
      return "offline";
    case ExecMode::kOnline:
      return "online";
    case ExecMode::kAdaptive:
      return "adaptive";
    case ExecMode::kStochastic:
      return "stochastic";
    case ExecMode::kCCGI:
      return "ccgi";
    case ExecMode::kHolistic:
      return "holistic";
  }
  return "?";
}

Database::Database(DatabaseOptions options) : options_(options) {
  if (options_.total_cores == 0) {
    options_.total_cores = std::max<unsigned>(
        1, std::thread::hardware_concurrency());
  }
  options_.user_threads = std::max<size_t>(1, options_.user_threads);
  // The calling (client) thread counts as one context; the pool supplies
  // the rest of the query's thread budget.
  query_pool_ = std::make_unique<ThreadPool>(options_.user_threads - 1 == 0
                                                 ? 1
                                                 : options_.user_threads - 1);
  if (options_.mode == ExecMode::kHolistic) {
    std::unique_ptr<CpuMonitor> monitor;
    if (options_.use_proc_stat_monitor) {
      monitor = std::make_unique<ProcStatCpuMonitor>(
          options_.holistic.monitor_interval_seconds);
    } else {
      auto slot = std::make_unique<SlotCpuMonitor>(
          options_.total_cores, options_.holistic.monitor_interval_seconds);
      slot_monitor_ = slot.get();
      monitor = std::move(slot);
    }
    holistic_ =
        std::make_unique<HolisticEngine>(options_.holistic, std::move(monitor));
    holistic_->Start();
  }
  engine_ctx_.options = &options_;
  engine_ctx_.registry = &registry_;
  engine_ctx_.query_pool = query_pool_.get();
  engine_ctx_.holistic = holistic_.get();
  engine_ctx_.slot_monitor = slot_monitor_;
  engine_ctx_.next_rowid = &next_insert_rowid_;
  executor_ = MakeQueryExecutor(options_.mode, engine_ctx_);
}

Database::~Database() {
  if (holistic_ != nullptr) holistic_->Stop();
}

void Database::RaiseRowIdFloor(uint64_t rows) {
  uint64_t expected = next_insert_rowid_.load(std::memory_order_relaxed);
  while (expected < rows && !next_insert_rowid_.compare_exchange_weak(
                                expected, rows, std::memory_order_relaxed)) {
  }
}

void Database::DropTable(const std::string& table) {
  const auto dropped = registry_.DropTable(table);
  for (const auto& entry : dropped) {
    if (holistic_ != nullptr) holistic_->store().Remove(entry->key());
    entry->ResetIndexRuntime();
  }
  catalog_.DropTable(table);
}

Session Database::OpenSession(SessionOptions options) {
  const uint64_t id =
      next_session_id_.fetch_add(1, std::memory_order_relaxed);
  // Distinct deterministic per-session seed unless the caller pins one.
  const uint64_t seed = options.seed != 0
                            ? options.seed
                            : options_.seed ^ (0x9E3779B97F4A7C15ULL * (id + 1));
  return Session(this, id, seed);
}

// --- Declarative core -------------------------------------------------------

QueryResult Database::Execute(const QuerySpec& spec,
                              const QueryContext& qctx) {
  SlotLease lease(slot_monitor_, options_.user_threads);
  return executor_->Execute(spec, qctx);
}

// --- Scalar shims (one-predicate QuerySpecs) --------------------------------

size_t Database::CountRangeScalar(const ColumnHandle& column, KeyScalar low,
                                  KeyScalar high, const QueryContext& qctx) {
  return static_cast<size_t>(
      Execute(QuerySpec::Single(column, low, high,
                                {ResultRequest::kCount, {}}),
              qctx)
          .values[0]
          .i);
}

std::vector<uint64_t> Database::CountRangeBatchScalar(
    const ColumnHandle& column,
    const std::vector<std::pair<KeyScalar, KeyScalar>>& ranges,
    const QueryContext& qctx) {
  SlotLease lease(slot_monitor_, options_.user_threads);
  return executor_->CountRangeBatch(column, ranges, qctx);
}

KeyScalar Database::SumRangeScalar(const ColumnHandle& column, KeyScalar low,
                                   KeyScalar high, const QueryContext& qctx) {
  return Execute(QuerySpec::Single(column, low, high,
                                   {ResultRequest::kSum, column}),
                 qctx)
      .values[0];
}

PositionList Database::SelectRowIdsScalar(const ColumnHandle& column,
                                          KeyScalar low, KeyScalar high,
                                          const QueryContext& qctx) {
  return std::move(Execute(QuerySpec::Single(column, low, high,
                                             {ResultRequest::kRowIds, {}}),
                           qctx)
                       .rowids);
}

KeyScalar Database::ProjectSumScalar(const ColumnHandle& where_column,
                                     const ColumnHandle& project_column,
                                     KeyScalar low, KeyScalar high,
                                     const QueryContext& qctx) {
  return Execute(QuerySpec::Single(where_column, low, high,
                                   {ResultRequest::kProjectSum,
                                    project_column}),
                 qctx)
      .values[0];
}

RowId Database::InsertScalar(const ColumnHandle& column, KeyScalar value,
                             const QueryContext& qctx) {
  // Shared barrier around apply+log: a checkpoint's state cut (unique
  // barrier) can never observe an applied-but-unlogged update.
  std::shared_lock<std::shared_mutex> barrier(update_barrier_);
  const RowId rid = executor_->Insert(column, value, qctx);
  if (DurabilityHook* hook = durability_.load(std::memory_order_acquire)) {
    DispatchIndexableType(column.type(), [&](auto tag) {
      using T = typename decltype(tag)::type;
      hook->LogUpdate(WalOp::kInsert, column.entry()->table(),
                      column.entry()->column(), column.type(),
                      AppliedRank<T>(value), rid);
    });
  }
  return rid;
}

bool Database::DeleteScalar(const ColumnHandle& column, KeyScalar value,
                            const QueryContext& qctx) {
  std::shared_lock<std::shared_mutex> barrier(update_barrier_);
  RowId rid = 0;
  const bool found = executor_->Delete(column, value, qctx, &rid);
  if (found) {
    if (DurabilityHook* hook = durability_.load(std::memory_order_acquire)) {
      DispatchIndexableType(column.type(), [&](auto tag) {
        using T = typename decltype(tag)::type;
        hook->LogUpdate(WalOp::kDelete, column.entry()->table(),
                        column.entry()->column(), column.type(),
                        AppliedRank<T>(value), rid);
      });
    }
  }
  return found;
}

// --- Durability -------------------------------------------------------------

void Database::SetDurabilityHook(DurabilityHook* hook) {
  // Unique barrier: no update is mid-apply while the hook flips, so the
  // logged stream has no half-covered prefix.
  std::unique_lock<std::shared_mutex> barrier(update_barrier_);
  durability_.store(hook, std::memory_order_release);
}

uint64_t Database::Checkpoint() {
  DurabilityHook* hook = durability_.load(std::memory_order_acquire);
  if (hook == nullptr) {
    throw std::logic_error("Checkpoint requires an attached durability hook");
  }
  return hook->Checkpoint();
}

DurableDatabaseState Database::ExportDurableState(
    const std::function<void()>& under_barrier) {
  std::unique_lock<std::shared_mutex> barrier(update_barrier_);
  DurableDatabaseState st;
  st.next_rowid = next_insert_rowid_.load(std::memory_order_relaxed);
  for (const std::string& name : catalog_.TableNames()) {
    const Table& t = catalog_.GetTable(name);
    DurableTableState ts;
    ts.name = name;
    ts.base_rows = t.num_rows();
    ts.columns = t.ColumnNames();
    st.tables.push_back(std::move(ts));
  }
  std::sort(st.tables.begin(), st.tables.end(),
            [](const DurableTableState& a, const DurableTableState& b) {
              return a.name < b.name;
            });
  registry_.ForEach([&](ColumnEntry& e) {
    if (e.dropped.load(std::memory_order_acquire)) return;
    DispatchIndexableType(e.type(), [&](auto tag) {
      using T = typename decltype(tag)::type;
      using KT = KeyTraits<T>;
      auto& rt = e.runtime<T>();
      DurableColumnState cs;
      cs.table = e.table();
      cs.column = e.column();
      cs.type = e.type();
      const std::vector<T>& base = rt.base->values();
      cs.base_ranks.reserve(base.size());
      for (const T& v : base) cs.base_ranks.push_back(KT::ToRank(v));
      if (auto cracker = rt.cracker.load(std::memory_order_acquire)) {
        // Drain the queues into the cracker first, so the appended /
        // deleted-base registries carry the column's full update history
        // and recovery has nothing queue-shaped to reconstruct.
        cracker->MergePendingAtLeast(KT::Lowest());
        cs.has_cracker = true;
        for (const auto& [rid, v] : cracker->pending().AppendedEntries()) {
          cs.appended.emplace_back(rid, KT::ToRank(v));
        }
        for (const auto& [rid, v] : cracker->pending().DeletedBaseEntries()) {
          cs.deleted_base.emplace_back(rid, KT::ToRank(v));
        }
        for (const auto& [v, pos] : cracker->ExportBoundaries()) {
          (void)pos;  // re-derived on restore from the multiset
          cs.pivot_ranks.push_back(KT::ToRank(v));
        }
        const CrackStats& s = cracker->stats();
        cs.stats[0] = s.accesses.load(std::memory_order_relaxed);
        cs.stats[1] = s.exact_hits.load(std::memory_order_relaxed);
        cs.stats[2] = s.query_cracks.load(std::memory_order_relaxed);
        cs.stats[3] = s.worker_cracks.load(std::memory_order_relaxed);
        cs.stats[4] = s.worker_skips.load(std::memory_order_relaxed);
        cs.stats[5] = s.merged_inserts.load(std::memory_order_relaxed);
        cs.stats[6] = s.merged_deletes.load(std::memory_order_relaxed);
      }
      cs.store_state =
          static_cast<uint8_t>(e.store_state.load(std::memory_order_acquire));
      st.columns.push_back(std::move(cs));
    });
  });
  std::sort(st.columns.begin(), st.columns.end(),
            [](const DurableColumnState& a, const DurableColumnState& b) {
              return std::tie(a.table, a.column) <
                     std::tie(b.table, b.column);
            });
  if (under_barrier) under_barrier();
  return st;
}

void Database::BeginRestore(const DurableDatabaseState& state) {
  if (!catalog_.TableNames().empty()) {
    throw std::logic_error("BeginRestore requires an empty database");
  }
  // Base columns, in each table's storage order.
  for (const DurableTableState& ts : state.tables) {
    for (const std::string& cname : ts.columns) {
      const DurableColumnState* cs = nullptr;
      for (const DurableColumnState& c : state.columns) {
        if (c.table == ts.name && c.column == cname) {
          cs = &c;
          break;
        }
      }
      if (cs == nullptr) {
        throw std::runtime_error("snapshot misses column " + ts.name + "." +
                                 cname);
      }
      DispatchIndexableType(cs->type, [&](auto tag) {
        using T = typename decltype(tag)::type;
        std::vector<T> vals;
        vals.reserve(cs->base_ranks.size());
        for (uint64_t r : cs->base_ranks) {
          vals.push_back(KeyTraits<T>::FromRank(r));
        }
        LoadColumn<T>(cs->table, cs->column, std::move(vals));
      });
    }
  }
  // The checkpointed update history re-enters through the pending queues;
  // FinishRestore merges it after WAL replay has stacked the tail on top.
  for (const DurableColumnState& cs : state.columns) {
    if (!cs.has_cracker && cs.appended.empty() && cs.deleted_base.empty()) {
      continue;
    }
    ColumnHandle h = registry_.Resolve(cs.table, cs.column);
    DispatchIndexableType(cs.type, [&](auto tag) {
      using T = typename decltype(tag)::type;
      auto cracker = EnsureRestoredCracker<T>(*h.entry());
      for (const auto& [rid, rank] : cs.appended) {
        cracker->pending().AddInsert(KeyTraits<T>::FromRank(rank), rid);
      }
      for (const auto& [rid, rank] : cs.deleted_base) {
        cracker->pending().AddDelete(KeyTraits<T>::FromRank(rank), rid);
      }
    });
  }
  RaiseRowIdFloor(state.next_rowid);
}

void Database::ApplyLoggedInsert(const std::string& table,
                                 const std::string& column, ValueType type,
                                 uint64_t rank, RowId rid) {
  ApplyLoggedUpdate(WalOp::kInsert, table, column, type, rank, rid);
}

void Database::ApplyLoggedDelete(const std::string& table,
                                 const std::string& column, ValueType type,
                                 uint64_t rank, RowId rid) {
  ApplyLoggedUpdate(WalOp::kDelete, table, column, type, rank, rid);
}

void Database::ApplyLoggedUpdate(WalOp op, const std::string& table,
                                 const std::string& column, ValueType type,
                                 uint64_t rank, RowId rid) {
  ColumnHandle h = registry_.Resolve(table, column);
  ColumnEntry& e = *h.entry();
  if (e.type() != type) {
    throw std::runtime_error("wal record type mismatch for " + e.key());
  }
  DispatchIndexableType(type, [&](auto tag) {
    using T = typename decltype(tag)::type;
    auto cracker = EnsureRestoredCracker<T>(e);
    const T v = KeyTraits<T>::FromRank(rank);
    if (op == WalOp::kInsert) {
      cracker->pending().AddInsert(v, rid);
    } else {
      cracker->pending().AddDelete(v, rid);
    }
  });
  if (op == WalOp::kInsert) RaiseRowIdFloor(rid + 1);
}

void Database::FinishRestore(const DurableDatabaseState& state) {
  for (const DurableColumnState& cs : state.columns) {
    ColumnHandle h = registry_.Resolve(cs.table, cs.column);
    ColumnEntry& e = *h.entry();
    DispatchIndexableType(cs.type, [&](auto tag) {
      using T = typename decltype(tag)::type;
      using KT = KeyTraits<T>;
      auto cracker = e.runtime<T>().cracker.load(std::memory_order_acquire);
      if (cracker == nullptr) return;
      cracker->MergePendingAtLeast(KT::Lowest());
      // Re-crack at every saved pivot. Boundary positions come out
      // bit-identical regardless of kernel — pos(w) = #{x : x < w} over
      // the restored multiset — so the default config suffices.
      const CrackConfig cfg{};
      for (uint64_t rank : cs.pivot_ranks) {
        cracker->CrackAtBlocking(KT::FromRank(rank), cfg);
      }
      // Life counters restore LAST: the re-cracks above ticked them.
      CrackStats& s = cracker->stats();
      s.accesses.store(cs.stats[0], std::memory_order_relaxed);
      s.exact_hits.store(cs.stats[1], std::memory_order_relaxed);
      s.query_cracks.store(cs.stats[2], std::memory_order_relaxed);
      s.worker_cracks.store(cs.stats[3], std::memory_order_relaxed);
      s.worker_skips.store(cs.stats[4], std::memory_order_relaxed);
      s.merged_inserts.store(cs.stats[5], std::memory_order_relaxed);
      s.merged_deletes.store(cs.stats[6], std::memory_order_relaxed);
      if (!cracker->CheckInvariants()) {
        throw std::runtime_error("restored cracker violates invariants: " +
                                 e.key());
      }
      // Holistic store membership — registration goes last so no worker
      // can refine the column before its pivots are back.
      if (holistic_ != nullptr && cs.store_state != 0) {
        auto adapter = std::make_shared<CrackerAdaptiveIndex<T>>(cracker);
        e.adapter.store(adapter, std::memory_order_release);
        const StoreState saved = static_cast<StoreState>(cs.store_state);
        const ConfigKind kind = saved == StoreState::kPotential
                                    ? ConfigKind::kPotential
                                    : ConfigKind::kActual;
        std::vector<std::string> evicted;
        holistic_->store().Register(adapter, kind, &evicted);
        if (saved == StoreState::kOptimal) {
          // A converged index retires straight back into C_optimal.
          holistic_->store().UpdateAfterRefinement(e.key());
        }
        for (const std::string& victim : evicted) {
          if (victim == e.key()) continue;
          if (ColumnHandle vh = registry_.FindByKey(victim); vh.entry()) {
            vh.entry()->ResetIndexRuntime();
          }
        }
        const auto now = holistic_->store().TryKindOf(e.key());
        e.store_state.store(
            now.has_value() ? StoreStateOf(*now) : StoreState::kUnregistered,
            std::memory_order_release);
      }
    });
  }
}

// --- int64 facade -----------------------------------------------------------

size_t Database::CountRange(const ColumnHandle& column, int64_t low,
                            int64_t high, const QueryContext& qctx) {
  return CountRangeScalar(column, KeyScalar::I64(low), KeyScalar::I64(high),
                          qctx);
}

int64_t Database::SumRange(const ColumnHandle& column, int64_t low,
                           int64_t high, const QueryContext& qctx) {
  return SumRangeScalar(column, KeyScalar::I64(low), KeyScalar::I64(high),
                        qctx)
      .AsI64Saturating();
}

PositionList Database::SelectRowIds(const ColumnHandle& column, int64_t low,
                                    int64_t high, const QueryContext& qctx) {
  return SelectRowIdsScalar(column, KeyScalar::I64(low), KeyScalar::I64(high),
                            qctx);
}

int64_t Database::ProjectSum(const ColumnHandle& where_column,
                             const ColumnHandle& project_column, int64_t low,
                             int64_t high, const QueryContext& qctx) {
  return ProjectSumScalar(where_column, project_column, KeyScalar::I64(low),
                          KeyScalar::I64(high), qctx)
      .AsI64Saturating();
}

RowId Database::Insert(const ColumnHandle& column, int64_t value,
                       const QueryContext& qctx) {
  return InsertScalar(column, KeyScalar::I64(value), qctx);
}

bool Database::Delete(const ColumnHandle& column, int64_t value,
                      const QueryContext& qctx) {
  return DeleteScalar(column, KeyScalar::I64(value), qctx);
}

// --- double facade ----------------------------------------------------------

size_t Database::CountRangeF64(const ColumnHandle& column, double low,
                               double high, const QueryContext& qctx) {
  return CountRangeScalar(column, KeyScalar::F64(low), KeyScalar::F64(high),
                          qctx);
}

double Database::SumRangeF64(const ColumnHandle& column, double low,
                             double high, const QueryContext& qctx) {
  return SumRangeScalar(column, KeyScalar::F64(low), KeyScalar::F64(high),
                        qctx)
      .AsF64();
}

PositionList Database::SelectRowIdsF64(const ColumnHandle& column, double low,
                                       double high,
                                       const QueryContext& qctx) {
  return SelectRowIdsScalar(column, KeyScalar::F64(low), KeyScalar::F64(high),
                            qctx);
}

double Database::ProjectSumF64(const ColumnHandle& where_column,
                               const ColumnHandle& project_column, double low,
                               double high, const QueryContext& qctx) {
  return ProjectSumScalar(where_column, project_column, KeyScalar::F64(low),
                          KeyScalar::F64(high), qctx)
      .AsF64();
}

RowId Database::InsertF64(const ColumnHandle& column, double value,
                          const QueryContext& qctx) {
  return InsertScalar(column, KeyScalar::F64(value), qctx);
}

bool Database::DeleteF64(const ColumnHandle& column, double value,
                         const QueryContext& qctx) {
  return DeleteScalar(column, KeyScalar::F64(value), qctx);
}

size_t Database::TotalIndexPieces() const {
  size_t pieces = 0;
  registry_.ForEach([&](ColumnEntry& e) {
    DispatchIndexableType(e.type(), [&](auto tag) {
      using T = typename decltype(tag)::type;
      if (auto c = e.runtime<T>().cracker.load(std::memory_order_acquire)) {
        pieces += c->NumPieces();
      }
    });
  });
  return pieces;
}

obs::MetricsSnapshot Database::MetricsSnapshot() const {
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetGauge("holix_index_pieces")
      .Set(static_cast<double>(TotalIndexPieces()));
  reg.GetGauge("holix_adaptive_indices")
      .Set(static_cast<double>(NumAdaptiveIndices()));
  if (holistic_ != nullptr) {
    const StatsStore& store = holistic_->store();
    reg.GetGauge("holix_holistic_actual_indices")
        .Set(static_cast<double>(store.Count(ConfigKind::kActual)));
    reg.GetGauge("holix_holistic_potential_indices")
        .Set(static_cast<double>(store.Count(ConfigKind::kPotential)));
    reg.GetGauge("holix_holistic_optimal_indices")
        .Set(static_cast<double>(store.Count(ConfigKind::kOptimal)));
    reg.GetGauge("holix_holistic_store_bytes")
        .Set(static_cast<double>(store.TotalBytes()));
    reg.GetGauge("holix_holistic_budget_bytes")
        .Set(static_cast<double>(store.budget_bytes()));
    // Equation-1 distance remaining, one gauge per registered column; a
    // retired index reads 0, so the family shows the burn-down directly.
    for (const ConfigKind kind :
         {ConfigKind::kActual, ConfigKind::kPotential, ConfigKind::kOptimal}) {
      for (const std::string& name : store.Names(kind)) {
        if (auto index = store.Find(name)) {
          reg.GetGauge("holix_holistic_distance_bytes{column=\"" + name +
                       "\"}")
              .Set(static_cast<double>(index->DistanceToOptimal()));
        }
      }
    }
  }
  return reg.Snapshot();
}

size_t Database::NumAdaptiveIndices() const {
  size_t n = 0;
  registry_.ForEach([&](ColumnEntry& e) {
    DispatchIndexableType(e.type(), [&](auto tag) {
      using T = typename decltype(tag)::type;
      if (e.runtime<T>().cracker.load(std::memory_order_acquire) != nullptr) {
        ++n;
      }
    });
  });
  return n;
}

ThreadPool& Database::client_pool(size_t min_threads) {
  std::lock_guard<std::mutex> lk(client_pool_mu_);
  const size_t want = std::max<size_t>(
      min_threads, std::max<size_t>(2, options_.total_cores));
  if (client_pool_ == nullptr) {
    client_pool_ = std::make_unique<ThreadPool>(want);
  } else if (client_pool_->size() < min_threads) {
    // Grow by retiring the old pool, never destroying it: references and
    // in-flight submissions on the old pool stay valid (its queue drains
    // on its own threads); only new callers see the bigger pool.
    retired_client_pools_.push_back(std::move(client_pool_));
    client_pool_ = std::make_unique<ThreadPool>(want);
  }
  return *client_pool_;
}

}  // namespace holix
