#include "engine/database.h"

#include <algorithm>
#include <thread>

namespace holix {

const char* ExecModeName(ExecMode m) {
  switch (m) {
    case ExecMode::kScan:
      return "scan";
    case ExecMode::kOffline:
      return "offline";
    case ExecMode::kOnline:
      return "online";
    case ExecMode::kAdaptive:
      return "adaptive";
    case ExecMode::kStochastic:
      return "stochastic";
    case ExecMode::kCCGI:
      return "ccgi";
    case ExecMode::kHolistic:
      return "holistic";
  }
  return "?";
}

Database::Database(DatabaseOptions options) : options_(options) {
  if (options_.total_cores == 0) {
    options_.total_cores = std::max<unsigned>(
        1, std::thread::hardware_concurrency());
  }
  options_.user_threads = std::max<size_t>(1, options_.user_threads);
  // The calling (client) thread counts as one context; the pool supplies
  // the rest of the query's thread budget.
  query_pool_ = std::make_unique<ThreadPool>(options_.user_threads - 1 == 0
                                                 ? 1
                                                 : options_.user_threads - 1);
  if (options_.mode == ExecMode::kHolistic) {
    std::unique_ptr<CpuMonitor> monitor;
    if (options_.use_proc_stat_monitor) {
      monitor = std::make_unique<ProcStatCpuMonitor>(
          options_.holistic.monitor_interval_seconds);
    } else {
      auto slot = std::make_unique<SlotCpuMonitor>(
          options_.total_cores, options_.holistic.monitor_interval_seconds);
      slot_monitor_ = slot.get();
      monitor = std::move(slot);
    }
    holistic_ =
        std::make_unique<HolisticEngine>(options_.holistic, std::move(monitor));
    holistic_->Start();
  }
  engine_ctx_.options = &options_;
  engine_ctx_.registry = &registry_;
  engine_ctx_.query_pool = query_pool_.get();
  engine_ctx_.holistic = holistic_.get();
  engine_ctx_.slot_monitor = slot_monitor_;
  engine_ctx_.next_rowid = &next_insert_rowid_;
  executor_ = MakeQueryExecutor(options_.mode, engine_ctx_);
}

Database::~Database() {
  if (holistic_ != nullptr) holistic_->Stop();
}

void Database::RaiseRowIdFloor(uint64_t rows) {
  uint64_t expected = next_insert_rowid_.load(std::memory_order_relaxed);
  while (expected < rows && !next_insert_rowid_.compare_exchange_weak(
                                expected, rows, std::memory_order_relaxed)) {
  }
}

void Database::DropTable(const std::string& table) {
  const auto dropped = registry_.DropTable(table);
  for (const auto& entry : dropped) {
    if (holistic_ != nullptr) holistic_->store().Remove(entry->key());
    entry->ResetIndexRuntime();
  }
  catalog_.DropTable(table);
}

Session Database::OpenSession(SessionOptions options) {
  const uint64_t id =
      next_session_id_.fetch_add(1, std::memory_order_relaxed);
  // Distinct deterministic per-session seed unless the caller pins one.
  const uint64_t seed = options.seed != 0
                            ? options.seed
                            : options_.seed ^ (0x9E3779B97F4A7C15ULL * (id + 1));
  return Session(this, id, seed);
}

// --- Declarative core -------------------------------------------------------

QueryResult Database::Execute(const QuerySpec& spec,
                              const QueryContext& qctx) {
  SlotLease lease(slot_monitor_, options_.user_threads);
  return executor_->Execute(spec, qctx);
}

// --- Scalar shims (one-predicate QuerySpecs) --------------------------------

size_t Database::CountRangeScalar(const ColumnHandle& column, KeyScalar low,
                                  KeyScalar high, const QueryContext& qctx) {
  return static_cast<size_t>(
      Execute(QuerySpec::Single(column, low, high,
                                {ResultRequest::kCount, {}}),
              qctx)
          .values[0]
          .i);
}

std::vector<uint64_t> Database::CountRangeBatchScalar(
    const ColumnHandle& column,
    const std::vector<std::pair<KeyScalar, KeyScalar>>& ranges,
    const QueryContext& qctx) {
  SlotLease lease(slot_monitor_, options_.user_threads);
  return executor_->CountRangeBatch(column, ranges, qctx);
}

KeyScalar Database::SumRangeScalar(const ColumnHandle& column, KeyScalar low,
                                   KeyScalar high, const QueryContext& qctx) {
  return Execute(QuerySpec::Single(column, low, high,
                                   {ResultRequest::kSum, column}),
                 qctx)
      .values[0];
}

PositionList Database::SelectRowIdsScalar(const ColumnHandle& column,
                                          KeyScalar low, KeyScalar high,
                                          const QueryContext& qctx) {
  return std::move(Execute(QuerySpec::Single(column, low, high,
                                             {ResultRequest::kRowIds, {}}),
                           qctx)
                       .rowids);
}

KeyScalar Database::ProjectSumScalar(const ColumnHandle& where_column,
                                     const ColumnHandle& project_column,
                                     KeyScalar low, KeyScalar high,
                                     const QueryContext& qctx) {
  return Execute(QuerySpec::Single(where_column, low, high,
                                   {ResultRequest::kProjectSum,
                                    project_column}),
                 qctx)
      .values[0];
}

RowId Database::InsertScalar(const ColumnHandle& column, KeyScalar value,
                             const QueryContext& qctx) {
  return executor_->Insert(column, value, qctx);
}

bool Database::DeleteScalar(const ColumnHandle& column, KeyScalar value,
                            const QueryContext& qctx) {
  return executor_->Delete(column, value, qctx);
}

// --- int64 facade -----------------------------------------------------------

size_t Database::CountRange(const ColumnHandle& column, int64_t low,
                            int64_t high, const QueryContext& qctx) {
  return CountRangeScalar(column, KeyScalar::I64(low), KeyScalar::I64(high),
                          qctx);
}

int64_t Database::SumRange(const ColumnHandle& column, int64_t low,
                           int64_t high, const QueryContext& qctx) {
  return SumRangeScalar(column, KeyScalar::I64(low), KeyScalar::I64(high),
                        qctx)
      .AsI64Saturating();
}

PositionList Database::SelectRowIds(const ColumnHandle& column, int64_t low,
                                    int64_t high, const QueryContext& qctx) {
  return SelectRowIdsScalar(column, KeyScalar::I64(low), KeyScalar::I64(high),
                            qctx);
}

int64_t Database::ProjectSum(const ColumnHandle& where_column,
                             const ColumnHandle& project_column, int64_t low,
                             int64_t high, const QueryContext& qctx) {
  return ProjectSumScalar(where_column, project_column, KeyScalar::I64(low),
                          KeyScalar::I64(high), qctx)
      .AsI64Saturating();
}

RowId Database::Insert(const ColumnHandle& column, int64_t value,
                       const QueryContext& qctx) {
  return InsertScalar(column, KeyScalar::I64(value), qctx);
}

bool Database::Delete(const ColumnHandle& column, int64_t value,
                      const QueryContext& qctx) {
  return DeleteScalar(column, KeyScalar::I64(value), qctx);
}

// --- double facade ----------------------------------------------------------

size_t Database::CountRangeF64(const ColumnHandle& column, double low,
                               double high, const QueryContext& qctx) {
  return CountRangeScalar(column, KeyScalar::F64(low), KeyScalar::F64(high),
                          qctx);
}

double Database::SumRangeF64(const ColumnHandle& column, double low,
                             double high, const QueryContext& qctx) {
  return SumRangeScalar(column, KeyScalar::F64(low), KeyScalar::F64(high),
                        qctx)
      .AsF64();
}

PositionList Database::SelectRowIdsF64(const ColumnHandle& column, double low,
                                       double high,
                                       const QueryContext& qctx) {
  return SelectRowIdsScalar(column, KeyScalar::F64(low), KeyScalar::F64(high),
                            qctx);
}

double Database::ProjectSumF64(const ColumnHandle& where_column,
                               const ColumnHandle& project_column, double low,
                               double high, const QueryContext& qctx) {
  return ProjectSumScalar(where_column, project_column, KeyScalar::F64(low),
                          KeyScalar::F64(high), qctx)
      .AsF64();
}

RowId Database::InsertF64(const ColumnHandle& column, double value,
                          const QueryContext& qctx) {
  return InsertScalar(column, KeyScalar::F64(value), qctx);
}

bool Database::DeleteF64(const ColumnHandle& column, double value,
                         const QueryContext& qctx) {
  return DeleteScalar(column, KeyScalar::F64(value), qctx);
}

size_t Database::TotalIndexPieces() const {
  size_t pieces = 0;
  registry_.ForEach([&](ColumnEntry& e) {
    DispatchIndexableType(e.type(), [&](auto tag) {
      using T = typename decltype(tag)::type;
      if (auto c = e.runtime<T>().cracker.load(std::memory_order_acquire)) {
        pieces += c->NumPieces();
      }
    });
  });
  return pieces;
}

obs::MetricsSnapshot Database::MetricsSnapshot() const {
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetGauge("holix_index_pieces")
      .Set(static_cast<double>(TotalIndexPieces()));
  reg.GetGauge("holix_adaptive_indices")
      .Set(static_cast<double>(NumAdaptiveIndices()));
  if (holistic_ != nullptr) {
    const StatsStore& store = holistic_->store();
    reg.GetGauge("holix_holistic_actual_indices")
        .Set(static_cast<double>(store.Count(ConfigKind::kActual)));
    reg.GetGauge("holix_holistic_potential_indices")
        .Set(static_cast<double>(store.Count(ConfigKind::kPotential)));
    reg.GetGauge("holix_holistic_optimal_indices")
        .Set(static_cast<double>(store.Count(ConfigKind::kOptimal)));
    reg.GetGauge("holix_holistic_store_bytes")
        .Set(static_cast<double>(store.TotalBytes()));
    reg.GetGauge("holix_holistic_budget_bytes")
        .Set(static_cast<double>(store.budget_bytes()));
    // Equation-1 distance remaining, one gauge per registered column; a
    // retired index reads 0, so the family shows the burn-down directly.
    for (const ConfigKind kind :
         {ConfigKind::kActual, ConfigKind::kPotential, ConfigKind::kOptimal}) {
      for (const std::string& name : store.Names(kind)) {
        if (auto index = store.Find(name)) {
          reg.GetGauge("holix_holistic_distance_bytes{column=\"" + name +
                       "\"}")
              .Set(static_cast<double>(index->DistanceToOptimal()));
        }
      }
    }
  }
  return reg.Snapshot();
}

size_t Database::NumAdaptiveIndices() const {
  size_t n = 0;
  registry_.ForEach([&](ColumnEntry& e) {
    DispatchIndexableType(e.type(), [&](auto tag) {
      using T = typename decltype(tag)::type;
      if (e.runtime<T>().cracker.load(std::memory_order_acquire) != nullptr) {
        ++n;
      }
    });
  });
  return n;
}

ThreadPool& Database::client_pool(size_t min_threads) {
  std::lock_guard<std::mutex> lk(client_pool_mu_);
  const size_t want = std::max<size_t>(
      min_threads, std::max<size_t>(2, options_.total_cores));
  if (client_pool_ == nullptr) {
    client_pool_ = std::make_unique<ThreadPool>(want);
  } else if (client_pool_->size() < min_threads) {
    // Grow by retiring the old pool, never destroying it: references and
    // in-flight submissions on the old pool stay valid (its queue drains
    // on its own threads); only new callers see the bigger pool.
    retired_client_pools_.push_back(std::move(client_pool_));
    client_pool_ = std::make_unique<ThreadPool>(want);
  }
  return *client_pool_;
}

}  // namespace holix
