/// \file database.h
/// \brief The engine facade: a main-memory column-store with pluggable
/// indexing modes, reproducing every system compared in §5.
///
/// Execution modes:
///  * kScan       — parallel full scans (MonetDB's plain select).
///  * kOffline    — all columns pre-sorted; cost charged to the 1st query.
///  * kOnline     — scans during an observation window, then sorts the
///                  accessed columns (COLT-style, §2).
///  * kAdaptive   — parallel vectorized database cracking, PVDC [44].
///  * kStochastic — parallel vectorized stochastic cracking, PVSDC [21,44].
///  * kCCGI       — modified parallel chunked coarse-granular index [8].
///  * kHolistic   — PVDC for user queries + the always-on holistic engine
///                  refining indices on idle hardware contexts (§4).
///
/// The facade works on int64 attributes (the paper's workloads are integer
/// columns); the TPC-H module drives cracker columns with payloads
/// directly.

#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "baselines/full_scan.h"
#include "baselines/sorted_index.h"
#include "cracking/cracker_column.h"
#include "cracking/pre_crack.h"
#include "holistic/holistic_engine.h"
#include "storage/catalog.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace holix {

/// Indexing/execution mode of a Database instance.
enum class ExecMode : uint8_t {
  kScan,
  kOffline,
  kOnline,
  kAdaptive,
  kStochastic,
  kCCGI,
  kHolistic,
};

/// Printable name of an execution mode.
const char* ExecModeName(ExecMode m);

/// Construction-time options of a Database.
struct DatabaseOptions {
  /// Indexing approach used by select operators.
  ExecMode mode = ExecMode::kAdaptive;

  /// Hardware contexts assigned to each user query (the "uX" in the
  /// paper's uXwYxZ labels).
  size_t user_threads = 1;

  /// Hardware contexts of the whole machine (contexts not used by queries
  /// are what holistic indexing may exploit).
  size_t total_cores = 0;  ///< 0 = hardware_concurrency().

  /// kOnline: queries answered by scans before the sorting step.
  size_t online_observation_window = 100;

  /// kCCGI: number of coarse chunks (0 = user_threads).
  size_t ccgi_chunks = 0;

  /// kHolistic: engine knobs (workers, x, strategy, budget, ...).
  HolisticConfig holistic;

  /// kHolistic: use kernel statistics (/proc/stat) instead of the
  /// deterministic slot monitor.
  bool use_proc_stat_monitor = false;

  /// Seed for stochastic cracking pivots.
  uint64_t seed = 42;
};

/// A main-memory column-store database with self-organizing indexing.
class Database {
 public:
  explicit Database(DatabaseOptions options);
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Schema and base data.
  Catalog& catalog() { return catalog_; }

  /// Creates table \p table (if needed) and adds an int64 column.
  void LoadColumn(const std::string& table, const std::string& column,
                  std::vector<int64_t> data);

  /// select count(*) from table where low <= column < high.
  /// Cracks / sorts / scans according to the configured mode.
  size_t CountRange(const std::string& table, const std::string& column,
                    int64_t low, int64_t high);

  /// select sum(column) ... : forces the engine to touch qualifying rows.
  int64_t SumRange(const std::string& table, const std::string& column,
                   int64_t low, int64_t high);

  /// Materializes qualifying rowids (tuple-reconstruction input).
  PositionList SelectRowIds(const std::string& table,
                            const std::string& column, int64_t low,
                            int64_t high);

  /// The paper's §3.1 query shape — `select B from R where lo <= A < hi` —
  /// reduced to a checksum: selects on \p where_column, then projects
  /// \p project_column positionally through the qualifying rowids and
  /// returns its sum. Exercises late tuple reconstruction.
  int64_t ProjectSum(const std::string& table,
                     const std::string& where_column,
                     const std::string& project_column, int64_t low,
                     int64_t high);

  /// Inserts a value into a cracked attribute (pending-insert queue, merged
  /// on demand; §5.7). Requires a cracking mode. \return assigned rowid.
  RowId Insert(const std::string& table, const std::string& column,
               int64_t value);

  /// Deletes one row holding \p value (pending-delete queue). \return true
  /// when a matching row was found.
  bool Delete(const std::string& table, const std::string& column,
              int64_t value);

  /// Sorts every loaded column now (offline indexing's up-front
  /// investment). Implicit on first query in kOffline mode.
  void PrepareOfflineIndexes();

  /// Registers a speculative index on an attribute into C_potential
  /// (kHolistic; Fig. 9's idle-time pre-indexing).
  void SeedPotentialIndex(const std::string& table,
                          const std::string& column);

  /// The holistic engine (nullptr unless mode is kHolistic).
  HolisticEngine* holistic() { return holistic_.get(); }

  /// Sum of pieces over all adaptive indices (Fig. 6(c) telemetry).
  size_t TotalIndexPieces() const;

  /// Number of adaptive indices materialized so far.
  size_t NumAdaptiveIndices() const;

  /// The options this database was built with.
  const DatabaseOptions& options() const { return options_; }

  /// The shared query worker pool.
  ThreadPool& query_pool() { return *query_pool_; }

 private:
  struct ColumnRuntime {
    std::shared_ptr<CrackerColumn<int64_t>> cracker;
    std::shared_ptr<SortedIndex<int64_t>> sorted;
  };

  static std::string Key(const std::string& table, const std::string& column) {
    return table + "." + column;
  }

  const Column<int64_t>& BaseColumn(const std::string& table,
                                    const std::string& column) const;
  ColumnRuntime& Runtime(const std::string& key);
  std::shared_ptr<CrackerColumn<int64_t>> EnsureCracker(
      const std::string& table, const std::string& column);
  std::shared_ptr<SortedIndex<int64_t>> EnsureSorted(
      const std::string& table, const std::string& column);
  CrackConfig QueryCrackConfig();
  PositionRange CrackedSelect(const std::string& table,
                              const std::string& column, int64_t low,
                              int64_t high,
                              std::shared_ptr<CrackerColumn<int64_t>>* out);

  DatabaseOptions options_;
  Catalog catalog_;
  std::unique_ptr<ThreadPool> query_pool_;
  std::unique_ptr<HolisticEngine> holistic_;
  SlotCpuMonitor* slot_monitor_ = nullptr;  // owned by holistic_

  mutable std::mutex runtime_mu_;
  std::unordered_map<std::string, ColumnRuntime> runtime_;
  std::atomic<uint64_t> queries_executed_{0};
  std::atomic<uint64_t> next_insert_rowid_{0};
  bool offline_prepared_ = false;
};

}  // namespace holix
