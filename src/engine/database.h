/// \file database.h
/// \brief The engine facade: a main-memory column-store with pluggable
/// indexing modes, reproducing every system compared in §5.
///
/// Execution modes (each one a QueryExecutor strategy, query_executor.h):
///  * kScan       — parallel full scans (MonetDB's plain select).
///  * kOffline    — all columns pre-sorted; cost charged to the 1st query.
///  * kOnline     — scans during an observation window, then sorts the
///                  accessed columns (COLT-style, §2).
///  * kAdaptive   — parallel vectorized database cracking, PVDC [44].
///  * kStochastic — parallel vectorized stochastic cracking, PVSDC [21,44].
///  * kCCGI       — modified parallel chunked coarse-granular index [8].
///  * kHolistic   — PVDC for user queries + the always-on holistic engine
///                  refining indices on idle hardware contexts (§4).
///
/// The facade is a thin composition of three engine pieces:
///  * ColumnRegistry — resolves (table, column) once into a ColumnHandle;
///    the handle-based query path holds no global mutex and hashes no
///    strings (column_registry.h);
///  * QueryExecutor — one strategy object per ExecMode;
///  * Session — per-client handle cache + RNG + async submission
///    (session.h; OpenSession()).
///
/// Attributes are generic over the element type via the typed column
/// runtime (int32_t, int64_t and double); the string-based int64 query API
/// remains source-compatible and works against any indexable column type,
/// and the *Scalar / *F64 entry points carry typed bounds end-to-end (a
/// double column's sums stay doubles all the way to the wire).

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <type_traits>
#include <vector>

#include "engine/column_registry.h"
#include "engine/durability.h"
#include "engine/engine_options.h"
#include "obs/metrics.h"
#include "engine/query_executor.h"
#include "engine/session.h"
#include "holistic/holistic_engine.h"
#include "storage/catalog.h"
#include "util/thread_pool.h"

namespace holix {

/// A main-memory column-store database with self-organizing indexing.
class Database {
 public:
  explicit Database(DatabaseOptions options);
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Schema and base data.
  Catalog& catalog() { return catalog_; }

  /// Creates table \p table (if needed) and adds a typed column. Every
  /// supported element type (int32_t, int64_t, double) is indexable and
  /// queryable through the facade; doubles order through the
  /// KeyTraits<double> total order (NaN above +inf, -0.0 == +0.0).
  template <typename T>
  void LoadColumn(const std::string& table, const std::string& column,
                  std::vector<T> data) {
    Table& t = catalog_.CreateTable(table);
    const size_t rows = data.size();
    Column<T>& stored = t.AddColumn<T>(column, std::move(data));
    registry_.Add<T>(table, column, &stored);
    RaiseRowIdFloor(rows);
  }

  /// Source-compatible int64 overload (also catches braced initializers).
  void LoadColumn(const std::string& table, const std::string& column,
                  std::vector<int64_t> data) {
    LoadColumn<int64_t>(table, column, std::move(data));
  }

  /// Drops \p table: its attributes leave the registry and the holistic
  /// store, and outstanding handles turn invalid (queries through them
  /// throw). Callers must quiesce in-flight queries on the table first, as
  /// with any DDL.
  void DropTable(const std::string& table);

  /// Resolves an attribute to a handle for the hot query path. Resolve
  /// once, query many times. Throws std::out_of_range when absent.
  ColumnHandle Resolve(const std::string& table,
                       const std::string& column) const {
    return registry_.Resolve(table, column);
  }

  /// Opens a per-client session (handle cache, private RNG, async path).
  Session OpenSession(SessionOptions options = {});

  // --- Declarative query API (query_spec.h) ------------------------------
  //
  // The one entry every read reduces to: a QuerySpec carries a conjunction
  // of 1..N range predicates plus the requested results, and the executor
  // plans the conjunction (most selective predicate first, estimated from
  // cracker piece boundaries; sorted-positional merge or base-column
  // probes for the rest — every touched predicate column cracks as a side
  // effect in the adaptive modes). The per-primitive calls below are thin
  // shims building one-predicate specs.

  QueryResult Execute(const QuerySpec& spec, const QueryContext& qctx = {});

  // --- Handle-based scalar query API (the typed core; no global mutex,
  //     no string hashing). Bounds/values are tagged int64-or-double
  //     KeyScalars, exactly what the wire protocol carries. ---------------

  size_t CountRangeScalar(const ColumnHandle& column, KeyScalar low,
                          KeyScalar high, const QueryContext& qctx = {});
  /// Shared scan: counts[i] answers ranges[i] over ONE column, computed in
  /// a single pass (cracking modes crack the union of the bounds once).
  /// Bit-equal to per-range CountRangeScalar calls; the network server's
  /// coalescer batches concurrent same-column count requests into this.
  std::vector<uint64_t> CountRangeBatchScalar(
      const ColumnHandle& column,
      const std::vector<std::pair<KeyScalar, KeyScalar>>& ranges,
      const QueryContext& qctx = {});
  /// Result carrier follows the column type (double columns sum to f64).
  KeyScalar SumRangeScalar(const ColumnHandle& column, KeyScalar low,
                           KeyScalar high, const QueryContext& qctx = {});
  PositionList SelectRowIdsScalar(const ColumnHandle& column, KeyScalar low,
                                  KeyScalar high,
                                  const QueryContext& qctx = {});
  /// Result carrier follows the PROJECT column's type.
  KeyScalar ProjectSumScalar(const ColumnHandle& where_column,
                             const ColumnHandle& project_column,
                             KeyScalar low, KeyScalar high,
                             const QueryContext& qctx = {});
  RowId InsertScalar(const ColumnHandle& column, KeyScalar value,
                     const QueryContext& qctx = {});
  bool DeleteScalar(const ColumnHandle& column, KeyScalar value,
                    const QueryContext& qctx = {});

  // --- Handle-based int64 query API (source-compatible; works against
  //     every column type — int64 bounds clamp exactly into narrower or
  //     double domains) --------------------------------------------------

  /// select count(*) from ... where low <= column < high.
  size_t CountRange(const ColumnHandle& column, int64_t low, int64_t high,
                    const QueryContext& qctx = {});

  /// select sum(column) ... : forces the engine to touch qualifying rows.
  /// On a double column the f64 sum is rounded to nearest and saturated
  /// (NaN maps to 0); use SumRangeF64/SumRangeScalar for the exact value.
  int64_t SumRange(const ColumnHandle& column, int64_t low, int64_t high,
                   const QueryContext& qctx = {});

  /// Materializes qualifying rowids (tuple-reconstruction input).
  PositionList SelectRowIds(const ColumnHandle& column, int64_t low,
                            int64_t high, const QueryContext& qctx = {});

  /// The paper's §3.1 query shape reduced to a checksum: select on
  /// \p where_column, project \p project_column positionally, return its
  /// sum. Exercises late tuple reconstruction.
  int64_t ProjectSum(const ColumnHandle& where_column,
                     const ColumnHandle& project_column, int64_t low,
                     int64_t high, const QueryContext& qctx = {});

  /// Pending-queue insert (merged on demand; §5.7). Cracking modes only.
  RowId Insert(const ColumnHandle& column, int64_t value,
               const QueryContext& qctx = {});

  /// Pending-queue delete of one row holding \p value. Resolves the row via
  /// the closed unit select [value, value], so any representable value —
  /// including the element type's maximum — is deletable. \return true when
  /// a matching row was found.
  bool Delete(const ColumnHandle& column, int64_t value,
              const QueryContext& qctx = {});

  // --- Handle-based double query API (F64-suffixed so integer literals
  //     keep resolving to the int64 overloads). An exclusive high equal to
  //     the NaN key (the double order's maximum) degrades to the closed
  //     bound, so CountRangeF64(h, NaN, NaN) counts exactly the NaN rows. --

  size_t CountRangeF64(const ColumnHandle& column, double low, double high,
                       const QueryContext& qctx = {});
  double SumRangeF64(const ColumnHandle& column, double low, double high,
                     const QueryContext& qctx = {});
  PositionList SelectRowIdsF64(const ColumnHandle& column, double low,
                               double high, const QueryContext& qctx = {});
  double ProjectSumF64(const ColumnHandle& where_column,
                       const ColumnHandle& project_column, double low,
                       double high, const QueryContext& qctx = {});
  RowId InsertF64(const ColumnHandle& column, double value,
                  const QueryContext& qctx = {});
  bool DeleteF64(const ColumnHandle& column, double value,
                 const QueryContext& qctx = {});

  // --- Name-based query API (source-compatible; resolves per call) -------

  size_t CountRange(const std::string& table, const std::string& column,
                    int64_t low, int64_t high) {
    return CountRange(Resolve(table, column), low, high);
  }
  int64_t SumRange(const std::string& table, const std::string& column,
                   int64_t low, int64_t high) {
    return SumRange(Resolve(table, column), low, high);
  }
  PositionList SelectRowIds(const std::string& table,
                            const std::string& column, int64_t low,
                            int64_t high) {
    return SelectRowIds(Resolve(table, column), low, high);
  }
  int64_t ProjectSum(const std::string& table,
                     const std::string& where_column,
                     const std::string& project_column, int64_t low,
                     int64_t high) {
    return ProjectSum(Resolve(table, where_column),
                      Resolve(table, project_column), low, high);
  }
  RowId Insert(const std::string& table, const std::string& column,
               int64_t value) {
    return Insert(Resolve(table, column), value);
  }
  bool Delete(const std::string& table, const std::string& column,
              int64_t value) {
    return Delete(Resolve(table, column), value);
  }
  size_t CountRangeF64(const std::string& table, const std::string& column,
                       double low, double high) {
    return CountRangeF64(Resolve(table, column), low, high);
  }
  double SumRangeF64(const std::string& table, const std::string& column,
                     double low, double high) {
    return SumRangeF64(Resolve(table, column), low, high);
  }
  PositionList SelectRowIdsF64(const std::string& table,
                               const std::string& column, double low,
                               double high) {
    return SelectRowIdsF64(Resolve(table, column), low, high);
  }
  double ProjectSumF64(const std::string& table,
                       const std::string& where_column,
                       const std::string& project_column, double low,
                       double high) {
    return ProjectSumF64(Resolve(table, where_column),
                         Resolve(table, project_column), low, high);
  }
  RowId InsertF64(const std::string& table, const std::string& column,
                  double value) {
    return InsertF64(Resolve(table, column), value);
  }
  bool DeleteF64(const std::string& table, const std::string& column,
                 double value) {
    return DeleteF64(Resolve(table, column), value);
  }

  // --- Mode-specific operations ------------------------------------------

  /// Sorts every loaded column now (offline indexing's up-front
  /// investment). Implicit on first query in kOffline mode.
  void PrepareOfflineIndexes() { executor_->Prepare(); }

  /// Registers a speculative index on an attribute into C_potential
  /// (kHolistic; Fig. 9's idle-time pre-indexing).
  void SeedPotentialIndex(const std::string& table,
                          const std::string& column) {
    executor_->SeedPotential(Resolve(table, column));
  }

  // --- Durability (src/persist/ attaches here) ----------------------------

  /// Attaches (or with nullptr detaches) the durability hook. Every update
  /// that enters through InsertScalar/DeleteScalar is logged through the
  /// hook while the update barrier is held shared, so a checkpoint's state
  /// cut (ExportDurableState, unique barrier) can never interleave with a
  /// half-logged update.
  void SetDurabilityHook(DurabilityHook* hook);

  /// Forces a checkpoint through the attached hook; returns the checkpoint
  /// LSN. Throws std::logic_error when no hook is attached.
  uint64_t Checkpoint();

  /// Exports the full durable state under the unique update barrier: every
  /// cracker force-merges its pending queues, then base ranks, appended /
  /// deleted-base registries, piece boundaries and life stats are captured.
  /// \p under_barrier (optional) runs while the barrier is still held — the
  /// persistence layer rotates the WAL epoch inside it, making the state
  /// cut and the epoch boundary one atomic event. Columns are ordered by
  /// key so identical states serialize identically.
  DurableDatabaseState ExportDurableState(
      const std::function<void()>& under_barrier = {});

  /// Recovery step 1: recreates tables and base columns from \p state into
  /// this (empty) database and queues the checkpointed appended /
  /// deleted-base registries as pending updates. Throws std::logic_error
  /// when the database already holds tables.
  void BeginRestore(const DurableDatabaseState& state);

  /// Recovery step 2 (per WAL record): re-applies a logged insert exactly —
  /// same value (rank image), same rowid.
  void ApplyLoggedInsert(const std::string& table, const std::string& column,
                         ValueType type, uint64_t rank, RowId rid);
  /// Recovery step 2 (per WAL record): re-applies a logged delete of the
  /// exact row the original call removed.
  void ApplyLoggedDelete(const std::string& table, const std::string& column,
                         ValueType type, uint64_t rank, RowId rid);

  /// Recovery step 3: force-merges every restored column, re-cracks each
  /// cracker at its saved pivots (bit-identical boundaries — a boundary's
  /// position is a pure function of the column multiset), restores the
  /// life stats and the holistic store membership, and verifies the
  /// cracker invariants. Throws std::runtime_error on invariant failure.
  void FinishRestore(const DurableDatabaseState& state);

  // --- Introspection ------------------------------------------------------

  /// The holistic engine (nullptr unless mode is kHolistic).
  HolisticEngine* holistic() { return holistic_.get(); }

  /// Sum of pieces over all adaptive indices (Fig. 6(c) telemetry).
  size_t TotalIndexPieces() const;

  /// Number of adaptive indices materialized so far.
  size_t NumAdaptiveIndices() const;

  /// Refreshes the lazily-computed gauges (piece counts, Equation-1
  /// distance per column, holistic store usage) in the global registry,
  /// then returns its snapshot. Both the in-process path and the server's
  /// `GetStats` frame go through this method, so a quiesced system yields
  /// bit-identical snapshots from either plane.
  obs::MetricsSnapshot MetricsSnapshot() const;

  /// The options this database was built with.
  const DatabaseOptions& options() const { return options_; }

  /// The shared intra-query worker pool (parallel scans/cracks/sorts).
  ThreadPool& query_pool() { return *query_pool_; }

  /// The client pool executing async session submissions and harness
  /// client drivers. Lazily created; growing to \p min_threads retires the
  /// old pool (in-flight submissions and held references stay valid and
  /// drain on the old pool's threads). Distinct from query_pool() so a
  /// submitted query may itself fan out on the query pool without deadlock.
  ThreadPool& client_pool(size_t min_threads = 0);

  /// The name -> handle registry (read-only).
  const ColumnRegistry& registry() const { return registry_; }

 private:
  void RaiseRowIdFloor(uint64_t rows);

  /// Typed core of ApplyLoggedInsert/ApplyLoggedDelete.
  void ApplyLoggedUpdate(WalOp op, const std::string& table,
                         const std::string& column, ValueType type,
                         uint64_t rank, RowId rid);

  DatabaseOptions options_;
  Catalog catalog_;
  ColumnRegistry registry_;
  std::unique_ptr<ThreadPool> query_pool_;
  std::unique_ptr<HolisticEngine> holistic_;
  SlotCpuMonitor* slot_monitor_ = nullptr;  // owned by holistic_
  EngineContext engine_ctx_;
  std::unique_ptr<QueryExecutor> executor_;

  std::atomic<uint64_t> next_insert_rowid_{0};
  std::atomic<uint64_t> next_session_id_{0};

  /// Held shared around apply+log of every update, unique around a
  /// checkpoint's state export — the sharp cut that keeps "in the
  /// snapshot" and "after the WAL rotation" mutually exclusive.
  mutable std::shared_mutex update_barrier_;
  std::atomic<DurabilityHook*> durability_{nullptr};

  std::mutex client_pool_mu_;
  std::unique_ptr<ThreadPool> client_pool_;
  /// Pools replaced by growth; kept alive so outstanding references and
  /// submissions drain safely (freed when the database dies).
  std::vector<std::unique_ptr<ThreadPool>> retired_client_pools_;
};

}  // namespace holix
