/// \file durability.h
/// \brief The contract between the engine and the durability subsystem
/// (`src/persist/`): type-erased state transfer structs plus the hook the
/// update path calls to log pending-update records.
///
/// The engine side (Database) owns all registry/typed knowledge — it
/// exports and restores state through these structs; the persist side owns
/// serialization, file I/O, and crash-recovery orchestration. Keys cross
/// the boundary as `KeyTraits<T>::ToRank` u64 images: order-preserving,
/// canonical-NaN, and lossless in both directions, so double columns with
/// NaN / -0.0 / ±inf round-trip exactly.

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "storage/types.h"

namespace holix {

/// Operation tag of one write-ahead-log record. The records are exactly
/// the `PendingUpdates` queue entries: an insert or delete of one typed
/// key in one column.
enum class WalOp : uint8_t {
  kInsert = 1,
  kDelete = 2,
};

/// Checkpointed state of one column: base data, the net effect of every
/// merged update (appended rows minus deleted base rows), the cracker's
/// piece boundaries (pivots), its life counters, and its holistic-store
/// membership. All keys are rank images.
struct DurableColumnState {
  std::string table;
  std::string column;
  ValueType type = ValueType::kInt64;

  /// Base column values in row order (rowids 0..N-1), as ranks.
  std::vector<uint64_t> base_ranks;
  /// Rows appended by inserts: (rowid, rank), sorted by rowid.
  std::vector<std::pair<RowId, uint64_t>> appended;
  /// Base rows removed by deletes: (rowid, rank), sorted by rowid.
  std::vector<std::pair<RowId, uint64_t>> deleted_base;

  /// Cracker piece boundaries (pivot ranks, in-order). Positions are not
  /// stored: a boundary's position is the number of column values below
  /// its pivot, which recovery reproduces exactly by re-cracking the
  /// restored multiset at each pivot.
  bool has_cracker = false;
  std::vector<uint64_t> pivot_ranks;

  /// CrackStats life counters, in declaration order: accesses, exact
  /// hits, query cracks, worker cracks, worker skips, merged inserts,
  /// merged deletes.
  uint64_t stats[7] = {0, 0, 0, 0, 0, 0, 0};

  /// Holistic stats-store membership (engine StoreState ordinal;
  /// 0 = unregistered). Restored only when the database runs kHolistic.
  uint8_t store_state = 0;
};

/// Checkpointed table shape (column order matters for restore).
struct DurableTableState {
  std::string name;
  uint64_t base_rows = 0;
  std::vector<std::string> columns;  // in storage order
};

/// Everything a checkpoint captures and a recovery restores.
struct DurableDatabaseState {
  /// LSN of the last update included in this state; WAL records at or
  /// below it are skipped on replay.
  uint64_t last_lsn = 0;
  /// Row-id allocator floor (next rowid to hand out).
  uint64_t next_rowid = 0;
  std::vector<DurableTableState> tables;
  std::vector<DurableColumnState> columns;
};

/// Interface the engine's update path calls after applying an update.
/// Implemented by persist::PersistenceManager; a Database without a hook
/// is simply non-durable (the status quo).
class DurabilityHook {
 public:
  virtual ~DurabilityHook() = default;

  /// Logs one applied update and makes it durable per the configured
  /// fsync policy before returning. \p rank is the applied key's
  /// `KeyTraits<T>::ToRank` image; \p rid the resolved rowid.
  /// \return the record's LSN.
  virtual uint64_t LogUpdate(WalOp op, const std::string& table,
                             const std::string& column, ValueType type,
                             uint64_t rank, RowId rid) = 0;

  /// Takes a sharp checkpoint (snapshot + manifest + WAL rotation).
  /// \return the checkpoint LSN.
  virtual uint64_t Checkpoint() = 0;
};

}  // namespace holix
