/// \file engine_options.h
/// \brief Execution modes and construction-time options of the engine.
///
/// Split out of database.h so the registry / executor / session layers can
/// share these types without pulling in the facade.

#pragma once

#include <cstddef>
#include <cstdint>

#include "cracking/crack_config.h"
#include "holistic/holistic_engine.h"

namespace holix {

/// Indexing/execution mode of a Database instance.
enum class ExecMode : uint8_t {
  kScan,
  kOffline,
  kOnline,
  kAdaptive,
  kStochastic,
  kCCGI,
  kHolistic,
};

/// Printable name of an execution mode.
const char* ExecModeName(ExecMode m);

/// Construction-time options of a Database.
struct DatabaseOptions {
  /// Indexing approach used by select operators.
  ExecMode mode = ExecMode::kAdaptive;

  /// Hardware contexts assigned to each user query (the "uX" in the
  /// paper's uXwYxZ labels).
  size_t user_threads = 1;

  /// Hardware contexts of the whole machine (contexts not used by queries
  /// are what holistic indexing may exploit).
  size_t total_cores = 0;  ///< 0 = hardware_concurrency().

  /// kOnline: queries answered by scans before the sorting step.
  size_t online_observation_window = 100;

  /// kCCGI: number of coarse chunks (0 = user_threads).
  size_t ccgi_chunks = 0;

  /// Crack kernel of the user-query select path. kParallel uses the
  /// morsel-driven scheme across `user_threads` contexts (each morsel
  /// cracked by the SIMD tier); kSimd forces single-threaded SIMD cracks;
  /// kScalar / kOutOfPlace pin the legacy kernels. All choices produce the
  /// same query results — kOutOfPlace/kSimd/kParallel even the same bytes.
  CrackAlgo kernel = CrackAlgo::kParallel;

  /// kHolistic: engine knobs (workers, x, strategy, budget, ...).
  HolisticConfig holistic;

  /// kHolistic: use kernel statistics (/proc/stat) instead of the
  /// deterministic slot monitor.
  bool use_proc_stat_monitor = false;

  /// Seed for stochastic cracking pivots and session RNG derivation.
  uint64_t seed = 42;
};

/// Construction-time options of a Session (see session.h).
struct SessionOptions {
  /// Seed of the session's private RNG (stochastic pivots). 0 derives a
  /// distinct per-session seed from the database seed and session id.
  uint64_t seed = 0;
};

}  // namespace holix
