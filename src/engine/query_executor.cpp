#include "engine/query_executor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <stdexcept>
#include <thread>
#include <type_traits>

#include "baselines/full_scan.h"
#include "cracking/pre_crack.h"
#include "engine/scalar_convert.h"
#include "obs/metrics.h"
#include "util/timer.h"

namespace holix {

namespace {

/// Stochastic cracking pivots must come from a thread-safe source; query
/// threads without a session RNG each get their own generator.
Rng& ThreadLocalQueryRng(uint64_t seed) {
  thread_local Rng rng(seed ^
                       std::hash<std::thread::id>{}(std::this_thread::get_id()));
  return rng;
}

/// The smallest double whose real value is >= the int64 \p v, computed
/// exactly and portably: static_cast rounds to nearest, so a result below
/// v (possible beyond 2^53) is bumped one ulp up. The "is d < v" check is
/// pure integer arithmetic — d is integral and in int64 range whenever it
/// isn't 2^63, so casting it back is exact (no long double needed).
double DoubleAtLeast(int64_t v) {
  double d = static_cast<double>(v);
  if (d >= 9223372036854775808.0) return d;  // 2^63: above every int64
  if (static_cast<int64_t>(d) < v) {
    d = std::nextafter(d, std::numeric_limits<double>::infinity());
  }
  return d;
}

/// Query bounds arrive as KeyScalars at the facade; the typed path clamps
/// them into the column type's domain. When the (exclusive) high cannot be
/// expressed inside the type — an int64 high beyond max(T), or the double
/// NaN key, which is the double order's maximum — the range degrades to
/// the *closed* bound [lo, Highest]: every value of the type up to and
/// including the order's top satisfies the original predicate, and the
/// typed select machinery runs its closed-bound primitive, so a row
/// holding exactly max(T) (or the NaN key) stays selectable.
template <typename T>
struct Bounds {
  T lo{};
  T hi{};
  bool empty = false;
  bool closed_high = false;  ///< Select [lo, hi] instead of [lo, hi).
};

/// Smallest key of integer type T that is >= the scalar bound \p lo
/// (exact for both carriers); nullopt when the bound sits above all of T.
template <typename T>
std::optional<T> IntFirstAtLeast(KeyScalar lo) {
  constexpr T tmin = std::numeric_limits<T>::min();
  constexpr T tmax = std::numeric_limits<T>::max();
  if (!lo.is_f64()) {
    if (lo.i > static_cast<int64_t>(tmax)) return std::nullopt;
    if (lo.i < static_cast<int64_t>(tmin)) return tmin;
    return static_cast<T>(lo.i);
  }
  const double d = lo.d;
  if (std::isnan(d)) return std::nullopt;  // the order's top: above all of T
  if (d <= static_cast<double>(tmin)) return tmin;
  const double cl = std::ceil(d);
  // 2^(width-1): the first double beyond T's positive range ((double)tmax
  // would round UP to this for int64 and mis-compare).
  if (cl >= std::ldexp(1.0, sizeof(T) * 8 - 1)) return std::nullopt;
  return static_cast<T>(cl);
}

/// Largest key of integer type T that is < the scalar bound \p hi (exact
/// for both carriers; a bound above T's range — including the double NaN
/// key — degrades to max(T), the closed-bound upgrade); nullopt when the
/// bound sits at or below all of T.
template <typename T>
std::optional<T> IntLastBelow(KeyScalar hi) {
  constexpr T tmin = std::numeric_limits<T>::min();
  constexpr T tmax = std::numeric_limits<T>::max();
  if (!hi.is_f64()) {
    if (hi.i > static_cast<int64_t>(tmax)) return tmax;
    if (hi.i <= static_cast<int64_t>(tmin)) return std::nullopt;
    return static_cast<T>(hi.i - 1);
  }
  const double d = hi.d;
  if (std::isnan(d) || d >= std::ldexp(1.0, sizeof(T) * 8 - 1)) {
    return tmax;  // every key of T lies below the bound
  }
  if (d <= static_cast<double>(tmin)) return std::nullopt;
  const double fl = std::floor(d);
  const T f = static_cast<T>(fl);  // fl in [tmin, 2^(w-1)) -> exact cast
  if (fl == d) {
    // Integral exclusive high: the largest admissible key is d - 1,
    // computed in T (a double subtraction would round back up once the
    // ulp exceeds 1).
    if (f == tmin) return std::nullopt;
    return static_cast<T>(f - 1);
  }
  return f;
}

/// One scalar bound as an exact double key: int64 carriers go through
/// DoubleAtLeast — correct for BOTH ends of a half-open range, since no
/// double lies strictly between an int64's real value and its
/// DoubleAtLeast image — f64 carriers are canonicalized.
double DoubleBound(KeyScalar s) {
  return s.is_f64() ? KeyTraits<double>::Canonical(s.d) : DoubleAtLeast(s.i);
}

/// Clamps a KeyScalar bound pair into column type T's domain. Each bound
/// converts independently with exact semantics (mixed carriers included),
/// and an exclusive high that cannot be expressed inside T — above max(T),
/// or the double NaN key — degrades to the closed form.
template <typename T>
Bounds<T> ClampBounds(KeyScalar lo, KeyScalar hi) {
  if constexpr (std::is_same_v<T, double>) {
    using KT = KeyTraits<double>;
    const double lo_d = DoubleBound(lo);
    const double hi_d = DoubleBound(hi);
    if (KT::IsHighest(hi_d)) {
      // Exclusive high at the order's top: degrade to the closed tail,
      // mirroring the integer facade at max(T). [NaN, NaN] therefore
      // selects exactly the rows holding the NaN key.
      return {KT::IsHighest(lo_d) ? KT::Highest() : lo_d, KT::Highest(),
              false, true};
    }
    if (!KT::Less(lo_d, hi_d)) return {0.0, 0.0, true, false};
    return {lo_d, hi_d, false, false};
  } else {
    const std::optional<T> lo_t = IntFirstAtLeast<T>(lo);
    const std::optional<T> hi_t = IntLastBelow<T>(hi);
    if (!lo_t || !hi_t || *lo_t > *hi_t) return {T{}, T{}, true, false};
    // Integer clamps always use the closed form [lo_t, hi_t]; away from
    // max(T) the select machinery turns it straight back into the
    // identical half-open [lo_t, hi_t + 1).
    return {*lo_t, *hi_t, false, true};
  }
}

/// Wraps a typed sum into the scalar carrier matching the column type.
template <typename T>
KeyScalar WrapSum(typename KeyTraits<T>::Sum s) {
  if constexpr (std::is_same_v<typename KeyTraits<T>::Sum, double>) {
    return KeyScalar::F64(s);
  } else {
    return KeyScalar::I64(s);
  }
}

/// Intersects two ascending rowid lists (sorted-positional merge).
PositionList SortedIntersect(const PositionList& a, const PositionList& b) {
  PositionList out;
  out.reserve(std::min(a.size(), b.size()));
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      out.push_back(a[i]);
      ++i;
      ++j;
    }
  }
  return out;
}

StoreState ToStoreState(ConfigKind kind) {
  switch (kind) {
    case ConfigKind::kActual:
      return StoreState::kActual;
    case ConfigKind::kPotential:
      return StoreState::kPotential;
    case ConfigKind::kOptimal:
      return StoreState::kOptimal;
  }
  return StoreState::kUnregistered;
}

// ---------------------------------------------------------------------------
// Shared plumbing
// ---------------------------------------------------------------------------

class ExecutorBase : public QueryExecutor {
 public:
  explicit ExecutorBase(const EngineContext& ctx) : ctx_(ctx) {}

  /// The declarative entry point: validate, then either dispatch the
  /// legacy one-predicate/one-result shape onto the mode-native operator,
  /// or plan and execute the conjunction (see query_executor.h).
  QueryResult Execute(const QuerySpec& spec, const QueryContext& qctx) override {
    if (spec.predicates.empty()) {
      throw std::invalid_argument("QuerySpec: empty conjunction");
    }
    if (spec.results.empty()) {
      throw std::invalid_argument("QuerySpec: no result requested");
    }
    const ColumnEntry& first = Entry(spec.predicates[0].column);
    for (const RangePredicate& p : spec.predicates) {
      CheckSameTable(first, Entry(p.column));
    }
    for (const ResultSpec& r : spec.results) {
      if (r.kind == ResultRequest::kSum ||
          r.kind == ResultRequest::kProjectSum) {
        if (r.column.entry() == nullptr) {
          throw std::invalid_argument("QuerySpec: sum request needs a column");
        }
        CheckSameTable(first, Entry(r.column));
      }
    }
    // Validated: everything below counts as one query in the telemetry
    // plane — per-mode counter + latency histogram, plus a trace the
    // layers below annotate (pieces created, bytes scanned, planner
    // choices) through the thread-local scope.
    obs::QueryTrace trace;
    trace.mode = static_cast<uint8_t>(ctx_.options->mode);
    trace.predicates = static_cast<uint16_t>(spec.predicates.size());
    trace.results = static_cast<uint16_t>(spec.results.size());
    obs::TraceScope scope(&trace);
    Timer timer;
    QueryResult out = ExecuteValidated(spec, qctx);
    trace.latency_seconds = timer.ElapsedSeconds();
    obs::RecordQueryDone(trace, ExecModeName(ctx_.options->mode));
    return out;
  }

  QueryResult ExecuteValidated(const QuerySpec& spec,
                               const QueryContext& qctx) {
    if (spec.predicates.size() == 1 && spec.results.size() == 1) {
      return ExecuteLegacyShape(spec, qctx);
    }
    PositionList rows;
    if (spec.predicates.size() == 1) {
      const RangePredicate& p = spec.predicates[0];
      rows = SelectRowIds(p.column, p.low, p.high, qctx);
      std::sort(rows.begin(), rows.end());
    } else {
      rows = SelectConjunction(spec, qctx);  // already ascending
    }
    // Rows appended by Insert participate like any other row: their values
    // live in the per-column pending registry rather than the base arrays,
    // and every positional path below (probe filters, materialized sums)
    // consults that registry for rowids at or past the base row count. A
    // conjunction still excludes a single-column-inserted row naturally —
    // the row has no value in the other predicate columns, so no index or
    // registry on those columns can produce its rowid.
    return MaterializeResults(spec, std::move(rows));
  }

  /// Default late reconstruction: materialize rowids via the mode's select,
  /// then project positionally through the base column.
  KeyScalar ProjectSum(const ColumnHandle& where_column,
                       const ColumnHandle& project_column, KeyScalar low,
                       KeyScalar high, const QueryContext& qctx) override {
    ColumnEntry& pe = Entry(project_column);
    CheckSameTable(Entry(where_column), pe);
    const PositionList rows = SelectRowIds(where_column, low, high, qctx);
    return DispatchIndexableType(pe.type(), [&](auto tag) -> KeyScalar {
      using P = typename decltype(tag)::type;
      const Column<P>& proj = *pe.runtime<P>().base;
      const size_t n = proj.size();
      typename KeyTraits<P>::Sum sum = 0;
      for (RowId rid : rows) {
        P v{};
        if (rid < n) {
          v = proj[rid];
        } else if (!AppendedValueFor<P>(pe, rid, &v)) {
          continue;  // appended on the WHERE column only; no value here
        }
        sum += static_cast<typename KeyTraits<P>::Sum>(v);
      }
      return WrapSum<P>(sum);
    });
  }

 protected:
  /// Validates the handle and returns its entry: null handles are caller
  /// bugs, dropped entries mean the table is gone (base data freed).
  ColumnEntry& Entry(const ColumnHandle& h) const {
    ColumnEntry* e = h.entry();
    if (e == nullptr) {
      throw std::invalid_argument("query through a null column handle");
    }
    if (e->dropped.load(std::memory_order_acquire)) {
      throw std::logic_error("column was dropped: " + e->key());
    }
    return *e;
  }

  /// Number of rows in the entry's loaded base column.
  static size_t BaseRows(ColumnEntry& e) {
    return DispatchIndexableType(e.type(), [&](auto tag) -> size_t {
      using T = typename decltype(tag)::type;
      return e.runtime<T>().base->size();
    });
  }

  /// Value of row \p rid in \p e when the rowid lies beyond the loaded base
  /// column: appended rows (single-column Insert) keep their values in the
  /// column's pending registry, which survives Ripple merges. False when
  /// the row was never inserted into this attribute.
  template <typename T>
  static bool AppendedValueFor(ColumnEntry& e, RowId rid, T* out) {
    auto c = e.runtime<T>().cracker.load(std::memory_order_acquire);
    return c != nullptr && c->pending().AppendedValue(rid, out);
  }

  static void CheckSameTable(const ColumnEntry& a, const ColumnEntry& b) {
    if (a.table() != b.table()) {
      throw std::invalid_argument("query spans tables: " + a.key() + " vs " +
                                  b.key());
    }
  }

  template <typename T>
  std::shared_ptr<SortedIndex<T>> EnsureSorted(ColumnEntry& e) {
    auto& rt = e.runtime<T>();
    if (auto s = rt.sorted.load(std::memory_order_acquire)) return s;
    std::lock_guard<std::mutex> lk(e.build_mu);
    if (auto s = rt.sorted.load(std::memory_order_acquire)) return s;
    auto fresh = std::make_shared<SortedIndex<T>>(e.key(), rt.base->values(),
                                                  *ctx_.query_pool);
    rt.sorted.store(fresh, std::memory_order_release);
    return fresh;
  }

  /// Sorted-index range of \p b (closed or half-open high).
  template <typename T>
  static PositionRange SortedSelect(const SortedIndex<T>& sorted,
                                    const Bounds<T>& b) {
    return b.closed_high ? sorted.SelectRangeClosed(b.lo, b.hi)
                         : sorted.SelectRange(b.lo, b.hi);
  }

  template <typename T>
  typename KeyTraits<T>::Sum SortedSum(const SortedIndex<T>& sorted,
                                       const Bounds<T>& b) const {
    const PositionRange r = SortedSelect(sorted, b);
    typename KeyTraits<T>::Sum sum = 0;
    for (size_t i = r.begin; i < r.end; ++i) {
      sum += static_cast<typename KeyTraits<T>::Sum>(sorted.ValueAt(i));
    }
    return sum;
  }

  template <typename T>
  size_t ScanCount(ColumnEntry& e, const Bounds<T>& b) const {
    const Column<T>& base = *e.runtime<T>().base;
    return ParallelScanCount(base.data(), base.size(), b.lo, b.hi,
                             *ctx_.query_pool, ctx_.options->user_threads,
                             b.closed_high);
  }

  template <typename T>
  typename KeyTraits<T>::Sum ScanSum(ColumnEntry& e,
                                     const Bounds<T>& b) const {
    const Column<T>& base = *e.runtime<T>().base;
    const T* data = base.data();
    typename KeyTraits<T>::Sum sum = 0;
    for (size_t i = 0; i < base.size(); ++i) {
      const bool hit =
          !KeyTraits<T>::Less(data[i], b.lo) &&
          (b.closed_high ? !KeyTraits<T>::Less(b.hi, data[i])
                         : KeyTraits<T>::Less(data[i], b.hi));
      if (hit) sum += static_cast<typename KeyTraits<T>::Sum>(data[i]);
    }
    return sum;
  }

  template <typename T>
  PositionList ScanSelect(ColumnEntry& e, const Bounds<T>& b) const {
    const Column<T>& base = *e.runtime<T>().base;
    return ParallelScanSelect(base.data(), base.size(), b.lo, b.hi,
                              *ctx_.query_pool, ctx_.options->user_threads,
                              b.closed_high);
  }

  // --- Multi-predicate planning ------------------------------------------

  /// A probed conjunct's estimate must exceed the candidate list by this
  /// factor before direct base probes beat a sorted-merge intersection
  /// (probing is O(|candidates|); the merge pays materialize + sort of the
  /// conjunct's own, possibly huge, qualifying set).
  static constexpr size_t kProbeFactor = 4;

  /// Picks the most selective conjunct by estimate, drives the mode's
  /// select with it, then applies the remaining conjuncts cheapest-first.
  PositionList SelectConjunction(const QuerySpec& spec,
                                 const QueryContext& qctx) {
    struct Ranked {
      const RangePredicate* pred;
      size_t est;
    };
    std::vector<Ranked> order;
    order.reserve(spec.predicates.size());
    for (const RangePredicate& p : spec.predicates) {
      order.push_back({&p, EstimatePredicate(Entry(p.column), p.low, p.high)});
    }
    std::stable_sort(order.begin(), order.end(),
                     [](const Ranked& a, const Ranked& b) {
                       return a.est < b.est;
                     });
    PositionList cand = SelectRowIds(order[0].pred->column, order[0].pred->low,
                                     order[0].pred->high, qctx);
    std::sort(cand.begin(), cand.end());
    for (size_t i = 1; i < order.size() && !cand.empty(); ++i) {
      const RangePredicate& p = *order[i].pred;
      ColumnEntry& e = Entry(p.column);
      static obs::Counter& probes = obs::MetricsRegistry::Global().GetCounter(
          "holix_planner_probe_total");
      static obs::Counter& merges = obs::MetricsRegistry::Global().GetCounter(
          "holix_planner_merge_total");
      static obs::Counter& hints = obs::MetricsRegistry::Global().GetCounter(
          "holix_planner_refine_hints_total");
      obs::QueryTrace* trace = obs::CurrentQueryTrace();
      if (order[i].est >= kProbeFactor * cand.size() && ProbeSafe(e)) {
        // Low-selectivity conjunct: probing the base value of each
        // surviving candidate is cheaper than materializing its huge
        // qualifying set. The index still refines (RefineHint) so the
        // attribute keeps converging in the adaptive modes.
        probes.Inc();
        hints.Inc();
        if (trace != nullptr) {
          ++trace->probe_filters;
          ++trace->refine_hints;
        }
        RefineHint(e, p.low, p.high, qctx);
        FilterByBaseProbe(e, p.low, p.high, &cand);
      } else {
        merges.Inc();
        if (trace != nullptr) ++trace->merge_intersects;
        PositionList other = SelectRowIds(p.column, p.low, p.high, qctx);
        std::sort(other.begin(), other.end());
        cand = SortedIntersect(cand, other);
      }
    }
    return cand;
  }

  /// Cardinality estimate of one conjunct: cracker piece boundaries when
  /// an adaptive index exists, sorted-index binary search when one is
  /// built, column [min, max] rank interpolation otherwise.
  size_t EstimatePredicate(ColumnEntry& e, KeyScalar lo, KeyScalar hi) {
    return DispatchIndexableType(e.type(), [&](auto tag) -> size_t {
      using T = typename decltype(tag)::type;
      const Bounds<T> b = ClampBounds<T>(lo, hi);
      if (b.empty) return 0;
      auto& rt = e.runtime<T>();
      if (auto c = rt.cracker.load(std::memory_order_acquire)) {
        return c->EstimateRange(b.lo, b.hi, b.closed_high);
      }
      if (auto s = rt.sorted.load(std::memory_order_acquire)) {
        return SortedSelect(*s, b).size();
      }
      const size_t n = rt.base->size();
      if (n == 0) return 0;
      EnsureDomain<T>(e);
      // Uniform interpolation over the order-preserving rank space; the
      // double arithmetic loses ulps, which is irrelevant for ordering
      // conjuncts by selectivity.
      using KT = KeyTraits<T>;
      const double rank_min = static_cast<double>(KT::ToRank(rt.domain_min));
      const double rank_max = static_cast<double>(KT::ToRank(rt.domain_max));
      const double span = rank_max - rank_min + 1.0;
      const double lo_r =
          std::max(static_cast<double>(KT::ToRank(b.lo)), rank_min);
      const double hi_r =
          std::min(static_cast<double>(KT::ToRank(b.hi)) +
                       (b.closed_high ? 1.0 : 0.0),
                   rank_max + 1.0);
      if (hi_r <= lo_r) return 0;
      const double est = static_cast<double>(n) * (hi_r - lo_r) / span;
      return est >= static_cast<double>(n) ? n : static_cast<size_t>(est);
    });
  }

  /// Caches the base column's [min, max] on first use (selectivity
  /// interpolation for not-yet-indexed attributes).
  template <typename T>
  void EnsureDomain(ColumnEntry& e) {
    auto& rt = e.runtime<T>();
    if (rt.domain_ready.load(std::memory_order_acquire)) return;
    std::lock_guard<std::mutex> lk(e.build_mu);
    if (rt.domain_ready.load(std::memory_order_relaxed)) return;
    const std::vector<T>& v = rt.base->values();
    T mn{}, mx{};
    if (!v.empty()) {
      auto [mn_it, mx_it] = std::minmax_element(
          v.begin(), v.end(),
          [](T a, T b) { return KeyTraits<T>::Less(a, b); });
      mn = KeyTraits<T>::Canonical(*mn_it);
      mx = KeyTraits<T>::Canonical(*mx_it);
    }
    rt.domain_min = mn;
    rt.domain_max = mx;
    rt.domain_ready.store(true, std::memory_order_release);
  }

  /// Base-column probes answer a conjunct correctly only while the base
  /// array is the truth for every live row: a delete (pending or already
  /// Ripple-merged) removes the row from the adaptive index but not from
  /// the base, so deleted-from columns must take the merge path.
  bool ProbeSafe(ColumnEntry& e) {
    return DispatchIndexableType(e.type(), [&](auto tag) -> bool {
      using T = typename decltype(tag)::type;
      auto c = e.runtime<T>().cracker.load(std::memory_order_acquire);
      if (c == nullptr) return true;  // updates always build a cracker first
      return c->stats().merged_deletes.load(std::memory_order_relaxed) == 0 &&
             c->pending().PendingDeletes() == 0;
    });
  }

  /// Drops every candidate whose value in this attribute misses [lo, hi).
  /// Rowids beyond the base column (rows appended by Insert) resolve
  /// through the pending registry — a row inserted into this attribute
  /// qualifies on its inserted value, matching the merge path, which finds
  /// it through the column's adaptive index; a row never inserted here has
  /// no value and is dropped.
  void FilterByBaseProbe(ColumnEntry& e, KeyScalar lo, KeyScalar hi,
                         PositionList* cand) {
    DispatchIndexableType(e.type(), [&](auto tag) {
      using T = typename decltype(tag)::type;
      const Bounds<T> b = ClampBounds<T>(lo, hi);
      if (b.empty) {
        cand->clear();
        return;
      }
      const Column<T>& base = *e.runtime<T>().base;
      const T* data = base.data();
      const size_t n = base.size();
      size_t keep = 0;
      for (RowId rid : *cand) {
        T v{};
        if (rid < n) {
          v = data[rid];
        } else if (!AppendedValueFor<T>(e, rid, &v)) {
          continue;
        }
        const bool hit =
            !KeyTraits<T>::Less(v, b.lo) &&
            (b.closed_high ? !KeyTraits<T>::Less(b.hi, v)
                           : KeyTraits<T>::Less(v, b.hi));
        if (hit) (*cand)[keep++] = rid;
      }
      cand->resize(keep);
    });
  }

  /// Index-refinement side effect for a conjunct answered by base probes:
  /// no-op for the scan/sorted strategies; the cracking strategies crack
  /// the attribute at the query bounds without materializing anything.
  virtual void RefineHint(ColumnEntry&, KeyScalar, KeyScalar,
                          const QueryContext&) {}

  /// The one-predicate/one-result shape: exactly the legacy primitive.
  QueryResult ExecuteLegacyShape(const QuerySpec& spec,
                                 const QueryContext& qctx) {
    const RangePredicate& p = spec.predicates[0];
    const ResultSpec& r = spec.results[0];
    QueryResult out;
    switch (r.kind) {
      case ResultRequest::kCount:
        out.values.push_back(KeyScalar::I64(static_cast<int64_t>(
            CountRange(p.column, p.low, p.high, qctx))));
        break;
      case ResultRequest::kSum:
      case ResultRequest::kProjectSum:
        // Summing the predicate column itself is the mode's SumRange fast
        // path (cracked modes aggregate in place, pending inserts
        // included); any other column is §3.1 late reconstruction.
        out.values.push_back(
            r.column.entry() == p.column.entry()
                ? SumRange(p.column, p.low, p.high, qctx)
                : ProjectSum(p.column, r.column, p.low, p.high, qctx));
        break;
      case ResultRequest::kRowIds:
        out.rowids = SelectRowIds(p.column, p.low, p.high, qctx);
        out.values.push_back(
            KeyScalar::I64(static_cast<int64_t>(out.rowids.size())));
        break;
    }
    return out;
  }

  /// Computes every requested result from the (ascending) qualifying row
  /// set: one shared pass per aggregate, positionally through the base
  /// column, so sums are bit-identical across modes and predicate orders.
  /// Takes the row list by value: it is the terminal consumer, so a
  /// requested kRowIds result moves it into the answer instead of copying
  /// a possibly multi-million-entry list.
  QueryResult MaterializeResults(const QuerySpec& spec, PositionList rows) {
    QueryResult out;
    out.values.reserve(spec.results.size());
    bool want_rowids = false;
    for (const ResultSpec& r : spec.results) {
      switch (r.kind) {
        case ResultRequest::kCount:
          out.values.push_back(
              KeyScalar::I64(static_cast<int64_t>(rows.size())));
          break;
        case ResultRequest::kRowIds:
          want_rowids = true;
          out.values.push_back(
              KeyScalar::I64(static_cast<int64_t>(rows.size())));
          break;
        case ResultRequest::kSum:
        case ResultRequest::kProjectSum: {
          ColumnEntry& pe = Entry(r.column);
          out.values.push_back(
              DispatchIndexableType(pe.type(), [&](auto tag) -> KeyScalar {
                using P = typename decltype(tag)::type;
                const Column<P>& proj = *pe.runtime<P>().base;
                const size_t n = proj.size();
                typename KeyTraits<P>::Sum sum = 0;
                for (RowId rid : rows) {
                  P v{};
                  if (rid < n) {
                    v = proj[rid];
                  } else if (!AppendedValueFor<P>(pe, rid, &v)) {
                    continue;  // row was never inserted into this attribute
                  }
                  sum += static_cast<typename KeyTraits<P>::Sum>(v);
                }
                return WrapSum<P>(sum);
              }));
          break;
        }
      }
    }
    if (want_rowids) out.rowids = std::move(rows);
    return out;
  }

  /// Sorts every registered attribute (offline indexing's investment).
  void SortAllColumns() {
    ctx_.registry->ForEach([this](ColumnEntry& e) {
      DispatchIndexableType(e.type(), [&](auto tag) {
        using T = typename decltype(tag)::type;
        EnsureSorted<T>(e);
      });
    });
  }

  EngineContext ctx_;
};

// ---------------------------------------------------------------------------
// kScan — parallel full scans (MonetDB's plain select)
// ---------------------------------------------------------------------------

class ScanExecutor : public ExecutorBase {
 public:
  using ExecutorBase::ExecutorBase;

  size_t CountRange(const ColumnHandle& h, KeyScalar lo, KeyScalar hi,
                    const QueryContext&) override {
    ColumnEntry& e = Entry(h);
    return DispatchIndexableType(e.type(), [&](auto tag) -> size_t {
      using T = typename decltype(tag)::type;
      const Bounds<T> b = ClampBounds<T>(lo, hi);
      return b.empty ? 0 : ScanCount<T>(e, b);
    });
  }

  KeyScalar SumRange(const ColumnHandle& h, KeyScalar lo, KeyScalar hi,
                     const QueryContext&) override {
    ColumnEntry& e = Entry(h);
    return DispatchIndexableType(e.type(), [&](auto tag) -> KeyScalar {
      using T = typename decltype(tag)::type;
      const Bounds<T> b = ClampBounds<T>(lo, hi);
      return WrapSum<T>(b.empty ? 0 : ScanSum<T>(e, b));
    });
  }

  PositionList SelectRowIds(const ColumnHandle& h, KeyScalar lo, KeyScalar hi,
                            const QueryContext&) override {
    ColumnEntry& e = Entry(h);
    return DispatchIndexableType(e.type(), [&](auto tag) -> PositionList {
      using T = typename decltype(tag)::type;
      const Bounds<T> b = ClampBounds<T>(lo, hi);
      return b.empty ? PositionList{} : ScanSelect<T>(e, b);
    });
  }

  /// The literal shared scan: one sequential read of the base column
  /// evaluates every request's bounds, so N concurrent counts cost one
  /// pass of memory bandwidth instead of N.
  std::vector<uint64_t> CountRangeBatch(
      const ColumnHandle& h,
      const std::vector<std::pair<KeyScalar, KeyScalar>>& ranges,
      const QueryContext&) override {
    ColumnEntry& e = Entry(h);
    return DispatchIndexableType(
        e.type(), [&](auto tag) -> std::vector<uint64_t> {
          using T = typename decltype(tag)::type;
          std::vector<Bounds<T>> bs;
          bs.reserve(ranges.size());
          for (const auto& [lo, hi] : ranges) bs.push_back(ClampBounds<T>(lo, hi));
          const Column<T>& base = *e.runtime<T>().base;
          const T* data = base.data();
          std::vector<uint64_t> counts(ranges.size(), 0);
          for (size_t i = 0; i < base.size(); ++i) {
            const T v = data[i];
            for (size_t k = 0; k < bs.size(); ++k) {
              const Bounds<T>& b = bs[k];
              if (b.empty) continue;
              const bool hit =
                  !KeyTraits<T>::Less(v, b.lo) &&
                  (b.closed_high ? !KeyTraits<T>::Less(b.hi, v)
                                 : KeyTraits<T>::Less(v, b.hi));
              if (hit) ++counts[k];
            }
          }
          return counts;
        });
  }
};

// ---------------------------------------------------------------------------
// kOffline — all columns pre-sorted; cost charged to the first query
// ---------------------------------------------------------------------------

class OfflineExecutor : public ExecutorBase {
 public:
  using ExecutorBase::ExecutorBase;

  void Prepare() override {
    prepared_.store(true, std::memory_order_release);
    SortAllColumns();
  }

  size_t CountRange(const ColumnHandle& h, KeyScalar lo, KeyScalar hi,
                    const QueryContext&) override {
    EnsurePrepared();
    ColumnEntry& e = Entry(h);
    return DispatchIndexableType(e.type(), [&](auto tag) -> size_t {
      using T = typename decltype(tag)::type;
      const Bounds<T> b = ClampBounds<T>(lo, hi);
      return b.empty ? 0 : SortedSelect(*EnsureSorted<T>(e), b).size();
    });
  }

  KeyScalar SumRange(const ColumnHandle& h, KeyScalar lo, KeyScalar hi,
                     const QueryContext&) override {
    EnsurePrepared();
    ColumnEntry& e = Entry(h);
    return DispatchIndexableType(e.type(), [&](auto tag) -> KeyScalar {
      using T = typename decltype(tag)::type;
      const Bounds<T> b = ClampBounds<T>(lo, hi);
      return WrapSum<T>(b.empty ? 0 : SortedSum<T>(*EnsureSorted<T>(e), b));
    });
  }

  PositionList SelectRowIds(const ColumnHandle& h, KeyScalar lo, KeyScalar hi,
                            const QueryContext&) override {
    EnsurePrepared();
    ColumnEntry& e = Entry(h);
    return DispatchIndexableType(e.type(), [&](auto tag) -> PositionList {
      using T = typename decltype(tag)::type;
      const Bounds<T> b = ClampBounds<T>(lo, hi);
      if (b.empty) return {};
      auto sorted = EnsureSorted<T>(e);
      return sorted->FetchRowIds(SortedSelect(*sorted, b));
    });
  }

 private:
  void EnsurePrepared() {
    if (!prepared_.load(std::memory_order_acquire)) Prepare();
  }

  std::atomic<bool> prepared_{false};
};

// ---------------------------------------------------------------------------
// kOnline — scans during an observation window, then sort (COLT-style)
// ---------------------------------------------------------------------------

class OnlineExecutor : public ExecutorBase {
 public:
  using ExecutorBase::ExecutorBase;

  size_t CountRange(const ColumnHandle& h, KeyScalar lo, KeyScalar hi,
                    const QueryContext&) override {
    ColumnEntry& e = Entry(h);
    const uint64_t query_no =
        queries_observed_.fetch_add(1, std::memory_order_relaxed);
    return DispatchIndexableType(e.type(), [&](auto tag) -> size_t {
      using T = typename decltype(tag)::type;
      const Bounds<T> b = ClampBounds<T>(lo, hi);
      if (b.empty) return 0;
      if (query_no < ctx_.options->online_observation_window) {
        return ScanCount<T>(e, b);
      }
      return SortedSelect(*EnsureSorted<T>(e), b).size();
    });
  }

  KeyScalar SumRange(const ColumnHandle& h, KeyScalar lo, KeyScalar hi,
                     const QueryContext&) override {
    ColumnEntry& e = Entry(h);
    return DispatchIndexableType(e.type(), [&](auto tag) -> KeyScalar {
      using T = typename decltype(tag)::type;
      const Bounds<T> b = ClampBounds<T>(lo, hi);
      if (b.empty) return WrapSum<T>(0);
      // Reuse a sorted index if the observation window already closed;
      // never build one just for a sum.
      if (auto sorted =
              e.runtime<T>().sorted.load(std::memory_order_acquire)) {
        return WrapSum<T>(SortedSum<T>(*sorted, b));
      }
      return WrapSum<T>(ScanSum<T>(e, b));
    });
  }

  PositionList SelectRowIds(const ColumnHandle& h, KeyScalar lo, KeyScalar hi,
                            const QueryContext&) override {
    ColumnEntry& e = Entry(h);
    return DispatchIndexableType(e.type(), [&](auto tag) -> PositionList {
      using T = typename decltype(tag)::type;
      const Bounds<T> b = ClampBounds<T>(lo, hi);
      return b.empty ? PositionList{} : ScanSelect<T>(e, b);
    });
  }

 private:
  std::atomic<uint64_t> queries_observed_{0};
};

// ---------------------------------------------------------------------------
// kAdaptive — parallel vectorized database cracking (PVDC), and the base of
// the other cracking strategies
// ---------------------------------------------------------------------------

class CrackingExecutor : public ExecutorBase {
 public:
  using ExecutorBase::ExecutorBase;

  size_t CountRange(const ColumnHandle& h, KeyScalar lo, KeyScalar hi,
                    const QueryContext& qctx) override {
    ColumnEntry& e = Entry(h);
    return DispatchIndexableType(e.type(), [&](auto tag) -> size_t {
      using T = typename decltype(tag)::type;
      const Bounds<T> b = ClampBounds<T>(lo, hi);
      if (b.empty) return 0;
      return Select<T>(e, b, qctx, nullptr).size();
    });
  }

  KeyScalar SumRange(const ColumnHandle& h, KeyScalar lo, KeyScalar hi,
                     const QueryContext& qctx) override {
    ColumnEntry& e = Entry(h);
    return DispatchIndexableType(e.type(), [&](auto tag) -> KeyScalar {
      using T = typename decltype(tag)::type;
      const Bounds<T> b = ClampBounds<T>(lo, hi);
      if (b.empty) return WrapSum<T>(0);
      std::shared_ptr<CrackerColumn<T>> cracker;
      const PositionRange r = Select<T>(e, b, qctx, &cracker);
      return WrapSum<T>(cracker->SumRange(r));
    });
  }

  PositionList SelectRowIds(const ColumnHandle& h, KeyScalar lo, KeyScalar hi,
                            const QueryContext& qctx) override {
    ColumnEntry& e = Entry(h);
    return DispatchIndexableType(e.type(), [&](auto tag) -> PositionList {
      using T = typename decltype(tag)::type;
      const Bounds<T> b = ClampBounds<T>(lo, hi);
      if (b.empty) return {};
      std::shared_ptr<CrackerColumn<T>> cracker;
      const PositionRange r = Select<T>(e, b, qctx, &cracker);
      return cracker->FetchRowIds(r);
    });
  }

  /// Cracked late reconstruction: the project operator reads rowids
  /// straight out of the cracker column under piece read latches, without
  /// materializing a position list.
  KeyScalar ProjectSum(const ColumnHandle& where_column,
                       const ColumnHandle& project_column, KeyScalar low,
                       KeyScalar high, const QueryContext& qctx) override {
    ColumnEntry& we = Entry(where_column);
    ColumnEntry& pe = Entry(project_column);
    CheckSameTable(we, pe);
    return DispatchIndexableType(we.type(), [&](auto wtag) -> KeyScalar {
      using W = typename decltype(wtag)::type;
      const Bounds<W> b = ClampBounds<W>(low, high);
      return DispatchIndexableType(pe.type(), [&](auto ptag) -> KeyScalar {
        using P = typename decltype(ptag)::type;
        if (b.empty) return WrapSum<P>(0);
        std::shared_ptr<CrackerColumn<W>> cracker;
        const PositionRange r = Select<W>(we, b, qctx, &cracker);
        const Column<P>& proj = *pe.runtime<P>().base;
        const size_t n = proj.size();
        typename KeyTraits<P>::Sum sum = 0;
        cracker->ScanRange(r, [&](W, RowId rid) {
          P v{};
          if (rid < n) {
            v = proj[rid];
          } else if (!AppendedValueFor<P>(pe, rid, &v)) {
            return;  // appended on the WHERE column only; no value here
          }
          sum += static_cast<typename KeyTraits<P>::Sum>(v);
        });
        return WrapSum<P>(sum);
      });
    });
  }

  /// Shared scan over an adaptive index: crack the UNION of the requested
  /// bounds once (one piece-boundary refinement, one pending merge), then
  /// carve every request's count out of a single scan of the resulting
  /// position range. Bit-equal to per-request CountRange calls — counting
  /// is by value, and merging pending rows for the union is merging a
  /// superset of what each request would have merged.
  std::vector<uint64_t> CountRangeBatch(
      const ColumnHandle& h,
      const std::vector<std::pair<KeyScalar, KeyScalar>>& ranges,
      const QueryContext& qctx) override {
    if (ranges.size() < 2) {
      return QueryExecutor::CountRangeBatch(h, ranges, qctx);
    }
    static obs::Counter& batch_ranges =
        obs::MetricsRegistry::Global().GetCounter("holix_batch_ranges_total");
    batch_ranges.Inc(ranges.size());
    ColumnEntry& e = Entry(h);
    return DispatchIndexableType(
        e.type(), [&](auto tag) -> std::vector<uint64_t> {
          using T = typename decltype(tag)::type;
          std::vector<Bounds<T>> bs;
          bs.reserve(ranges.size());
          Bounds<T> u{};
          bool any = false;
          for (const auto& [lo, hi] : ranges) {
            const Bounds<T> b = ClampBounds<T>(lo, hi);
            if (!b.empty) {
              if (!any) {
                u = b;
                any = true;
              } else {
                if (KeyTraits<T>::Less(b.lo, u.lo)) u.lo = b.lo;
                // The wider high is the larger value; at a tie the closed
                // bound covers the open one.
                if (KeyTraits<T>::Less(u.hi, b.hi) ||
                    (!KeyTraits<T>::Less(b.hi, u.hi) && b.closed_high)) {
                  u.hi = b.hi;
                  u.closed_high = u.closed_high || b.closed_high;
                }
              }
            }
            bs.push_back(b);
          }
          if (!any) return std::vector<uint64_t>(ranges.size(), 0);
          // Adaptive admission: the union spans every requested range PLUS
          // the gaps between them. On a converged column the per-range
          // indexed probes are cheaper than one wide union scan — estimate
          // both from the current piece boundaries and fall back to the
          // per-range path (bit-equal by construction) when coalescing
          // would lose. An uncracked column always coalesces: estimates
          // are column-sized either way and the union cracks only once.
          if (auto est =
                  e.runtime<T>().cracker.load(std::memory_order_acquire)) {
            size_t per_range = 0;
            for (const Bounds<T>& b : bs) {
              if (!b.empty) {
                per_range += est->EstimateRange(b.lo, b.hi, b.closed_high);
              }
            }
            if (per_range < est->EstimateRange(u.lo, u.hi, u.closed_high)) {
              static obs::Counter& skips =
                  obs::MetricsRegistry::Global().GetCounter(
                      "holix_batch_admission_skips_total");
              skips.Inc();
              return QueryExecutor::CountRangeBatch(h, ranges, qctx);
            }
          }
          std::shared_ptr<CrackerColumn<T>> cracker;
          const PositionRange r = Select<T>(e, u, qctx, &cracker);
          std::vector<uint64_t> counts(ranges.size(), 0);
          cracker->ScanRange(r, [&](T v, RowId) {
            for (size_t k = 0; k < bs.size(); ++k) {
              const Bounds<T>& b = bs[k];
              if (b.empty) continue;
              const bool hit =
                  !KeyTraits<T>::Less(v, b.lo) &&
                  (b.closed_high ? !KeyTraits<T>::Less(b.hi, v)
                                 : KeyTraits<T>::Less(v, b.hi));
              if (hit) ++counts[k];
            }
          });
          return counts;
        });
  }

  RowId Insert(const ColumnHandle& h, KeyScalar value,
               const QueryContext& qctx) override {
    ColumnEntry& e = Entry(h);
    return DispatchIndexableType(e.type(), [&](auto tag) -> RowId {
      using T = typename decltype(tag)::type;
      T v{};
      if (!KeyFromScalar<T>(value, &v)) {
        throw std::out_of_range("insert value out of column domain: " +
                                e.key());
      }
      auto cracker = EnsureCracker<T>(e, qctx);
      const RowId rid =
          ctx_.next_rowid->fetch_add(1, std::memory_order_relaxed);
      cracker->pending().AddInsert(v, rid);
      return rid;
    });
  }

  bool Delete(const ColumnHandle& h, KeyScalar value, const QueryContext& qctx,
              RowId* deleted_rid) override {
    ColumnEntry& e = Entry(h);
    return DispatchIndexableType(e.type(), [&](auto tag) -> bool {
      using T = typename decltype(tag)::type;
      T v{};
      if (!KeyFromScalar<T>(value, &v)) return false;
      auto cracker = EnsureCracker<T>(e, qctx);
      const CrackConfig cfg = QueryCrackConfig(qctx);
      // Resolve the rowid of one matching row: select the closed unit range
      // [v, v] (this is itself an index-refining access; the closed form
      // keeps the type's maximum key deletable) and take the first
      // qualifying rowid. A concurrent Ripple merge (holistic worker) may
      // shift positions between the select and the read, so verify and
      // retry.
      for (int attempt = 0; attempt < 8; ++attempt) {
        const PositionRange r = cracker->SelectRangeClosed(v, v, cfg);
        if (r.empty()) return false;
        bool found = false;
        RowId rid = 0;
        cracker->ScanRange({r.begin, r.begin + 1}, [&](T val, RowId rr) {
          if (KeyTraits<T>::Eq(val, v)) {
            rid = rr;
            found = true;
          }
        });
        if (found) {
          cracker->pending().AddDelete(v, rid);
          if (deleted_rid != nullptr) *deleted_rid = rid;
          return true;
        }
      }
      return false;
    });
  }

 protected:
  /// A probed conjunct still refines its attribute's adaptive index: crack
  /// at the query bounds (Select without materialization), so repeated
  /// multi-predicate queries converge on every predicate column — and the
  /// holistic store keeps seeing the accesses (AfterSelect runs inside
  /// Select).
  void RefineHint(ColumnEntry& e, KeyScalar lo, KeyScalar hi,
                  const QueryContext& qctx) override {
    DispatchIndexableType(e.type(), [&](auto tag) {
      using T = typename decltype(tag)::type;
      const Bounds<T> b = ClampBounds<T>(lo, hi);
      if (b.empty) return;
      Select<T>(e, b, qctx, nullptr);
    });
  }

  /// The crack configuration of one select; overridden by kStochastic.
  virtual CrackConfig QueryCrackConfig(const QueryContext&) const {
    CrackConfig cfg;
    cfg.algo = ctx_.options->kernel;
    cfg.pool = ctx_.query_pool;
    cfg.parallel_threads = ctx_.options->user_threads;
    return cfg;
  }

  /// Runs after a fresh cracker column is published (under the entry's
  /// build_mu): kCCGI pre-partitions, kHolistic registers with the store.
  virtual void OnCrackerInstalled(ColumnEntry&, const QueryContext&) {}

  /// Runs after every cracked select (kHolistic syncs the stats store).
  virtual void AfterSelect(ColumnEntry&) {}

  template <typename T>
  std::shared_ptr<CrackerColumn<T>> EnsureCracker(ColumnEntry& e,
                                                  const QueryContext& qctx) {
    auto& rt = e.runtime<T>();
    if (auto c = rt.cracker.load(std::memory_order_acquire)) return c;
    std::lock_guard<std::mutex> lk(e.build_mu);
    if (auto c = rt.cracker.load(std::memory_order_acquire)) return c;
    // This copy is the investment the first query on an attribute pays in
    // adaptive indexing. Per-entry mutex: other attributes stay queryable.
    auto fresh = std::make_shared<CrackerColumn<T>>(e.key(), rt.base->values());
    rt.cracker.store(fresh, std::memory_order_release);
    OnCrackerInstalled(e, qctx);
    return fresh;
  }

  template <typename T>
  PositionRange Select(ColumnEntry& e, const Bounds<T>& b,
                       const QueryContext& qctx,
                       std::shared_ptr<CrackerColumn<T>>* out) {
    auto cracker = EnsureCracker<T>(e, qctx);
    const CrackConfig cfg = QueryCrackConfig(qctx);
    const PositionRange r = b.closed_high
                                ? cracker->SelectRangeClosed(b.lo, b.hi, cfg)
                                : cracker->SelectRange(b.lo, b.hi, cfg);
    AfterSelect(e);
    if (out != nullptr) *out = std::move(cracker);
    return r;
  }
};

// ---------------------------------------------------------------------------
// kStochastic — PVDC plus data-driven random pre-cracks (PVSDC)
// ---------------------------------------------------------------------------

class StochasticExecutor : public CrackingExecutor {
 public:
  using CrackingExecutor::CrackingExecutor;

 protected:
  CrackConfig QueryCrackConfig(const QueryContext& qctx) const override {
    CrackConfig cfg = CrackingExecutor::QueryCrackConfig(qctx);
    cfg.stochastic = true;
    cfg.rng = qctx.rng != nullptr ? qctx.rng
                                  : &ThreadLocalQueryRng(ctx_.options->seed);
    return cfg;
  }
};

// ---------------------------------------------------------------------------
// kCCGI — modified parallel chunked coarse-granular index
// ---------------------------------------------------------------------------

class CcgiExecutor : public CrackingExecutor {
 public:
  using CrackingExecutor::CrackingExecutor;

 protected:
  void OnCrackerInstalled(ColumnEntry& e, const QueryContext& qctx) override {
    const size_t chunks = ctx_.options->ccgi_chunks != 0
                              ? ctx_.options->ccgi_chunks
                              : ctx_.options->user_threads;
    DispatchIndexableType(e.type(), [&](auto tag) {
      using T = typename decltype(tag)::type;
      auto cracker = e.runtime<T>().cracker.load(std::memory_order_acquire);
      PreCrackEquiWidth(*cracker, chunks, QueryCrackConfig(qctx));
    });
  }
};

// ---------------------------------------------------------------------------
// kHolistic — PVDC for user queries + always-on holistic refinement
// ---------------------------------------------------------------------------

class HolisticExecutor : public CrackingExecutor {
 public:
  using CrackingExecutor::CrackingExecutor;

  void SeedPotential(const ColumnHandle& h) override {
    ColumnEntry& e = Entry(h);
    if (e.store_state.load(std::memory_order_acquire) !=
        StoreState::kUnregistered) {
      return;  // already known to the store
    }
    DispatchIndexableType(e.type(), [&](auto tag) {
      using T = typename decltype(tag)::type;
      std::lock_guard<std::mutex> lk(e.build_mu);
      auto& rt = e.runtime<T>();
      auto cracker = rt.cracker.load(std::memory_order_acquire);
      if (cracker == nullptr) {
        cracker =
            std::make_shared<CrackerColumn<T>>(e.key(), rt.base->values());
        rt.cracker.store(cracker, std::memory_order_release);
      }
      auto adapter =
          std::make_shared<CrackerAdaptiveIndex<T>>(std::move(cracker));
      RegisterWithStore(e, std::move(adapter), ConfigKind::kPotential);
    });
  }

 protected:
  void OnCrackerInstalled(ColumnEntry& e, const QueryContext&) override {
    DispatchIndexableType(e.type(), [&](auto tag) {
      using T = typename decltype(tag)::type;
      auto cracker = e.runtime<T>().cracker.load(std::memory_order_acquire);
      auto adapter =
          std::make_shared<CrackerAdaptiveIndex<T>>(std::move(cracker));
      RegisterWithStore(e, std::move(adapter), ConfigKind::kActual);
    });
  }

  /// The per-query stats-store sync, restructured so the common case is
  /// lock-free: configuration transitions (promotion, retirement) happen a
  /// bounded number of times per index, and weight refreshes for the
  /// access-counting strategies are amortized over kWeightRefreshPeriod
  /// queries. The access counters themselves live in CrackStats and are
  /// bumped atomically inside the cracker column, so LFU eviction and the
  /// W2/W3 weight formulas keep exact counts.
  void AfterSelect(ColumnEntry& e) override {
    StatsStore& store = ctx_.holistic->store();
    switch (e.store_state.load(std::memory_order_acquire)) {
      case StoreState::kOptimal:
      case StoreState::kUnregistered:
        return;
      case StoreState::kPotential: {
        // First user query on a seeded index: promote into C_actual. A
        // concurrent budget eviction may remove the entry between these
        // calls; TryKindOf treats that as unregistered instead of throwing.
        store.RecordQueryAccess(e.key());
        const auto kind = store.TryKindOf(e.key());
        e.store_state.store(
            kind.has_value() ? ToStoreState(*kind) : StoreState::kUnregistered,
            std::memory_order_release);
        return;
      }
      case StoreState::kActual:
        break;
    }
    const auto adapter = e.adapter.load(std::memory_order_acquire);
    if (adapter == nullptr) return;
    if (adapter->IsOptimal()) {
      if (store.UpdateAfterRefinement(e.key())) {  // retires into C_optimal
        static obs::Counter& retirements =
            obs::MetricsRegistry::Global().GetCounter(
                "holix_holistic_retirements_total");
        retirements.Inc();
      }
      e.store_state.store(StoreState::kOptimal, std::memory_order_release);
      return;
    }
    if (store.strategy() != Strategy::kW4 &&
        e.access_tick.fetch_add(1, std::memory_order_relaxed) %
                kWeightRefreshPeriod ==
            0) {
      store.RecordQueryAccess(e.key());
    }
  }

 private:
  static constexpr uint32_t kWeightRefreshPeriod = 64;

  void RegisterWithStore(ColumnEntry& e,
                         std::shared_ptr<AdaptiveIndex> adapter,
                         ConfigKind kind) {
    e.adapter.store(adapter, std::memory_order_release);
    std::vector<std::string> evicted;
    const bool ok =
        ctx_.holistic->store().Register(std::move(adapter), kind, &evicted);
    e.store_state.store(ok ? ToStoreState(kind) : StoreState::kUnregistered,
                        std::memory_order_release);
    // Budget evictions drop the victims' cracker columns; the store
    // already forgot them, so their next access rebuilds and re-registers.
    for (const auto& name : evicted) {
      ColumnHandle victim = ctx_.registry->FindByKey(name);
      if (victim.entry() != nullptr) victim.entry()->ResetIndexRuntime();
    }
  }
};

}  // namespace

std::vector<uint64_t> QueryExecutor::CountRangeBatch(
    const ColumnHandle& column,
    const std::vector<std::pair<KeyScalar, KeyScalar>>& ranges,
    const QueryContext& qctx) {
  static obs::Counter& batch_ranges =
      obs::MetricsRegistry::Global().GetCounter("holix_batch_ranges_total");
  batch_ranges.Inc(ranges.size());
  std::vector<uint64_t> counts;
  counts.reserve(ranges.size());
  for (const auto& [lo, hi] : ranges) {
    counts.push_back(static_cast<uint64_t>(CountRange(column, lo, hi, qctx)));
  }
  return counts;
}

RowId QueryExecutor::Insert(const ColumnHandle&, KeyScalar,
                            const QueryContext&) {
  throw std::logic_error("updates require a cracking mode");
}

bool QueryExecutor::Delete(const ColumnHandle&, KeyScalar,
                           const QueryContext&, RowId*) {
  throw std::logic_error("updates require a cracking mode");
}

void QueryExecutor::SeedPotential(const ColumnHandle&) {
  throw std::logic_error("potential indices require kHolistic mode");
}

std::unique_ptr<QueryExecutor> MakeQueryExecutor(ExecMode mode,
                                                 const EngineContext& ctx) {
  switch (mode) {
    case ExecMode::kScan:
      return std::make_unique<ScanExecutor>(ctx);
    case ExecMode::kOffline:
      return std::make_unique<OfflineExecutor>(ctx);
    case ExecMode::kOnline:
      return std::make_unique<OnlineExecutor>(ctx);
    case ExecMode::kAdaptive:
      return std::make_unique<CrackingExecutor>(ctx);
    case ExecMode::kStochastic:
      return std::make_unique<StochasticExecutor>(ctx);
    case ExecMode::kCCGI:
      return std::make_unique<CcgiExecutor>(ctx);
    case ExecMode::kHolistic:
      return std::make_unique<HolisticExecutor>(ctx);
  }
  throw std::invalid_argument("unknown ExecMode");
}

}  // namespace holix
