/// \file query_executor.h
/// \brief Per-mode query execution strategies over resolved column handles.
///
/// Each ExecMode is one strategy object implementing the four §3.1 operator
/// shapes (CountRange / SumRange / SelectRowIds / ProjectSum) plus the
/// update entry points, all over a ColumnHandle — the facade resolves names
/// once and the executors never hash a string or take a global mutex on the
/// query hot path. Executors are type-generic: they dispatch on the
/// handle's element type and run the typed cracker / sorted-index / scan
/// machinery (int32_t, int64_t and double).
///
/// Bounds and values cross this interface as KeyScalar (a tagged
/// int64-or-double), the same shape the wire protocol carries: the typed
/// path clamps each scalar into the column's domain with exact semantics —
/// an int64 bound against a double column goes through the "smallest
/// double >= v" conversion, a double bound against an integer column
/// through exact ceil/floor arithmetic, and an exclusive high at a type's
/// total-order maximum degrades to the closed bound [lo, Highest] (which is
/// what keeps rows holding max(T) — or the double NaN key — selectable).

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "engine/column_registry.h"
#include "engine/engine_options.h"
#include "engine/query_spec.h"
#include "storage/position_list.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace holix {

/// Shared engine state the executors operate on. Plain pointers; the
/// Database facade owns everything and outlives its executor.
struct EngineContext {
  const DatabaseOptions* options = nullptr;
  ColumnRegistry* registry = nullptr;
  ThreadPool* query_pool = nullptr;
  HolisticEngine* holistic = nullptr;       ///< Null unless kHolistic.
  SlotCpuMonitor* slot_monitor = nullptr;   ///< Null unless slot-monitored.
  std::atomic<uint64_t>* next_rowid = nullptr;
};

/// Per-call execution context. Sessions pass their private RNG so
/// stochastic pivots are deterministic per client; a null rng falls back to
/// a thread-local generator.
struct QueryContext {
  Rng* rng = nullptr;
};

/// One execution strategy (one ExecMode). Thread-safe: many clients may
/// call into the same executor concurrently.
class QueryExecutor {
 public:
  virtual ~QueryExecutor() = default;

  /// Executes a declarative QuerySpec (see query_spec.h for semantics).
  ///
  /// One predicate + one result dispatches straight onto the mode-native
  /// operator below (the legacy primitives are shims over this). A
  /// conjunction is *planned*: predicates are ordered by estimated
  /// selectivity — cracker piece boundaries when an adaptive index exists,
  /// sorted-index counts when one is built, [min, max] rank interpolation
  /// otherwise — the most selective predicate drives the mode's select,
  /// and each remaining conjunct is applied either by sorted-positional
  /// merge against its own (index-refining) select or, when its estimated
  /// selectivity is high, by direct value probes of the base column; in
  /// cracking modes a probed predicate's index is still cracked at the
  /// query bounds so repetition keeps getting faster on every predicate
  /// column.
  ///
  /// Throws std::invalid_argument for an empty conjunction, an empty
  /// result list, a sum request without a column, or columns spanning
  /// several tables.
  virtual QueryResult Execute(const QuerySpec& spec,
                              const QueryContext& qctx) = 0;

  /// select count(*) where low <= column < high (in the column type's
  /// total order, after clamping the scalar bounds into its domain).
  virtual size_t CountRange(const ColumnHandle& column, KeyScalar low,
                            KeyScalar high, const QueryContext& qctx) = 0;

  /// Shared scan: answers many [low, high) count queries over ONE column in
  /// a single pass. counts[i] answers ranges[i], bit-equal to calling
  /// CountRange per range. The base implementation loops; the scan strategy
  /// evaluates every range during one sequential read, and the cracking
  /// strategies crack the *union* of the bounds once and carve the
  /// per-request counts out of that one piece-range scan — the event-loop
  /// server's coalescer batches concurrent same-column requests into this.
  virtual std::vector<uint64_t> CountRangeBatch(
      const ColumnHandle& column,
      const std::vector<std::pair<KeyScalar, KeyScalar>>& ranges,
      const QueryContext& qctx);

  /// select sum(column) where low <= column < high. The result carrier
  /// follows the column type: int64 for integer columns, double for double
  /// columns (a sum over rows holding the NaN key is NaN).
  virtual KeyScalar SumRange(const ColumnHandle& column, KeyScalar low,
                             KeyScalar high, const QueryContext& qctx) = 0;

  /// Materializes qualifying rowids.
  virtual PositionList SelectRowIds(const ColumnHandle& column, KeyScalar low,
                                    KeyScalar high,
                                    const QueryContext& qctx) = 0;

  /// select sum(project) where low <= where < high (late reconstruction).
  /// Both handles must belong to the same table; the result carrier
  /// follows the PROJECT column's type.
  virtual KeyScalar ProjectSum(const ColumnHandle& where_column,
                               const ColumnHandle& project_column,
                               KeyScalar low, KeyScalar high,
                               const QueryContext& qctx) = 0;

  /// Pending-queue insert; cracking modes only (throws otherwise). A
  /// double-carrier value against an integer column must be integral and
  /// in-domain, or std::out_of_range is thrown.
  virtual RowId Insert(const ColumnHandle& column, KeyScalar value,
                       const QueryContext& qctx);

  /// Pending-queue delete of one matching row; cracking modes only. When
  /// \p deleted_rid is non-null and a row was deleted, receives its rowid
  /// (the durability layer logs the resolved row so replay deletes exactly
  /// the row the original call removed).
  virtual bool Delete(const ColumnHandle& column, KeyScalar value,
                      const QueryContext& qctx,
                      RowId* deleted_rid = nullptr);

  /// Mode-specific up-front work (offline indexing sorts every column).
  virtual void Prepare() {}

  /// Registers a speculative index into C_potential (kHolistic only).
  virtual void SeedPotential(const ColumnHandle& column);
};

/// Builds the strategy object for \p mode.
std::unique_ptr<QueryExecutor> MakeQueryExecutor(ExecMode mode,
                                                 const EngineContext& ctx);

}  // namespace holix
