/// \file query_spec.h
/// \brief QuerySpec: the declarative query description every read-side
/// entry point of the engine reduces to.
///
/// A QuerySpec names one target table, a *conjunction* of 1..N range
/// predicates — each `(ColumnHandle, KeyScalar low, KeyScalar high)` with
/// the engine's usual half-open `[low, high)` semantics and closed-bound
/// degradation at the total-order top — and one or more result requests
/// (count, per-column sums, materialized rowids). The former per-primitive
/// facade calls (`CountRange*`, `SumRange*`, `SelectRowIds*`,
/// `ProjectSum*` in all their int64/F64/Scalar clothes) are thin shims
/// building one-predicate specs; multi-predicate specs open the paper's
/// own TPC-H Q6 shape — conjunctive ranges over `l_shipdate`,
/// `l_discount`, `l_quantity` — on the adaptive-indexing hot path, where
/// every predicate cracks its own index as a side effect (holistic
/// refinement keeps working per attribute, exactly as in the paper).
///
/// Result semantics (pinned by query_spec_test):
///  * With one predicate and one result the spec executes on the mode's
///    native operator — bit-for-bit the legacy primitive, including the
///    cracked SumRange fast path and the mode's native rowid order.
///  * Every other shape (N >= 2 predicates, or several results) first
///    materializes the qualifying row set, sorted ascending by rowid, and
///    computes each aggregate positionally through the base column in that
///    order — so counts, rowids AND double sums are bit-identical across
///    all seven execution modes and across predicate orderings.
///  * Rows appended by a single-column Insert participate on the column
///    they were inserted into: their values live in that column's pending
///    registry (which survives Ripple merges), and the positional paths —
///    probe filters, materialized sums — consult it for rowids at or past
///    the base row count. A row qualifies iff EVERY predicate column holds
///    a qualifying value for it, so a conjunction naturally excludes rows
///    inserted into only one of its predicate columns, while a
///    single-predicate spec (any result shape) sees them exactly like the
///    legacy primitives do. Count, rowids and sums always agree about
///    which rows qualify.

#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "engine/column_registry.h"
#include "storage/position_list.h"
#include "storage/types.h"

namespace holix {

/// One conjunct: low <= column < high in the column type's total order
/// (scalar bounds clamp exactly into the column domain; an exclusive high
/// at the order's top degrades to the closed bound, as everywhere else).
struct RangePredicate {
  ColumnHandle column;
  KeyScalar low;
  KeyScalar high;
};

/// What a query should produce from the qualifying rows.
enum class ResultRequest : uint8_t {
  kCount = 0,       ///< Number of qualifying rows.
  kSum = 1,         ///< Sum of a column over the qualifying rows.
  kRowIds = 2,      ///< Materialized qualifying rowids.
  kProjectSum = 3,  ///< Alias of kSum kept for operator-shape symmetry:
                    ///< "select on A, project-aggregate B" (§3.1).
};

/// One requested result. kSum/kProjectSum need `column` (any column of the
/// target table — a predicate column or not); kCount/kRowIds ignore it.
struct ResultSpec {
  ResultRequest kind = ResultRequest::kCount;
  ColumnHandle column;
};

/// A declarative query: target table (implied by the predicate columns,
/// which must all belong to one table), conjunction, result requests.
/// Build directly or through the fluent helpers:
///
///   QuerySpec spec;
///   spec.Where(h_shipdate, date_lo, date_hi)
///       .Where(h_discount, 0.05, 0.07000000000000001)
///       .Where(h_quantity, INT64_MIN, 24)
///       .Count()
///       .Sum(h_price)
///       .RowIds();
///   QueryResult r = db.Execute(spec);
struct QuerySpec {
  std::vector<RangePredicate> predicates;
  std::vector<ResultSpec> results;

  QuerySpec& Where(ColumnHandle column, KeyScalar low, KeyScalar high) {
    predicates.push_back({std::move(column), low, high});
    return *this;
  }
  QuerySpec& Count() {
    results.push_back({ResultRequest::kCount, {}});
    return *this;
  }
  QuerySpec& Sum(ColumnHandle column) {
    results.push_back({ResultRequest::kSum, std::move(column)});
    return *this;
  }
  QuerySpec& RowIds() {
    results.push_back({ResultRequest::kRowIds, {}});
    return *this;
  }
  QuerySpec& ProjectSum(ColumnHandle column) {
    results.push_back({ResultRequest::kProjectSum, std::move(column)});
    return *this;
  }

  /// The one-predicate spec the legacy facade primitives reduce to.
  static QuerySpec Single(ColumnHandle column, KeyScalar low, KeyScalar high,
                          ResultSpec result) {
    QuerySpec spec;
    spec.predicates.push_back({std::move(column), low, high});
    spec.results.push_back(std::move(result));
    return spec;
  }
};

/// The answer to one QuerySpec. `values[i]` answers `spec.results[i]`:
/// kCount and kRowIds carry the qualifying-row count as an i64 scalar;
/// kSum/kProjectSum carry the sum in the summed column's carrier type
/// (double columns sum to f64). `rowids` is filled when any kRowIds was
/// requested (sorted ascending except on the one-predicate/one-result
/// legacy path, which keeps the mode's native order).
struct QueryResult {
  std::vector<KeyScalar> values;
  PositionList rowids;
};

}  // namespace holix
