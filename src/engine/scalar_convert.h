/// \file scalar_convert.h
/// \brief KeyScalar -> column key type conversion, shared by the executors
/// (update entry points) and the durability layer (WAL rank computation —
/// both must apply the exact same conversion or a replayed update would
/// diverge from the one originally applied).

#pragma once

#include <cmath>
#include <limits>
#include <type_traits>

#include "storage/types.h"

namespace holix {

/// Converts an update value into column type T. Integer columns accept an
/// int64 carrier in domain, or a double carrier that is integral and in
/// domain; double columns accept anything (canonicalized — any NaN becomes
/// the NaN key, -0.0 becomes +0.0). \return false when unrepresentable.
template <typename T>
bool KeyFromScalar(KeyScalar v, T* out) {
  if constexpr (std::is_same_v<T, double>) {
    *out = KeyTraits<double>::Canonical(v.AsF64());
    return true;
  } else {
    if (v.is_f64()) {
      const double d = v.d;
      if (std::isnan(d) || std::floor(d) != d) return false;
      if (d < static_cast<double>(std::numeric_limits<T>::min()) ||
          d >= std::ldexp(1.0, sizeof(T) * 8 - 1)) {
        return false;
      }
      *out = static_cast<T>(d);
      return true;
    }
    if (v.i < std::numeric_limits<T>::min() ||
        v.i > std::numeric_limits<T>::max()) {
      return false;
    }
    *out = static_cast<T>(v.i);
    return true;
  }
}

}  // namespace holix
