#include "engine/session.h"

#include <memory>
#include <utility>

#include "engine/database.h"

namespace holix {

ColumnHandle Session::Handle(const std::string& table,
                             const std::string& column) {
  const std::string key = ColumnRegistry::Key(table, column);
  auto it = handles_.find(key);
  if (it != handles_.end() && it->second.valid()) return it->second;
  ColumnHandle h = db_->Resolve(table, column);
  handles_[key] = h;
  return h;
}

QueryResult Session::Execute(const QuerySpec& spec) {
  return db_->Execute(spec, QueryContext{&rng_});
}

size_t Session::CountRange(const ColumnHandle& column, int64_t low,
                           int64_t high) {
  return db_->CountRange(column, low, high, QueryContext{&rng_});
}

int64_t Session::SumRange(const ColumnHandle& column, int64_t low,
                          int64_t high) {
  return db_->SumRange(column, low, high, QueryContext{&rng_});
}

PositionList Session::SelectRowIds(const ColumnHandle& column, int64_t low,
                                   int64_t high) {
  return db_->SelectRowIds(column, low, high, QueryContext{&rng_});
}

int64_t Session::ProjectSum(const ColumnHandle& where_column,
                            const ColumnHandle& project_column, int64_t low,
                            int64_t high) {
  return db_->ProjectSum(where_column, project_column, low, high,
                         QueryContext{&rng_});
}

RowId Session::Insert(const ColumnHandle& column, int64_t value) {
  return db_->Insert(column, value, QueryContext{&rng_});
}

bool Session::Delete(const ColumnHandle& column, int64_t value) {
  return db_->Delete(column, value, QueryContext{&rng_});
}

size_t Session::CountRangeScalar(const ColumnHandle& column, KeyScalar low,
                                 KeyScalar high) {
  return db_->CountRangeScalar(column, low, high, QueryContext{&rng_});
}

KeyScalar Session::SumRangeScalar(const ColumnHandle& column, KeyScalar low,
                                  KeyScalar high) {
  return db_->SumRangeScalar(column, low, high, QueryContext{&rng_});
}

PositionList Session::SelectRowIdsScalar(const ColumnHandle& column,
                                         KeyScalar low, KeyScalar high) {
  return db_->SelectRowIdsScalar(column, low, high, QueryContext{&rng_});
}

KeyScalar Session::ProjectSumScalar(const ColumnHandle& where_column,
                                    const ColumnHandle& project_column,
                                    KeyScalar low, KeyScalar high) {
  return db_->ProjectSumScalar(where_column, project_column, low, high,
                               QueryContext{&rng_});
}

RowId Session::InsertScalar(const ColumnHandle& column, KeyScalar value) {
  return db_->InsertScalar(column, value, QueryContext{&rng_});
}

bool Session::DeleteScalar(const ColumnHandle& column, KeyScalar value) {
  return db_->DeleteScalar(column, value, QueryContext{&rng_});
}

size_t Session::CountRangeF64(const ColumnHandle& column, double low,
                              double high) {
  return db_->CountRangeF64(column, low, high, QueryContext{&rng_});
}

double Session::SumRangeF64(const ColumnHandle& column, double low,
                            double high) {
  return db_->SumRangeF64(column, low, high, QueryContext{&rng_});
}

PositionList Session::SelectRowIdsF64(const ColumnHandle& column, double low,
                                      double high) {
  return db_->SelectRowIdsF64(column, low, high, QueryContext{&rng_});
}

double Session::ProjectSumF64(const ColumnHandle& where_column,
                              const ColumnHandle& project_column, double low,
                              double high) {
  return db_->ProjectSumF64(where_column, project_column, low, high,
                            QueryContext{&rng_});
}

RowId Session::InsertF64(const ColumnHandle& column, double value) {
  return db_->InsertF64(column, value, QueryContext{&rng_});
}

bool Session::DeleteF64(const ColumnHandle& column, double value) {
  return db_->DeleteF64(column, value, QueryContext{&rng_});
}

std::future<size_t> Session::SubmitCountRange(ColumnHandle column,
                                              int64_t low, int64_t high) {
  Database* db = db_;
  auto task = std::make_shared<std::packaged_task<size_t()>>(
      // Thread-local pivot RNG on the pool thread: the session RNG is not
      // shared across threads.
      [db, column = std::move(column), low, high] {
        return db->CountRange(column, low, high, QueryContext{});
      });
  std::future<size_t> fut = task->get_future();
  db_->client_pool().Submit([task] { (*task)(); });
  return fut;
}

std::future<QueryResult> Session::SubmitExecute(QuerySpec spec) {
  Database* db = db_;
  auto task = std::make_shared<std::packaged_task<QueryResult()>>(
      [db, spec = std::move(spec)] { return db->Execute(spec); });
  std::future<QueryResult> fut = task->get_future();
  db_->client_pool().Submit([task] { (*task)(); });
  return fut;
}

void Session::SubmitRaw(std::function<void()> work) {
  db_->client_pool().Submit(std::move(work));
}

std::future<int64_t> Session::SubmitSumRange(ColumnHandle column, int64_t low,
                                             int64_t high) {
  Database* db = db_;
  auto task = std::make_shared<std::packaged_task<int64_t()>>(
      [db, column = std::move(column), low, high] {
        return db->SumRange(column, low, high, QueryContext{});
      });
  std::future<int64_t> fut = task->get_future();
  db_->client_pool().Submit([task] { (*task)(); });
  return fut;
}

}  // namespace holix
