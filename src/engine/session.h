/// \file session.h
/// \brief Per-client query sessions (§5.8's concurrent-client model).
///
/// A Session is how one client talks to the engine: it caches resolved
/// ColumnHandles (names are hashed once per session, not once per query),
/// carries a private RNG so stochastic pivots are deterministic per client,
/// and offers an async Submit* path that executes queries on the database's
/// client pool — which is what the harness and fig17 use to model many
/// concurrent clients without spawning raw threads per run.
///
/// Thread model: one session belongs to one client. The synchronous calls
/// must not race each other; Submit* hands the query to a pool thread and
/// uses thread-local pivot RNG there, so a client may overlap async queries
/// with its own synchronous work.

#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <string>
#include <unordered_map>

#include "engine/column_registry.h"
#include "engine/engine_options.h"
#include "engine/query_spec.h"
#include "storage/position_list.h"
#include "util/rng.h"

namespace holix {

class Database;

/// One client's connection to a Database. Movable, not copyable; must not
/// outlive the database.
class Session {
 public:
  Session(Session&&) = default;
  Session& operator=(Session&&) = default;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Resolves (and caches) the handle of an attribute. Later calls with
  /// the same names return the cached handle without consulting the
  /// registry. Throws std::out_of_range when the attribute doesn't exist.
  ColumnHandle Handle(const std::string& table, const std::string& column);

  // --- Declarative query API (query_spec.h) ------------------------------

  /// Executes a QuerySpec with this session's RNG driving stochastic
  /// pivots. Handles inside the spec come from Handle()/Resolve.
  QueryResult Execute(const QuerySpec& spec);

  // --- Synchronous query API (handle-based hot path) ---------------------

  size_t CountRange(const ColumnHandle& column, int64_t low, int64_t high);
  int64_t SumRange(const ColumnHandle& column, int64_t low, int64_t high);
  PositionList SelectRowIds(const ColumnHandle& column, int64_t low,
                            int64_t high);
  int64_t ProjectSum(const ColumnHandle& where_column,
                     const ColumnHandle& project_column, int64_t low,
                     int64_t high);
  RowId Insert(const ColumnHandle& column, int64_t value);
  /// \return true when a matching row was found (see Database::Delete).
  bool Delete(const ColumnHandle& column, int64_t value);

  // --- Typed-scalar forms (what the network server drives) ---------------

  size_t CountRangeScalar(const ColumnHandle& column, KeyScalar low,
                          KeyScalar high);
  /// Result carrier follows the column type (double columns sum to f64).
  KeyScalar SumRangeScalar(const ColumnHandle& column, KeyScalar low,
                           KeyScalar high);
  PositionList SelectRowIdsScalar(const ColumnHandle& column, KeyScalar low,
                                  KeyScalar high);
  KeyScalar ProjectSumScalar(const ColumnHandle& where_column,
                             const ColumnHandle& project_column,
                             KeyScalar low, KeyScalar high);
  RowId InsertScalar(const ColumnHandle& column, KeyScalar value);
  bool DeleteScalar(const ColumnHandle& column, KeyScalar value);

  // --- Double forms (F64-suffixed; see Database) -------------------------

  size_t CountRangeF64(const ColumnHandle& column, double low, double high);
  double SumRangeF64(const ColumnHandle& column, double low, double high);
  PositionList SelectRowIdsF64(const ColumnHandle& column, double low,
                               double high);
  double ProjectSumF64(const ColumnHandle& where_column,
                       const ColumnHandle& project_column, double low,
                       double high);
  RowId InsertF64(const ColumnHandle& column, double value);
  bool DeleteF64(const ColumnHandle& column, double value);

  // --- Name-based conveniences (resolve through the session cache) -------

  size_t CountRange(const std::string& table, const std::string& column,
                    int64_t low, int64_t high) {
    return CountRange(Handle(table, column), low, high);
  }
  int64_t SumRange(const std::string& table, const std::string& column,
                   int64_t low, int64_t high) {
    return SumRange(Handle(table, column), low, high);
  }
  RowId Insert(const std::string& table, const std::string& column,
               int64_t value) {
    return Insert(Handle(table, column), value);
  }
  bool Delete(const std::string& table, const std::string& column,
              int64_t value) {
    return Delete(Handle(table, column), value);
  }
  size_t CountRangeF64(const std::string& table, const std::string& column,
                       double low, double high) {
    return CountRangeF64(Handle(table, column), low, high);
  }
  double SumRangeF64(const std::string& table, const std::string& column,
                     double low, double high) {
    return SumRangeF64(Handle(table, column), low, high);
  }
  RowId InsertF64(const std::string& table, const std::string& column,
                  double value) {
    return InsertF64(Handle(table, column), value);
  }
  bool DeleteF64(const std::string& table, const std::string& column,
                 double value) {
    return DeleteF64(Handle(table, column), value);
  }

  // --- Asynchronous query API --------------------------------------------

  /// Submits the query to the database's client pool and returns a future.
  /// The session (and database) must outlive the future's completion.
  std::future<size_t> SubmitCountRange(ColumnHandle column, int64_t low,
                                       int64_t high);
  /// Async QuerySpec execution (the spec is copied into the task; a pool
  /// thread uses its thread-local pivot RNG, like every Submit*).
  std::future<QueryResult> SubmitExecute(QuerySpec spec);
  std::future<int64_t> SubmitSumRange(ColumnHandle column, int64_t low,
                                      int64_t high);

  /// Completion-hook submission: hands \p work to the database's client
  /// pool as-is. This is how the network server attaches continuations
  /// (execute query -> encode -> write socket) without parking a thread on
  /// a future per in-flight request; the closure runs on a pool thread, so
  /// it must not touch this session's handle cache or RNG. The database
  /// must outlive the closure's completion.
  void SubmitRaw(std::function<void()> work);

  /// The session's private RNG (stochastic pivot source).
  Rng& rng() { return rng_; }
  /// Session id (unique per database).
  uint64_t id() const { return id_; }
  /// The owning database.
  Database& database() { return *db_; }

 private:
  friend class Database;
  Session(Database* db, uint64_t id, uint64_t seed)
      : db_(db), id_(id), rng_(seed) {}

  Database* db_;
  uint64_t id_;
  Rng rng_;
  std::unordered_map<std::string, ColumnHandle> handles_;
};

}  // namespace holix
