#include "harness/report.h"

#include <algorithm>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <numeric>

namespace holix {

void ReportTable::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void ReportTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void ReportTable::Print() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::printf("\n== %s ==\n", title_.c_str());
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      std::printf("%-*s  ", static_cast<int>(widths[c]), cell.c_str());
    }
    std::printf("\n");
  };
  print_row(header_);
  size_t total_width = 2 * widths.size();
  for (size_t w : widths) total_width += w;
  std::printf("%s\n", std::string(total_width, '-').c_str());
  for (const auto& row : rows_) print_row(row);
}

bool ReportTable::SaveCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  auto write_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ',';
      const std::string& cell = row[c];
      if (cell.find_first_of(",\"\n\r") != std::string::npos) {
        out << '"';
        for (char ch : cell) {
          if (ch == '"') out << '"';
          out << ch;
        }
        out << '"';
      } else {
        out << cell;
      }
    }
    out << '\n';
  };
  write_row(header_);
  for (const auto& row : rows_) write_row(row);
  out.flush();
  return out.good();
}

namespace {

/// JSON string escaping (quotes, backslashes, control characters).
void WriteJsonString(std::ofstream& out, const std::string& s) {
  out << '"';
  for (char ch : s) {
    switch (ch) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\r':
        out << "\\r";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out << buf;
        } else {
          out << ch;
        }
    }
  }
  out << '"';
}

void WriteJsonStringArray(std::ofstream& out,
                          const std::vector<std::string>& row) {
  out << '[';
  for (size_t c = 0; c < row.size(); ++c) {
    if (c > 0) out << ", ";
    WriteJsonString(out, row[c]);
  }
  out << ']';
}

}  // namespace

bool ReportTable::SaveJson(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n  \"title\": ";
  WriteJsonString(out, title_);
  out << ",\n  \"generated_unix\": " << static_cast<long long>(std::time(nullptr));
  out << ",\n  \"header\": ";
  WriteJsonStringArray(out, header_);
  out << ",\n  \"rows\": [";
  for (size_t r = 0; r < rows_.size(); ++r) {
    out << (r == 0 ? "\n    " : ",\n    ");
    WriteJsonStringArray(out, rows_[r]);
  }
  out << "\n  ]\n}\n";
  out.flush();
  return out.good();
}

std::string FormatSeconds(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f", seconds);
  return buf;
}

std::string FormatDouble(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

double ResponseSeries::Total() const {
  return std::accumulate(latencies_.begin(), latencies_.end(), 0.0);
}

double ResponseSeries::CumulativeAt(size_t k) const {
  k = std::min(k, latencies_.size());
  return std::accumulate(latencies_.begin(), latencies_.begin() + k, 0.0);
}

std::vector<double> ResponseSeries::DecadeBreakdown() const {
  std::vector<double> buckets;
  size_t lo = 0;
  size_t hi = 1;
  while (lo < latencies_.size()) {
    const size_t end = std::min(hi, latencies_.size());
    buckets.push_back(std::accumulate(latencies_.begin() + lo,
                                      latencies_.begin() + end, 0.0));
    lo = end;
    hi = hi * 10;
  }
  return buckets;
}

std::vector<std::pair<size_t, double>> ResponseSeries::LogSpacedCurve()
    const {
  std::vector<std::pair<size_t, double>> curve;
  double running = 0;
  size_t next_mark = 1;
  size_t step_base = 1;
  for (size_t i = 0; i < latencies_.size(); ++i) {
    running += latencies_[i];
    if (i + 1 == next_mark || i + 1 == latencies_.size()) {
      curve.emplace_back(i + 1, running);
      if (next_mark >= 10 * step_base) step_base *= 10;
      if (next_mark == step_base) {
        next_mark = 2 * step_base;
      } else if (next_mark == 2 * step_base) {
        next_mark = 5 * step_base;
      } else {
        next_mark = 10 * step_base;
      }
    }
  }
  return curve;
}

}  // namespace holix
