/// \file report.h
/// \brief Experiment reporting: fixed-width tables, cumulative response
/// curves and the paper's 1/9/90/900 breakdowns.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace holix {

/// Fixed-width console table. Columns are sized to their widest cell.
class ReportTable {
 public:
  /// \param title printed above the table.
  explicit ReportTable(std::string title) : title_(std::move(title)) {}

  /// Sets the header row.
  void SetHeader(std::vector<std::string> header);

  /// Appends one data row (cells are pre-formatted strings).
  void AddRow(std::vector<std::string> row);

  /// Renders the table to stdout.
  void Print() const;

  /// Writes the table (header + rows) as RFC-4180 CSV.
  /// \return false when the file could not be opened or written.
  bool SaveCsv(const std::string& path) const;

  /// Writes the table as a JSON object:
  ///   {"title": ..., "generated_unix": ..., "header": [...],
  ///    "rows": [[...], ...]}
  /// (machine-readable bench output for perf trajectories).
  /// \return false when the file could not be opened or written.
  bool SaveJson(const std::string& path) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats seconds with 4 significant decimals.
std::string FormatSeconds(double seconds);

/// Formats a double with \p decimals digits.
std::string FormatDouble(double v, int decimals = 3);

/// Per-query timing series with the derived views the paper plots.
class ResponseSeries {
 public:
  /// Records the latency of the next query.
  void Add(double seconds) { latencies_.push_back(seconds); }

  /// Number of recorded queries.
  size_t size() const { return latencies_.size(); }

  /// Total (cumulative) response time.
  double Total() const;

  /// Cumulative response time after the first \p k queries.
  double CumulativeAt(size_t k) const;

  /// The paper's Fig. 6(b) breakdown: totals of queries [1], [2..10],
  /// [11..100], [101..1000], ... (decade buckets).
  std::vector<double> DecadeBreakdown() const;

  /// Cumulative curve sampled at log-spaced query counts (1, 2, 5, 10,
  /// 20, 50, ...), as (query_count, cumulative_seconds) pairs.
  std::vector<std::pair<size_t, double>> LogSpacedCurve() const;

  /// Raw latencies in execution order.
  const std::vector<double>& latencies() const { return latencies_; }

 private:
  std::vector<double> latencies_;
};

}  // namespace holix
