#include "harness/runner.h"

#include <atomic>
#include <thread>

#include "util/timer.h"

namespace holix {

std::vector<std::string> MakeAttributeNames(size_t n) {
  std::vector<std::string> names;
  names.reserve(n);
  for (size_t i = 0; i < n; ++i) names.push_back("a" + std::to_string(i));
  return names;
}

void LoadUniformTable(Database& db, const std::string& table,
                      size_t num_attrs, size_t rows, int64_t domain,
                      uint64_t seed) {
  const auto names = MakeAttributeNames(num_attrs);
  for (size_t i = 0; i < num_attrs; ++i) {
    db.LoadColumn(table, names[i],
                  GenerateUniformColumn(rows, domain, seed + i));
  }
}

RunResult RunWorkload(Database& db, const std::string& table,
                      const std::vector<std::string>& columns,
                      const std::vector<RangeQuery>& queries) {
  RunResult result;
  result.result_checksum = 0;
  for (const RangeQuery& q : queries) {
    Timer t;
    const size_t count = db.CountRange(table, columns[q.attr], q.low, q.high);
    result.series.Add(t.ElapsedSeconds());
    result.result_checksum += count;
  }
  return result;
}

double RunWorkloadConcurrent(Database& db, const std::string& table,
                             const std::vector<std::string>& columns,
                             const std::vector<RangeQuery>& queries,
                             size_t clients) {
  clients = std::max<size_t>(1, clients);
  std::atomic<size_t> next{0};
  Timer wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      for (;;) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= queries.size()) return;
        const RangeQuery& q = queries[i];
        db.CountRange(table, columns[q.attr], q.low, q.high);
      }
    });
  }
  for (auto& t : threads) t.join();
  return wall.ElapsedSeconds();
}

}  // namespace holix
