#include "harness/runner.h"

#include <atomic>
#include <future>
#include <utility>
#include <vector>

#include "util/timer.h"

namespace holix {

std::vector<std::string> MakeAttributeNames(size_t n) {
  std::vector<std::string> names;
  names.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::string name("a");
    name += std::to_string(i);
    names.push_back(std::move(name));
  }
  return names;
}

void LoadUniformTable(Database& db, const std::string& table,
                      size_t num_attrs, size_t rows, int64_t domain,
                      uint64_t seed) {
  const auto names = MakeAttributeNames(num_attrs);
  for (size_t i = 0; i < num_attrs; ++i) {
    db.LoadColumn(table, names[i],
                  GenerateUniformColumn(rows, domain, seed + i));
  }
}

void LoadUniformDoubleTable(Database& db, const std::string& table,
                            size_t num_attrs, size_t rows, int64_t domain,
                            uint64_t seed) {
  const auto names = MakeAttributeNames(num_attrs);
  for (size_t i = 0; i < num_attrs; ++i) {
    db.LoadColumn<double>(
        table, names[i], GenerateUniformDoubleColumn(rows, domain, seed + i));
  }
}

RunResult RunWorkloadF64(Database& db, const std::string& table,
                         const std::vector<std::string>& columns,
                         const std::vector<RangeQuery>& queries) {
  Session session = db.OpenSession();
  std::vector<ColumnHandle> handles;
  handles.reserve(columns.size());
  for (const auto& column : columns) {
    handles.push_back(session.Handle(table, column));
  }
  RunResult result;
  result.result_checksum = 0;
  for (const RangeQuery& q : queries) {
    const double lo = static_cast<double>(q.low) + 0.5;
    const double hi = static_cast<double>(q.high) + 0.5;
    Timer t;
    const size_t count = session.CountRangeF64(handles[q.attr], lo, hi);
    result.series.Add(t.ElapsedSeconds());
    result.result_checksum += count;
  }
  return result;
}

RunResult RunWorkload(Database& db, const std::string& table,
                      const std::vector<std::string>& columns,
                      const std::vector<RangeQuery>& queries) {
  // One client: resolve every attribute once, then measure the handle-based
  // hot path (no name hashing inside the timed region).
  Session session = db.OpenSession();
  std::vector<ColumnHandle> handles;
  handles.reserve(columns.size());
  for (const auto& column : columns) {
    handles.push_back(session.Handle(table, column));
  }
  RunResult result;
  result.result_checksum = 0;
  for (const RangeQuery& q : queries) {
    Timer t;
    const size_t count = session.CountRange(handles[q.attr], q.low, q.high);
    result.series.Add(t.ElapsedSeconds());
    result.result_checksum += count;
  }
  return result;
}

ConcurrentRunResult RunWorkloadConcurrentChecked(
    Database& db, const std::string& table,
    const std::vector<std::string>& columns,
    const std::vector<RangeQuery>& queries, size_t clients) {
  clients = std::max<size_t>(1, clients);
  // Each client is a session driven by the database's client pool — the
  // paper's §5.8 model of concurrent client traffic — instead of a raw
  // thread per run. Sessions and handles are resolved before the clock
  // starts; the timed region is pure query traffic.
  ThreadPool& pool = db.client_pool(clients);
  std::vector<Session> sessions;
  std::vector<std::vector<ColumnHandle>> handles(clients);
  sessions.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    sessions.push_back(db.OpenSession());
    handles[c].reserve(columns.size());
    for (const auto& column : columns) {
      handles[c].push_back(sessions[c].Handle(table, column));
    }
  }
  std::atomic<size_t> next{0};
  std::atomic<uint64_t> checksum{0};
  std::vector<std::future<void>> done;
  done.reserve(clients);
  Timer wall;
  for (size_t c = 0; c < clients; ++c) {
    auto driver = std::make_shared<std::packaged_task<void()>>(
        [&, c] {
          Session& session = sessions[c];
          const auto& hs = handles[c];
          uint64_t local = 0;
          for (;;) {
            const size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= queries.size()) break;
            const RangeQuery& q = queries[i];
            local += session.CountRange(hs[q.attr], q.low, q.high);
          }
          checksum.fetch_add(local, std::memory_order_relaxed);
        });
    done.push_back(driver->get_future());
    pool.Submit([driver] { (*driver)(); });
  }
  for (auto& f : done) f.get();
  const double seconds = wall.ElapsedSeconds();
  return {seconds, checksum.load(std::memory_order_relaxed)};
}

double RunWorkloadConcurrent(Database& db, const std::string& table,
                             const std::vector<std::string>& columns,
                             const std::vector<RangeQuery>& queries,
                             size_t clients) {
  return RunWorkloadConcurrentChecked(db, table, columns, queries, clients)
      .seconds;
}

}  // namespace holix
