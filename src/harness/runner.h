/// \file runner.h
/// \brief Shared experiment plumbing: loading synthetic tables into a
/// Database and replaying workloads with per-query timing.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/database.h"
#include "harness/report.h"
#include "workload/workload.h"

namespace holix {

/// Attribute names "a0".."a{n-1}".
std::vector<std::string> MakeAttributeNames(size_t n);

/// Loads \p num_attrs uniform int64 columns of \p rows values in
/// [0, domain) into table \p table of \p db (attribute i gets seed+i).
void LoadUniformTable(Database& db, const std::string& table,
                      size_t num_attrs, size_t rows, int64_t domain,
                      uint64_t seed);

/// Double-keyed variant of LoadUniformTable: genuine double columns
/// (integer grid + fractional offsets) over the same [0, domain) span.
void LoadUniformDoubleTable(Database& db, const std::string& table,
                            size_t num_attrs, size_t rows, int64_t domain,
                            uint64_t seed);

/// Result of replaying a workload.
struct RunResult {
  ResponseSeries series;     ///< Per-query latencies, in order.
  uint64_t result_checksum;  ///< Sum of per-query counts (correctness probe).
};

/// Replays \p queries against \p db sequentially through one session with
/// pre-resolved handles, timing each CountRange call.
RunResult RunWorkload(Database& db, const std::string& table,
                      const std::vector<std::string>& columns,
                      const std::vector<RangeQuery>& queries);

/// Replays \p queries through the double-bound facade (CountRangeF64):
/// each integer predicate becomes [low + 0.5, high + 0.5) so the bounds
/// are genuinely fractional, identically across modes — checksums stay
/// comparable to a scan oracle run over the same data and workload.
RunResult RunWorkloadF64(Database& db, const std::string& table,
                         const std::vector<std::string>& columns,
                         const std::vector<RangeQuery>& queries);

/// Result of a concurrent (multi-client) replay.
struct ConcurrentRunResult {
  double seconds;            ///< Total wall-clock seconds.
  uint64_t result_checksum;  ///< Sum of per-query counts across clients.
};

/// Replays \p queries with \p clients concurrent client sessions driven by
/// the database's client pool, each taking queries round-robin (the §5.8
/// concurrent-traffic model). The checksum is order-independent, so it is
/// comparable across client counts, modes, and transports (fig17_socket
/// matches it against the loopback-TCP run).
ConcurrentRunResult RunWorkloadConcurrentChecked(
    Database& db, const std::string& table,
    const std::vector<std::string>& columns,
    const std::vector<RangeQuery>& queries, size_t clients);

/// Back-compat shim: seconds only.
double RunWorkloadConcurrent(Database& db, const std::string& table,
                             const std::vector<std::string>& columns,
                             const std::vector<RangeQuery>& queries,
                             size_t clients);

}  // namespace holix
