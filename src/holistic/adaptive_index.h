/// \file adaptive_index.h
/// \brief Type-erased view of an adaptive index, as seen by the holistic
/// indexing machinery (§4.1).
///
/// Holistic indexing must manage indices over attributes of any type; this
/// interface exposes exactly what the tuning loop needs: piece statistics
/// (for Equation 1 and the W-strategies), the ability to crack at a random
/// pivot with try-latch semantics, and the index's storage footprint (for
/// the storage budget).

#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "cracking/crack_config.h"
#include "cracking/cracker_column.h"
#include "holistic/pivot_policy.h"
#include "util/cache_info.h"
#include "util/rng.h"

namespace holix {

/// Abstract adaptive index participating in the index space IS.
class AdaptiveIndex {
 public:
  virtual ~AdaptiveIndex() = default;

  /// Unique name (usually "table.attribute").
  virtual const std::string& name() const = 0;
  /// Cardinality N_A of the cracker column.
  virtual size_t NumRows() const = 0;
  /// Current number of pieces p_A.
  virtual size_t NumPieces() const = 0;
  /// Bytes per key element (|T|), used to express |L1| in elements.
  virtual size_t ElementSize() const = 0;
  /// Bytes materialized by this index (cracker column + rowids).
  virtual size_t SizeBytes() const = 0;
  /// Life counters (accesses f_I, exact hits f_Ih, cracks, ...).
  virtual const CrackStats& stats() const = 0;

  /// One refinement step: pick a random pivot in the attribute's domain and
  /// crack the piece it falls into, with try-latch semantics. Implementors
  /// must *not* block on busy pieces (Figure 3: the worker re-picks).
  /// \return true when a crack happened (piece free and pivot non-degenerate).
  virtual bool RefineAtRandomPivot(Rng& rng, const CrackConfig& cfg) = 0;

  /// Policy-driven refinement (§4.2 ablation): kRandom delegates to
  /// RefineAtRandomPivot; the piece-targeting policies pay a piece scan to
  /// aim the crack. Implementations with no piece information may fall
  /// back to the random policy.
  virtual bool RefineWithPolicy(PivotPolicy policy, Rng& rng,
                                const CrackConfig& cfg) {
    (void)policy;
    return RefineAtRandomPivot(rng, cfg);
  }

  /// Distance from the optimal index per Equation (1), accounted in BYTES:
  /// d(I, I_opt) = (N_A / p_A) * |T| - |L1| bytes, clamped at zero. The
  /// optimality crossing (average piece fits in L1) is identical to the
  /// element-count form, but byte accounting makes distances comparable
  /// across key widths — an int32 index and a double index at the same
  /// piece byte-size now weigh the same to the W1-W3 strategies, where
  /// element counts would overweight the narrow type 2:1.
  double DistanceToOptimal() const {
    if (NumRows() == 0) return 0.0;
    const double avg_piece_bytes =
        static_cast<double>(NumRows()) / static_cast<double>(NumPieces()) *
        static_cast<double>(ElementSize());
    const double d =
        avg_piece_bytes - static_cast<double>(L1DataCacheBytes());
    return d > 0 ? d : 0.0;
  }

  /// True when the index reached optimal status (d == 0).
  bool IsOptimal() const { return DistanceToOptimal() <= 0.0; }
};

/// Adapter binding a CrackerColumn<T> to the AdaptiveIndex interface.
template <typename T>
class CrackerAdaptiveIndex : public AdaptiveIndex {
 public:
  explicit CrackerAdaptiveIndex(std::shared_ptr<CrackerColumn<T>> column)
      : column_(std::move(column)) {}

  const std::string& name() const override { return column_->name(); }
  size_t NumRows() const override { return column_->size(); }
  size_t NumPieces() const override { return column_->NumPieces(); }
  size_t ElementSize() const override { return sizeof(T); }
  size_t SizeBytes() const override {
    return column_->size() * (sizeof(T) + sizeof(RowId));
  }
  const CrackStats& stats() const override { return column_->stats(); }

  bool RefineAtRandomPivot(Rng& rng, const CrackConfig& cfg) override {
    const T lo = column_->MinValue();
    const T hi = column_->MaxValue();
    if (!KeyTraits<T>::Less(lo, hi)) return false;
    // Sample in the column's native type: a detour through int64_t would
    // overflow for domains spanning most of T (e.g. int64 keys near the
    // extremes) and silently bias the pivot distribution; double domains
    // sample in value space with a rank-space fallback (see rng.h).
    const T pivot = SamplePivotBetween<T>(rng, lo, hi);
    return column_->TryRefineAt(pivot, cfg);
  }

  bool RefineWithPolicy(PivotPolicy policy, Rng& rng,
                        const CrackConfig& cfg) override {
    if (policy == PivotPolicy::kRandom) {
      return RefineAtRandomPivot(rng, cfg);
    }
    const size_t l1 = L1Elements(sizeof(T));
    const auto pivot = column_->SuggestExtremePiecePivot(
        policy == PivotPolicy::kBiggestPiece, rng,
        /*min_piece=*/std::max<size_t>(2, l1));
    if (!pivot.has_value()) return RefineAtRandomPivot(rng, cfg);
    return column_->TryRefineAt(*pivot, cfg);
  }

  /// The wrapped cracker column.
  const std::shared_ptr<CrackerColumn<T>>& column() const { return column_; }

 private:
  std::shared_ptr<CrackerColumn<T>> column_;
};

}  // namespace holix
