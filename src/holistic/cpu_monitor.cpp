#include "holistic/cpu_monitor.h"

#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

namespace holix {

ProcStatCpuMonitor::ProcStatCpuMonitor(double interval_seconds)
    : interval_seconds_(interval_seconds),
      total_cores_(std::thread::hardware_concurrency()) {
  if (total_cores_ == 0) total_cores_ = 1;
}

ProcStatCpuMonitor::CpuTimes ProcStatCpuMonitor::ReadProcStat() {
  CpuTimes t;
  std::ifstream f("/proc/stat");
  std::string line;
  if (!std::getline(f, line)) return t;
  std::istringstream iss(line);
  std::string cpu;
  iss >> cpu;  // "cpu"
  unsigned long long v = 0;
  unsigned long long fields[10] = {0};
  int i = 0;
  while (i < 10 && (iss >> v)) fields[i++] = v;
  // fields: user nice system idle iowait irq softirq steal guest guest_nice
  t.idle = fields[3] + fields[4];
  for (int k = 0; k < 8; ++k) t.total += fields[k];
  return t;
}

size_t ProcStatCpuMonitor::MeasureIdleCores() {
  const CpuTimes a = ReadProcStat();
  std::this_thread::sleep_for(std::chrono::duration<double>(interval_seconds_));
  const CpuTimes b = ReadProcStat();
  const unsigned long long total = b.total - a.total;
  if (total == 0) return 0;
  const double idle_fraction =
      static_cast<double>(b.idle - a.idle) / static_cast<double>(total);
  return static_cast<size_t>(idle_fraction * static_cast<double>(total_cores_) +
                             0.5);
}

SlotCpuMonitor::SlotCpuMonitor(size_t total_cores, double interval_seconds)
    : total_cores_(total_cores), interval_seconds_(interval_seconds) {}

size_t SlotCpuMonitor::MeasureIdleCores() {
  if (interval_seconds_ > 0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(interval_seconds_));
  }
  const size_t busy = busy_.load(std::memory_order_relaxed);
  return busy >= total_cores_ ? 0 : total_cores_ - busy;
}

}  // namespace holix
