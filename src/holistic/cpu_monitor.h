/// \file cpu_monitor.h
/// \brief CPU-utilization monitoring (§4.1/§4.2): how the holistic indexing
/// thread learns that hardware contexts are idle.
///
/// Two implementations share one interface:
///  * ProcStatCpuMonitor reads kernel statistics from /proc/stat over a
///    measurement interval, exactly the paper's mechanism (it uses 1 s
///    intervals; at laptop scale we default lower).
///  * SlotCpuMonitor is a deterministic accounting monitor: query operators
///    report the hardware contexts they occupy, and idle = total - busy.
///    This reproduces the paper's "uXwYxZ" thread-budget experiments
///    reliably and makes tests hermetic.

#pragma once

#include <atomic>
#include <cstddef>

namespace holix {

/// Abstract idle-core detector used by the tuning loop (Figure 2).
class CpuMonitor {
 public:
  virtual ~CpuMonitor() = default;

  /// Number of hardware contexts the monitor manages.
  virtual size_t TotalCores() const = 0;

  /// Performs one measurement (blocking for the monitor's interval, if it
  /// has one) and returns the number of idle hardware contexts.
  virtual size_t MeasureIdleCores() = 0;
};

/// Kernel-statistics monitor: compares /proc/stat snapshots across the
/// measurement interval and reports idle contexts = idle_fraction * cores.
class ProcStatCpuMonitor : public CpuMonitor {
 public:
  /// \param interval_seconds time between the two /proc/stat snapshots.
  explicit ProcStatCpuMonitor(double interval_seconds = 1.0);

  size_t TotalCores() const override { return total_cores_; }
  size_t MeasureIdleCores() override;

 private:
  struct CpuTimes {
    unsigned long long idle = 0;
    unsigned long long total = 0;
  };
  static CpuTimes ReadProcStat();

  double interval_seconds_;
  size_t total_cores_;
};

/// Deterministic slot-accounting monitor. User-query execution acquires
/// slots for the hardware contexts it uses; idle = total - busy.
class SlotCpuMonitor : public CpuMonitor {
 public:
  /// \param total_cores       hardware contexts available to the system.
  /// \param interval_seconds  optional sleep per measurement (0 = none),
  ///                          modelling the paper's monitoring cadence.
  explicit SlotCpuMonitor(size_t total_cores, double interval_seconds = 0.0);

  size_t TotalCores() const override { return total_cores_; }
  size_t MeasureIdleCores() override;

  /// Marks \p n contexts busy (query admission).
  void Acquire(size_t n) { busy_.fetch_add(n, std::memory_order_relaxed); }
  /// Marks \p n contexts idle again (query completion).
  void Release(size_t n) { busy_.fetch_sub(n, std::memory_order_relaxed); }

  /// Currently busy contexts.
  size_t Busy() const { return busy_.load(std::memory_order_relaxed); }

 private:
  size_t total_cores_;
  double interval_seconds_;
  std::atomic<size_t> busy_{0};
};

/// RAII slot acquisition on a SlotCpuMonitor (no-op when monitor is null).
class SlotLease {
 public:
  SlotLease(SlotCpuMonitor* monitor, size_t n) : monitor_(monitor), n_(n) {
    if (monitor_ != nullptr) monitor_->Acquire(n_);
  }
  ~SlotLease() {
    if (monitor_ != nullptr) monitor_->Release(n_);
  }
  SlotLease(const SlotLease&) = delete;
  SlotLease& operator=(const SlotLease&) = delete;

 private:
  SlotCpuMonitor* monitor_;
  size_t n_;
};

}  // namespace holix
