#include "holistic/holistic_engine.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"
#include "util/timer.h"

namespace holix {

HolisticEngine::HolisticEngine(HolisticConfig config,
                               std::unique_ptr<CpuMonitor> monitor)
    : config_(config),
      monitor_(std::move(monitor)),
      store_(config.strategy, config.storage_budget_bytes) {
  worker_pool_ = std::make_unique<ThreadPool>(config_.max_workers);
  team_pools_.resize(config_.max_workers);
  if (config_.threads_per_worker > 1) {
    for (auto& p : team_pools_) {
      p = std::make_unique<ThreadPool>(config_.threads_per_worker - 1);
    }
  }
  worker_rngs_.reserve(config_.max_workers);
  for (size_t i = 0; i < config_.max_workers; ++i) {
    worker_rngs_.emplace_back(config_.seed * 0x9E3779B97F4A7C15ULL + i);
  }
  start_time_ = NowSeconds();
}

HolisticEngine::~HolisticEngine() { Stop(); }

void HolisticEngine::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  stop_requested_.store(false, std::memory_order_release);
  start_time_ = NowSeconds();
  tuning_thread_ = std::thread([this] { TuningLoop(); });
}

void HolisticEngine::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_requested_.store(true, std::memory_order_release);
  if (tuning_thread_.joinable()) tuning_thread_.join();
  running_.store(false, std::memory_order_release);
}

void HolisticEngine::TuningLoop() {
  while (!stop_requested_.load(std::memory_order_acquire)) {
    const size_t activated = RunOneCycle();
    if (activated == 0) {
      // Nothing to do: either no idle contexts or an empty index space.
      // The monitor itself slept for its interval during measurement; add
      // a short pause only when the monitor has none (slot monitors with
      // interval 0), so the loop does not busy-spin.
      std::this_thread::sleep_for(std::chrono::duration<double>(
          config_.monitor_interval_seconds));
    }
  }
}

size_t HolisticEngine::RunOneCycle() {
  const size_t idle = monitor_->MeasureIdleCores();
  const size_t z = std::max<size_t>(1, config_.threads_per_worker);
  size_t workers = std::min(config_.max_workers, idle / z);
  if (workers == 0) return 0;
  // Do not bother activating workers when the index space is empty.
  Rng probe_rng(config_.seed);
  if (store_.PickForRefinement(probe_rng) == nullptr) return 0;

  Timer cycle_timer;
  for (size_t w = 0; w < workers; ++w) {
    worker_pool_->Submit([this, w] { IdleFunction(w); });
  }
  worker_pool_->WaitIdle();

  static obs::Counter& activations = obs::MetricsRegistry::Global().GetCounter(
      "holix_holistic_activations_total");
  activations.Inc(workers);

  std::lock_guard<std::mutex> lk(telemetry_mu_);
  activations_.push_back(
      {NowSeconds() - start_time_, workers, cycle_timer.ElapsedSeconds()});
  return workers;
}

void HolisticEngine::IdleFunction(size_t worker_id) {
  Rng& rng = worker_rngs_[worker_id];
  std::shared_ptr<AdaptiveIndex> index = store_.PickForRefinement(rng);
  if (index == nullptr) return;

  CrackConfig cfg;
  const size_t z = std::max<size_t>(1, config_.threads_per_worker);
  if (z > 1 && team_pools_[worker_id] != nullptr) {
    cfg.algo = CrackAlgo::kParallel;
    cfg.pool = team_pools_[worker_id].get();
    cfg.parallel_threads = z;
  } else {
    cfg.algo = config_.worker_algo;
  }

  // Repeat x times: crack at a random pivot; when the piece is latched,
  // pick another random pivot instead of waiting (Figure 3).
  static obs::Counter& refinements = obs::MetricsRegistry::Global().GetCounter(
      "holix_holistic_refinements_total");
  static obs::Counter& cracks = obs::MetricsRegistry::Global().GetCounter(
      "holix_holistic_worker_cracks_total");
  for (size_t i = 0; i < config_.refinements_per_worker; ++i) {
    refinement_steps_.fetch_add(1, std::memory_order_relaxed);
    refinements.Inc();
    for (size_t attempt = 0; attempt < config_.max_pivot_retries; ++attempt) {
      if (index->RefineWithPolicy(config_.pivot_policy, rng, cfg)) {
        worker_cracks_.fetch_add(1, std::memory_order_relaxed);
        cracks.Inc();
        break;
      }
      if (index->IsOptimal()) break;
    }
    if (index->IsOptimal()) break;
  }
  if (store_.UpdateAfterRefinement(index->name())) {
    static obs::Counter& retirements =
        obs::MetricsRegistry::Global().GetCounter(
            "holix_holistic_retirements_total");
    retirements.Inc();
  }
}

std::vector<ActivationRecord> HolisticEngine::Activations() const {
  std::lock_guard<std::mutex> lk(telemetry_mu_);
  return activations_;
}

}  // namespace holix
