/// \file holistic_engine.h
/// \brief The always-on tuning loop of holistic indexing (§4.2, Figure 2).
///
/// One holistic indexing thread runs beside query processing. Every cycle
/// it measures CPU utilization; when n hardware contexts are idle it
/// activates floor(n / z) holistic workers (z threads each), each of which
/// executes the IdleFunction: pick an index from the index space by weight,
/// perform x partial refinements at random pivots (skipping latched pieces,
/// Figure 3), update the statistics, and retire the index into C_optimal
/// when its average piece reaches |L1|. The thread waits for all workers,
/// then measures again.

#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "cracking/crack_config.h"
#include "holistic/cpu_monitor.h"
#include "holistic/stats_store.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace holix {

/// Tuning knobs of the holistic engine.
struct HolisticConfig {
  /// x: partial index refinements per worker activation (§5.5, Fig. 15:
  /// 16 is the paper's sweet spot).
  size_t refinements_per_worker = 16;

  /// Maximum simultaneously active holistic workers.
  size_t max_workers = 8;

  /// z: threads per worker team; teams > 1 use parallel cracking on large
  /// pieces (the paper's u16w8x2 style configurations).
  size_t threads_per_worker = 1;

  /// Index decision strategy (W1-W4). W4 (random) is the paper's robust
  /// default (§5.4, Fig. 13).
  Strategy strategy = Strategy::kW4;

  /// Storage budget for the materialized index space.
  size_t storage_budget_bytes = std::numeric_limits<size_t>::max();

  /// How often the tuning thread re-measures CPU load when no worker ran.
  /// The paper uses 1 s (kernel statistics need it); the deterministic
  /// SlotCpuMonitor supports much shorter cycles for scaled-down runs.
  double monitor_interval_seconds = 0.002;

  /// Kernel used by single-thread worker refinements. The SIMD tier
  /// dispatches by CPUID and produces the same bytes as kOutOfPlace, so
  /// this default is safe on any host.
  CrackAlgo worker_algo = CrackAlgo::kSimd;

  /// How workers aim their cracks. The paper argues kRandom is best; the
  /// alternatives exist for the design-decision ablation (§4.2).
  PivotPolicy pivot_policy = PivotPolicy::kRandom;

  /// How many fresh random pivots a worker tries when it keeps hitting
  /// latched pieces (Figure 3(d): pick another pivot instead of waiting).
  size_t max_pivot_retries = 8;

  /// Seed for worker RNGs.
  uint64_t seed = 0x5EEDu;
};

/// Telemetry: one record per tuning-cycle activation (Fig. 6(d)).
struct ActivationRecord {
  double at_seconds = 0;     ///< Time since Start(), seconds.
  size_t workers = 0;        ///< Holistic workers activated this cycle.
  double cycle_seconds = 0;  ///< Wall time until all workers finished.
};

/// The holistic indexing engine: statistics store + tuning thread + worker
/// teams. Thread-safe; Start/Stop may be called repeatedly.
class HolisticEngine {
 public:
  /// \param config   tuning knobs.
  /// \param monitor  idle-core detector; the engine takes ownership.
  HolisticEngine(HolisticConfig config, std::unique_ptr<CpuMonitor> monitor);
  ~HolisticEngine();

  HolisticEngine(const HolisticEngine&) = delete;
  HolisticEngine& operator=(const HolisticEngine&) = delete;

  /// The index space and statistics (register indices here).
  StatsStore& store() { return store_; }
  /// Read-only store access.
  const StatsStore& store() const { return store_; }

  /// The CPU monitor (e.g. to Acquire/Release slots on a SlotCpuMonitor).
  CpuMonitor& monitor() { return *monitor_; }

  /// The active configuration.
  const HolisticConfig& config() const { return config_; }

  /// Launches the holistic indexing thread. Idempotent.
  void Start();

  /// Stops the holistic indexing thread and waits for in-flight workers.
  /// Idempotent.
  void Stop();

  /// True while the tuning thread runs.
  bool IsRunning() const { return running_.load(std::memory_order_acquire); }

  /// Runs exactly one tuning cycle synchronously on the calling thread
  /// (measure, activate, wait). Useful for tests and for exploiting known
  /// idle phases (Fig. 9). \return number of workers activated.
  size_t RunOneCycle();

  /// All activation records so far (copy).
  std::vector<ActivationRecord> Activations() const;

  /// Total refinement steps attempted by workers since construction.
  uint64_t TotalRefinementSteps() const {
    return refinement_steps_.load(std::memory_order_relaxed);
  }

  /// Total successful worker cracks since construction.
  uint64_t TotalWorkerCracks() const {
    return worker_cracks_.load(std::memory_order_relaxed);
  }

 private:
  void TuningLoop();
  void IdleFunction(size_t worker_id);

  HolisticConfig config_;
  std::unique_ptr<CpuMonitor> monitor_;
  StatsStore store_;

  std::unique_ptr<ThreadPool> worker_pool_;  // max_workers threads
  std::vector<std::unique_ptr<ThreadPool>> team_pools_;  // z-1 threads each
  std::vector<Rng> worker_rngs_;

  std::thread tuning_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};

  std::atomic<uint64_t> refinement_steps_{0};
  std::atomic<uint64_t> worker_cracks_{0};

  mutable std::mutex telemetry_mu_;
  std::vector<ActivationRecord> activations_;
  double start_time_ = 0;
};

}  // namespace holix
