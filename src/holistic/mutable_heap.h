/// \file mutable_heap.h
/// \brief Addressable max-heap used by the statistics store.
///
/// The paper keeps "all information ... in a heap structure (one node per
/// index)" so the highest-priority index can be picked cheaply while
/// weights change after every refinement. This heap supports decrease/
/// increase-key through stable handles.

#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

namespace holix {

/// Max-heap of (weight, payload) with O(log n) update-by-handle.
/// Handles are dense indices assigned by Push and stay valid until Erase.
template <typename Payload>
class MutableMaxHeap {
 public:
  using Handle = size_t;
  static constexpr Handle kInvalidHandle = static_cast<Handle>(-1);

  /// Inserts (weight, payload); returns a stable handle.
  Handle Push(double weight, Payload payload) {
    Handle h;
    if (!free_handles_.empty()) {
      h = free_handles_.back();
      free_handles_.pop_back();
      nodes_[h] = {weight, std::move(payload), heap_.size()};
    } else {
      h = nodes_.size();
      nodes_.push_back({weight, std::move(payload), heap_.size()});
    }
    heap_.push_back(h);
    SiftUp(heap_.size() - 1);
    return h;
  }

  /// Number of live entries.
  size_t size() const { return heap_.size(); }
  /// True when no entries are live.
  bool empty() const { return heap_.empty(); }

  /// Handle of the maximum-weight entry (heap must be non-empty).
  Handle Top() const {
    assert(!heap_.empty());
    return heap_[0];
  }

  /// Weight of the entry behind \p h.
  double WeightOf(Handle h) const { return nodes_[h].weight; }
  /// Payload of the entry behind \p h.
  const Payload& PayloadOf(Handle h) const { return nodes_[h].payload; }
  /// Mutable payload of the entry behind \p h.
  Payload& MutablePayloadOf(Handle h) { return nodes_[h].payload; }

  /// Entry at heap slot \p i (0 <= i < size()); used for uniform sampling.
  Handle AtSlot(size_t i) const { return heap_[i]; }

  /// Changes the weight of \p h and restores the heap property.
  void Update(Handle h, double weight) {
    const double old = nodes_[h].weight;
    nodes_[h].weight = weight;
    if (weight > old) {
      SiftUp(nodes_[h].slot);
    } else if (weight < old) {
      SiftDown(nodes_[h].slot);
    }
  }

  /// Removes the entry behind \p h; the handle becomes invalid.
  void Erase(Handle h) {
    const size_t slot = nodes_[h].slot;
    const Handle last = heap_.back();
    heap_[slot] = last;
    nodes_[last].slot = slot;
    heap_.pop_back();
    if (slot < heap_.size()) {
      SiftUp(slot);
      SiftDown(slot);
    }
    free_handles_.push_back(h);
  }

 private:
  struct Node {
    double weight;
    Payload payload;
    size_t slot;  // position in heap_
  };

  void Swap(size_t a, size_t b) {
    std::swap(heap_[a], heap_[b]);
    nodes_[heap_[a]].slot = a;
    nodes_[heap_[b]].slot = b;
  }

  void SiftUp(size_t i) {
    while (i > 0) {
      const size_t parent = (i - 1) / 2;
      if (nodes_[heap_[parent]].weight >= nodes_[heap_[i]].weight) break;
      Swap(parent, i);
      i = parent;
    }
  }

  void SiftDown(size_t i) {
    for (;;) {
      const size_t l = 2 * i + 1;
      const size_t r = 2 * i + 2;
      size_t best = i;
      if (l < heap_.size() &&
          nodes_[heap_[l]].weight > nodes_[heap_[best]].weight) {
        best = l;
      }
      if (r < heap_.size() &&
          nodes_[heap_[r]].weight > nodes_[heap_[best]].weight) {
        best = r;
      }
      if (best == i) break;
      Swap(best, i);
      i = best;
    }
  }

  std::vector<Node> nodes_;
  std::vector<Handle> heap_;
  std::vector<Handle> free_handles_;
};

}  // namespace holix
