/// \file pivot_policy.h
/// \brief Worker pivot-selection policies (§4.2, "Index Refinement").
///
/// The paper discusses three ways a holistic worker could choose what to
/// crack next and argues for random pivots: cracking the biggest piece
/// "takes more work out of future queries" and cracking the smallest
/// ("hot") piece sharpens frequently queried ranges, but both require
/// scanning or maintaining piece-size information, while random pivots are
/// maintenance-free and converge to a balanced index. We implement all
/// three so the ablation benchmark can quantify that argument.

#pragma once

#include <cstdint>

namespace holix {

/// How a holistic worker picks the pivot of its next refinement.
enum class PivotPolicy : uint8_t {
  kRandom,         ///< Uniform random value in the attribute domain (paper's choice).
  kBiggestPiece,   ///< Data-driven pivot inside the currently largest piece.
  kSmallestPiece,  ///< Data-driven pivot inside the smallest still-crackable piece.
};

/// Printable name of a pivot policy.
inline const char* PivotPolicyName(PivotPolicy p) {
  switch (p) {
    case PivotPolicy::kRandom:
      return "random";
    case PivotPolicy::kBiggestPiece:
      return "biggest-piece";
    case PivotPolicy::kSmallestPiece:
      return "smallest-piece";
  }
  return "?";
}

}  // namespace holix
