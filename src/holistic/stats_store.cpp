#include "holistic/stats_store.h"

#include <algorithm>
#include <stdexcept>

namespace holix {

bool StatsStore::Register(std::shared_ptr<AdaptiveIndex> index,
                          ConfigKind kind,
                          std::vector<std::string>* evicted) {
  std::lock_guard<std::mutex> lk(mu_);
  const std::string& name = index->name();
  if (entries_.count(name) != 0) return true;  // already registered
  const size_t bytes = index->SizeBytes();
  if (total_bytes_ + bytes > budget_bytes_ &&
      !EvictForLocked(bytes, evicted)) {
    return false;
  }
  Entry e;
  e.index = std::move(index);
  e.kind = kind;
  e.bytes = bytes;
  if (kind == ConfigKind::kActual) {
    e.handle = actual_heap_.Push(ComputeWeight(*e.index, strategy_), name);
  } else if (kind == ConfigKind::kPotential) {
    potential_.push_back(name);
  }
  total_bytes_ += bytes;
  entries_.emplace(name, std::move(e));
  return true;
}

bool StatsStore::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  return entries_.count(name) != 0;
}

ConfigKind StatsStore::KindOf(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) throw std::out_of_range("no index " + name);
  return it->second.kind;
}

std::optional<ConfigKind> StatsStore::TryKindOf(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return std::nullopt;
  return it->second.kind;
}

void StatsStore::RecordQueryAccess(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return;
  Entry& e = it->second;
  if (e.kind == ConfigKind::kPotential) {
    // First user query on a speculative index: promote to C_actual.
    potential_.erase(std::remove(potential_.begin(), potential_.end(), name),
                     potential_.end());
    e.kind = ConfigKind::kActual;
    e.handle = actual_heap_.Push(ComputeWeight(*e.index, strategy_), name);
  } else if (e.kind == ConfigKind::kActual) {
    actual_heap_.Update(e.handle, ComputeWeight(*e.index, strategy_));
  }
}

std::shared_ptr<AdaptiveIndex> StatsStore::PickForRefinement(Rng& rng) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!actual_heap_.empty()) {
    const auto handle =
        strategy_ == Strategy::kW4
            ? actual_heap_.AtSlot(rng.Below(actual_heap_.size()))
            : actual_heap_.Top();
    return entries_.at(actual_heap_.PayloadOf(handle)).index;
  }
  if (!potential_.empty()) {
    return entries_.at(potential_[rng.Below(potential_.size())]).index;
  }
  return nullptr;
}

bool StatsStore::UpdateAfterRefinement(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return false;
  Entry& e = it->second;
  if (e.kind == ConfigKind::kOptimal) return false;
  const double d = e.index->DistanceToOptimal();
  if (d <= 0.0) {
    MoveToOptimalLocked(e);
    return true;
  }
  if (e.kind == ConfigKind::kActual) {
    actual_heap_.Update(e.handle, ComputeWeight(*e.index, strategy_));
  }
  return false;
}

void StatsStore::Remove(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return;
  Entry& e = it->second;
  if (e.kind == ConfigKind::kActual) {
    actual_heap_.Erase(e.handle);
  } else if (e.kind == ConfigKind::kPotential) {
    potential_.erase(std::remove(potential_.begin(), potential_.end(), name),
                     potential_.end());
  }
  total_bytes_ -= e.bytes;
  entries_.erase(it);
}

size_t StatsStore::Count(ConfigKind kind) const {
  std::lock_guard<std::mutex> lk(mu_);
  size_t n = 0;
  for (const auto& [_, e] : entries_) n += (e.kind == kind) ? 1 : 0;
  return n;
}

std::vector<std::string> StatsStore::Names(ConfigKind kind) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> names;
  for (const auto& [name, e] : entries_) {
    if (e.kind == kind) names.push_back(name);
  }
  return names;
}

double StatsStore::WeightOf(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end() || it->second.kind != ConfigKind::kActual) {
    return 0.0;
  }
  return actual_heap_.WeightOf(it->second.handle);
}

size_t StatsStore::TotalBytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return total_bytes_;
}

std::shared_ptr<AdaptiveIndex> StatsStore::Find(
    const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second.index;
}

size_t StatsStore::TotalPieces() const {
  std::lock_guard<std::mutex> lk(mu_);
  size_t pieces = 0;
  for (const auto& [_, e] : entries_) pieces += e.index->NumPieces();
  return pieces;
}

bool StatsStore::EvictForLocked(size_t needed_bytes,
                                std::vector<std::string>* evicted) {
  // Least-frequently-used first: fewest user-query accesses. Optimal
  // indices are auxiliary data too and participate in eviction.
  while (total_bytes_ + needed_bytes > budget_bytes_) {
    const Entry* victim = nullptr;
    const std::string* victim_name = nullptr;
    uint64_t victim_accesses = 0;
    for (const auto& [name, e] : entries_) {
      const uint64_t acc =
          e.index->stats().accesses.load(std::memory_order_relaxed);
      if (victim == nullptr || acc < victim_accesses) {
        victim = &e;
        victim_name = &name;
        victim_accesses = acc;
      }
    }
    if (victim == nullptr) return false;  // nothing left to evict
    const std::string name_copy = *victim_name;
    if (evicted != nullptr) evicted->push_back(name_copy);
    Entry& e = entries_.at(name_copy);
    if (e.kind == ConfigKind::kActual) {
      actual_heap_.Erase(e.handle);
    } else if (e.kind == ConfigKind::kPotential) {
      potential_.erase(
          std::remove(potential_.begin(), potential_.end(), name_copy),
          potential_.end());
    }
    total_bytes_ -= e.bytes;
    entries_.erase(name_copy);
  }
  return true;
}

void StatsStore::MoveToOptimalLocked(Entry& e) {
  if (e.kind == ConfigKind::kActual) {
    actual_heap_.Erase(e.handle);
    e.handle = MutableMaxHeap<std::string>::kInvalidHandle;
  } else if (e.kind == ConfigKind::kPotential) {
    potential_.erase(std::remove(potential_.begin(), potential_.end(),
                                 e.index->name()),
                     potential_.end());
  }
  e.kind = ConfigKind::kOptimal;
}

}  // namespace holix
