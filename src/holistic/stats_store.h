/// \file stats_store.h
/// \brief The statistics store: configurations C_actual / C_potential /
/// C_optimal, per-index weights, and the storage budget (§4.1, §4.2).
///
/// The store is the brain of holistic indexing: the select operator
/// registers indices it creates (C_actual), the system or user seeds
/// speculative indices (C_potential), workers pick the next index to refine
/// by weight, and indices whose average piece reaches |L1| retire into
/// C_optimal. A least-frequently-used policy keeps the materialized index
/// space within the storage budget.

#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "holistic/adaptive_index.h"
#include "holistic/mutable_heap.h"
#include "holistic/strategy.h"
#include "util/rng.h"

namespace holix {

/// Which configuration an index currently belongs to (§4.1).
enum class ConfigKind : uint8_t {
  kActual,     ///< Created by user queries; candidates for refinement.
  kPotential,  ///< Seeded by the system/user; not yet queried.
  kOptimal,    ///< Average piece <= |L1|; no further refinement.
};

/// Printable name of a configuration.
inline const char* ConfigKindName(ConfigKind k) {
  switch (k) {
    case ConfigKind::kActual:
      return "actual";
    case ConfigKind::kPotential:
      return "potential";
    case ConfigKind::kOptimal:
      return "optimal";
  }
  return "?";
}

/// Thread-safe registry of the index space IS = C_actual ∪ C_potential.
class StatsStore {
 public:
  /// \param strategy              weight function for worker picks.
  /// \param storage_budget_bytes  cap on materialized index bytes.
  explicit StatsStore(
      Strategy strategy = Strategy::kW4,
      size_t storage_budget_bytes = std::numeric_limits<size_t>::max())
      : strategy_(strategy), budget_bytes_(storage_budget_bytes) {}

  /// Registers \p index under \p kind. If the storage budget would be
  /// exceeded, least-frequently-used indices are evicted first (their names
  /// are appended to \p evicted so the owner can drop the cracker columns).
  /// \return false when the index cannot fit even after evictions.
  bool Register(std::shared_ptr<AdaptiveIndex> index, ConfigKind kind,
                std::vector<std::string>* evicted = nullptr);

  /// True when an index named \p name is registered (any configuration).
  bool Contains(const std::string& name) const;

  /// Configuration of \p name; throws std::out_of_range when absent.
  ConfigKind KindOf(const std::string& name) const;

  /// Configuration of \p name, or nullopt when absent (races with eviction
  /// are expected on the query path; this never throws).
  std::optional<ConfigKind> TryKindOf(const std::string& name) const;

  /// Records that a user query accessed \p name; promotes a potential index
  /// into C_actual (it now has workload evidence).
  void RecordQueryAccess(const std::string& name);

  /// Picks the next index a worker should refine (§4.2): the maximum-weight
  /// index of C_actual (uniform random for W4), or a random member of
  /// C_potential when C_actual is empty. Returns nullptr when the index
  /// space is empty.
  std::shared_ptr<AdaptiveIndex> PickForRefinement(Rng& rng);

  /// Recomputes the weight of \p name after a refinement (worker- or
  /// query-driven); moves the index into C_optimal when d(I, I_opt) == 0.
  /// \return true when the index just became optimal.
  bool UpdateAfterRefinement(const std::string& name);

  /// Drops \p name from the store entirely (e.g. owner dropped the column).
  void Remove(const std::string& name);

  /// Number of indices in \p kind.
  size_t Count(ConfigKind kind) const;

  /// Names of all indices in \p kind (unordered).
  std::vector<std::string> Names(ConfigKind kind) const;

  /// Current weight of \p name (0 when absent or optimal).
  double WeightOf(const std::string& name) const;

  /// Total bytes materialized across all registered indices.
  size_t TotalBytes() const;

  /// The configured storage budget in bytes.
  size_t budget_bytes() const { return budget_bytes_; }

  /// The active strategy.
  Strategy strategy() const { return strategy_; }

  /// Looks up an index by name (nullptr when absent).
  std::shared_ptr<AdaptiveIndex> Find(const std::string& name) const;

  /// Sum of NumPieces over every registered index (Fig. 6(c) telemetry).
  size_t TotalPieces() const;

 private:
  struct Entry {
    std::shared_ptr<AdaptiveIndex> index;
    ConfigKind kind;
    MutableMaxHeap<std::string>::Handle handle =
        MutableMaxHeap<std::string>::kInvalidHandle;
    size_t bytes = 0;
  };

  // All members below are guarded by mu_.
  bool EvictForLocked(size_t needed_bytes,
                      std::vector<std::string>* evicted);
  void MoveToOptimalLocked(Entry& e);

  mutable std::mutex mu_;
  Strategy strategy_;
  size_t budget_bytes_;
  size_t total_bytes_ = 0;
  std::unordered_map<std::string, Entry> entries_;
  MutableMaxHeap<std::string> actual_heap_;  // C_actual by weight
  std::vector<std::string> potential_;       // C_potential (unordered)
};

}  // namespace holix
