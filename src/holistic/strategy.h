/// \file strategy.h
/// \brief Index decision strategies W1-W4 (§4.2, "Index Decision
/// Strategies"): how a holistic worker picks which index to refine next.

#pragma once

#include <cstdint>
#include <string>

#include "holistic/adaptive_index.h"
#include "util/rng.h"

namespace holix {

/// Which weight function ranks the candidate indices.
enum class Strategy : uint8_t {
  kW1,  ///< W_I = d(I, I_opt): prioritize large partitions.
  kW2,  ///< W_I = f_I * d: large partitions that are also hot.
  kW3,  ///< W_I = (f_I - f_Ih) * d: hot, large, and low hit rate.
  kW4,  ///< Random choice (the paper's robust recommendation).
};

/// Printable name of a strategy.
inline const char* StrategyName(Strategy s) {
  switch (s) {
    case Strategy::kW1:
      return "W1";
    case Strategy::kW2:
      return "W2";
    case Strategy::kW3:
      return "W3";
    case Strategy::kW4:
      return "W4";
  }
  return "?";
}

/// Computes the priority weight of \p index under \p strategy. For kW4 the
/// weight is irrelevant (selection is uniform); we return d so the optimal
/// transition (weight == 0) still works.
inline double ComputeWeight(const AdaptiveIndex& index, Strategy strategy) {
  const double d = index.DistanceToOptimal();
  switch (strategy) {
    case Strategy::kW1:
    case Strategy::kW4:
      return d;
    case Strategy::kW2:
      return static_cast<double>(
                 index.stats().accesses.load(std::memory_order_relaxed)) *
             d;
    case Strategy::kW3: {
      const auto f = index.stats().accesses.load(std::memory_order_relaxed);
      const auto fh =
          index.stats().exact_hits.load(std::memory_order_relaxed);
      return static_cast<double>(f >= fh ? f - fh : 0) * d;
    }
  }
  return d;
}

}  // namespace holix
