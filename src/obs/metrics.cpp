#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/env.h"

namespace holix::obs {

size_t ThreadStripe() {
  static std::atomic<size_t> next{0};
  thread_local const size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed) % kCounterStripes;
  return stripe;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  if (bounds_.size() > kMaxHistogramBins - 1) {
    bounds_.resize(kMaxHistogramBins - 1);
  }
  counts_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
}

uint64_t MetricsSnapshot::CounterValue(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

double MetricsSnapshot::GaugeValue(const std::string& name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0;
}

void TraceRing::Push(QueryTrace t) {
  std::lock_guard<std::mutex> lk(mu_);
  t.seq = next_seq_++;
  if (ring_.size() < capacity_) {
    ring_.push_back(t);
  } else {
    ring_[t.seq % capacity_] = t;
  }
}

void TraceRing::SnapshotInto(std::vector<QueryTrace>* out) const {
  std::lock_guard<std::mutex> lk(mu_);
  out->clear();
  out->reserve(ring_.size());
  const uint64_t first = next_seq_ > ring_.size() ? next_seq_ - ring_.size() : 0;
  for (uint64_t seq = first; seq < next_seq_; ++seq) {
    out->push_back(ring_[seq % capacity_]);
  }
}

MetricsRegistry::MetricsRegistry()
    : slow_bits_(std::bit_cast<uint64_t>(
          EnvDouble("HOLIX_SLOW_QUERY_MS", 100.0) / 1000.0)) {}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* g = new MetricsRegistry();  // never destroyed
  return *g;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(bounds);
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  {
    std::lock_guard<std::mutex> lk(mu_);
    snap.counters.reserve(counters_.size());
    for (const auto& [name, c] : counters_) {
      snap.counters.emplace_back(name, c->Value());
    }
    snap.gauges.reserve(gauges_.size());
    for (const auto& [name, g] : gauges_) {
      snap.gauges.emplace_back(name, g->Value());
    }
    snap.histograms.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) {
      HistogramSnapshot hs;
      hs.name = name;
      hs.bounds = h->bounds();
      hs.counts.resize(hs.bounds.size() + 1);
      for (size_t i = 0; i < hs.counts.size(); ++i) {
        hs.counts[i] = h->BinCount(i);
      }
      hs.sum = h->Sum();
      snap.histograms.push_back(std::move(hs));
    }
  }
  traces_.SnapshotInto(&snap.traces);
  return snap;
}

// --- Trace scope -------------------------------------------------------------

namespace {
thread_local QueryTrace* g_current_trace = nullptr;
}  // namespace

QueryTrace* CurrentQueryTrace() { return g_current_trace; }

TraceScope::TraceScope(QueryTrace* t) : prev_(g_current_trace) {
  g_current_trace = t;
}

TraceScope::~TraceScope() { g_current_trace = prev_; }

void RecordQueryDone(QueryTrace& t, const char* mode_name) {
  auto& reg = MetricsRegistry::Global();
  // Per-mode series are cached by ExecMode ordinal; registration (with its
  // mutex and string build) happens once per mode per process.
  static std::array<std::atomic<Counter*>, 16> count_slots{};
  static std::array<std::atomic<Histogram*>, 16> hist_slots{};
  static const std::vector<double> kLatencyBounds = {
      1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
      1e-2, 2.5e-2, 5e-2, 0.1,  0.25,   0.5,  1.0,  2.5,    5.0,  10.0};
  const size_t slot = t.mode % count_slots.size();
  Counter* qc = count_slots[slot].load(std::memory_order_acquire);
  if (qc == nullptr) {
    qc = &reg.GetCounter(std::string("holix_queries_total{mode=\"") +
                         mode_name + "\"}");
    count_slots[slot].store(qc, std::memory_order_release);
  }
  Histogram* qh = hist_slots[slot].load(std::memory_order_acquire);
  if (qh == nullptr) {
    qh = &reg.GetHistogram(std::string("holix_query_seconds{mode=\"") +
                               mode_name + "\"}",
                           kLatencyBounds);
    hist_slots[slot].store(qh, std::memory_order_release);
  }
  qc->Inc();
  qh->Observe(t.latency_seconds);
  t.slow = t.latency_seconds >= reg.slow_query_seconds();
  if (t.slow) {
    static Counter& slow = reg.GetCounter("holix_slow_queries_total");
    slow.Inc();
  }
  reg.traces().Push(t);
}

// --- Formatters --------------------------------------------------------------

namespace {

/// Formats a double the way Prometheus text exposition expects, using the
/// shortest representation that round-trips (so a 1e-5 bucket bound prints
/// as "1e-05", not "1.0000000000000001e-05").
std::string Num(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

/// Splits `base{labels}` into its parts; labels comes back empty when the
/// name carries none.
void SplitName(const std::string& name, std::string* base,
               std::string* labels) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos) {
    *base = name;
    labels->clear();
    return;
  }
  *base = name.substr(0, brace);
  *labels = name.substr(brace + 1, name.size() - brace - 2);  // strip {}
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::string PrometheusText(const MetricsSnapshot& snap) {
  std::ostringstream os;
  std::string prev_base;
  for (const auto& [name, v] : snap.counters) {
    std::string base, labels;
    SplitName(name, &base, &labels);
    if (base != prev_base) {
      os << "# TYPE " << base << " counter\n";
      prev_base = base;
    }
    os << name << " " << v << "\n";
  }
  prev_base.clear();
  for (const auto& [name, v] : snap.gauges) {
    std::string base, labels;
    SplitName(name, &base, &labels);
    if (base != prev_base) {
      os << "# TYPE " << base << " gauge\n";
      prev_base = base;
    }
    os << name << " " << Num(v) << "\n";
  }
  prev_base.clear();
  for (const HistogramSnapshot& h : snap.histograms) {
    std::string base, labels;
    SplitName(h.name, &base, &labels);
    if (base != prev_base) {
      os << "# TYPE " << base << " histogram\n";
      prev_base = base;
    }
    const std::string comma = labels.empty() ? "" : labels + ",";
    uint64_t cum = 0;
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      cum += h.counts[i];
      os << base << "_bucket{" << comma << "le=\"" << Num(h.bounds[i])
         << "\"} " << cum << "\n";
    }
    cum += h.counts.back();
    os << base << "_bucket{" << comma << "le=\"+Inf\"} " << cum << "\n";
    const std::string suffix = labels.empty() ? "" : "{" + labels + "}";
    os << base << "_sum" << suffix << " " << Num(h.sum) << "\n";
    os << base << "_count" << suffix << " " << cum << "\n";
  }
  return os.str();
}

std::string HumanText(const MetricsSnapshot& snap) {
  std::ostringstream os;
  os << "== holix metrics ==\n";
  os << "-- counters --\n";
  for (const auto& [name, v] : snap.counters) {
    os << "  " << name << " = " << v << "\n";
  }
  os << "-- gauges --\n";
  for (const auto& [name, v] : snap.gauges) {
    os << "  " << name << " = " << Num(v) << "\n";
  }
  os << "-- histograms --\n";
  for (const HistogramSnapshot& h : snap.histograms) {
    const uint64_t total = h.Total();
    os << "  " << h.name << ": count=" << total << " sum=" << Num(h.sum);
    if (total > 0) os << " avg=" << Num(h.sum / static_cast<double>(total));
    os << "\n";
  }
  if (!snap.traces.empty()) {
    os << "-- recent queries (" << snap.traces.size() << ") --\n";
    // The page stays one page: print the newest few plus any slow ones.
    const size_t tail = std::min<size_t>(snap.traces.size(), 8);
    for (size_t i = snap.traces.size() - tail; i < snap.traces.size(); ++i) {
      const QueryTrace& t = snap.traces[i];
      char line[256];
      std::snprintf(line, sizeof(line),
                    "  #%" PRIu64
                    " mode=%u preds=%u probe=%u merge=%u hints=%u "
                    "pieces+=%u scanned=%" PRIu64 "B %.3fms%s\n",
                    t.seq, static_cast<unsigned>(t.mode),
                    static_cast<unsigned>(t.predicates), t.probe_filters,
                    t.merge_intersects, t.refine_hints, t.pieces_created,
                    t.bytes_scanned, t.latency_seconds * 1e3,
                    t.slow ? " SLOW" : "");
      os << line;
    }
  }
  return os.str();
}

std::string MetricsJson(const MetricsSnapshot& snap) {
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  for (size_t i = 0; i < snap.counters.size(); ++i) {
    os << (i ? ",\n    " : "\n    ") << "\""
       << JsonEscape(snap.counters[i].first)
       << "\": " << snap.counters[i].second;
  }
  os << "\n  },\n  \"gauges\": {";
  size_t emitted = 0;
  for (const auto& [name, v] : snap.gauges) {
    if (std::isnan(v) || std::isinf(v)) continue;  // not valid JSON numbers
    os << (emitted++ ? ",\n    " : "\n    ") << "\"" << JsonEscape(name)
       << "\": " << Num(v);
  }
  os << "\n  },\n  \"histograms\": {";
  for (size_t i = 0; i < snap.histograms.size(); ++i) {
    const HistogramSnapshot& h = snap.histograms[i];
    os << (i ? ",\n    " : "\n    ") << "\"" << JsonEscape(h.name)
       << "\": {\"count\": " << h.Total() << ", \"sum\": " << Num(h.sum)
       << "}";
  }
  os << "\n  }\n}\n";
  return os.str();
}

}  // namespace holix::obs
