/// \file metrics.h
/// \brief Process-wide telemetry: lock-free counters/gauges/histograms, a
/// bounded per-query trace ring, and one snapshot type served three ways
/// (protocol v4 `GetStats`, the `/metrics` Prometheus endpoint, and
/// `Database::MetricsSnapshot()`).
///
/// ## Write path
///
/// Increments must be safe inside crack kernels and the server event loop:
/// `Counter::Inc` is a relaxed `fetch_add` on one of 16 cacheline-aligned
/// stripes picked by thread — no lock, no allocation, no contention between
/// worker threads. Gauges are a single CAS on double bits. Histograms are a
/// short linear scan over fixed bin bounds plus one relaxed `fetch_add`.
/// Registration (`GetCounter` et al.) takes a mutex once; hot call sites
/// cache the returned reference in a function-local static.
///
/// Snapshots sum the stripes. Each stripe is monotone under relaxed
/// ordering (per-variable read coherence), so a counter observed across two
/// snapshots never steps backwards even while writers race.
///
/// ## Naming convention (stable; the wire and /metrics print these verbatim)
///
/// Every series carries the `holix_` prefix. Counters end in `_total`;
/// gauges and histograms do not. Label-shaped series embed Prometheus label
/// syntax directly in the registered name, e.g.
/// `holix_queries_total{mode="adaptive"}`. The families:
///
/// | family                                      | kind      | source |
/// |---------------------------------------------|-----------|--------|
/// | holix_cracks_total                          | counter   | crack-in-two/three kernel invocations |
/// | holix_crack_bytes_moved_total               | counter   | bytes partitioned by crack kernels |
/// | holix_crack_simd_ops_total                  | counter   | cracks served by the SIMD tier (vs fallback) |
/// | holix_crack_morsels_total                   | counter   | morsels executed by parallel cracks |
/// | holix_crack_morsel_steals_total             | counter   | morsels stolen from another worker's deque |
/// | holix_pieces_created_total                  | counter   | piece boundaries inserted |
/// | holix_scan_bytes_total                      | counter   | bytes read by piece scans |
/// | holix_ripple_merged_inserts_total           | counter   | pending inserts merged (Ripple) |
/// | holix_ripple_merged_deletes_total           | counter   | pending deletes merged (Ripple) |
/// | holix_latch_failures_total                  | counter   | worker try-latch misses |
/// | holix_holistic_activations_total            | counter   | workers activated by the tuning loop |
/// | holix_holistic_refinements_total            | counter   | worker refinement steps |
/// | holix_holistic_worker_cracks_total          | counter   | cracks done by workers |
/// | holix_holistic_retirements_total            | counter   | indices retired into C_optimal |
/// | holix_holistic_{actual,potential,optimal}_indices | gauge | store configuration sizes |
/// | holix_holistic_store_bytes / _budget_bytes  | gauge     | stats-store usage vs budget |
/// | holix_holistic_distance_bytes{column="..."} | gauge     | Equation-1 distance remaining |
/// | holix_queries_total{mode="..."}             | counter   | queries per ExecMode |
/// | holix_query_seconds{mode="..."}             | histogram | query latency per ExecMode |
/// | holix_slow_queries_total                    | counter   | queries over the slow threshold |
/// | holix_planner_{probe,merge}_total           | counter   | conjunction probe-vs-merge choices |
/// | holix_planner_refine_hints_total            | counter   | RefineHint cracks issued by probes |
/// | holix_batch_ranges_total                    | counter   | ranges answered via CountRangeBatch |
/// | holix_index_pieces / holix_adaptive_indices | gauge     | registry-wide piece/index counts |
/// | holix_server_connections_total              | counter   | accepted sockets |
/// | holix_server_requests_total                 | counter   | request frames entering execution |
/// | holix_server_decode_errors_total            | counter   | malformed frames / bad handshakes |
/// | holix_server_backpressure_toggles_total     | counter   | EPOLLIN pause/resume transitions |
/// | holix_server_outbox_bytes_total             | counter   | response bytes parked for write |
/// | holix_server_open_connections               | gauge     | currently open sockets |
/// | holix_server_peak_connections               | gauge     | high-water open sockets |
/// | holix_server_in_flight                      | gauge     | requests submitted, not completed |
/// | holix_sharedscan_batches_total              | counter   | coalesced scan batches run |
/// | holix_sharedscan_requests_total             | counter   | requests answered by shared scans |
/// | holix_sharedscan_batch_size                 | histogram | requests per coalesced batch |
/// | holix_batch_admission_skips_total           | counter   | ranges bypassing shared-scan coalescing (admission heuristic) |
/// | holix_wal_records_total                     | counter   | update records appended to the WAL |
/// | holix_wal_bytes_total                       | counter   | record bytes appended to the WAL |
/// | holix_wal_fsyncs_total                      | counter   | fsync calls issued by the WAL writer |
/// | holix_wal_append_seconds                    | histogram | latency of one durable WAL append |
/// | holix_wal_replayed_records_total            | counter   | WAL records re-applied during recovery |
/// | holix_checkpoints_total                     | counter   | snapshots cut (manual + background) |
/// | holix_checkpoint_bytes_total                | counter   | snapshot bytes written by checkpoints |
/// | holix_checkpoint_seconds                    | histogram | wall time per checkpoint |
/// | holix_recovery_columns_total                | counter   | columns restored from snapshot |
/// | holix_recovery_pivots_total                 | counter   | cracker pivots re-applied at warm start |
/// | holix_recovery_seconds                      | histogram | wall time per recovery |

#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace holix::obs {

inline constexpr size_t kCounterStripes = 16;
inline constexpr size_t kMaxHistogramBins = 64;
inline constexpr size_t kTraceRingCapacity = 128;

/// Stripe index for the calling thread (stable per thread, assigned
/// round-robin at first use).
size_t ThreadStripe();

/// Monotone counter striped across cachelines. Inc is wait-free.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Inc(uint64_t n = 1) {
    cells_[ThreadStripe()].v.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t sum = 0;
    for (const Cell& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  std::array<Cell, kCounterStripes> cells_;
};

/// Double-valued gauge (Set / Add / Max) stored as atomic bits.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) {
    bits_.store(std::bit_cast<uint64_t>(v), std::memory_order_relaxed);
  }

  void Add(double d) {
    uint64_t cur = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(
        cur, std::bit_cast<uint64_t>(std::bit_cast<double>(cur) + d),
        std::memory_order_relaxed)) {
    }
  }

  /// Raises the gauge to \p v if larger (high-water mark).
  void Max(double v) {
    uint64_t cur = bits_.load(std::memory_order_relaxed);
    while (std::bit_cast<double>(cur) < v &&
           !bits_.compare_exchange_weak(cur, std::bit_cast<uint64_t>(v),
                                        std::memory_order_relaxed)) {
    }
  }

  double Value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }

 private:
  std::atomic<uint64_t> bits_{0};  // bit pattern of 0.0
};

/// Fixed-bin histogram with Prometheus `le` semantics: an observation lands
/// in the first bucket whose upper bound is >= the value (bounds are
/// inclusive); values above the last bound land in the overflow bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double v) {
    size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) ++i;
    counts_[i].fetch_add(1, std::memory_order_relaxed);
    uint64_t cur = sum_bits_.load(std::memory_order_relaxed);
    while (!sum_bits_.compare_exchange_weak(
        cur, std::bit_cast<uint64_t>(std::bit_cast<double>(cur) + v),
        std::memory_order_relaxed)) {
    }
  }

  const std::vector<double>& bounds() const { return bounds_; }
  uint64_t BinCount(size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  double Sum() const {
    return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
  }

 private:
  std::vector<double> bounds_;  // ascending upper bounds
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;  // bounds.size() + 1
  std::atomic<uint64_t> sum_bits_{0};
};

// --- Snapshot types (also the wire payload of GetStatsResult) ---------------

struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;    ///< finite upper bounds, ascending
  std::vector<uint64_t> counts;  ///< bounds.size() + 1 (last = overflow)
  double sum = 0;

  uint64_t Total() const {
    uint64_t t = 0;
    for (uint64_t c : counts) t += c;
    return t;
  }
  bool operator==(const HistogramSnapshot&) const = default;
};

/// One completed query, as recorded by the executor funnel. Doubles as the
/// live accumulation struct while the query runs (via TraceScope).
struct QueryTrace {
  uint64_t seq = 0;          ///< assigned by the ring at push
  uint8_t mode = 0;          ///< ExecMode ordinal
  uint16_t predicates = 0;   ///< conjunction width
  uint16_t results = 0;      ///< result requests
  uint32_t probe_filters = 0;     ///< planner chose base-probe
  uint32_t merge_intersects = 0;  ///< planner chose sorted-intersect
  uint32_t refine_hints = 0;      ///< RefineHint cracks issued
  uint32_t pieces_created = 0;    ///< boundaries inserted by this query
  uint64_t bytes_scanned = 0;     ///< piece-scan bytes
  double latency_seconds = 0;
  bool slow = false;  ///< latency >= the slow-query threshold

  bool operator==(const QueryTrace&) const = default;
};

struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;  // name-sorted
  std::vector<std::pair<std::string, double>> gauges;      // name-sorted
  std::vector<HistogramSnapshot> histograms;               // name-sorted
  std::vector<QueryTrace> traces;                          // oldest first

  uint64_t CounterValue(const std::string& name) const;
  double GaugeValue(const std::string& name) const;

  bool operator==(const MetricsSnapshot&) const = default;
};

/// Bounded ring of recently completed queries (mutex-guarded; pushed once
/// per query, never from kernel inner loops).
class TraceRing {
 public:
  explicit TraceRing(size_t capacity = kTraceRingCapacity)
      : capacity_(capacity) {}

  void Push(QueryTrace t);
  void SnapshotInto(std::vector<QueryTrace>* out) const;  // oldest first

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<QueryTrace> ring_;  // ring_[seq % capacity_]
  uint64_t next_seq_ = 0;
};

// --- Registry ---------------------------------------------------------------

class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  /// Returns the series named \p name, creating it on first use. The
  /// reference is stable for the process lifetime — cache it at hot sites:
  ///   static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(...);
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  /// \p bounds is used only on first registration; later calls with a
  /// different shape return the existing histogram unchanged.
  Histogram& GetHistogram(const std::string& name,
                          const std::vector<double>& bounds);

  TraceRing& traces() { return traces_; }

  /// Queries at or above this latency are flagged slow and counted in
  /// holix_slow_queries_total. Default 0.1s; env HOLIX_SLOW_QUERY_MS
  /// overrides at startup.
  double slow_query_seconds() const {
    return std::bit_cast<double>(slow_bits_.load(std::memory_order_relaxed));
  }
  void set_slow_query_seconds(double s) {
    slow_bits_.store(std::bit_cast<uint64_t>(s), std::memory_order_relaxed);
  }

  MetricsSnapshot Snapshot() const;

 private:
  MetricsRegistry();

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  TraceRing traces_;
  std::atomic<uint64_t> slow_bits_;
};

// --- Per-query trace scope ---------------------------------------------------

/// The query currently executing on this thread, or nullptr. Instrumented
/// layers below the executor add to it without knowing who is asking.
QueryTrace* CurrentQueryTrace();

/// RAII: publishes \p t as the thread's current trace for its lifetime.
class TraceScope {
 public:
  explicit TraceScope(QueryTrace* t);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  QueryTrace* prev_;
};

inline void TraceAddBytesScanned(uint64_t n) {
  if (QueryTrace* t = CurrentQueryTrace()) t->bytes_scanned += n;
}
inline void TraceAddPiecesCreated(uint32_t n) {
  if (QueryTrace* t = CurrentQueryTrace()) t->pieces_created += n;
}

/// Finalizes a query: per-mode counter + latency histogram, slow flag and
/// counter, trace-ring push. \p mode_name is the stable ExecMode label.
void RecordQueryDone(QueryTrace& t, const char* mode_name);

// --- Formatters --------------------------------------------------------------

/// Prometheus text exposition (counters, gauges, histograms; traces are a
/// wire/CLI concern and are not exported here).
std::string PrometheusText(const MetricsSnapshot& snap);

/// One-page human-readable dump (SIGUSR1, `holix_cli stats`).
std::string HumanText(const MetricsSnapshot& snap);

/// Flat JSON {counters:{...}, gauges:{...}, histograms:{name:{count,sum}}}.
std::string MetricsJson(const MetricsSnapshot& snap);

}  // namespace holix::obs
