/// \file checksum.h
/// \brief CRC32C (Castagnoli) over byte ranges — the integrity check of
/// every persisted artifact (WAL records, snapshot files, the manifest).
///
/// Software slice-by-one implementation: the table is built once at first
/// use, the polynomial is the iSCSI/ext4 Castagnoli polynomial (reflected
/// 0x82F63B78), and the check value for "123456789" is 0xE3069283 (the
/// standard CRC-32C known answer, pinned by persist_test). Throughput is
/// irrelevant here next to the fsync latencies it rides along with.

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace holix::persist {

namespace detail {

inline const std::array<uint32_t, 256>& Crc32cTable() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc & 1) ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace detail

/// CRC32C of \p n bytes at \p data, continuing from \p seed (pass the
/// previous return value to checksum discontiguous ranges; the default
/// starts a fresh CRC).
inline uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0) {
  const auto& table = detail::Crc32cTable();
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace holix::persist
