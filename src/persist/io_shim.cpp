#include "persist/io_shim.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace holix::persist::io {

namespace {

/// One injectable failure point: fires on the n-th operation (1-based).
struct FaultPoint {
  std::atomic<uint64_t> arm{0};  // 0 = disabled
  std::atomic<uint64_t> ops{0};

  /// Counts one operation; true when this op should fail.
  bool ShouldFail() {
    const uint64_t armed = arm.load(std::memory_order_relaxed);
    if (armed == 0) return false;
    const uint64_t op = ops.fetch_add(1, std::memory_order_relaxed) + 1;
    return op == armed;
  }
};

struct FaultConfig {
  FaultPoint write;
  FaultPoint fsync;
  FaultPoint rename;
  std::atomic<bool> torn_write{false};
  std::atomic<uint64_t> fired{0};
};

FaultConfig& Config() {
  static FaultConfig cfg;
  return cfg;
}

uint64_t EnvU64(const char* name) {
  const char* v = std::getenv(name);
  return v == nullptr ? 0 : std::strtoull(v, nullptr, 10);
}

void LoadFromEnv() {
  FaultConfig& cfg = Config();
  cfg.write.arm.store(EnvU64("HOLIX_FAULT_WRITE_N"), std::memory_order_relaxed);
  cfg.write.ops.store(0, std::memory_order_relaxed);
  cfg.fsync.arm.store(EnvU64("HOLIX_FAULT_FSYNC_N"), std::memory_order_relaxed);
  cfg.fsync.ops.store(0, std::memory_order_relaxed);
  cfg.rename.arm.store(EnvU64("HOLIX_FAULT_RENAME_N"),
                       std::memory_order_relaxed);
  cfg.rename.ops.store(0, std::memory_order_relaxed);
  cfg.torn_write.store(EnvU64("HOLIX_FAULT_WRITE_TORN") != 0,
                       std::memory_order_relaxed);
  cfg.fired.store(0, std::memory_order_relaxed);
}

void EnsureLoaded() {
  static std::once_flag once;
  std::call_once(once, LoadFromEnv);
}

bool WriteAll(int fd, const uint8_t* p, size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += static_cast<size_t>(w);
    n -= static_cast<size_t>(w);
  }
  return true;
}

}  // namespace

bool FullWrite(int fd, const void* data, size_t n) {
  EnsureLoaded();
  FaultConfig& cfg = Config();
  if (cfg.write.ShouldFail()) {
    cfg.fired.fetch_add(1, std::memory_order_relaxed);
    if (cfg.torn_write.load(std::memory_order_relaxed) && n > 1) {
      // Torn write: half the record reaches the file, then the "crash".
      WriteAll(fd, static_cast<const uint8_t*>(data), n / 2);
    }
    errno = EIO;
    return false;
  }
  return WriteAll(fd, static_cast<const uint8_t*>(data), n);
}

bool Fsync(int fd) {
  EnsureLoaded();
  FaultConfig& cfg = Config();
  if (cfg.fsync.ShouldFail()) {
    cfg.fired.fetch_add(1, std::memory_order_relaxed);
    errno = EIO;
    return false;
  }
  return ::fsync(fd) == 0;
}

bool FsyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return false;
  const bool ok = Fsync(fd);
  const int saved = errno;
  ::close(fd);
  errno = saved;
  return ok;
}

bool AtomicRename(const std::string& from, const std::string& to) {
  EnsureLoaded();
  FaultConfig& cfg = Config();
  if (cfg.rename.ShouldFail()) {
    cfg.fired.fetch_add(1, std::memory_order_relaxed);
    errno = EIO;
    return false;
  }
  return ::rename(from.c_str(), to.c_str()) == 0;
}

bool TruncateFile(const std::string& path, uint64_t keep_bytes) {
  return ::truncate(path.c_str(), static_cast<off_t>(keep_bytes)) == 0;
}

void ReloadFaultConfigForTest() {
  EnsureLoaded();
  LoadFromEnv();
}

uint64_t InjectedFaultCount() {
  EnsureLoaded();
  return Config().fired.load(std::memory_order_relaxed);
}

}  // namespace holix::persist::io
