/// \file io_shim.h
/// \brief Fault-injectable file I/O used by every durability code path.
///
/// All writes, fsyncs, and renames of the persist layer go through these
/// wrappers so recovery tests can prove torn-write and partial-checkpoint
/// safety against *injected* failures instead of hoping for real ones.
///
/// ## Fault knobs (read from the environment)
///
/// | variable                | effect                                        |
/// |-------------------------|-----------------------------------------------|
/// | HOLIX_FAULT_WRITE_N=k   | the k-th FullWrite fails with EIO             |
/// | HOLIX_FAULT_WRITE_TORN=1| ... after writing only half its bytes (torn)  |
/// | HOLIX_FAULT_FSYNC_N=k   | the k-th Fsync fails with EIO                 |
/// | HOLIX_FAULT_RENAME_N=k  | the k-th AtomicRename fails with EIO          |
///
/// Counters are process-wide and 1-based; `0`/unset disables the fault.
/// Each fault fires exactly once (subsequent ops succeed), which models a
/// single crash point. Tests mutate the environment and then call
/// `ReloadFaultConfigForTest()` to re-arm.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace holix::persist::io {

/// Writes all \p n bytes to \p fd (retrying short writes / EINTR).
/// \return true on success; false with errno set on failure (including an
/// injected fault, which sets errno = EIO).
bool FullWrite(int fd, const void* data, size_t n);

/// fsync(\p fd), fault-injectable. \return true on success.
bool Fsync(int fd);

/// fsync of a directory by path (to make a rename inside it durable).
bool FsyncDir(const std::string& dir);

/// rename(\p from, \p to), fault-injectable. \return true on success.
bool AtomicRename(const std::string& from, const std::string& to);

/// Truncates \p path to \p keep_bytes (test helper for torn WAL tails;
/// not fault-injected). \return true on success.
bool TruncateFile(const std::string& path, uint64_t keep_bytes);

/// Re-reads the HOLIX_FAULT_* environment and resets the op counters.
/// Called once automatically at process start (first shim use).
void ReloadFaultConfigForTest();

/// Number of injected faults that have fired since the last reload
/// (tests assert the fault they armed actually triggered).
uint64_t InjectedFaultCount();

}  // namespace holix::persist::io
