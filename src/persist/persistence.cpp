#include "persist/persistence.h"

#include <sys/stat.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "engine/database.h"
#include "obs/metrics.h"

namespace holix::persist {

namespace {

obs::Counter& CheckpointsTotal() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("holix_checkpoints_total");
  return c;
}

obs::Histogram& CheckpointSeconds() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      "holix_checkpoint_seconds", {0.001, 0.01, 0.1, 1.0, 10.0, 60.0});
  return h;
}

obs::Counter& ReplayedRecords() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "holix_wal_replayed_records_total");
  return c;
}

obs::Counter& RecoveredColumns() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "holix_recovery_columns_total");
  return c;
}

obs::Counter& RecoveredPivots() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "holix_recovery_pivots_total");
  return c;
}

obs::Histogram& RecoverySeconds() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      "holix_recovery_seconds", {0.001, 0.01, 0.1, 1.0, 10.0, 60.0});
  return h;
}

}  // namespace

PersistenceManager::PersistenceManager(Database& db, PersistOptions opts)
    : db_(db), opts_(std::move(opts)) {
  if (opts_.data_dir.empty()) {
    throw std::invalid_argument("PersistOptions::data_dir must be set");
  }
  if (::mkdir(opts_.data_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    throw std::runtime_error("mkdir " + opts_.data_dir + ": " +
                             std::strerror(errno));
  }

  uint64_t first_lsn = 1;
  if (persist::HasManifest(opts_.data_dir)) {
    Recover();
    first_lsn = recovered_lsn_ + 1;
  }
  // Append to a fresh WAL epoch: never to an existing file, whose tail
  // may be torn — records behind a torn tail would be unreachable.
  const std::vector<uint64_t> epochs = ListWalEpochs(opts_.data_dir);
  wal_epoch_ = (epochs.empty() ? 0 : epochs.back()) + 1;
  if (wal_epoch_ <= snapshot_epoch_) wal_epoch_ = snapshot_epoch_ + 1;
  wal_ = std::make_unique<WalWriter>(WalPath(opts_.data_dir, wal_epoch_),
                                     opts_.fsync, first_lsn);
  db_.SetDurabilityHook(this);

  if (opts_.fsync == FsyncPolicy::kInterval ||
      opts_.checkpoint_interval_seconds > 0) {
    background_ = std::thread([this] { BackgroundLoop(); });
  }
}

PersistenceManager::~PersistenceManager() {
  db_.SetDurabilityHook(nullptr);
  {
    std::lock_guard<std::mutex> lock(bg_mu_);
    stop_ = true;
  }
  bg_cv_.notify_all();
  if (background_.joinable()) background_.join();
  if (wal_ != nullptr) wal_->SyncNow();
}

uint64_t PersistenceManager::LogUpdate(WalOp op, const std::string& table,
                                       const std::string& column,
                                       ValueType type, uint64_t rank,
                                       RowId rid) {
  return wal_->Append(op, table, column, type, rank, rid);
}

uint64_t PersistenceManager::Checkpoint() {
  const auto start = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> ck(checkpoint_mu_);

  // Export under the database's update barrier; rotate the WAL inside the
  // same critical section so no update can slip between the state cut and
  // the epoch boundary (its record would land in a file the new manifest
  // no longer replays).
  const uint64_t new_wal_epoch = wal_epoch_ + 1;
  std::unique_ptr<WalWriter> old_wal;
  uint64_t cut_next_lsn = 1;
  DurableDatabaseState state = db_.ExportDurableState([&] {
    cut_next_lsn = wal_->next_lsn();
    old_wal = std::move(wal_);
    old_wal->SyncNow(/*force=*/true);
    wal_ = std::make_unique<WalWriter>(WalPath(opts_.data_dir, new_wal_epoch),
                                       opts_.fsync, cut_next_lsn);
  });
  state.last_lsn = cut_next_lsn - 1;
  wal_epoch_ = new_wal_epoch;
  old_wal.reset();

  const uint64_t new_epoch = snapshot_epoch_ + 1;
  WriteSnapshot(opts_.data_dir, new_epoch, wal_epoch_, state);
  snapshot_epoch_ = new_epoch;
  last_checkpoint_lsn_.store(state.last_lsn, std::memory_order_relaxed);

  Manifest man;
  man.snapshot_epoch = snapshot_epoch_;
  man.wal_epoch = wal_epoch_;
  GarbageCollect(opts_.data_dir, man);

  CheckpointsTotal().Inc();
  CheckpointSeconds().Observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());
  return state.last_lsn;
}

void PersistenceManager::Recover() {
  const auto start = std::chrono::steady_clock::now();
  const Manifest man = ReadManifest(opts_.data_dir);
  DurableDatabaseState state = ReadSnapshot(opts_.data_dir, man);
  snapshot_epoch_ = man.snapshot_epoch;
  db_.BeginRestore(state);

  // Replay every WAL epoch the manifest still covers, in epoch order.
  // Records at or below the checkpoint LSN are already in the snapshot; a
  // torn tail ends one epoch's intact prefix, but later epochs (written
  // after a post-crash restart) still replay.
  uint64_t last = man.last_lsn;
  uint64_t replayed = 0;
  for (uint64_t epoch : ListWalEpochs(opts_.data_dir)) {
    if (epoch < man.wal_epoch) continue;
    for (const WalRecord& rec : ReadWalFile(WalPath(opts_.data_dir, epoch))) {
      if (rec.lsn <= man.last_lsn) continue;
      if (rec.op == WalOp::kInsert) {
        db_.ApplyLoggedInsert(rec.table, rec.column, rec.type, rec.rank,
                              rec.rowid);
      } else {
        db_.ApplyLoggedDelete(rec.table, rec.column, rec.type, rec.rank,
                              rec.rowid);
      }
      if (rec.lsn > last) last = rec.lsn;
      ++replayed;
    }
  }
  ReplayedRecords().Inc(replayed);

  db_.FinishRestore(state);
  recovered_ = true;
  recovered_lsn_ = last;
  last_checkpoint_lsn_.store(man.last_lsn, std::memory_order_relaxed);

  RecoveredColumns().Inc(state.columns.size());
  for (const DurableColumnState& cs : state.columns) {
    RecoveredPivots().Inc(cs.pivot_ranks.size());
  }
  RecoverySeconds().Observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());
}

void PersistenceManager::BackgroundLoop() {
  using clock = std::chrono::steady_clock;
  const auto fsync_every =
      std::chrono::duration<double>(opts_.fsync_interval_seconds);
  const auto ckpt_every =
      std::chrono::duration<double>(opts_.checkpoint_interval_seconds);
  auto next_ckpt = clock::now() + std::chrono::duration_cast<clock::duration>(
                                      ckpt_every);
  std::unique_lock<std::mutex> lock(bg_mu_);
  while (!stop_) {
    auto wake = opts_.fsync == FsyncPolicy::kInterval
                    ? clock::now() +
                          std::chrono::duration_cast<clock::duration>(
                              fsync_every)
                    : next_ckpt;
    if (opts_.checkpoint_interval_seconds > 0 && next_ckpt < wake) {
      wake = next_ckpt;
    }
    bg_cv_.wait_until(lock, wake, [this] { return stop_; });
    if (stop_) break;
    lock.unlock();
    if (opts_.fsync == FsyncPolicy::kInterval) {
      try {
        wal_->SyncNow();
      } catch (const std::exception&) {
        // The next Append on a failed log throws to its caller.
      }
    }
    if (opts_.checkpoint_interval_seconds > 0 && clock::now() >= next_ckpt) {
      try {
        Checkpoint();
      } catch (const std::exception&) {
        // Background checkpoints are best-effort; a failed one leaves the
        // previous manifest in force and will be retried next interval.
      }
      next_ckpt = clock::now() + std::chrono::duration_cast<clock::duration>(
                                     ckpt_every);
    }
    lock.lock();
  }
}

}  // namespace holix::persist
