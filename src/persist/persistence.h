/// \file persistence.h
/// \brief PersistenceManager: attaches durability to a Database — WAL
/// logging of every update, sharp checkpoints, crash recovery with index
/// warm-start, and the background fsync/checkpoint thread.
///
/// ## Lifecycle
///
///   Database db(opts);                      // empty
///   persist::PersistOptions p{.data_dir = dir};
///   if (persist::HasManifest(dir)) {
///     persist::PersistenceManager pm(db, p);   // recovers into db
///   } else {
///     LoadUniformTable(db, ...);               // or any other load
///     persist::PersistenceManager pm(db, p);
///     pm.Checkpoint();                         // make the load durable
///   }
///
/// Recovery order (the RecoveryManager role): read manifest → read + CRC
/// column snapshots → restore base columns and pending registries →
/// replay WAL epochs ≥ the manifest's (records ≤ checkpoint LSN skipped,
/// torn tails cut) → force-merge → re-crack each cracker at its saved
/// pivots (bit-identical piece boundaries, since a boundary's position is
/// a pure function of the column multiset) → restore stats + holistic
/// store membership → verify invariants.
///
/// Destroy the manager before the Database; the destructor detaches the
/// hook and flushes the WAL.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "engine/durability.h"
#include "persist/snapshot.h"
#include "persist/wal.h"

namespace holix {
class Database;
}  // namespace holix

namespace holix::persist {

struct PersistOptions {
  std::string data_dir;
  FsyncPolicy fsync = FsyncPolicy::kAlways;
  /// kInterval: seconds between background WAL fsyncs.
  double fsync_interval_seconds = 0.05;
  /// > 0: seconds between automatic background checkpoints.
  double checkpoint_interval_seconds = 0;
};

class PersistenceManager : public DurabilityHook {
 public:
  /// Attaches durability to \p db. When \p opts.data_dir holds a
  /// manifest, recovers into \p db (which must be empty); otherwise the
  /// directory is created and the caller is expected to Checkpoint()
  /// once loading is done. Throws std::runtime_error on I/O failure or
  /// corruption.
  PersistenceManager(Database& db, PersistOptions opts);
  ~PersistenceManager() override;

  PersistenceManager(const PersistenceManager&) = delete;
  PersistenceManager& operator=(const PersistenceManager&) = delete;

  // DurabilityHook:
  uint64_t LogUpdate(WalOp op, const std::string& table,
                     const std::string& column, ValueType type, uint64_t rank,
                     RowId rid) override;
  uint64_t Checkpoint() override;

  /// True when the constructor restored state from disk.
  bool recovered() const { return recovered_; }
  /// LSN of the last completed checkpoint (0 before the first one).
  uint64_t last_checkpoint_lsn() const {
    return last_checkpoint_lsn_.load(std::memory_order_relaxed);
  }
  /// LSN of the last update replayed during recovery (0 when none).
  uint64_t recovered_lsn() const { return recovered_lsn_; }

  const PersistOptions& options() const { return opts_; }

 private:
  void Recover();
  void BackgroundLoop();

  Database& db_;
  const PersistOptions opts_;
  bool recovered_ = false;
  uint64_t recovered_lsn_ = 0;
  std::atomic<uint64_t> last_checkpoint_lsn_{0};

  std::mutex checkpoint_mu_;  // serializes concurrent Checkpoint() calls
  uint64_t snapshot_epoch_ = 0;
  uint64_t wal_epoch_ = 0;
  std::unique_ptr<WalWriter> wal_;

  std::thread background_;
  std::mutex bg_mu_;
  std::condition_variable bg_cv_;
  bool stop_ = false;
};

}  // namespace holix::persist
