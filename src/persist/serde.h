/// \file serde.h
/// \brief Little-endian byte (de)serialization for the durability formats.
///
/// Every persisted integer is written little-endian byte-by-byte, so the
/// on-disk formats are identical across hosts regardless of the compiler's
/// layout choices; keys are persisted as their `KeyTraits<T>::ToRank`
/// u64 image (order-preserving, canonical-NaN, lossless), never as raw
/// floating-point bits.

#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace holix::persist {

/// Append-only byte buffer used to build records and snapshot bodies.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(v); }

  void PutU16(uint16_t v) {
    buf_.push_back(static_cast<uint8_t>(v));
    buf_.push_back(static_cast<uint8_t>(v >> 8));
  }

  void PutU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }

  void PutU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }

  /// Length-prefixed (u16) string; throws when the name exceeds 64 KiB.
  void PutString(const std::string& s) {
    if (s.size() > UINT16_MAX) {
      throw std::length_error("persisted name too long: " + s.substr(0, 64));
    }
    PutU16(static_cast<uint16_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::vector<uint8_t>& bytes() { return buf_; }
  size_t size() const { return buf_.size(); }

 private:
  std::vector<uint8_t> buf_;
};

/// Bounded reader over a byte range. Every getter throws
/// std::out_of_range on underrun — callers treat that as corruption.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t n) : p_(data), end_(data + n) {}

  uint8_t GetU8() {
    Need(1);
    return *p_++;
  }

  uint16_t GetU16() {
    Need(2);
    uint16_t v = static_cast<uint16_t>(p_[0]) |
                 static_cast<uint16_t>(p_[1]) << 8;
    p_ += 2;
    return v;
  }

  uint32_t GetU32() {
    Need(4);
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p_[i]) << (8 * i);
    p_ += 4;
    return v;
  }

  uint64_t GetU64() {
    Need(8);
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p_[i]) << (8 * i);
    p_ += 8;
    return v;
  }

  std::string GetString() {
    const uint16_t n = GetU16();
    Need(n);
    std::string s(reinterpret_cast<const char*>(p_), n);
    p_ += n;
    return s;
  }

  size_t remaining() const { return static_cast<size_t>(end_ - p_); }
  bool AtEnd() const { return p_ == end_; }

 private:
  void Need(size_t n) const {
    if (static_cast<size_t>(end_ - p_) < n) {
      throw std::out_of_range("persisted record truncated");
    }
  }

  const uint8_t* p_;
  const uint8_t* end_;
};

}  // namespace holix::persist
