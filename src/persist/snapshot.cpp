#include "persist/snapshot.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "obs/metrics.h"
#include "persist/checksum.h"
#include "persist/io_shim.h"
#include "persist/serde.h"

namespace holix::persist {

namespace {

constexpr char kColMagic[8] = {'H', 'O', 'L', 'I', 'X', 'C', 'O', 'L'};
constexpr char kManMagic[8] = {'H', 'O', 'L', 'I', 'X', 'M', 'A', 'N'};
constexpr uint32_t kSnapshotVersion = 1;

[[noreturn]] void ThrowErrno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

obs::Counter& CheckpointBytes() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "holix_checkpoint_bytes_total");
  return c;
}

/// Writes `magic | version | crc | body_len | body` to `path.tmp`, fsyncs,
/// renames into place. Throws on failure, leaving at most a .tmp behind.
void WriteFramedFile(const std::string& path, const char magic[8],
                     const std::vector<uint8_t>& body) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) ThrowErrno("snapshot open " + tmp);
  ByteWriter header;
  header.bytes().insert(header.bytes().end(), magic, magic + 8);
  header.PutU32(kSnapshotVersion);
  header.PutU32(Crc32c(body.data(), body.size()));
  header.PutU64(body.size());
  bool ok = io::FullWrite(fd, header.bytes().data(), header.size()) &&
            io::FullWrite(fd, body.data(), body.size()) && io::Fsync(fd);
  const int saved = errno;
  ::close(fd);
  if (!ok) {
    ::unlink(tmp.c_str());
    errno = saved;
    ThrowErrno("snapshot write " + tmp);
  }
  if (!io::AtomicRename(tmp, path)) {
    const int rename_errno = errno;
    ::unlink(tmp.c_str());
    errno = rename_errno;
    ThrowErrno("snapshot rename " + tmp);
  }
  CheckpointBytes().Inc(header.size() + body.size());
}

/// Reads a framed file, validating magic, version, and CRC.
std::vector<uint8_t> ReadFramedFile(const std::string& path,
                                    const char magic[8]) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) ThrowErrno("snapshot open " + path);
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    ThrowErrno("snapshot stat " + path);
  }
  std::vector<uint8_t> data(static_cast<size_t>(st.st_size));
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::read(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      errno = saved;
      ThrowErrno("snapshot read " + path);
    }
    if (n == 0) break;
    off += static_cast<size_t>(n);
  }
  ::close(fd);

  constexpr size_t kHeaderSize = 8 + 4 + 4 + 8;
  if (off < kHeaderSize || std::memcmp(data.data(), magic, 8) != 0) {
    throw std::runtime_error(path + ": bad magic");
  }
  ByteReader hdr(data.data() + 8, kHeaderSize - 8);
  const uint32_t version = hdr.GetU32();
  const uint32_t crc = hdr.GetU32();
  const uint64_t body_len = hdr.GetU64();
  if (version != kSnapshotVersion) {
    throw std::runtime_error(path + ": unsupported version " +
                             std::to_string(version));
  }
  if (off != kHeaderSize + body_len) {
    throw std::runtime_error(path + ": truncated (" + std::to_string(off) +
                             " bytes, expected " +
                             std::to_string(kHeaderSize + body_len) + ")");
  }
  std::vector<uint8_t> body(data.begin() + kHeaderSize, data.begin() + off);
  if (Crc32c(body.data(), body.size()) != crc) {
    throw std::runtime_error(path + ": checksum mismatch");
  }
  return body;
}

std::vector<uint8_t> EncodeColumn(const DurableColumnState& cs) {
  ByteWriter w;
  w.PutString(cs.table);
  w.PutString(cs.column);
  w.PutU8(static_cast<uint8_t>(cs.type));
  w.PutU8(cs.has_cracker ? 1 : 0);
  w.PutU8(cs.store_state);
  w.PutU64(cs.base_ranks.size());
  for (uint64_t r : cs.base_ranks) w.PutU64(r);
  w.PutU64(cs.appended.size());
  for (const auto& [rid, rank] : cs.appended) {
    w.PutU64(rid);
    w.PutU64(rank);
  }
  w.PutU64(cs.deleted_base.size());
  for (const auto& [rid, rank] : cs.deleted_base) {
    w.PutU64(rid);
    w.PutU64(rank);
  }
  w.PutU64(cs.pivot_ranks.size());
  for (uint64_t r : cs.pivot_ranks) w.PutU64(r);
  for (uint64_t s : cs.stats) w.PutU64(s);
  return std::move(w.bytes());
}

DurableColumnState DecodeColumn(const std::vector<uint8_t>& body,
                                const std::string& path) {
  try {
    ByteReader r(body.data(), body.size());
    DurableColumnState cs;
    cs.table = r.GetString();
    cs.column = r.GetString();
    cs.type = static_cast<ValueType>(r.GetU8());
    cs.has_cracker = r.GetU8() != 0;
    cs.store_state = r.GetU8();
    cs.base_ranks.resize(r.GetU64());
    for (uint64_t& v : cs.base_ranks) v = r.GetU64();
    cs.appended.resize(r.GetU64());
    for (auto& [rid, rank] : cs.appended) {
      rid = r.GetU64();
      rank = r.GetU64();
    }
    cs.deleted_base.resize(r.GetU64());
    for (auto& [rid, rank] : cs.deleted_base) {
      rid = r.GetU64();
      rank = r.GetU64();
    }
    cs.pivot_ranks.resize(r.GetU64());
    for (uint64_t& v : cs.pivot_ranks) v = r.GetU64();
    for (uint64_t& s : cs.stats) s = r.GetU64();
    if (!r.AtEnd()) throw std::out_of_range("trailing bytes");
    return cs;
  } catch (const std::out_of_range& e) {
    throw std::runtime_error(path + ": malformed column body (" + e.what() +
                             ")");
  }
}

}  // namespace

std::string ManifestPath(const std::string& dir) { return dir + "/MANIFEST"; }

std::string SnapshotDir(const std::string& dir, uint64_t epoch) {
  return dir + "/snapshot-" + std::to_string(epoch);
}

std::string WalPath(const std::string& dir, uint64_t epoch) {
  return dir + "/wal-" + std::to_string(epoch) + ".log";
}

std::string ColumnFileName(const std::string& snapshot_dir,
                           const std::string& table,
                           const std::string& column) {
  return snapshot_dir + "/" + table + "." + column + ".col";
}

bool HasManifest(const std::string& dir) {
  return ::access(ManifestPath(dir).c_str(), R_OK) == 0;
}

void WriteSnapshot(const std::string& dir, uint64_t epoch, uint64_t wal_epoch,
                   const DurableDatabaseState& state) {
  const std::string snap_dir = SnapshotDir(dir, epoch);
  if (::mkdir(snap_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    ThrowErrno("snapshot mkdir " + snap_dir);
  }

  std::vector<ManifestColumnFile> files;
  files.reserve(state.columns.size());
  for (const DurableColumnState& cs : state.columns) {
    const std::vector<uint8_t> body = EncodeColumn(cs);
    const std::string path = ColumnFileName(snap_dir, cs.table, cs.column);
    WriteFramedFile(path, kColMagic, body);
    files.push_back({cs.table, cs.column, cs.type,
                     Crc32c(body.data(), body.size()), body.size()});
  }
  if (!io::FsyncDir(snap_dir)) ThrowErrno("snapshot fsync " + snap_dir);

  ByteWriter m;
  m.PutU64(epoch);
  m.PutU64(wal_epoch);
  m.PutU64(state.last_lsn);
  m.PutU64(state.next_rowid);
  m.PutU32(static_cast<uint32_t>(state.tables.size()));
  for (const DurableTableState& t : state.tables) {
    m.PutString(t.name);
    m.PutU64(t.base_rows);
    m.PutU32(static_cast<uint32_t>(t.columns.size()));
    for (const std::string& c : t.columns) m.PutString(c);
  }
  m.PutU32(static_cast<uint32_t>(files.size()));
  for (const ManifestColumnFile& f : files) {
    m.PutString(f.table);
    m.PutString(f.column);
    m.PutU8(static_cast<uint8_t>(f.type));
    m.PutU32(f.crc);
    m.PutU64(f.bytes);
  }
  WriteFramedFile(ManifestPath(dir), kManMagic, m.bytes());
  if (!io::FsyncDir(dir)) ThrowErrno("snapshot fsync " + dir);
}

Manifest ReadManifest(const std::string& dir) {
  const std::string path = ManifestPath(dir);
  const std::vector<uint8_t> body = ReadFramedFile(path, kManMagic);
  try {
    ByteReader r(body.data(), body.size());
    Manifest man;
    man.snapshot_epoch = r.GetU64();
    man.wal_epoch = r.GetU64();
    man.last_lsn = r.GetU64();
    man.next_rowid = r.GetU64();
    man.tables.resize(r.GetU32());
    for (DurableTableState& t : man.tables) {
      t.name = r.GetString();
      t.base_rows = r.GetU64();
      t.columns.resize(r.GetU32());
      for (std::string& c : t.columns) c = r.GetString();
    }
    man.columns.resize(r.GetU32());
    for (ManifestColumnFile& f : man.columns) {
      f.table = r.GetString();
      f.column = r.GetString();
      f.type = static_cast<ValueType>(r.GetU8());
      f.crc = r.GetU32();
      f.bytes = r.GetU64();
    }
    if (!r.AtEnd()) throw std::out_of_range("trailing bytes");
    return man;
  } catch (const std::out_of_range& e) {
    throw std::runtime_error(path + ": malformed manifest (" + e.what() + ")");
  }
}

DurableDatabaseState ReadSnapshot(const std::string& dir,
                                  const Manifest& manifest) {
  DurableDatabaseState state;
  state.last_lsn = manifest.last_lsn;
  state.next_rowid = manifest.next_rowid;
  state.tables = manifest.tables;
  const std::string snap_dir = SnapshotDir(dir, manifest.snapshot_epoch);
  state.columns.reserve(manifest.columns.size());
  for (const ManifestColumnFile& f : manifest.columns) {
    const std::string path = ColumnFileName(snap_dir, f.table, f.column);
    const std::vector<uint8_t> body = ReadFramedFile(path, kColMagic);
    if (body.size() != f.bytes ||
        Crc32c(body.data(), body.size()) != f.crc) {
      throw std::runtime_error(path + ": does not match manifest checksum");
    }
    DurableColumnState cs = DecodeColumn(body, path);
    if (cs.table != f.table || cs.column != f.column || cs.type != f.type) {
      throw std::runtime_error(path + ": identity mismatch vs manifest");
    }
    state.columns.push_back(std::move(cs));
  }
  return state;
}

void GarbageCollect(const std::string& dir, const Manifest& manifest) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;
  std::vector<std::string> doomed_dirs;
  std::vector<std::string> doomed_files;
  while (dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    uint64_t epoch = 0;
    if (std::sscanf(name.c_str(), "snapshot-%llu",
                    reinterpret_cast<unsigned long long*>(&epoch)) == 1) {
      if (epoch != manifest.snapshot_epoch) {
        doomed_dirs.push_back(dir + "/" + name);
      }
    } else if (std::sscanf(name.c_str(), "wal-%llu.log",
                           reinterpret_cast<unsigned long long*>(&epoch)) ==
               1) {
      if (epoch < manifest.wal_epoch) doomed_files.push_back(dir + "/" + name);
    } else if (name.size() > 4 &&
               name.compare(name.size() - 4, 4, ".tmp") == 0) {
      doomed_files.push_back(dir + "/" + name);
    }
  }
  ::closedir(d);
  for (const std::string& f : doomed_files) ::unlink(f.c_str());
  for (const std::string& sd : doomed_dirs) {
    if (DIR* inner = ::opendir(sd.c_str())) {
      while (dirent* e = ::readdir(inner)) {
        const std::string name = e->d_name;
        if (name != "." && name != "..") ::unlink((sd + "/" + name).c_str());
      }
      ::closedir(inner);
    }
    ::rmdir(sd.c_str());
  }
}

std::vector<uint64_t> ListWalEpochs(const std::string& dir) {
  std::vector<uint64_t> epochs;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return epochs;
  while (dirent* e = ::readdir(d)) {
    uint64_t epoch = 0;
    if (std::sscanf(e->d_name, "wal-%llu.log",
                    reinterpret_cast<unsigned long long*>(&epoch)) == 1) {
      epochs.push_back(epoch);
    }
  }
  ::closedir(d);
  std::sort(epochs.begin(), epochs.end());
  return epochs;
}

}  // namespace holix::persist
