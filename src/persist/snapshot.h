/// \file snapshot.h
/// \brief Versioned, checksummed column snapshot files and the atomic
/// rename-into-place manifest.
///
/// ## Layout of a data directory
///
///   <data-dir>/MANIFEST                      the recovery root (see below)
///   <data-dir>/snapshot-<epoch>/<t>.<c>.col  one file per column
///   <data-dir>/wal-<epoch>.log               pending-update WAL epochs
///
/// ## File framing (shared by .col files and the MANIFEST)
///
///   magic (8) | u32 version | u32 crc32c(body) | u64 body_len | body
///
/// Files are written to `<name>.tmp`, fsynced, renamed into place, and the
/// directory fsynced — a reader never observes a partial file, and a crash
/// mid-checkpoint leaves the previous MANIFEST (and therefore the previous
/// consistent state) in force.
///
/// The manifest names the snapshot epoch, the WAL epoch replay starts at,
/// the checkpoint LSN, the rowid floor, table shapes, and the per-column
/// file list with each file's CRC (double-checked against the file's own
/// header at recovery).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/durability.h"

namespace holix::persist {

/// One column file as listed by the manifest.
struct ManifestColumnFile {
  std::string table;
  std::string column;
  ValueType type = ValueType::kInt64;
  uint32_t crc = 0;       ///< CRC of the column file's body
  uint64_t bytes = 0;     ///< body length
};

/// Decoded MANIFEST.
struct Manifest {
  uint64_t snapshot_epoch = 0;
  uint64_t wal_epoch = 0;  ///< replay WAL epochs >= this
  uint64_t last_lsn = 0;   ///< records with lsn <= this are in the snapshot
  uint64_t next_rowid = 0;
  std::vector<DurableTableState> tables;
  std::vector<ManifestColumnFile> columns;
};

/// `<dir>/MANIFEST`.
std::string ManifestPath(const std::string& dir);
/// `<dir>/snapshot-<epoch>`.
std::string SnapshotDir(const std::string& dir, uint64_t epoch);
/// `<dir>/wal-<epoch>.log`.
std::string WalPath(const std::string& dir, uint64_t epoch);
/// `<snapshot-dir>/<table>.<column>.col`.
std::string ColumnFileName(const std::string& snapshot_dir,
                           const std::string& table,
                           const std::string& column);

/// True when \p dir holds a readable manifest (i.e. recovery is possible).
bool HasManifest(const std::string& dir);

/// Serializes \p state into `snapshot-<epoch>/` under \p dir and then
/// atomically publishes the manifest. Throws std::runtime_error on any
/// I/O failure (injected faults included) — in that case the previous
/// manifest, if any, is untouched.
void WriteSnapshot(const std::string& dir, uint64_t epoch, uint64_t wal_epoch,
                   const DurableDatabaseState& state);

/// Reads and validates the manifest. Throws std::runtime_error when
/// absent or corrupt.
Manifest ReadManifest(const std::string& dir);

/// Reads every column file the manifest lists into \p state (tables,
/// columns, last_lsn, next_rowid). Throws std::runtime_error on missing
/// files or CRC mismatches.
DurableDatabaseState ReadSnapshot(const std::string& dir,
                                  const Manifest& manifest);

/// Deletes snapshot directories and WAL epoch files that \p manifest no
/// longer references (best-effort; errors are ignored).
void GarbageCollect(const std::string& dir, const Manifest& manifest);

/// Ascending WAL epochs present in \p dir.
std::vector<uint64_t> ListWalEpochs(const std::string& dir);

}  // namespace holix::persist
