#include "persist/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "obs/metrics.h"
#include "persist/checksum.h"
#include "persist/io_shim.h"
#include "persist/serde.h"

namespace holix::persist {

namespace {

constexpr char kWalMagic[8] = {'H', 'O', 'L', 'I', 'X', 'W', 'A', 'L'};
constexpr uint32_t kWalVersion = 1;

[[noreturn]] void ThrowErrno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

obs::Counter& RecordsCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("holix_wal_records_total");
  return c;
}

obs::Counter& BytesCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("holix_wal_bytes_total");
  return c;
}

obs::Counter& FsyncCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("holix_wal_fsyncs_total");
  return c;
}

obs::Histogram& AppendSeconds() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      "holix_wal_append_seconds",
      {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0});
  return h;
}

}  // namespace

std::optional<FsyncPolicy> FsyncPolicyFromString(const std::string& s) {
  if (s == "always") return FsyncPolicy::kAlways;
  if (s == "interval") return FsyncPolicy::kInterval;
  if (s == "never") return FsyncPolicy::kNever;
  return std::nullopt;
}

const char* FsyncPolicyName(FsyncPolicy p) {
  switch (p) {
    case FsyncPolicy::kAlways:
      return "always";
    case FsyncPolicy::kInterval:
      return "interval";
    case FsyncPolicy::kNever:
      return "never";
  }
  return "?";
}

WalWriter::WalWriter(std::string path, FsyncPolicy policy, uint64_t first_lsn)
    : path_(std::move(path)), policy_(policy), next_lsn_(first_lsn) {
  const bool existed = ::access(path_.c_str(), F_OK) == 0;
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) ThrowErrno("wal open " + path_);
  if (!existed) {
    ByteWriter w;
    w.bytes().insert(w.bytes().end(), kWalMagic, kWalMagic + sizeof(kWalMagic));
    w.PutU32(kWalVersion);
    w.PutU32(0);
    if (!io::FullWrite(fd_, w.bytes().data(), w.size()) ||
        !io::Fsync(fd_)) {
      const int saved = errno;
      ::close(fd_);
      fd_ = -1;
      errno = saved;
      ThrowErrno("wal header write " + path_);
    }
  }
  appended_lsn_ = first_lsn == 0 ? 0 : first_lsn - 1;
  synced_lsn_ = appended_lsn_;
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) {
    // Best-effort final flush; shutdown must not throw.
    if (policy_ != FsyncPolicy::kNever) io::Fsync(fd_);
    ::close(fd_);
  }
}

uint64_t WalWriter::Append(WalOp op, const std::string& table,
                          const std::string& column, ValueType type,
                          uint64_t rank, RowId rid) {
  const auto start = std::chrono::steady_clock::now();
  ByteWriter body;
  // LSN is assigned under the mutex below; serialize everything after it
  // first and patch the LSN bytes in, so the lock covers only the
  // assignment and the write.
  body.PutU64(0);  // lsn placeholder
  body.PutU8(static_cast<uint8_t>(op));
  body.PutU8(static_cast<uint8_t>(type));
  body.PutString(table);
  body.PutString(column);
  body.PutU64(rid);
  body.PutU64(rank);

  uint64_t lsn = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (io_failed_) throw std::runtime_error("wal: previous append failed");
    lsn = next_lsn_++;
    for (int i = 0; i < 8; ++i) {
      body.bytes()[static_cast<size_t>(i)] =
          static_cast<uint8_t>(lsn >> (8 * i));
    }
    ByteWriter frame;
    frame.PutU32(static_cast<uint32_t>(body.size()));
    frame.PutU32(Crc32c(body.bytes().data(), body.size()));
    frame.bytes().insert(frame.bytes().end(), body.bytes().begin(),
                         body.bytes().end());
    if (!io::FullWrite(fd_, frame.bytes().data(), frame.size())) {
      io_failed_ = true;
      ThrowErrno("wal append " + path_);
    }
    appended_lsn_ = lsn;
    RecordsCounter().Inc();
    BytesCounter().Inc(frame.size());
    if (policy_ == FsyncPolicy::kAlways) SyncCoveringLocked(lock, lsn);
  }
  AppendSeconds().Observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());
  return lsn;
}

/// Group commit: wait until some thread's fsync covers \p lsn. The thread
/// that finds no fsync in progress becomes the syncer for everything
/// appended so far; later arrivals wait and usually find their LSN
/// already covered when the syncer finishes.
void WalWriter::SyncCoveringLocked(std::unique_lock<std::mutex>& lock,
                                   uint64_t lsn) {
  while (synced_lsn_ < lsn) {
    if (io_failed_) throw std::runtime_error("wal: fsync failed");
    if (sync_in_progress_) {
      sync_cv_.wait(lock);
      continue;
    }
    sync_in_progress_ = true;
    const uint64_t covered = appended_lsn_;
    lock.unlock();
    const bool ok = io::Fsync(fd_);
    lock.lock();
    sync_in_progress_ = false;
    if (!ok) {
      io_failed_ = true;
      sync_cv_.notify_all();
      ThrowErrno("wal fsync " + path_);
    }
    FsyncCounter().Inc();
    if (covered > synced_lsn_) synced_lsn_ = covered;
    sync_cv_.notify_all();
  }
}

void WalWriter::SyncNow(bool force) {
  if (policy_ == FsyncPolicy::kNever && !force) return;
  std::unique_lock<std::mutex> lock(mu_);
  if (appended_lsn_ <= synced_lsn_ || io_failed_) return;
  SyncCoveringLocked(lock, appended_lsn_);
}

uint64_t WalWriter::next_lsn() const {
  std::unique_lock<std::mutex> lock(mu_);
  return next_lsn_;
}

std::vector<WalRecord> ReadWalFile(const std::string& path, bool* torn_tail) {
  if (torn_tail != nullptr) *torn_tail = false;
  std::vector<WalRecord> out;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return out;
    ThrowErrno("wal open " + path);
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    ThrowErrno("wal stat " + path);
  }
  std::vector<uint8_t> data(static_cast<size_t>(st.st_size));
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::read(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      errno = saved;
      ThrowErrno("wal read " + path);
    }
    if (n == 0) break;
    off += static_cast<size_t>(n);
  }
  ::close(fd);
  data.resize(off);

  constexpr size_t kHeaderSize = sizeof(kWalMagic) + 8;
  if (data.size() < kHeaderSize ||
      std::memcmp(data.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    throw std::runtime_error("wal " + path + ": bad magic");
  }
  {
    ByteReader hdr(data.data() + sizeof(kWalMagic), 8);
    const uint32_t version = hdr.GetU32();
    if (version != kWalVersion) {
      throw std::runtime_error("wal " + path + ": unsupported version " +
                               std::to_string(version));
    }
  }

  size_t pos = kHeaderSize;
  while (pos + 8 <= data.size()) {
    ByteReader frame(data.data() + pos, data.size() - pos);
    const uint32_t body_len = frame.GetU32();
    const uint32_t crc = frame.GetU32();
    if (body_len == 0 || frame.remaining() < body_len) break;  // torn tail
    const uint8_t* body = data.data() + pos + 8;
    if (Crc32c(body, body_len) != crc) break;  // torn/corrupt tail
    try {
      ByteReader r(body, body_len);
      WalRecord rec;
      rec.lsn = r.GetU64();
      rec.op = static_cast<WalOp>(r.GetU8());
      rec.type = static_cast<ValueType>(r.GetU8());
      rec.table = r.GetString();
      rec.column = r.GetString();
      rec.rowid = r.GetU64();
      rec.rank = r.GetU64();
      if ((rec.op != WalOp::kInsert && rec.op != WalOp::kDelete) ||
          !r.AtEnd()) {
        break;
      }
      out.push_back(std::move(rec));
    } catch (const std::out_of_range&) {
      break;  // body shorter than its fields claim
    }
    pos += 8 + body_len;
  }
  if (torn_tail != nullptr && pos != data.size()) *torn_tail = true;
  return out;
}

}  // namespace holix::persist
