/// \file wal.h
/// \brief The pending-update write-ahead log: append-only, CRC-per-record,
/// group-committed, epoch-rotated at checkpoints.
///
/// ## File format (`wal-<epoch>.log`)
///
///   header:  "HOLIXWAL" (8) | u32 version | u32 reserved
///   record:  u32 body_len | u32 crc32c(body) | body
///   body:    u64 lsn | u8 op | u8 value_type | str table | str column |
///            u64 rowid | u64 key_rank
///
/// All integers little-endian (persist/serde.h); strings u16
/// length-prefixed. A reader stops at the first record whose length or
/// CRC does not check out — that is the torn tail left by a crash, and
/// everything before it is intact (records are appended in LSN order
/// under one mutex, so prefix = LSN prefix).
///
/// ## Group commit
///
/// `Append` serializes and writes the record under the log mutex and
/// assigns the LSN there, so file order always equals LSN order. With
/// policy `kAlways`, `Append` then waits until an fsync covering its LSN
/// has completed — concurrent appenders piggyback on one fsync (the
/// classic group commit). `kInterval` leaves syncing to the owner's
/// background thread calling `SyncNow`; `kNever` never syncs (the OS
/// flushes eventually; kill -9 may lose the unsynced suffix, which is
/// exactly the durability the user traded away).

#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "engine/durability.h"

namespace holix::persist {

/// When WAL appends are made durable.
enum class FsyncPolicy : uint8_t {
  kAlways,    ///< every append waits for an fsync covering its LSN
  kInterval,  ///< a background thread fsyncs periodically
  kNever,     ///< never fsync (OS page cache only)
};

/// Parses "always" | "interval" | "never"; nullopt otherwise.
std::optional<FsyncPolicy> FsyncPolicyFromString(const std::string& s);

/// Printable name of a policy.
const char* FsyncPolicyName(FsyncPolicy p);

/// One decoded WAL record.
struct WalRecord {
  uint64_t lsn = 0;
  WalOp op = WalOp::kInsert;
  ValueType type = ValueType::kInt64;
  std::string table;
  std::string column;
  RowId rowid = 0;
  uint64_t rank = 0;
};

/// Append side of one WAL epoch file.
class WalWriter {
 public:
  /// Opens (creates or appends to) \p path. \p first_lsn is the LSN the
  /// next appended record receives. Throws std::runtime_error on I/O
  /// failure.
  WalWriter(std::string path, FsyncPolicy policy, uint64_t first_lsn);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one record (LSN assigned here) and, under kAlways, waits for
  /// it to be durable. Throws std::runtime_error when the write or the
  /// fsync fails (an injected fault surfaces here as well).
  uint64_t Append(WalOp op, const std::string& table,
                  const std::string& column, ValueType type, uint64_t rank,
                  RowId rid);

  /// Fsyncs everything appended so far (kInterval background thread; also
  /// used for a final flush at shutdown). No-op under kNever unless
  /// \p force.
  void SyncNow(bool force = false);

  /// LSN the next append will receive.
  uint64_t next_lsn() const;

  const std::string& path() const { return path_; }

 private:
  void SyncCoveringLocked(std::unique_lock<std::mutex>& lock, uint64_t lsn);

  const std::string path_;
  const FsyncPolicy policy_;
  int fd_ = -1;

  mutable std::mutex mu_;
  std::condition_variable sync_cv_;
  uint64_t next_lsn_;
  uint64_t appended_lsn_ = 0;  // highest LSN written to the fd
  uint64_t synced_lsn_ = 0;    // highest LSN known durable
  bool sync_in_progress_ = false;
  bool io_failed_ = false;
};

/// Reads every intact record of \p path in file (= LSN) order, stopping
/// silently at a torn tail. \p torn_tail (optional) reports whether a
/// partial/corrupt record was detected. Returns an empty vector when the
/// file does not exist. Throws std::runtime_error when the header is
/// unreadable or from the wrong magic/version (that is corruption of data
/// we believed durable, not a torn tail).
std::vector<WalRecord> ReadWalFile(const std::string& path,
                                   bool* torn_tail = nullptr);

}  // namespace holix::persist
