#include "server/client.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>

namespace holix::net {

namespace {

[[noreturn]] void ThrowErrno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

HolixClient::~HolixClient() { Close(); }

HolixClient::HolixClient(HolixClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_request_id_(other.next_request_id_),
      acc_(std::move(other.acc_)),
      stash_(std::move(other.stash_)),
      host_(std::move(other.host_)),
      port_(other.port_),
      opts_(other.opts_),
      next_session_handle_(other.next_session_handle_),
      sessions_(std::move(other.sessions_)) {}

HolixClient& HolixClient::operator=(HolixClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    next_request_id_ = other.next_request_id_;
    acc_ = std::move(other.acc_);
    stash_ = std::move(other.stash_);
    host_ = std::move(other.host_);
    port_ = other.port_;
    opts_ = other.opts_;
    next_session_handle_ = other.next_session_handle_;
    sessions_ = std::move(other.sessions_);
  }
  return *this;
}

void HolixClient::Close() {
  // Session handles survive: they are re-bound by the next reconnect.
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  acc_.clear();
  stash_.clear();
}

void HolixClient::Connect(const std::string& host, uint16_t port,
                          ClientOptions options) {
  Close();
  host_ = host;
  port_ = port;
  opts_ = options;
  sessions_.clear();
  next_session_handle_ = 1;
  Dial();
}

void HolixClient::Dial() {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) ThrowErrno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    Close();
    throw std::runtime_error("bad host address: " + host_);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    // A signal can interrupt connect() mid-handshake; the connection then
    // completes (or fails) asynchronously. Retrying connect() would return
    // EALREADY/EISCONN, so wait for writability and read the real outcome
    // from SO_ERROR instead.
    bool recovered = false;
    if (errno == EINTR) {
      pollfd pfd{fd_, POLLOUT, 0};
      while (::poll(&pfd, 1, -1) < 0 && errno == EINTR) {
      }
      int soerr = 0;
      socklen_t slen = sizeof(soerr);
      if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &soerr, &slen) == 0 &&
          soerr == 0) {
        recovered = true;
      } else {
        errno = soerr != 0 ? soerr : errno;
      }
    }
    if (!recovered) {
      const std::string err = std::strerror(errno);
      Close();
      throw ConnectionLost("connect " + host_ + ":" + std::to_string(port_) +
                           ": " + err);
    }
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  // Version handshake before anything else.
  const uint64_t id = SendMessage(Hello{});
  (void)Expect<HelloAck>(AwaitFrame(id));
}

void HolixClient::SendBytes(const std::vector<uint8_t>& bytes) {
  if (fd_ < 0) throw ConnectionLost("client not connected");
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = std::strerror(errno);
      Close();
      throw ConnectionLost("send: " + err);
    }
    off += static_cast<size_t>(n);
  }
}

Frame HolixClient::AwaitFrame(uint64_t request_id) {
  // Already stashed by an earlier out-of-order read?
  if (auto it = stash_.find(request_id); it != stash_.end()) {
    Frame f = std::move(it->second);
    stash_.erase(it);
    return f;
  }
  uint8_t chunk[64 * 1024];
  for (;;) {
    // Drain complete frames out of the accumulator first.
    size_t off = 0;
    for (;;) {
      Frame f;
      size_t consumed = 0;
      std::string error;
      const DecodeStatus st = TryDecodeFrame(
          acc_.data() + off, acc_.size() - off, &f, &consumed, &error);
      if (st == DecodeStatus::kMalformed) {
        Close();
        throw std::runtime_error("malformed frame from server: " + error);
      }
      if (st == DecodeStatus::kNeedMore) break;
      off += consumed;
      if (f.request_id == request_id) {
        acc_.erase(acc_.begin(), acc_.begin() + static_cast<ptrdiff_t>(off));
        return f;
      }
      stash_.emplace(f.request_id, std::move(f));
    }
    acc_.erase(acc_.begin(), acc_.begin() + static_cast<ptrdiff_t>(off));
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) {
      Close();
      throw ConnectionLost("server closed the connection");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = std::strerror(errno);
      Close();
      throw ConnectionLost("recv: " + err);
    }
    acc_.insert(acc_.end(), chunk, chunk + n);
  }
}

template <typename M>
M HolixClient::Expect(const Frame& f) {
  if (f.type == MsgType::kError) {
    ErrorMsg err;
    if (DecodeMessage(f, &err)) {
      throw std::runtime_error("server error " +
                               std::to_string(static_cast<int>(err.code)) +
                               ": " + err.message);
    }
    throw std::runtime_error("undecodable server error frame");
  }
  M out;
  if (!DecodeMessage(f, &out)) {
    throw std::runtime_error(std::string("unexpected response frame ") +
                             MsgTypeName(f.type) + " (wanted " +
                             MsgTypeName(M::kType) + ")");
  }
  return out;
}

void HolixClient::EnsureConnected() {
  if (fd_ >= 0) return;
  if (host_.empty() || !opts_.reconnect) {
    throw ConnectionLost("client not connected");
  }
  Dial();
  // Server sessions are per-connection — the old ones died with the old
  // socket. Re-bind every live handle to a fresh server session so handles
  // held by the caller keep working.
  for (auto& [handle, server_id] : sessions_) {
    const uint64_t id = SendMessage(OpenSessionReq{});
    server_id = Expect<OpenSessionAck>(AwaitFrame(id)).session_id;
  }
}

uint64_t HolixClient::ServerSession(uint64_t handle) const {
  const auto it = sessions_.find(handle);
  return it != sessions_.end() ? it->second : handle;
}

template <typename Resp, typename Req>
Resp HolixClient::Transact(Req req, uint64_t session_handle, bool idempotent) {
  int attempt = 0;
  double delay = opts_.backoff_initial_seconds;
  for (;;) {
    // Whether this attempt's request bytes may have reached the server. A
    // loss before the send is always safe to retry (even for updates); one
    // after it leaves the ack ambiguous, so only idempotent requests go out
    // again.
    bool sent = false;
    try {
      EnsureConnected();
      if constexpr (requires { req.session_id; }) {
        if (session_handle != 0) req.session_id = ServerSession(session_handle);
      }
      sent = true;
      const uint64_t id = SendMessage(req);
      return Expect<Resp>(AwaitFrame(id));
    } catch (const ConnectionLost&) {
      if (!opts_.reconnect || host_.empty()) throw;
      if (sent && !idempotent) throw;
      if (++attempt >= opts_.max_attempts) throw;
      std::this_thread::sleep_for(std::chrono::duration<double>(delay));
      delay = std::min(delay * 2.0, opts_.backoff_max_seconds);
    }
  }
}

uint64_t HolixClient::OpenSession() {
  const uint64_t server_id =
      Transact<OpenSessionAck>(OpenSessionReq{}, 0, /*idempotent=*/true)
          .session_id;
  const uint64_t handle = next_session_handle_++;
  sessions_[handle] = server_id;
  return handle;
}

void HolixClient::CloseSession(uint64_t session_id) {
  (void)Transact<CloseSessionAck>(CloseSessionReq{}, session_id,
                                  /*idempotent=*/true);
  sessions_.erase(session_id);
}

obs::MetricsSnapshot HolixClient::GetStats() {
  return Transact<GetStatsResult>(GetStatsReq{}, 0, /*idempotent=*/true)
      .snapshot;
}

ExecuteQueryResult HolixClient::ExecuteQuery(
    uint64_t session_id, const std::string& table,
    const std::vector<QueryPredicateWire>& predicates,
    const std::vector<QueryResultSpecWire>& results) {
  if (predicates.empty() || predicates.size() > kMaxQueryPredicates ||
      results.empty() || results.size() > kMaxQueryResults) {
    throw std::invalid_argument(
        "ExecuteQuery: predicate/result count out of protocol bounds");
  }
  ExecuteQueryReq req;
  req.table = table;
  req.predicates = predicates;
  req.results = results;
  return Transact<ExecuteQueryResult>(std::move(req), session_id,
                                      /*idempotent=*/true);
}

uint64_t HolixClient::SendExecuteQuery(
    uint64_t session_id, const std::string& table,
    const std::vector<QueryPredicateWire>& predicates,
    const std::vector<QueryResultSpecWire>& results) {
  if (predicates.empty() || predicates.size() > kMaxQueryPredicates ||
      results.empty() || results.size() > kMaxQueryResults) {
    throw std::invalid_argument(
        "ExecuteQuery: predicate/result count out of protocol bounds");
  }
  ExecuteQueryReq req;
  req.session_id = ServerSession(session_id);
  req.table = table;
  req.predicates = predicates;
  req.results = results;
  return SendMessage(req);
}

ExecuteQueryResult HolixClient::AwaitExecuteQuery(uint64_t request_id) {
  return Expect<ExecuteQueryResult>(AwaitFrame(request_id));
}

uint64_t HolixClient::CountRangeScalar(uint64_t session_id,
                                       const std::string& table,
                                       const std::string& column,
                                       KeyScalar low, KeyScalar high) {
  CountRangeReq req;
  req.table = table;
  req.column = column;
  req.low = low;
  req.high = high;
  return Transact<CountResult>(std::move(req), session_id, /*idempotent=*/true)
      .count;
}

KeyScalar HolixClient::SumRangeScalar(uint64_t session_id,
                                      const std::string& table,
                                      const std::string& column,
                                      KeyScalar low, KeyScalar high) {
  SumRangeReq req;
  req.table = table;
  req.column = column;
  req.low = low;
  req.high = high;
  return Transact<SumResult>(std::move(req), session_id, /*idempotent=*/true)
      .sum;
}

KeyScalar HolixClient::ProjectSumScalar(uint64_t session_id,
                                        const std::string& table,
                                        const std::string& where_column,
                                        const std::string& project_column,
                                        KeyScalar low, KeyScalar high) {
  ProjectSumReq req;
  req.table = table;
  req.where_column = where_column;
  req.project_column = project_column;
  req.low = low;
  req.high = high;
  return Transact<ProjectSumResult>(std::move(req), session_id,
                                    /*idempotent=*/true)
      .sum;
}

std::vector<uint64_t> HolixClient::SelectRowIdsScalar(
    uint64_t session_id, const std::string& table, const std::string& column,
    KeyScalar low, KeyScalar high) {
  SelectRowIdsReq req;
  req.table = table;
  req.column = column;
  req.low = low;
  req.high = high;
  return Transact<RowIdsResult>(std::move(req), session_id,
                                /*idempotent=*/true)
      .rowids;
}

uint64_t HolixClient::InsertScalar(uint64_t session_id,
                                   const std::string& table,
                                   const std::string& column,
                                   KeyScalar value) {
  InsertReq req;
  req.table = table;
  req.column = column;
  req.value = value;
  return Transact<InsertResult>(std::move(req), session_id,
                                /*idempotent=*/false)
      .rowid;
}

bool HolixClient::DeleteScalar(uint64_t session_id, const std::string& table,
                               const std::string& column, KeyScalar value) {
  DeleteReq req;
  req.table = table;
  req.column = column;
  req.value = value;
  return Transact<DeleteResult>(std::move(req), session_id,
                                /*idempotent=*/false)
      .found;
}

uint64_t HolixClient::CountRange(uint64_t session_id, const std::string& table,
                                 const std::string& column, int64_t low,
                                 int64_t high) {
  return CountRangeScalar(session_id, table, column, KeyScalar::I64(low),
                          KeyScalar::I64(high));
}

int64_t HolixClient::SumRange(uint64_t session_id, const std::string& table,
                              const std::string& column, int64_t low,
                              int64_t high) {
  return SumRangeScalar(session_id, table, column, KeyScalar::I64(low),
                        KeyScalar::I64(high))
      .AsI64Saturating();
}

int64_t HolixClient::ProjectSum(uint64_t session_id, const std::string& table,
                                const std::string& where_column,
                                const std::string& project_column,
                                int64_t low, int64_t high) {
  return ProjectSumScalar(session_id, table, where_column, project_column,
                          KeyScalar::I64(low), KeyScalar::I64(high))
      .AsI64Saturating();
}

std::vector<uint64_t> HolixClient::SelectRowIds(uint64_t session_id,
                                                const std::string& table,
                                                const std::string& column,
                                                int64_t low, int64_t high) {
  return SelectRowIdsScalar(session_id, table, column, KeyScalar::I64(low),
                            KeyScalar::I64(high));
}

uint64_t HolixClient::Insert(uint64_t session_id, const std::string& table,
                             const std::string& column, int64_t value) {
  return InsertScalar(session_id, table, column, KeyScalar::I64(value));
}

bool HolixClient::Delete(uint64_t session_id, const std::string& table,
                         const std::string& column, int64_t value) {
  return DeleteScalar(session_id, table, column, KeyScalar::I64(value));
}

uint64_t HolixClient::CountRangeF64(uint64_t session_id,
                                    const std::string& table,
                                    const std::string& column, double low,
                                    double high) {
  return CountRangeScalar(session_id, table, column, KeyScalar::F64(low),
                          KeyScalar::F64(high));
}

double HolixClient::SumRangeF64(uint64_t session_id, const std::string& table,
                                const std::string& column, double low,
                                double high) {
  return SumRangeScalar(session_id, table, column, KeyScalar::F64(low),
                        KeyScalar::F64(high))
      .AsF64();
}

uint64_t HolixClient::InsertF64(uint64_t session_id, const std::string& table,
                                const std::string& column, double value) {
  return InsertScalar(session_id, table, column, KeyScalar::F64(value));
}

bool HolixClient::DeleteF64(uint64_t session_id, const std::string& table,
                            const std::string& column, double value) {
  return DeleteScalar(session_id, table, column, KeyScalar::F64(value));
}

uint64_t HolixClient::SendCountRange(uint64_t session_id,
                                     const std::string& table,
                                     const std::string& column, KeyScalar low,
                                     KeyScalar high) {
  CountRangeReq req;
  req.session_id = ServerSession(session_id);
  req.table = table;
  req.column = column;
  req.low = low;
  req.high = high;
  return SendMessage(req);
}

uint64_t HolixClient::AwaitCount(uint64_t request_id) {
  return Expect<CountResult>(AwaitFrame(request_id)).count;
}

uint64_t HolixClient::SendSumRange(uint64_t session_id,
                                   const std::string& table,
                                   const std::string& column, KeyScalar low,
                                   KeyScalar high) {
  SumRangeReq req;
  req.session_id = ServerSession(session_id);
  req.table = table;
  req.column = column;
  req.low = low;
  req.high = high;
  return SendMessage(req);
}

int64_t HolixClient::AwaitSum(uint64_t request_id) {
  return AwaitSumScalar(request_id).AsI64Saturating();
}

KeyScalar HolixClient::AwaitSumScalar(uint64_t request_id) {
  return Expect<SumResult>(AwaitFrame(request_id)).sum;
}

}  // namespace holix::net
