/// \file client.h
/// \brief HolixClient: a small synchronous + pipelined client for the Holix
/// wire protocol (the socket-mode counterpart of an in-process Session).
///
/// Thread model mirrors Session: one client object belongs to one thread.
/// The synchronous calls are send-then-await; the pipelined calls
/// (Send* / Await*) let a client keep several requests on the wire —
/// responses may complete out of order on the server and are matched back
/// by request id, with unmatched frames stashed until their Await.

#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "server/protocol.h"

namespace holix::net {

/// Thrown when the transport to the server fails (connection refused, peer
/// reset, EOF mid-response) — as opposed to a server-reported Error frame,
/// which surfaces as a plain std::runtime_error. With
/// ClientOptions::reconnect the synchronous read API retries through this
/// transparently; pipelined callers and update calls observe it directly.
class ConnectionLost : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Connection behavior of a HolixClient, set at Connect().
struct ClientOptions {
  /// Re-dial the original host:port when the transport drops. Synchronous
  /// *read* calls (counts, sums, rowids, ExecuteQuery, GetStats) are
  /// retried after a successful reconnect — they are idempotent, so a
  /// resend cannot double-apply. Insert/Delete are never resent once their
  /// request bytes may have reached the server (the ack is ambiguous); a
  /// drop mid-update surfaces as ConnectionLost for the caller to resolve.
  /// Session ids handed out by OpenSession() stay valid across reconnects:
  /// they are client-side handles, re-bound to fresh server sessions on
  /// each re-dial.
  bool reconnect = false;

  /// Dial attempts (initial + retries) before a reconnect gives up.
  int max_attempts = 6;

  /// Exponential backoff between attempts: first wait, then doubling up to
  /// the cap.
  double backoff_initial_seconds = 0.05;
  double backoff_max_seconds = 2.0;
};

/// A connection to a HolixServer. Movable, not copyable.
class HolixClient {
 public:
  HolixClient() = default;
  ~HolixClient();

  HolixClient(HolixClient&& other) noexcept;
  HolixClient& operator=(HolixClient&& other) noexcept;
  HolixClient(const HolixClient&) = delete;
  HolixClient& operator=(const HolixClient&) = delete;

  /// Connects and performs the version handshake. Throws std::runtime_error
  /// on refusal (including a server version mismatch).
  void Connect(const std::string& host, uint16_t port,
               ClientOptions options = {});

  /// Closes the socket (idempotent).
  void Close();

  bool connected() const { return fd_ >= 0; }

  // --- Sessions ----------------------------------------------------------

  /// Opens a server-side session; returns a client-side handle for it.
  /// The handle survives reconnects (see ClientOptions::reconnect): the
  /// client re-opens a fresh server session for each live handle after
  /// re-dialing and keeps translating transparently.
  uint64_t OpenSession();
  void CloseSession(uint64_t session_id);

  // --- Telemetry (protocol v4) --------------------------------------------

  /// Fetches the server's full metrics snapshot (every holix_* counter,
  /// gauge and histogram, plus the recent-query trace ring) in one round
  /// trip. Needs no session: the server answers inline on its event loop.
  obs::MetricsSnapshot GetStats();

  // --- Declarative query API (protocol v3) --------------------------------

  /// Executes a multi-predicate query in one round trip: a conjunction of
  /// typed range predicates over \p table plus one or more result
  /// requests (QueryResultSpecWire kinds: 0 count, 1 sum, 2 rowids,
  /// 3 project-sum). The single-primitive calls below remain as
  /// conveniences over the deprecated-but-served v2 frames.
  ExecuteQueryResult ExecuteQuery(
      uint64_t session_id, const std::string& table,
      const std::vector<QueryPredicateWire>& predicates,
      const std::vector<QueryResultSpecWire>& results);

  // --- Synchronous query API --------------------------------------------

  /// Typed-scalar core: bounds/values travel as tagged scalars, and sum
  /// results come back in the carrier matching the column's type.
  uint64_t CountRangeScalar(uint64_t session_id, const std::string& table,
                            const std::string& column, KeyScalar low,
                            KeyScalar high);
  KeyScalar SumRangeScalar(uint64_t session_id, const std::string& table,
                           const std::string& column, KeyScalar low,
                           KeyScalar high);
  KeyScalar ProjectSumScalar(uint64_t session_id, const std::string& table,
                             const std::string& where_column,
                             const std::string& project_column, KeyScalar low,
                             KeyScalar high);
  std::vector<uint64_t> SelectRowIdsScalar(uint64_t session_id,
                                           const std::string& table,
                                           const std::string& column,
                                           KeyScalar low, KeyScalar high);
  uint64_t InsertScalar(uint64_t session_id, const std::string& table,
                        const std::string& column, KeyScalar value);
  bool DeleteScalar(uint64_t session_id, const std::string& table,
                    const std::string& column, KeyScalar value);

  /// int64 conveniences (a double column's f64 sum is rounded+saturated —
  /// use SumRangeF64/SumRangeScalar for the exact value).
  uint64_t CountRange(uint64_t session_id, const std::string& table,
                      const std::string& column, int64_t low, int64_t high);
  int64_t SumRange(uint64_t session_id, const std::string& table,
                   const std::string& column, int64_t low, int64_t high);
  int64_t ProjectSum(uint64_t session_id, const std::string& table,
                     const std::string& where_column,
                     const std::string& project_column, int64_t low,
                     int64_t high);
  std::vector<uint64_t> SelectRowIds(uint64_t session_id,
                                     const std::string& table,
                                     const std::string& column, int64_t low,
                                     int64_t high);
  uint64_t Insert(uint64_t session_id, const std::string& table,
                  const std::string& column, int64_t value);
  bool Delete(uint64_t session_id, const std::string& table,
              const std::string& column, int64_t value);

  /// Double conveniences (F64-suffixed, mirroring the in-process Session).
  uint64_t CountRangeF64(uint64_t session_id, const std::string& table,
                         const std::string& column, double low, double high);
  double SumRangeF64(uint64_t session_id, const std::string& table,
                     const std::string& column, double low, double high);
  uint64_t InsertF64(uint64_t session_id, const std::string& table,
                     const std::string& column, double value);
  bool DeleteF64(uint64_t session_id, const std::string& table,
                 const std::string& column, double value);

  // --- Pipelined query API ----------------------------------------------
  //
  // Send* writes the request and returns immediately with its request id;
  // Await* blocks until that id's response arrives (stashing any other
  // responses read along the way). Keeping a window of requests in flight
  // amortizes the per-message network latency — but stay below the
  // server's max_in_flight_per_connection or its backpressure will park
  // the stream anyway.

  uint64_t SendCountRange(uint64_t session_id, const std::string& table,
                          const std::string& column, KeyScalar low,
                          KeyScalar high);
  uint64_t AwaitCount(uint64_t request_id);

  uint64_t SendSumRange(uint64_t session_id, const std::string& table,
                        const std::string& column, KeyScalar low,
                        KeyScalar high);
  int64_t AwaitSum(uint64_t request_id);
  /// The typed form of AwaitSum (f64 carrier for double columns).
  KeyScalar AwaitSumScalar(uint64_t request_id);

  uint64_t SendExecuteQuery(
      uint64_t session_id, const std::string& table,
      const std::vector<QueryPredicateWire>& predicates,
      const std::vector<QueryResultSpecWire>& results);
  ExecuteQueryResult AwaitExecuteQuery(uint64_t request_id);

  /// Responses read but not yet awaited.
  size_t StashedResponses() const { return stash_.size(); }

 private:
  uint64_t NextRequestId() { return next_request_id_++; }
  void SendBytes(const std::vector<uint8_t>& bytes);
  template <typename M>
  uint64_t SendMessage(const M& m) {
    const uint64_t id = NextRequestId();
    SendBytes(EncodeMessage(id, m));
    return id;
  }
  /// Reads frames until \p request_id's response shows up; other frames
  /// are stashed for their own Await.
  Frame AwaitFrame(uint64_t request_id);
  /// Decodes \p f as M, converting a server Error frame into a thrown
  /// std::runtime_error.
  template <typename M>
  M Expect(const Frame& f);

  /// Dials host_:port_ and runs the version handshake (no session state).
  void Dial();
  /// Throws ConnectionLost when fd_ is down and reconnect is off;
  /// otherwise re-dials once and re-opens every tracked session handle.
  void EnsureConnected();
  /// Translates a client session handle to the current server session id
  /// (identity for ids the client did not hand out).
  uint64_t ServerSession(uint64_t handle) const;
  /// One synchronous round trip with the reconnect policy applied: read
  /// calls (idempotent) are retried with exponential backoff across
  /// reconnects; a request that may already have reached the server is
  /// never resent unless idempotent.
  template <typename Resp, typename Req>
  Resp Transact(Req req, uint64_t session_handle, bool idempotent);

  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  std::vector<uint8_t> acc_;
  std::unordered_map<uint64_t, Frame> stash_;

  std::string host_;
  uint16_t port_ = 0;
  ClientOptions opts_;
  uint64_t next_session_handle_ = 1;
  /// Client session handle -> current server session id (re-bound on
  /// every reconnect; ordered so re-opens happen in handle order).
  std::map<uint64_t, uint64_t> sessions_;
};

}  // namespace holix::net
