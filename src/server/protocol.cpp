#include "server/protocol.h"

#include <stdexcept>

namespace holix::net {

void WireWriter::Str(const std::string& s) {
  if (s.size() > kMaxStringBytes) {
    throw std::length_error("wire string exceeds kMaxStringBytes");
  }
  U16(static_cast<uint16_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

bool WireReader::Str(std::string* out) {
  uint16_t len = 0;
  if (!U16(&len)) return false;
  if (len > kMaxStringBytes || remaining() < len) {
    ok_ = false;
    return false;
  }
  out->assign(reinterpret_cast<const char*>(data_ + off_), len);
  off_ += len;
  return true;
}

void WireWriter::Scalar(const KeyScalar& s) {
  if (s.is_f64()) {
    U8(1);
    F64(s.d);
  } else {
    U8(0);
    I64(s.i);
  }
}

bool WireReader::Scalar(KeyScalar* out) {
  uint8_t kind = 0;
  if (!U8(&kind)) return false;
  if (kind > 1) {
    ok_ = false;
    return false;
  }
  if (kind == 1) {
    double d = 0;
    if (!F64(&d)) return false;
    *out = KeyScalar::F64(d);
  } else {
    int64_t i = 0;
    if (!I64(&i)) return false;
    *out = KeyScalar::I64(i);
  }
  return true;
}

// --- message bodies --------------------------------------------------------

void Hello::Encode(WireWriter& w) const {
  w.U32(magic);
  w.U16(version);
}
bool Hello::Decode(WireReader& r) { return r.U32(&magic) && r.U16(&version); }

void HelloAck::Encode(WireWriter& w) const { w.U16(version); }
bool HelloAck::Decode(WireReader& r) { return r.U16(&version); }

void OpenSessionAck::Encode(WireWriter& w) const { w.U64(session_id); }
bool OpenSessionAck::Decode(WireReader& r) { return r.U64(&session_id); }

void CloseSessionReq::Encode(WireWriter& w) const { w.U64(session_id); }
bool CloseSessionReq::Decode(WireReader& r) { return r.U64(&session_id); }

void RangeReqBody::Encode(WireWriter& w) const {
  w.U64(session_id);
  w.Str(table);
  w.Str(column);
  w.Scalar(low);
  w.Scalar(high);
}
bool RangeReqBody::Decode(WireReader& r) {
  return r.U64(&session_id) && r.Str(&table) && r.Str(&column) &&
         r.Scalar(&low) && r.Scalar(&high);
}

void ProjectSumReq::Encode(WireWriter& w) const {
  w.U64(session_id);
  w.Str(table);
  w.Str(where_column);
  w.Str(project_column);
  w.Scalar(low);
  w.Scalar(high);
}
bool ProjectSumReq::Decode(WireReader& r) {
  return r.U64(&session_id) && r.Str(&table) && r.Str(&where_column) &&
         r.Str(&project_column) && r.Scalar(&low) && r.Scalar(&high);
}

void CountResult::Encode(WireWriter& w) const { w.U64(count); }
bool CountResult::Decode(WireReader& r) { return r.U64(&count); }

void SumResult::Encode(WireWriter& w) const { w.Scalar(sum); }
bool SumResult::Decode(WireReader& r) { return r.Scalar(&sum); }

void ProjectSumResult::Encode(WireWriter& w) const { w.Scalar(sum); }
bool ProjectSumResult::Decode(WireReader& r) { return r.Scalar(&sum); }

void RowIdsResult::Encode(WireWriter& w) const {
  w.U32(static_cast<uint32_t>(rowids.size()));
  for (uint64_t rid : rowids) w.U64(rid);
}
bool RowIdsResult::Decode(WireReader& r) {
  uint32_t n = 0;
  if (!r.U32(&n)) return false;
  // The count must match the bytes actually on the wire before any
  // allocation happens: a lying header cannot reserve gigabytes.
  if (r.remaining() != static_cast<size_t>(n) * sizeof(uint64_t)) {
    return false;
  }
  rowids.clear();
  rowids.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t rid = 0;
    if (!r.U64(&rid)) return false;
    rowids.push_back(rid);
  }
  return true;
}

void InsertReq::Encode(WireWriter& w) const {
  w.U64(session_id);
  w.Str(table);
  w.Str(column);
  w.Scalar(value);
}
bool InsertReq::Decode(WireReader& r) {
  return r.U64(&session_id) && r.Str(&table) && r.Str(&column) &&
         r.Scalar(&value);
}

void InsertResult::Encode(WireWriter& w) const { w.U64(rowid); }
bool InsertResult::Decode(WireReader& r) { return r.U64(&rowid); }

void DeleteReq::Encode(WireWriter& w) const {
  w.U64(session_id);
  w.Str(table);
  w.Str(column);
  w.Scalar(value);
}
bool DeleteReq::Decode(WireReader& r) {
  return r.U64(&session_id) && r.Str(&table) && r.Str(&column) &&
         r.Scalar(&value);
}

void DeleteResult::Encode(WireWriter& w) const { w.U8(found ? 1 : 0); }
bool DeleteResult::Decode(WireReader& r) {
  uint8_t v = 0;
  if (!r.U8(&v)) return false;
  if (v > 1) return false;
  found = v != 0;
  return true;
}

void ExecuteQueryReq::Encode(WireWriter& w) const {
  // Backstop like WireWriter::Str: callers validate earlier (HolixClient
  // does), but a count that cannot fit its u8 must fail loudly at encode
  // time, never truncate on the wire.
  if (predicates.empty() || predicates.size() > kMaxQueryPredicates ||
      results.empty() || results.size() > kMaxQueryResults) {
    throw std::length_error(
        "ExecuteQueryReq: predicate/result count out of protocol bounds");
  }
  w.U64(session_id);
  w.Str(table);
  w.U8(static_cast<uint8_t>(predicates.size()));
  for (const QueryPredicateWire& p : predicates) {
    w.Str(p.column);
    w.Scalar(p.low);
    w.Scalar(p.high);
  }
  w.U8(static_cast<uint8_t>(results.size()));
  for (const QueryResultSpecWire& r : results) {
    w.U8(r.kind);
    w.Str(r.column);
  }
}
bool ExecuteQueryReq::Decode(WireReader& r) {
  uint8_t npred = 0;
  if (!r.U64(&session_id) || !r.Str(&table) || !r.U8(&npred)) return false;
  // Bounded before the vector grows: an empty conjunction is meaningless
  // and a lying count cannot reserve anything.
  if (npred == 0 || npred > kMaxQueryPredicates) return false;
  predicates.clear();
  predicates.reserve(npred);
  for (uint8_t i = 0; i < npred; ++i) {
    QueryPredicateWire p;
    if (!r.Str(&p.column) || !r.Scalar(&p.low) || !r.Scalar(&p.high)) {
      return false;
    }
    predicates.push_back(std::move(p));
  }
  uint8_t nres = 0;
  if (!r.U8(&nres)) return false;
  if (nres == 0 || nres > kMaxQueryResults) return false;
  results.clear();
  results.reserve(nres);
  for (uint8_t i = 0; i < nres; ++i) {
    QueryResultSpecWire res;
    if (!r.U8(&res.kind) || !r.Str(&res.column)) return false;
    if (res.kind > 3) return false;  // unknown result request
    // Sum kinds (1 = sum, 3 = project-sum) name the summed column; an
    // empty name can never resolve, so the frame rejects here instead of
    // bouncing off the registry later.
    if ((res.kind == 1 || res.kind == 3) && res.column.empty()) return false;
    results.push_back(std::move(res));
  }
  return true;
}

void ExecuteQueryResult::Encode(WireWriter& w) const {
  w.U8(static_cast<uint8_t>(values.size()));
  for (const KeyScalar& v : values) w.Scalar(v);
  w.U32(static_cast<uint32_t>(rowids.size()));
  for (uint64_t rid : rowids) w.U64(rid);
}
bool ExecuteQueryResult::Decode(WireReader& r) {
  uint8_t nvals = 0;
  if (!r.U8(&nvals)) return false;
  if (nvals == 0 || nvals > kMaxQueryResults) return false;
  values.clear();
  values.reserve(nvals);
  for (uint8_t i = 0; i < nvals; ++i) {
    KeyScalar v;
    if (!r.Scalar(&v)) return false;
    values.push_back(v);
  }
  uint32_t n = 0;
  if (!r.U32(&n)) return false;
  // Like RowIdsResult: the claimed count must match the bytes actually on
  // the wire before anything is reserved.
  if (r.remaining() != static_cast<size_t>(n) * sizeof(uint64_t)) {
    return false;
  }
  rowids.clear();
  rowids.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t rid = 0;
    if (!r.U64(&rid)) return false;
    rowids.push_back(rid);
  }
  return true;
}

void GetStatsResult::Encode(WireWriter& w) const {
  w.U32(static_cast<uint32_t>(snapshot.counters.size()));
  for (const auto& [name, v] : snapshot.counters) {
    w.Str(name);
    w.U64(v);
  }
  w.U32(static_cast<uint32_t>(snapshot.gauges.size()));
  for (const auto& [name, v] : snapshot.gauges) {
    w.Str(name);
    w.F64(v);
  }
  w.U32(static_cast<uint32_t>(snapshot.histograms.size()));
  for (const obs::HistogramSnapshot& h : snapshot.histograms) {
    w.Str(h.name);
    w.U8(static_cast<uint8_t>(h.bounds.size()));
    for (double b : h.bounds) w.F64(b);
    for (uint64_t c : h.counts) w.U64(c);
    w.F64(h.sum);
  }
  w.U32(static_cast<uint32_t>(snapshot.traces.size()));
  for (const obs::QueryTrace& t : snapshot.traces) {
    w.U64(t.seq);
    w.U8(t.mode);
    w.U16(t.predicates);
    w.U16(t.results);
    w.U32(t.probe_filters);
    w.U32(t.merge_intersects);
    w.U32(t.refine_hints);
    w.U32(t.pieces_created);
    w.U64(t.bytes_scanned);
    w.F64(t.latency_seconds);
    w.U8(t.slow ? 1 : 0);
  }
}
bool GetStatsResult::Decode(WireReader& r) {
  snapshot = obs::MetricsSnapshot{};
  uint32_t n = 0;
  if (!r.U32(&n) || n > kMaxStatsSeries) return false;
  // Each counter entry is at least a string length prefix + u64; the count
  // must be coverable by the bytes on the wire before any reserve.
  if (r.remaining() < static_cast<size_t>(n) * 10) return false;
  snapshot.counters.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    std::string name;
    uint64_t v = 0;
    if (!r.Str(&name) || !r.U64(&v)) return false;
    snapshot.counters.emplace_back(std::move(name), v);
  }
  if (!r.U32(&n) || n > kMaxStatsSeries) return false;
  if (r.remaining() < static_cast<size_t>(n) * 10) return false;
  snapshot.gauges.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    std::string name;
    double v = 0;
    if (!r.Str(&name) || !r.F64(&v)) return false;
    snapshot.gauges.emplace_back(std::move(name), v);
  }
  if (!r.U32(&n) || n > kMaxStatsHistograms) return false;
  snapshot.histograms.reserve(
      std::min<size_t>(n, r.remaining() / 19));  // str + u8 + 2 F64 min
  for (uint32_t i = 0; i < n; ++i) {
    obs::HistogramSnapshot h;
    uint8_t nb = 0;
    if (!r.Str(&h.name) || !r.U8(&nb)) return false;
    if (nb >= obs::kMaxHistogramBins) return false;
    // nb bound doubles + (nb + 1) u64 counts + the sum double.
    if (r.remaining() < (static_cast<size_t>(nb) * 2 + 2) * 8) return false;
    h.bounds.resize(nb);
    for (uint8_t j = 0; j < nb; ++j) {
      if (!r.F64(&h.bounds[j])) return false;
    }
    h.counts.resize(static_cast<size_t>(nb) + 1);
    for (size_t j = 0; j < h.counts.size(); ++j) {
      if (!r.U64(&h.counts[j])) return false;
    }
    if (!r.F64(&h.sum)) return false;
    snapshot.histograms.push_back(std::move(h));
  }
  if (!r.U32(&n) || n > kMaxStatsTraces) return false;
  // Traces are the last section and fixed-size: the byte count must match
  // exactly (mirrors the RowIdsResult idiom).
  constexpr size_t kTraceBytes = 8 + 1 + 2 + 2 + 4 * 4 + 8 + 8 + 1;
  if (r.remaining() != static_cast<size_t>(n) * kTraceBytes) return false;
  snapshot.traces.resize(n);
  for (obs::QueryTrace& t : snapshot.traces) {
    uint8_t slow = 0;
    if (!r.U64(&t.seq) || !r.U8(&t.mode) || !r.U16(&t.predicates) ||
        !r.U16(&t.results) || !r.U32(&t.probe_filters) ||
        !r.U32(&t.merge_intersects) || !r.U32(&t.refine_hints) ||
        !r.U32(&t.pieces_created) || !r.U64(&t.bytes_scanned) ||
        !r.F64(&t.latency_seconds) || !r.U8(&slow)) {
      return false;
    }
    t.slow = slow != 0;
  }
  return true;
}

void ErrorMsg::Encode(WireWriter& w) const {
  w.U16(static_cast<uint16_t>(code));
  w.Str(message);
}
bool ErrorMsg::Decode(WireReader& r) {
  uint16_t c = 0;
  if (!r.U16(&c) || !r.Str(&message)) return false;
  code = static_cast<ErrorCode>(c);
  return true;
}

// --- framing ---------------------------------------------------------------

DecodeStatus TryDecodeFrame(const uint8_t* data, size_t size, Frame* out,
                            size_t* consumed, std::string* error) {
  *consumed = 0;
  if (size < kFrameHeaderBytes) return DecodeStatus::kNeedMore;
  WireReader header(data, kFrameHeaderBytes);
  uint32_t payload_len = 0;
  uint8_t type = 0;
  uint64_t request_id = 0;
  header.U32(&payload_len);
  header.U8(&type);
  header.U64(&request_id);
  // Validate the header before waiting for (or copying) the payload.
  if (payload_len > kMaxPayloadBytes) {
    if (error != nullptr) {
      *error = "frame payload length " + std::to_string(payload_len) +
               " exceeds cap " + std::to_string(kMaxPayloadBytes);
    }
    return DecodeStatus::kMalformed;
  }
  if (type == 0 || type > kMaxMsgType) {
    if (error != nullptr) {
      *error = "unknown message type " + std::to_string(type);
    }
    return DecodeStatus::kMalformed;
  }
  if (size < kFrameHeaderBytes + payload_len) return DecodeStatus::kNeedMore;
  out->type = static_cast<MsgType>(type);
  out->request_id = request_id;
  out->payload.assign(data + kFrameHeaderBytes,
                      data + kFrameHeaderBytes + payload_len);
  *consumed = kFrameHeaderBytes + payload_len;
  return DecodeStatus::kFrame;
}

const char* MsgTypeName(MsgType t) {
  switch (t) {
    case MsgType::kHello: return "Hello";
    case MsgType::kHelloAck: return "HelloAck";
    case MsgType::kOpenSession: return "OpenSession";
    case MsgType::kOpenSessionAck: return "OpenSessionAck";
    case MsgType::kCloseSession: return "CloseSession";
    case MsgType::kCloseSessionAck: return "CloseSessionAck";
    case MsgType::kCountRange: return "CountRange";
    case MsgType::kCountResult: return "CountResult";
    case MsgType::kSumRange: return "SumRange";
    case MsgType::kSumResult: return "SumResult";
    case MsgType::kProjectSum: return "ProjectSum";
    case MsgType::kProjectSumResult: return "ProjectSumResult";
    case MsgType::kSelectRowIds: return "SelectRowIds";
    case MsgType::kRowIdsResult: return "RowIdsResult";
    case MsgType::kInsert: return "Insert";
    case MsgType::kInsertResult: return "InsertResult";
    case MsgType::kDelete: return "Delete";
    case MsgType::kDeleteResult: return "DeleteResult";
    case MsgType::kError: return "Error";
    case MsgType::kExecuteQuery: return "ExecuteQuery";
    case MsgType::kExecuteQueryResult: return "ExecuteQueryResult";
    case MsgType::kGetStats: return "GetStats";
    case MsgType::kGetStatsResult: return "GetStatsResult";
  }
  return "?";
}

}  // namespace holix::net
