/// \file protocol.h
/// \brief The Holix wire protocol: versioned, length-prefixed binary frames
/// carrying the engine's §3.1 operator shapes over a byte stream.
///
/// Frame layout (all integers little-endian, explicitly serialized — the
/// encoder never memcpys structs, so the format is stable across ABIs):
///
///   u32  payload_len   (bounded by kMaxPayloadBytes BEFORE any allocation)
///   u8   msg_type      (MsgType; unknown values reject the frame)
///   u64  request_id    (echoed verbatim in the response frame, so clients
///                       may pipeline and match out-of-order completions)
///   u8[payload_len]    message payload
///
/// A connection opens with a Hello/HelloAck handshake carrying a magic
/// number and protocol version; a version mismatch is answered with an
/// Error frame and the connection closes. Strings are u16-length-prefixed
/// and bounded by kMaxStringBytes; a malformed or oversized frame can never
/// cause the decoder to over-allocate (lengths are validated against hard
/// caps and against the actual bytes available before any buffer grows).
///
/// Since version 2 every query bound, update value and sum result travels
/// as a *typed scalar*: a u8 kind tag (0 = int64, 1 = double) followed by
/// 8 payload bytes (two's-complement LE, or IEEE-754 bits LE). SumRange /
/// ProjectSum over a double column therefore return genuine doubles over
/// the wire, and clients can express double predicates (including the NaN
/// key and the infinities) without loss. A kind tag above 1 rejects the
/// frame.
///
/// Version 3 adds the generic ExecuteQuery frame: one request carries a
/// conjunction of 1..kMaxQueryPredicates typed range predicates plus
/// 1..kMaxQueryResults result requests (count / per-column sums /
/// rowids), so a multi-predicate TPC-H-Q6-shaped query runs in one round
/// trip and cracks every predicate column server-side. Predicate and
/// result counts are validated against their caps BEFORE any allocation,
/// like every other length in the protocol. The per-primitive query
/// frames below (CountRange/SumRange/ProjectSum/SelectRowIds) are
/// one-predicate special cases of ExecuteQuery — deprecated-but-served:
/// a v3 peer may keep sending them and the server answers them (the
/// in-tree HolixClient conveniences still do), but new protocol features
/// land on ExecuteQuery alone. The handshake stays strict as with every
/// version bump: a pre-v3 client is rejected at Hello, so "served" means
/// served to same-version peers, not cross-version compatibility.

#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "storage/types.h"

namespace holix::net {

using holix::KeyScalar;

/// Hello magic: the u32 value reads "HLXP" ('H'<<24|'L'<<16|'X'<<8|'P').
/// Like every wire scalar it serializes little-endian, so a packet capture
/// shows the bytes P X L H — peers compare the decoded u32, not the bytes.
inline constexpr uint32_t kMagic = 0x484C5850;
/// Protocol version spoken by this build. Bumped on any wire change.
/// v2: typed scalars (int64/double) in range bounds, update values and
/// sum results. v3: the generic multi-predicate ExecuteQuery frame.
/// v4: the GetStats telemetry frame (metrics snapshot + query traces).
inline constexpr uint16_t kProtocolVersion = 4;
/// Hard cap on one frame's payload (validated before allocation). Large
/// enough for a 2M-rowid select result, small enough that a malformed
/// length can never balloon memory.
inline constexpr size_t kMaxPayloadBytes = size_t{1} << 24;  // 16 MiB
/// Hard cap on one wire string (table/column names, error messages).
inline constexpr size_t kMaxStringBytes = 1024;
/// Hard cap on an ExecuteQuery conjunction (validated before allocation).
inline constexpr size_t kMaxQueryPredicates = 16;
/// Hard cap on an ExecuteQuery result list (validated before allocation).
inline constexpr size_t kMaxQueryResults = 8;
/// Hard caps on one GetStatsResult snapshot (validated before allocation).
inline constexpr size_t kMaxStatsSeries = 16384;  ///< counters or gauges
inline constexpr size_t kMaxStatsHistograms = 1024;
inline constexpr size_t kMaxStatsTraces = 4096;
/// Bytes of the fixed frame header (len + type + request id).
inline constexpr size_t kFrameHeaderBytes = 4 + 1 + 8;

/// Message discriminator. Requests and responses share the numbering so a
/// trace reads naturally; responses echo the request's request_id.
enum class MsgType : uint8_t {
  kHello = 1,
  kHelloAck = 2,
  kOpenSession = 3,
  kOpenSessionAck = 4,
  kCloseSession = 5,
  kCloseSessionAck = 6,
  // The four per-primitive query requests (7/9/11/13) are deprecated in
  // favour of kExecuteQuery: still decoded and served for v3 peers (the
  // HolixClient convenience calls keep speaking them), but they express
  // only one-predicate queries — new protocol features land on
  // kExecuteQuery alone.
  kCountRange = 7,
  kCountResult = 8,
  kSumRange = 9,
  kSumResult = 10,
  kProjectSum = 11,
  kProjectSumResult = 12,
  kSelectRowIds = 13,
  kRowIdsResult = 14,
  kInsert = 15,
  kInsertResult = 16,
  kDelete = 17,
  kDeleteResult = 18,
  kError = 19,
  kExecuteQuery = 20,        ///< v3: declarative multi-predicate query.
  kExecuteQueryResult = 21,  ///< v3: its typed values + optional rowids.
  kGetStats = 22,            ///< v4: request the server's metrics snapshot.
  kGetStatsResult = 23,      ///< v4: counters/gauges/histograms + traces.
};
inline constexpr uint8_t kMaxMsgType =
    static_cast<uint8_t>(MsgType::kGetStatsResult);

/// Error frame codes.
enum class ErrorCode : uint16_t {
  kVersionMismatch = 1,  ///< Handshake version/magic rejected.
  kMalformedFrame = 2,   ///< Frame failed validation; connection closes.
  kUnknownMessage = 3,   ///< Valid frame, unexpected message type.
  kNoSuchColumn = 4,     ///< (table, column) did not resolve.
  kNoSuchSession = 5,    ///< session_id unknown to this connection.
  kQueryFailed = 6,      ///< Engine threw while executing the query.
  kShuttingDown = 7,     ///< Server is draining; retry elsewhere.
};

/// A decoded frame: type + correlation id + raw payload bytes.
struct Frame {
  MsgType type{};
  uint64_t request_id = 0;
  std::vector<uint8_t> payload;
};

// ---------------------------------------------------------------------------
// Bounded little-endian readers/writers
// ---------------------------------------------------------------------------

/// Appends explicitly little-endian scalars and length-prefixed strings.
class WireWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(v); }
  void U16(uint16_t v) { AppendLe(v); }
  void U32(uint32_t v) { AppendLe(v); }
  void U64(uint64_t v) { AppendLe(v); }
  void I64(int64_t v) { AppendLe(static_cast<uint64_t>(v)); }
  /// IEEE-754 bits, little-endian.
  void F64(double v) { AppendLe(std::bit_cast<uint64_t>(v)); }
  /// Typed scalar: u8 kind tag + 8 payload bytes.
  void Scalar(const KeyScalar& s);

  /// u16 length prefix + raw bytes. Throws std::length_error beyond
  /// kMaxStringBytes (server-side callers validate earlier; this is the
  /// backstop).
  void Str(const std::string& s);

  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }

 private:
  template <typename T>
  void AppendLe(T v) {
    for (size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
  std::vector<uint8_t> buf_;
};

/// Reads bounded little-endian scalars from a byte span. Every accessor
/// returns false (and poisons the reader) instead of reading past the end.
class WireReader {
 public:
  WireReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool U8(uint8_t* v) { return ReadLe(v); }
  bool U16(uint16_t* v) { return ReadLe(v); }
  bool U32(uint32_t* v) { return ReadLe(v); }
  bool U64(uint64_t* v) { return ReadLe(v); }
  bool I64(int64_t* v) {
    uint64_t u;
    if (!ReadLe(&u)) return false;
    std::memcpy(v, &u, sizeof(u));
    return true;
  }
  bool F64(double* v) {
    uint64_t u;
    if (!ReadLe(&u)) return false;
    *v = std::bit_cast<double>(u);
    return true;
  }
  /// Reads a typed scalar; a kind tag above 1 poisons the reader.
  bool Scalar(KeyScalar* out);

  /// Reads a u16-length-prefixed string; rejects lengths beyond
  /// kMaxStringBytes or beyond the remaining payload.
  bool Str(std::string* out);

  /// True when every byte was consumed and nothing failed — decoders
  /// require this so trailing garbage rejects the frame.
  bool AtEnd() const { return ok_ && off_ == size_; }
  bool ok() const { return ok_; }
  size_t remaining() const { return size_ - off_; }

 private:
  template <typename T>
  bool ReadLe(T* v) {
    if (!ok_ || size_ - off_ < sizeof(T)) {
      ok_ = false;
      return false;
    }
    T out = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      out |= static_cast<T>(static_cast<T>(data_[off_ + i]) << (8 * i));
    }
    *v = out;
    off_ += sizeof(T);
    return true;
  }
  const uint8_t* data_;
  size_t size_;
  size_t off_ = 0;
  bool ok_ = true;
};

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

struct Hello {
  static constexpr MsgType kType = MsgType::kHello;
  uint32_t magic = kMagic;
  uint16_t version = kProtocolVersion;
  void Encode(WireWriter& w) const;
  bool Decode(WireReader& r);
};

struct HelloAck {
  static constexpr MsgType kType = MsgType::kHelloAck;
  uint16_t version = kProtocolVersion;
  void Encode(WireWriter& w) const;
  bool Decode(WireReader& r);
};

struct OpenSessionReq {
  static constexpr MsgType kType = MsgType::kOpenSession;
  void Encode(WireWriter&) const {}
  bool Decode(WireReader&) { return true; }
};

struct OpenSessionAck {
  static constexpr MsgType kType = MsgType::kOpenSessionAck;
  uint64_t session_id = 0;
  void Encode(WireWriter& w) const;
  bool Decode(WireReader& r);
};

struct CloseSessionReq {
  static constexpr MsgType kType = MsgType::kCloseSession;
  uint64_t session_id = 0;
  void Encode(WireWriter& w) const;
  bool Decode(WireReader& r);
};

struct CloseSessionAck {
  static constexpr MsgType kType = MsgType::kCloseSessionAck;
  void Encode(WireWriter&) const {}
  bool Decode(WireReader&) { return true; }
};

/// Shared shape of the four single-attribute range requests. Bounds are
/// typed scalars: int64 carriers clamp exactly into any column's domain,
/// double carriers express floating-point predicates.
struct RangeReqBody {
  uint64_t session_id = 0;
  std::string table;
  std::string column;
  KeyScalar low;
  KeyScalar high;
  void Encode(WireWriter& w) const;
  bool Decode(WireReader& r);
};

struct CountRangeReq : RangeReqBody {
  static constexpr MsgType kType = MsgType::kCountRange;
};

struct SumRangeReq : RangeReqBody {
  static constexpr MsgType kType = MsgType::kSumRange;
};

struct SelectRowIdsReq : RangeReqBody {
  static constexpr MsgType kType = MsgType::kSelectRowIds;
};

struct ProjectSumReq {
  static constexpr MsgType kType = MsgType::kProjectSum;
  uint64_t session_id = 0;
  std::string table;
  std::string where_column;
  std::string project_column;
  KeyScalar low;
  KeyScalar high;
  void Encode(WireWriter& w) const;
  bool Decode(WireReader& r);
};

struct CountResult {
  static constexpr MsgType kType = MsgType::kCountResult;
  uint64_t count = 0;
  void Encode(WireWriter& w) const;
  bool Decode(WireReader& r);
};

/// The sum's carrier follows the summed column's type: int64 columns
/// answer i64 scalars, double columns answer f64 scalars.
struct SumResult {
  static constexpr MsgType kType = MsgType::kSumResult;
  KeyScalar sum;
  void Encode(WireWriter& w) const;
  bool Decode(WireReader& r);
};

struct ProjectSumResult {
  static constexpr MsgType kType = MsgType::kProjectSumResult;
  KeyScalar sum;
  void Encode(WireWriter& w) const;
  bool Decode(WireReader& r);
};

struct RowIdsResult {
  static constexpr MsgType kType = MsgType::kRowIdsResult;
  std::vector<uint64_t> rowids;
  void Encode(WireWriter& w) const;
  /// Validates the u32 element count against the bytes actually present
  /// before reserving anything.
  bool Decode(WireReader& r);
};

struct InsertReq {
  static constexpr MsgType kType = MsgType::kInsert;
  uint64_t session_id = 0;
  std::string table;
  std::string column;
  KeyScalar value;
  void Encode(WireWriter& w) const;
  bool Decode(WireReader& r);
};

struct InsertResult {
  static constexpr MsgType kType = MsgType::kInsertResult;
  uint64_t rowid = 0;
  void Encode(WireWriter& w) const;
  bool Decode(WireReader& r);
};

struct DeleteReq {
  static constexpr MsgType kType = MsgType::kDelete;
  uint64_t session_id = 0;
  std::string table;
  std::string column;
  KeyScalar value;
  void Encode(WireWriter& w) const;
  bool Decode(WireReader& r);
};

struct DeleteResult {
  static constexpr MsgType kType = MsgType::kDeleteResult;
  bool found = false;
  void Encode(WireWriter& w) const;
  bool Decode(WireReader& r);
};

struct ErrorMsg {
  static constexpr MsgType kType = MsgType::kError;
  ErrorCode code = ErrorCode::kQueryFailed;
  std::string message;
  void Encode(WireWriter& w) const;
  bool Decode(WireReader& r);
};

/// One wire conjunct of an ExecuteQuery: low <= column < high with typed
/// scalar bounds (the engine's closed-bound degradation applies at the
/// order's top, exactly as in the one-predicate range requests).
struct QueryPredicateWire {
  std::string column;
  KeyScalar low;
  KeyScalar high;
};

/// One wire result request: kind 0 = count, 1 = sum(column), 2 = rowids,
/// 3 = project-sum(column) (an alias of sum kept for operator-shape
/// symmetry). A kind above 3 rejects the frame; sum kinds require a
/// non-empty column name.
struct QueryResultSpecWire {
  uint8_t kind = 0;
  std::string column;
};

/// v3 declarative query: a conjunction of 1..kMaxQueryPredicates typed
/// range predicates over one table plus 1..kMaxQueryResults result
/// requests. Both counts are validated against their caps — and a zero
/// count is rejected — before any vector grows.
struct ExecuteQueryReq {
  static constexpr MsgType kType = MsgType::kExecuteQuery;
  uint64_t session_id = 0;
  std::string table;
  std::vector<QueryPredicateWire> predicates;
  std::vector<QueryResultSpecWire> results;
  void Encode(WireWriter& w) const;
  bool Decode(WireReader& r);
};

/// The answer to an ExecuteQuery: one typed scalar per requested result
/// (counts as i64, sums in the summed column's carrier) plus the rowid
/// list when rowids were requested (empty otherwise). The u32 rowid count
/// is validated against the bytes actually present before any reserve.
struct ExecuteQueryResult {
  static constexpr MsgType kType = MsgType::kExecuteQueryResult;
  std::vector<KeyScalar> values;
  std::vector<uint64_t> rowids;
  void Encode(WireWriter& w) const;
  bool Decode(WireReader& r);
};

/// v4: asks the server for its metrics snapshot. Served inline on the IO
/// loop without entering the request-counting path, so reading the stats
/// plane does not perturb the series it reports.
struct GetStatsReq {
  static constexpr MsgType kType = MsgType::kGetStats;
  void Encode(WireWriter&) const {}
  bool Decode(WireReader&) { return true; }
};

/// v4: the full metrics snapshot — name-sorted counters, gauges and
/// histograms plus the recent-query trace ring. Every count is validated
/// against its cap before any vector grows; the payload is bounded by
/// kMaxPayloadBytes like any other frame.
struct GetStatsResult {
  static constexpr MsgType kType = MsgType::kGetStatsResult;
  obs::MetricsSnapshot snapshot;
  void Encode(WireWriter& w) const;
  bool Decode(WireReader& r);
};

// ---------------------------------------------------------------------------
// Frame encode/decode
// ---------------------------------------------------------------------------

/// Serializes a complete frame (header + payload) for message \p m.
template <typename M>
std::vector<uint8_t> EncodeMessage(uint64_t request_id, const M& m) {
  WireWriter payload;
  m.Encode(payload);
  const std::vector<uint8_t>& p = payload.bytes();
  WireWriter frame;
  frame.U32(static_cast<uint32_t>(p.size()));
  frame.U8(static_cast<uint8_t>(M::kType));
  frame.U64(request_id);
  std::vector<uint8_t> out = frame.Take();
  out.insert(out.end(), p.begin(), p.end());
  return out;
}

/// Decodes frame \p f as message type M: the frame type must match and the
/// payload must parse with no trailing bytes.
template <typename M>
bool DecodeMessage(const Frame& f, M* out) {
  if (f.type != M::kType) return false;
  WireReader r(f.payload.data(), f.payload.size());
  return out->Decode(r) && r.AtEnd();
}

/// Outcome of TryDecodeFrame.
enum class DecodeStatus : uint8_t {
  kNeedMore,   ///< The buffer holds a frame prefix; read more bytes.
  kFrame,      ///< One frame decoded; *consumed bytes were used.
  kMalformed,  ///< Unrecoverable framing error; close the connection.
};

/// Attempts to peel one frame off \p data. Validates payload_len and
/// msg_type BEFORE waiting for (or allocating) the payload, so a malformed
/// length can neither over-allocate nor stall the connection forever.
DecodeStatus TryDecodeFrame(const uint8_t* data, size_t size, Frame* out,
                            size_t* consumed, std::string* error);

/// Printable name of a message type (diagnostics).
const char* MsgTypeName(MsgType t);

}  // namespace holix::net
