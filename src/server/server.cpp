#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "engine/database.h"

namespace holix::net {

namespace {

/// recv(2) the next chunk; returns 0 on orderly shutdown, -1 on error.
ssize_t RecvSome(int fd, uint8_t* buf, size_t cap) {
  for (;;) {
    const ssize_t n = ::recv(fd, buf, cap, 0);
    if (n < 0 && errno == EINTR) continue;
    return n;
  }
}

/// Sends the whole buffer; MSG_NOSIGNAL so a vanished peer yields EPIPE
/// instead of killing the process.
bool SendAll(int fd, const uint8_t* data, size_t size) {
  size_t off = 0;
  while (off < size) {
    const ssize_t n = ::send(fd, data + off, size - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

HolixServer::HolixServer(Database& db, ServerOptions options)
    : db_(db), options_(std::move(options)) {}

HolixServer::~HolixServer() { Stop(); }

void HolixServer::Start() {
  if (running_.load(std::memory_order_acquire)) return;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("bad bind address: " + options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, options_.backlog) < 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("bind/listen: " + err);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  // The acceptor works on its own copy of the fd: Stop() may reset the
  // member only after joining this thread.
  const int fd = listen_fd_;
  acceptor_ = std::thread([this, fd] { AcceptLoop(fd); });
}

void HolixServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  // Unblock the acceptor, join it, and only then release the fd (the
  // acceptor holds its own copy; closing before the join would race).
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Stop readers: half-close the read side so recv() returns 0; responses
  // to already-dispatched queries still go out on the write side. The
  // reader itself drains in-flight work before closing its fd.
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    conns.swap(conns_);
  }
  for (const auto& conn : conns) {
    conn->closing.store(true, std::memory_order_release);
    conn->flow_cv.notify_all();
    // write_mu guards fd: the reader nulls it when it finishes on its own.
    std::lock_guard<std::mutex> lk(conn->write_mu);
    if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RD);
  }
  for (const auto& conn : conns) {
    if (conn->reader.joinable()) conn->reader.join();
  }
}

void HolixServer::AcceptLoop(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (Stop) or fatal
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    // Bounded response writes: without a send timeout, a client that stops
    // reading would block a pool thread in send() forever and make Stop()'s
    // in-flight drain wait on it indefinitely.
    timeval send_timeout{};
    send_timeout.tv_sec = 10;
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &send_timeout,
                 sizeof(send_timeout));
    ReapFinishedConnections();
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    total_connections_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lk(conns_mu_);
      conns_.push_back(conn);
    }
    conn->reader = std::thread([this, conn] { ReaderLoop(conn); });
  }
}

void HolixServer::ReapFinishedConnections() {
  std::vector<std::shared_ptr<Connection>> dead;
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    auto keep = conns_.begin();
    for (auto& conn : conns_) {
      if (conn->finished.load(std::memory_order_acquire)) {
        dead.push_back(std::move(conn));
      } else {
        *keep++ = std::move(conn);
      }
    }
    conns_.erase(keep, conns_.end());
  }
  // Joining outside the lock: the readers set `finished` as their last
  // statement, so these joins return promptly.
  for (const auto& conn : dead) {
    if (conn->reader.joinable()) conn->reader.join();
  }
}

bool HolixServer::SendFrame(Connection& conn,
                            const std::vector<uint8_t>& bytes) {
  std::lock_guard<std::mutex> lk(conn.write_mu);
  if (conn.fd < 0) return false;
  if (SendAll(conn.fd, bytes.data(), bytes.size())) return true;
  // Write side broken (peer gone, or the send timeout fired on a client
  // that stopped reading): tear the connection down so the reader stops
  // decoding and later responses fail fast instead of blocking.
  ::shutdown(conn.fd, SHUT_RDWR);
  return false;
}

bool HolixServer::SendError(Connection& conn, uint64_t request_id,
                            ErrorCode code, const std::string& message) {
  ErrorMsg err;
  err.code = code;
  err.message = message.size() > kMaxStringBytes
                    ? message.substr(0, kMaxStringBytes)
                    : message;
  return Send(conn, request_id, err);
}

void HolixServer::DrainInFlight(Connection& conn) {
  std::unique_lock<std::mutex> lk(conn.flow_mu);
  conn.flow_cv.wait(lk, [&] { return conn.in_flight == 0; });
}

void HolixServer::ReaderLoop(const std::shared_ptr<Connection>& conn) {
  std::vector<uint8_t> acc;
  uint8_t chunk[64 * 1024];
  bool handshaken = false;
  bool fatal = false;
  while (!fatal) {
    const ssize_t n = RecvSome(conn->fd, chunk, sizeof(chunk));
    if (n <= 0) break;  // peer closed / Stop() half-closed / error
    acc.insert(acc.end(), chunk, chunk + n);
    size_t off = 0;
    for (;;) {
      Frame f;
      size_t consumed = 0;
      std::string error;
      const DecodeStatus st =
          TryDecodeFrame(acc.data() + off, acc.size() - off, &f, &consumed,
                         &error);
      if (st == DecodeStatus::kNeedMore) break;
      if (st == DecodeStatus::kMalformed) {
        SendError(*conn, 0, ErrorCode::kMalformedFrame, error);
        fatal = true;
        break;
      }
      off += consumed;
      if (!handshaken) {
        Hello hello;
        if (f.type != MsgType::kHello || !DecodeMessage(f, &hello)) {
          SendError(*conn, f.request_id, ErrorCode::kMalformedFrame,
                    "expected Hello");
          fatal = true;
          break;
        }
        if (hello.magic != kMagic || hello.version != kProtocolVersion) {
          SendError(*conn, f.request_id, ErrorCode::kVersionMismatch,
                    "server speaks protocol version " +
                        std::to_string(kProtocolVersion));
          fatal = true;
          break;
        }
        HelloAck ack;
        Send(*conn, f.request_id, ack);
        handshaken = true;
        continue;
      }
      if (!HandleFrame(conn, f)) {
        fatal = true;
        break;
      }
    }
    acc.erase(acc.begin(), acc.begin() + static_cast<ptrdiff_t>(off));
  }
  // Drain before closing: in-flight queries still write their responses.
  conn->closing.store(true, std::memory_order_release);
  DrainInFlight(*conn);
  {
    std::lock_guard<std::mutex> lk(conn->write_mu);
    if (conn->fd >= 0) {
      ::close(conn->fd);
      conn->fd = -1;
    }
  }
  conn->finished.store(true, std::memory_order_release);
}

template <typename Req, typename Fn>
bool HolixServer::DispatchQuery(const std::shared_ptr<Connection>& conn,
                                const Frame& f, Fn&& run) {
  Req req;
  if (!DecodeMessage(f, &req)) {
    SendError(*conn, f.request_id, ErrorCode::kMalformedFrame,
              std::string("malformed ") + MsgTypeName(f.type));
    return false;
  }
  auto it = conn->sessions.find(req.session_id);
  if (it == conn->sessions.end()) {
    SendError(*conn, f.request_id, ErrorCode::kNoSuchSession,
              "unknown session " + std::to_string(req.session_id));
    return true;
  }
  Session& sess = it->second;
  // Resolve handles on the reader thread (the session's handle cache is
  // single-threaded by contract); build the pool closure, or report a
  // resolution error without closing the connection.
  std::function<void()> work;
  try {
    work = run(sess, req);
  } catch (const std::out_of_range& e) {
    SendError(*conn, f.request_id, ErrorCode::kNoSuchColumn, e.what());
    return true;
  }
  // Backpressure: park the reader until the window opens. Parking here
  // stops frame decoding, the socket's receive buffer fills, and TCP flow
  // control slows the client.
  {
    std::unique_lock<std::mutex> lk(conn->flow_mu);
    conn->flow_cv.wait(lk, [&] {
      return conn->in_flight < options_.max_in_flight_per_connection ||
             conn->closing.load(std::memory_order_acquire);
    });
    ++conn->in_flight;
  }
  total_requests_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t request_id = f.request_id;
  sess.SubmitRaw([conn, request_id, work = std::move(work)] {
    try {
      work();
    } catch (const std::exception& e) {
      SendError(*conn, request_id, ErrorCode::kQueryFailed, e.what());
    } catch (...) {
      SendError(*conn, request_id, ErrorCode::kQueryFailed, "unknown error");
    }
    std::lock_guard<std::mutex> lk(conn->flow_mu);
    --conn->in_flight;
    conn->flow_cv.notify_all();
  });
  return true;
}

bool HolixServer::HandleFrame(const std::shared_ptr<Connection>& conn,
                              const Frame& f) {
  Database* db = &db_;
  switch (f.type) {
    case MsgType::kOpenSession: {
      OpenSessionReq req;
      if (!DecodeMessage(f, &req)) {
        SendError(*conn, f.request_id, ErrorCode::kMalformedFrame,
                  "malformed OpenSession");
        return false;
      }
      if (conn->sessions.size() >= options_.max_sessions_per_connection) {
        SendError(*conn, f.request_id, ErrorCode::kQueryFailed,
                  "session cap reached: " +
                      std::to_string(options_.max_sessions_per_connection));
        return true;
      }
      Session session = db_.OpenSession();
      OpenSessionAck ack;
      ack.session_id = session.id();
      conn->sessions.emplace(ack.session_id, std::move(session));
      Send(*conn, f.request_id, ack);
      return true;
    }
    case MsgType::kCloseSession: {
      CloseSessionReq req;
      if (!DecodeMessage(f, &req)) {
        SendError(*conn, f.request_id, ErrorCode::kMalformedFrame,
                  "malformed CloseSession");
        return false;
      }
      if (conn->sessions.erase(req.session_id) == 0) {
        SendError(*conn, f.request_id, ErrorCode::kNoSuchSession,
                  "unknown session " + std::to_string(req.session_id));
        return true;
      }
      Send(*conn, f.request_id, CloseSessionAck{});
      return true;
    }
    case MsgType::kCountRange:
      return DispatchQuery<CountRangeReq>(
          conn, f, [db, conn, id = f.request_id](Session& s, const CountRangeReq& r) {
            ColumnHandle h = s.Handle(r.table, r.column);
            const KeyScalar low = r.low, high = r.high;
            return [db, conn, id, h, low, high] {
              CountResult res;
              res.count = db->CountRangeScalar(h, low, high, QueryContext{});
              Send(*conn, id, res);
            };
          });
    case MsgType::kSumRange:
      return DispatchQuery<SumRangeReq>(
          conn, f, [db, conn, id = f.request_id](Session& s, const SumRangeReq& r) {
            ColumnHandle h = s.Handle(r.table, r.column);
            const KeyScalar low = r.low, high = r.high;
            return [db, conn, id, h, low, high] {
              SumResult res;
              // The carrier follows the column type: a double column's sum
              // leaves the server as a genuine f64 scalar.
              res.sum = db->SumRangeScalar(h, low, high, QueryContext{});
              Send(*conn, id, res);
            };
          });
    case MsgType::kSelectRowIds:
      return DispatchQuery<SelectRowIdsReq>(
          conn, f,
          [db, conn, id = f.request_id](Session& s, const SelectRowIdsReq& r) {
            ColumnHandle h = s.Handle(r.table, r.column);
            const KeyScalar low = r.low, high = r.high;
            return [db, conn, id, h, low, high] {
              const PositionList rows =
                  db->SelectRowIdsScalar(h, low, high, QueryContext{});
              RowIdsResult res;
              res.rowids.reserve(rows.size());
              for (RowId rid : rows) res.rowids.push_back(rid);
              // A result too big for one frame is a server-side error
              // frame, never a silently truncated result.
              if (res.rowids.size() * sizeof(uint64_t) + 16 >
                  kMaxPayloadBytes) {
                SendError(*conn, id, ErrorCode::kQueryFailed,
                          "result exceeds frame cap: " +
                              std::to_string(res.rowids.size()) + " rowids");
                return;
              }
              Send(*conn, id, res);
            };
          });
    case MsgType::kProjectSum:
      return DispatchQuery<ProjectSumReq>(
          conn, f, [db, conn, id = f.request_id](Session& s, const ProjectSumReq& r) {
            ColumnHandle hw = s.Handle(r.table, r.where_column);
            ColumnHandle hp = s.Handle(r.table, r.project_column);
            const KeyScalar low = r.low, high = r.high;
            return [db, conn, id, hw, hp, low, high] {
              ProjectSumResult res;
              res.sum =
                  db->ProjectSumScalar(hw, hp, low, high, QueryContext{});
              Send(*conn, id, res);
            };
          });
    case MsgType::kExecuteQuery:
      return DispatchQuery<ExecuteQueryReq>(
          conn, f,
          [db, conn, id = f.request_id](Session& s, const ExecuteQueryReq& r) {
            // Resolve every named column on the reader thread (session
            // handle cache); the engine validates conjunction shape and
            // same-table membership when the closure runs.
            QuerySpec spec;
            spec.predicates.reserve(r.predicates.size());
            for (const QueryPredicateWire& p : r.predicates) {
              spec.predicates.push_back(
                  {s.Handle(r.table, p.column), p.low, p.high});
            }
            spec.results.reserve(r.results.size());
            for (const QueryResultSpecWire& res : r.results) {
              ResultSpec rs;
              rs.kind = static_cast<ResultRequest>(res.kind);
              if (rs.kind == ResultRequest::kSum ||
                  rs.kind == ResultRequest::kProjectSum) {
                rs.column = s.Handle(r.table, res.column);
              }
              spec.results.push_back(std::move(rs));
            }
            return [db, conn, id, spec = std::move(spec)] {
              QueryResult qr = db->Execute(spec, QueryContext{});
              ExecuteQueryResult res;
              res.values = std::move(qr.values);
              res.rowids = std::move(qr.rowids);  // PositionList is the
                                                  // same vector type
              if (res.rowids.size() * sizeof(uint64_t) +
                      res.values.size() * 9 + 32 >
                  kMaxPayloadBytes) {
                SendError(*conn, id, ErrorCode::kQueryFailed,
                          "result exceeds frame cap: " +
                              std::to_string(res.rowids.size()) + " rowids");
                return;
              }
              Send(*conn, id, res);
            };
          });
    case MsgType::kInsert:
      return DispatchQuery<InsertReq>(
          conn, f, [db, conn, id = f.request_id](Session& s, const InsertReq& r) {
            ColumnHandle h = s.Handle(r.table, r.column);
            const KeyScalar value = r.value;
            return [db, conn, id, h, value] {
              InsertResult res;
              res.rowid = db->InsertScalar(h, value, QueryContext{});
              Send(*conn, id, res);
            };
          });
    case MsgType::kDelete:
      return DispatchQuery<DeleteReq>(
          conn, f, [db, conn, id = f.request_id](Session& s, const DeleteReq& r) {
            ColumnHandle h = s.Handle(r.table, r.column);
            const KeyScalar value = r.value;
            return [db, conn, id, h, value] {
              DeleteResult res;
              res.found = db->DeleteScalar(h, value, QueryContext{});
              Send(*conn, id, res);
            };
          });
    default:
      SendError(*conn, f.request_id, ErrorCode::kUnknownMessage,
                std::string("unexpected ") + MsgTypeName(f.type));
      return true;
  }
}

}  // namespace holix::net
