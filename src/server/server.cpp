#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <future>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "engine/database.h"
#include "obs/metrics.h"
#include "server/shared_scan.h"

namespace holix::net {

namespace {

/// epoll user-data tags. Real connections carry their pointer, which can
/// never collide with these small integers.
constexpr uint64_t kWakeTag = 0;
constexpr uint64_t kListenTag = 1;
constexpr uint64_t kMetricsListenTag = 2;

/// Creates, binds and listens a nonblocking TCP socket; returns the fd and
/// writes the resolved port (ephemeral binds) to \p out_port. Throws on
/// failure.
int BindListener(const std::string& address, uint16_t port, int backlog,
                 uint16_t* out_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                          0);
  if (fd < 0) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("bad bind address: " + address);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, backlog) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("bind/listen: " + err);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  *out_port = ntohs(addr.sin_port);
  return fd;
}

}  // namespace

HolixServer::HolixServer(Database& db, ServerOptions options)
    : db_(db), options_(std::move(options)) {
  if (options_.io_threads == 0) options_.io_threads = 1;
  if (options_.shared_scans) {
    coalescer_ = std::make_unique<SharedScanCoalescer>(db_);
  }
  auto& reg = obs::MetricsRegistry::Global();
  sharedscan_batches_base_ =
      reg.GetCounter("holix_sharedscan_batches_total").Value();
  sharedscan_requests_base_ =
      reg.GetCounter("holix_sharedscan_requests_total").Value();
}

HolixServer::~HolixServer() { Stop(); }

uint64_t HolixServer::SharedScanBatches() const {
  if (coalescer_ == nullptr) return 0;
  return obs::MetricsRegistry::Global()
             .GetCounter("holix_sharedscan_batches_total")
             .Value() -
         sharedscan_batches_base_;
}

uint64_t HolixServer::SharedScanRequests() const {
  if (coalescer_ == nullptr) return 0;
  return obs::MetricsRegistry::Global()
             .GetCounter("holix_sharedscan_requests_total")
             .Value() -
         sharedscan_requests_base_;
}

void HolixServer::Start() {
  if (running_.load(std::memory_order_acquire)) return;
  listen_fd_ = BindListener(options_.bind_address, options_.port,
                            options_.backlog, &port_);
  if (options_.metrics_http || options_.metrics_port != 0) {
    try {
      metrics_listen_fd_ = BindListener(options_.bind_address,
                                        options_.metrics_port,
                                        options_.backlog, &metrics_port_);
    } catch (...) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw;
    }
  }

  loops_.clear();
  for (size_t i = 0; i < options_.io_threads; ++i) {
    auto loop = std::make_unique<IoLoop>();
    loop->index = i;
    loop->epfd = ::epoll_create1(EPOLL_CLOEXEC);
    loop->wakefd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (loop->epfd < 0 || loop->wakefd < 0) {
      throw std::runtime_error("epoll/eventfd setup failed");
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeTag;
    ::epoll_ctl(loop->epfd, EPOLL_CTL_ADD, loop->wakefd, &ev);
    loops_.push_back(std::move(loop));
  }
  // The listener lives in loop 0's epoll set; accepted fds fan out
  // round-robin across all loops.
  {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kListenTag;
    ::epoll_ctl(loops_[0]->epfd, EPOLL_CTL_ADD, listen_fd_, &ev);
    if (metrics_listen_fd_ >= 0) {
      epoll_event mev{};
      mev.events = EPOLLIN;
      mev.data.u64 = kMetricsListenTag;
      ::epoll_ctl(loops_[0]->epfd, EPOLL_CTL_ADD, metrics_listen_fd_, &mev);
    }
  }
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  for (auto& loop : loops_) {
    IoLoop* lp = loop.get();
    lp->th = std::thread([this, lp] { LoopRun(*lp); });
  }
}

void HolixServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);

  // 1. Stop accepting. The listener belongs to loop 0's epoll set and
  //    accept() only ever runs on loop 0, so remove + close it there.
  {
    std::promise<void> done;
    auto fut = done.get_future();
    Post(*loops_[0], [this, &done] {
      if (listen_fd_ >= 0) {
        ::epoll_ctl(loops_[0]->epfd, EPOLL_CTL_DEL, listen_fd_, nullptr);
        ::close(listen_fd_);
        listen_fd_ = -1;
      }
      if (metrics_listen_fd_ >= 0) {
        ::epoll_ctl(loops_[0]->epfd, EPOLL_CTL_DEL, metrics_listen_fd_,
                    nullptr);
        ::close(metrics_listen_fd_);
        metrics_listen_fd_ = -1;
      }
      done.set_value();
    });
    fut.wait();
  }

  // 2. Stop decoding everywhere: already-dispatched queries keep running,
  //    new frames are no longer admitted.
  for (auto& loop : loops_) {
    IoLoop* lp = loop.get();
    std::promise<void> done;
    auto fut = done.get_future();
    Post(*lp, [this, lp, &done] {
      for (auto& [ptr, conn] : lp->conns) {
        conn->draining = true;
        UpdateInterest(*lp, *conn);
      }
      done.set_value();
    });
    fut.wait();
  }

  // 3. Drain in-flight queries. Pool closures never block on sockets (they
  //    only park bytes in outboxes), so this always terminates.
  while (global_in_flight_.load(std::memory_order_acquire) != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // 4. Flush write queues: responses to drained queries still go out. A
  //    peer that stopped reading is abandoned after the flush deadline.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(options_.drain_flush_seconds));
  for (;;) {
    bool all_flushed = true;
    for (auto& loop : loops_) {
      IoLoop* lp = loop.get();
      std::promise<bool> flushed;
      auto fut = flushed.get_future();
      Post(*lp, [lp, &flushed] {
        bool empty = true;
        for (auto& [ptr, conn] : lp->conns) {
          std::lock_guard<std::mutex> lk(conn->out_mu);
          if (!conn->wq.empty() || !conn->outbox.empty()) {
            empty = false;
            break;
          }
        }
        flushed.set_value(empty);
      });
      if (!fut.get()) all_flushed = false;
    }
    if (all_flushed || std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // 5. Stop and join the loops, then close everything on this thread.
  for (auto& loop : loops_) {
    loop->stop.store(true, std::memory_order_release);
    Wake(*loop);
  }
  for (auto& loop : loops_) {
    if (loop->th.joinable()) loop->th.join();
  }
  for (auto& loop : loops_) {
    for (auto& [ptr, conn] : loop->conns) {
      {
        std::lock_guard<std::mutex> lk(conn->out_mu);
        conn->closed = true;
      }
      if (conn->fd >= 0) {
        ::close(conn->fd);
        conn->fd = -1;
      }
    }
    loop->conns.clear();
    if (loop->epfd >= 0) ::close(loop->epfd);
    if (loop->wakefd >= 0) ::close(loop->wakefd);
  }
  loops_.clear();
  open_connections_.store(0, std::memory_order_relaxed);
  obs::MetricsRegistry::Global()
      .GetGauge("holix_server_open_connections")
      .Set(0.0);
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

void HolixServer::Post(IoLoop& loop, std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lk(loop.mu);
    loop.tasks.push_back(std::move(fn));
  }
  Wake(loop);
}

void HolixServer::Wake(IoLoop& loop) {
  const uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(loop.wakefd, &one, sizeof(one));  // eventfd writes can't short
}

void HolixServer::NotifyDirty(const std::shared_ptr<Connection>& conn) {
  IoLoop* loop = conn->loop;
  {
    std::lock_guard<std::mutex> lk(loop->mu);
    loop->dirty.push_back(conn);
  }
  Wake(*loop);
}

void HolixServer::LoopRun(IoLoop& loop) {
  std::vector<epoll_event> events(128);
  while (!loop.stop.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(loop.epfd, events.data(),
                               static_cast<int>(events.size()), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epfd gone — only possible during teardown
    }
    for (int i = 0; i < n; ++i) {
      const epoll_event& ev = events[i];
      if (ev.data.u64 == kWakeTag) {
        uint64_t drained;
        while (::read(loop.wakefd, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      if (ev.data.u64 == kListenTag) {
        AcceptReady(loop, listen_fd_, /*http=*/false);
        continue;
      }
      if (ev.data.u64 == kMetricsListenTag) {
        AcceptReady(loop, metrics_listen_fd_, /*http=*/true);
        continue;
      }
      auto* ptr = reinterpret_cast<Connection*>(ev.data.u64);
      auto it = loop.conns.find(ptr);
      if (it == loop.conns.end()) continue;  // destroyed earlier this round
      std::shared_ptr<Connection> conn = it->second;
      if (ev.events & (EPOLLERR | EPOLLHUP)) {
        DestroyConn(loop, conn);
        continue;
      }
      if (ev.events & (EPOLLIN | EPOLLRDHUP)) {
        ReadReady(loop, conn);
        if (loop.conns.find(ptr) == loop.conns.end()) continue;
      }
      if (ev.events & EPOLLOUT) {
        FlushWrites(loop, conn);
      }
    }
    // Cross-thread work: posted tasks, then completions parked by pool
    // threads (move outbox -> write queue, write, maybe resume decoding).
    std::vector<std::function<void()>> tasks;
    std::vector<std::shared_ptr<Connection>> dirty;
    {
      std::lock_guard<std::mutex> lk(loop.mu);
      tasks.swap(loop.tasks);
      dirty.swap(loop.dirty);
    }
    for (auto& t : tasks) t();
    for (auto& conn : dirty) {
      if (loop.conns.find(conn.get()) == loop.conns.end()) continue;
      FlushWrites(loop, conn);
    }
  }
}

void HolixServer::AcceptReady(IoLoop& loop, int listen_fd, bool http) {
  for (;;) {
    const int fd =
        ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // EAGAIN: burst drained (or listener closing)
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (!http) {
      // Scrapes don't count as protocol connections: the stats plane
      // should not perturb what it measures.
      total_connections_.fetch_add(1, std::memory_order_relaxed);
      static obs::Counter& accepted = obs::MetricsRegistry::Global().GetCounter(
          "holix_server_connections_total");
      static obs::Gauge& open_g = obs::MetricsRegistry::Global().GetGauge(
          "holix_server_open_connections");
      static obs::Gauge& peak_g = obs::MetricsRegistry::Global().GetGauge(
          "holix_server_peak_connections");
      accepted.Inc();
      const uint64_t open =
          open_connections_.fetch_add(1, std::memory_order_relaxed) + 1;
      uint64_t peak = peak_connections_.load(std::memory_order_relaxed);
      while (open > peak && !peak_connections_.compare_exchange_weak(
                                peak, open, std::memory_order_relaxed)) {
      }
      open_g.Set(static_cast<double>(open));
      peak_g.Max(static_cast<double>(open));
    }
    IoLoop& target =
        *loops_[next_loop_.fetch_add(1, std::memory_order_relaxed) %
                loops_.size()];
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->loop = &target;
    conn->http = http;
    if (&target == &loop) {
      RegisterConn(target, conn);
    } else {
      Post(target, [this, &target, conn] { RegisterConn(target, conn); });
    }
  }
}

void HolixServer::RegisterConn(IoLoop& loop,
                               const std::shared_ptr<Connection>& conn) {
  conn->events = EPOLLIN | EPOLLRDHUP;
  epoll_event ev{};
  ev.events = conn->events;
  ev.data.u64 = reinterpret_cast<uint64_t>(conn.get());
  if (::epoll_ctl(loop.epfd, EPOLL_CTL_ADD, conn->fd, &ev) < 0) {
    ::close(conn->fd);
    conn->fd = -1;
    return;
  }
  loop.conns.emplace(conn.get(), conn);
}

void HolixServer::ReadReady(IoLoop& loop,
                            const std::shared_ptr<Connection>& conn) {
  uint8_t chunk[64 * 1024];
  // Bounded rounds per event: level-triggered epoll re-fires when the
  // kernel buffer still holds data, so one connection cannot starve the
  // loop.
  for (int round = 0; round < 4; ++round) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      conn->rbuf.insert(conn->rbuf.end(), chunk, chunk + n);
      if (static_cast<size_t>(n) < sizeof(chunk)) break;
      continue;
    }
    if (n == 0) {
      conn->read_eof = true;  // close once in-flight answers are flushed
      break;
    }
    if (errno == EINTR) {
      --round;
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    DestroyConn(loop, conn);  // ECONNRESET and friends
    return;
  }
  if (conn->http) {
    HandleHttp(loop, conn);
  } else {
    DecodeFrames(loop, conn);
  }
  if (loop.conns.find(conn.get()) == loop.conns.end()) return;
  FlushWrites(loop, conn);
}

void HolixServer::HandleHttp(IoLoop& loop,
                             const std::shared_ptr<Connection>& conn) {
  // Minimal one-shot HTTP: wait for the end of the request head, answer,
  // close. No keep-alive, no chunking — exactly what a Prometheus scrape
  // or `curl` needs, served without leaving the event loop.
  const std::string_view buf(reinterpret_cast<const char*>(conn->rbuf.data()),
                             conn->rbuf.size());
  const size_t head_end = buf.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    if (conn->rbuf.size() > 16 * 1024 || conn->read_eof) {
      DestroyConn(loop, conn);  // oversized or truncated request head
    }
    return;
  }
  const std::string_view head = buf.substr(0, head_end);
  const std::string_view request_line = head.substr(0, head.find("\r\n"));
  std::string status = "404 Not Found";
  std::string body = "try GET /metrics\n";
  std::string content_type = "text/plain; charset=utf-8";
  if (request_line.rfind("GET /metrics", 0) == 0) {
    status = "200 OK";
    body = obs::PrometheusText(db_.MetricsSnapshot());
    content_type = "text/plain; version=0.0.4; charset=utf-8";
  }
  std::string response = "HTTP/1.0 " + status +
                         "\r\nContent-Type: " + content_type +
                         "\r\nContent-Length: " + std::to_string(body.size()) +
                         "\r\nConnection: close\r\n\r\n" +
                         body;
  conn->rbuf.clear();
  EnqueueLoop(loop, conn,
              std::vector<uint8_t>(response.begin(), response.end()));
  conn->close_after_flush = true;
  UpdateInterest(loop, *conn);
}

void HolixServer::DecodeFrames(IoLoop& loop,
                               const std::shared_ptr<Connection>& conn) {
  auto& reg = obs::MetricsRegistry::Global();
  static obs::Counter& decode_errors =
      reg.GetCounter("holix_server_decode_errors_total");
  static obs::Counter& backpressure =
      reg.GetCounter("holix_server_backpressure_toggles_total");
  size_t off = 0;
  while (!conn->draining && !conn->close_after_flush) {
    if (ShouldPause(*conn)) {
      conn->paused = true;
      backpressure.Inc();
      break;
    }
    Frame f;
    size_t consumed = 0;
    std::string error;
    const DecodeStatus st =
        TryDecodeFrame(conn->rbuf.data() + off, conn->rbuf.size() - off, &f,
                       &consumed, &error);
    if (st == DecodeStatus::kNeedMore) break;
    if (st == DecodeStatus::kMalformed) {
      decode_errors.Inc();
      EnqueueError(loop, conn, 0, ErrorCode::kMalformedFrame, error);
      conn->close_after_flush = true;
      break;
    }
    off += consumed;
    if (!conn->handshaken) {
      Hello hello;
      if (f.type != MsgType::kHello || !DecodeMessage(f, &hello)) {
        decode_errors.Inc();
        EnqueueError(loop, conn, f.request_id, ErrorCode::kMalformedFrame,
                     "expected Hello");
        conn->close_after_flush = true;
        break;
      }
      if (hello.magic != kMagic || hello.version != kProtocolVersion) {
        decode_errors.Inc();
        EnqueueError(loop, conn, f.request_id, ErrorCode::kVersionMismatch,
                     "server speaks protocol version " +
                         std::to_string(kProtocolVersion));
        conn->close_after_flush = true;
        break;
      }
      EnqueueLoop(loop, conn, EncodeMessage(f.request_id, HelloAck{}));
      conn->handshaken = true;
      continue;
    }
    if (!HandleFrame(loop, conn, f)) {
      conn->close_after_flush = true;
      break;
    }
  }
  if (off > 0) {
    conn->rbuf.erase(conn->rbuf.begin(),
                     conn->rbuf.begin() + static_cast<ptrdiff_t>(off));
  }
  UpdateInterest(loop, *conn);
}

bool HolixServer::ShouldPause(Connection& conn) const {
  size_t in_flight, outbox_bytes;
  {
    std::lock_guard<std::mutex> lk(conn.out_mu);
    in_flight = conn.in_flight;
    outbox_bytes = conn.outbox_bytes;
  }
  return in_flight >= options_.max_in_flight_per_connection ||
         conn.wq_bytes + outbox_bytes >=
             options_.max_queued_bytes_per_connection;
}

void HolixServer::FlushWrites(IoLoop& loop,
                              const std::shared_ptr<Connection>& conn) {
  size_t in_flight;
  {
    std::lock_guard<std::mutex> lk(conn->out_mu);
    for (auto& frame : conn->outbox) {
      conn->wq_bytes += frame.size();
      conn->wq.push_back(std::move(frame));
    }
    conn->outbox.clear();
    conn->outbox_bytes = 0;
    in_flight = conn->in_flight;
  }
  while (!conn->wq.empty()) {
    const std::vector<uint8_t>& front = conn->wq.front();
    const ssize_t n = ::send(conn->fd, front.data() + conn->wq_off,
                             front.size() - conn->wq_off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      DestroyConn(loop, conn);  // peer gone; pending responses are moot
      return;
    }
    conn->wq_off += static_cast<size_t>(n);
    if (conn->wq_off == front.size()) {
      conn->wq_bytes -= front.size();
      conn->wq.pop_front();
      conn->wq_off = 0;
    }
  }
  if (conn->wq.empty() && in_flight == 0 &&
      (conn->close_after_flush || conn->read_eof)) {
    DestroyConn(loop, conn);
    return;
  }
  // The window may have reopened (responses delivered / in-flight down):
  // resume decoding whatever already sits in the read buffer.
  if (conn->paused && !ShouldPause(*conn)) {
    conn->paused = false;
    static obs::Counter& backpressure = obs::MetricsRegistry::Global()
        .GetCounter("holix_server_backpressure_toggles_total");
    backpressure.Inc();
    DecodeFrames(loop, conn);
    if (loop.conns.find(conn.get()) == loop.conns.end()) return;
  }
  UpdateInterest(loop, *conn);
}

void HolixServer::UpdateInterest(IoLoop& loop, Connection& conn) {
  if (conn.fd < 0) return;
  uint32_t desired = EPOLLRDHUP;
  if (!conn.paused && !conn.draining && !conn.read_eof &&
      !conn.close_after_flush) {
    desired |= EPOLLIN;
  }
  if (!conn.wq.empty()) desired |= EPOLLOUT;
  if (desired == conn.events) return;
  epoll_event ev{};
  ev.events = desired;
  ev.data.u64 = reinterpret_cast<uint64_t>(&conn);
  if (::epoll_ctl(loop.epfd, EPOLL_CTL_MOD, conn.fd, &ev) == 0) {
    conn.events = desired;
  }
}

void HolixServer::DestroyConn(IoLoop& loop,
                              const std::shared_ptr<Connection>& conn) {
  {
    std::lock_guard<std::mutex> lk(conn->out_mu);
    conn->closed = true;
  }
  if (conn->fd >= 0) {
    ::epoll_ctl(loop.epfd, EPOLL_CTL_DEL, conn->fd, nullptr);
    ::close(conn->fd);
    conn->fd = -1;
  }
  if (loop.conns.erase(conn.get()) > 0 && !conn->http) {
    const uint64_t open =
        open_connections_.fetch_sub(1, std::memory_order_relaxed) - 1;
    obs::MetricsRegistry::Global()
        .GetGauge("holix_server_open_connections")
        .Set(static_cast<double>(open));
  }
  // In-flight queries against this connection finish on the pool and see
  // `closed`; their completions are dropped. The shared_ptr in their
  // closures keeps the Connection (and its sessions) alive until then.
}

// ---------------------------------------------------------------------------
// Frame handling and dispatch
// ---------------------------------------------------------------------------

std::vector<uint8_t> HolixServer::EncodeError(uint64_t request_id,
                                              ErrorCode code,
                                              const std::string& message) {
  ErrorMsg err;
  err.code = code;
  err.message = message.size() > kMaxStringBytes
                    ? message.substr(0, kMaxStringBytes)
                    : message;
  return EncodeMessage(request_id, err);
}

void HolixServer::EnqueueLoop(IoLoop& loop,
                              const std::shared_ptr<Connection>& conn,
                              std::vector<uint8_t> bytes) {
  (void)loop;
  conn->wq_bytes += bytes.size();
  conn->wq.push_back(std::move(bytes));
  // No immediate write: DecodeFrames' caller flushes once per readable
  // event, batching small acks into one send.
}

void HolixServer::EnqueueError(IoLoop& loop,
                               const std::shared_ptr<Connection>& conn,
                               uint64_t request_id, ErrorCode code,
                               const std::string& message) {
  EnqueueLoop(loop, conn, EncodeError(request_id, code, message));
}

void HolixServer::BeginRequest(Connection& conn) {
  {
    std::lock_guard<std::mutex> lk(conn.out_mu);
    ++conn.in_flight;
  }
  global_in_flight_.fetch_add(1, std::memory_order_relaxed);
  total_requests_.fetch_add(1, std::memory_order_relaxed);
  auto& reg = obs::MetricsRegistry::Global();
  static obs::Counter& requests = reg.GetCounter("holix_server_requests_total");
  static obs::Gauge& in_flight = reg.GetGauge("holix_server_in_flight");
  requests.Inc();
  in_flight.Add(1.0);
}

void HolixServer::CompleteRequest(const std::shared_ptr<Connection>& conn,
                                  std::vector<uint8_t> frame) {
  auto& reg = obs::MetricsRegistry::Global();
  static obs::Counter& outbox_bytes =
      reg.GetCounter("holix_server_outbox_bytes_total");
  static obs::Gauge& in_flight = reg.GetGauge("holix_server_in_flight");
  {
    std::lock_guard<std::mutex> lk(conn->out_mu);
    --conn->in_flight;
    if (!conn->closed) {
      outbox_bytes.Inc(frame.size());
      conn->outbox_bytes += frame.size();
      conn->outbox.push_back(std::move(frame));
    }
  }
  in_flight.Add(-1.0);
  NotifyDirty(conn);
  // Decrement strictly after NotifyDirty: Stop() takes global == 0 to mean
  // every completion is visible to its loop.
  global_in_flight_.fetch_sub(1, std::memory_order_release);
}

template <typename Req, typename Fn>
bool HolixServer::DispatchQuery(IoLoop& loop,
                                const std::shared_ptr<Connection>& conn,
                                const Frame& f, Fn&& run) {
  Req req;
  if (!DecodeMessage(f, &req)) {
    EnqueueError(loop, conn, f.request_id, ErrorCode::kMalformedFrame,
                 std::string("malformed ") + MsgTypeName(f.type));
    return false;
  }
  auto it = conn->sessions.find(req.session_id);
  if (it == conn->sessions.end()) {
    EnqueueError(loop, conn, f.request_id, ErrorCode::kNoSuchSession,
                 "unknown session " + std::to_string(req.session_id));
    return true;
  }
  Session& sess = it->second;
  // Resolve handles on the loop thread (the session's handle cache is
  // single-threaded by contract); build the pool closure, or report a
  // resolution error without closing the connection.
  std::function<std::vector<uint8_t>()> work;
  try {
    work = run(sess, req, f.request_id);
  } catch (const std::out_of_range& e) {
    EnqueueError(loop, conn, f.request_id, ErrorCode::kNoSuchColumn, e.what());
    return true;
  }
  BeginRequest(*conn);
  const uint64_t request_id = f.request_id;
  sess.SubmitRaw([this, conn, request_id, work = std::move(work)] {
    std::vector<uint8_t> frame;
    try {
      frame = work();
    } catch (const std::exception& e) {
      frame = EncodeError(request_id, ErrorCode::kQueryFailed, e.what());
    } catch (...) {
      frame = EncodeError(request_id, ErrorCode::kQueryFailed, "unknown error");
    }
    CompleteRequest(conn, std::move(frame));
  });
  return true;
}

bool HolixServer::HandleFrame(IoLoop& loop,
                              const std::shared_ptr<Connection>& conn,
                              const Frame& f) {
  Database* db = &db_;
  switch (f.type) {
    case MsgType::kOpenSession: {
      OpenSessionReq req;
      if (!DecodeMessage(f, &req)) {
        EnqueueError(loop, conn, f.request_id, ErrorCode::kMalformedFrame,
                     "malformed OpenSession");
        return false;
      }
      if (conn->sessions.size() >= options_.max_sessions_per_connection) {
        EnqueueError(loop, conn, f.request_id, ErrorCode::kQueryFailed,
                     "session cap reached: " +
                         std::to_string(options_.max_sessions_per_connection));
        return true;
      }
      Session session = db_.OpenSession();
      OpenSessionAck ack;
      ack.session_id = session.id();
      conn->sessions.emplace(ack.session_id, std::move(session));
      EnqueueLoop(loop, conn, EncodeMessage(f.request_id, ack));
      return true;
    }
    case MsgType::kCloseSession: {
      CloseSessionReq req;
      if (!DecodeMessage(f, &req)) {
        EnqueueError(loop, conn, f.request_id, ErrorCode::kMalformedFrame,
                     "malformed CloseSession");
        return false;
      }
      if (conn->sessions.erase(req.session_id) == 0) {
        EnqueueError(loop, conn, f.request_id, ErrorCode::kNoSuchSession,
                     "unknown session " + std::to_string(req.session_id));
        return true;
      }
      EnqueueLoop(loop, conn, EncodeMessage(f.request_id, CloseSessionAck{}));
      return true;
    }
    case MsgType::kCountRange: {
      if (coalescer_ != nullptr) {
        CountRangeReq req;
        if (!DecodeMessage(f, &req)) {
          EnqueueError(loop, conn, f.request_id, ErrorCode::kMalformedFrame,
                       "malformed CountRange");
          return false;
        }
        auto it = conn->sessions.find(req.session_id);
        if (it == conn->sessions.end()) {
          EnqueueError(loop, conn, f.request_id, ErrorCode::kNoSuchSession,
                       "unknown session " + std::to_string(req.session_id));
          return true;
        }
        ColumnHandle h;
        try {
          h = it->second.Handle(req.table, req.column);
        } catch (const std::out_of_range& e) {
          EnqueueError(loop, conn, f.request_id, ErrorCode::kNoSuchColumn,
                       e.what());
          return true;
        }
        BeginRequest(*conn);
        const uint64_t id = f.request_id;
        coalescer_->Submit(
            h, req.low, req.high,
            [this, conn, id](uint64_t count, const std::string* error) {
              std::vector<uint8_t> bytes;
              if (error != nullptr) {
                bytes = EncodeError(id, ErrorCode::kQueryFailed, *error);
              } else {
                CountResult res;
                res.count = count;
                bytes = EncodeMessage(id, res);
              }
              CompleteRequest(conn, std::move(bytes));
            });
        return true;
      }
      return DispatchQuery<CountRangeReq>(
          loop, conn, f,
          [db](Session& s, const CountRangeReq& r, uint64_t id) {
            ColumnHandle h = s.Handle(r.table, r.column);
            const KeyScalar low = r.low, high = r.high;
            return [db, id, h, low, high] {
              CountResult res;
              res.count = db->CountRangeScalar(h, low, high, QueryContext{});
              return EncodeMessage(id, res);
            };
          });
    }
    case MsgType::kSumRange:
      return DispatchQuery<SumRangeReq>(
          loop, conn, f, [db](Session& s, const SumRangeReq& r, uint64_t id) {
            ColumnHandle h = s.Handle(r.table, r.column);
            const KeyScalar low = r.low, high = r.high;
            return [db, id, h, low, high] {
              SumResult res;
              // The carrier follows the column type: a double column's sum
              // leaves the server as a genuine f64 scalar.
              res.sum = db->SumRangeScalar(h, low, high, QueryContext{});
              return EncodeMessage(id, res);
            };
          });
    case MsgType::kSelectRowIds:
      return DispatchQuery<SelectRowIdsReq>(
          loop, conn, f,
          [db](Session& s, const SelectRowIdsReq& r, uint64_t id) {
            ColumnHandle h = s.Handle(r.table, r.column);
            const KeyScalar low = r.low, high = r.high;
            return [db, id, h, low, high]() -> std::vector<uint8_t> {
              const PositionList rows =
                  db->SelectRowIdsScalar(h, low, high, QueryContext{});
              RowIdsResult res;
              res.rowids.reserve(rows.size());
              for (RowId rid : rows) res.rowids.push_back(rid);
              // A result too big for one frame is a server-side error
              // frame, never a silently truncated result.
              if (res.rowids.size() * sizeof(uint64_t) + 16 >
                  kMaxPayloadBytes) {
                return EncodeError(id, ErrorCode::kQueryFailed,
                                   "result exceeds frame cap: " +
                                       std::to_string(res.rowids.size()) +
                                       " rowids");
              }
              return EncodeMessage(id, res);
            };
          });
    case MsgType::kProjectSum:
      return DispatchQuery<ProjectSumReq>(
          loop, conn, f, [db](Session& s, const ProjectSumReq& r, uint64_t id) {
            ColumnHandle hw = s.Handle(r.table, r.where_column);
            ColumnHandle hp = s.Handle(r.table, r.project_column);
            const KeyScalar low = r.low, high = r.high;
            return [db, id, hw, hp, low, high] {
              ProjectSumResult res;
              res.sum = db->ProjectSumScalar(hw, hp, low, high, QueryContext{});
              return EncodeMessage(id, res);
            };
          });
    case MsgType::kExecuteQuery: {
      if (coalescer_ != nullptr) {
        // Count-only single-predicate specs are the shared-scan shape:
        // route them through the coalescer so concurrent clients on the
        // same column share one crack/scan pass. The engine's answer for
        // this shape IS CountRange, so the result is bit-equal.
        ExecuteQueryReq req;
        if (!DecodeMessage(f, &req)) {
          EnqueueError(loop, conn, f.request_id, ErrorCode::kMalformedFrame,
                       "malformed ExecuteQuery");
          return false;
        }
        if (req.predicates.size() == 1 && req.results.size() == 1 &&
            static_cast<ResultRequest>(req.results[0].kind) ==
                ResultRequest::kCount) {
          auto it = conn->sessions.find(req.session_id);
          if (it == conn->sessions.end()) {
            EnqueueError(loop, conn, f.request_id, ErrorCode::kNoSuchSession,
                         "unknown session " + std::to_string(req.session_id));
            return true;
          }
          ColumnHandle h;
          try {
            h = it->second.Handle(req.table, req.predicates[0].column);
          } catch (const std::out_of_range& e) {
            EnqueueError(loop, conn, f.request_id, ErrorCode::kNoSuchColumn,
                         e.what());
            return true;
          }
          BeginRequest(*conn);
          const uint64_t id = f.request_id;
          coalescer_->Submit(
              h, req.predicates[0].low, req.predicates[0].high,
              [this, conn, id](uint64_t count, const std::string* error) {
                std::vector<uint8_t> bytes;
                if (error != nullptr) {
                  bytes = EncodeError(id, ErrorCode::kQueryFailed, *error);
                } else {
                  ExecuteQueryResult res;
                  res.values.push_back(
                      KeyScalar::I64(static_cast<int64_t>(count)));
                  bytes = EncodeMessage(id, res);
                }
                CompleteRequest(conn, std::move(bytes));
              });
          return true;
        }
      }
      return DispatchQuery<ExecuteQueryReq>(
          loop, conn, f,
          [db](Session& s, const ExecuteQueryReq& r, uint64_t id) {
            // Resolve every named column on the loop thread (session
            // handle cache); the engine validates conjunction shape and
            // same-table membership when the closure runs.
            QuerySpec spec;
            spec.predicates.reserve(r.predicates.size());
            for (const QueryPredicateWire& p : r.predicates) {
              spec.predicates.push_back(
                  {s.Handle(r.table, p.column), p.low, p.high});
            }
            spec.results.reserve(r.results.size());
            for (const QueryResultSpecWire& res : r.results) {
              ResultSpec rs;
              rs.kind = static_cast<ResultRequest>(res.kind);
              if (rs.kind == ResultRequest::kSum ||
                  rs.kind == ResultRequest::kProjectSum) {
                rs.column = s.Handle(r.table, res.column);
              }
              spec.results.push_back(std::move(rs));
            }
            return [db, id, spec = std::move(spec)]() -> std::vector<uint8_t> {
              QueryResult qr = db->Execute(spec, QueryContext{});
              ExecuteQueryResult res;
              res.values = std::move(qr.values);
              res.rowids = std::move(qr.rowids);  // PositionList is the
                                                  // same vector type
              if (res.rowids.size() * sizeof(uint64_t) +
                      res.values.size() * 9 + 32 >
                  kMaxPayloadBytes) {
                return EncodeError(id, ErrorCode::kQueryFailed,
                                   "result exceeds frame cap: " +
                                       std::to_string(res.rowids.size()) +
                                       " rowids");
              }
              return EncodeMessage(id, res);
            };
          });
    }
    case MsgType::kInsert:
      return DispatchQuery<InsertReq>(
          loop, conn, f, [db](Session& s, const InsertReq& r, uint64_t id) {
            ColumnHandle h = s.Handle(r.table, r.column);
            const KeyScalar value = r.value;
            return [db, id, h, value] {
              InsertResult res;
              res.rowid = db->InsertScalar(h, value, QueryContext{});
              return EncodeMessage(id, res);
            };
          });
    case MsgType::kDelete:
      return DispatchQuery<DeleteReq>(
          loop, conn, f, [db](Session& s, const DeleteReq& r, uint64_t id) {
            ColumnHandle h = s.Handle(r.table, r.column);
            const KeyScalar value = r.value;
            return [db, id, h, value] {
              DeleteResult res;
              res.found = db->DeleteScalar(h, value, QueryContext{});
              return EncodeMessage(id, res);
            };
          });
    case MsgType::kGetStats: {
      GetStatsReq req;
      if (!DecodeMessage(f, &req)) {
        EnqueueError(loop, conn, f.request_id, ErrorCode::kMalformedFrame,
                     "malformed GetStats");
        return false;
      }
      // Served inline on the loop thread, with no BeginRequest: the stats
      // plane must not count itself into the request totals or the
      // in-flight window it reports. Both this path and the in-process
      // Database::MetricsSnapshot() go through the same function, so a
      // quiesced engine answers bit-identically over the wire and in
      // process.
      GetStatsResult res;
      res.snapshot = db_.MetricsSnapshot();
      EnqueueLoop(loop, conn, EncodeMessage(f.request_id, res));
      return true;
    }
    default:
      EnqueueError(loop, conn, f.request_id, ErrorCode::kUnknownMessage,
                   std::string("unexpected ") + MsgTypeName(f.type));
      return true;
  }
}

}  // namespace holix::net
