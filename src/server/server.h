/// \file server.h
/// \brief HolixServer: the TCP service layer over the engine's Session API
/// (§5.8's many-concurrent-clients model made real on a socket).
///
/// Thread model: one acceptor thread plus one lightweight *reader* thread
/// per connection. Readers only decode frames and resolve handles through
/// the connection's sessions (each session's handle cache stays
/// single-threaded); query execution is dispatched through
/// Session::SubmitRaw onto the database's client pool, so N connections
/// multiplex onto the pool rather than N OS threads blocking inside
/// queries. Responses are written from pool threads under a per-connection
/// write mutex and carry the request's id, so clients may pipeline and
/// match out-of-order completions.
///
/// Backpressure: each connection admits at most
/// ServerOptions::max_in_flight_per_connection dispatched queries; past
/// that, the reader parks before decoding further frames, the kernel
/// receive buffer fills, and TCP flow control pushes back on the client —
/// a slow consumer can therefore never balloon the server's queue.
///
/// Shutdown: Stop() closes the listener, stops readers, *drains* every
/// in-flight query (responses still go out), then joins and closes.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "engine/session.h"
#include "server/protocol.h"

namespace holix {
class Database;
}

namespace holix::net {

/// Construction-time options of a HolixServer.
struct ServerOptions {
  /// Address to bind; the default serves loopback only (the benchmarks'
  /// and tests' deployment). Use "0.0.0.0" to serve a network.
  std::string bind_address = "127.0.0.1";

  /// TCP port; 0 binds an ephemeral port (read the result from port()).
  uint16_t port = 0;

  /// listen(2) backlog.
  int backlog = 64;

  /// Backpressure window: dispatched-but-unanswered queries one connection
  /// may have before its reader stops decoding further requests.
  size_t max_in_flight_per_connection = 32;

  /// Cap on concurrently open sessions per connection; an OpenSession
  /// beyond it is answered with an Error frame (session management is not
  /// covered by the in-flight window, so this bounds it separately).
  size_t max_sessions_per_connection = 64;
};

/// A TCP server exposing one Database over the Holix wire protocol.
class HolixServer {
 public:
  /// \p db must outlive the server.
  explicit HolixServer(Database& db, ServerOptions options = {});
  ~HolixServer();

  HolixServer(const HolixServer&) = delete;
  HolixServer& operator=(const HolixServer&) = delete;

  /// Binds, listens and starts the acceptor. Throws std::runtime_error
  /// when the socket cannot be set up.
  void Start();

  /// Stops accepting, stops readers, drains in-flight queries (their
  /// responses are still written), joins every thread and closes every
  /// socket. Idempotent; also runs from the destructor.
  void Stop();

  /// The bound TCP port (valid after Start(); resolves ephemeral binds).
  uint16_t port() const { return port_; }

  /// True between successful Start() and Stop().
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Connections accepted over the server's lifetime.
  uint64_t TotalConnections() const {
    return total_connections_.load(std::memory_order_relaxed);
  }

  /// Request frames dispatched over the server's lifetime.
  uint64_t TotalRequests() const {
    return total_requests_.load(std::memory_order_relaxed);
  }

 private:
  /// Per-connection state. The reader thread owns fd reads and the session
  /// map; pool threads share fd writes (under write_mu) and the in-flight
  /// accounting.
  struct Connection {
    int fd = -1;
    std::thread reader;

    /// Serializes response frames (whole frames only) onto the socket.
    std::mutex write_mu;

    /// Backpressure + drain accounting.
    std::mutex flow_mu;
    std::condition_variable flow_cv;
    size_t in_flight = 0;

    /// Sessions opened on this connection (reader-thread-only).
    std::unordered_map<uint64_t, Session> sessions;

    std::atomic<bool> closing{false};
    /// Set by the reader as its very last action; lets the acceptor reap
    /// finished connections (join + erase) instead of accreting them.
    std::atomic<bool> finished{false};
  };

  void AcceptLoop(int listen_fd);
  /// Joins and drops connections whose readers have finished (runs on the
  /// acceptor thread so a long-lived server does not accrete dead ones).
  void ReapFinishedConnections();
  void ReaderLoop(const std::shared_ptr<Connection>& conn);
  /// Handles one decoded frame; returns false when the connection must
  /// close (protocol violation).
  bool HandleFrame(const std::shared_ptr<Connection>& conn, const Frame& f);
  /// Dispatches one query frame through SubmitRaw with backpressure.
  template <typename Req, typename Fn>
  bool DispatchQuery(const std::shared_ptr<Connection>& conn, const Frame& f,
                     Fn&& run);

  /// Writes one whole frame under the connection's write mutex. Returns
  /// false when the peer is gone (callers then stop producing).
  static bool SendFrame(Connection& conn, const std::vector<uint8_t>& bytes);
  template <typename M>
  static bool Send(Connection& conn, uint64_t request_id, const M& m) {
    return SendFrame(conn, EncodeMessage(request_id, m));
  }
  static bool SendError(Connection& conn, uint64_t request_id, ErrorCode code,
                        const std::string& message);

  /// Blocks until the connection's in-flight queries hit zero.
  static void DrainInFlight(Connection& conn);

  Database& db_;
  ServerOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread acceptor_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;

  std::atomic<uint64_t> total_connections_{0};
  std::atomic<uint64_t> total_requests_{0};
};

}  // namespace holix::net
