/// \file server.h
/// \brief HolixServer: the TCP service layer over the engine's Session API
/// (§5.8's many-concurrent-clients model made real on a socket).
///
/// Thread model: an epoll event loop on a small fixed set of IO threads
/// (ServerOptions::io_threads), each owning a disjoint subset of
/// nonblocking connections — not a thread per connection, so thousands of
/// idle clients cost file descriptors, not stacks. Each IO thread decodes
/// length-prefixed frames incrementally out of a per-connection read
/// buffer (partial frames simply wait for the next readable event) and
/// resolves handles through the connection's sessions (each session's
/// handle cache stays single-threaded); query execution is dispatched
/// through Session::SubmitRaw onto the database's client pool. Pool
/// threads never touch sockets: a finished query encodes its response
/// frame, parks it in the connection's outbox and wakes the owning loop
/// (eventfd), which moves it to the write queue and writes until EAGAIN,
/// keeping EPOLLOUT armed across partial writes.
///
/// Backpressure: a connection stops *decoding* — and drops EPOLLIN
/// interest, so the kernel receive buffer fills and TCP flow control
/// pushes back on the client — while it has
/// ServerOptions::max_in_flight_per_connection dispatched queries or more
/// than ServerOptions::max_queued_bytes_per_connection of undelivered
/// response bytes. Reads resume when the window reopens.
///
/// Shared scans: when ServerOptions::shared_scans is on, concurrent
/// CountRange requests (and count-only single-predicate ExecuteQuery
/// frames) against the same column are coalesced into one
/// Database::CountRangeBatchScalar pass — the union of the bounds is
/// cracked once and each request's count is carved out of a single scan
/// (see shared_scan.h).
///
/// Shutdown: Stop() closes the listener, stops frame decoding, *drains*
/// every in-flight query (responses still go out), flushes write queues
/// (bounded by ServerOptions::drain_flush_seconds for peers that stopped
/// reading), then joins the IO threads and closes every socket.

#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "engine/session.h"
#include "server/protocol.h"

namespace holix {
class Database;
}

namespace holix::net {

class SharedScanCoalescer;

/// Construction-time options of a HolixServer.
struct ServerOptions {
  /// Address to bind; the default serves loopback only (the benchmarks'
  /// and tests' deployment). Use "0.0.0.0" to serve a network.
  std::string bind_address = "127.0.0.1";

  /// TCP port; 0 binds an ephemeral port (read the result from port()).
  uint16_t port = 0;

  /// listen(2) backlog. Connection storms (the 1k-connection sweep) burst
  /// far past the old per-thread pace, so the default is generous.
  int backlog = 256;

  /// Backpressure window: dispatched-but-unanswered queries one connection
  /// may have before its loop stops decoding further requests.
  size_t max_in_flight_per_connection = 32;

  /// Backpressure watermark on undelivered response bytes (outbox + write
  /// queue); past it the loop stops decoding the connection's requests
  /// until the peer drains.
  size_t max_queued_bytes_per_connection = 4u << 20;

  /// Cap on concurrently open sessions per connection; an OpenSession
  /// beyond it is answered with an Error frame (session management is not
  /// covered by the in-flight window, so this bounds it separately).
  size_t max_sessions_per_connection = 64;

  /// Number of epoll IO threads. Two saturate loopback comfortably; raise
  /// toward the physical core count for many active NIC-attached clients.
  size_t io_threads = 2;

  /// Coalesce concurrent same-column count requests into shared scans.
  bool shared_scans = true;

  /// Serve a plain-HTTP `GET /metrics` endpoint (Prometheus text
  /// exposition) on the event loop. Enabled by metrics_http or a nonzero
  /// metrics_port; port 0 with metrics_http binds an ephemeral port (read
  /// the result from metrics_port()).
  bool metrics_http = false;
  uint16_t metrics_port = 0;

  /// Seconds Stop() keeps flushing response bytes to peers that read
  /// slowly; a peer that stopped reading entirely is cut off after this.
  double drain_flush_seconds = 5.0;
};

/// A TCP server exposing one Database over the Holix wire protocol.
class HolixServer {
 public:
  /// \p db must outlive the server.
  explicit HolixServer(Database& db, ServerOptions options = {});
  ~HolixServer();

  HolixServer(const HolixServer&) = delete;
  HolixServer& operator=(const HolixServer&) = delete;

  /// Binds, listens and starts the IO loops. Throws std::runtime_error
  /// when the socket cannot be set up.
  void Start();

  /// Stops accepting, stops decoding, drains in-flight queries (their
  /// responses are still written), flushes, joins every IO thread and
  /// closes every socket. Idempotent; also runs from the destructor.
  void Stop();

  /// The bound TCP port (valid after Start(); resolves ephemeral binds).
  uint16_t port() const { return port_; }

  /// The bound metrics-endpoint port (0 when the endpoint is disabled).
  uint16_t metrics_port() const { return metrics_port_; }

  /// True between successful Start() and Stop().
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Connections accepted over the server's lifetime.
  uint64_t TotalConnections() const {
    return total_connections_.load(std::memory_order_relaxed);
  }

  /// Request frames dispatched over the server's lifetime.
  uint64_t TotalRequests() const {
    return total_requests_.load(std::memory_order_relaxed);
  }

  /// High-water mark of concurrently open protocol connections.
  uint64_t PeakConnections() const {
    return peak_connections_.load(std::memory_order_relaxed);
  }

  /// Count-range batches the shared-scan coalescer ran (0 when off).
  /// Snapshot reads of the global holix_sharedscan_* registry series,
  /// relative to a baseline captured at construction, so the value covers
  /// exactly this server's lifetime.
  uint64_t SharedScanBatches() const;
  /// Requests answered through those batches.
  uint64_t SharedScanRequests() const;

 private:
  struct IoLoop;

  /// Per-connection state. The owning IO thread has exclusive use of the
  /// read buffer, session map and write queue; pool threads only park
  /// encoded responses in the outbox (under out_mu) and wake the loop.
  struct Connection {
    int fd = -1;
    IoLoop* loop = nullptr;

    // --- loop-thread-only ---------------------------------------------
    std::vector<uint8_t> rbuf;
    bool http = false;  ///< Accepted on the metrics port: speaks HTTP.
    bool handshaken = false;
    bool paused = false;    ///< EPOLLIN interest dropped (backpressure).
    bool draining = false;  ///< Stop(): no further frames are decoded.
    bool read_eof = false;  ///< Peer half-closed; close after flush.
    bool close_after_flush = false;  ///< Protocol error: close once flushed.
    uint32_t events = 0;    ///< Currently registered epoll interest.
    std::unordered_map<uint64_t, Session> sessions;
    std::deque<std::vector<uint8_t>> wq;  ///< Write queue, whole frames.
    size_t wq_off = 0;       ///< Partial-write offset into wq.front().
    size_t wq_bytes = 0;     ///< Bytes queued in wq.

    // --- shared with pool threads (under out_mu) ----------------------
    std::mutex out_mu;
    std::vector<std::vector<uint8_t>> outbox;  ///< Completed responses.
    size_t outbox_bytes = 0;
    size_t in_flight = 0;  ///< Dispatched, response not yet in outbox/wq.
    bool closed = false;   ///< fd gone; completions become no-ops.
  };

  /// One epoll loop: owns its connections, a wake eventfd, and a task /
  /// dirty-connection queue other threads post into.
  struct IoLoop {
    size_t index = 0;
    int epfd = -1;
    int wakefd = -1;
    std::thread th;
    std::atomic<bool> stop{false};
    std::mutex mu;
    std::vector<std::function<void()>> tasks;
    std::vector<std::shared_ptr<Connection>> dirty;
    /// Loop-thread-only registry (shared_ptr keeps closures' conn alive).
    std::unordered_map<Connection*, std::shared_ptr<Connection>> conns;
  };

  void LoopRun(IoLoop& loop);
  void Post(IoLoop& loop, std::function<void()> fn);
  static void Wake(IoLoop& loop);
  /// Called from pool threads after parking a response in the outbox.
  void NotifyDirty(const std::shared_ptr<Connection>& conn);

  void AcceptReady(IoLoop& loop, int listen_fd, bool http);
  void RegisterConn(IoLoop& loop, const std::shared_ptr<Connection>& conn);
  void ReadReady(IoLoop& loop, const std::shared_ptr<Connection>& conn);
  /// Serves `GET /metrics` (Prometheus text exposition) on a metrics-port
  /// connection; any other request is answered 404. One-shot HTTP/1.0:
  /// the response is flushed and the connection closed.
  void HandleHttp(IoLoop& loop, const std::shared_ptr<Connection>& conn);
  /// Decodes every complete frame in rbuf (until backpressure pauses).
  void DecodeFrames(IoLoop& loop, const std::shared_ptr<Connection>& conn);
  /// Moves the outbox into the write queue and writes until EAGAIN or
  /// empty; arms/disarms EPOLLOUT; may destroy the connection.
  void FlushWrites(IoLoop& loop, const std::shared_ptr<Connection>& conn);
  void UpdateInterest(IoLoop& loop, Connection& conn);
  bool ShouldPause(Connection& conn) const;
  void DestroyConn(IoLoop& loop, const std::shared_ptr<Connection>& conn);

  /// Handles one decoded frame; returns false when the connection must
  /// close (protocol violation).
  bool HandleFrame(IoLoop& loop, const std::shared_ptr<Connection>& conn,
                   const Frame& f);
  /// Dispatches one query frame: \p run resolves handles on the loop
  /// thread and returns a closure producing the encoded response frame,
  /// executed on the client pool.
  template <typename Req, typename Fn>
  bool DispatchQuery(IoLoop& loop, const std::shared_ptr<Connection>& conn,
                     const Frame& f, Fn&& run);
  /// Parks an encoded response and wakes the loop (pool threads).
  void CompleteRequest(const std::shared_ptr<Connection>& conn,
                       std::vector<uint8_t> frame);
  /// Counts a dispatch in the per-connection and global windows.
  void BeginRequest(Connection& conn);

  /// Loop-thread enqueue of a non-query frame (acks, errors).
  void EnqueueLoop(IoLoop& loop, const std::shared_ptr<Connection>& conn,
                   std::vector<uint8_t> bytes);
  void EnqueueError(IoLoop& loop, const std::shared_ptr<Connection>& conn,
                    uint64_t request_id, ErrorCode code,
                    const std::string& message);
  static std::vector<uint8_t> EncodeError(uint64_t request_id, ErrorCode code,
                                          const std::string& message);

  Database& db_;
  ServerOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  int metrics_listen_fd_ = -1;
  uint16_t metrics_port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::vector<std::unique_ptr<IoLoop>> loops_;
  std::atomic<size_t> next_loop_{0};
  /// Dispatched-but-unanswered queries across all connections; Stop()
  /// waits for zero (pool closures never block on sockets, so this always
  /// drains).
  std::atomic<uint64_t> global_in_flight_{0};
  std::unique_ptr<SharedScanCoalescer> coalescer_;

  std::atomic<uint64_t> total_connections_{0};
  std::atomic<uint64_t> total_requests_{0};
  std::atomic<uint64_t> open_connections_{0};
  std::atomic<uint64_t> peak_connections_{0};
  /// Registry values of the holix_sharedscan_* counters at construction;
  /// SharedScanBatches()/SharedScanRequests() report deltas against these
  /// so the accessors cover exactly this server's lifetime even though the
  /// registry is process-global.
  uint64_t sharedscan_batches_base_ = 0;
  uint64_t sharedscan_requests_base_ = 0;
};

}  // namespace holix::net
