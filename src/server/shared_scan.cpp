#include "server/shared_scan.h"

#include <exception>

#include "engine/database.h"
#include "obs/metrics.h"

namespace holix::net {

std::shared_ptr<SharedScanCoalescer::ColumnState> SharedScanCoalescer::StateFor(
    const ColumnHandle& column) {
  std::lock_guard<std::mutex> lk(map_mu_);
  auto& st = cols_[column.entry()];
  if (st == nullptr) {
    st = std::make_shared<ColumnState>();
    st->handle = column;
  }
  return st;
}

void SharedScanCoalescer::Submit(const ColumnHandle& column, KeyScalar low,
                                 KeyScalar high, Done done) {
  auto st = StateFor(column);
  bool lead = false;
  {
    std::lock_guard<std::mutex> lk(st->mu);
    st->queue.push_back({low, high, std::move(done)});
    if (!st->busy) {
      st->busy = true;
      lead = true;
    }
  }
  if (lead) {
    Database* db = &db_;
    db_.client_pool().Submit(
        [db, st = std::move(st)] { RunBatches(*db, std::move(st)); });
  }
}

void SharedScanCoalescer::RunBatches(Database& db,
                                     std::shared_ptr<ColumnState> st) {
  for (;;) {
    std::vector<PendingReq> batch;
    {
      std::lock_guard<std::mutex> lk(st->mu);
      if (st->queue.empty()) {
        st->busy = false;
        return;
      }
      batch.swap(st->queue);
    }
    auto& reg = obs::MetricsRegistry::Global();
    static obs::Counter& batches =
        reg.GetCounter("holix_sharedscan_batches_total");
    static obs::Counter& requests =
        reg.GetCounter("holix_sharedscan_requests_total");
    static obs::Histogram& batch_size = reg.GetHistogram(
        "holix_sharedscan_batch_size",
        {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024});
    batches.Inc();
    requests.Inc(batch.size());
    batch_size.Observe(static_cast<double>(batch.size()));
    std::vector<std::pair<KeyScalar, KeyScalar>> ranges;
    ranges.reserve(batch.size());
    for (const PendingReq& r : batch) ranges.emplace_back(r.low, r.high);
    try {
      const std::vector<uint64_t> counts =
          db.CountRangeBatchScalar(st->handle, ranges, QueryContext{});
      for (size_t i = 0; i < batch.size(); ++i) {
        batch[i].done(counts[i], nullptr);
      }
    } catch (const std::exception& e) {
      const std::string msg = e.what();
      for (PendingReq& r : batch) r.done(0, &msg);
    } catch (...) {
      const std::string msg = "unknown error";
      for (PendingReq& r : batch) r.done(0, &msg);
    }
  }
}

}  // namespace holix::net
