/// \file shared_scan.h
/// \brief SharedScanCoalescer: batches concurrent count-range requests on
/// the same column into single crack/scan passes.
///
/// The ColBase "shared scan" idea, adapted to adaptive indexing: N
/// concurrent range counts over one column should cost ~one pass, not N.
/// The event-loop server gives the engine a global view of in-flight
/// requests, and this coalescer exploits it with a *convoy* scheme — no
/// timers, no artificial batching delay:
///
///  * The first request on an idle column becomes the batch leader; it is
///    dispatched onto the database's client pool.
///  * Requests arriving while the leader runs park in the column's queue.
///  * When the leader's batch finishes, it takes the whole queue — however
///    many requests piled up — as the next batch, and loops until the
///    queue is empty.
///
/// A lone request therefore degenerates to one ordinary CountRange with no
/// added latency, while under concurrency the batch size automatically
/// tracks how far the engine lags the arrival rate. Each batch runs
/// Database::CountRangeBatchScalar: the union of the batch's bounds is
/// cracked once and every request's count is carved out of one scan,
/// bit-equal to running the requests separately.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "engine/column_registry.h"
#include "storage/types.h"

namespace holix {
class Database;
}

namespace holix::net {

class SharedScanCoalescer {
 public:
  /// Called with the request's count, or with a non-null error message.
  using Done = std::function<void(uint64_t count, const std::string* error)>;

  /// \p db must outlive every callback (the server guarantees it: Stop()
  /// drains all in-flight requests before the database can die).
  explicit SharedScanCoalescer(Database& db) : db_(db) {}

  SharedScanCoalescer(const SharedScanCoalescer&) = delete;
  SharedScanCoalescer& operator=(const SharedScanCoalescer&) = delete;

  /// Queues one count-range request for \p column and returns immediately;
  /// \p done fires on a client-pool thread. Thread-safe.
  void Submit(const ColumnHandle& column, KeyScalar low, KeyScalar high,
              Done done);

  // Batch/request counts live in the global metrics registry
  // (holix_sharedscan_batches_total / holix_sharedscan_requests_total /
  // the holix_sharedscan_batch_size histogram); HolixServer exposes them
  // as baseline-relative snapshot reads.

 private:
  struct PendingReq {
    KeyScalar low;
    KeyScalar high;
    Done done;
  };

  /// Per-column convoy state. shared_ptr-held by leader closures, so a
  /// batch finishing after the coalescer died (impossible under the
  /// server's drain contract, but cheap to make safe) touches live memory.
  struct ColumnState {
    ColumnHandle handle;
    std::mutex mu;
    bool busy = false;
    std::vector<PendingReq> queue;
  };

  std::shared_ptr<ColumnState> StateFor(const ColumnHandle& column);
  /// The leader: drains the queue batch-by-batch on a client-pool thread.
  static void RunBatches(Database& db, std::shared_ptr<ColumnState> st);

  Database& db_;
  std::mutex map_mu_;
  std::unordered_map<const ColumnEntry*, std::shared_ptr<ColumnState>> cols_;
};

}  // namespace holix::net
