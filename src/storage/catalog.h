/// \file catalog.h
/// \brief The schema catalog: all tables known to the engine.

#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/table.h"

namespace holix {

/// Owns every table in the database.
class Catalog {
 public:
  /// Creates (or returns the existing) table named \p name.
  Table& CreateTable(const std::string& name) {
    auto it = tables_.find(name);
    if (it != tables_.end()) return *it->second;
    auto table = std::make_unique<Table>(name);
    Table* raw = table.get();
    tables_.emplace(name, std::move(table));
    return *raw;
  }

  /// True when a table named \p name exists.
  bool HasTable(const std::string& name) const {
    return tables_.count(name) != 0;
  }

  /// Looks up a table; throws std::out_of_range when absent.
  Table& GetTable(const std::string& name) {
    auto it = tables_.find(name);
    if (it == tables_.end()) throw std::out_of_range("no table " + name);
    return *it->second;
  }

  /// Const lookup; throws std::out_of_range when absent.
  const Table& GetTable(const std::string& name) const {
    auto it = tables_.find(name);
    if (it == tables_.end()) throw std::out_of_range("no table " + name);
    return *it->second;
  }

  /// Drops the table named \p name (no-op when absent).
  void DropTable(const std::string& name) { tables_.erase(name); }

  /// Names of all tables (unordered).
  std::vector<std::string> TableNames() const {
    std::vector<std::string> names;
    names.reserve(tables_.size());
    for (const auto& [name, _] : tables_) names.push_back(name);
    return names;
  }

 private:
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace holix
