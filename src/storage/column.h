/// \file column.h
/// \brief Dense, fixed-width, in-memory columns (Decomposition Storage
/// Model, §3.1 of the paper).
///
/// Every relational table is vertically fragmented into one Column per
/// attribute; the i-th value of every column belongs to tuple i, which is
/// what makes late, positional tuple reconstruction cheap.

#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "storage/types.h"

namespace holix {

/// Type-erased base class so tables can hold heterogeneous columns.
class ColumnBase {
 public:
  explicit ColumnBase(std::string name, ValueType type)
      : name_(std::move(name)), type_(type) {}
  virtual ~ColumnBase() = default;

  /// Attribute name.
  const std::string& name() const { return name_; }
  /// Value type tag.
  ValueType type() const { return type_; }
  /// Number of tuples.
  virtual size_t size() const = 0;
  /// Bytes of payload data.
  virtual size_t SizeBytes() const = 0;

 private:
  std::string name_;
  ValueType type_;
};

/// A typed dense array column.
template <typename T>
class Column : public ColumnBase {
 public:
  /// Creates an empty column named \p name.
  explicit Column(std::string name)
      : ColumnBase(std::move(name), ValueTypeOf<T>::value) {}

  /// Creates a column from existing data.
  Column(std::string name, std::vector<T> data)
      : ColumnBase(std::move(name), ValueTypeOf<T>::value),
        data_(std::move(data)) {}

  size_t size() const override { return data_.size(); }
  size_t SizeBytes() const override { return data_.size() * sizeof(T); }

  /// Value of tuple \p row.
  T operator[](RowId row) const {
    assert(row < data_.size());
    return data_[row];
  }

  /// Appends \p value as a new tuple.
  void Append(T value) { data_.push_back(value); }

  /// Raw read-only data pointer (for tight scan loops).
  const T* data() const { return data_.data(); }
  /// Raw mutable data pointer.
  T* mutable_data() { return data_.data(); }
  /// Read-only vector view.
  const std::vector<T>& values() const { return data_; }
  /// Mutable vector (loading/bulk operations).
  std::vector<T>& mutable_values() { return data_; }

 private:
  std::vector<T> data_;
};

using Int32Column = Column<int32_t>;
using Int64Column = Column<int64_t>;
using DoubleColumn = Column<double>;

}  // namespace holix
