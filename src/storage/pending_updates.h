/// \file pending_updates.h
/// \brief Pending insertion/deletion queues for cracked columns (§4.2,
/// "Updates"; Ripple algorithm of [28]).
///
/// Updates against a cracked column are not applied eagerly. Inserts are
/// parked in a pending-insertions column, deletes in a pending-deletions
/// column; an update is a delete followed by an insert. Values are merged
/// into the cracker column on demand: by a user query whose range covers
/// them, or by a holistic worker whose random pivot lands in their piece.

#pragma once

#include <algorithm>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "storage/types.h"

namespace holix {

/// Thread-safe pending-update store for one attribute.
template <typename T>
class PendingUpdates {
 public:
  /// Parks an insertion of (value, rowid).
  void AddInsert(T value, RowId rowid) {
    std::lock_guard<std::mutex> lk(mu_);
    inserts_.push_back({value, rowid});
    ins_bounds_.Widen(value);
    appended_[rowid] = value;
  }

  /// Parks a deletion of (value, rowid). A delete of a row that was itself
  /// appended simply nets out of the appended registry; a delete of a BASE
  /// row is remembered in the deleted-base registry — the base array never
  /// shrinks, so durability needs the list of base rows no longer live to
  /// reconstruct the column's effective multiset.
  void AddDelete(T value, RowId rowid) {
    std::lock_guard<std::mutex> lk(mu_);
    deletes_.push_back({value, rowid});
    del_bounds_.Widen(value);
    if (appended_.erase(rowid) == 0) deleted_base_[rowid] = value;
  }

  /// Extracts (removes and returns) every pending insert whose value lies
  /// in [low, high).
  std::vector<std::pair<T, RowId>> TakeInsertsInRange(T low, T high) {
    std::lock_guard<std::mutex> lk(mu_);
    auto taken = TakeRangeLocked(inserts_, low, high);
    if (inserts_.empty()) ins_bounds_.Reset();
    return taken;
  }

  /// Extracts every pending delete whose value lies in [low, high).
  std::vector<std::pair<T, RowId>> TakeDeletesInRange(T low, T high) {
    std::lock_guard<std::mutex> lk(mu_);
    auto taken = TakeRangeLocked(deletes_, low, high);
    if (deletes_.empty()) del_bounds_.Reset();
    return taken;
  }

  /// Extracts every pending insert whose value is >= \p low (the closed
  /// tail [low, max(T)], which [low, high) cannot express at high=max(T)).
  std::vector<std::pair<T, RowId>> TakeInsertsAtLeast(T low) {
    std::lock_guard<std::mutex> lk(mu_);
    auto taken = TakeAtLeastLocked(inserts_, low);
    if (inserts_.empty()) ins_bounds_.Reset();
    return taken;
  }

  /// Extracts every pending delete whose value is >= \p low.
  std::vector<std::pair<T, RowId>> TakeDeletesAtLeast(T low) {
    std::lock_guard<std::mutex> lk(mu_);
    auto taken = TakeAtLeastLocked(deletes_, low);
    if (deletes_.empty()) del_bounds_.Reset();
    return taken;
  }

  /// True when any pending insert or delete has value >= \p low.
  bool AnyAtLeast(T low) const {
    std::lock_guard<std::mutex> lk(mu_);
    auto at_least = [&](const std::pair<T, RowId>& p) {
      return !KeyTraits<T>::Less(p.first, low);
    };
    return (ins_bounds_.any && !KeyTraits<T>::Less(ins_bounds_.max, low) &&
            std::any_of(inserts_.begin(), inserts_.end(), at_least)) ||
           (del_bounds_.any && !KeyTraits<T>::Less(del_bounds_.max, low) &&
            std::any_of(deletes_.begin(), deletes_.end(), at_least));
  }

  /// True when any pending insert or delete may fall in [low, high). Cheap
  /// peek so merge paths can skip exclusive latching when nothing in the
  /// queues concerns their range. Conservative value bounds reject the
  /// common disjoint case in O(1); only overlapping ranges pay the scan.
  bool AnyInRange(T low, T high) const {
    std::lock_guard<std::mutex> lk(mu_);
    auto in_range = [&](const std::pair<T, RowId>& p) {
      return !KeyTraits<T>::Less(p.first, low) &&
             KeyTraits<T>::Less(p.first, high);
    };
    return (ins_bounds_.Overlaps(low, high) &&
            std::any_of(inserts_.begin(), inserts_.end(), in_range)) ||
           (del_bounds_.Overlaps(low, high) &&
            std::any_of(deletes_.begin(), deletes_.end(), in_range));
  }

  /// Looks up the value of an appended row (one added through AddInsert and
  /// not since deleted). Unlike the queues, this registry is *persistent*:
  /// Ripple merges drain the queues into the cracker column, but the base
  /// column array never grows, so positional paths (conjunction probes,
  /// projection sums) need a side lookup for rowids past the base. Returns
  /// false when \p rowid was never appended here (or was deleted again).
  bool AppendedValue(RowId rowid, T* out) const {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = appended_.find(rowid);
    if (it == appended_.end()) return false;
    *out = it->second;
    return true;
  }

  /// Number of live appended rows (inserted and not deleted).
  size_t AppendedRows() const {
    std::lock_guard<std::mutex> lk(mu_);
    return appended_.size();
  }

  /// Every live appended row as (rowid, value), ascending by rowid — the
  /// deterministic export a checkpoint serializes.
  std::vector<std::pair<RowId, T>> AppendedEntries() const {
    std::lock_guard<std::mutex> lk(mu_);
    return SortedEntriesLocked(appended_);
  }

  /// Every deleted BASE row as (rowid, value), ascending by rowid.
  std::vector<std::pair<RowId, T>> DeletedBaseEntries() const {
    std::lock_guard<std::mutex> lk(mu_);
    return SortedEntriesLocked(deleted_base_);
  }

  /// Number of pending insertions.
  size_t PendingInserts() const {
    std::lock_guard<std::mutex> lk(mu_);
    return inserts_.size();
  }

  /// Number of pending deletions.
  size_t PendingDeletes() const {
    std::lock_guard<std::mutex> lk(mu_);
    return deletes_.size();
  }

 private:
  /// Conservative min/max of a queue's values: widened on every Add, reset
  /// only when the queue drains (so it may be wider than the live contents
  /// — a false positive costs one scan, never a missed merge).
  struct Bounds {
    bool any = false;
    T min{};
    T max{};
    void Widen(T v) {
      if (!any) {
        any = true;
        min = max = v;
      } else {
        if (KeyTraits<T>::Less(v, min)) min = v;
        if (KeyTraits<T>::Less(max, v)) max = v;
      }
    }
    void Reset() { any = false; }
    bool Overlaps(T low, T high) const {
      return any && KeyTraits<T>::Less(min, high) &&
             !KeyTraits<T>::Less(max, low);
    }
  };

  static std::vector<std::pair<RowId, T>> SortedEntriesLocked(
      const std::unordered_map<RowId, T>& m) {
    std::vector<std::pair<RowId, T>> out(m.begin(), m.end());
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return out;
  }

  static std::vector<std::pair<T, RowId>> TakeRangeLocked(
      std::vector<std::pair<T, RowId>>& queue, T low, T high) {
    std::vector<std::pair<T, RowId>> taken;
    auto keep_end = std::remove_if(
        queue.begin(), queue.end(), [&](const std::pair<T, RowId>& p) {
          if (!KeyTraits<T>::Less(p.first, low) &&
              KeyTraits<T>::Less(p.first, high)) {
            taken.push_back(p);
            return true;
          }
          return false;
        });
    queue.erase(keep_end, queue.end());
    return taken;
  }

  static std::vector<std::pair<T, RowId>> TakeAtLeastLocked(
      std::vector<std::pair<T, RowId>>& queue, T low) {
    std::vector<std::pair<T, RowId>> taken;
    auto keep_end = std::remove_if(
        queue.begin(), queue.end(), [&](const std::pair<T, RowId>& p) {
          if (!KeyTraits<T>::Less(p.first, low)) {
            taken.push_back(p);
            return true;
          }
          return false;
        });
    queue.erase(keep_end, queue.end());
    return taken;
  }

  mutable std::mutex mu_;
  std::vector<std::pair<T, RowId>> inserts_;
  std::vector<std::pair<T, RowId>> deletes_;
  Bounds ins_bounds_;
  Bounds del_bounds_;
  /// rowid -> value for every live appended row; survives Take* drains.
  std::unordered_map<RowId, T> appended_;
  /// rowid -> value for every deleted base row; survives Take* drains
  /// (base arrays never shrink — see AddDelete).
  std::unordered_map<RowId, T> deleted_base_;
};

}  // namespace holix
