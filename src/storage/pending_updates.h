/// \file pending_updates.h
/// \brief Pending insertion/deletion queues for cracked columns (§4.2,
/// "Updates"; Ripple algorithm of [28]).
///
/// Updates against a cracked column are not applied eagerly. Inserts are
/// parked in a pending-insertions column, deletes in a pending-deletions
/// column; an update is a delete followed by an insert. Values are merged
/// into the cracker column on demand: by a user query whose range covers
/// them, or by a holistic worker whose random pivot lands in their piece.

#pragma once

#include <algorithm>
#include <mutex>
#include <vector>

#include "storage/types.h"

namespace holix {

/// Thread-safe pending-update store for one attribute.
template <typename T>
class PendingUpdates {
 public:
  /// Parks an insertion of (value, rowid).
  void AddInsert(T value, RowId rowid) {
    std::lock_guard<std::mutex> lk(mu_);
    inserts_.push_back({value, rowid});
  }

  /// Parks a deletion of (value, rowid).
  void AddDelete(T value, RowId rowid) {
    std::lock_guard<std::mutex> lk(mu_);
    deletes_.push_back({value, rowid});
  }

  /// Extracts (removes and returns) every pending insert whose value lies
  /// in [low, high).
  std::vector<std::pair<T, RowId>> TakeInsertsInRange(T low, T high) {
    std::lock_guard<std::mutex> lk(mu_);
    return TakeRangeLocked(inserts_, low, high);
  }

  /// Extracts every pending delete whose value lies in [low, high).
  std::vector<std::pair<T, RowId>> TakeDeletesInRange(T low, T high) {
    std::lock_guard<std::mutex> lk(mu_);
    return TakeRangeLocked(deletes_, low, high);
  }

  /// Number of pending insertions.
  size_t PendingInserts() const {
    std::lock_guard<std::mutex> lk(mu_);
    return inserts_.size();
  }

  /// Number of pending deletions.
  size_t PendingDeletes() const {
    std::lock_guard<std::mutex> lk(mu_);
    return deletes_.size();
  }

 private:
  static std::vector<std::pair<T, RowId>> TakeRangeLocked(
      std::vector<std::pair<T, RowId>>& queue, T low, T high) {
    std::vector<std::pair<T, RowId>> taken;
    auto keep_end = std::remove_if(
        queue.begin(), queue.end(), [&](const std::pair<T, RowId>& p) {
          if (p.first >= low && p.first < high) {
            taken.push_back(p);
            return true;
          }
          return false;
        });
    queue.erase(keep_end, queue.end());
    return taken;
  }

  mutable std::mutex mu_;
  std::vector<std::pair<T, RowId>> inserts_;
  std::vector<std::pair<T, RowId>> deletes_;
};

}  // namespace holix
