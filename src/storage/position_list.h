/// \file position_list.h
/// \brief Intermediate results of select operators: lists of qualifying
/// row identifiers, plus contiguous position ranges for cracked columns.

#pragma once

#include <cstddef>
#include <vector>

#include "storage/types.h"

namespace holix {

/// A materialized list of qualifying row ids (column-store intermediate).
using PositionList = std::vector<RowId>;

/// A half-open contiguous range of positions [begin, end) inside a cracker
/// column. Cracked selects return ranges instead of materialized lists;
/// the project operator then reads rowids out of the cracker column.
struct PositionRange {
  size_t begin = 0;
  size_t end = 0;

  /// Number of positions covered.
  size_t size() const { return end - begin; }
  /// True when the range is empty.
  bool empty() const { return end <= begin; }
};

}  // namespace holix
