// Anchor translation unit for the header-only storage library; also hosts
// out-of-line definitions if storage ever grows non-template code.
#include "storage/catalog.h"
#include "storage/column.h"
#include "storage/pending_updates.h"
#include "storage/position_list.h"
#include "storage/table.h"
#include "storage/types.h"

namespace holix {
// Explicit instantiations keep common template code out of every TU.
template class Column<int32_t>;
template class Column<int64_t>;
template class Column<double>;
template class PendingUpdates<int32_t>;
template class PendingUpdates<int64_t>;
}  // namespace holix
