/// \file table.h
/// \brief Vertically fragmented tables: a named collection of equally long
/// columns (§3.1).

#pragma once

#include <cassert>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/column.h"

namespace holix {

/// A relational table stored one column at a time.
class Table {
 public:
  /// Creates an empty table named \p name.
  explicit Table(std::string name) : name_(std::move(name)) {}

  /// Table name.
  const std::string& name() const { return name_; }

  /// Number of tuples (0 when no columns exist).
  size_t num_rows() const {
    return columns_.empty() ? 0 : columns_.front()->size();
  }

  /// Number of attributes.
  size_t num_columns() const { return columns_.size(); }

  /// Adds \p column; its length must match existing columns.
  /// \return reference to the stored column.
  template <typename T>
  Column<T>& AddColumn(std::unique_ptr<Column<T>> column) {
    if (!columns_.empty() && column->size() != num_rows()) {
      throw std::invalid_argument("column length mismatch in table " + name_);
    }
    if (by_name_.count(column->name()) != 0) {
      throw std::invalid_argument("duplicate column " + column->name());
    }
    Column<T>* raw = column.get();
    by_name_[column->name()] = columns_.size();
    columns_.push_back(std::move(column));
    return *raw;
  }

  /// Convenience: builds and adds a column from a vector.
  template <typename T>
  Column<T>& AddColumn(const std::string& column_name, std::vector<T> data) {
    return AddColumn(
        std::make_unique<Column<T>>(column_name, std::move(data)));
  }

  /// True if an attribute named \p column_name exists.
  bool HasColumn(const std::string& column_name) const {
    return by_name_.count(column_name) != 0;
  }

  /// Looks up a column by name; throws std::out_of_range if missing or if
  /// the stored type differs from T.
  template <typename T>
  const Column<T>& GetColumn(const std::string& column_name) const {
    const auto it = by_name_.find(column_name);
    if (it == by_name_.end()) {
      throw std::out_of_range("no column " + column_name + " in " + name_);
    }
    const auto* typed = dynamic_cast<const Column<T>*>(
        columns_[it->second].get());
    if (typed == nullptr) {
      throw std::out_of_range("column " + column_name + " has type " +
                              ValueTypeName(columns_[it->second]->type()));
    }
    return *typed;
  }

  /// Mutable variant of GetColumn.
  template <typename T>
  Column<T>& GetMutableColumn(const std::string& column_name) {
    return const_cast<Column<T>&>(
        static_cast<const Table*>(this)->GetColumn<T>(column_name));
  }

  /// Type-erased access by index (iteration, catalogs).
  const ColumnBase& column(size_t idx) const { return *columns_[idx]; }

  /// Names of all attributes in storage order.
  std::vector<std::string> ColumnNames() const {
    std::vector<std::string> names;
    names.reserve(columns_.size());
    for (const auto& c : columns_) names.push_back(c->name());
    return names;
  }

  /// Total bytes across all columns.
  size_t SizeBytes() const {
    size_t total = 0;
    for (const auto& c : columns_) total += c->SizeBytes();
    return total;
  }

 private:
  std::string name_;
  std::vector<std::unique_ptr<ColumnBase>> columns_;
  std::unordered_map<std::string, size_t> by_name_;
};

}  // namespace holix
