/// \file types.h
/// \brief Fundamental value and position types of the column-store, and the
/// KeyTraits total-order contract every indexable key type satisfies.

#pragma once

#include <bit>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <type_traits>

#include "util/key_traits.h"

namespace holix {

/// Row identifier (position of a tuple within its table). Dense, 0-based.
using RowId = uint64_t;

/// The value types the engine supports in columns.
enum class ValueType : uint8_t {
  kInt32,
  kInt64,
  kDouble,
};

/// Human-readable name of a ValueType.
inline const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kInt32:
      return "int32";
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
  }
  return "?";
}

/// Size in bytes of one value of type \p t.
inline size_t ValueTypeSize(ValueType t) {
  switch (t) {
    case ValueType::kInt32:
      return 4;
    case ValueType::kInt64:
      return 8;
    case ValueType::kDouble:
      return 8;
  }
  return 0;
}

/// Maps a C++ type to its ValueType tag.
template <typename T>
struct ValueTypeOf;
template <>
struct ValueTypeOf<int32_t> {
  static constexpr ValueType value = ValueType::kInt32;
};
template <>
struct ValueTypeOf<int64_t> {
  static constexpr ValueType value = ValueType::kInt64;
};
template <>
struct ValueTypeOf<double> {
  static constexpr ValueType value = ValueType::kDouble;
};

// ---------------------------------------------------------------------------
// KeyScalar: a dynamically typed key crossing an untyped boundary
// ---------------------------------------------------------------------------

/// One key value whose static type is unknown at the call site — facade
/// entry points and wire frames carry these. Two carrier kinds cover every
/// column type: int64 (covers int32/int64 exactly) and double. The typed
/// executors clamp a KeyScalar bound into the column's domain without a
/// lossy detour: an int64 carrier against a double column converts through
/// the exact "smallest double >= v" bound, not through a rounding cast.
struct KeyScalar {
  enum class Kind : uint8_t { kI64, kF64 };

  Kind kind = Kind::kI64;
  int64_t i = 0;
  double d = 0.0;

  constexpr KeyScalar() = default;
  constexpr KeyScalar(int64_t v) : kind(Kind::kI64), i(v) {}  // NOLINT
  constexpr KeyScalar(int v) : kind(Kind::kI64), i(v) {}      // NOLINT
  constexpr KeyScalar(double v) : kind(Kind::kF64), d(v) {}   // NOLINT

  /// Carrier-and-payload equality (f64 payloads compare bit-exact, so a
  /// NaN scalar equals itself — wire roundtrip tests rely on this).
  bool operator==(const KeyScalar& o) const {
    if (kind != o.kind) return false;
    if (kind == Kind::kI64) return i == o.i;
    return std::bit_cast<uint64_t>(d) == std::bit_cast<uint64_t>(o.d);
  }

  static constexpr KeyScalar I64(int64_t v) {
    KeyScalar s;
    s.kind = Kind::kI64;
    s.i = v;
    return s;
  }
  static constexpr KeyScalar F64(double v) {
    KeyScalar s;
    s.kind = Kind::kF64;
    s.d = v;
    return s;
  }

  constexpr bool is_f64() const { return kind == Kind::kF64; }

  /// Value as a double (int64 carriers beyond 2^53 round to nearest).
  constexpr double AsF64() const {
    return is_f64() ? d : static_cast<double>(i);
  }

  /// Value as an int64: rounds a double carrier to the nearest integer and
  /// saturates at the int64 range; the NaN key maps to 0. This is the
  /// documented behaviour of the integer facade over double columns.
  constexpr int64_t AsI64Saturating() const {
    if (!is_f64()) return i;
    if (d != d) return 0;
    // 2^63 is exactly representable; anything at or above it saturates.
    if (d >= 9223372036854775808.0) {
      return std::numeric_limits<int64_t>::max();
    }
    if (d <= -9223372036854775808.0) {
      return std::numeric_limits<int64_t>::min();
    }
    const double r = d < 0 ? d - 0.5 : d + 0.5;  // round half away from zero
    if (r >= 9223372036854775808.0) {
      return std::numeric_limits<int64_t>::max();
    }
    if (r <= -9223372036854775808.0) {
      return std::numeric_limits<int64_t>::min();
    }
    return static_cast<int64_t>(r);
  }
};

// ---------------------------------------------------------------------------
// Type dispatch
// ---------------------------------------------------------------------------

/// Carries a column element type through a generic lambda:
/// `[](auto tag) { using T = typename decltype(tag)::type; ... }`.
template <typename T>
struct TypeTag {
  using type = T;
};

/// Invokes `fn(TypeTag<T>{})` for the indexable (cracker-capable) element
/// type matching \p t. All supported value types are indexable: integers
/// order natively, doubles through the KeyTraits<double> total order.
/// Throws std::logic_error for a tag with no runtime (future-proofing).
template <typename Fn>
decltype(auto) DispatchIndexableType(ValueType t, Fn&& fn) {
  switch (t) {
    case ValueType::kInt32:
      return fn(TypeTag<int32_t>{});
    case ValueType::kInt64:
      return fn(TypeTag<int64_t>{});
    case ValueType::kDouble:
      return fn(TypeTag<double>{});
  }
  throw std::logic_error(std::string("no indexable runtime for type ") +
                         ValueTypeName(t));
}

}  // namespace holix
