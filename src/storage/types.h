/// \file types.h
/// \brief Fundamental value and position types of the column-store.

#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace holix {

/// Row identifier (position of a tuple within its table). Dense, 0-based.
using RowId = uint64_t;

/// The value types the engine supports in columns.
enum class ValueType : uint8_t {
  kInt32,
  kInt64,
  kDouble,
};

/// Human-readable name of a ValueType.
inline const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kInt32:
      return "int32";
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
  }
  return "?";
}

/// Size in bytes of one value of type \p t.
inline size_t ValueTypeSize(ValueType t) {
  switch (t) {
    case ValueType::kInt32:
      return 4;
    case ValueType::kInt64:
      return 8;
    case ValueType::kDouble:
      return 8;
  }
  return 0;
}

/// Maps a C++ type to its ValueType tag.
template <typename T>
struct ValueTypeOf;
template <>
struct ValueTypeOf<int32_t> {
  static constexpr ValueType value = ValueType::kInt32;
};
template <>
struct ValueTypeOf<int64_t> {
  static constexpr ValueType value = ValueType::kInt64;
};
template <>
struct ValueTypeOf<double> {
  static constexpr ValueType value = ValueType::kDouble;
};

/// Carries a column element type through a generic lambda:
/// `[](auto tag) { using T = typename decltype(tag)::type; ... }`.
template <typename T>
struct TypeTag {
  using type = T;
};

/// Invokes `fn(TypeTag<T>{})` for the indexable (cracker-capable) element
/// type matching \p t. Keys must order totally and partition exactly, so the
/// engine cracks integer attributes; kDouble columns are storage-only until
/// a comparator-safe kernel lands. Throws std::logic_error for those.
template <typename Fn>
decltype(auto) DispatchIndexableType(ValueType t, Fn&& fn) {
  switch (t) {
    case ValueType::kInt32:
      return fn(TypeTag<int32_t>{});
    case ValueType::kInt64:
      return fn(TypeTag<int64_t>{});
    case ValueType::kDouble:
      break;
  }
  throw std::logic_error(std::string("no indexable runtime for type ") +
                         ValueTypeName(t));
}

}  // namespace holix
