#include "tpch/tpch_data.h"

#include <algorithm>

namespace holix {

TpchData TpchData::Generate(double scale_factor, uint64_t seed) {
  Rng rng(seed);
  TpchData d;
  const size_t num_orders =
      std::max<size_t>(1, static_cast<size_t>(1'500'000 * scale_factor));

  d.o_orderdate.reserve(num_orders);
  d.o_orderpriority.reserve(num_orders);
  // Orders are generated in (roughly) orderdate order, matching dbgen's
  // property that LINEITEM arrives clustered by date — the effect §5.6
  // notes when pre-sorting hurts the Q12 join.
  for (size_t o = 0; o < num_orders; ++o) {
    const int64_t base = static_cast<int64_t>(
        (static_cast<double>(o) / num_orders) * (kTpchDateMax - 151));
    const int64_t jitter = static_cast<int64_t>(rng.Below(61)) - 30;
    d.o_orderdate.push_back(std::clamp<int64_t>(base + jitter, 0,
                                                kTpchDateMax - 151));
    d.o_orderpriority.push_back(static_cast<int64_t>(rng.Below(5)));
  }

  const size_t lineitem_estimate = num_orders * 4;
  auto reserve_all = [&](size_t n) {
    d.l_orderkey.reserve(n);
    d.l_quantity.reserve(n);
    d.l_extendedprice.reserve(n);
    d.l_discount.reserve(n);
    d.l_tax.reserve(n);
    d.l_returnflag.reserve(n);
    d.l_linestatus.reserve(n);
    d.l_shipdate.reserve(n);
    d.l_commitdate.reserve(n);
    d.l_receiptdate.reserve(n);
    d.l_shipmode.reserve(n);
  };
  reserve_all(lineitem_estimate);

  for (size_t o = 0; o < num_orders; ++o) {
    const int64_t orderdate = d.o_orderdate[o];
    const size_t lines = 1 + rng.Below(7);
    for (size_t l = 0; l < lines; ++l) {
      const int64_t shipdate = orderdate + 1 + rng.Below(121);
      const int64_t commitdate = orderdate + 30 + rng.Below(61);
      const int64_t receiptdate = shipdate + 1 + rng.Below(30);
      const int64_t quantity = 1 + rng.Below(50);
      // extendedprice = quantity * partprice; partprice in [900, 105000).
      // Stored as real double dollars: the cent amount is integral, so
      // every value is a cent-granular double (k / 100.0), deterministic
      // across executors.
      const int64_t partprice = 90'000 + rng.Below(10'411'000);
      const int64_t price_cents = quantity * (partprice / 100);
      d.l_orderkey.push_back(static_cast<int64_t>(o + 1));
      d.l_quantity.push_back(quantity);
      d.l_extendedprice.push_back(static_cast<double>(price_cents) / 100.0);
      // Discount as a real fraction 0.00..0.10 in whole-percent steps.
      d.l_discount.push_back(static_cast<double>(rng.Below(11)) / 100.0);
      d.l_tax.push_back(static_cast<int64_t>(rng.Below(9)));
      // Returnflag: shipped long ago -> returned/accepted split; recent ->
      // none (dbgen keys this off the receiptdate vs. a cutoff date).
      if (receiptdate <= 1702) {  // 1995-06-17
        d.l_returnflag.push_back(rng.Below(2) == 0 ? 0 : 2);  // A or R
      } else {
        d.l_returnflag.push_back(1);  // N
      }
      d.l_linestatus.push_back(shipdate > 1702 ? 0 : 1);  // O or F
      d.l_shipdate.push_back(std::min<int64_t>(shipdate, kTpchDateMax));
      d.l_commitdate.push_back(std::min<int64_t>(commitdate, kTpchDateMax));
      d.l_receiptdate.push_back(std::min<int64_t>(receiptdate, kTpchDateMax));
      d.l_shipmode.push_back(static_cast<int64_t>(rng.Below(kTpchNumShipModes)));
    }
  }
  return d;
}

}  // namespace holix
