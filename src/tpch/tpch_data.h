/// \file tpch_data.h
/// \brief In-process TPC-H data generation for the §5.6 experiments.
///
/// The paper runs TPC-H SF-10 Queries 1, 6 and 12 against MonetDB. We
/// generate LINEITEM and ORDERS with the TPC-H value domains that those
/// queries touch (dates as days since 1992-01-01, prices as real double
/// dollars, discounts as real double fractions — matching the benchmark's
/// DECIMAL columns — taxes in integer percent), so the three queries
/// exercise the same selection/aggregation/join code paths. dbgen text
/// loading is replaced by direct in-memory generation — a documented
/// substitution (DESIGN.md).

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace holix {

/// Days between 1992-01-01 and 1998-12-31 (the TPC-H date range).
inline constexpr int64_t kTpchDateMax = 2557;

/// TPC-H shipmodes (REG AIR, AIR, RAIL, SHIP, TRUCK, MAIL, FOB).
inline constexpr int64_t kTpchNumShipModes = 7;

/// Generated TPC-H tables, decomposed into dense typed columns (int64
/// keys/dates/flags, double prices and discounts).
struct TpchData {
  // --- LINEITEM ---
  std::vector<int64_t> l_orderkey;       ///< 1-based key into ORDERS.
  std::vector<int64_t> l_quantity;       ///< 1..50.
  std::vector<double> l_extendedprice;   ///< dollars (cent-granular).
  std::vector<double> l_discount;        ///< fraction, 0.00..0.10.
  std::vector<int64_t> l_tax;            ///< percent, 0..8.
  std::vector<int64_t> l_returnflag;     ///< 0=A, 1=N, 2=R.
  std::vector<int64_t> l_linestatus;     ///< 0=O, 1=F.
  std::vector<int64_t> l_shipdate;       ///< days since 1992-01-01.
  std::vector<int64_t> l_commitdate;     ///< days since 1992-01-01.
  std::vector<int64_t> l_receiptdate;    ///< days since 1992-01-01.
  std::vector<int64_t> l_shipmode;       ///< 0..6.

  // --- ORDERS (indexed by orderkey - 1) ---
  std::vector<int64_t> o_orderdate;      ///< days since 1992-01-01.
  std::vector<int64_t> o_orderpriority;  ///< 0=1-URGENT .. 4=5-LOW.

  /// Number of LINEITEM rows.
  size_t NumLineitems() const { return l_orderkey.size(); }
  /// Number of ORDERS rows.
  size_t NumOrders() const { return o_orderdate.size(); }

  /// Generates tables at \p scale_factor (SF 1 = 1.5M orders / ~6M
  /// lineitems; fractional SFs scale linearly).
  static TpchData Generate(double scale_factor, uint64_t seed = 19920101);
};

}  // namespace holix
