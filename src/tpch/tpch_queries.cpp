#include "tpch/tpch_queries.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace holix {

namespace {

/// Group slot for Q1: returnflag in {0,1,2}, linestatus in {0,1}.
inline size_t Q1Group(int64_t returnflag, int64_t linestatus) {
  return static_cast<size_t>(returnflag * 2 + linestatus);
}

inline void Q1Accumulate(Q1Result& r, int64_t qty, double price, double disc,
                         int64_t tax, int64_t flag, int64_t status) {
  const size_t g = Q1Group(flag, status);
  const double disc_price = price * (1.0 - disc);
  r.sum_qty[g] += qty;
  r.sum_base_price[g] += price;
  r.sum_disc_price[g] += disc_price;
  r.sum_charge[g] += disc_price * (1.0 + static_cast<double>(tax) / 100.0);
  r.count[g] += 1;
}

inline bool NearOrEqual(double a, double b, double rel) {
  return std::abs(a - b) <= rel * std::max({1.0, std::abs(a), std::abs(b)});
}

}  // namespace

bool ApproxEqual(double a, double b, double rel) {
  return NearOrEqual(a, b, rel);
}

bool ApproxEqual(const Q1Result& a, const Q1Result& b, double rel) {
  for (size_t g = 0; g < Q1Result::kGroups; ++g) {
    if (a.sum_qty[g] != b.sum_qty[g] || a.count[g] != b.count[g]) {
      return false;
    }
    if (!NearOrEqual(a.sum_base_price[g], b.sum_base_price[g], rel) ||
        !NearOrEqual(a.sum_disc_price[g], b.sum_disc_price[g], rel) ||
        !NearOrEqual(a.sum_charge[g], b.sum_charge[g], rel)) {
      return false;
    }
  }
  return true;
}

bool ApproxEqual(const Q6Result& a, const Q6Result& b, double rel) {
  return NearOrEqual(a.revenue, b.revenue, rel);
}

std::vector<int64_t> PayloadLane(const std::vector<double>& v) {
  std::vector<int64_t> lane(v.size());
  for (size_t i = 0; i < v.size(); ++i) lane[i] = PayloadLaneFromDouble(v[i]);
  return lane;
}

Q1Params RandomQ1Params(Rng& rng) {
  // qgen: DELTA in [60, 120] days before the end of the date range.
  Q1Params p;
  p.ship_cutoff = kTpchDateMax - (60 + static_cast<int64_t>(rng.Below(61)));
  return p;
}

Q6Params RandomQ6Params(Rng& rng) {
  Q6Params p;
  p.date_lo = static_cast<int64_t>(rng.Below(kTpchDateMax - 400));
  // Both bounds derive from integer percents exactly like the data values
  // (k / 100.0), so the inclusive double comparisons are exact.
  const int64_t lo_pct = 1 + static_cast<int64_t>(rng.Below(8));
  p.discount_lo = static_cast<double>(lo_pct) / 100.0;
  p.discount_hi = static_cast<double>(lo_pct + 2) / 100.0;
  p.max_quantity = 24 + static_cast<int64_t>(rng.Below(2));
  return p;
}

Q12Params RandomQ12Params(Rng& rng) {
  Q12Params p;
  p.date_lo = static_cast<int64_t>(rng.Below(kTpchDateMax - 400));
  p.mode1 = static_cast<int64_t>(rng.Below(kTpchNumShipModes));
  p.mode2 = static_cast<int64_t>(rng.Below(kTpchNumShipModes));
  while (p.mode2 == p.mode1) {
    p.mode2 = static_cast<int64_t>(rng.Below(kTpchNumShipModes));
  }
  return p;
}

// ---------------------------------------------------------------------
// Scan executor
// ---------------------------------------------------------------------

Q1Result TpchScanExecutor::Q1(const Q1Params& p) const {
  Q1Result r;
  const size_t n = d_.NumLineitems();
  for (size_t i = 0; i < n; ++i) {
    if (d_.l_shipdate[i] <= p.ship_cutoff) {
      Q1Accumulate(r, d_.l_quantity[i], d_.l_extendedprice[i],
                   d_.l_discount[i], d_.l_tax[i], d_.l_returnflag[i],
                   d_.l_linestatus[i]);
    }
  }
  return r;
}

Q6Result TpchScanExecutor::Q6(const Q6Params& p) const {
  Q6Result r;
  const size_t n = d_.NumLineitems();
  const int64_t date_hi = p.date_lo + 365;
  for (size_t i = 0; i < n; ++i) {
    if (d_.l_shipdate[i] >= p.date_lo && d_.l_shipdate[i] < date_hi &&
        d_.l_discount[i] >= p.discount_lo &&
        d_.l_discount[i] <= p.discount_hi &&
        d_.l_quantity[i] < p.max_quantity) {
      r.revenue += d_.l_extendedprice[i] * d_.l_discount[i];
    }
  }
  return r;
}

Q12Result TpchScanExecutor::Q12(const Q12Params& p) const {
  Q12Result r;
  const size_t n = d_.NumLineitems();
  const int64_t date_hi = p.date_lo + 365;
  for (size_t i = 0; i < n; ++i) {
    const int64_t mode = d_.l_shipmode[i];
    if ((mode != p.mode1 && mode != p.mode2) ||
        d_.l_receiptdate[i] < p.date_lo || d_.l_receiptdate[i] >= date_hi ||
        d_.l_commitdate[i] >= d_.l_receiptdate[i] ||
        d_.l_shipdate[i] >= d_.l_commitdate[i]) {
      continue;
    }
    const size_t slot = (mode == p.mode1) ? 0 : 1;
    const int64_t prio = d_.o_orderpriority[d_.l_orderkey[i] - 1];
    if (prio <= 1) {  // 1-URGENT or 2-HIGH
      r.high_line_count[slot] += 1;
    } else {
      r.low_line_count[slot] += 1;
    }
  }
  return r;
}

// ---------------------------------------------------------------------
// Presorted executor
// ---------------------------------------------------------------------

TpchPresortedExecutor::TpchPresortedExecutor(const TpchData& data)
    : d_(data) {
  auto build = [&](const std::vector<int64_t>& key, Projection& out) {
    const size_t n = key.size();
    out.perm.resize(n);
    std::iota(out.perm.begin(), out.perm.end(), 0u);
    std::stable_sort(out.perm.begin(), out.perm.end(),
                     [&](uint32_t a, uint32_t b) { return key[a] < key[b]; });
    out.sortkey.resize(n);
    for (size_t i = 0; i < n; ++i) out.sortkey[i] = key[out.perm[i]];
  };
  build(d_.l_shipdate, by_shipdate_);
  build(d_.l_receiptdate, by_receiptdate_);
}

Q1Result TpchPresortedExecutor::Q1(const Q1Params& p) const {
  Q1Result r;
  const auto& proj = by_shipdate_;
  const auto end = std::upper_bound(proj.sortkey.begin(), proj.sortkey.end(),
                                    p.ship_cutoff) -
                   proj.sortkey.begin();
  for (int64_t i = 0; i < end; ++i) {
    const uint32_t row = proj.perm[i];
    Q1Accumulate(r, d_.l_quantity[row], d_.l_extendedprice[row],
                 d_.l_discount[row], d_.l_tax[row], d_.l_returnflag[row],
                 d_.l_linestatus[row]);
  }
  return r;
}

Q6Result TpchPresortedExecutor::Q6(const Q6Params& p) const {
  Q6Result r;
  const auto& proj = by_shipdate_;
  const int64_t date_hi = p.date_lo + 365;
  const auto lo = std::lower_bound(proj.sortkey.begin(), proj.sortkey.end(),
                                   p.date_lo) -
                  proj.sortkey.begin();
  const auto hi = std::lower_bound(proj.sortkey.begin(), proj.sortkey.end(),
                                   date_hi) -
                  proj.sortkey.begin();
  for (int64_t i = lo; i < hi; ++i) {
    const uint32_t row = proj.perm[i];
    if (d_.l_discount[row] >= p.discount_lo &&
        d_.l_discount[row] <= p.discount_hi &&
        d_.l_quantity[row] < p.max_quantity) {
      r.revenue += d_.l_extendedprice[row] * d_.l_discount[row];
    }
  }
  return r;
}

Q12Result TpchPresortedExecutor::Q12(const Q12Params& p) const {
  Q12Result r;
  const auto& proj = by_receiptdate_;
  const int64_t date_hi = p.date_lo + 365;
  const auto lo = std::lower_bound(proj.sortkey.begin(), proj.sortkey.end(),
                                   p.date_lo) -
                  proj.sortkey.begin();
  const auto hi = std::lower_bound(proj.sortkey.begin(), proj.sortkey.end(),
                                   date_hi) -
                  proj.sortkey.begin();
  for (int64_t i = lo; i < hi; ++i) {
    const uint32_t row = proj.perm[i];
    const int64_t mode = d_.l_shipmode[row];
    if ((mode != p.mode1 && mode != p.mode2) ||
        d_.l_commitdate[row] >= d_.l_receiptdate[row] ||
        d_.l_shipdate[row] >= d_.l_commitdate[row]) {
      continue;
    }
    const size_t slot = (mode == p.mode1) ? 0 : 1;
    const int64_t prio = d_.o_orderpriority[d_.l_orderkey[row] - 1];
    if (prio <= 1) {
      r.high_line_count[slot] += 1;
    } else {
      r.low_line_count[slot] += 1;
    }
  }
  return r;
}

// ---------------------------------------------------------------------
// Cracked executor
// ---------------------------------------------------------------------

TpchCrackedExecutor::TpchCrackedExecutor(const TpchData& data) : d_(data) {
  by_shipdate_ = std::make_shared<CrackerColumn<int64_t>>(
      "lineitem.l_shipdate", d_.l_shipdate);
  by_shipdate_->AttachPayload(d_.l_quantity);
  // Double columns ride in the opaque 64-bit payload lanes bit-cast.
  by_shipdate_->AttachPayload(PayloadLane(d_.l_extendedprice));
  by_shipdate_->AttachPayload(PayloadLane(d_.l_discount));
  by_shipdate_->AttachPayload(d_.l_tax);
  by_shipdate_->AttachPayload(d_.l_returnflag);
  by_shipdate_->AttachPayload(d_.l_linestatus);

  by_receiptdate_ = std::make_shared<CrackerColumn<int64_t>>(
      "lineitem.l_receiptdate", d_.l_receiptdate);
  by_receiptdate_->AttachPayload(d_.l_shipmode);
  by_receiptdate_->AttachPayload(d_.l_commitdate);
  by_receiptdate_->AttachPayload(d_.l_shipdate);
  by_receiptdate_->AttachPayload(d_.l_orderkey);
}

Q1Result TpchCrackedExecutor::Q1(const Q1Params& p) {
  Q1Result r;
  auto& col = *by_shipdate_;
  const PositionRange range =
      col.SelectRange(std::numeric_limits<int64_t>::min(), p.ship_cutoff + 1);
  size_t i = range.begin;
  col.ScanRange(range, [&](int64_t, RowId) {
    Q1Accumulate(r, col.PayloadAtUnsafe(kQty, i),
                 DoubleFromPayloadLane(col.PayloadAtUnsafe(kPrice, i)),
                 DoubleFromPayloadLane(col.PayloadAtUnsafe(kDisc, i)),
                 col.PayloadAtUnsafe(kTax, i),
                 col.PayloadAtUnsafe(kRetFlag, i),
                 col.PayloadAtUnsafe(kLineStatus, i));
    ++i;
  });
  return r;
}

Q6Result TpchCrackedExecutor::Q6(const Q6Params& p) {
  Q6Result r;
  auto& col = *by_shipdate_;
  const PositionRange range = col.SelectRange(p.date_lo, p.date_lo + 365);
  size_t i = range.begin;
  col.ScanRange(range, [&](int64_t, RowId) {
    const double disc = DoubleFromPayloadLane(col.PayloadAtUnsafe(kDisc, i));
    if (disc >= p.discount_lo && disc <= p.discount_hi &&
        col.PayloadAtUnsafe(kQty, i) < p.max_quantity) {
      r.revenue += DoubleFromPayloadLane(col.PayloadAtUnsafe(kPrice, i)) * disc;
    }
    ++i;
  });
  return r;
}

Q12Result TpchCrackedExecutor::Q12(const Q12Params& p) {
  Q12Result r;
  auto& col = *by_receiptdate_;
  const PositionRange range = col.SelectRange(p.date_lo, p.date_lo + 365);
  size_t i = range.begin;
  col.ScanRange(range, [&](int64_t receiptdate, RowId) {
    const int64_t mode = col.PayloadAtUnsafe(kMode, i);
    const int64_t commit = col.PayloadAtUnsafe(kCommit, i);
    const int64_t ship = col.PayloadAtUnsafe(kShip, i);
    if ((mode == p.mode1 || mode == p.mode2) && commit < receiptdate &&
        ship < commit) {
      const size_t slot = (mode == p.mode1) ? 0 : 1;
      const int64_t prio =
          d_.o_orderpriority[col.PayloadAtUnsafe(kOrderKey, i) - 1];
      if (prio <= 1) {
        r.high_line_count[slot] += 1;
      } else {
        r.low_line_count[slot] += 1;
      }
    }
    ++i;
  });
  return r;
}

std::shared_ptr<AdaptiveIndex> TpchCrackedExecutor::ShipdateIndex() {
  return std::make_shared<CrackerAdaptiveIndex<int64_t>>(by_shipdate_);
}

std::shared_ptr<AdaptiveIndex> TpchCrackedExecutor::ReceiptdateIndex() {
  return std::make_shared<CrackerAdaptiveIndex<int64_t>>(by_receiptdate_);
}

}  // namespace holix
