/// \file tpch_queries.h
/// \brief TPC-H Q1 / Q6 / Q12 executors over the four systems of Fig. 14:
/// plain scans ("MonetDB"), pre-sorted projections ("Presorted MonetDB"),
/// sideways-style cracking, and cracking + holistic workers.
///
/// Integer aggregates (counts, quantities) are bit-identical across
/// executors; the double money aggregates (base price, disc price, charge,
/// revenue) are order-dependent in their last ulps — each executor visits
/// rows in a different physical order — so cross-executor checks go through
/// ApproxEqual with a relative tolerance instead of operator==.

#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "cracking/cracker_column.h"
#include "holistic/adaptive_index.h"
#include "tpch/tpch_data.h"
#include "util/rng.h"

namespace holix {

/// Q1: aggregates over lineitem where l_shipdate <= cutoff, grouped by
/// (returnflag, linestatus) — 6 populated groups.
struct Q1Params {
  int64_t ship_cutoff = kTpchDateMax - 90;
};

/// Aggregate row of one Q1 group. Money aggregates are doubles (real
/// dollars): disc_price = price * (1 - discount), charge = disc_price *
/// (1 + tax/100).
struct Q1Result {
  static constexpr size_t kGroups = 6;  // returnflag(3) x linestatus(2)
  std::array<int64_t, kGroups> sum_qty{};
  std::array<double, kGroups> sum_base_price{};
  std::array<double, kGroups> sum_disc_price{};
  std::array<double, kGroups> sum_charge{};
  std::array<int64_t, kGroups> count{};

  bool operator==(const Q1Result&) const = default;
};

/// Q6: forecast revenue change. Discount bounds are real fractions in
/// whole-percent steps (e.g. 0.05..0.07), generated from the same integer
/// percents as the data so the inclusive comparisons are exact.
struct Q6Params {
  int64_t date_lo = 365;        ///< shipdate in [date_lo, date_lo + 365).
  double discount_lo = 0.05;    ///< discount between lo and hi inclusive.
  double discount_hi = 0.07;
  int64_t max_quantity = 24;    ///< quantity < max_quantity.
};

/// Q6 revenue in dollars (sum extendedprice * discount).
struct Q6Result {
  double revenue = 0;
  bool operator==(const Q6Result&) const = default;
};

/// Q12: shipping modes and order priority.
struct Q12Params {
  int64_t date_lo = 365;  ///< receiptdate in [date_lo, date_lo + 365).
  int64_t mode1 = 3;      ///< SHIP
  int64_t mode2 = 5;      ///< MAIL
};

/// Q12 counts: high/low line counts per queried shipmode.
struct Q12Result {
  std::array<int64_t, 2> high_line_count{};
  std::array<int64_t, 2> low_line_count{};
  bool operator==(const Q12Result&) const = default;
};

/// Draws randomized parameter variants, mirroring the benchmark's qgen
/// substitutions (30 variations per query type in §5.6).
Q1Params RandomQ1Params(Rng& rng);
Q6Params RandomQ6Params(Rng& rng);
Q12Params RandomQ12Params(Rng& rng);

/// Relative-tolerance comparison for the double money aggregates (the
/// per-executor row visit order perturbs the last ulps of each sum).
bool ApproxEqual(double a, double b, double rel = 1e-9);
bool ApproxEqual(const Q1Result& a, const Q1Result& b, double rel = 1e-9);
bool ApproxEqual(const Q6Result& a, const Q6Result& b, double rel = 1e-9);
/// Q12 aggregates are pure counts; equality stays exact.
inline bool ApproxEqual(const Q12Result& a, const Q12Result& b,
                        double /*rel*/ = 0) {
  return a == b;
}

/// Sideways payload lanes are opaque 64-bit slots; doubles ride in them
/// bit-cast (the lanes are never compared, only moved with their row).
inline int64_t PayloadLaneFromDouble(double v) {
  return std::bit_cast<int64_t>(v);
}
inline double DoubleFromPayloadLane(int64_t lane) {
  return std::bit_cast<double>(lane);
}
std::vector<int64_t> PayloadLane(const std::vector<double>& v);

/// Full-scan executor (plain MonetDB in Fig. 14).
class TpchScanExecutor {
 public:
  explicit TpchScanExecutor(const TpchData& data) : d_(data) {}

  Q1Result Q1(const Q1Params& p) const;
  Q6Result Q6(const Q6Params& p) const;
  Q12Result Q12(const Q12Params& p) const;

 private:
  const TpchData& d_;
};

/// Pre-sorted projection executor ("Presorted MonetDB"): LINEITEM copies
/// sorted on l_shipdate (Q1/Q6) and l_receiptdate (Q12), built at
/// construction — the offline cost Fig. 14 excludes from the curves but
/// reports in the caption.
class TpchPresortedExecutor {
 public:
  explicit TpchPresortedExecutor(const TpchData& data);

  Q1Result Q1(const Q1Params& p) const;
  Q6Result Q6(const Q6Params& p) const;
  Q12Result Q12(const Q12Params& p) const;

 private:
  struct Projection {
    // Column order matches TpchData member names below.
    std::vector<int64_t> sortkey;
    std::vector<uint32_t> perm;  ///< row index into the base table.
  };
  const TpchData& d_;
  Projection by_shipdate_;
  Projection by_receiptdate_;
};

/// Cracking executor (sideways-style): two cracker columns with aligned
/// payloads — on l_shipdate for Q1/Q6 and on l_receiptdate for Q12. With
/// `holistic` = true the caller can register the exposed adapters with a
/// HolisticEngine so workers refine them between queries.
class TpchCrackedExecutor {
 public:
  explicit TpchCrackedExecutor(const TpchData& data);

  Q1Result Q1(const Q1Params& p);
  Q6Result Q6(const Q6Params& p);
  Q12Result Q12(const Q12Params& p);

  /// Adaptive-index adapters for holistic registration.
  std::shared_ptr<AdaptiveIndex> ShipdateIndex();
  std::shared_ptr<AdaptiveIndex> ReceiptdateIndex();

 private:
  // Payload slot order inside each cracker column.
  enum ShipPayload { kQty = 0, kPrice, kDisc, kTax, kRetFlag, kLineStatus };
  enum ReceiptPayload { kMode = 0, kCommit, kShip, kOrderKey };

  const TpchData& d_;
  std::shared_ptr<CrackerColumn<int64_t>> by_shipdate_;
  std::shared_ptr<CrackerColumn<int64_t>> by_receiptdate_;
};

}  // namespace holix
