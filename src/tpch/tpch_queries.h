/// \file tpch_queries.h
/// \brief TPC-H Q1 / Q6 / Q12 executors over the four systems of Fig. 14:
/// plain scans ("MonetDB"), pre-sorted projections ("Presorted MonetDB"),
/// sideways-style cracking, and cracking + holistic workers.
///
/// All executors return bit-identical results (integer arithmetic in
/// cents/percent), which the tests rely on.

#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "cracking/cracker_column.h"
#include "holistic/adaptive_index.h"
#include "tpch/tpch_data.h"
#include "util/rng.h"

namespace holix {

/// Q1: aggregates over lineitem where l_shipdate <= cutoff, grouped by
/// (returnflag, linestatus) — 6 populated groups.
struct Q1Params {
  int64_t ship_cutoff = kTpchDateMax - 90;
};

/// Aggregate row of one Q1 group. Charges use exact integer units:
/// disc_price in cent-percent (x100), charge in cent-percent^2 (x10000).
struct Q1Result {
  static constexpr size_t kGroups = 6;  // returnflag(3) x linestatus(2)
  std::array<int64_t, kGroups> sum_qty{};
  std::array<int64_t, kGroups> sum_base_price{};
  std::array<int64_t, kGroups> sum_disc_price{};
  std::array<int64_t, kGroups> sum_charge{};
  std::array<int64_t, kGroups> count{};

  bool operator==(const Q1Result&) const = default;
};

/// Q6: forecast revenue change.
struct Q6Params {
  int64_t date_lo = 365;      ///< shipdate in [date_lo, date_lo + 365).
  int64_t discount_lo = 5;    ///< discount between lo and hi inclusive.
  int64_t discount_hi = 7;
  int64_t max_quantity = 24;  ///< quantity < max_quantity.
};

/// Q6 revenue in cent-percent units (sum extendedprice * discount).
struct Q6Result {
  int64_t revenue = 0;
  bool operator==(const Q6Result&) const = default;
};

/// Q12: shipping modes and order priority.
struct Q12Params {
  int64_t date_lo = 365;  ///< receiptdate in [date_lo, date_lo + 365).
  int64_t mode1 = 3;      ///< SHIP
  int64_t mode2 = 5;      ///< MAIL
};

/// Q12 counts: high/low line counts per queried shipmode.
struct Q12Result {
  std::array<int64_t, 2> high_line_count{};
  std::array<int64_t, 2> low_line_count{};
  bool operator==(const Q12Result&) const = default;
};

/// Draws randomized parameter variants, mirroring the benchmark's qgen
/// substitutions (30 variations per query type in §5.6).
Q1Params RandomQ1Params(Rng& rng);
Q6Params RandomQ6Params(Rng& rng);
Q12Params RandomQ12Params(Rng& rng);

/// Full-scan executor (plain MonetDB in Fig. 14).
class TpchScanExecutor {
 public:
  explicit TpchScanExecutor(const TpchData& data) : d_(data) {}

  Q1Result Q1(const Q1Params& p) const;
  Q6Result Q6(const Q6Params& p) const;
  Q12Result Q12(const Q12Params& p) const;

 private:
  const TpchData& d_;
};

/// Pre-sorted projection executor ("Presorted MonetDB"): LINEITEM copies
/// sorted on l_shipdate (Q1/Q6) and l_receiptdate (Q12), built at
/// construction — the offline cost Fig. 14 excludes from the curves but
/// reports in the caption.
class TpchPresortedExecutor {
 public:
  explicit TpchPresortedExecutor(const TpchData& data);

  Q1Result Q1(const Q1Params& p) const;
  Q6Result Q6(const Q6Params& p) const;
  Q12Result Q12(const Q12Params& p) const;

 private:
  struct Projection {
    // Column order matches TpchData member names below.
    std::vector<int64_t> sortkey;
    std::vector<uint32_t> perm;  ///< row index into the base table.
  };
  const TpchData& d_;
  Projection by_shipdate_;
  Projection by_receiptdate_;
};

/// Cracking executor (sideways-style): two cracker columns with aligned
/// payloads — on l_shipdate for Q1/Q6 and on l_receiptdate for Q12. With
/// `holistic` = true the caller can register the exposed adapters with a
/// HolisticEngine so workers refine them between queries.
class TpchCrackedExecutor {
 public:
  explicit TpchCrackedExecutor(const TpchData& data);

  Q1Result Q1(const Q1Params& p);
  Q6Result Q6(const Q6Params& p);
  Q12Result Q12(const Q12Params& p);

  /// Adaptive-index adapters for holistic registration.
  std::shared_ptr<AdaptiveIndex> ShipdateIndex();
  std::shared_ptr<AdaptiveIndex> ReceiptdateIndex();

 private:
  // Payload slot order inside each cracker column.
  enum ShipPayload { kQty = 0, kPrice, kDisc, kTax, kRetFlag, kLineStatus };
  enum ReceiptPayload { kMode = 0, kCommit, kShip, kOrderKey };

  const TpchData& d_;
  std::shared_ptr<CrackerColumn<int64_t>> by_shipdate_;
  std::shared_ptr<CrackerColumn<int64_t>> by_receiptdate_;
};

}  // namespace holix
