#include "util/cache_info.h"

#include <atomic>
#include <fstream>
#include <string>

namespace holix {

namespace {

std::atomic<size_t> g_override{0};

size_t DetectL1() {
  // sysfs exposes per-cpu cache indices; index0 or index1 is the L1D.
  for (int index = 0; index < 4; ++index) {
    const std::string base =
        "/sys/devices/system/cpu/cpu0/cache/index" + std::to_string(index);
    std::ifstream level_f(base + "/level");
    std::ifstream type_f(base + "/type");
    int level = 0;
    std::string type;
    if (!(level_f >> level) || !(type_f >> type)) continue;
    if (level != 1 || (type != "Data" && type != "Unified")) continue;
    std::ifstream size_f(base + "/size");
    std::string size_str;
    if (!(size_f >> size_str)) continue;
    size_t multiplier = 1;
    if (!size_str.empty() && (size_str.back() == 'K' || size_str.back() == 'k')) {
      multiplier = 1024;
      size_str.pop_back();
    } else if (!size_str.empty() &&
               (size_str.back() == 'M' || size_str.back() == 'm')) {
      multiplier = 1024 * 1024;
      size_str.pop_back();
    }
    try {
      const size_t value = std::stoull(size_str);
      if (value > 0) return value * multiplier;
    } catch (...) {
      continue;
    }
  }
  return 32 * 1024;  // Conservative default: 32 KiB.
}

}  // namespace

size_t L1DataCacheBytes() {
  const size_t forced = g_override.load(std::memory_order_relaxed);
  if (forced != 0) return forced;
  static const size_t detected = DetectL1();
  return detected;
}

void OverrideL1DataCacheBytes(size_t bytes) {
  g_override.store(bytes, std::memory_order_relaxed);
}

}  // namespace holix
