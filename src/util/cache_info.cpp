#include "util/cache_info.h"

#include <atomic>
#include <fstream>
#include <string>

namespace holix {

namespace {

std::atomic<size_t> g_l1_override{0};
std::atomic<size_t> g_l2_override{0};

/// Reads the size of the first cpu0 cache at \p want_level whose type is
/// Data or Unified; returns 0 when sysfs has no such entry.
size_t DetectCacheLevel(int want_level) {
  // sysfs exposes per-cpu cache indices; the L1D is index0 or index1, the
  // unified L2 usually index2.
  for (int index = 0; index < 8; ++index) {
    const std::string base =
        "/sys/devices/system/cpu/cpu0/cache/index" + std::to_string(index);
    std::ifstream level_f(base + "/level");
    std::ifstream type_f(base + "/type");
    int level = 0;
    std::string type;
    if (!(level_f >> level) || !(type_f >> type)) continue;
    if (level != want_level || (type != "Data" && type != "Unified")) continue;
    std::ifstream size_f(base + "/size");
    std::string size_str;
    if (!(size_f >> size_str)) continue;
    size_t multiplier = 1;
    if (!size_str.empty() && (size_str.back() == 'K' || size_str.back() == 'k')) {
      multiplier = 1024;
      size_str.pop_back();
    } else if (!size_str.empty() &&
               (size_str.back() == 'M' || size_str.back() == 'm')) {
      multiplier = 1024 * 1024;
      size_str.pop_back();
    }
    try {
      const size_t value = std::stoull(size_str);
      if (value > 0) return value * multiplier;
    } catch (...) {
      continue;
    }
  }
  return 0;
}

}  // namespace

size_t L1DataCacheBytes() {
  const size_t forced = g_l1_override.load(std::memory_order_relaxed);
  if (forced != 0) return forced;
  static const size_t detected = [] {
    const size_t bytes = DetectCacheLevel(1);
    return bytes != 0 ? bytes : size_t{32} * 1024;  // Conservative default.
  }();
  return detected;
}

size_t L2CacheBytes() {
  const size_t forced = g_l2_override.load(std::memory_order_relaxed);
  if (forced != 0) return forced;
  static const size_t detected = [] {
    const size_t bytes = DetectCacheLevel(2);
    return bytes != 0 ? bytes : size_t{1} * 1024 * 1024;  // 1 MiB default.
  }();
  return detected;
}

void OverrideL1DataCacheBytes(size_t bytes) {
  g_l1_override.store(bytes, std::memory_order_relaxed);
}

void OverrideL2CacheBytes(size_t bytes) {
  g_l2_override.store(bytes, std::memory_order_relaxed);
}

}  // namespace holix
