/// \file cache_info.h
/// \brief L1/L2 data-cache size discovery.
///
/// Holistic indexing declares an adaptive index *optimal* once the average
/// piece of its cracker column fits in L1 (Equation 1 in the paper), and the
/// morsel-driven parallel crack sizes its work units to roughly one L2 worth
/// of rows. Sizes are read from sysfs on Linux and fall back to 32 KiB (L1)
/// / 1 MiB (L2).

#pragma once

#include <cstddef>

namespace holix {

/// Returns the L1 data cache size in bytes (cached after the first call).
size_t L1DataCacheBytes();

/// Returns the per-core L2 cache size in bytes (cached after the first call).
size_t L2CacheBytes();

/// Returns the number of elements of \p element_size bytes that fit in L1.
inline size_t L1Elements(size_t element_size) {
  return L1DataCacheBytes() / element_size;
}

/// Overrides the detected L1 size (0 restores detection). Used by tests and
/// by benchmarks that scale data down but want to keep the paper's
/// piece-count ratios.
void OverrideL1DataCacheBytes(size_t bytes);

/// Overrides the detected L2 size (0 restores detection).
void OverrideL2CacheBytes(size_t bytes);

}  // namespace holix
