/// \file cache_info.h
/// \brief L1 data-cache size discovery.
///
/// Holistic indexing declares an adaptive index *optimal* once the average
/// piece of its cracker column fits in L1 (Equation 1 in the paper). The
/// size is read from sysfs on Linux and falls back to 32 KiB.

#pragma once

#include <cstddef>

namespace holix {

/// Returns the L1 data cache size in bytes (cached after the first call).
size_t L1DataCacheBytes();

/// Returns the number of elements of \p element_size bytes that fit in L1.
inline size_t L1Elements(size_t element_size) {
  return L1DataCacheBytes() / element_size;
}

/// Overrides the detected L1 size (0 restores detection). Used by tests and
/// by benchmarks that scale data down but want to keep the paper's
/// piece-count ratios.
void OverrideL1DataCacheBytes(size_t bytes);

}  // namespace holix
