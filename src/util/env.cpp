#include "util/env.h"

#include <algorithm>
#include <cstdlib>
#include <string>

namespace holix {

double EnvDouble(const char* name, double def) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return def;
  try {
    return std::stod(raw);
  } catch (...) {
    return def;
  }
}

int64_t EnvInt(const char* name, int64_t def) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return def;
  try {
    return std::stoll(raw);
  } catch (...) {
    return def;
  }
}

size_t ScaledSize(size_t base, size_t min_value) {
  const double scale = EnvDouble("HOLIX_SCALE", 1.0);
  const double scaled = static_cast<double>(base) * scale;
  return std::max(min_value, static_cast<size_t>(scaled));
}

size_t QueryCount(size_t base) {
  const int64_t q = EnvInt("HOLIX_QUERIES", -1);
  return q > 0 ? static_cast<size_t>(q) : base;
}

}  // namespace holix
