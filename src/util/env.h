/// \file env.h
/// \brief Environment-variable knobs shared by benchmarks and examples.
///
/// `HOLIX_SCALE` multiplies column cardinalities (default 1.0) and
/// `HOLIX_QUERIES` overrides workload query counts, so the same binaries
/// can run a quick smoke pass or a paper-scale experiment.

#pragma once

#include <cstddef>
#include <cstdint>

namespace holix {

/// Reads a double-valued environment variable, returning \p def if unset or
/// unparsable.
double EnvDouble(const char* name, double def);

/// Reads an integer environment variable, returning \p def if unset or
/// unparsable.
int64_t EnvInt(const char* name, int64_t def);

/// `base * HOLIX_SCALE`, at least \p min_value.
size_t ScaledSize(size_t base, size_t min_value = 1024);

/// `HOLIX_QUERIES` if set, else \p base.
size_t QueryCount(size_t base);

}  // namespace holix
