/// \file key_traits.h
/// \brief KeyTraits<T>: the total-order contract of an indexable key type.
///
/// Lives in the leaf util layer (it depends on nothing but the standard
/// library) so that util headers like rng.h can use it without inverting
/// the layer DAG; storage/types.h re-exports it alongside the ValueType
/// machinery, which is where most of the engine picks it up.

#pragma once

#include <bit>
#include <cstdint>
#include <limits>
#include <type_traits>

namespace holix {

/// Every layer between storage and the socket orders, partitions and
/// interpolates key values exclusively through KeyTraits<T>, never through
/// raw operators — that is what makes the cracking stack correct for
/// floating-point keys, where `<` is not a total order.
///
/// The contract:
///  * Less/Eq induce a total order with Lowest() and Highest() as the
///    extreme values;
///  * ToRank is an order-preserving injection into uint64 (Less(a, b) iff
///    ToRank(a) < ToRank(b)), FromRank its inverse on the image, so
///    interpolation and "successor" arithmetic are well defined for every
///    key type;
///  * Next(v) is the immediate successor in the total order (precondition:
///    !IsHighest(v)); SelectRange's closed-bound forms are built on it;
///  * Canonical collapses distinct representations that compare equal
///    (identity for integers);
///  * Sum is the accumulator type of SumRange over this key type.
///
/// For `double` the total order is IEEE `<` extended with two decisions the
/// engine pins down (and tests pin): `-0.0` and `+0.0` are the SAME key
/// (Eq true, one rank), and every NaN bit pattern collapses to a single
/// canonical key that sorts ABOVE `+inf` — the SQL-flavored "NaN last"
/// placement. Highest() for double is therefore NaN, and -inf/+inf are
/// ordinary orderable keys.
template <typename T>
struct KeyTraits {
  static_assert(std::is_integral_v<T>,
                "KeyTraits must be specialized for non-integral key types");
  using Sum = int64_t;

  static constexpr T Lowest() { return std::numeric_limits<T>::lowest(); }
  static constexpr T Highest() { return std::numeric_limits<T>::max(); }
  static constexpr bool Less(T a, T b) { return a < b; }
  static constexpr bool Eq(T a, T b) { return a == b; }
  static constexpr T Canonical(T v) { return v; }
  static constexpr bool IsHighest(T v) { return v == Highest(); }

  /// Order-preserving rank: flip the sign bit into offset-binary.
  static constexpr uint64_t ToRank(T v) {
    using U = std::make_unsigned_t<T>;
    constexpr U kFlip = U{1} << (sizeof(T) * 8 - 1);
    return static_cast<uint64_t>(static_cast<U>(static_cast<U>(v) ^ kFlip));
  }
  static constexpr T FromRank(uint64_t r) {
    using U = std::make_unsigned_t<T>;
    constexpr U kFlip = U{1} << (sizeof(T) * 8 - 1);
    return static_cast<T>(static_cast<U>(static_cast<U>(r) ^ kFlip));
  }

  /// Successor in the total order. Precondition: !IsHighest(v).
  static constexpr T Next(T v) { return static_cast<T>(v + 1); }
};

template <>
struct KeyTraits<double> {
  using Sum = double;

  static constexpr uint64_t kSignBit = uint64_t{1} << 63;
  /// Rank of +inf: bit pattern 0x7FF0... with the offset-binary flip.
  static constexpr uint64_t kPosInfRank = 0xFFF0000000000000ULL;
  /// Rank of -inf (the total-order minimum): ~bits(-inf).
  static constexpr uint64_t kNegInfRank = 0x000FFFFFFFFFFFFFULL;
  /// The single rank all NaN payloads collapse to, above +inf.
  static constexpr uint64_t kNaNRank = ~uint64_t{0};

  static constexpr double Lowest() {
    return -std::numeric_limits<double>::infinity();
  }
  /// The total-order maximum is the canonical NaN ("NaN last").
  static constexpr double Highest() {
    return std::numeric_limits<double>::quiet_NaN();
  }

  static constexpr bool Less(double a, double b) {
    // Fast path: IEEE compare decides every non-NaN pair (and makes
    // -0.0 == +0.0). Only when at least one side is NaN does the total
    // order diverge from IEEE: the non-NaN side is the smaller key.
    if (a < b) return true;
    if (a >= b) return false;
    return b != b && a == a;
  }
  static constexpr bool Eq(double a, double b) {
    return a == b || (a != a && b != b);
  }
  /// One representation per key: any NaN becomes the quiet NaN, -0.0
  /// becomes +0.0 (x + 0.0 is the identity for every other value).
  static constexpr double Canonical(double v) {
    return v != v ? std::numeric_limits<double>::quiet_NaN() : v + 0.0;
  }
  static constexpr bool IsHighest(double v) { return v != v; }

  static constexpr uint64_t ToRank(double v) {
    if (v != v) return kNaNRank;
    const uint64_t bits = std::bit_cast<uint64_t>(v + 0.0);
    return (bits & kSignBit) ? ~bits : (bits | kSignBit);
  }
  static constexpr double FromRank(uint64_t r) {
    // The gap between +inf's rank and kNaNRank holds no ordered values;
    // any rank in it maps to the canonical NaN (the order is preserved
    // because all such ranks sit above every ordered key).
    if (r > kPosInfRank) return std::numeric_limits<double>::quiet_NaN();
    if (r < kNegInfRank) return Lowest();  // below the image; defensive
    const uint64_t bits = (r & kSignBit) ? (r ^ kSignBit) : ~r;
    return std::bit_cast<double>(bits);
  }

  /// Successor in the total order; Next(+inf) is the NaN key.
  /// Precondition: !IsHighest(v).
  static constexpr double Next(double v) { return FromRank(ToRank(v) + 1); }
};

}  // namespace holix
