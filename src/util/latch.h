/// \file latch.h
/// \brief Lightweight latches for piece-level concurrency control (§4.2).
///
/// Adaptive/holistic index refinement only rearranges values inside a single
/// piece of a cracker column, so following [16,17] it suffices to guard each
/// piece with a small reader/writer latch. User queries *block* on a piece
/// latch; holistic workers *try* it and pick another pivot on failure
/// (Figure 3 in the paper), which is why TryLockWrite is first-class here.

#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

namespace holix {

/// Reader/writer spin latch. Writers are exclusive; readers are shared.
///
/// The implementation is a single atomic word: kWriteBit marks an active
/// writer, the remaining bits count readers. Spinning is appropriate because
/// critical sections (cracking one piece) last microseconds to a few
/// milliseconds and threads never hold a latch across blocking operations.
class RwSpinLatch {
 public:
  RwSpinLatch() = default;
  RwSpinLatch(const RwSpinLatch&) = delete;
  RwSpinLatch& operator=(const RwSpinLatch&) = delete;

  /// Acquires the latch in shared (read) mode, spinning until available.
  void LockRead() {
    for (int spins = 0;; ++spins) {
      uint32_t cur = word_.load(std::memory_order_relaxed);
      if (!(cur & kWriteBit) &&
          word_.compare_exchange_weak(cur, cur + 1,
                                      std::memory_order_acquire,
                                      std::memory_order_relaxed)) {
        return;
      }
      Backoff(spins);
    }
  }

  /// Releases a shared acquisition.
  void UnlockRead() { word_.fetch_sub(1, std::memory_order_release); }

  /// Acquires the latch in exclusive (write) mode, spinning until available.
  void LockWrite() {
    for (int spins = 0;; ++spins) {
      uint32_t expected = 0;
      if (word_.compare_exchange_weak(expected, kWriteBit,
                                      std::memory_order_acquire,
                                      std::memory_order_relaxed)) {
        return;
      }
      Backoff(spins);
    }
  }

  /// Attempts to acquire exclusive mode without blocking.
  /// \return true on success.
  bool TryLockWrite() {
    uint32_t expected = 0;
    return word_.compare_exchange_strong(expected, kWriteBit,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed);
  }

  /// Releases an exclusive acquisition.
  void UnlockWrite() { word_.store(0, std::memory_order_release); }

  /// True if a writer currently holds the latch (racy; diagnostics only).
  bool IsWriteLocked() const {
    return word_.load(std::memory_order_relaxed) & kWriteBit;
  }

 private:
  static constexpr uint32_t kWriteBit = 0x80000000u;

  static void Backoff(int spins) {
    if (spins < 64) {
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#endif
    } else {
      std::this_thread::yield();
    }
  }

  std::atomic<uint32_t> word_{0};
};

/// RAII shared guard for RwSpinLatch.
class ReadGuard {
 public:
  explicit ReadGuard(RwSpinLatch& latch) : latch_(&latch) {
    latch_->LockRead();
  }
  ~ReadGuard() {
    if (latch_ != nullptr) latch_->UnlockRead();
  }
  ReadGuard(const ReadGuard&) = delete;
  ReadGuard& operator=(const ReadGuard&) = delete;

 private:
  RwSpinLatch* latch_;
};

/// RAII exclusive guard for RwSpinLatch.
class WriteGuard {
 public:
  explicit WriteGuard(RwSpinLatch& latch) : latch_(&latch) {
    latch_->LockWrite();
  }
  ~WriteGuard() {
    if (latch_ != nullptr) latch_->UnlockWrite();
  }
  WriteGuard(const WriteGuard&) = delete;
  WriteGuard& operator=(const WriteGuard&) = delete;

 private:
  RwSpinLatch* latch_;
};

}  // namespace holix
