/// \file parallel_sort.h
/// \brief Multi-threaded merge sort.
///
/// Offline and online indexing (§5.1) sort whole columns with a highly
/// parallel sort; the paper uses the NUMA-aware m-way sort of Balkesen et
/// al. [9]. We implement a chunked parallel merge sort: split into P runs,
/// std::sort each run in parallel, then merge pairs of runs in parallel
/// until one run remains. This preserves the baseline's character (sorting
/// scales with cores) without the NUMA machinery the paper's testbed needed.

#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "util/thread_pool.h"

namespace holix {

/// Sorts [data, data+n) with \p comp using up to pool.size() threads.
template <typename T, typename Compare = std::less<T>>
void ParallelSort(T* data, size_t n, ThreadPool& pool, Compare comp = {}) {
  const size_t threads = pool.size();
  if (n < (1u << 14) || threads <= 1) {
    std::sort(data, data + n, comp);
    return;
  }
  // Round run count down to a power of two so merging forms a clean tree.
  size_t runs = 1;
  while (runs * 2 <= threads) runs *= 2;
  const size_t chunk = (n + runs - 1) / runs;

  std::vector<std::pair<size_t, size_t>> bounds;
  bounds.reserve(runs);
  for (size_t r = 0; r < runs; ++r) {
    const size_t lo = std::min(n, r * chunk);
    const size_t hi = std::min(n, lo + chunk);
    bounds.emplace_back(lo, hi);
  }
  pool.ParallelFor(0, runs, [&](size_t r) {
    std::sort(data + bounds[r].first, data + bounds[r].second, comp);
  });

  // Merge adjacent runs level by level using a scratch buffer.
  std::vector<T> scratch(n);
  T* src = data;
  T* dst = scratch.data();
  size_t width = 1;
  while (width < runs) {
    pool.ParallelFor(0, runs / (2 * width), [&](size_t pair_idx) {
      const size_t first = pair_idx * 2 * width;
      const size_t lo = bounds[first].first;
      const size_t mid = bounds[first + width].first;
      const size_t hi = bounds[std::min(runs - 1, first + 2 * width - 1)].second;
      std::merge(src + lo, src + mid, src + mid, src + hi, dst + lo, comp);
    });
    std::swap(src, dst);
    width *= 2;
  }
  if (src != data) {
    std::copy(src, src + n, data);
  }
}

/// Convenience overload for vectors.
template <typename T, typename Compare = std::less<T>>
void ParallelSort(std::vector<T>& v, ThreadPool& pool, Compare comp = {}) {
  ParallelSort(v.data(), v.size(), pool, comp);
}

}  // namespace holix
