/// \file rng.h
/// \brief Deterministic pseudo-random number generation for holix.
///
/// All randomized components of the library (workload generators, random
/// pivot selection in holistic workers, strategy W4) draw from this RNG so
/// that experiments are reproducible given a seed.

#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <type_traits>

#include "util/key_traits.h"

namespace holix {

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 64-bit state PRNG.
/// Deterministic across platforms; not cryptographically secure.
class Rng {
 public:
  /// Seeds the generator with SplitMix64 expansion of \p seed.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  /// Re-seeds the generator.
  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (auto& s : state_) {
      // SplitMix64 step: guarantees non-zero, well-mixed state.
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). \p bound must be > 0.
  uint64_t Below(uint64_t bound) {
    // Lemire's multiply-shift rejection method: unbiased.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
      uint64_t t = (0 - bound) % bound;
      while (l < t) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    Below(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// UniformRandomBitGenerator interface for <algorithm> interop.
  using result_type = uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }
  result_type operator()() { return Next(); }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

/// Uniform pivot in (lo, hi] drawn in the element type's own arithmetic.
///
/// Integer keys: the span is computed in the unsigned companion type, so
/// domains as wide as the whole of T (e.g. [INT64_MIN, INT64_MAX]) never
/// overflow the way a detour through int64_t would.
///
/// Floating-point keys: a value-space convex combination with a draw u in
/// (0, 1] — pivots are uniform over the value interval, NOT over the set
/// of representable doubles (rank-space sampling would put half of all
/// pivots below ~1e-154 on a [0, 1) domain and starve refinement). The
/// open low end of u plus an explicit total-order range check remove any
/// bias at the domain edges: the result can neither collapse onto lo (a
/// degenerate pivot) nor overshoot hi through rounding. Domains with
/// non-finite endpoints (±inf, the NaN key) fall back to exact rank-space
/// sampling, which is defined for every pair of keys.
///
/// Requires KeyTraits<T>::Less(lo, hi).
template <typename T>
T SamplePivotBetween(Rng& rng, T lo, T hi) {
  if constexpr (std::is_floating_point_v<T>) {
    if (std::isfinite(lo) && std::isfinite(hi)) {
      const double u =
          static_cast<double>((rng.Next() >> 11) + 1) * 0x1.0p-53;
      const T p = static_cast<T>(lo * (1.0 - u) + hi * u);
      if (std::isfinite(p) && KeyTraits<T>::Less(lo, p) &&
          !KeyTraits<T>::Less(hi, p)) {
        return p;
      }
      // Rounding landed outside (lo, hi] (adjacent representables, huge
      // magnitudes): fall through to the exact rank-space draw.
    }
    const uint64_t rlo = KeyTraits<T>::ToRank(lo);
    const uint64_t rhi = KeyTraits<T>::ToRank(hi);
    const uint64_t offset = rng.Below(rhi - rlo) + 1;  // in [1, span]
    return KeyTraits<T>::FromRank(rlo + offset);
  } else {
    static_assert(std::is_integral_v<T>,
                  "pivot sampling needs an integral or floating-point key");
    using U = std::make_unsigned_t<T>;
    const U span = static_cast<U>(hi) - static_cast<U>(lo);  // >= 1
    const U offset =
        static_cast<U>(rng.Below(static_cast<uint64_t>(span))) + U{1};
    return static_cast<T>(static_cast<U>(lo) + offset);
  }
}

}  // namespace holix
