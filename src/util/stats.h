/// \file stats.h
/// \brief Summary statistics used when reporting experiment results.

#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace holix {

/// Accumulates samples and reports mean / percentiles / extrema.
class SampleStats {
 public:
  /// Adds one observation.
  void Add(double v) { samples_.push_back(v); }

  /// Number of observations.
  size_t count() const { return samples_.size(); }

  /// Sum of all observations (0 when empty).
  double Sum() const {
    double s = 0;
    for (double v : samples_) s += v;
    return s;
  }

  /// Arithmetic mean (0 when empty).
  double Mean() const { return samples_.empty() ? 0.0 : Sum() / count(); }

  /// Population standard deviation (0 when fewer than 2 samples).
  double Stddev() const {
    if (samples_.size() < 2) return 0.0;
    const double m = Mean();
    double acc = 0;
    for (double v : samples_) acc += (v - m) * (v - m);
    return std::sqrt(acc / samples_.size());
  }

  /// Smallest observation (0 when empty).
  double Min() const {
    return samples_.empty()
               ? 0.0
               : *std::min_element(samples_.begin(), samples_.end());
  }

  /// Largest observation (0 when empty).
  double Max() const {
    return samples_.empty()
               ? 0.0
               : *std::max_element(samples_.begin(), samples_.end());
  }

  /// p-th percentile with linear interpolation, p in [0,100].
  double Percentile(double p) const {
    if (samples_.empty()) return 0.0;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const double rank = p / 100.0 * (sorted.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - lo;
    return sorted[lo] * (1 - frac) + sorted[hi] * frac;
  }

  /// Access to the raw samples in insertion order.
  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

}  // namespace holix
