/// \file thread_pool.h
/// \brief Fixed-size thread pool used for parallel query operators,
/// parallel cracking, parallel sorting and holistic worker teams.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace holix {

/// A minimal fixed-size thread pool.
///
/// Tasks are `std::function<void()>`; Submit never blocks. The pool supports
/// two idioms used throughout holix:
///  * fire-and-forget Submit + WaitIdle (holistic workers),
///  * ParallelFor over an index range with static partitioning (operators).
class ThreadPool {
 public:
  /// Starts \p num_threads workers (at least 1).
  explicit ThreadPool(size_t num_threads) {
    if (num_threads == 0) num_threads = 1;
    threads_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      threads_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      std::unique_lock<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  size_t size() const { return threads_.size(); }

  /// Enqueues \p task for asynchronous execution.
  void Submit(std::function<void()> task) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      queue_.push_back(std::move(task));
      ++pending_;
    }
    cv_.notify_one();
  }

  /// Blocks until every submitted task has finished executing.
  void WaitIdle() {
    std::unique_lock<std::mutex> lk(mu_);
    idle_cv_.wait(lk, [this] { return pending_ == 0; });
  }

  /// Runs \p body(i) for every i in [begin, end) using static partitioning
  /// across the pool, and blocks until all iterations are done. The calling
  /// thread executes one shard itself. Safe to call from multiple client
  /// threads concurrently: completion is tracked per call, not pool-wide.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& body) {
    const size_t n = end - begin;
    if (n == 0) return;
    const size_t shards = std::min(n, threads_.size() + 1);
    if (shards <= 1) {
      for (size_t i = begin; i < end; ++i) body(i);
      return;
    }
    const size_t chunk = (n + shards - 1) / shards;
    struct Completion {
      std::mutex mu;
      std::condition_variable cv;
      size_t remaining;
    };
    auto done = std::make_shared<Completion>();
    size_t submitted = 0;
    for (size_t s = 1; s < shards; ++s) {
      const size_t lo = begin + s * chunk;
      const size_t hi = std::min(end, lo + chunk);
      if (lo >= hi) continue;
      ++submitted;
    }
    done->remaining = submitted;
    for (size_t s = 1; s < shards; ++s) {
      const size_t lo = begin + s * chunk;
      const size_t hi = std::min(end, lo + chunk);
      if (lo >= hi) continue;
      Submit([lo, hi, &body, done] {
        for (size_t i = lo; i < hi; ++i) body(i);
        std::unique_lock<std::mutex> lk(done->mu);
        if (--done->remaining == 0) done->cv.notify_all();
      });
    }
    // The caller runs shard 0 itself to avoid idling.
    const size_t hi0 = std::min(end, begin + chunk);
    for (size_t i = begin; i < hi0; ++i) body(i);
    std::unique_lock<std::mutex> lk(done->mu);
    done->cv.wait(lk, [&] { return done->remaining == 0; });
  }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
        if (stop_ && queue_.empty()) return;
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
      {
        std::unique_lock<std::mutex> lk(mu_);
        if (--pending_ == 0) idle_cv_.notify_all();
      }
    }
  }

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  size_t pending_ = 0;
  bool stop_ = false;
};

}  // namespace holix
