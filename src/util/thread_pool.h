/// \file thread_pool.h
/// \brief Fixed-size thread pool used for parallel query operators,
/// parallel cracking, parallel sorting and holistic worker teams.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdlib>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace holix {

/// Pool-wide options fixed at construction time.
struct ThreadPoolOptions {
  /// Pin worker i to cpu (i+1) % hardware_concurrency. The +1 keeps cpu 0
  /// for the calling thread (which participates in ParallelFor /
  /// ParallelForMorsels as shard 0). Pinning is the first half of the NUMA
  /// story: with first-touch allocation, a pinned worker's thread-local
  /// crack scratch lands on its own node. Best effort — failures (cgroup
  /// cpusets, non-Linux) are silently ignored.
  bool pin_threads = false;
};

/// Per-call result of ParallelForMorsels, for callers that want to export
/// scheduling metrics (the pool itself stays metrics-free: util cannot
/// depend on obs).
struct MorselRunStats {
  size_t morsels = 0;  ///< Morsels executed (== end - begin).
  size_t steals = 0;   ///< Morsels a participant took from another's queue.
};

/// A minimal fixed-size thread pool.
///
/// Tasks are `std::function<void()>`; Submit never blocks. The pool supports
/// three idioms used throughout holix:
///  * fire-and-forget Submit + WaitIdle (holistic workers),
///  * ParallelFor over an index range with static partitioning (operators),
///  * ParallelForMorsels: work-stealing over an index range (parallel
///    cracking's morsel scheduler).
class ThreadPool {
 public:
  /// Default options: pinning controlled by the HOLIX_PIN_THREADS env var
  /// (any value other than empty/"0" enables it).
  static ThreadPoolOptions DefaultOptions() {
    ThreadPoolOptions opts;
    const char* env = std::getenv("HOLIX_PIN_THREADS");
    opts.pin_threads = env != nullptr && env[0] != '\0' && env[0] != '0';
    return opts;
  }

  /// Starts \p num_threads workers (at least 1).
  explicit ThreadPool(size_t num_threads)
      : ThreadPool(num_threads, DefaultOptions()) {}

  ThreadPool(size_t num_threads, const ThreadPoolOptions& opts) {
    if (num_threads == 0) num_threads = 1;
    threads_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      threads_.emplace_back([this] { WorkerLoop(); });
      if (opts.pin_threads) PinThread(threads_.back(), i + 1);
    }
  }

  ~ThreadPool() {
    {
      std::unique_lock<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  size_t size() const { return threads_.size(); }

  /// Enqueues \p task for asynchronous execution.
  void Submit(std::function<void()> task) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      queue_.push_back(std::move(task));
      ++pending_;
    }
    cv_.notify_one();
  }

  /// Blocks until every submitted task has finished executing.
  void WaitIdle() {
    std::unique_lock<std::mutex> lk(mu_);
    idle_cv_.wait(lk, [this] { return pending_ == 0; });
  }

  /// Runs \p body(i) for every i in [begin, end) using static partitioning
  /// across the pool, and blocks until all iterations are done. The calling
  /// thread executes one shard itself. Safe to call from multiple client
  /// threads concurrently: completion is tracked per call, not pool-wide.
  ///
  /// Exception barrier: if any iteration throws, remaining iterations are
  /// skipped (best effort), every shard is still joined, and the *first*
  /// captured exception is rethrown on the calling thread.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& body) {
    const size_t n = end - begin;
    if (n == 0) return;
    const size_t shards = std::min(n, threads_.size() + 1);
    if (shards <= 1) {
      for (size_t i = begin; i < end; ++i) body(i);
      return;
    }
    const size_t chunk = (n + shards - 1) / shards;
    auto done = std::make_shared<Barrier>();
    auto run_shard = [&body, done](size_t lo, size_t hi) {
      try {
        for (size_t i = lo; i < hi; ++i) {
          if (done->abort.load(std::memory_order_relaxed)) break;
          body(i);
        }
      } catch (...) {
        done->CaptureError();
      }
    };
    size_t submitted = 0;
    for (size_t s = 1; s < shards; ++s) {
      const size_t lo = begin + s * chunk;
      if (lo < std::min(end, lo + chunk)) ++submitted;
    }
    done->remaining = submitted;
    for (size_t s = 1; s < shards; ++s) {
      const size_t lo = begin + s * chunk;
      const size_t hi = std::min(end, lo + chunk);
      if (lo >= hi) continue;
      Submit([lo, hi, run_shard, done] {
        run_shard(lo, hi);
        done->SignalOne();
      });
    }
    // The caller runs shard 0 itself to avoid idling.
    run_shard(begin, std::min(end, begin + chunk));
    done->Wait();
    done->Rethrow();
  }

  /// Runs \p body(i) for every i in [begin, end) with morsel-driven
  /// work stealing: indices are dealt out as contiguous blocks to per-slot
  /// deques, each participant pops its own queue from the front and, when
  /// empty, steals from the back of a victim's queue. The calling thread
  /// participates as slot 0. At most \p max_participants threads take part
  /// (0 = caller + whole pool). Same exception barrier as ParallelFor.
  ///
  /// One index is one morsel; callers choose the morsel granularity by how
  /// they carve their range (parallel_crack.h uses ~L2-sized row blocks).
  MorselRunStats ParallelForMorsels(size_t begin, size_t end,
                                    const std::function<void(size_t)>& body,
                                    size_t max_participants = 0) {
    MorselRunStats stats;
    const size_t n = end - begin;
    stats.morsels = n;
    if (n == 0) return stats;
    size_t slots = std::min(n, threads_.size() + 1);
    if (max_participants != 0) slots = std::min(slots, max_participants);
    if (slots <= 1) {
      for (size_t i = begin; i < end; ++i) body(i);
      return stats;
    }

    struct Slot {
      std::mutex mu;
      std::deque<size_t> q;
    };
    struct Run : Barrier {
      explicit Run(size_t k) : slots(k) {}
      std::vector<Slot> slots;
      std::atomic<size_t> steals{0};
    };
    auto run = std::make_shared<Run>(slots);
    // Deal contiguous blocks so each participant starts on its own region
    // (stealing from the back of a victim keeps stolen morsels far from the
    // victim's working end).
    const size_t chunk = (n + slots - 1) / slots;
    for (size_t s = 0; s < slots; ++s) {
      const size_t lo = begin + std::min(n, s * chunk);
      const size_t hi = begin + std::min(n, (s + 1) * chunk);
      for (size_t i = lo; i < hi; ++i) run->slots[s].q.push_back(i);
    }

    auto participate = [&body, run](size_t self) {
      const size_t k = run->slots.size();
      for (;;) {
        if (run->abort.load(std::memory_order_relaxed)) return;
        std::optional<size_t> idx;
        {
          Slot& own = run->slots[self];
          std::lock_guard<std::mutex> lk(own.mu);
          if (!own.q.empty()) {
            idx = own.q.front();
            own.q.pop_front();
          }
        }
        if (!idx) {
          for (size_t d = 1; d < k && !idx; ++d) {
            Slot& victim = run->slots[(self + d) % k];
            std::lock_guard<std::mutex> lk(victim.mu);
            if (!victim.q.empty()) {
              idx = victim.q.back();
              victim.q.pop_back();
              run->steals.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
        if (!idx) return;  // All queues drained; no new morsels appear.
        try {
          body(*idx);
        } catch (...) {
          run->CaptureError();
          return;
        }
      }
    };

    run->remaining = slots - 1;
    for (size_t s = 1; s < slots; ++s) {
      Submit([participate, run, s] {
        participate(s);
        run->SignalOne();
      });
    }
    participate(0);
    run->Wait();
    stats.steals = run->steals.load(std::memory_order_relaxed);
    run->Rethrow();
    return stats;
  }

 private:
  /// Per-call completion + first-exception latch shared by the parallel
  /// loops. Rethrow() must only be called after Wait().
  struct Barrier {
    std::mutex mu;
    std::condition_variable cv;
    size_t remaining = 0;
    std::atomic<bool> abort{false};
    std::exception_ptr error;  // first captured exception; guarded by mu

    void CaptureError() {
      abort.store(true, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lk(mu);
      if (!error) error = std::current_exception();
    }
    void SignalOne() {
      std::unique_lock<std::mutex> lk(mu);
      if (--remaining == 0) cv.notify_all();
    }
    void Wait() {
      std::unique_lock<std::mutex> lk(mu);
      cv.wait(lk, [this] { return remaining == 0; });
    }
    void Rethrow() {
      std::lock_guard<std::mutex> lk(mu);
      if (error) std::rethrow_exception(error);
    }
  };

  static void PinThread(std::thread& t, size_t index) {
#if defined(__linux__)
    const unsigned ncpu = std::thread::hardware_concurrency();
    if (ncpu == 0) return;
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(static_cast<int>(index % ncpu), &set);
    (void)pthread_setaffinity_np(t.native_handle(), sizeof(set), &set);
#else
    (void)t;
    (void)index;
#endif
  }

  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
        if (stop_ && queue_.empty()) return;
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
      {
        std::unique_lock<std::mutex> lk(mu_);
        if (--pending_ == 0) idle_cv_.notify_all();
      }
    }
  }

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  size_t pending_ = 0;
  bool stop_ = false;
};

}  // namespace holix
