/// \file timer.h
/// \brief Wall-clock timing helpers used by the experiment harness.

#pragma once

#include <chrono>
#include <cstdint>

namespace holix {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() { Restart(); }

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Microseconds elapsed since construction or the last Restart().
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Current monotonic time in seconds; useful for cross-thread timestamps.
inline double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace holix
