/// \file zipf.h
/// \brief Zipf-distributed sampling used by the skewed workloads (§5.3/§5.4).

#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace holix {

/// Samples ranks in [0, n) with probability proportional to 1/(rank+1)^theta.
///
/// Uses a precomputed CDF with binary search; construction is O(n), sampling
/// O(log n). Intended for modest n (attribute counts, bucket counts), not
/// for sampling the full value domain.
class ZipfGenerator {
 public:
  /// \param n      number of distinct ranks.
  /// \param theta  skew parameter; 0 is uniform, larger is more skewed.
  ZipfGenerator(size_t n, double theta) : cdf_(n) {
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
      cdf_[i] = sum;
    }
    for (auto& c : cdf_) c /= sum;
  }

  /// Number of distinct ranks.
  size_t size() const { return cdf_.size(); }

  /// Draws one rank using \p rng.
  size_t Sample(Rng& rng) const {
    const double u = rng.NextDouble();
    size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace holix
