#include "workload/workload.h"

#include <algorithm>
#include <cmath>

namespace holix {

const char* QueryPatternName(QueryPattern p) {
  switch (p) {
    case QueryPattern::kRandom:
      return "Random";
    case QueryPattern::kSkewed:
      return "Skewed";
    case QueryPattern::kPeriodic:
      return "Periodic";
    case QueryPattern::kSequential:
      return "Sequential";
    case QueryPattern::kSkyServer:
      return "SkyServer";
  }
  return "?";
}

namespace {

/// Predicate position for query i under the given pattern, in [0, domain).
int64_t PatternPosition(QueryPattern pattern, size_t i, size_t n,
                        int64_t domain, Rng& rng, int64_t* sky_center,
                        size_t* sky_remaining) {
  switch (pattern) {
    case QueryPattern::kRandom:
      return static_cast<int64_t>(rng.Below(static_cast<uint64_t>(domain)));
    case QueryPattern::kSkewed: {
      // Fig. 10(b): predicates concentrate in the top fifth of the domain
      // (the paper's example queries 800M..2^30 of a 2^30 domain).
      const int64_t base = domain - domain / 5;
      return base + static_cast<int64_t>(
                        rng.Below(static_cast<uint64_t>(domain / 5)));
    }
    case QueryPattern::kPeriodic: {
      // Fig. 10(c): repeated linear sweeps (sawtooth) across the domain.
      const size_t period = std::max<size_t>(1, n / 10);
      const double phase = static_cast<double>(i % period) / period;
      return static_cast<int64_t>(phase * static_cast<double>(domain));
    }
    case QueryPattern::kSequential: {
      // Fig. 10(d): one monotone pass over the domain.
      const double phase = static_cast<double>(i) / std::max<size_t>(1, n);
      return static_cast<int64_t>(phase * static_cast<double>(domain));
    }
    case QueryPattern::kSkyServer: {
      // Fig. 10(e): the logged SkyServer queries dwell on one region of
      // the sky (right ascension) and then hop to another. We emulate:
      // stay near a center for a random segment length, drift slightly,
      // then jump.
      if (*sky_remaining == 0) {
        *sky_center =
            static_cast<int64_t>(rng.Below(static_cast<uint64_t>(domain)));
        *sky_remaining = 20 + rng.Below(120);
      }
      --*sky_remaining;
      const int64_t window = std::max<int64_t>(1, domain / 64);
      const int64_t jitter =
          static_cast<int64_t>(rng.Below(static_cast<uint64_t>(window))) -
          window / 2;
      *sky_center += jitter / 8;  // slow drift within the region
      int64_t pos = *sky_center + jitter;
      pos = std::clamp<int64_t>(pos, 0, domain - 1);
      return pos;
    }
  }
  return 0;
}

}  // namespace

std::vector<RangeQuery> GenerateWorkload(const WorkloadSpec& spec) {
  Rng rng(spec.seed);
  ZipfGenerator attr_zipf(std::max<size_t>(1, spec.num_attributes),
                          spec.attribute_zipf_theta);
  std::vector<RangeQuery> queries;
  queries.reserve(spec.num_queries);
  int64_t sky_center = 0;
  size_t sky_remaining = 0;
  for (size_t i = 0; i < spec.num_queries; ++i) {
    RangeQuery q;
    q.attr = spec.skewed_attributes
                 ? attr_zipf.Sample(rng)
                 : rng.Below(std::max<size_t>(1, spec.num_attributes));
    const int64_t pos = PatternPosition(spec.pattern, i, spec.num_queries,
                                        spec.domain, rng, &sky_center,
                                        &sky_remaining);
    int64_t width;
    if (spec.selectivity > 0) {
      width = std::max<int64_t>(
          1, static_cast<int64_t>(spec.selectivity *
                                  static_cast<double>(spec.domain)));
    } else {
      // Random selectivity, as in the §5.1 microbenchmark.
      width = 1 + static_cast<int64_t>(
                      rng.Below(static_cast<uint64_t>(spec.domain)));
    }
    q.low = pos;
    q.high = (q.low > spec.domain - width) ? spec.domain : q.low + width;
    queries.push_back(q);
  }
  return queries;
}

std::vector<int64_t> GenerateUniformColumn(size_t n, int64_t domain,
                                           uint64_t seed) {
  Rng rng(seed);
  std::vector<int64_t> data(n);
  for (auto& v : data) {
    v = static_cast<int64_t>(rng.Below(static_cast<uint64_t>(domain)));
  }
  return data;
}

std::vector<double> GenerateUniformDoubleColumn(size_t n, int64_t domain,
                                                uint64_t seed) {
  Rng rng(seed);
  std::vector<double> data(n);
  for (auto& v : data) {
    v = static_cast<double>(rng.Below(static_cast<uint64_t>(domain))) +
        rng.NextDouble();
  }
  return data;
}

std::vector<WorkloadOp> GenerateUpdateWorkload(UpdateScenario scenario,
                                               size_t num_queries,
                                               int64_t domain,
                                               double idle_seconds,
                                               uint64_t seed) {
  Rng rng(seed);
  const size_t batch =
      scenario == UpdateScenario::kHighFrequencyLowVolume ? 10 : 100;
  std::vector<WorkloadOp> ops;
  ops.reserve(2 * num_queries + 2);
  for (size_t i = 0; i < num_queries; ++i) {
    WorkloadOp op;
    op.kind = WorkloadOp::Kind::kQuery;
    op.query.attr = 0;
    op.query.low =
        static_cast<int64_t>(rng.Below(static_cast<uint64_t>(domain)));
    const int64_t width = std::max<int64_t>(1, domain / 1000);
    op.query.high = std::min<int64_t>(domain, op.query.low + width);
    ops.push_back(op);
    if (i == 9 && idle_seconds > 0) {
      WorkloadOp idle;
      idle.kind = WorkloadOp::Kind::kIdle;
      idle.idle_seconds = idle_seconds;
      ops.push_back(idle);
    }
    if ((i + 1) % batch == 0) {
      for (size_t k = 0; k < batch; ++k) {
        WorkloadOp ins;
        ins.kind = WorkloadOp::Kind::kInsert;
        ins.insert_value =
            static_cast<int64_t>(rng.Below(static_cast<uint64_t>(domain)));
        ops.push_back(ins);
      }
    }
  }
  return ops;
}

}  // namespace holix
