/// \file workload.h
/// \brief Workload generation: the synthetic query patterns of Figure 10,
/// a SkyServer-like exploration trace, multi-attribute schemas (§5.4), and
/// the update interleavings of §5.7.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/zipf.h"

namespace holix {

/// One range-select query against a single attribute:
/// select ... where low <= A_attr < high.
struct RangeQuery {
  size_t attr = 0;   ///< Which attribute the query touches.
  int64_t low = 0;   ///< Inclusive lower bound.
  int64_t high = 0;  ///< Exclusive upper bound.
};

/// How predicate positions evolve over the query sequence (Fig. 10).
enum class QueryPattern : uint8_t {
  kRandom,      ///< Uniform positions over the whole domain (Fig. 10a).
  kSkewed,      ///< Concentrated in the top fifth of the domain (Fig. 10b).
  kPeriodic,    ///< Sawtooth sweeps across the domain (Fig. 10c).
  kSequential,  ///< One monotone sweep low -> high (Fig. 10d).
  kSkyServer,   ///< Clustered exploration with region jumps (Fig. 10e).
};

/// Printable pattern name.
const char* QueryPatternName(QueryPattern p);

/// Parameters of a generated workload.
struct WorkloadSpec {
  size_t num_queries = 1000;
  size_t num_attributes = 10;
  int64_t domain = int64_t{1} << 30;  ///< Values are in [0, domain).
  QueryPattern pattern = QueryPattern::kRandom;

  /// Attribute choice: uniform round-robin-free random, or Zipf-skewed
  /// (§5.4's "skewed attributes" variant).
  bool skewed_attributes = false;
  double attribute_zipf_theta = 1.0;

  /// Query range width as a fraction of the domain; 0 means "random
  /// selectivity" (the §5.1 microbenchmark draws random ranges).
  double selectivity = 0.0;

  uint64_t seed = 1234;
};

/// Generates the per-query predicate positions for \p spec.
std::vector<RangeQuery> GenerateWorkload(const WorkloadSpec& spec);

/// Generates a column of \p n uniformly distributed integers in
/// [0, domain) (the paper's 2^30 uniform columns).
std::vector<int64_t> GenerateUniformColumn(size_t n, int64_t domain,
                                           uint64_t seed);

/// Generates a column of \p n doubles uniform over [0, domain) with
/// genuine fractional parts (integer grid point + uniform [0, 1) offset),
/// for the floating-point workload experiments.
std::vector<double> GenerateUniformDoubleColumn(size_t n, int64_t domain,
                                                uint64_t seed);

/// One step of an interleaved read/write workload (§5.7).
struct WorkloadOp {
  enum class Kind : uint8_t { kQuery, kInsert, kIdle } kind = Kind::kQuery;
  RangeQuery query;       ///< Valid when kind == kQuery.
  int64_t insert_value = 0;  ///< Valid when kind == kInsert.
  double idle_seconds = 0;   ///< Valid when kind == kIdle.
};

/// Update-scenario shapes of §5.7.
enum class UpdateScenario : uint8_t {
  kHighFrequencyLowVolume,  ///< 10 inserts every 10 queries.
  kLowFrequencyHighVolume,  ///< 100 inserts every 100 queries.
};

/// Builds the §5.7 interleaving: \p num_queries selects and an equal
/// number of inserts on one attribute, in HFLV or LFHV batches, with one
/// idle gap of \p idle_seconds after the 10th query.
std::vector<WorkloadOp> GenerateUpdateWorkload(UpdateScenario scenario,
                                               size_t num_queries,
                                               int64_t domain,
                                               double idle_seconds,
                                               uint64_t seed);

}  // namespace holix
