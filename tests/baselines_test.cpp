/// Tests for the baseline systems: parallel scans, sorted indexes, and
/// coarse-granular pre-cracking (mP-CCGI).

#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/full_scan.h"
#include "baselines/sorted_index.h"
#include "cracking/pre_crack.h"
#include "test_support.h"
#include "util/rng.h"

namespace holix {
namespace {

using test::MakeUniform;
using test::NaiveCount;

class ScanThreadsTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ScanThreadsTest, CountMatchesNaive) {
  const size_t threads = GetParam();
  ThreadPool pool(threads);
  const auto data = MakeUniform(120000, 1 << 20, 1);
  Rng rng(2);
  for (int i = 0; i < 30; ++i) {
    const int64_t lo = static_cast<int64_t>(rng.Below(1 << 20));
    const int64_t hi = lo + 1 + static_cast<int64_t>(rng.Below(1 << 18));
    ASSERT_EQ(
        ParallelScanCount(data.data(), data.size(), lo, hi, pool, threads),
        NaiveCount(data, lo, hi));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ScanThreadsTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(ParallelScan, SelectMaterializesPositionsInOrder) {
  ThreadPool pool(4);
  const auto data = MakeUniform(50000, 1000, 3);
  const auto rows =
      ParallelScanSelect(data.data(), data.size(), int64_t{100}, int64_t{200},
                         pool, 4);
  EXPECT_EQ(rows.size(), NaiveCount(data, 100, 200));
  EXPECT_TRUE(std::is_sorted(rows.begin(), rows.end()));
  for (RowId r : rows) {
    ASSERT_GE(data[r], 100);
    ASSERT_LT(data[r], 200);
  }
}

TEST(ParallelScan, EmptyInput) {
  ThreadPool pool(2);
  std::vector<int64_t> empty;
  EXPECT_EQ(ParallelScanCount(empty.data(), 0, int64_t{0}, int64_t{10}, pool,
                              2),
            0u);
}

TEST(SortedIndex, SelectRangeMatchesNaive) {
  ThreadPool pool(4);
  const auto data = MakeUniform(100000, 1 << 20, 4);
  SortedIndex<int64_t> idx("a", data, pool);
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const int64_t lo = static_cast<int64_t>(rng.Below(1 << 20));
    const int64_t hi = lo + 1 + static_cast<int64_t>(rng.Below(1 << 16));
    ASSERT_EQ(idx.CountRange(lo, hi), NaiveCount(data, lo, hi));
  }
}

TEST(SortedIndex, ValuesSortedAndRowidsValid) {
  ThreadPool pool(2);
  const auto data = MakeUniform(20000, 1000, 6);
  SortedIndex<int64_t> idx("a", data, pool);
  for (size_t i = 1; i < idx.size(); ++i) {
    ASSERT_LE(idx.ValueAt(i - 1), idx.ValueAt(i));
  }
  for (size_t i = 0; i < idx.size(); i += 101) {
    ASSERT_EQ(data[idx.RowIdAt(i)], idx.ValueAt(i));
  }
}

TEST(SortedIndex, FetchRowIdsRoundTrip) {
  ThreadPool pool(2);
  const auto data = MakeUniform(5000, 100, 7);
  SortedIndex<int64_t> idx("a", data, pool);
  const auto range = idx.SelectRange(40, 60);
  const auto rows = idx.FetchRowIds(range);
  EXPECT_EQ(rows.size(), NaiveCount(data, 40, 60));
  for (RowId r : rows) {
    ASSERT_GE(data[r], 40);
    ASSERT_LT(data[r], 60);
  }
}

TEST(SortedIndex, EmptyAndDegenerateRanges) {
  ThreadPool pool(2);
  const auto data = MakeUniform(1000, 100, 8);
  SortedIndex<int64_t> idx("a", data, pool);
  EXPECT_EQ(idx.CountRange(50, 50), 0u);
  EXPECT_EQ(idx.CountRange(200, 300), 0u);
  EXPECT_EQ(idx.CountRange(-10, 200), data.size());
}

TEST(PreCrack, EquiWidthCreatesPieces) {
  const auto data = MakeUniform(100000, 1 << 20, 9);
  CrackerColumn<int64_t> col("a", data);
  PreCrackEquiWidth(col, 16);
  EXPECT_GE(col.NumPieces(), 15u);  // some grid pivots may be degenerate
  EXPECT_TRUE(col.CheckInvariants());
  // Piece sizes should be roughly balanced for uniform data.
  const auto sizes = col.PieceSizes();
  const size_t expected = data.size() / 16;
  for (size_t s : sizes) {
    EXPECT_LT(s, expected * 3);
  }
}

TEST(PreCrack, DegenerateCases) {
  CrackerColumn<int64_t> empty("e", std::vector<int64_t>{});
  PreCrackEquiWidth(empty, 8);
  EXPECT_EQ(empty.NumPieces(), 1u);

  CrackerColumn<int64_t> constant("c", std::vector<int64_t>(100, 5));
  PreCrackEquiWidth(constant, 8);
  EXPECT_EQ(constant.NumPieces(), 1u);  // no value spread to partition

  const auto data = MakeUniform(1000, 100, 10);
  CrackerColumn<int64_t> one("o", data);
  PreCrackEquiWidth(one, 1);  // k < 2 is a no-op
  EXPECT_EQ(one.NumPieces(), 1u);
}

TEST(PreCrack, QueriesAfterPreCrackCorrect) {
  const auto data = MakeUniform(50000, 1 << 16, 11);
  CrackerColumn<int64_t> col("a", data);
  PreCrackEquiWidth(col, 8);
  Rng rng(12);
  for (int i = 0; i < 40; ++i) {
    const int64_t lo = static_cast<int64_t>(rng.Below(1 << 16));
    const int64_t hi = lo + 1 + static_cast<int64_t>(rng.Below(1 << 12));
    ASSERT_EQ(col.SelectRange(lo, hi).size(), NaiveCount(data, lo, hi));
  }
  EXPECT_TRUE(col.CheckInvariants());
}

}  // namespace
}  // namespace holix
