/// \file client_reconnect_test.cpp
/// \brief HolixClient reconnect-with-backoff (ClientOptions::reconnect):
/// the server is stopped and restarted on the same port mid-workload and
/// the client must (a) transparently retry idempotent reads with no lost
/// or duplicated acknowledged results, (b) keep session handles valid by
/// re-binding them to fresh server sessions, and (c) refuse to resend
/// updates whose ack is ambiguous.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "server/client.h"
#include "server/server.h"
#include "test_support.h"

namespace holix::net {
namespace {

constexpr size_t kRows = 20000;
constexpr int64_t kDomain = 1 << 20;

DatabaseOptions SmallDbOptions() {
  DatabaseOptions opts;
  opts.mode = ExecMode::kAdaptive;
  opts.user_threads = 2;
  opts.total_cores = 4;
  return opts;
}

ClientOptions FastReconnect() {
  ClientOptions c;
  c.reconnect = true;
  c.max_attempts = 10;
  c.backoff_initial_seconds = 0.02;
  c.backoff_max_seconds = 0.2;
  return c;
}

/// A database, a server bound to a *fixed* port (discovered via a throwaway
/// ephemeral bind), and a way to kill + resurrect the server on that port so
/// a reconnecting client can find it again.
class ReconnectTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>(SmallDbOptions());
    data_ = test::MakeUniform(kRows, kDomain, /*seed=*/7);
    db_->LoadColumn("r", "a", data_);
    // Discover a free port, then re-bind it explicitly so a restarted
    // server lands on the same address the client remembers.
    {
      HolixServer probe(*db_);
      probe.Start();
      port_ = probe.port();
      probe.Stop();
    }
    StartServer();
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
  }

  void StartServer() {
    ServerOptions so;
    so.port = port_;
    server_ = std::make_unique<HolixServer>(*db_, so);
    server_->Start();
  }

  void StopServer() { server_->Stop(); }

  uint64_t Oracle(int64_t lo, int64_t hi) const {
    return test::NaiveCount(data_, lo, hi);
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<HolixServer> server_;
  std::vector<int64_t> data_;
  uint16_t port_ = 0;
};

TEST_F(ReconnectTest, ReadRetriesAcrossRestartWithSameSessionHandle) {
  HolixClient client;
  client.Connect("127.0.0.1", port_, FastReconnect());
  const uint64_t sid = client.OpenSession();

  EXPECT_EQ(client.CountRange(sid, "r", "a", 100, 5000), Oracle(100, 5000));

  StopServer();
  StartServer();

  // The client's socket is stale; the next read must reconnect, re-open
  // the session behind the handle, and return the exact oracle count.
  EXPECT_EQ(client.CountRange(sid, "r", "a", 100, 5000), Oracle(100, 5000));
  EXPECT_EQ(client.CountRange(sid, "r", "a", 0, kDomain), kRows);
  client.CloseSession(sid);
}

TEST_F(ReconnectTest, ReadBacksOffWhileServerIsDown) {
  HolixClient client;
  client.Connect("127.0.0.1", port_, FastReconnect());
  const uint64_t sid = client.OpenSession();
  ASSERT_EQ(client.CountRange(sid, "r", "a", 0, 1000), Oracle(0, 1000));

  StopServer();

  // Issue the read while the port is closed; bring the server back while
  // the client is sleeping between attempts. The call must block through
  // the outage and still return the right answer.
  std::atomic<uint64_t> got{~uint64_t{0}};
  std::thread reader([&] {
    got.store(client.CountRange(sid, "r", "a", 0, 1000),
              std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  StartServer();
  reader.join();
  EXPECT_EQ(got.load(std::memory_order_acquire), Oracle(0, 1000));
}

TEST_F(ReconnectTest, MultipleSessionHandlesRebind) {
  HolixClient client;
  client.Connect("127.0.0.1", port_, FastReconnect());
  const uint64_t s1 = client.OpenSession();
  const uint64_t s2 = client.OpenSession();
  EXPECT_NE(s1, s2);

  StopServer();
  StartServer();

  EXPECT_EQ(client.CountRange(s1, "r", "a", 0, kDomain), kRows);
  EXPECT_EQ(client.CountRange(s2, "r", "a", 500, 700), Oracle(500, 700));
  client.CloseSession(s1);
  EXPECT_EQ(client.CountRange(s2, "r", "a", 0, 64), Oracle(0, 64));
  client.CloseSession(s2);
}

TEST_F(ReconnectTest, AcknowledgedUpdatesSurviveAndAreNeverDuplicated) {
  HolixClient client;
  client.Connect("127.0.0.1", port_, FastReconnect());
  const uint64_t sid = client.OpenSession();

  // kDomain itself never occurs in the loaded data, so its count isolates
  // exactly the updates this test applies.
  ASSERT_EQ(client.CountRange(sid, "r", "a", kDomain, kDomain + 10), 0u);
  (void)client.Insert(sid, "r", "a", kDomain);
  ASSERT_EQ(client.CountRange(sid, "r", "a", kDomain, kDomain + 10), 1u);

  StopServer();

  // A non-idempotent call over a dead transport must surface the loss, not
  // silently resend: its ack would be ambiguous.
  EXPECT_THROW((void)client.Insert(sid, "r", "a", kDomain), ConnectionLost);

  StartServer();

  // The acknowledged insert is still there exactly once, and the failed
  // one was not replayed behind the caller's back.
  EXPECT_EQ(client.CountRange(sid, "r", "a", kDomain, kDomain + 10), 1u);
  // An update issued after the reconnect applies normally.
  (void)client.Insert(sid, "r", "a", kDomain);
  EXPECT_EQ(client.CountRange(sid, "r", "a", kDomain, kDomain + 10), 2u);
  EXPECT_TRUE(client.Delete(sid, "r", "a", kDomain));
  EXPECT_EQ(client.CountRange(sid, "r", "a", kDomain, kDomain + 10), 1u);
}

TEST_F(ReconnectTest, PipelinedWindowStraddlingRestartLosesNoAcknowledgedResult) {
  HolixClient client;
  client.Connect("127.0.0.1", port_, FastReconnect());
  const uint64_t sid = client.OpenSession();

  // Awaited (acknowledged) pipelined results before the restart...
  std::vector<uint64_t> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(client.SendCountRange(sid, "r", "a", KeyScalar::I64(i * 100),
                                        KeyScalar::I64(i * 100 + 1000)));
  }
  std::vector<uint64_t> before;
  for (uint64_t id : ids) before.push_back(client.AwaitCount(id));
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(before[static_cast<size_t>(i)], Oracle(i * 100, i * 100 + 1000));
  }

  StopServer();
  StartServer();

  // ...must agree with the same queries re-issued after it (nothing lost,
  // nothing double-counted), and the pipelined path itself recovers once
  // the synchronous path has re-dialed.
  EXPECT_EQ(client.CountRange(sid, "r", "a", 0, 1000), Oracle(0, 1000));
  const uint64_t id2 =
      client.SendCountRange(sid, "r", "a", KeyScalar::I64(0),
                            KeyScalar::I64(1000));
  EXPECT_EQ(client.AwaitCount(id2), Oracle(0, 1000));
}

TEST_F(ReconnectTest, WithoutReconnectOptionTheLossSurfaces) {
  HolixClient client;
  client.Connect("127.0.0.1", port_);  // reconnect off (default)
  const uint64_t sid = client.OpenSession();
  ASSERT_EQ(client.CountRange(sid, "r", "a", 0, 64), Oracle(0, 64));

  StopServer();
  StartServer();

  EXPECT_THROW((void)client.CountRange(sid, "r", "a", 0, 64), ConnectionLost);
  EXPECT_FALSE(client.connected());
  // ConnectionLost derives std::runtime_error, so legacy catch sites work.
  client.Connect("127.0.0.1", port_);
  const uint64_t sid2 = client.OpenSession();
  EXPECT_EQ(client.CountRange(sid2, "r", "a", 0, 64), Oracle(0, 64));
}

}  // namespace
}  // namespace holix::net
