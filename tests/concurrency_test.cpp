/// Concurrency tests (§4.2, Figure 3): user queries and holistic workers
/// cracking the same column in parallel must preserve the cracker
/// invariant and return correct results, with workers skipping latched
/// pieces instead of blocking.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "cracking/cracker_column.h"
#include "test_support.h"
#include "util/rng.h"

namespace holix {
namespace {

using test::MakeUniform;
using test::NaiveCount;

TEST(Concurrency, ParallelQueriesOnOneColumn) {
  const int64_t domain = 1 << 20;
  const auto base = MakeUniform(200000, domain, 1);
  CrackerColumn<int64_t> col("a", base);
  constexpr size_t kThreads = 8;
  constexpr int kQueriesPerThread = 60;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(100 + t);
      for (int i = 0; i < kQueriesPerThread; ++i) {
        const int64_t lo = static_cast<int64_t>(rng.Below(domain));
        const int64_t width = 1 + static_cast<int64_t>(rng.Below(domain / 8));
        const PositionRange r = col.SelectRange(lo, lo + width);
        if (r.size() != NaiveCount(base, lo, lo + width)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(col.CheckInvariants());
}

TEST(Concurrency, QueriesPlusWorkersStayConsistent) {
  const int64_t domain = 1 << 20;
  const auto base = MakeUniform(200000, domain, 2);
  CrackerColumn<int64_t> col("a", base);
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::atomic<uint64_t> worker_attempts{0};

  // Holistic workers: random pivots, try-latch semantics.
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&, w] {
      Rng rng(7 + w);
      while (!stop.load(std::memory_order_relaxed)) {
        col.TryRefineAt(static_cast<int64_t>(rng.Below(domain)));
        worker_attempts.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // User queries in parallel with the workers.
  std::vector<std::thread> queries;
  for (int t = 0; t < 4; ++t) {
    queries.emplace_back([&, t] {
      Rng rng(1000 + t);
      for (int i = 0; i < 80; ++i) {
        const int64_t lo = static_cast<int64_t>(rng.Below(domain));
        const int64_t width = 1 + static_cast<int64_t>(rng.Below(domain / 4));
        const PositionRange r = col.SelectRange(lo, lo + width);
        if (r.size() != NaiveCount(base, lo, lo + width)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : queries) th.join();
  stop.store(true);
  for (auto& th : workers) th.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(worker_attempts.load(), 0u);
  EXPECT_TRUE(col.CheckInvariants());
  // Workers must have contributed cracks of their own.
  EXPECT_GT(col.stats().worker_cracks.load(), 0u);
}

TEST(Concurrency, WorkerSkipsLatchedPiece) {
  // Hold the write latch of the only piece; TryRefineAt must fail fast
  // (Figure 3: pick another pivot) instead of blocking.
  const auto base = MakeUniform(10000, 1 << 16, 3);
  CrackerColumn<int64_t> col("a", base);
  // Crack once so we know a piece's latch; then lock it manually by
  // starting a long ScanRange from another thread is complex — instead we
  // emulate with a first crack and verify skip counting under contention.
  std::atomic<bool> stop{false};
  std::thread churn([&] {
    Rng rng(4);
    while (!stop.load(std::memory_order_relaxed)) {
      const int64_t lo = static_cast<int64_t>(rng.Below(1 << 16));
      col.SelectRange(lo, lo + 1024);
    }
  });
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    col.TryRefineAt(static_cast<int64_t>(rng.Below(1 << 16)));
  }
  stop.store(true);
  churn.join();
  EXPECT_TRUE(col.CheckInvariants());
  // Skips may or may not occur depending on timing; the invariant is that
  // refinement never corrupted the index and never deadlocked (we got
  // here). Worker cracks should have succeeded en masse.
  EXPECT_GT(col.stats().worker_cracks.load(), 100u);
}

TEST(Concurrency, ConcurrentScansSeeStableRanges) {
  const int64_t domain = 1 << 18;
  const auto base = MakeUniform(100000, domain, 6);
  CrackerColumn<int64_t> col("a", base);
  const PositionRange r = col.SelectRange(1000, 200000);
  const size_t expected = r.size();
  std::atomic<bool> stop{false};
  std::thread workers_thread([&] {
    Rng rng(8);
    while (!stop.load(std::memory_order_relaxed)) {
      col.TryRefineAt(static_cast<int64_t>(rng.Below(domain)));
    }
  });
  for (int i = 0; i < 50; ++i) {
    size_t seen = 0;
    col.ScanRange(r, [&](int64_t v, RowId) {
      ASSERT_GE(v, 1000);
      ASSERT_LT(v, 200000);
      ++seen;
    });
    ASSERT_EQ(seen, expected);
  }
  stop.store(true);
  workers_thread.join();
  EXPECT_TRUE(col.CheckInvariants());
}

TEST(Concurrency, ManyThreadsSmallColumn) {
  // Stress: high thread count on a tiny column maximizes latch conflicts.
  const auto base = MakeUniform(2000, 1 << 10, 9);
  CrackerColumn<int64_t> col("tiny", base);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 12; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(t);
      for (int i = 0; i < 200; ++i) {
        if (t % 2 == 0) {
          const int64_t lo = static_cast<int64_t>(rng.Below(1 << 10));
          const PositionRange r = col.SelectRange(lo, lo + 16);
          if (r.size() != NaiveCount(base, lo, lo + 16)) failures.fetch_add(1);
        } else {
          col.TryRefineAt(static_cast<int64_t>(rng.Below(1 << 10)));
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(col.CheckInvariants());
}

}  // namespace
}  // namespace holix
