/// Tests for the physical reorganization kernels: correctness of every
/// partition kernel over parameterized pivots, sizes and distributions.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "cracking/crack_config.h"
#include "cracking/crack_kernels.h"
#include "cracking/crack_kernels_simd.h"
#include "cracking/parallel_crack.h"
#include "test_support.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace holix {
namespace {

struct KernelInput {
  std::vector<int64_t> values;
  std::vector<RowId> ids;
};

KernelInput MakeInput(size_t n, int64_t domain, uint64_t seed) {
  Rng rng(seed);
  KernelInput in;
  in.values.resize(n);
  in.ids.resize(n);
  for (size_t i = 0; i < n; ++i) {
    in.values[i] = static_cast<int64_t>(rng.Below(domain));
    in.ids[i] = i;
  }
  return in;
}

/// Checks the two-way partition postcondition and multiset preservation.
void CheckTwoWay(const KernelInput& original, const KernelInput& cracked,
                 size_t cut, int64_t pivot) {
  ASSERT_EQ(original.values.size(), cracked.values.size());
  for (size_t i = 0; i < cut; ++i) {
    ASSERT_LT(cracked.values[i], pivot) << "position " << i;
  }
  for (size_t i = cut; i < cracked.values.size(); ++i) {
    ASSERT_GE(cracked.values[i], pivot) << "position " << i;
  }
  // (value, id) pairs must stay together and form the same multiset.
  for (size_t i = 0; i < cracked.values.size(); ++i) {
    ASSERT_EQ(original.values[cracked.ids[i]], cracked.values[i]);
  }
  auto ids_sorted = cracked.ids;
  std::sort(ids_sorted.begin(), ids_sorted.end());
  for (size_t i = 0; i < ids_sorted.size(); ++i) ASSERT_EQ(ids_sorted[i], i);
}

size_t ExpectedCut(const std::vector<int64_t>& v, int64_t pivot) {
  return std::count_if(v.begin(), v.end(),
                       [&](int64_t x) { return x < pivot; });
}

// --- Scalar kernel -----------------------------------------------------

class ScalarKernelTest
    : public ::testing::TestWithParam<std::tuple<size_t, int64_t>> {};

TEST_P(ScalarKernelTest, PartitionsCorrectly) {
  const auto [n, pivot] = GetParam();
  const KernelInput original = MakeInput(n, 1000, n + pivot);
  KernelInput in = original;
  const size_t cut = CrackInTwoScalar(
      in.values.data(), 0, n, pivot, [&](size_t i, size_t j) {
        std::swap(in.values[i], in.values[j]);
        std::swap(in.ids[i], in.ids[j]);
      });
  EXPECT_EQ(cut, ExpectedCut(original.values, pivot));
  CheckTwoWay(original, in, cut, pivot);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ScalarKernelTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 100, 1023, 4096),
                       ::testing::Values(-5, 0, 1, 250, 500, 999, 1000,
                                         2000)));

// --- Out-of-place kernel ------------------------------------------------

class OutOfPlaceKernelTest
    : public ::testing::TestWithParam<std::tuple<size_t, int64_t>> {};

TEST_P(OutOfPlaceKernelTest, PartitionsCorrectly) {
  const auto [n, pivot] = GetParam();
  const KernelInput original = MakeInput(n, 1000, 7 * n + pivot);
  KernelInput in = original;
  CrackScratch<int64_t> scratch;
  const size_t cut = CrackInTwoOutOfPlace(in.values.data(), in.ids.data(), 0,
                                          n, pivot, scratch);
  EXPECT_EQ(cut, ExpectedCut(original.values, pivot));
  CheckTwoWay(original, in, cut, pivot);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OutOfPlaceKernelTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 100, 1023, 4096),
                       ::testing::Values(-5, 0, 1, 250, 500, 999, 1000,
                                         2000)));

TEST(OutOfPlaceKernel, SubrangeOnly) {
  const KernelInput original = MakeInput(1000, 100, 5);
  KernelInput in = original;
  CrackScratch<int64_t> scratch;
  const size_t cut = CrackInTwoOutOfPlace(in.values.data(), in.ids.data(),
                                          size_t{200}, size_t{700},
                                          int64_t{50}, scratch);
  for (size_t i = 0; i < 200; ++i) ASSERT_EQ(in.values[i], original.values[i]);
  for (size_t i = 700; i < 1000; ++i)
    ASSERT_EQ(in.values[i], original.values[i]);
  for (size_t i = 200; i < cut; ++i) ASSERT_LT(in.values[i], 50);
  for (size_t i = cut; i < 700; ++i) ASSERT_GE(in.values[i], 50);
}

// --- Three-way kernel ---------------------------------------------------

class ThreeWayKernelTest
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t>> {};

TEST_P(ThreeWayKernelTest, PartitionsIntoThree) {
  const auto [low, high] = GetParam();
  if (low >= high) GTEST_SKIP();
  const KernelInput original = MakeInput(3000, 1000, low * 31 + high);
  KernelInput in = original;
  const auto [a, b] = CrackInThreeScalar(
      in.values.data(), 0, in.values.size(), low, high,
      [&](size_t i, size_t j) {
        std::swap(in.values[i], in.values[j]);
        std::swap(in.ids[i], in.ids[j]);
      });
  ASSERT_LE(a, b);
  for (size_t i = 0; i < a; ++i) ASSERT_LT(in.values[i], low);
  for (size_t i = a; i < b; ++i) {
    ASSERT_GE(in.values[i], low);
    ASSERT_LT(in.values[i], high);
  }
  for (size_t i = b; i < in.values.size(); ++i) ASSERT_GE(in.values[i], high);
  for (size_t i = 0; i < in.values.size(); ++i) {
    ASSERT_EQ(original.values[in.ids[i]], in.values[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ThreeWayKernelTest,
    ::testing::Combine(::testing::Values(-10, 0, 100, 500, 998),
                       ::testing::Values(1, 101, 500, 999, 1500)));

// --- Parallel kernel ----------------------------------------------------

class ParallelKernelTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(ParallelKernelTest, MatchesSequentialSemantics) {
  const auto [n, threads] = GetParam();
  ThreadPool pool(threads);
  const KernelInput original = MakeInput(n, 1u << 20, n * threads + 3);
  KernelInput in = original;
  const int64_t pivot = 1 << 19;
  const size_t cut =
      ParallelCrackInTwo(in.values.data(), in.ids.data(), 0, n, pivot, pool,
                         threads, /*min_parallel_piece=*/256);
  EXPECT_EQ(cut, ExpectedCut(original.values, pivot));
  CheckTwoWay(original, in, cut, pivot);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelKernelTest,
    ::testing::Combine(::testing::Values(1000, 4096, 65536, 300000),
                       ::testing::Values(1, 2, 3, 4, 8)));

TEST(ParallelKernel, AllValuesBelowPivot) {
  ThreadPool pool(4);
  KernelInput in = MakeInput(10000, 100, 1);
  const size_t cut = ParallelCrackInTwo(in.values.data(), in.ids.data(), 0,
                                        in.values.size(), int64_t{1000}, pool,
                                        4, 256);
  EXPECT_EQ(cut, in.values.size());
}

TEST(ParallelKernel, AllValuesAtOrAbovePivot) {
  ThreadPool pool(4);
  KernelInput in = MakeInput(10000, 100, 2);
  const size_t cut = ParallelCrackInTwo(in.values.data(), in.ids.data(), 0,
                                        in.values.size(), int64_t{-1}, pool,
                                        4, 256);
  EXPECT_EQ(cut, 0u);
}

TEST(ParallelKernel, SubrangePreservesOutside) {
  ThreadPool pool(4);
  const KernelInput original = MakeInput(100000, 1u << 16, 9);
  KernelInput in = original;
  const size_t lo = 10000, hi = 90000;
  const int64_t pivot = 1 << 15;
  ParallelCrackInTwo(in.values.data(), in.ids.data(), lo, hi, pivot, pool, 4,
                     256);
  for (size_t i = 0; i < lo; ++i) ASSERT_EQ(in.values[i], original.values[i]);
  for (size_t i = hi; i < in.values.size(); ++i)
    ASSERT_EQ(in.values[i], original.values[i]);
}

// --- Boundary cases, for each CrackAlgo ---------------------------------

/// Runs the two-way crack of [lo, hi) with the kernel behind \p algo.
size_t RunCrack(CrackAlgo algo, KernelInput& in, size_t lo, size_t hi,
                int64_t pivot) {
  switch (algo) {
    case CrackAlgo::kScalar:
      return CrackInTwoScalar(in.values.data(), lo, hi, pivot,
                              [&](size_t i, size_t j) {
                                std::swap(in.values[i], in.values[j]);
                                std::swap(in.ids[i], in.ids[j]);
                              });
    case CrackAlgo::kOutOfPlace: {
      CrackScratch<int64_t> scratch;
      return CrackInTwoOutOfPlace(in.values.data(), in.ids.data(), lo, hi,
                                  pivot, scratch);
    }
    case CrackAlgo::kParallel: {
      ThreadPool pool(4);
      return ParallelCrackInTwo(in.values.data(), in.ids.data(), lo, hi,
                                pivot, pool, 4, /*min_parallel_piece=*/64);
    }
    case CrackAlgo::kSimd: {
      CrackScratch<int64_t> scratch;
      return CrackInTwoSimd(in.values.data(), in.ids.data(), lo, hi, pivot,
                            scratch);
    }
  }
  ADD_FAILURE() << "unknown CrackAlgo";
  return lo;
}

class CrackAlgoBoundaryTest : public ::testing::TestWithParam<CrackAlgo> {};

TEST_P(CrackAlgoBoundaryTest, EmptyPieceIsANoOp) {
  const KernelInput original = MakeInput(100, 1000, 17);
  KernelInput in = original;
  // lo == hi in the middle of live data: nothing may move.
  const size_t cut = RunCrack(GetParam(), in, 50, 50, 500);
  EXPECT_EQ(cut, 50u);
  EXPECT_EQ(in.values, original.values);
  EXPECT_EQ(in.ids, original.ids);
}

TEST_P(CrackAlgoBoundaryTest, SingleElementPiece) {
  for (const int64_t value : {int64_t{10}, int64_t{500}}) {
    for (const int64_t pivot : {int64_t{10}, int64_t{11}, int64_t{499}}) {
      KernelInput in;
      in.values = {value};
      in.ids = {0};
      const size_t cut = RunCrack(GetParam(), in, 0, 1, pivot);
      EXPECT_EQ(cut, value < pivot ? 1u : 0u)
          << "value=" << value << " pivot=" << pivot;
      EXPECT_EQ(in.values[0], value);
      EXPECT_EQ(in.ids[0], 0u);
    }
  }
}

TEST_P(CrackAlgoBoundaryTest, AllEqualKeys) {
  const size_t n = 1024;
  KernelInput original;
  original.values = test::MakeAllEqual(n, 42);
  original.ids.resize(n);
  for (size_t i = 0; i < n; ++i) original.ids[i] = i;
  struct Case {
    int64_t pivot;
    size_t expected_cut;
  };
  for (const Case c : {Case{42, 0}, Case{43, n}, Case{41, 0}}) {
    KernelInput in = original;
    const size_t cut = RunCrack(GetParam(), in, 0, n, c.pivot);
    EXPECT_EQ(cut, c.expected_cut) << "pivot=" << c.pivot;
    CheckTwoWay(original, in, cut, c.pivot);
  }
}

TEST_P(CrackAlgoBoundaryTest, PivotOutsideValueRange) {
  const KernelInput original = MakeInput(4096, 1000, 23);
  KernelInput in = original;
  // Below every value: cut at lo, nothing qualifies as "< pivot".
  size_t cut = RunCrack(GetParam(), in, 0, in.values.size(), -7);
  EXPECT_EQ(cut, 0u);
  CheckTwoWay(original, in, cut, -7);
  // Above every value: cut at hi, everything is "< pivot".
  cut = RunCrack(GetParam(), in, 0, in.values.size(), 10000);
  EXPECT_EQ(cut, in.values.size());
  CheckTwoWay(original, in, cut, 10000);
}

TEST_P(CrackAlgoBoundaryTest, SubrangeBoundariesUntouched) {
  const KernelInput original = MakeInput(2048, 1000, 29);
  KernelInput in = original;
  const size_t lo = 512, hi = 1536;
  const size_t cut = RunCrack(GetParam(), in, lo, hi, 500);
  EXPECT_GE(cut, lo);
  EXPECT_LE(cut, hi);
  for (size_t i = 0; i < lo; ++i) ASSERT_EQ(in.values[i], original.values[i]);
  for (size_t i = hi; i < in.values.size(); ++i)
    ASSERT_EQ(in.values[i], original.values[i]);
  for (size_t i = lo; i < cut; ++i) ASSERT_LT(in.values[i], 500);
  for (size_t i = cut; i < hi; ++i) ASSERT_GE(in.values[i], 500);
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, CrackAlgoBoundaryTest,
                         ::testing::Values(CrackAlgo::kScalar,
                                           CrackAlgo::kOutOfPlace,
                                           CrackAlgo::kParallel,
                                           CrackAlgo::kSimd),
                         [](const auto& info) {
                           switch (info.param) {
                             case CrackAlgo::kScalar:
                               return "Scalar";
                             case CrackAlgo::kOutOfPlace:
                               return "OutOfPlace";
                             case CrackAlgo::kParallel:
                               return "Parallel";
                             case CrackAlgo::kSimd:
                               return "Simd";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace holix
