/// Tests for the physical reorganization kernels: correctness of every
/// partition kernel over parameterized pivots, sizes and distributions.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "cracking/crack_kernels.h"
#include "cracking/parallel_crack.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace holix {
namespace {

struct KernelInput {
  std::vector<int64_t> values;
  std::vector<RowId> ids;
};

KernelInput MakeInput(size_t n, int64_t domain, uint64_t seed) {
  Rng rng(seed);
  KernelInput in;
  in.values.resize(n);
  in.ids.resize(n);
  for (size_t i = 0; i < n; ++i) {
    in.values[i] = static_cast<int64_t>(rng.Below(domain));
    in.ids[i] = i;
  }
  return in;
}

/// Checks the two-way partition postcondition and multiset preservation.
void CheckTwoWay(const KernelInput& original, const KernelInput& cracked,
                 size_t cut, int64_t pivot) {
  ASSERT_EQ(original.values.size(), cracked.values.size());
  for (size_t i = 0; i < cut; ++i) {
    ASSERT_LT(cracked.values[i], pivot) << "position " << i;
  }
  for (size_t i = cut; i < cracked.values.size(); ++i) {
    ASSERT_GE(cracked.values[i], pivot) << "position " << i;
  }
  // (value, id) pairs must stay together and form the same multiset.
  for (size_t i = 0; i < cracked.values.size(); ++i) {
    ASSERT_EQ(original.values[cracked.ids[i]], cracked.values[i]);
  }
  auto ids_sorted = cracked.ids;
  std::sort(ids_sorted.begin(), ids_sorted.end());
  for (size_t i = 0; i < ids_sorted.size(); ++i) ASSERT_EQ(ids_sorted[i], i);
}

size_t ExpectedCut(const std::vector<int64_t>& v, int64_t pivot) {
  return std::count_if(v.begin(), v.end(),
                       [&](int64_t x) { return x < pivot; });
}

// --- Scalar kernel -----------------------------------------------------

class ScalarKernelTest
    : public ::testing::TestWithParam<std::tuple<size_t, int64_t>> {};

TEST_P(ScalarKernelTest, PartitionsCorrectly) {
  const auto [n, pivot] = GetParam();
  const KernelInput original = MakeInput(n, 1000, n + pivot);
  KernelInput in = original;
  const size_t cut = CrackInTwoScalar(
      in.values.data(), 0, n, pivot, [&](size_t i, size_t j) {
        std::swap(in.values[i], in.values[j]);
        std::swap(in.ids[i], in.ids[j]);
      });
  EXPECT_EQ(cut, ExpectedCut(original.values, pivot));
  CheckTwoWay(original, in, cut, pivot);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ScalarKernelTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 100, 1023, 4096),
                       ::testing::Values(-5, 0, 1, 250, 500, 999, 1000,
                                         2000)));

// --- Out-of-place kernel ------------------------------------------------

class OutOfPlaceKernelTest
    : public ::testing::TestWithParam<std::tuple<size_t, int64_t>> {};

TEST_P(OutOfPlaceKernelTest, PartitionsCorrectly) {
  const auto [n, pivot] = GetParam();
  const KernelInput original = MakeInput(n, 1000, 7 * n + pivot);
  KernelInput in = original;
  CrackScratch<int64_t> scratch;
  const size_t cut = CrackInTwoOutOfPlace(in.values.data(), in.ids.data(), 0,
                                          n, pivot, scratch);
  EXPECT_EQ(cut, ExpectedCut(original.values, pivot));
  CheckTwoWay(original, in, cut, pivot);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OutOfPlaceKernelTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 100, 1023, 4096),
                       ::testing::Values(-5, 0, 1, 250, 500, 999, 1000,
                                         2000)));

TEST(OutOfPlaceKernel, SubrangeOnly) {
  const KernelInput original = MakeInput(1000, 100, 5);
  KernelInput in = original;
  CrackScratch<int64_t> scratch;
  const size_t cut = CrackInTwoOutOfPlace(in.values.data(), in.ids.data(),
                                          size_t{200}, size_t{700},
                                          int64_t{50}, scratch);
  for (size_t i = 0; i < 200; ++i) ASSERT_EQ(in.values[i], original.values[i]);
  for (size_t i = 700; i < 1000; ++i)
    ASSERT_EQ(in.values[i], original.values[i]);
  for (size_t i = 200; i < cut; ++i) ASSERT_LT(in.values[i], 50);
  for (size_t i = cut; i < 700; ++i) ASSERT_GE(in.values[i], 50);
}

// --- Three-way kernel ---------------------------------------------------

class ThreeWayKernelTest
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t>> {};

TEST_P(ThreeWayKernelTest, PartitionsIntoThree) {
  const auto [low, high] = GetParam();
  if (low >= high) GTEST_SKIP();
  const KernelInput original = MakeInput(3000, 1000, low * 31 + high);
  KernelInput in = original;
  const auto [a, b] = CrackInThreeScalar(
      in.values.data(), 0, in.values.size(), low, high,
      [&](size_t i, size_t j) {
        std::swap(in.values[i], in.values[j]);
        std::swap(in.ids[i], in.ids[j]);
      });
  ASSERT_LE(a, b);
  for (size_t i = 0; i < a; ++i) ASSERT_LT(in.values[i], low);
  for (size_t i = a; i < b; ++i) {
    ASSERT_GE(in.values[i], low);
    ASSERT_LT(in.values[i], high);
  }
  for (size_t i = b; i < in.values.size(); ++i) ASSERT_GE(in.values[i], high);
  for (size_t i = 0; i < in.values.size(); ++i) {
    ASSERT_EQ(original.values[in.ids[i]], in.values[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ThreeWayKernelTest,
    ::testing::Combine(::testing::Values(-10, 0, 100, 500, 998),
                       ::testing::Values(1, 101, 500, 999, 1500)));

// --- Parallel kernel ----------------------------------------------------

class ParallelKernelTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(ParallelKernelTest, MatchesSequentialSemantics) {
  const auto [n, threads] = GetParam();
  ThreadPool pool(threads);
  const KernelInput original = MakeInput(n, 1u << 20, n * threads + 3);
  KernelInput in = original;
  const int64_t pivot = 1 << 19;
  const size_t cut =
      ParallelCrackInTwo(in.values.data(), in.ids.data(), 0, n, pivot, pool,
                         threads, /*min_parallel_piece=*/256);
  EXPECT_EQ(cut, ExpectedCut(original.values, pivot));
  CheckTwoWay(original, in, cut, pivot);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelKernelTest,
    ::testing::Combine(::testing::Values(1000, 4096, 65536, 300000),
                       ::testing::Values(1, 2, 3, 4, 8)));

TEST(ParallelKernel, AllValuesBelowPivot) {
  ThreadPool pool(4);
  KernelInput in = MakeInput(10000, 100, 1);
  const size_t cut = ParallelCrackInTwo(in.values.data(), in.ids.data(), 0,
                                        in.values.size(), int64_t{1000}, pool,
                                        4, 256);
  EXPECT_EQ(cut, in.values.size());
}

TEST(ParallelKernel, AllValuesAtOrAbovePivot) {
  ThreadPool pool(4);
  KernelInput in = MakeInput(10000, 100, 2);
  const size_t cut = ParallelCrackInTwo(in.values.data(), in.ids.data(), 0,
                                        in.values.size(), int64_t{-1}, pool,
                                        4, 256);
  EXPECT_EQ(cut, 0u);
}

TEST(ParallelKernel, SubrangePreservesOutside) {
  ThreadPool pool(4);
  const KernelInput original = MakeInput(100000, 1u << 16, 9);
  KernelInput in = original;
  const size_t lo = 10000, hi = 90000;
  const int64_t pivot = 1 << 15;
  ParallelCrackInTwo(in.values.data(), in.ids.data(), lo, hi, pivot, pool, 4,
                     256);
  for (size_t i = 0; i < lo; ++i) ASSERT_EQ(in.values[i], original.values[i]);
  for (size_t i = hi; i < in.values.size(); ++i)
    ASSERT_EQ(in.values[i], original.values[i]);
}

}  // namespace
}  // namespace holix
