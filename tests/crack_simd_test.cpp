/// Tests for the SIMD crack-in-two tier (crack_kernels_simd.h) and the
/// morsel-driven parallel crack.
///
/// The load-bearing property is *bit identity*: for every dispatch level the
/// SIMD kernel must produce exactly the bytes CrackInTwoOutOfPlace produces
/// (values compared with memcmp, so NaN payloads and -0.0 signs count), and
/// the cut must equal the KeyTraits::Less count. That makes kSimd results
/// deterministic across hosts and lets checksums ignore the ISA.

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <thread>
#include <vector>

#include "cracking/crack_kernels.h"
#include "cracking/crack_kernels_simd.h"
#include "cracking/cracker_column.h"
#include "cracking/parallel_crack.h"
#include "obs/metrics.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace holix {
namespace {

/// Every SIMD level this host can execute, portable first.
std::vector<SimdLevel> TestableLevels() {
  std::vector<SimdLevel> levels{SimdLevel::kPortable};
  const int hw = static_cast<int>(DetectHardwareSimdLevel());
  if (hw >= static_cast<int>(SimdLevel::kAvx2))
    levels.push_back(SimdLevel::kAvx2);
  if (hw >= static_cast<int>(SimdLevel::kAvx512))
    levels.push_back(SimdLevel::kAvx512);
  return levels;
}

template <typename T>
std::vector<T> RandomKeys(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<T> v(n);
  for (size_t i = 0; i < n; ++i) {
    const int64_t raw = static_cast<int64_t>(rng.Below(2000)) - 500;
    v[i] = static_cast<T>(raw);
  }
  return v;
}

/// Cracks [lo, hi) with CrackInTwoSimd at every testable level and with
/// CrackInTwoOutOfPlace, and asserts byte-identical arrays + equal cuts.
template <typename T>
void ExpectBitIdenticalToOutOfPlace(const std::vector<T>& values, size_t lo,
                                    size_t hi, T pivot) {
  std::vector<RowId> ids(values.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = 1000 + i;

  std::vector<T> v_ref = values;
  std::vector<RowId> id_ref = ids;
  CrackScratch<T> ref_scratch;
  const size_t cut_ref = CrackInTwoOutOfPlace(v_ref.data(), id_ref.data(), lo,
                                              hi, pivot, ref_scratch);
  size_t expected = lo;
  for (size_t i = lo; i < hi; ++i) {
    expected += KeyTraits<T>::Less(values[i], pivot) ? 1 : 0;
  }
  ASSERT_EQ(cut_ref, expected);

  for (const SimdLevel level : TestableLevels()) {
    std::vector<T> v = values;
    std::vector<RowId> id = ids;
    CrackScratch<T> scratch;
    const size_t cut =
        CrackInTwoSimd(v.data(), id.data(), lo, hi, pivot, scratch, level);
    ASSERT_EQ(cut, cut_ref) << "level=" << SimdLevelName(level) << " n="
                            << (hi - lo) << " lo=" << lo;
    ASSERT_EQ(0, std::memcmp(v.data(), v_ref.data(), v.size() * sizeof(T)))
        << "level=" << SimdLevelName(level) << " n=" << (hi - lo)
        << " lo=" << lo;
    ASSERT_EQ(id, id_ref) << "level=" << SimdLevelName(level);
  }
}

TEST(SimdDispatch, ReportsALevel) {
  const SimdLevel level = DetectSimdLevel();
  ::testing::Test::RecordProperty("simd_level", SimdLevelName(level));
  std::printf("detected SIMD level: %s (hardware: %s)\n",
              SimdLevelName(level),
              SimdLevelName(DetectHardwareSimdLevel()));
  EXPECT_GE(static_cast<int>(level), 0);
  EXPECT_LE(static_cast<int>(level), 2);
}

TEST(SimdDispatch, ParsesLevelNames) {
  EXPECT_EQ(ParseSimdLevel("portable"), SimdLevel::kPortable);
  EXPECT_EQ(ParseSimdLevel("scalar"), SimdLevel::kPortable);
  EXPECT_EQ(ParseSimdLevel("off"), SimdLevel::kPortable);
  EXPECT_EQ(ParseSimdLevel("avx2"), SimdLevel::kAvx2);
  EXPECT_EQ(ParseSimdLevel("avx512"), SimdLevel::kAvx512);
  EXPECT_EQ(ParseSimdLevel("banana"), std::nullopt);
}

template <typename T>
class SimdDifferentialTest : public ::testing::Test {};

using KeyTypes = ::testing::Types<int32_t, int64_t, double>;
TYPED_TEST_SUITE(SimdDifferentialTest, KeyTypes);

// Every vector-width tail: n mod 16 (AVX-512 int32) and n mod 8/4 (all other
// lane counts) sweep 0..15 twice, once for tiny pieces where the whole piece
// is tail and once past a few full vectors.
TYPED_TEST(SimdDifferentialTest, AllTailLengths) {
  using T = TypeParam;
  for (size_t n = 0; n <= 33; ++n) {
    const std::vector<T> values = RandomKeys<T>(n, 11 * n + 1);
    ExpectBitIdenticalToOutOfPlace<T>(values, 0, n, static_cast<T>(400));
  }
  for (size_t n = 240; n <= 257; ++n) {
    const std::vector<T> values = RandomKeys<T>(n, 13 * n + 5);
    ExpectBitIdenticalToOutOfPlace<T>(values, 0, n, static_cast<T>(400));
  }
}

TYPED_TEST(SimdDifferentialTest, UnalignedPieceOffsets) {
  using T = TypeParam;
  const std::vector<T> values = RandomKeys<T>(1024, 97);
  for (const size_t lo : {size_t{1}, size_t{3}, size_t{7}, size_t{9},
                          size_t{15}, size_t{31}}) {
    for (const size_t len : {size_t{0}, size_t{1}, size_t{63}, size_t{777}}) {
      ExpectBitIdenticalToOutOfPlace<T>(values, lo, lo + len,
                                        static_cast<T>(250));
    }
  }
}

TYPED_TEST(SimdDifferentialTest, RandomizedBulkWithDataPivots) {
  using T = TypeParam;
  Rng rng(2026);
  for (int trial = 0; trial < 8; ++trial) {
    const size_t n = 1500 + rng.Below(3000);
    const std::vector<T> values = RandomKeys<T>(n, 31 * trial + 7);
    const T pivot = values[rng.Below(n)];
    ExpectBitIdenticalToOutOfPlace<T>(values, 0, n, pivot);
  }
}

TYPED_TEST(SimdDifferentialTest, AllEqualAndExtremePivots) {
  using T = TypeParam;
  const std::vector<T> values(777, static_cast<T>(42));
  for (const T pivot : {static_cast<T>(41), static_cast<T>(42),
                        static_cast<T>(43)}) {
    ExpectBitIdenticalToOutOfPlace<T>(values, 0, values.size(), pivot);
  }
  const std::vector<T> random = RandomKeys<T>(500, 3);
  ExpectBitIdenticalToOutOfPlace<T>(random, 0, random.size(),
                                    KeyTraits<T>::Lowest());
  ExpectBitIdenticalToOutOfPlace<T>(random, 0, random.size(),
                                    KeyTraits<T>::Highest());
}

// --- Double total-order pins ---------------------------------------------

std::vector<double> SpecialsHeavyDoubles(size_t n, uint64_t seed) {
  const double qnan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  // NaNs with distinct payloads/signs: memcmp-identity means the kernel may
  // not canonicalize them.
  const double payload_nan = std::bit_cast<double>(uint64_t{0x7FF0000000DEAD01});
  const double negative_nan = std::bit_cast<double>(uint64_t{0xFFF8000000000042});
  const double denormal = std::numeric_limits<double>::denorm_min();
  const double specials[] = {qnan,     payload_nan, negative_nan, inf,
                             -inf,     0.0,         -0.0,         denormal,
                             -denormal, 1.5,        -2.25,        1e300};
  Rng rng(seed);
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.Below(3) == 0) {
      v[i] = specials[rng.Below(std::size(specials))];
    } else {
      v[i] = static_cast<double>(static_cast<int64_t>(rng.Below(2000)) - 1000) /
             4.0;
    }
  }
  return v;
}

TEST(SimdDoubleSpecials, BitIdenticalAcrossLevelsForEveryPivot) {
  const std::vector<double> values = SpecialsHeavyDoubles(700, 1907);
  const double pivots[] = {0.0,
                           -0.0,
                           1.5,
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::quiet_NaN()};
  for (const double pivot : pivots) {
    ExpectBitIdenticalToOutOfPlace<double>(values, 0, values.size(), pivot);
    ExpectBitIdenticalToOutOfPlace<double>(values, 5, values.size() - 3,
                                           pivot);
  }
}

TEST(SimdDoubleSpecials, NanPivotCutsBelowAllNans) {
  // NaN ranks above +inf in the engine's total order, so "< NaN" must admit
  // every ordered value (including +inf) and reject every NaN payload.
  const std::vector<double> values = SpecialsHeavyDoubles(333, 4);
  const size_t ordered = static_cast<size_t>(
      std::count_if(values.begin(), values.end(),
                    [](double d) { return d == d; }));
  std::vector<RowId> ids(values.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = i;
  for (const SimdLevel level : TestableLevels()) {
    std::vector<double> v = values;
    std::vector<RowId> id = ids;
    CrackScratch<double> scratch;
    const size_t cut = CrackInTwoSimd(
        v.data(), id.data(), 0, v.size(),
        std::numeric_limits<double>::quiet_NaN(), scratch, level);
    EXPECT_EQ(cut, ordered) << SimdLevelName(level);
    for (size_t i = 0; i < cut; ++i) ASSERT_EQ(v[i], v[i]);
    for (size_t i = cut; i < v.size(); ++i) ASSERT_NE(v[i], v[i]);
  }
}

TEST(SimdDoubleSpecials, NegativeZeroPivotEqualsPositiveZeroPivot) {
  // -0.0 == +0.0 in the total order: both pivots must cut identically.
  const std::vector<double> values = SpecialsHeavyDoubles(256, 9);
  for (const SimdLevel level : TestableLevels()) {
    std::vector<RowId> ids(values.size());
    for (size_t i = 0; i < ids.size(); ++i) ids[i] = i;
    std::vector<double> v_pos = values, v_neg = values;
    std::vector<RowId> id_pos = ids, id_neg = ids;
    CrackScratch<double> s1, s2;
    const size_t cut_pos = CrackInTwoSimd(v_pos.data(), id_pos.data(), 0,
                                          v_pos.size(), 0.0, s1, level);
    const size_t cut_neg = CrackInTwoSimd(v_neg.data(), id_neg.data(), 0,
                                          v_neg.size(), -0.0, s2, level);
    EXPECT_EQ(cut_pos, cut_neg) << SimdLevelName(level);
    EXPECT_EQ(0, std::memcmp(v_pos.data(), v_neg.data(),
                             v_pos.size() * sizeof(double)));
  }
}

// --- Metrics -------------------------------------------------------------

TEST(SimdMetrics, VectorCracksAreCounted) {
  if (static_cast<int>(DetectHardwareSimdLevel()) <
      static_cast<int>(SimdLevel::kAvx2)) {
    GTEST_SKIP() << "no vector tier on this host";
  }
  obs::Counter& ops = obs::MetricsRegistry::Global().GetCounter(
      "holix_crack_simd_ops_total");
  const uint64_t before = ops.Value();
  std::vector<int64_t> v = RandomKeys<int64_t>(4096, 77);
  std::vector<RowId> ids(v.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = i;
  CrackScratch<int64_t> scratch;
  CrackInTwoSimd(v.data(), ids.data(), 0, v.size(), int64_t{100}, scratch);
  EXPECT_GT(ops.Value(), before);
}

// --- Morsel-driven parallel crack ----------------------------------------

template <typename T>
void CheckPartitioned(const std::vector<T>& original,
                      const std::vector<T>& cracked,
                      const std::vector<RowId>& ids, size_t lo, size_t hi,
                      size_t cut, T pivot) {
  ASSERT_GE(cut, lo);
  ASSERT_LE(cut, hi);
  for (size_t i = lo; i < cut; ++i)
    ASSERT_TRUE(KeyTraits<T>::Less(cracked[i], pivot)) << i;
  for (size_t i = cut; i < hi; ++i)
    ASSERT_FALSE(KeyTraits<T>::Less(cracked[i], pivot)) << i;
  // (value, rowid) pairs stay together: position i still holds the value
  // rowid ids[i] was loaded with.
  for (size_t i = 0; i < cracked.size(); ++i)
    ASSERT_EQ(original[ids[i]], cracked[i]);
}

TEST(MorselParallelCrack, ManySmallMorselsMatchOracle) {
  const size_t n = 60000;
  for (const size_t threads : {size_t{2}, size_t{4}, size_t{8}}) {
    for (const size_t morsel_rows : {size_t{64}, size_t{1000}, size_t{1} << 14}) {
      ThreadPool pool(threads);
      std::vector<int64_t> base = RandomKeys<int64_t>(n, threads * 131 + morsel_rows);
      std::vector<int64_t> v = base;
      std::vector<RowId> ids(n);
      for (size_t i = 0; i < n; ++i) ids[i] = i;
      ParallelCrackOptions opts;
      opts.threads = threads;
      opts.min_parallel_piece = 256;
      opts.mode = ParallelCrackMode::kMorsels;
      opts.morsel_rows = morsel_rows;
      const int64_t pivot = 123;
      const size_t cut = ParallelCrackInTwo(v.data(), ids.data(), 0, n, pivot,
                                            pool, opts);
      size_t expected = 0;
      for (const int64_t x : base) expected += x < pivot ? 1 : 0;
      EXPECT_EQ(cut, expected)
          << "threads=" << threads << " morsel_rows=" << morsel_rows;
      CheckPartitioned<int64_t>(base, v, ids, 0, n, cut, pivot);
    }
  }
}

TEST(MorselParallelCrack, StaticSliceModeStillWorks) {
  const size_t n = 50000;
  ThreadPool pool(4);
  std::vector<int64_t> base = RandomKeys<int64_t>(n, 55);
  std::vector<int64_t> v = base;
  std::vector<RowId> ids(n);
  for (size_t i = 0; i < n; ++i) ids[i] = i;
  ParallelCrackOptions opts;
  opts.threads = 4;
  opts.min_parallel_piece = 256;
  opts.mode = ParallelCrackMode::kStaticSlices;
  const int64_t pivot = -100;
  const size_t cut =
      ParallelCrackInTwo(v.data(), ids.data(), 0, n, pivot, pool, opts);
  size_t expected = 0;
  for (const int64_t x : base) expected += x < pivot ? 1 : 0;
  EXPECT_EQ(cut, expected);
  CheckPartitioned<int64_t>(base, v, ids, 0, n, cut, pivot);
}

TEST(MorselParallelCrack, SubrangeWithDoubleSpecials) {
  const size_t n = 40000;
  ThreadPool pool(4);
  std::vector<double> base = SpecialsHeavyDoubles(n, 21);
  std::vector<double> v = base;
  std::vector<RowId> ids(n);
  for (size_t i = 0; i < n; ++i) ids[i] = i;
  ParallelCrackOptions opts;
  opts.threads = 4;
  opts.min_parallel_piece = 256;
  opts.morsel_rows = 500;
  const size_t lo = 1003, hi = n - 777;
  const double pivot = 0.0;
  const size_t cut =
      ParallelCrackInTwo(v.data(), ids.data(), lo, hi, pivot, pool, opts);
  size_t expected = lo;
  for (size_t i = lo; i < hi; ++i)
    expected += KeyTraits<double>::Less(base[i], pivot) ? 1 : 0;
  EXPECT_EQ(cut, expected);
  for (size_t i = 0; i < lo; ++i)
    ASSERT_EQ(std::bit_cast<uint64_t>(v[i]), std::bit_cast<uint64_t>(base[i]));
  for (size_t i = hi; i < n; ++i)
    ASSERT_EQ(std::bit_cast<uint64_t>(v[i]), std::bit_cast<uint64_t>(base[i]));
  for (size_t i = lo; i < cut; ++i)
    ASSERT_TRUE(KeyTraits<double>::Less(v[i], pivot)) << i;
  for (size_t i = cut; i < hi; ++i)
    ASSERT_FALSE(KeyTraits<double>::Less(v[i], pivot)) << i;
}

TEST(MorselParallelCrack, MorselMetricsAdvance) {
  obs::Counter& morsels = obs::MetricsRegistry::Global().GetCounter(
      "holix_crack_morsels_total");
  const uint64_t before = morsels.Value();
  ThreadPool pool(4);
  const size_t n = 30000;
  std::vector<int64_t> v = RandomKeys<int64_t>(n, 5);
  std::vector<RowId> ids(n);
  for (size_t i = 0; i < n; ++i) ids[i] = i;
  ParallelCrackOptions opts;
  opts.threads = 4;
  opts.min_parallel_piece = 256;
  opts.morsel_rows = 1000;
  ParallelCrackInTwo(v.data(), ids.data(), 0, n, int64_t{0}, pool, opts);
  EXPECT_GE(morsels.Value(), before + n / 1000);
}

// --- Morsel cracks racing holistic-style refinement (TSan target) --------

TEST(MorselRace, ParallelSelectsRaceWorkerRefinement) {
  const size_t n = 120000;
  Rng rng(1907);
  std::vector<int64_t> base(n);
  for (size_t i = 0; i < n; ++i)
    base[i] = static_cast<int64_t>(rng.Below(1u << 20));
  CrackerColumn<int64_t> col("race", base);

  ThreadPool crack_pool(3);
  CrackConfig select_cfg;
  select_cfg.algo = CrackAlgo::kParallel;
  select_cfg.pool = &crack_pool;
  select_cfg.parallel_threads = 4;
  select_cfg.min_parallel_piece = 1024;
  select_cfg.morsel_rows = 2048;

  std::atomic<bool> stop{false};
  std::thread refiner([&] {
    Rng wrng(7);
    CrackConfig worker_cfg;
    worker_cfg.algo = CrackAlgo::kSimd;
    while (!stop.load(std::memory_order_acquire)) {
      col.TryRefineAt(static_cast<int64_t>(wrng.Below(1u << 20)), worker_cfg);
    }
  });

  Rng qrng(23);
  for (int q = 0; q < 60; ++q) {
    const int64_t lo = static_cast<int64_t>(qrng.Below(1u << 20));
    const int64_t hi = lo + static_cast<int64_t>(qrng.Below(1u << 18)) + 1;
    const size_t got = col.SelectRange(lo, hi, select_cfg).size();
    size_t expected = 0;
    for (const int64_t x : base) expected += (x >= lo && x < hi) ? 1 : 0;
    ASSERT_EQ(got, expected) << "query " << q << " [" << lo << "," << hi
                             << ")";
  }
  stop.store(true, std::memory_order_release);
  refiner.join();
}

}  // namespace
}  // namespace holix
