/// Unit and property tests for CrackerColumn: select correctness against a
/// naive reference, invariants after arbitrary crack sequences, exact-hit
/// accounting, payload alignment, and result consumption.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "cracking/cracker_column.h"
#include "test_support.h"
#include "util/rng.h"

namespace holix {
namespace {

using test::MakeUniform;
using test::NaiveCount;

TEST(CrackerColumn, EmptyColumn) {
  CrackerColumn<int64_t> col("empty", std::vector<int64_t>{});
  EXPECT_EQ(col.size(), 0u);
  EXPECT_EQ(col.NumPieces(), 1u);
  const PositionRange r = col.SelectRange(0, 100);
  EXPECT_TRUE(r.empty());
}

TEST(CrackerColumn, SingleSelectMatchesNaive) {
  const auto base = MakeUniform(10000, 1000, 1);
  CrackerColumn<int64_t> col("a", base);
  const PositionRange r = col.SelectRange(100, 300);
  EXPECT_EQ(r.size(), NaiveCount(base, 100, 300));
  EXPECT_TRUE(col.CheckInvariants());
}

TEST(CrackerColumn, SelectReturnsOnlyQualifyingValues) {
  const auto base = MakeUniform(5000, 500, 2);
  CrackerColumn<int64_t> col("a", base);
  const PositionRange r = col.SelectRange(50, 200);
  size_t seen = 0;
  col.ScanRange(r, [&](int64_t v, RowId) {
    EXPECT_GE(v, 50);
    EXPECT_LT(v, 200);
    ++seen;
  });
  EXPECT_EQ(seen, r.size());
}

TEST(CrackerColumn, RowIdsPointBackToBaseValues) {
  const auto base = MakeUniform(5000, 500, 3);
  CrackerColumn<int64_t> col("a", base);
  const PositionRange r = col.SelectRange(100, 150);
  col.ScanRange(r, [&](int64_t v, RowId rid) {
    ASSERT_LT(rid, base.size());
    EXPECT_EQ(base[rid], v);
  });
}

TEST(CrackerColumn, RepeatedIdenticalQueryIsExactHit) {
  const auto base = MakeUniform(10000, 1000, 4);
  CrackerColumn<int64_t> col("a", base);
  const PositionRange r1 = col.SelectRange(200, 400);
  const uint64_t cracks_after_first = col.stats().query_cracks.load();
  const PositionRange r2 = col.SelectRange(200, 400);
  EXPECT_EQ(r1.begin, r2.begin);
  EXPECT_EQ(r1.end, r2.end);
  EXPECT_EQ(col.stats().query_cracks.load(), cracks_after_first);
  EXPECT_EQ(col.stats().exact_hits.load(), 1u);
  EXPECT_EQ(col.stats().accesses.load(), 2u);
}

TEST(CrackerColumn, PiecesGrowWithQueries) {
  const auto base = MakeUniform(20000, 1u << 20, 5);
  CrackerColumn<int64_t> col("a", base);
  EXPECT_EQ(col.NumPieces(), 1u);
  col.SelectRange(1000, 2000);
  EXPECT_GE(col.NumPieces(), 2u);
  const size_t before = col.NumPieces();
  col.SelectRange(500000, 600000);
  EXPECT_GT(col.NumPieces(), before);
}

TEST(CrackerColumn, ManyRandomSelectsMatchNaiveAndKeepInvariants) {
  const auto base = MakeUniform(30000, 1u << 20, 6);
  CrackerColumn<int64_t> col("a", base);
  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    const int64_t lo = static_cast<int64_t>(rng.Below(1u << 20));
    const int64_t width = 1 + static_cast<int64_t>(rng.Below(1u << 18));
    const PositionRange r = col.SelectRange(lo, lo + width);
    ASSERT_EQ(r.size(), NaiveCount(base, lo, lo + width)) << "query " << i;
  }
  EXPECT_TRUE(col.CheckInvariants());
}

TEST(CrackerColumn, BoundsOutsideDomain) {
  const auto base = MakeUniform(1000, 100, 7);
  CrackerColumn<int64_t> col("a", base);
  EXPECT_EQ(col.SelectRange(-50, 1000).size(), base.size());
  EXPECT_EQ(col.SelectRange(200, 500).size(), 0u);
  EXPECT_EQ(col.SelectRange(-100, -1).size(), 0u);
  EXPECT_TRUE(col.CheckInvariants());
}

TEST(CrackerColumn, InvertedAndEmptyRanges) {
  const auto base = MakeUniform(1000, 100, 8);
  CrackerColumn<int64_t> col("a", base);
  EXPECT_EQ(col.SelectRange(50, 50).size(), 0u);
  EXPECT_EQ(col.SelectRange(70, 30).size(), 0u);
}

TEST(CrackerColumn, DuplicateHeavyColumn) {
  std::vector<int64_t> base(8000);
  Rng rng(9);
  for (auto& v : base) v = static_cast<int64_t>(rng.Below(4));  // 4 values
  CrackerColumn<int64_t> col("dups", base);
  for (int64_t lo = 0; lo < 4; ++lo) {
    EXPECT_EQ(col.SelectRange(lo, lo + 1).size(),
              NaiveCount(base, lo, lo + 1));
  }
  EXPECT_TRUE(col.CheckInvariants());
}

TEST(CrackerColumn, SumRangeMatchesNaive) {
  const auto base = MakeUniform(10000, 1000, 10);
  CrackerColumn<int64_t> col("a", base);
  int64_t naive = 0;
  for (int64_t v : base) {
    if (v >= 100 && v < 500) naive += v;
  }
  const PositionRange r = col.SelectRange(100, 500);
  EXPECT_EQ(col.SumRange(r), naive);
}

TEST(CrackerColumn, TryRefineCreatesPieces) {
  const auto base = MakeUniform(10000, 1u << 20, 11);
  CrackerColumn<int64_t> col("a", base);
  Rng rng(5);
  size_t refined = 0;
  for (int i = 0; i < 32; ++i) {
    const int64_t pivot = static_cast<int64_t>(rng.Below(1u << 20));
    refined += col.TryRefineAt(pivot) ? 1 : 0;
  }
  EXPECT_GT(refined, 0u);
  EXPECT_EQ(col.NumPieces(), 1 + col.stats().worker_cracks.load());
  EXPECT_TRUE(col.CheckInvariants());
}

TEST(CrackerColumn, RefineAtExistingBoundaryIsNoop) {
  const auto base = MakeUniform(1000, 1000, 12);
  CrackerColumn<int64_t> col("a", base);
  col.SelectRange(100, 200);
  const size_t before = col.NumPieces();
  EXPECT_FALSE(col.TryRefineAt(100));
  EXPECT_FALSE(col.TryRefineAt(200));
  EXPECT_EQ(col.NumPieces(), before);
}

TEST(CrackerColumn, PayloadsStayAligned) {
  const auto base = MakeUniform(5000, 10000, 13);
  std::vector<int64_t> payload(base.size());
  for (size_t i = 0; i < base.size(); ++i) payload[i] = base[i] * 10 + 7;
  CrackerColumn<int64_t> col("a", base);
  col.AttachPayload(payload);
  col.SelectRange(1000, 3000);
  col.SelectRange(4000, 9000);
  for (size_t i = 0; i < col.size(); ++i) {
    EXPECT_EQ(col.PayloadAtUnsafe(0, i), col.ValueAtUnsafe(i) * 10 + 7);
  }
  EXPECT_TRUE(col.CheckInvariants());
}

TEST(CrackerColumn, AttachPayloadAfterCrackThrows) {
  const auto base = MakeUniform(100, 100, 14);
  CrackerColumn<int64_t> col("a", base);
  col.SelectRange(10, 20);
  EXPECT_THROW(col.AttachPayload(std::vector<int64_t>(100, 0)),
               std::logic_error);
}

TEST(CrackerColumn, PieceSizesSumToColumnSize) {
  const auto base = MakeUniform(10000, 1u << 16, 15);
  CrackerColumn<int64_t> col("a", base);
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    col.TryRefineAt(static_cast<int64_t>(rng.Below(1u << 16)));
  }
  const auto sizes = col.PieceSizes();
  size_t total = 0;
  for (size_t s : sizes) total += s;
  EXPECT_EQ(total, col.size());
  EXPECT_EQ(sizes.size(), col.NumPieces());
}

/// Property sweep: every kernel choice must produce identical select
/// results on identical query sequences.
class KernelEquivalenceTest : public ::testing::TestWithParam<CrackAlgo> {};

TEST_P(KernelEquivalenceTest, MatchesNaiveOverRandomQueries) {
  const auto base = MakeUniform(20000, 1u << 18, 21);
  CrackerColumn<int64_t> col("a", base);
  ThreadPool pool(4);
  CrackConfig cfg;
  cfg.algo = GetParam();
  cfg.pool = &pool;
  cfg.parallel_threads = 4;
  cfg.min_parallel_piece = 1024;
  Rng rng(31337);
  for (int i = 0; i < 120; ++i) {
    const int64_t lo = static_cast<int64_t>(rng.Below(1u << 18));
    const int64_t width = 1 + static_cast<int64_t>(rng.Below(1u << 16));
    ASSERT_EQ(col.SelectRange(lo, lo + width, cfg).size(),
              NaiveCount(base, lo, lo + width))
        << "query " << i;
  }
  EXPECT_TRUE(col.CheckInvariants());
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelEquivalenceTest,
                         ::testing::Values(CrackAlgo::kScalar,
                                           CrackAlgo::kOutOfPlace,
                                           CrackAlgo::kParallel));

}  // namespace
}  // namespace holix
