/// Tests for the AVL cracker index: boundary insertion, piece lookup by
/// value and by position, balance, and stability of latch pointers.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "cracking/cracker_index.h"
#include "util/rng.h"

namespace holix {
namespace {

TEST(CrackerIndex, EmptyIndexIsOnePiece) {
  CrackerIndex<int64_t> idx;
  EXPECT_EQ(idx.num_boundaries(), 0u);
  const auto piece = idx.FindPiece(42, 100);
  EXPECT_EQ(piece.begin, 0u);
  EXPECT_EQ(piece.end, 100u);
  EXPECT_FALSE(piece.exact);
  EXPECT_FALSE(piece.lo_value.has_value());
  EXPECT_FALSE(piece.hi_value.has_value());
  EXPECT_EQ(piece.latch, &idx.head_latch());
}

TEST(CrackerIndex, SingleBoundarySplitsDomain) {
  CrackerIndex<int64_t> idx;
  idx.Insert(50, 10);
  const auto below = idx.FindPiece(49, 100);
  EXPECT_EQ(below.begin, 0u);
  EXPECT_EQ(below.end, 10u);
  EXPECT_EQ(*below.hi_value, 50);
  const auto above = idx.FindPiece(51, 100);
  EXPECT_EQ(above.begin, 10u);
  EXPECT_EQ(above.end, 100u);
  EXPECT_EQ(*above.lo_value, 50);
  const auto exact = idx.FindPiece(50, 100);
  EXPECT_TRUE(exact.exact);
  EXPECT_EQ(exact.begin, 10u);
}

TEST(CrackerIndex, DuplicateInsertIsNoop) {
  CrackerIndex<int64_t> idx;
  idx.Insert(50, 10);
  idx.Insert(50, 99);  // ignored
  EXPECT_EQ(idx.num_boundaries(), 1u);
  EXPECT_EQ(idx.FindPiece(50, 100).begin, 10u);
}

TEST(CrackerIndex, HasBoundary) {
  CrackerIndex<int64_t> idx;
  idx.Insert(5, 1);
  idx.Insert(10, 2);
  EXPECT_TRUE(idx.HasBoundary(5));
  EXPECT_TRUE(idx.HasBoundary(10));
  EXPECT_FALSE(idx.HasBoundary(7));
}

TEST(CrackerIndex, InOrderTraversalIsSortedByValue) {
  CrackerIndex<int64_t> idx;
  Rng rng(4);
  std::set<int64_t> inserted;
  for (int i = 0; i < 500; ++i) {
    const int64_t v = static_cast<int64_t>(rng.Below(100000));
    idx.Insert(v, inserted.size());
    inserted.insert(v);
  }
  EXPECT_EQ(idx.num_boundaries(), inserted.size());
  std::vector<int64_t> seen;
  idx.ForEachBoundary(
      [&](CrackerIndex<int64_t>::Node& n) { seen.push_back(n.value); });
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  EXPECT_EQ(seen.size(), inserted.size());
}

TEST(CrackerIndex, LookupMatchesReferenceMap) {
  CrackerIndex<int64_t> idx;
  std::map<int64_t, size_t> ref;  // value -> pos
  Rng rng(5);
  size_t next_pos = 0;
  for (int i = 0; i < 300; ++i) {
    const int64_t v = static_cast<int64_t>(rng.Below(10000));
    if (ref.emplace(v, next_pos).second) {
      idx.Insert(v, next_pos);
      next_pos += 3;
    }
  }
  const size_t column_size = next_pos + 10;
  for (int probe = -5; probe < 10010; probe += 7) {
    const auto piece = idx.FindPiece(probe, column_size);
    auto upper = ref.upper_bound(probe);
    const size_t expect_end =
        upper == ref.end() ? column_size : upper->second;
    size_t expect_begin = 0;
    if (upper != ref.begin()) {
      expect_begin = std::prev(upper)->second;
    }
    ASSERT_EQ(piece.begin, expect_begin) << "probe " << probe;
    ASSERT_EQ(piece.end, expect_end) << "probe " << probe;
    ASSERT_EQ(piece.exact, ref.count(probe) != 0) << "probe " << probe;
  }
}

TEST(CrackerIndex, FindPieceByPositionCoversWholeColumn) {
  CrackerIndex<int64_t> idx;
  // Boundaries at positions 10, 20, 20 (empty piece), 50.
  idx.Insert(100, 10);
  idx.Insert(200, 20);
  idx.Insert(201, 20);
  idx.Insert(300, 50);
  const size_t n = 80;
  for (size_t pos = 0; pos < n; ++pos) {
    const auto piece = idx.FindPieceByPosition(pos, n);
    ASSERT_LE(piece.begin, pos);
    ASSERT_LT(pos, piece.end) << "pos " << pos;
  }
  // Position 25 belongs to [20, 50) whose value floor is 201 (the last
  // boundary at position 20 in value order).
  EXPECT_EQ(*idx.FindPieceByPosition(25, n).lo_value, 201);
}

TEST(CrackerIndex, LatchPointersStableAcrossRebalancing) {
  CrackerIndex<int64_t> idx;
  // Insert ascending values: worst case for AVL rebalancing.
  idx.Insert(0, 0);
  const RwSpinLatch* first_latch = idx.FindPiece(0, 1000).latch;
  for (int64_t v = 1; v < 200; ++v) idx.Insert(v, static_cast<size_t>(v));
  // The node for value 0 must still own the same latch object.
  EXPECT_EQ(idx.FindPiece(0, 1000).latch, first_latch);
}

TEST(CrackerIndex, BalancedDepthUnderAscendingInserts) {
  // With 2^12 ascending inserts an unbalanced BST would be a 4096-deep
  // list; AVL keeps lookups fast. We verify indirectly: lookups on a
  // pathological insertion order still behave (and ForEachBoundary is
  // sorted). Depth itself is internal, so probe a timing-free invariant.
  CrackerIndex<int64_t> idx;
  const size_t n = 4096;
  for (size_t i = 0; i < n; ++i) {
    idx.Insert(static_cast<int64_t>(i), i);
  }
  EXPECT_EQ(idx.num_boundaries(), n);
  for (size_t i = 0; i < n; i += 97) {
    const auto piece = idx.FindPiece(static_cast<int64_t>(i), n);
    EXPECT_TRUE(piece.exact);
    EXPECT_EQ(piece.begin, i);
  }
}

TEST(CrackerIndex, ClearResets) {
  CrackerIndex<int64_t> idx;
  idx.Insert(1, 1);
  idx.Insert(2, 2);
  idx.Clear();
  EXPECT_EQ(idx.num_boundaries(), 0u);
  const auto piece = idx.FindPiece(1, 10);
  EXPECT_EQ(piece.begin, 0u);
  EXPECT_EQ(piece.end, 10u);
}

TEST(CrackerIndex, CollectBoundariesMatchesTraversal) {
  CrackerIndex<int64_t> idx;
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    idx.Insert(static_cast<int64_t>(rng.Below(1000)), i);
  }
  auto nodes = idx.CollectBoundaries();
  EXPECT_EQ(nodes.size(), idx.num_boundaries());
  for (size_t i = 1; i < nodes.size(); ++i) {
    EXPECT_LT(nodes[i - 1]->value, nodes[i]->value);
  }
}

}  // namespace
}  // namespace holix
