/// Typed tests: the cracking stack must behave identically for int32,
/// int64 and double key columns (the engine instantiates all three;
/// doubles order through the KeyTraits<double> total order).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "cracking/cracker_column.h"
#include "cracking/cracker_index.h"
#include "util/rng.h"

namespace holix {
namespace {

template <typename T>
class TypedCrackerTest : public ::testing::Test {
 protected:
  static std::vector<T> MakeUniform(size_t n, int64_t domain, uint64_t seed) {
    Rng rng(seed);
    std::vector<T> v(n);
    for (auto& x : v) x = static_cast<T>(rng.Below(domain));
    return v;
  }

  static size_t NaiveCount(const std::vector<T>& v, T lo, T hi) {
    size_t c = 0;
    for (T x : v) c += (x >= lo && x < hi) ? 1 : 0;
    return c;
  }
};

using KeyTypes = ::testing::Types<int32_t, int64_t, double>;
TYPED_TEST_SUITE(TypedCrackerTest, KeyTypes);

TYPED_TEST(TypedCrackerTest, SelectMatchesNaive) {
  const auto base = this->MakeUniform(50000, 1 << 20, 1);
  CrackerColumn<TypeParam> col("a", base);
  Rng rng(2);
  for (int i = 0; i < 80; ++i) {
    const TypeParam lo = static_cast<TypeParam>(rng.Below(1 << 20));
    const TypeParam hi =
        static_cast<TypeParam>(std::min<int64_t>((1 << 20), lo + 1 + rng.Below(1 << 16)));
    ASSERT_EQ(col.SelectRange(lo, hi).size(), this->NaiveCount(base, lo, hi));
  }
  EXPECT_TRUE(col.CheckInvariants());
}

TYPED_TEST(TypedCrackerTest, RefineAndInvariants) {
  const auto base = this->MakeUniform(30000, 1 << 16, 3);
  CrackerColumn<TypeParam> col("a", base);
  Rng rng(4);
  size_t cracks = 0;
  for (int i = 0; i < 200; ++i) {
    cracks += col.TryRefineAt(static_cast<TypeParam>(rng.Below(1 << 16)))
                  ? 1
                  : 0;
  }
  EXPECT_GT(cracks, 100u);
  EXPECT_EQ(col.NumPieces(), cracks + 1);
  EXPECT_TRUE(col.CheckInvariants());
}

TYPED_TEST(TypedCrackerTest, ExtremeDomainValues) {
  using KT = KeyTraits<TypeParam>;
  // Lowest() is INT_MIN for the integer types, -inf for double; `top` is
  // numeric max (DBL_MAX for double), `below_top` its total-order
  // predecessor (max-1, or nextdown(DBL_MAX)).
  const TypeParam lo = KT::Lowest();
  const TypeParam top = std::numeric_limits<TypeParam>::max();
  const TypeParam below_top = KT::FromRank(KT::ToRank(top) - 1);
  std::vector<TypeParam> base = {lo, -1, 0, 1, below_top, top};
  CrackerColumn<TypeParam> col("a", base);
  EXPECT_EQ(col.SelectRange(lo, top).size(), 5u);  // everything except top
  EXPECT_EQ(col.SelectRangeClosed(lo, KT::Highest()).size(), 6u);
  EXPECT_EQ(col.SelectRange(0, 2).size(), 2u);
  EXPECT_TRUE(col.CheckInvariants());
}

TYPED_TEST(TypedCrackerTest, CrackerIndexLookups) {
  CrackerIndex<TypeParam> idx;
  idx.Insert(10, 5);
  idx.Insert(20, 9);
  const auto piece = idx.FindPiece(15, 100);
  EXPECT_EQ(piece.begin, 5u);
  EXPECT_EQ(piece.end, 9u);
  EXPECT_EQ(*piece.lo_value, 10);
  EXPECT_EQ(*piece.hi_value, 20);
}

TYPED_TEST(TypedCrackerTest, RippleInsertTyped) {
  const auto base = this->MakeUniform(5000, 1000, 5);
  CrackerColumn<TypeParam> col("a", base);
  col.SelectRange(200, 600);
  const size_t before = col.SelectRange(300, 310).size();
  col.pending().AddInsert(static_cast<TypeParam>(305), 99999);
  col.MergePendingInRange(static_cast<TypeParam>(300),
                          static_cast<TypeParam>(310));
  EXPECT_EQ(col.SelectRange(300, 310).size(), before + 1);
  EXPECT_TRUE(col.CheckInvariants());
}

// --- double-only total-order semantics at the cracking layer -------------

TEST(DoubleCrackerSemantics, SpecialKeysOrderAndSelect) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> base = {nan, -kInf, -0.0, 0.0, 1.5, kInf, 3.25};
  CrackerColumn<double> col("d", base);
  // -0.0 and +0.0 are the same key.
  EXPECT_EQ(col.SelectRange(0.0, 1.0).size(), 2u);
  // A half-open high at the NaN key selects everything below it.
  EXPECT_EQ(col.SelectRange(-kInf, KeyTraits<double>::Highest()).size(), 6u);
  // The closed tail reaches the NaN key itself.
  EXPECT_EQ(col.SelectRangeClosed(-kInf, KeyTraits<double>::Highest()).size(),
            7u);
  EXPECT_EQ(col.SelectRangeClosed(nan, nan).size(), 1u);
  // +inf is an ordinary orderable key just below NaN.
  EXPECT_EQ(col.SelectRange(kInf, KeyTraits<double>::Highest()).size(), 1u);
  EXPECT_TRUE(col.CheckInvariants());
}

TEST(DoubleCrackerSemantics, NaNRowsNeverWedgeTheKernels) {
  // A column salted with NaNs must crack to a consistent piece structure
  // with every kernel (with raw `<` the Hoare kernel would spin or tear).
  Rng rng(7);
  std::vector<double> base(20000);
  for (size_t i = 0; i < base.size(); ++i) {
    base[i] = (i % 97 == 0) ? std::numeric_limits<double>::quiet_NaN()
                            : static_cast<double>(rng.Below(1 << 16)) + 0.25;
  }
  const size_t nans = (base.size() + 96) / 97;
  for (CrackAlgo algo :
       {CrackAlgo::kScalar, CrackAlgo::kOutOfPlace, CrackAlgo::kParallel}) {
    CrackerColumn<double> col("d", base);
    CrackConfig cfg;
    cfg.algo = algo;
    for (int i = 0; i < 60; ++i) {
      const double lo = static_cast<double>(rng.Below(1 << 16));
      const double hi = lo + 1.0 + static_cast<double>(rng.Below(1 << 12));
      size_t naive = 0;
      for (double x : base) {
        if (!(x != x) && x >= lo && x < hi) ++naive;
      }
      ASSERT_EQ(col.SelectRange(lo, hi, cfg).size(), naive);
    }
    // All NaNs sit in the closed tail above +inf.
    EXPECT_EQ(col.SelectRangeClosed(std::numeric_limits<double>::infinity(),
                                    KeyTraits<double>::Highest())
                  .size(),
              nans);
    EXPECT_TRUE(col.CheckInvariants());
  }
}

}  // namespace
}  // namespace holix
