/// Typed tests: the cracking stack must behave identically for int32 and
/// int64 key columns (the engine instantiates both).

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "cracking/cracker_column.h"
#include "cracking/cracker_index.h"
#include "util/rng.h"

namespace holix {
namespace {

template <typename T>
class TypedCrackerTest : public ::testing::Test {
 protected:
  static std::vector<T> MakeUniform(size_t n, int64_t domain, uint64_t seed) {
    Rng rng(seed);
    std::vector<T> v(n);
    for (auto& x : v) x = static_cast<T>(rng.Below(domain));
    return v;
  }

  static size_t NaiveCount(const std::vector<T>& v, T lo, T hi) {
    size_t c = 0;
    for (T x : v) c += (x >= lo && x < hi) ? 1 : 0;
    return c;
  }
};

using KeyTypes = ::testing::Types<int32_t, int64_t>;
TYPED_TEST_SUITE(TypedCrackerTest, KeyTypes);

TYPED_TEST(TypedCrackerTest, SelectMatchesNaive) {
  const auto base = this->MakeUniform(50000, 1 << 20, 1);
  CrackerColumn<TypeParam> col("a", base);
  Rng rng(2);
  for (int i = 0; i < 80; ++i) {
    const TypeParam lo = static_cast<TypeParam>(rng.Below(1 << 20));
    const TypeParam hi =
        static_cast<TypeParam>(std::min<int64_t>((1 << 20), lo + 1 + rng.Below(1 << 16)));
    ASSERT_EQ(col.SelectRange(lo, hi).size(), this->NaiveCount(base, lo, hi));
  }
  EXPECT_TRUE(col.CheckInvariants());
}

TYPED_TEST(TypedCrackerTest, RefineAndInvariants) {
  const auto base = this->MakeUniform(30000, 1 << 16, 3);
  CrackerColumn<TypeParam> col("a", base);
  Rng rng(4);
  size_t cracks = 0;
  for (int i = 0; i < 200; ++i) {
    cracks += col.TryRefineAt(static_cast<TypeParam>(rng.Below(1 << 16)))
                  ? 1
                  : 0;
  }
  EXPECT_GT(cracks, 100u);
  EXPECT_EQ(col.NumPieces(), cracks + 1);
  EXPECT_TRUE(col.CheckInvariants());
}

TYPED_TEST(TypedCrackerTest, ExtremeDomainValues) {
  std::vector<TypeParam> base = {std::numeric_limits<TypeParam>::min(),
                                 -1,
                                 0,
                                 1,
                                 std::numeric_limits<TypeParam>::max() - 1,
                                 std::numeric_limits<TypeParam>::max()};
  CrackerColumn<TypeParam> col("a", base);
  EXPECT_EQ(col.SelectRange(std::numeric_limits<TypeParam>::min(),
                            std::numeric_limits<TypeParam>::max())
                .size(),
            5u);  // everything except max itself
  EXPECT_EQ(col.SelectRange(0, 2).size(), 2u);
  EXPECT_TRUE(col.CheckInvariants());
}

TYPED_TEST(TypedCrackerTest, CrackerIndexLookups) {
  CrackerIndex<TypeParam> idx;
  idx.Insert(10, 5);
  idx.Insert(20, 9);
  const auto piece = idx.FindPiece(15, 100);
  EXPECT_EQ(piece.begin, 5u);
  EXPECT_EQ(piece.end, 9u);
  EXPECT_EQ(*piece.lo_value, 10);
  EXPECT_EQ(*piece.hi_value, 20);
}

TYPED_TEST(TypedCrackerTest, RippleInsertTyped) {
  const auto base = this->MakeUniform(5000, 1000, 5);
  CrackerColumn<TypeParam> col("a", base);
  col.SelectRange(200, 600);
  const size_t before = col.SelectRange(300, 310).size();
  col.pending().AddInsert(static_cast<TypeParam>(305), 99999);
  col.MergePendingInRange(static_cast<TypeParam>(300),
                          static_cast<TypeParam>(310));
  EXPECT_EQ(col.SelectRange(300, 310).size(), before + 1);
  EXPECT_TRUE(col.CheckInvariants());
}

}  // namespace
}  // namespace holix
