/// End-to-end engine tests: every execution mode must answer identical
/// range counts, holistic mode must refine in the background, updates must
/// be visible, and the storage budget must evict indices.

#include <gtest/gtest.h>

#include <thread>

#include "engine/database.h"
#include "harness/runner.h"
#include "test_support.h"
#include "workload/workload.h"

namespace holix {
namespace {

using test::NaiveCount;

constexpr int64_t kDomain = 1 << 20;
constexpr size_t kRows = 100000;

class ExecModeTest : public ::testing::TestWithParam<ExecMode> {};

TEST_P(ExecModeTest, CountsMatchNaiveReference) {
  DatabaseOptions opts;
  opts.mode = GetParam();
  opts.user_threads = 4;
  opts.total_cores = 8;
  opts.online_observation_window = 10;
  Database db(opts);
  const auto data = GenerateUniformColumn(kRows, kDomain, 11);
  db.LoadColumn("r", "a", data);

  Rng rng(22);
  for (int i = 0; i < 60; ++i) {
    const int64_t lo = static_cast<int64_t>(rng.Below(kDomain));
    const int64_t width = 1 + static_cast<int64_t>(rng.Below(kDomain / 4));
    ASSERT_EQ(db.CountRange("r", "a", lo, lo + width),
              NaiveCount(data, lo, lo + width))
        << ExecModeName(GetParam()) << " query " << i;
  }
}

TEST_P(ExecModeTest, SumAndRowIdsConsistent) {
  DatabaseOptions opts;
  opts.mode = GetParam();
  opts.user_threads = 2;
  opts.total_cores = 4;
  opts.online_observation_window = 2;
  Database db(opts);
  const auto data = GenerateUniformColumn(20000, kDomain, 12);
  db.LoadColumn("r", "a", data);

  int64_t naive_sum = 0;
  size_t naive_count = 0;
  for (int64_t v : data) {
    if (v >= 1000 && v < 500000) {
      naive_sum += v;
      ++naive_count;
    }
  }
  EXPECT_EQ(db.SumRange("r", "a", 1000, 500000), naive_sum);
  const PositionList rows = db.SelectRowIds("r", "a", 1000, 500000);
  EXPECT_EQ(rows.size(), naive_count);
  for (RowId r : rows) {
    ASSERT_GE(data[r], 1000);
    ASSERT_LT(data[r], 500000);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, ExecModeTest,
    ::testing::Values(ExecMode::kScan, ExecMode::kOffline, ExecMode::kOnline,
                      ExecMode::kAdaptive, ExecMode::kStochastic,
                      ExecMode::kCCGI, ExecMode::kHolistic),
    [](const auto& info) { return ExecModeName(info.param); });

TEST(Database, ModeNames) {
  EXPECT_STREQ(ExecModeName(ExecMode::kScan), "scan");
  EXPECT_STREQ(ExecModeName(ExecMode::kHolistic), "holistic");
}

TEST(Database, CcgiPrePartitionsOnFirstQuery) {
  DatabaseOptions opts;
  opts.mode = ExecMode::kCCGI;
  opts.user_threads = 4;
  opts.ccgi_chunks = 8;
  Database db(opts);
  db.LoadColumn("r", "a", GenerateUniformColumn(kRows, kDomain, 13));
  db.CountRange("r", "a", 100, 200);
  // 8 coarse chunks plus the query's own cracks.
  EXPECT_GE(db.TotalIndexPieces(), 8u);
}

TEST(Database, HolisticRefinesInBackground) {
  DatabaseOptions opts;
  opts.mode = ExecMode::kHolistic;
  opts.user_threads = 2;
  opts.total_cores = 8;
  opts.holistic.max_workers = 4;
  opts.holistic.monitor_interval_seconds = 0.001;
  Database db(opts);
  db.LoadColumn("r", "a", GenerateUniformColumn(500000, kDomain, 14));
  db.CountRange("r", "a", 100, 200);  // creates the index (C_actual)
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_GT(db.holistic()->TotalWorkerCracks(), 0u);
  EXPECT_GT(db.TotalIndexPieces(), 3u);
  // The index is either still being refined (actual) or has already
  // converged to optimal status — both mean holistic indexing worked.
  EXPECT_EQ(db.holistic()->store().Count(ConfigKind::kActual) +
                db.holistic()->store().Count(ConfigKind::kOptimal),
            1u);
}

TEST(Database, SeedPotentialIndexRefinedBeforeQueries) {
  DatabaseOptions opts;
  opts.mode = ExecMode::kHolistic;
  opts.user_threads = 1;
  opts.total_cores = 4;
  opts.holistic.monitor_interval_seconds = 0.001;
  Database db(opts);
  const auto data = GenerateUniformColumn(500000, kDomain, 15);
  db.LoadColumn("r", "a", data);
  db.SeedPotentialIndex("r", "a");
  EXPECT_EQ(db.holistic()->store().Count(ConfigKind::kPotential), 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_GT(db.TotalIndexPieces(), 2u);  // refined while idle
  // First query promotes it (unless it already converged to optimal) and
  // still answers correctly.
  EXPECT_EQ(db.CountRange("r", "a", 5000, 90000),
            NaiveCount(data, 5000, 90000));
  EXPECT_EQ(db.holistic()->store().Count(ConfigKind::kActual) +
                db.holistic()->store().Count(ConfigKind::kOptimal),
            1u);
  EXPECT_EQ(db.holistic()->store().Count(ConfigKind::kPotential), 0u);
}

TEST(Database, InsertsVisibleAfterMerge) {
  DatabaseOptions opts;
  opts.mode = ExecMode::kAdaptive;
  Database db(opts);
  const auto data = GenerateUniformColumn(10000, 1000, 16);
  db.LoadColumn("r", "a", data);
  const size_t before = db.CountRange("r", "a", 400, 410);
  db.Insert("r", "a", 405);
  db.Insert("r", "a", 405);
  EXPECT_EQ(db.CountRange("r", "a", 400, 410), before + 2);
}

TEST(Database, DeleteRemovesRow) {
  DatabaseOptions opts;
  opts.mode = ExecMode::kAdaptive;
  Database db(opts);
  db.LoadColumn("r", "a", GenerateUniformColumn(10000, 1000, 17));
  db.Insert("r", "a", 777000);  // outside base domain: uniquely ours
  EXPECT_EQ(db.CountRange("r", "a", 777000, 777001), 1u);
  EXPECT_TRUE(db.Delete("r", "a", 777000));
  EXPECT_EQ(db.CountRange("r", "a", 777000, 777001), 0u);
  EXPECT_FALSE(db.Delete("r", "a", 777000));
}

TEST(Database, UpdatesRejectedInScanMode) {
  DatabaseOptions opts;
  opts.mode = ExecMode::kScan;
  Database db(opts);
  db.LoadColumn("r", "a", {1, 2, 3});
  EXPECT_THROW(db.Insert("r", "a", 5), std::logic_error);
}

TEST(Database, StorageBudgetEvictsColdIndices) {
  DatabaseOptions opts;
  opts.mode = ExecMode::kHolistic;
  opts.user_threads = 1;
  opts.total_cores = 2;
  // Each index: 20000 rows * 16 B = 320 KB. Budget: two indices.
  opts.holistic.storage_budget_bytes = 700 * 1024;
  Database db(opts);
  for (int i = 0; i < 3; ++i) {
    db.LoadColumn("r", "a" + std::to_string(i),
                  GenerateUniformColumn(20000, kDomain, 18 + i));
  }
  db.CountRange("r", "a0", 10, 100000);
  db.CountRange("r", "a0", 10, 100000);  // a0 is hot
  db.CountRange("r", "a1", 10, 20);
  db.CountRange("r", "a2", 10, 20);  // must evict someone
  EXPECT_LE(db.holistic()->store().TotalBytes(),
            opts.holistic.storage_budget_bytes);
  EXPECT_LE(db.NumAdaptiveIndices(), 2u);
  // Queries on evicted columns still answer correctly (index rebuilt).
  const auto data = GenerateUniformColumn(20000, kDomain, 19);
  db.LoadColumn("r", "fresh", data);
  EXPECT_EQ(db.CountRange("r", "fresh", 100, 5000),
            NaiveCount(data, 100, 5000));
}

TEST(Database, MultiClientHolisticConsistency) {
  DatabaseOptions opts;
  opts.mode = ExecMode::kHolistic;
  opts.user_threads = 2;
  opts.total_cores = 8;
  opts.holistic.monitor_interval_seconds = 0.001;
  Database db(opts);
  const auto data = GenerateUniformColumn(200000, kDomain, 20);
  db.LoadColumn("r", "a", data);
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(100 + c);
      for (int i = 0; i < 50; ++i) {
        const int64_t lo = static_cast<int64_t>(rng.Below(kDomain));
        const int64_t width = 1 + static_cast<int64_t>(rng.Below(kDomain / 8));
        if (db.CountRange("r", "a", lo, lo + width) !=
            NaiveCount(data, lo, lo + width)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(Database, OfflinePrepareSortsAllColumns) {
  DatabaseOptions opts;
  opts.mode = ExecMode::kOffline;
  opts.user_threads = 4;
  Database db(opts);
  const auto a = GenerateUniformColumn(50000, kDomain, 21);
  const auto b = GenerateUniformColumn(50000, kDomain, 22);
  db.LoadColumn("r", "a", a);
  db.LoadColumn("r", "b", b);
  db.PrepareOfflineIndexes();
  EXPECT_EQ(db.CountRange("r", "a", 100, 90000), NaiveCount(a, 100, 90000));
  EXPECT_EQ(db.CountRange("r", "b", 100, 90000), NaiveCount(b, 100, 90000));
}

}  // namespace
}  // namespace holix
