/// Handle/session/registry engine-API tests: int32 and double attributes
/// through the public facade (load, crack, retire to C_optimal), handle
/// invalidation after DropTable, concurrent sessions issuing mixed reads
/// and inserts, async submission, executor-per-mode parity against the
/// naive reference (the same oracle the seed database_test uses), and the
/// pinned double total-order semantics (NaN / -0.0 / ±inf, closed-bound
/// upgrades at the order's top, max(double) pending-update merges).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <future>
#include <limits>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "test_support.h"
#include "util/cache_info.h"
#include "workload/workload.h"

namespace holix {
namespace {

using test::NaiveCount;

constexpr int64_t kDomain = 1 << 20;

template <typename T>
std::vector<T> UniformTyped(size_t n, int64_t domain, uint64_t seed) {
  Rng rng(seed);
  std::vector<T> v(n);
  for (auto& x : v) x = static_cast<T>(rng.Below(domain));
  return v;
}

template <typename T>
size_t NaiveCountTyped(const std::vector<T>& v, int64_t lo, int64_t hi) {
  size_t c = 0;
  for (T x : v) {
    c += (static_cast<int64_t>(x) >= lo && static_cast<int64_t>(x) < hi) ? 1
                                                                         : 0;
  }
  return c;
}

template <typename T>
int64_t NaiveSumTyped(const std::vector<T>& v, int64_t lo, int64_t hi) {
  int64_t s = 0;
  for (T x : v) {
    if (static_cast<int64_t>(x) >= lo && static_cast<int64_t>(x) < hi) {
      s += static_cast<int64_t>(x);
    }
  }
  return s;
}

TEST(EngineApi, Int32ColumnThroughFacade) {
  DatabaseOptions opts;
  opts.mode = ExecMode::kAdaptive;
  opts.user_threads = 2;
  Database db(opts);
  const auto data = UniformTyped<int32_t>(50000, kDomain, 31);
  db.LoadColumn("r", "a", data);

  Rng rng(32);
  for (int i = 0; i < 30; ++i) {
    const int64_t lo = static_cast<int64_t>(rng.Below(kDomain));
    const int64_t width = 1 + static_cast<int64_t>(rng.Below(kDomain / 4));
    ASSERT_EQ(db.CountRange("r", "a", lo, lo + width),
              NaiveCountTyped(data, lo, lo + width))
        << "int32 query " << i;
  }
  EXPECT_EQ(db.SumRange("r", "a", 1000, 500000),
            NaiveSumTyped(data, 1000, 500000));
  EXPECT_GT(db.TotalIndexPieces(), 1u);  // the int32 attribute cracked
  EXPECT_EQ(db.NumAdaptiveIndices(), 1u);

  // Bounds wider than the int32 domain clamp instead of overflowing.
  EXPECT_EQ(db.CountRange("r", "a", -(int64_t{1} << 40), int64_t{1} << 40),
            data.size());
}

TEST(EngineApi, Int32MixedWithInt64InOneTable) {
  DatabaseOptions opts;
  opts.mode = ExecMode::kAdaptive;
  Database db(opts);
  const auto a32 = UniformTyped<int32_t>(20000, kDomain, 33);
  const auto b64 = test::MakeUniform(20000, kDomain, 34);
  db.LoadColumn("r", "a32", a32);
  db.LoadColumn("r", "b64", b64);

  // Late reconstruction across element types: select on the int32
  // attribute, project the int64 one (and vice versa).
  const ColumnHandle ha = db.Resolve("r", "a32");
  const ColumnHandle hb = db.Resolve("r", "b64");
  int64_t naive_ab = 0, naive_ba = 0;
  for (size_t i = 0; i < a32.size(); ++i) {
    if (a32[i] >= 100 && a32[i] < 90000) naive_ab += b64[i];
    if (b64[i] >= 100 && b64[i] < 90000) naive_ba += a32[i];
  }
  EXPECT_EQ(db.ProjectSum(ha, hb, 100, 90000), naive_ab);
  EXPECT_EQ(db.ProjectSum(hb, ha, 100, 90000), naive_ba);
}

TEST(EngineApi, Int32RetiresToOptimalThroughFacade) {
  // Shrink |L1| so the int32 attribute reaches optimal status (average
  // piece <= L1 elements) within a handful of queries.
  OverrideL1DataCacheBytes(32 * 1024);  // 8192 int32 elements
  DatabaseOptions opts;
  opts.mode = ExecMode::kHolistic;
  opts.user_threads = 1;
  opts.total_cores = 2;
  opts.holistic.monitor_interval_seconds = 0.001;
  Database db(opts);
  const auto data = UniformTyped<int32_t>(50000, kDomain, 35);
  db.LoadColumn("r", "a", data);

  Rng rng(36);
  bool optimal = false;
  for (int i = 0; i < 200 && !optimal; ++i) {
    const int64_t lo = static_cast<int64_t>(rng.Below(kDomain));
    const int64_t width = 1 + static_cast<int64_t>(rng.Below(kDomain / 8));
    ASSERT_EQ(db.CountRange("r", "a", lo, lo + width),
              NaiveCountTyped(data, lo, lo + width));
    optimal = db.holistic()->store().Count(ConfigKind::kOptimal) == 1;
  }
  EXPECT_TRUE(optimal) << "int32 index never retired to C_optimal";
  EXPECT_EQ(db.holistic()->store().KindOf("r.a"), ConfigKind::kOptimal);
  // Retired indices still answer correctly.
  EXPECT_EQ(db.CountRange("r", "a", 5000, 90000),
            NaiveCountTyped(data, 5000, 90000));
  OverrideL1DataCacheBytes(0);
}

TEST(EngineApi, HandleQueriesMatchNameQueries) {
  DatabaseOptions opts;
  opts.mode = ExecMode::kAdaptive;
  Database db(opts);
  const auto data = test::MakeUniform(30000, kDomain, 37);
  db.LoadColumn("r", "a", data);
  const ColumnHandle h = db.Resolve("r", "a");
  ASSERT_TRUE(h.valid());
  EXPECT_EQ(h.key(), "r.a");
  EXPECT_EQ(h.type(), ValueType::kInt64);
  EXPECT_EQ(db.CountRange(h, 100, 90000), NaiveCount(data, 100, 90000));
  EXPECT_EQ(db.CountRange(h, 100, 90000), db.CountRange("r", "a", 100, 90000));
  EXPECT_EQ(db.SumRange(h, 100, 90000), db.SumRange("r", "a", 100, 90000));
  EXPECT_EQ(db.SelectRowIds(h, 100, 90000).size(),
            NaiveCount(data, 100, 90000));
}

TEST(EngineApi, HandleInvalidationAfterDropTable) {
  DatabaseOptions opts;
  opts.mode = ExecMode::kAdaptive;
  Database db(opts);
  db.LoadColumn("r", "a", test::MakeUniform(10000, kDomain, 38));
  ColumnHandle h = db.Resolve("r", "a");
  ASSERT_TRUE(h.valid());
  ASSERT_GT(db.CountRange(h, 0, kDomain), 0u);

  db.DropTable("r");
  EXPECT_FALSE(h.valid());
  EXPECT_THROW(db.CountRange(h, 0, kDomain), std::logic_error);
  EXPECT_THROW(db.Resolve("r", "a"), std::out_of_range);
  EXPECT_EQ(db.NumAdaptiveIndices(), 0u);

  // Reloading the same names yields a fresh, working attribute; the stale
  // handle stays invalid.
  const auto fresh = test::MakeUniform(5000, kDomain, 39);
  db.LoadColumn("r", "a", fresh);
  EXPECT_FALSE(h.valid());
  EXPECT_EQ(db.CountRange("r", "a", 100, 90000),
            NaiveCount(fresh, 100, 90000));
}

TEST(EngineApi, DropTableRemovesFromHolisticStore) {
  DatabaseOptions opts;
  opts.mode = ExecMode::kHolistic;
  opts.user_threads = 1;
  opts.total_cores = 2;
  opts.holistic.monitor_interval_seconds = 0.001;
  Database db(opts);
  db.LoadColumn("r", "a", test::MakeUniform(20000, kDomain, 40));
  db.CountRange("r", "a", 100, 200);  // registers r.a in the store
  ASSERT_TRUE(db.holistic()->store().Contains("r.a"));
  db.DropTable("r");
  EXPECT_FALSE(db.holistic()->store().Contains("r.a"));
}

TEST(EngineApi, SessionCachesHandlesAndAnswersQueries) {
  DatabaseOptions opts;
  opts.mode = ExecMode::kStochastic;
  opts.user_threads = 1;
  Database db(opts);
  const auto data = test::MakeUniform(30000, kDomain, 41);
  db.LoadColumn("r", "a", data);
  Session s = db.OpenSession();
  const ColumnHandle h1 = s.Handle("r", "a");
  const ColumnHandle h2 = s.Handle("r", "a");
  EXPECT_EQ(h1.entry(), h2.entry());  // cached, not re-resolved
  Rng rng(42);
  for (int i = 0; i < 20; ++i) {
    const int64_t lo = static_cast<int64_t>(rng.Below(kDomain));
    const int64_t width = 1 + static_cast<int64_t>(rng.Below(kDomain / 4));
    ASSERT_EQ(s.CountRange(h1, lo, lo + width),
              NaiveCount(data, lo, lo + width));
  }
}

TEST(EngineApi, ConcurrentSessionsMixedReadsAndInserts) {
  DatabaseOptions opts;
  opts.mode = ExecMode::kAdaptive;
  opts.user_threads = 1;
  Database db(opts);
  const auto data = test::MakeUniform(50000, kDomain, 43);
  db.LoadColumn("r", "a", data);

  // Each client session inserts into its own value band (outside the base
  // domain) while all clients read shared ranges concurrently.
  constexpr int kClients = 4;
  constexpr int kInsertsPerClient = 50;
  constexpr int64_t kBandBase = int64_t{1} << 21;
  std::atomic<int> read_failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Session session = db.OpenSession();
      const ColumnHandle h = session.Handle("r", "a");
      Rng rng(500 + c);
      for (int i = 0; i < kInsertsPerClient; ++i) {
        session.Insert(h, kBandBase + c * 1000 + i);
        const int64_t lo = static_cast<int64_t>(rng.Below(kDomain));
        const int64_t width =
            1 + static_cast<int64_t>(rng.Below(kDomain / 8));
        if (session.CountRange(h, lo, lo + width) !=
            NaiveCount(data, lo, lo + width)) {
          read_failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(read_failures.load(), 0);
  // Every insert is visible in its band.
  Session verify = db.OpenSession();
  const ColumnHandle h = verify.Handle("r", "a");
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(verify.CountRange(h, kBandBase + c * 1000,
                                kBandBase + c * 1000 + kInsertsPerClient),
              static_cast<size_t>(kInsertsPerClient))
        << "client " << c;
  }
}

TEST(EngineApi, AsyncSubmitThroughClientPool) {
  DatabaseOptions opts;
  opts.mode = ExecMode::kAdaptive;
  opts.user_threads = 1;
  Database db(opts);
  const auto data = test::MakeUniform(30000, kDomain, 44);
  db.LoadColumn("r", "a", data);
  Session s = db.OpenSession();
  const ColumnHandle h = s.Handle("r", "a");
  std::vector<std::future<size_t>> counts;
  std::vector<std::pair<int64_t, int64_t>> ranges;
  Rng rng(45);
  for (int i = 0; i < 16; ++i) {
    const int64_t lo = static_cast<int64_t>(rng.Below(kDomain));
    const int64_t hi = lo + 1 + static_cast<int64_t>(rng.Below(kDomain / 4));
    ranges.emplace_back(lo, hi);
    counts.push_back(s.SubmitCountRange(h, lo, hi));
  }
  for (size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(counts[i].get(),
              NaiveCount(data, ranges[i].first, ranges[i].second))
        << "async query " << i;
  }
}

// ---------------------------------------------------------------------------
// Double-keyed attributes through the facade (the typed-core refactor
// lifted the "kDouble columns are storage-only" limitation).
// ---------------------------------------------------------------------------

constexpr double kInf = std::numeric_limits<double>::infinity();
const double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Uniform doubles in [0, domain) with genuine fractional parts — the
/// same substrate the bench harness loads (workload.h).
std::vector<double> UniformDoubles(size_t n, int64_t domain, uint64_t seed) {
  return GenerateUniformDoubleColumn(n, domain, seed);
}

size_t NaiveCountF64(const std::vector<double>& v, double lo, double hi,
                     bool closed = false) {
  using KT = KeyTraits<double>;
  size_t c = 0;
  for (double x : v) {
    const bool hit = !KT::Less(x, lo) &&
                     (closed ? !KT::Less(hi, x) : KT::Less(x, hi));
    c += hit ? 1 : 0;
  }
  return c;
}

double NaiveSumF64(const std::vector<double>& v, double lo, double hi) {
  using KT = KeyTraits<double>;
  double s = 0;
  for (double x : v) {
    if (!KT::Less(x, lo) && KT::Less(x, hi)) s += x;
  }
  return s;
}

TEST(EngineApi, DoubleColumnQueryableInEveryMode) {
  const auto data = UniformDoubles(40000, kDomain, 52);
  for (ExecMode mode :
       {ExecMode::kScan, ExecMode::kOffline, ExecMode::kOnline,
        ExecMode::kAdaptive, ExecMode::kStochastic, ExecMode::kCCGI,
        ExecMode::kHolistic}) {
    DatabaseOptions opts;
    opts.mode = mode;
    opts.user_threads = 2;
    opts.total_cores = 4;
    opts.online_observation_window = 4;
    Database db(opts);
    db.LoadColumn<double>("r", "price", data);
    const char* name = ExecModeName(mode);
    const ColumnHandle h = db.Resolve("r", "price");
    EXPECT_EQ(h.type(), ValueType::kDouble) << name;
    Rng rng(53);
    for (int i = 0; i < 25; ++i) {
      const double lo = static_cast<double>(rng.Below(kDomain)) * 0.875;
      const double hi = lo + 1.0 + static_cast<double>(rng.Below(kDomain / 4));
      ASSERT_EQ(db.CountRangeF64(h, lo, hi), NaiveCountF64(data, lo, hi))
          << name << " query " << i;
      // Double sums are order-dependent in the last ulps; compare with a
      // relative tolerance.
      const double naive = NaiveSumF64(data, lo, hi);
      EXPECT_NEAR(db.SumRangeF64(h, lo, hi), naive,
                  1e-9 * std::max(1.0, std::abs(naive)))
          << name << " query " << i;
    }
    // Whole-domain: the closed upgrade at hi == the NaN key covers +inf
    // and NaN rows too (none here, so it equals the row count).
    EXPECT_EQ(db.CountRangeF64(h, -kInf, kNaN), data.size()) << name;
    // int64 bounds clamp exactly onto the double domain.
    EXPECT_EQ(db.CountRange(h, 100, 90000),
              NaiveCountF64(data, 100.0, 90000.0))
        << name;
  }
}

TEST(EngineApi, DoubleRetiresToOptimalThroughFacade) {
  // load -> crack -> C_optimal on a double attribute: shrink |L1| so the
  // average piece (in BYTES) dips below it within a handful of queries.
  OverrideL1DataCacheBytes(64 * 1024);
  DatabaseOptions opts;
  opts.mode = ExecMode::kHolistic;
  opts.user_threads = 1;
  opts.total_cores = 2;
  opts.holistic.monitor_interval_seconds = 0.001;
  Database db(opts);
  const auto data = UniformDoubles(50000, kDomain, 54);
  db.LoadColumn<double>("r", "price", data);

  Rng rng(55);
  bool optimal = false;
  for (int i = 0; i < 300 && !optimal; ++i) {
    const double lo = static_cast<double>(rng.Below(kDomain));
    const double hi = lo + 1.0 + static_cast<double>(rng.Below(kDomain / 8));
    ASSERT_EQ(db.CountRangeF64("r", "price", lo, hi),
              NaiveCountF64(data, lo, hi));
    optimal = db.holistic()->store().Count(ConfigKind::kOptimal) == 1;
  }
  EXPECT_TRUE(optimal) << "double index never retired to C_optimal";
  EXPECT_EQ(db.holistic()->store().KindOf("r.price"), ConfigKind::kOptimal);
  EXPECT_EQ(db.CountRangeF64("r", "price", 5000.0, 90000.0),
            NaiveCountF64(data, 5000.0, 90000.0));
  OverrideL1DataCacheBytes(0);
}

TEST(EngineApi, DoubleSpecialKeysInsertThenSelect) {
  // NaN / -0.0 / +inf semantics, pinned: NaN is one key above +inf, -0.0
  // and +0.0 are the same key, and an exclusive high at the NaN key
  // upgrades to the closed bound (so [NaN, NaN] selects the NaN rows).
  DatabaseOptions opts;
  opts.mode = ExecMode::kAdaptive;
  Database db(opts);
  db.LoadColumn<double>("r", "price", UniformDoubles(5000, 1000, 56));
  const ColumnHandle h = db.Resolve("r", "price");

  db.InsertF64(h, kNaN);
  db.InsertF64(h, -0.0);
  db.InsertF64(h, kInf);

  // The NaN row: countable only through the closed upgrade, absent from
  // every half-open range below the order's top.
  EXPECT_EQ(db.CountRangeF64(h, kNaN, kNaN), 1u);
  // Half-open below the top excludes both +inf and NaN, includes -0.0.
  EXPECT_EQ(db.CountRangeF64(h, 0.0, kInf), 5001u);
  EXPECT_EQ(db.CountRangeF64(h, kInf, kNaN), 2u);  // +inf row and NaN row
  // -0.0 == +0.0: the inserted -0.0 is counted by [0.0, 1.0).
  EXPECT_EQ(db.CountRangeF64(h, 0.0, 1.0),
            NaiveCountF64(UniformDoubles(5000, 1000, 56), 0.0, 1.0) + 1);
  // Whole order: base rows + the three specials.
  EXPECT_EQ(db.CountRangeF64(h, -kInf, kNaN), 5003u);

  // Delete them again — the closed unit select reaches every key,
  // including the order's top; deleting +0.0 removes the -0.0 row (same
  // key).
  EXPECT_TRUE(db.DeleteF64(h, kNaN));
  EXPECT_FALSE(db.DeleteF64(h, kNaN));  // only one NaN row existed
  EXPECT_TRUE(db.DeleteF64(h, kInf));
  EXPECT_TRUE(db.DeleteF64(h, 0.0));
  EXPECT_EQ(db.CountRangeF64(h, -kInf, kNaN), 5000u);
}

TEST(EngineApi, DoubleMaxPendingMergeThroughClosedTail) {
  // Pending rows holding max(double) (and the NaN key above it) must be
  // merged by the closed-tail path — an exclusive high cannot express the
  // order's top, so a half-open approximation would leave them parked.
  constexpr double kMax = std::numeric_limits<double>::max();
  DatabaseOptions opts;
  opts.mode = ExecMode::kAdaptive;
  Database db(opts);
  db.LoadColumn<double>("r", "price", UniformDoubles(5000, 1000, 57));
  const ColumnHandle h = db.Resolve("r", "price");
  db.CountRangeF64(h, 100.0, 200.0);  // build + crack the index
  db.InsertF64(h, kMax);
  db.InsertF64(h, kMax);
  db.InsertF64(h, kNaN);
  // The closed tail [kMax, NaN] merges and counts all three pending rows.
  EXPECT_EQ(db.CountRangeF64(h, kMax, kNaN), 3u);
  // The unit range at max(double) is expressible half-open as [max, +inf)
  // — every double key has a total-order successor.
  EXPECT_EQ(db.CountRangeF64(h, kMax, kInf), 2u);
  EXPECT_TRUE(db.DeleteF64(h, kMax));
  EXPECT_EQ(db.CountRangeF64(h, kMax, kNaN), 2u);
}

TEST(EngineApi, DoubleConcurrentSessionsMixedReadsAndInserts) {
  DatabaseOptions opts;
  opts.mode = ExecMode::kAdaptive;
  opts.user_threads = 1;
  Database db(opts);
  const auto data = UniformDoubles(50000, kDomain, 58);
  db.LoadColumn<double>("r", "price", data);

  // Each client inserts into its own fractional band above the base
  // domain while every client reads shared ranges concurrently.
  constexpr int kClients = 4;
  constexpr int kInsertsPerClient = 50;
  constexpr double kBandBase = static_cast<double>(int64_t{1} << 21);
  std::atomic<int> read_failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Session session = db.OpenSession();
      const ColumnHandle h = session.Handle("r", "price");
      Rng rng(600 + c);
      for (int i = 0; i < kInsertsPerClient; ++i) {
        session.InsertF64(h, kBandBase + c * 1000.0 + i + 0.5);
        const double lo = static_cast<double>(rng.Below(kDomain));
        const double hi =
            lo + 1.0 + static_cast<double>(rng.Below(kDomain / 8));
        if (session.CountRangeF64(h, lo, hi) != NaiveCountF64(data, lo, hi)) {
          read_failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(read_failures.load(), 0);
  Session verify = db.OpenSession();
  const ColumnHandle h = verify.Handle("r", "price");
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(verify.CountRangeF64(h, kBandBase + c * 1000.0,
                                   kBandBase + c * 1000.0 + kInsertsPerClient),
              static_cast<size_t>(kInsertsPerClient))
        << "client " << c;
  }
}

TEST(EngineApi, DoubleBoundsOnIntegerColumns) {
  // The reverse clamp: f64 bounds against an int64 column use exact
  // ceil/floor arithmetic (fractional bounds tighten inward, an integral
  // exclusive high excludes itself, and a high above the integer range —
  // +inf or the NaN key — degrades to the closed bound at max).
  DatabaseOptions opts;
  opts.mode = ExecMode::kAdaptive;
  Database db(opts);
  const auto data = test::MakeUniform(30000, kDomain, 61);
  db.LoadColumn("r", "a", data);
  const ColumnHandle h = db.Resolve("r", "a");
  EXPECT_EQ(db.CountRangeF64(h, 100.5, 200.5), NaiveCount(data, 101, 201));
  EXPECT_EQ(db.CountRangeF64(h, 100.0, 200.0), NaiveCount(data, 100, 200));
  EXPECT_EQ(db.CountRangeF64(h, 0.0, kInf), data.size());
  EXPECT_EQ(db.CountRangeF64(h, -kInf, kNaN), data.size());
  EXPECT_EQ(db.CountRangeF64(h, kNaN, kNaN), 0u);  // NaN lo: above all ints
  // Updates: integral doubles convert, fractional ones are rejected.
  EXPECT_THROW(db.InsertF64(h, 2.5), std::out_of_range);
  db.InsertF64(h, static_cast<double>(kDomain) + 3.0);
  EXPECT_EQ(db.CountRange(h, kDomain, kDomain + 10), 1u);
  EXPECT_FALSE(db.DeleteF64(h, static_cast<double>(kDomain) + 3.5));
  EXPECT_TRUE(db.DeleteF64(h, static_cast<double>(kDomain) + 3.0));
}

TEST(EngineApi, DoubleProjectSumAcrossTypes) {
  DatabaseOptions opts;
  opts.mode = ExecMode::kAdaptive;
  Database db(opts);
  const auto prices = UniformDoubles(20000, kDomain, 59);
  const auto keys = test::MakeUniform(20000, kDomain, 60);
  db.LoadColumn<double>("r", "price", prices);
  db.LoadColumn("r", "k", keys);
  const ColumnHandle hp = db.Resolve("r", "price");
  const ColumnHandle hk = db.Resolve("r", "k");
  double naive_kp = 0;
  int64_t naive_pk = 0;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (keys[i] >= 100 && keys[i] < 90000) naive_kp += prices[i];
    if (prices[i] >= 100.0 && prices[i] < 90000.0) naive_pk += keys[i];
  }
  // Select on the int64 attribute, project the double one: f64 result.
  const double kp = db.ProjectSumF64(hk, hp, 100.0, 90000.0);
  EXPECT_NEAR(kp, naive_kp, 1e-9 * std::max(1.0, std::abs(naive_kp)));
  // Select on the double attribute, project the int64 one: exact i64.
  EXPECT_EQ(db.ProjectSum(hp, hk, 100, 90000), naive_pk);
}

// The closed-bound select primitive: rows holding exactly INT32_MAX are
// selectable through the int64 facade in every execution mode (an int64
// exclusive high beyond the type max degrades to the closed bound
// [lo, max(T)] instead of saturating exclusively below it).
TEST(EngineApi, Int32MaxSelectableThroughInt64Facade) {
  constexpr int32_t kMax = std::numeric_limits<int32_t>::max();
  for (ExecMode mode :
       {ExecMode::kScan, ExecMode::kOffline, ExecMode::kOnline,
        ExecMode::kAdaptive, ExecMode::kStochastic, ExecMode::kCCGI,
        ExecMode::kHolistic}) {
    DatabaseOptions opts;
    opts.mode = mode;
    opts.user_threads = 2;
    opts.total_cores = 4;
    opts.online_observation_window = 4;
    Database db(opts);
    auto data = UniformTyped<int32_t>(20000, kDomain, 50);
    constexpr size_t kMaxRows = 7;
    for (size_t i = 0; i < kMaxRows; ++i) data[i * 100] = kMax;
    db.LoadColumn("r", "a", data);
    const char* name = ExecModeName(mode);
    // Unit range [kMax, kMax + 1) — expressible only via the closed bound.
    EXPECT_EQ(db.CountRange("r", "a", kMax, int64_t{kMax} + 1), kMaxRows)
        << name;
    // A whole-domain query covers the boundary rows too.
    EXPECT_EQ(db.CountRange("r", "a", 0, int64_t{1} << 40), data.size())
        << name;
    EXPECT_EQ(db.SelectRowIds(db.Resolve("r", "a"), kMax, int64_t{kMax} + 1)
                  .size(),
              kMaxRows)
        << name;
    EXPECT_EQ(db.SumRange("r", "a", kMax, int64_t{kMax} + 1),
              static_cast<int64_t>(kMaxRows) * kMax)
        << name;
    // Exercise the closed path again after cracking/sorting refined state.
    EXPECT_EQ(db.CountRange("r", "a", kMax - 10, int64_t{1} << 40),
              NaiveCountTyped(data, kMax - 10, int64_t{1} << 40))
        << name;
  }
}

// With the closed unit select, a row holding the element type's maximum is
// insertable AND deletable through the facade (formerly an accepted
// limitation: [max, max+1) was inexpressible).
TEST(EngineApi, Int32MaxInsertAndDelete) {
  DatabaseOptions opts;
  opts.mode = ExecMode::kAdaptive;
  Database db(opts);
  constexpr int32_t kMax = std::numeric_limits<int32_t>::max();
  db.LoadColumn("r", "a", UniformTyped<int32_t>(5000, 1000, 51));
  EXPECT_EQ(db.CountRange("r", "a", kMax, int64_t{kMax} + 1), 0u);
  db.Insert("r", "a", kMax);
  EXPECT_EQ(db.CountRange("r", "a", kMax, int64_t{kMax} + 1), 1u);
  EXPECT_TRUE(db.Delete("r", "a", kMax));
  EXPECT_EQ(db.CountRange("r", "a", kMax, int64_t{kMax} + 1), 0u);
  EXPECT_FALSE(db.Delete("r", "a", kMax));  // nothing left to delete
}

TEST(EngineApi, Int32InsertOutOfDomainThrows) {
  DatabaseOptions opts;
  opts.mode = ExecMode::kAdaptive;
  Database db(opts);
  db.LoadColumn("r", "a", UniformTyped<int32_t>(1000, 1000, 46));
  EXPECT_THROW(db.Insert("r", "a", int64_t{1} << 40), std::out_of_range);
  const size_t before = db.CountRange("r", "a", 400, 410);
  db.Insert("r", "a", 405);
  EXPECT_EQ(db.CountRange("r", "a", 400, 410), before + 1);
  EXPECT_TRUE(db.Delete("r", "a", 405));
  EXPECT_EQ(db.CountRange("r", "a", 400, 410), before);
}

/// Executor-per-mode parity: every strategy object answers the same counts
/// as the naive reference over the handle-based path (the seed
/// database_test covers the name-based path; together they pin the
/// refactor to the old facade's results).
class ExecutorModeParityTest : public ::testing::TestWithParam<ExecMode> {};

TEST_P(ExecutorModeParityTest, HandleCountsMatchNaive) {
  DatabaseOptions opts;
  opts.mode = GetParam();
  opts.user_threads = 2;
  opts.total_cores = 4;
  opts.online_observation_window = 10;
  Database db(opts);
  const auto data = test::MakeUniform(60000, kDomain, 47);
  db.LoadColumn("r", "a", data);
  Session s = db.OpenSession();
  const ColumnHandle h = s.Handle("r", "a");
  Rng rng(48);
  for (int i = 0; i < 40; ++i) {
    const int64_t lo = static_cast<int64_t>(rng.Below(kDomain));
    const int64_t width = 1 + static_cast<int64_t>(rng.Below(kDomain / 4));
    ASSERT_EQ(s.CountRange(h, lo, lo + width),
              NaiveCount(data, lo, lo + width))
        << ExecModeName(GetParam()) << " query " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, ExecutorModeParityTest,
    ::testing::Values(ExecMode::kScan, ExecMode::kOffline, ExecMode::kOnline,
                      ExecMode::kAdaptive, ExecMode::kStochastic,
                      ExecMode::kCCGI, ExecMode::kHolistic),
    [](const auto& info) { return ExecModeName(info.param); });

}  // namespace
}  // namespace holix
