/// Tests for the experiment harness: response series math (cumulative
/// curves, decade breakdowns), table formatting, and the workload runner.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "engine/database.h"
#include "harness/report.h"
#include "harness/runner.h"
#include "test_support.h"

namespace holix {
namespace {

using ReportCsvTest = test::TempDirTest;

TEST_F(ReportCsvTest, SaveCsvRoundTripsCellsAndQuoting) {
  ReportTable table("t");
  table.SetHeader({"name", "value"});
  table.AddRow({"plain", "1"});
  table.AddRow({"comma,cell", "quote\"cell"});
  const auto path = TempPath("table.csv");
  ASSERT_TRUE(table.SaveCsv(path.string()));
  std::ifstream in(path);
  std::stringstream got;
  got << in.rdbuf();
  EXPECT_EQ(got.str(),
            "name,value\n"
            "plain,1\n"
            "\"comma,cell\",\"quote\"\"cell\"\n");
}

TEST_F(ReportCsvTest, SaveCsvFailsOnUnwritablePath) {
  ReportTable table("t");
  table.SetHeader({"a"});
  EXPECT_FALSE(table.SaveCsv((temp_dir() / "no_dir" / "x.csv").string()));
}

TEST_F(ReportCsvTest, SaveJsonEscapesAndStructures) {
  ReportTable table("fig \"x\"");
  table.SetHeader({"clients", "seconds"});
  table.AddRow({"1", "0.5"});
  table.AddRow({"quote\"cell", "line\nbreak"});
  const auto path = TempPath("table.json");
  ASSERT_TRUE(table.SaveJson(path.string()));
  std::ifstream in(path);
  std::stringstream got;
  got << in.rdbuf();
  const std::string s = got.str();
  EXPECT_NE(s.find("\"title\": \"fig \\\"x\\\"\""), std::string::npos);
  EXPECT_NE(s.find("\"generated_unix\": "), std::string::npos);
  EXPECT_NE(s.find("[\"clients\", \"seconds\"]"), std::string::npos);
  EXPECT_NE(s.find("[\"1\", \"0.5\"]"), std::string::npos);
  EXPECT_NE(s.find("\"quote\\\"cell\""), std::string::npos);
  EXPECT_NE(s.find("\"line\\nbreak\""), std::string::npos);
}

TEST_F(ReportCsvTest, SaveJsonFailsOnUnwritablePath) {
  ReportTable table("t");
  table.SetHeader({"a"});
  EXPECT_FALSE(table.SaveJson((temp_dir() / "no_dir" / "x.json").string()));
}

TEST(ResponseSeries, TotalsAndCumulative) {
  ResponseSeries s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.Total(), 10.0);
  EXPECT_DOUBLE_EQ(s.CumulativeAt(0), 0.0);
  EXPECT_DOUBLE_EQ(s.CumulativeAt(2), 3.0);
  EXPECT_DOUBLE_EQ(s.CumulativeAt(100), 10.0);  // clamped
}

TEST(ResponseSeries, DecadeBreakdown) {
  ResponseSeries s;
  for (int i = 0; i < 1000; ++i) s.Add(1.0);
  const auto b = s.DecadeBreakdown();
  ASSERT_EQ(b.size(), 4u);
  EXPECT_DOUBLE_EQ(b[0], 1.0);    // query 1
  EXPECT_DOUBLE_EQ(b[1], 9.0);    // queries 2..10
  EXPECT_DOUBLE_EQ(b[2], 90.0);   // queries 11..100
  EXPECT_DOUBLE_EQ(b[3], 900.0);  // queries 101..1000
}

TEST(ResponseSeries, DecadeBreakdownPartial) {
  ResponseSeries s;
  for (int i = 0; i < 42; ++i) s.Add(0.5);
  const auto b = s.DecadeBreakdown();
  ASSERT_EQ(b.size(), 3u);
  EXPECT_DOUBLE_EQ(b[0] + b[1] + b[2], 21.0);
}

TEST(ResponseSeries, LogSpacedCurveMarks) {
  ResponseSeries s;
  for (int i = 0; i < 1000; ++i) s.Add(1.0);
  const auto curve = s.LogSpacedCurve();
  std::vector<size_t> marks;
  for (const auto& [k, cum] : curve) {
    marks.push_back(k);
    EXPECT_DOUBLE_EQ(cum, static_cast<double>(k));
  }
  EXPECT_EQ(marks, (std::vector<size_t>{1, 2, 5, 10, 20, 50, 100, 200, 500,
                                        1000}));
}

TEST(ResponseSeries, LogSpacedCurveIncludesLastPoint) {
  ResponseSeries s;
  for (int i = 0; i < 37; ++i) s.Add(1.0);
  const auto curve = s.LogSpacedCurve();
  EXPECT_EQ(curve.back().first, 37u);
}

TEST(Report, FormatHelpers) {
  EXPECT_EQ(FormatSeconds(1.23456), "1.2346");
  EXPECT_EQ(FormatDouble(2.5, 1), "2.5");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(Report, TablePrintsWithoutCrashing) {
  ReportTable t("test table");
  t.SetHeader({"col1", "a-much-wider-column"});
  t.AddRow({"x", "y"});
  t.AddRow({"long-cell-value", "z"});
  t.Print();  // visual; just must not crash or leak
}

TEST(Runner, MakeAttributeNames) {
  const auto names = MakeAttributeNames(3);
  EXPECT_EQ(names, (std::vector<std::string>{"a0", "a1", "a2"}));
}

TEST(Runner, RunWorkloadCountsQueries) {
  DatabaseOptions opts;
  opts.mode = ExecMode::kAdaptive;
  Database db(opts);
  LoadUniformTable(db, "r", 2, 20000, 1 << 16, 5);

  WorkloadSpec spec;
  spec.num_queries = 25;
  spec.num_attributes = 2;
  spec.domain = 1 << 16;
  spec.selectivity = 0.01;
  const auto queries = GenerateWorkload(spec);
  const RunResult r = RunWorkload(db, "r", MakeAttributeNames(2), queries);
  EXPECT_EQ(r.series.size(), 25u);
  EXPECT_GT(r.result_checksum, 0u);
}

TEST(Runner, ConcurrentAndSequentialAgree) {
  WorkloadSpec spec;
  spec.num_queries = 40;
  spec.num_attributes = 2;
  spec.domain = 1 << 16;
  spec.selectivity = 0.01;
  const auto queries = GenerateWorkload(spec);

  uint64_t sequential_checksum;
  {
    DatabaseOptions opts;
    opts.mode = ExecMode::kAdaptive;
    Database db(opts);
    LoadUniformTable(db, "r", 2, 20000, 1 << 16, 6);
    sequential_checksum =
        RunWorkload(db, "r", MakeAttributeNames(2), queries).result_checksum;
  }
  {
    DatabaseOptions opts;
    opts.mode = ExecMode::kAdaptive;
    opts.user_threads = 2;
    Database db(opts);
    LoadUniformTable(db, "r", 2, 20000, 1 << 16, 6);
    const double wall = RunWorkloadConcurrent(db, "r", MakeAttributeNames(2),
                                              queries, 4);
    EXPECT_GT(wall, 0.0);
    // Re-running sequentially on the already-cracked database must agree.
    EXPECT_EQ(
        RunWorkload(db, "r", MakeAttributeNames(2), queries).result_checksum,
        sequential_checksum);
  }
}

}  // namespace
}  // namespace holix
