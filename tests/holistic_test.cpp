/// Tests for the holistic core: mutable heap, Equation-1 distance,
/// strategies W1-W4, the statistics store (configurations, promotion,
/// optimal transitions, LFU budget eviction), CPU monitors, and the
/// engine's tuning cycle.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>

#include "holistic/adaptive_index.h"
#include "holistic/cpu_monitor.h"
#include "holistic/holistic_engine.h"
#include "holistic/mutable_heap.h"
#include "holistic/stats_store.h"
#include "holistic/strategy.h"
#include "test_support.h"
#include "util/cache_info.h"
#include "util/rng.h"

namespace holix {
namespace {

using test::DriveUntil;
using test::MakeIndex;
using test::WaitForProgress;

// --- MutableMaxHeap -----------------------------------------------------

TEST(MutableMaxHeap, PushTopErase) {
  MutableMaxHeap<std::string> h;
  const auto a = h.Push(1.0, "a");
  const auto b = h.Push(3.0, "b");
  const auto c = h.Push(2.0, "c");
  EXPECT_EQ(h.size(), 3u);
  EXPECT_EQ(h.PayloadOf(h.Top()), "b");
  h.Erase(b);
  EXPECT_EQ(h.PayloadOf(h.Top()), "c");
  h.Erase(c);
  EXPECT_EQ(h.PayloadOf(h.Top()), "a");
  h.Erase(a);
  EXPECT_TRUE(h.empty());
}

TEST(MutableMaxHeap, UpdateMovesEntries) {
  MutableMaxHeap<int> h;
  const auto a = h.Push(1.0, 1);
  const auto b = h.Push(2.0, 2);
  EXPECT_EQ(h.PayloadOf(h.Top()), 2);
  h.Update(a, 10.0);
  EXPECT_EQ(h.PayloadOf(h.Top()), 1);
  h.Update(a, 0.5);
  EXPECT_EQ(h.PayloadOf(h.Top()), 2);
  EXPECT_DOUBLE_EQ(h.WeightOf(b), 2.0);
}

TEST(MutableMaxHeap, HandleReuseAfterErase) {
  MutableMaxHeap<int> h;
  auto a = h.Push(1, 1);
  h.Erase(a);
  auto b = h.Push(2, 2);  // may reuse the slot
  EXPECT_EQ(h.PayloadOf(b), 2);
  EXPECT_EQ(h.size(), 1u);
}

TEST(MutableMaxHeap, StressAgainstReference) {
  MutableMaxHeap<int> h;
  std::vector<std::pair<double, MutableMaxHeap<int>::Handle>> live;
  Rng rng(9);
  for (int round = 0; round < 2000; ++round) {
    const int op = static_cast<int>(rng.Below(3));
    if (op == 0 || live.empty()) {
      const double w = static_cast<double>(rng.Below(100000));
      live.push_back({w, h.Push(w, round)});
    } else if (op == 1) {
      const size_t k = rng.Below(live.size());
      const double w = static_cast<double>(rng.Below(100000));
      h.Update(live[k].second, w);
      live[k].first = w;
    } else {
      const size_t k = rng.Below(live.size());
      h.Erase(live[k].second);
      live.erase(live.begin() + k);
    }
    if (!live.empty()) {
      double max_w = -1;
      for (const auto& [w, _] : live) max_w = std::max(max_w, w);
      ASSERT_DOUBLE_EQ(h.WeightOf(h.Top()), max_w) << "round " << round;
    } else {
      ASSERT_TRUE(h.empty());
    }
  }
}

// --- AdaptiveIndex / Equation (1) ---------------------------------------

TEST(AdaptiveIndex, DistanceShrinksWithRefinement) {
  OverrideL1DataCacheBytes(8 * 64);  // 64 elements of int64 fit in "L1"
  auto idx = MakeIndex("r.a", 6400);
  const double d0 = idx->DistanceToOptimal();
  // Distance is accounted in bytes since the typed-core refactor: one
  // 6400-element int64 piece is 6400*8 bytes, minus the 512-byte "L1".
  EXPECT_NEAR(d0, 6400.0 * 8.0 - 512.0, 1e-9);
  Rng rng(3);
  CrackConfig cfg;
  while (!idx->IsOptimal()) {
    idx->RefineAtRandomPivot(rng, cfg);
  }
  // 6400 rows / 64-elem pieces -> optimal at >= 100 pieces.
  EXPECT_GE(idx->NumPieces(), 100u);
  EXPECT_DOUBLE_EQ(idx->DistanceToOptimal(), 0.0);
  OverrideL1DataCacheBytes(0);
}

TEST(AdaptiveIndex, SizeBytesAccountsValueAndRowid) {
  auto idx = MakeIndex("r.a", 1000);
  EXPECT_EQ(idx->SizeBytes(), 1000u * 16u);
}

// --- Strategies ----------------------------------------------------------

TEST(Strategy, WeightsFollowDefinitions) {
  OverrideL1DataCacheBytes(8 * 64);
  auto idx = MakeIndex("r.a", 6400);
  auto& col = *idx->column();
  col.SelectRange(100, 200);   // access 1 (cracks)
  col.SelectRange(100, 200);   // access 2 (exact hit)
  const double d = idx->DistanceToOptimal();
  EXPECT_GT(d, 0);
  EXPECT_DOUBLE_EQ(ComputeWeight(*idx, Strategy::kW1), d);
  EXPECT_DOUBLE_EQ(ComputeWeight(*idx, Strategy::kW2), 2 * d);
  EXPECT_DOUBLE_EQ(ComputeWeight(*idx, Strategy::kW3), (2 - 1) * d);
  OverrideL1DataCacheBytes(0);
}

TEST(Strategy, Names) {
  EXPECT_STREQ(StrategyName(Strategy::kW1), "W1");
  EXPECT_STREQ(StrategyName(Strategy::kW4), "W4");
}

// --- StatsStore ----------------------------------------------------------

TEST(StatsStore, RegisterAndConfigurations) {
  StatsStore store(Strategy::kW1);
  store.Register(MakeIndex("r.a"), ConfigKind::kActual);
  store.Register(MakeIndex("r.b"), ConfigKind::kPotential);
  EXPECT_EQ(store.Count(ConfigKind::kActual), 1u);
  EXPECT_EQ(store.Count(ConfigKind::kPotential), 1u);
  EXPECT_TRUE(store.Contains("r.a"));
  EXPECT_EQ(store.KindOf("r.b"), ConfigKind::kPotential);
  EXPECT_THROW(store.KindOf("r.z"), std::out_of_range);
}

TEST(StatsStore, PickPrefersActualMaxWeight) {
  StatsStore store(Strategy::kW1);
  store.Register(MakeIndex("small", 1000, 1), ConfigKind::kActual);
  store.Register(MakeIndex("big", 50000, 2), ConfigKind::kActual);
  Rng rng(1);
  // W1 weight = distance ~ rows/pieces; "big" dominates.
  EXPECT_EQ(store.PickForRefinement(rng)->name(), "big");
}

TEST(StatsStore, PickFallsBackToPotential) {
  StatsStore store(Strategy::kW1);
  store.Register(MakeIndex("p1"), ConfigKind::kPotential);
  Rng rng(2);
  auto picked = store.PickForRefinement(rng);
  ASSERT_NE(picked, nullptr);
  EXPECT_EQ(picked->name(), "p1");
}

TEST(StatsStore, EmptyPickReturnsNull) {
  StatsStore store;
  Rng rng(3);
  EXPECT_EQ(store.PickForRefinement(rng), nullptr);
}

TEST(StatsStore, QueryAccessPromotesPotential) {
  StatsStore store(Strategy::kW2);
  store.Register(MakeIndex("r.a"), ConfigKind::kPotential);
  store.RecordQueryAccess("r.a");
  EXPECT_EQ(store.KindOf("r.a"), ConfigKind::kActual);
  EXPECT_EQ(store.Count(ConfigKind::kPotential), 0u);
}

TEST(StatsStore, OptimalTransitionRemovesFromIndexSpace) {
  OverrideL1DataCacheBytes(8 * 64);
  StatsStore store(Strategy::kW1);
  auto idx = MakeIndex("r.a", 640);
  store.Register(idx, ConfigKind::kActual);
  Rng rng(4);
  CrackConfig cfg;
  while (!idx->IsOptimal()) idx->RefineAtRandomPivot(rng, cfg);
  EXPECT_TRUE(store.UpdateAfterRefinement("r.a"));
  EXPECT_EQ(store.KindOf("r.a"), ConfigKind::kOptimal);
  EXPECT_EQ(store.PickForRefinement(rng), nullptr);
  OverrideL1DataCacheBytes(0);
}

TEST(StatsStore, BudgetEvictsLeastFrequentlyUsed) {
  // Each 1000-row index is 16 KB; budget of 40 KB holds two.
  StatsStore store(Strategy::kW4, 40 * 1024);
  auto hot = MakeIndex("hot", 1000, 1);
  auto cold = MakeIndex("cold", 1000, 2);
  ASSERT_TRUE(store.Register(hot, ConfigKind::kActual));
  ASSERT_TRUE(store.Register(cold, ConfigKind::kActual));
  hot->column()->SelectRange(1, 100);  // hot has accesses, cold has none
  std::vector<std::string> evicted;
  ASSERT_TRUE(store.Register(MakeIndex("new", 1000, 3), ConfigKind::kActual,
                             &evicted));
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], "cold");
  EXPECT_TRUE(store.Contains("hot"));
  EXPECT_FALSE(store.Contains("cold"));
}

TEST(StatsStore, OversizedIndexRejected) {
  StatsStore store(Strategy::kW4, 1024);  // 1 KB budget
  std::vector<std::string> evicted;
  EXPECT_FALSE(
      store.Register(MakeIndex("huge", 100000), ConfigKind::kActual,
                     &evicted));
  EXPECT_FALSE(store.Contains("huge"));
}

TEST(StatsStore, RemoveForgetsIndex) {
  StatsStore store;
  store.Register(MakeIndex("r.a"), ConfigKind::kActual);
  const size_t bytes = store.TotalBytes();
  EXPECT_GT(bytes, 0u);
  store.Remove("r.a");
  EXPECT_FALSE(store.Contains("r.a"));
  EXPECT_EQ(store.TotalBytes(), 0u);
}

TEST(StatsStore, TotalPiecesAggregates) {
  StatsStore store;
  auto a = MakeIndex("a");
  auto b = MakeIndex("b");
  store.Register(a, ConfigKind::kActual);
  store.Register(b, ConfigKind::kActual);
  a->column()->SelectRange(10, 20);
  EXPECT_EQ(store.TotalPieces(), a->NumPieces() + b->NumPieces());
}

// --- CPU monitors ---------------------------------------------------------

TEST(SlotCpuMonitor, AccountsBusySlots) {
  SlotCpuMonitor mon(8, 0.0);
  EXPECT_EQ(mon.MeasureIdleCores(), 8u);
  mon.Acquire(3);
  EXPECT_EQ(mon.MeasureIdleCores(), 5u);
  {
    SlotLease lease(&mon, 5);
    EXPECT_EQ(mon.MeasureIdleCores(), 0u);
  }
  EXPECT_EQ(mon.MeasureIdleCores(), 5u);
  mon.Release(3);
  EXPECT_EQ(mon.MeasureIdleCores(), 8u);
}

TEST(SlotCpuMonitor, OversubscriptionClampsToZero) {
  SlotCpuMonitor mon(2, 0.0);
  mon.Acquire(5);
  EXPECT_EQ(mon.MeasureIdleCores(), 0u);
  mon.Release(5);
}

TEST(ProcStatCpuMonitor, ReturnsPlausibleValues) {
  ProcStatCpuMonitor mon(0.05);
  const size_t idle = mon.MeasureIdleCores();
  EXPECT_LE(idle, mon.TotalCores());
  EXPECT_GT(mon.TotalCores(), 0u);
}

// --- HolisticEngine --------------------------------------------------------

TEST(HolisticEngine, RunOneCycleRefinesRegisteredIndex) {
  HolisticConfig cfg;
  cfg.max_workers = 2;
  cfg.refinements_per_worker = 8;
  cfg.monitor_interval_seconds = 0.0;
  HolisticEngine engine(cfg, std::make_unique<SlotCpuMonitor>(4, 0.0));
  auto idx = MakeIndex("r.a", 100000);
  engine.store().Register(idx, ConfigKind::kActual);
  const size_t pieces_before = idx->NumPieces();
  EXPECT_EQ(engine.RunOneCycle(), 2u);
  EXPECT_GT(idx->NumPieces(), pieces_before);
  EXPECT_GT(engine.TotalWorkerCracks(), 0u);
  EXPECT_EQ(engine.Activations().size(), 1u);
}

TEST(HolisticEngine, NoWorkersWhenNoIdleCores) {
  HolisticConfig cfg;
  cfg.monitor_interval_seconds = 0.0;
  auto monitor = std::make_unique<SlotCpuMonitor>(4, 0.0);
  auto* mon = monitor.get();
  HolisticEngine engine(cfg, std::move(monitor));
  engine.store().Register(MakeIndex("r.a"), ConfigKind::kActual);
  mon->Acquire(4);
  EXPECT_EQ(engine.RunOneCycle(), 0u);
  mon->Release(4);
}

TEST(HolisticEngine, NoWorkersWhenIndexSpaceEmpty) {
  HolisticConfig cfg;
  cfg.monitor_interval_seconds = 0.0;
  HolisticEngine engine(cfg, std::make_unique<SlotCpuMonitor>(8, 0.0));
  EXPECT_EQ(engine.RunOneCycle(), 0u);
  EXPECT_TRUE(engine.Activations().empty());
}

TEST(HolisticEngine, WorkerTeamsRespectThreadBudget) {
  HolisticConfig cfg;
  cfg.max_workers = 8;
  cfg.threads_per_worker = 2;
  cfg.monitor_interval_seconds = 0.0;
  HolisticEngine engine(cfg, std::make_unique<SlotCpuMonitor>(6, 0.0));
  engine.store().Register(MakeIndex("r.a"), ConfigKind::kActual);
  // 6 idle contexts / 2 threads per worker -> 3 workers.
  EXPECT_EQ(engine.RunOneCycle(), 3u);
}

TEST(HolisticEngine, StartStopLifecycle) {
  HolisticConfig cfg;
  cfg.monitor_interval_seconds = 0.001;
  HolisticEngine engine(cfg, std::make_unique<SlotCpuMonitor>(4, 0.001));
  auto idx = MakeIndex("r.a", 200000);
  engine.store().Register(idx, ConfigKind::kActual);
  engine.Start();
  EXPECT_TRUE(engine.IsRunning());
  engine.Start();  // idempotent
  EXPECT_TRUE(
      WaitForProgress([&] { return engine.TotalWorkerCracks() > 0; }));
  engine.Stop();
  EXPECT_FALSE(engine.IsRunning());
  engine.Stop();  // idempotent
  EXPECT_GT(engine.TotalWorkerCracks(), 0u);
  EXPECT_TRUE(idx->column()->CheckInvariants());
}

TEST(HolisticEngine, StartStopRepeatedlyStaysConsistent) {
  // A 1-element "L1" makes the optimal state unreachable in this test, so
  // every round is guaranteed to have refinement work left.
  OverrideL1DataCacheBytes(8);
  HolisticConfig cfg;
  cfg.monitor_interval_seconds = 0.0005;
  HolisticEngine engine(cfg, std::make_unique<SlotCpuMonitor>(4, 0.0005));
  auto idx = MakeIndex("r.a", 400000);
  engine.store().Register(idx, ConfigKind::kActual);
  for (int round = 0; round < 5; ++round) {
    const uint64_t before = engine.TotalRefinementSteps();
    engine.Start();
    engine.Start();  // repeated Start must be a no-op, not a second thread
    EXPECT_TRUE(engine.IsRunning());
    EXPECT_TRUE(WaitForProgress(
        [&] { return engine.TotalRefinementSteps() > before; }));
    engine.Stop();
    engine.Stop();  // repeated Stop must be a no-op
    EXPECT_FALSE(engine.IsRunning());
  }
  EXPECT_TRUE(idx->column()->CheckInvariants());
  OverrideL1DataCacheBytes(0);
}

TEST(HolisticEngine, StopJoinsInFlightWorkers) {
  // Stop() while workers are mid-refinement must wait for the cycle, not
  // abandon threads; immediately after Stop() no further steps may land.
  HolisticConfig cfg;
  cfg.max_workers = 4;
  cfg.refinements_per_worker = 64;
  cfg.monitor_interval_seconds = 0.0;
  HolisticEngine engine(cfg, std::make_unique<SlotCpuMonitor>(8, 0.0));
  auto idx = MakeIndex("r.a", 500000);
  engine.store().Register(idx, ConfigKind::kActual);
  engine.Start();
  // Stop as soon as the first workers are provably in flight.
  EXPECT_TRUE(
      WaitForProgress([&] { return engine.TotalRefinementSteps() > 0; }));
  engine.Stop();
  EXPECT_FALSE(engine.IsRunning());
  const uint64_t steps_at_stop = engine.TotalRefinementSteps();
  const uint64_t cracks_at_stop = engine.TotalWorkerCracks();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(engine.TotalRefinementSteps(), steps_at_stop);
  EXPECT_EQ(engine.TotalWorkerCracks(), cracks_at_stop);
  EXPECT_TRUE(idx->column()->CheckInvariants());
}

TEST(HolisticEngine, DestructorStopsRunningEngine) {
  auto idx = MakeIndex("r.a", 200000);
  {
    HolisticConfig cfg;
    cfg.monitor_interval_seconds = 0.0005;
    HolisticEngine engine(cfg, std::make_unique<SlotCpuMonitor>(4, 0.0005));
    engine.store().Register(idx, ConfigKind::kActual);
    engine.Start();
    EXPECT_TRUE(
        WaitForProgress([&] { return engine.TotalRefinementSteps() > 0; }));
    // No Stop(): ~HolisticEngine must join the tuning thread itself.
  }
  EXPECT_TRUE(idx->column()->CheckInvariants());
}

TEST(HolisticEngine, ActivatesFloorIdleOverZWorkers) {
  // One deterministic cycle per (idle count, z): the engine must activate
  // exactly min(max_workers, floor(idle / z)) workers (§4.2).
  for (const size_t z : {size_t{1}, size_t{2}, size_t{3}}) {
    for (size_t idle = 0; idle <= 8; ++idle) {
      HolisticConfig cfg;
      cfg.max_workers = 4;
      cfg.threads_per_worker = z;
      cfg.refinements_per_worker = 2;
      cfg.monitor_interval_seconds = 0.0;
      auto monitor = std::make_unique<SlotCpuMonitor>(8, 0.0);
      monitor->Acquire(8 - idle);
      HolisticEngine engine(cfg, std::move(monitor));
      engine.store().Register(MakeIndex("r.a", 4000), ConfigKind::kActual);
      const size_t expected = std::min<size_t>(cfg.max_workers, idle / z);
      EXPECT_EQ(engine.RunOneCycle(), expected)
          << "idle=" << idle << " z=" << z;
      if (expected == 0) {
        EXPECT_TRUE(engine.Activations().empty());
      } else {
        ASSERT_EQ(engine.Activations().size(), 1u);
        EXPECT_EQ(engine.Activations()[0].workers, expected);
      }
    }
  }
}

TEST(HolisticEngine, RefinesUntilOptimalAndRetires) {
  OverrideL1DataCacheBytes(8 * 256);
  HolisticConfig cfg;
  cfg.max_workers = 4;
  cfg.refinements_per_worker = 16;
  cfg.monitor_interval_seconds = 0.0;
  HolisticEngine engine(cfg, std::make_unique<SlotCpuMonitor>(8, 0.0));
  auto idx = MakeIndex("r.a", 20000);
  engine.store().Register(idx, ConfigKind::kActual);
  EXPECT_TRUE(DriveUntil(
      engine,
      [&] { return engine.store().Count(ConfigKind::kOptimal) > 0; },
      /*max_cycles=*/200));
  EXPECT_EQ(engine.store().Count(ConfigKind::kOptimal), 1u);
  EXPECT_TRUE(idx->IsOptimal());
  EXPECT_TRUE(idx->column()->CheckInvariants());
  OverrideL1DataCacheBytes(0);
}

}  // namespace
}  // namespace holix
