/// Cross-module integration: every execution mode must produce the same
/// result checksums on every workload pattern (the invariant behind every
/// figure in the paper — systems differ in speed, never in answers).

#include <gtest/gtest.h>

#include <tuple>

#include "engine/database.h"
#include "harness/runner.h"
#include "workload/workload.h"

namespace holix {
namespace {

struct Case {
  ExecMode mode;
  QueryPattern pattern;
};

class ModePatternTest
    : public ::testing::TestWithParam<std::tuple<ExecMode, QueryPattern>> {};

TEST_P(ModePatternTest, ChecksumMatchesScanReference) {
  const auto [mode, pattern] = GetParam();
  const size_t rows = 60000;
  const int64_t domain = 1 << 20;
  const size_t attrs = 3;

  WorkloadSpec spec;
  spec.num_queries = 40;
  spec.num_attributes = attrs;
  spec.domain = domain;
  spec.pattern = pattern;
  spec.selectivity = 0.01;
  spec.seed = 4242;
  const auto queries = GenerateWorkload(spec);
  const auto names = MakeAttributeNames(attrs);

  auto run = [&](ExecMode m) {
    DatabaseOptions opts;
    opts.mode = m;
    opts.user_threads = 2;
    opts.total_cores = 6;
    opts.online_observation_window = 10;
    Database db(opts);
    LoadUniformTable(db, "r", attrs, rows, domain, 99);
    return RunWorkload(db, "r", names, queries).result_checksum;
  };

  EXPECT_EQ(run(mode), run(ExecMode::kScan))
      << ExecModeName(mode) << " on " << QueryPatternName(pattern);
}

INSTANTIATE_TEST_SUITE_P(
    AllModesAllPatterns, ModePatternTest,
    ::testing::Combine(
        ::testing::Values(ExecMode::kOffline, ExecMode::kOnline,
                          ExecMode::kAdaptive, ExecMode::kStochastic,
                          ExecMode::kCCGI, ExecMode::kHolistic),
        ::testing::Values(QueryPattern::kRandom, QueryPattern::kSkewed,
                          QueryPattern::kPeriodic, QueryPattern::kSequential,
                          QueryPattern::kSkyServer)),
    [](const auto& info) {
      return std::string(ExecModeName(std::get<0>(info.param))) + "_" +
             QueryPatternName(std::get<1>(info.param));
    });

TEST(Integration, HolisticStrategiesAllAnswerCorrectly) {
  const size_t rows = 60000;
  const int64_t domain = 1 << 20;
  WorkloadSpec spec;
  spec.num_queries = 30;
  spec.num_attributes = 2;
  spec.domain = domain;
  spec.selectivity = 0.01;
  const auto queries = GenerateWorkload(spec);
  const auto names = MakeAttributeNames(2);

  uint64_t reference = 0;
  for (Strategy s : {Strategy::kW1, Strategy::kW2, Strategy::kW3,
                     Strategy::kW4}) {
    DatabaseOptions opts;
    opts.mode = ExecMode::kHolistic;
    opts.user_threads = 2;
    opts.total_cores = 6;
    opts.holistic.strategy = s;
    Database db(opts);
    LoadUniformTable(db, "r", 2, rows, domain, 7);
    const uint64_t checksum =
        RunWorkload(db, "r", names, queries).result_checksum;
    if (s == Strategy::kW1) {
      reference = checksum;
    } else {
      EXPECT_EQ(checksum, reference) << StrategyName(s);
    }
  }
}

TEST(Integration, InterleavedUpdatesAcrossModes) {
  // Replaying the §5.7 op stream under adaptive and holistic must agree
  // on every query result.
  const auto ops = GenerateUpdateWorkload(
      UpdateScenario::kHighFrequencyLowVolume, 60, 1 << 16, 0, 3);
  auto run = [&](ExecMode mode) {
    DatabaseOptions opts;
    opts.mode = mode;
    opts.user_threads = 1;
    opts.total_cores = 3;
    Database db(opts);
    db.LoadColumn("r", "a0", GenerateUniformColumn(30000, 1 << 16, 17));
    std::vector<size_t> counts;
    for (const auto& op : ops) {
      if (op.kind == WorkloadOp::Kind::kQuery) {
        counts.push_back(
            db.CountRange("r", "a0", op.query.low, op.query.high));
      } else if (op.kind == WorkloadOp::Kind::kInsert) {
        db.Insert("r", "a0", op.insert_value);
      }
    }
    return counts;
  };
  EXPECT_EQ(run(ExecMode::kAdaptive), run(ExecMode::kHolistic));
}

}  // namespace
}  // namespace holix
