/// Tests for the observability substrate: striped counters under racing
/// writers, le-inclusive histogram bin edges, gauge semantics, snapshot
/// monotonicity while writers race, trace-ring wraparound, and the text /
/// JSON formatters.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace holix::obs {
namespace {

TEST(Counter, SingleThreadExact) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(Counter, RacingWritersLoseNothing) {
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 200000;
  Counter c;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Inc();
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

TEST(Counter, RacingBulkIncrementsExact) {
  constexpr int kThreads = 6;
  constexpr uint64_t kPerThread = 50000;
  Counter c;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Inc(3);
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(c.Value(), 3 * kThreads * kPerThread);
}

TEST(Gauge, SetAddMax) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0.0);
  g.Set(2.5);
  EXPECT_EQ(g.Value(), 2.5);
  g.Add(1.25);
  EXPECT_EQ(g.Value(), 3.75);
  g.Add(-3.75);
  EXPECT_EQ(g.Value(), 0.0);
  g.Max(7.0);
  EXPECT_EQ(g.Value(), 7.0);
  g.Max(3.0);  // lower: no-op
  EXPECT_EQ(g.Value(), 7.0);
  g.Set(-1.0);  // Set always wins
  EXPECT_EQ(g.Value(), -1.0);
}

TEST(Gauge, RacingAddsBalanceToZero) {
  Gauge g;
  constexpr int kThreads = 8;
  constexpr int kRounds = 20000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&g] {
      for (int i = 0; i < kRounds; ++i) {
        g.Add(1.0);
        g.Add(-1.0);
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(g.Value(), 0.0);
}

TEST(Histogram, BinEdgesAreLeInclusive) {
  Histogram h({1.0, 2.0, 4.0});
  // Prometheus `le` semantics: a value equal to a bound lands in that
  // bound's bucket, strictly above it in the next.
  h.Observe(1.0);   // bin 0
  h.Observe(0.5);   // bin 0
  h.Observe(1.5);   // bin 1
  h.Observe(2.0);   // bin 1
  h.Observe(4.0);   // bin 2
  h.Observe(4.001); // overflow
  h.Observe(100.0); // overflow
  EXPECT_EQ(h.BinCount(0), 2u);
  EXPECT_EQ(h.BinCount(1), 2u);
  EXPECT_EQ(h.BinCount(2), 1u);
  EXPECT_EQ(h.BinCount(3), 2u);
  EXPECT_DOUBLE_EQ(h.Sum(), 1.0 + 0.5 + 1.5 + 2.0 + 4.0 + 4.001 + 100.0);
}

TEST(Histogram, RacingObservationsLoseNothing) {
  Histogram h({10.0, 20.0});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Observe(static_cast<double>(t * 10));  // 0, 10, 20, 30
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(h.BinCount(0), 2u * kPerThread);  // 0 and 10
  EXPECT_EQ(h.BinCount(1), 1u * kPerThread);  // 20
  EXPECT_EQ(h.BinCount(2), 1u * kPerThread);  // 30 overflows
}

TEST(Registry, SameNameSameSeries) {
  auto& reg = MetricsRegistry::Global();
  Counter& a = reg.GetCounter("test_registry_same_series");
  Counter& b = reg.GetCounter("test_registry_same_series");
  EXPECT_EQ(&a, &b);
  Gauge& g1 = reg.GetGauge("test_registry_same_gauge");
  Gauge& g2 = reg.GetGauge("test_registry_same_gauge");
  EXPECT_EQ(&g1, &g2);
  Histogram& h1 = reg.GetHistogram("test_registry_same_hist", {1, 2});
  // A different bounds shape on re-registration returns the original.
  Histogram& h2 = reg.GetHistogram("test_registry_same_hist", {5, 6, 7});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(), 2u);
}

TEST(Registry, SnapshotWhileRacingIsMonotone) {
  auto& reg = MetricsRegistry::Global();
  Counter& c = reg.GetCounter("test_snapshot_monotone_total");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) c.Inc();
    });
  }
  uint64_t prev = 0;
  for (int i = 0; i < 200; ++i) {
    const MetricsSnapshot snap = reg.Snapshot();
    const uint64_t v = snap.CounterValue("test_snapshot_monotone_total");
    EXPECT_GE(v, prev);
    prev = v;
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : writers) t.join();
  EXPECT_EQ(reg.Snapshot().CounterValue("test_snapshot_monotone_total"),
            c.Value());
}

TEST(TraceRing, KeepsEverythingBelowCapacity) {
  TraceRing ring(8);
  for (uint64_t i = 0; i < 5; ++i) {
    QueryTrace t;
    t.bytes_scanned = i;
    ring.Push(t);
  }
  std::vector<QueryTrace> out;
  ring.SnapshotInto(&out);
  ASSERT_EQ(out.size(), 5u);
  for (uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(out[i].seq, i);
    EXPECT_EQ(out[i].bytes_scanned, i);
  }
}

TEST(TraceRing, WraparoundKeepsNewestOldestFirst) {
  constexpr size_t kCap = 8;
  TraceRing ring(kCap);
  for (uint64_t i = 0; i < 20; ++i) {
    QueryTrace t;
    t.bytes_scanned = i;
    ring.Push(t);
  }
  std::vector<QueryTrace> out;
  ring.SnapshotInto(&out);
  ASSERT_EQ(out.size(), kCap);
  // The 8 newest entries (12..19), oldest first, with ring-assigned seqs.
  for (size_t i = 0; i < kCap; ++i) {
    EXPECT_EQ(out[i].seq, 20 - kCap + i);
    EXPECT_EQ(out[i].bytes_scanned, 20 - kCap + i);
  }
}

TEST(RecordQueryDone, CountsModeAndSlowQueries) {
  auto& reg = MetricsRegistry::Global();
  const uint64_t slow_before = reg.Snapshot().CounterValue(
      "holix_slow_queries_total");
  const double saved = reg.slow_query_seconds();
  reg.set_slow_query_seconds(0.050);

  QueryTrace fast;
  fast.latency_seconds = 0.001;
  RecordQueryDone(fast, "scan");
  EXPECT_FALSE(fast.slow);

  QueryTrace slow;
  slow.latency_seconds = 0.200;
  RecordQueryDone(slow, "scan");
  EXPECT_TRUE(slow.slow);

  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.CounterValue("holix_slow_queries_total"), slow_before + 1);
  EXPECT_GE(snap.CounterValue("holix_queries_total{mode=\"scan\"}"), 2u);
  // The ring holds both completions, newest last.
  ASSERT_GE(snap.traces.size(), 2u);
  EXPECT_TRUE(snap.traces.back().slow);
  reg.set_slow_query_seconds(saved);
}

TEST(Formatters, PrometheusTextHasSeriesAndBuckets) {
  auto& reg = MetricsRegistry::Global();
  reg.GetCounter("test_prom_counter_total").Inc(7);
  reg.GetGauge("test_prom_gauge").Set(1.5);
  Histogram& h = reg.GetHistogram("test_prom_hist", {1.0, 2.0});
  h.Observe(0.5);
  h.Observe(1.5);
  h.Observe(9.0);
  const std::string text = PrometheusText(reg.Snapshot());
  EXPECT_NE(text.find("test_prom_counter_total 7"), std::string::npos);
  EXPECT_NE(text.find("test_prom_gauge 1.5"), std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_bucket{le=\"2\"} 2"), std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_count 3"), std::string::npos);
}

TEST(Formatters, JsonAndHumanTextAreNonEmpty) {
  auto& reg = MetricsRegistry::Global();
  reg.GetCounter("test_json_counter_total").Inc();
  const MetricsSnapshot snap = reg.Snapshot();
  const std::string json = MetricsJson(snap);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json[json.find_last_not_of('\n')], '}');
  EXPECT_NE(json.find("\"test_json_counter_total\""), std::string::npos);
  EXPECT_FALSE(HumanText(snap).empty());
}

TEST(TraceScope, NestsAndRestores) {
  EXPECT_EQ(CurrentQueryTrace(), nullptr);
  QueryTrace outer, inner;
  {
    TraceScope a(&outer);
    TraceAddBytesScanned(10);
    {
      TraceScope b(&inner);
      TraceAddBytesScanned(5);
      TraceAddPiecesCreated(2);
    }
    TraceAddBytesScanned(1);
  }
  EXPECT_EQ(CurrentQueryTrace(), nullptr);
  EXPECT_EQ(outer.bytes_scanned, 11u);
  EXPECT_EQ(inner.bytes_scanned, 5u);
  EXPECT_EQ(inner.pieces_created, 2u);
  TraceAddBytesScanned(99);  // no active trace: a no-op, not a crash
}

}  // namespace
}  // namespace holix::obs
