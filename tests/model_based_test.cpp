/// Model-based randomized testing: a CrackerColumn driven by a random
/// interleaving of selects, worker refinements, inserts and deletes is
/// checked after every step against a simple reference model (a sorted
/// multiset). This is the strongest single correctness net in the suite —
/// any divergence in cracking, Ripple merging, or boundary maintenance
/// shows up as a count mismatch or invariant violation.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "cracking/cracker_column.h"
#include "engine/database.h"
#include "util/rng.h"
#include "workload/workload.h"

namespace holix {
namespace {

/// Reference model: multiset of values with O(log n) range counts.
class Model {
 public:
  void Insert(int64_t v) { ++counts_[v]; }

  bool Erase(int64_t v) {
    auto it = counts_.find(v);
    if (it == counts_.end()) return false;
    if (--it->second == 0) counts_.erase(it);
    return true;
  }

  size_t CountRange(int64_t lo, int64_t hi) const {
    size_t c = 0;
    for (auto it = counts_.lower_bound(lo);
         it != counts_.end() && it->first < hi; ++it) {
      c += it->second;
    }
    return c;
  }

  /// Any currently present value (for deletes), or nullopt.
  std::optional<int64_t> AnyValue(Rng& rng) const {
    if (counts_.empty()) return std::nullopt;
    auto it = counts_.begin();
    std::advance(it, rng.Below(counts_.size()));
    return it->first;
  }

 private:
  std::map<int64_t, size_t> counts_;
};

class ModelBasedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ModelBasedTest, RandomOpInterleavings) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  const int64_t domain = 1 << 16;
  const size_t n = 5000 + rng.Below(15000);

  Model model;
  std::vector<int64_t> base(n);
  for (auto& v : base) {
    v = static_cast<int64_t>(rng.Below(domain));
    model.Insert(v);
  }
  CrackerColumn<int64_t> col("m", base);
  RowId next_rowid = n;

  for (int step = 0; step < 400; ++step) {
    switch (rng.Below(10)) {
      case 0:
      case 1:
      case 2:
      case 3:
      case 4: {  // range select (50%)
        const int64_t lo = static_cast<int64_t>(rng.Below(domain));
        const int64_t hi =
            lo + 1 + static_cast<int64_t>(rng.Below(domain / 8));
        ASSERT_EQ(col.SelectRange(lo, hi).size(), model.CountRange(lo, hi))
            << "seed " << seed << " step " << step;
        break;
      }
      case 5:
      case 6: {  // worker refinement (20%)
        col.TryRefineAt(static_cast<int64_t>(rng.Below(domain)));
        break;
      }
      case 7:
      case 8: {  // insert (20%)
        const int64_t v = static_cast<int64_t>(rng.Below(domain));
        col.pending().AddInsert(v, next_rowid++);
        model.Insert(v);
        break;
      }
      case 9: {  // delete (10%)
        const auto victim = model.AnyValue(rng);
        if (!victim.has_value()) break;
        // Resolve a matching rowid the way the engine does: unit select.
        const PositionRange r = col.SelectRange(*victim, *victim + 1);
        if (r.empty()) break;  // value only in pending inserts; skip
        RowId rid = 0;
        bool got = false;
        col.ScanRange({r.begin, r.begin + 1}, [&](int64_t, RowId rr) {
          rid = rr;
          got = true;
        });
        if (!got) break;
        col.pending().AddDelete(*victim, rid);
        model.Erase(*victim);
        // Force the merge so the model and column agree immediately.
        col.MergePendingInRange(*victim, *victim + 1);
        break;
      }
    }
    if (step % 97 == 0) {
      ASSERT_TRUE(col.CheckInvariants()) << "seed " << seed << " step "
                                         << step;
    }
  }
  // Final reconciliation: full-domain count and invariants.
  EXPECT_EQ(col.SelectRange(0, domain).size(), model.CountRange(0, domain));
  EXPECT_TRUE(col.CheckInvariants());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelBasedTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

TEST(ProjectSum, MatchesNaiveAcrossModes) {
  const size_t rows = 50000;
  const int64_t domain = 1 << 18;
  const auto a = GenerateUniformColumn(rows, domain, 31);
  const auto b = GenerateUniformColumn(rows, domain, 32);
  int64_t naive = 0;
  for (size_t i = 0; i < rows; ++i) {
    if (a[i] >= 1000 && a[i] < 100000) naive += b[i];
  }
  for (ExecMode mode : {ExecMode::kScan, ExecMode::kOffline,
                        ExecMode::kAdaptive, ExecMode::kHolistic}) {
    DatabaseOptions opts;
    opts.mode = mode;
    opts.user_threads = 2;
    opts.total_cores = 4;
    Database db(opts);
    db.LoadColumn("r", "a", a);
    db.LoadColumn("r", "b", b);
    EXPECT_EQ(db.ProjectSum("r", "a", "b", 1000, 100000), naive)
        << ExecModeName(mode);
    // Repeat: cracked modes must agree after refinement too.
    EXPECT_EQ(db.ProjectSum("r", "a", "b", 1000, 100000), naive)
        << ExecModeName(mode);
  }
}

}  // namespace
}  // namespace holix
