/// \file persist_test.cpp
/// \brief Durability subsystem unit + integration tests: CRC32C known
/// answers, rank-image round trips for the nasty doubles, WAL append/read
/// with LSN ordering and torn-tail/CRC rejection, snapshot + manifest
/// round trips, fault-injected checkpoint failure leaving the previous
/// manifest in force, checkpoint/recover across every exec mode, and
/// index warm-start with bit-identical cracker piece boundaries.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "engine/database.h"
#include "persist/checksum.h"
#include "persist/io_shim.h"
#include "persist/persistence.h"
#include "persist/snapshot.h"
#include "persist/wal.h"
#include "test_support.h"
#include "util/key_traits.h"

namespace holix::persist {
namespace {

constexpr size_t kRows = 20000;
constexpr int64_t kDomain = 1 << 20;

DatabaseOptions ModeOptions(ExecMode mode) {
  DatabaseOptions opts;
  opts.mode = mode;
  opts.user_threads = 2;
  opts.total_cores = 4;
  return opts;
}

PersistOptions DirOptions(const std::filesystem::path& dir) {
  PersistOptions p;
  p.data_dir = dir.string();
  p.fsync = FsyncPolicy::kAlways;
  return p;
}

class PersistTest : public test::TempDirTest {};

// --- Primitives -----------------------------------------------------------

TEST(Checksum, Crc32cKnownAnswer) {
  // The Castagnoli check value (RFC 3720 appendix B.4 et al.).
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
  // Incremental == one-shot.
  const uint32_t head = Crc32c("1234", 4);
  EXPECT_EQ(Crc32c("56789", 5, head), 0xE3069283u);
}

TEST(RankImages, NastyDoublesRoundTripLosslessly) {
  using KT = KeyTraits<double>;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const double values[] = {0.0,  1.5,       -1.5, inf, -inf,
                           1e308, -1e308, 5e-324};
  for (double v : values) {
    const double back = KT::FromRank(KT::ToRank(v));
    EXPECT_EQ(back, v) << v;
    EXPECT_EQ(std::signbit(back), std::signbit(v)) << v;
  }
  // NaN canonicalizes but stays NaN, above +inf in rank order.
  EXPECT_TRUE(std::isnan(KT::FromRank(KT::ToRank(nan))));
  EXPECT_GT(KT::ToRank(nan), KT::ToRank(inf));
  // -0.0 canonicalizes to +0.0: one rank for one equivalence class.
  EXPECT_EQ(KT::ToRank(-0.0), KT::ToRank(0.0));
  // Order preservation across the sign.
  EXPECT_LT(KT::ToRank(-inf), KT::ToRank(-1.5));
  EXPECT_LT(KT::ToRank(-1.5), KT::ToRank(0.0));
  EXPECT_LT(KT::ToRank(0.0), KT::ToRank(1.5));
  EXPECT_LT(KT::ToRank(1.5), KT::ToRank(inf));
}

TEST(Wal, FsyncPolicyParsing) {
  EXPECT_EQ(FsyncPolicyFromString("always"), FsyncPolicy::kAlways);
  EXPECT_EQ(FsyncPolicyFromString("interval"), FsyncPolicy::kInterval);
  EXPECT_EQ(FsyncPolicyFromString("never"), FsyncPolicy::kNever);
  EXPECT_FALSE(FsyncPolicyFromString("bogus").has_value());
}

// --- WAL ------------------------------------------------------------------

TEST_F(PersistTest, WalRoundTripKeepsLsnOrderAndPayloads) {
  const std::string path = TempPath("wal-1.log").string();
  {
    WalWriter w(path, FsyncPolicy::kAlways, /*first_lsn=*/1);
    EXPECT_EQ(w.Append(WalOp::kInsert, "r", "a", ValueType::kInt64, 42, 100),
              1u);
    EXPECT_EQ(w.Append(WalOp::kDelete, "r", "a", ValueType::kInt64, 7, 3), 2u);
    EXPECT_EQ(w.Append(WalOp::kInsert, "s", "b", ValueType::kDouble,
                       KeyTraits<double>::ToRank(-0.0), 101),
              3u);
    EXPECT_EQ(w.next_lsn(), 4u);
  }
  bool torn = true;
  const std::vector<WalRecord> recs = ReadWalFile(path, &torn);
  EXPECT_FALSE(torn);
  ASSERT_EQ(recs.size(), 3u);
  for (size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(recs[i].lsn, i + 1);
  }
  EXPECT_EQ(recs[0].op, WalOp::kInsert);
  EXPECT_EQ(recs[0].table, "r");
  EXPECT_EQ(recs[0].column, "a");
  EXPECT_EQ(recs[0].rank, 42u);
  EXPECT_EQ(recs[0].rowid, 100u);
  EXPECT_EQ(recs[1].op, WalOp::kDelete);
  EXPECT_EQ(recs[2].type, ValueType::kDouble);
  EXPECT_EQ(KeyTraits<double>::FromRank(recs[2].rank), 0.0);
}

TEST_F(PersistTest, WalTornTailIsCutAtTheLastIntactRecord) {
  const std::string path = TempPath("wal-1.log").string();
  {
    WalWriter w(path, FsyncPolicy::kNever, 1);
    for (int i = 0; i < 10; ++i) {
      w.Append(WalOp::kInsert, "r", "a", ValueType::kInt64,
               static_cast<uint64_t>(i), static_cast<RowId>(i));
    }
    w.SyncNow(/*force=*/true);
  }
  // Chop a few bytes off the final record: a crash mid-append.
  const uint64_t size = std::filesystem::file_size(path);
  ASSERT_TRUE(io::TruncateFile(path, size - 3));

  bool torn = false;
  const std::vector<WalRecord> recs = ReadWalFile(path, &torn);
  EXPECT_TRUE(torn);
  ASSERT_EQ(recs.size(), 9u);
  EXPECT_EQ(recs.back().lsn, 9u);
}

TEST_F(PersistTest, WalCorruptRecordIsRejectedByItsCrc) {
  const std::string path = TempPath("wal-1.log").string();
  {
    WalWriter w(path, FsyncPolicy::kNever, 1);
    for (int i = 0; i < 5; ++i) {
      w.Append(WalOp::kInsert, "r", "a", ValueType::kInt64, 1000, 1);
    }
    w.SyncNow(/*force=*/true);
  }
  // Flip one payload byte near the end of the file (inside record 5).
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(-5, std::ios::end);
    char b = 0;
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x5A);
    f.seekp(-5, std::ios::end);
    f.write(&b, 1);
  }
  bool torn = false;
  const std::vector<WalRecord> recs = ReadWalFile(path, &torn);
  EXPECT_TRUE(torn);  // CRC mismatch reads as a torn tail
  EXPECT_EQ(recs.size(), 4u);
}

TEST_F(PersistTest, WalHeaderCorruptionThrows) {
  const std::string path = TempPath("wal-1.log").string();
  {
    WalWriter w(path, FsyncPolicy::kNever, 1);
    w.Append(WalOp::kInsert, "r", "a", ValueType::kInt64, 1, 1);
    w.SyncNow(true);
  }
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(0);
    f.write("X", 1);  // break the magic
  }
  EXPECT_THROW((void)ReadWalFile(path), std::runtime_error);
}

// --- Snapshot + manifest --------------------------------------------------

TEST_F(PersistTest, SnapshotManifestRoundTrip) {
  Database db(ModeOptions(ExecMode::kAdaptive));
  const auto data = test::MakeUniform(kRows, kDomain, 11);
  db.LoadColumn("r", "a", data);
  const ColumnHandle h = db.Resolve("r", "a");
  // Crack a little so pivots and stats are non-trivial.
  (void)db.CountRange(h, 1000, 5000);
  (void)db.CountRange(h, 200000, 400000);

  const DurableDatabaseState st = db.ExportDurableState();
  ASSERT_EQ(st.columns.size(), 1u);
  EXPECT_EQ(st.columns[0].base_ranks.size(), kRows);
  EXPECT_TRUE(st.columns[0].has_cracker);
  EXPECT_FALSE(st.columns[0].pivot_ranks.empty());

  WriteSnapshot(temp_dir().string(), /*epoch=*/1, /*wal_epoch=*/1, st);
  ASSERT_TRUE(HasManifest(temp_dir().string()));

  const Manifest man = ReadManifest(temp_dir().string());
  EXPECT_EQ(man.snapshot_epoch, 1u);
  EXPECT_EQ(man.wal_epoch, 1u);
  EXPECT_EQ(man.next_rowid, st.next_rowid);
  ASSERT_EQ(man.tables.size(), 1u);
  EXPECT_EQ(man.tables[0].name, "r");
  EXPECT_EQ(man.tables[0].base_rows, kRows);

  const DurableDatabaseState back = ReadSnapshot(temp_dir().string(), man);
  ASSERT_EQ(back.columns.size(), 1u);
  EXPECT_EQ(back.columns[0].base_ranks, st.columns[0].base_ranks);
  EXPECT_EQ(back.columns[0].pivot_ranks, st.columns[0].pivot_ranks);
  EXPECT_EQ(back.columns[0].appended, st.columns[0].appended);
  EXPECT_EQ(back.columns[0].deleted_base, st.columns[0].deleted_base);
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(back.columns[0].stats[i], st.columns[0].stats[i]) << i;
  }
}

TEST_F(PersistTest, CorruptColumnFileFailsItsCrcCheck) {
  Database db(ModeOptions(ExecMode::kAdaptive));
  db.LoadColumn("r", "a", test::MakeUniform(1000, kDomain, 5));
  WriteSnapshot(temp_dir().string(), 1, 1, db.ExportDurableState());

  const Manifest man = ReadManifest(temp_dir().string());
  const std::string col_file = ColumnFileName(
      SnapshotDir(temp_dir().string(), 1), "r", "a");
  {
    std::fstream f(col_file, std::ios::in | std::ios::out | std::ios::binary);
    char b = 0;
    f.seekg(-1, std::ios::end);  // flip the last body byte
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0xFF);
    f.seekp(-1, std::ios::end);
    f.write(&b, 1);
  }
  EXPECT_THROW((void)ReadSnapshot(temp_dir().string(), man),
               std::runtime_error);
}

// --- Fault-injected checkpoint --------------------------------------------

TEST_F(PersistTest, FailedCheckpointLeavesThePreviousManifestInForce) {
  const auto data = test::MakeUniform(kRows, kDomain, 21);
  size_t final_count = 0;
  {
    Database db(ModeOptions(ExecMode::kAdaptive));
    db.LoadColumn("r", "a", data);
    PersistenceManager pm(db, DirOptions(temp_dir()));
    pm.Checkpoint();
    const uint64_t good_lsn = pm.last_checkpoint_lsn();

    // Updates after the good checkpoint live in the WAL.
    (void)db.Insert("r", "a", kDomain + 1);
    (void)db.Insert("r", "a", kDomain + 2);

    // The next checkpoint dies on its first rename (a column file or the
    // manifest publish — either way the old manifest must survive).
    ::setenv("HOLIX_FAULT_RENAME_N", "1", 1);
    io::ReloadFaultConfigForTest();
    const uint64_t faults_before = io::InjectedFaultCount();
    EXPECT_THROW((void)pm.Checkpoint(), std::runtime_error);
    EXPECT_GT(io::InjectedFaultCount(), faults_before);
    ::unsetenv("HOLIX_FAULT_RENAME_N");
    io::ReloadFaultConfigForTest();

    EXPECT_EQ(pm.last_checkpoint_lsn(), good_lsn);
    (void)db.Insert("r", "a", kDomain + 3);
    final_count = db.CountRange("r", "a", kDomain, kDomain + 10);
    EXPECT_EQ(final_count, 3u);
  }
  // Recovery proceeds from the previous manifest + full WAL replay — the
  // half-written checkpoint is invisible.
  Database db2(ModeOptions(ExecMode::kAdaptive));
  PersistenceManager pm2(db2, DirOptions(temp_dir()));
  EXPECT_TRUE(pm2.recovered());
  EXPECT_EQ(db2.CountRange("r", "a", kDomain, kDomain + 10), final_count);
  EXPECT_EQ(db2.CountRange("r", "a", 0, kDomain),
            test::NaiveCount(data, 0, kDomain));
}

// --- Full checkpoint / recover cycles -------------------------------------

TEST_F(PersistTest, WalTailReplaysOnTopOfTheSnapshot) {
  const auto data = test::MakeUniform(kRows, kDomain, 31);
  uint64_t ckpt_lsn = 0;
  size_t count_low = 0, count_probe = 0;
  {
    Database db(ModeOptions(ExecMode::kAdaptive));
    db.LoadColumn("r", "a", data);
    PersistenceManager pm(db, DirOptions(temp_dir()));
    (void)db.CountRange("r", "a", 1000, 9000);
    (void)db.Insert("r", "a", kDomain + 5);
    ckpt_lsn = pm.Checkpoint();

    // Post-checkpoint tail: inserts, a delete of a base value, queries.
    (void)db.Insert("r", "a", kDomain + 6);
    (void)db.Insert("r", "a", 777);
    EXPECT_TRUE(db.Delete("r", "a", data[0]));
    (void)db.CountRange("r", "a", 500000, 700000);
    count_low = db.CountRange("r", "a", 0, 1000);
    count_probe = db.CountRange("r", "a", kDomain, kDomain + 100);
    EXPECT_EQ(count_probe, 2u);
  }
  Database db2(ModeOptions(ExecMode::kAdaptive));
  PersistenceManager pm2(db2, DirOptions(temp_dir()));
  ASSERT_TRUE(pm2.recovered());
  EXPECT_GT(pm2.recovered_lsn(), ckpt_lsn);  // the tail actually replayed
  EXPECT_EQ(db2.CountRange("r", "a", 0, 1000), count_low);
  EXPECT_EQ(db2.CountRange("r", "a", kDomain, kDomain + 100), count_probe);
  EXPECT_EQ(db2.CountRange("r", "a", 777, 778),
            test::NaiveCount(data, 777, 778) + 1);
}

TEST_F(PersistTest, WarmStartReproducesBitIdenticalPieceBoundaries) {
  const auto data = test::MakeUniform(kRows, kDomain, 41);
  DurableDatabaseState before;
  {
    Database db(ModeOptions(ExecMode::kAdaptive));
    db.LoadColumn("r", "a", data);
    PersistenceManager pm(db, DirOptions(temp_dir()));
    const ColumnHandle h = db.Resolve("r", "a");
    // A query stream that cracks across the domain, plus merged updates.
    for (int i = 0; i < 50; ++i) {
      (void)db.CountRange(h, (i * 7919) % kDomain,
                          ((i * 7919) % kDomain) + 2048);
    }
    (void)db.Insert("r", "a", 4242);
    EXPECT_TRUE(db.Delete("r", "a", data[10]));
    pm.Checkpoint();
    // The checkpoint force-merged all pending updates, so this export is
    // exactly the achieved-index state recovery must reproduce.
    before = db.ExportDurableState();
  }
  Database db2(ModeOptions(ExecMode::kAdaptive));
  PersistenceManager pm2(db2, DirOptions(temp_dir()));
  ASSERT_TRUE(pm2.recovered());
  const DurableDatabaseState after = db2.ExportDurableState();

  ASSERT_EQ(after.columns.size(), before.columns.size());
  const DurableColumnState& b = before.columns[0];
  const DurableColumnState& a = after.columns[0];
  EXPECT_EQ(a.base_ranks, b.base_ranks);
  EXPECT_EQ(a.appended, b.appended);
  EXPECT_EQ(a.deleted_base, b.deleted_base);
  ASSERT_TRUE(a.has_cracker);
  // The tentpole claim: the restarted node resumes at the achieved
  // C_actual — same pivots, bit for bit.
  EXPECT_EQ(a.pivot_ranks, b.pivot_ranks);
  // Life counters survive (restored after recovery's own re-cracks, so
  // the merge/crack work recovery does is not double-counted).
  EXPECT_EQ(a.stats[0], b.stats[0]);  // accesses
  EXPECT_EQ(a.stats[2], b.stats[2]);  // query cracks
  EXPECT_EQ(a.stats[5], b.stats[5]);  // merged inserts
  EXPECT_EQ(a.stats[6], b.stats[6]);  // merged deletes
  EXPECT_EQ(after.next_rowid, before.next_rowid);
}

TEST_F(PersistTest, DoubleColumnsRecoverNaNNegZeroAndInfinities) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> data = {1.5, -2.25, 0.0, -0.0, inf, -inf, nan, nan,
                              3.75, 1e308};
  size_t nan_count = 0, neg_count = 0, fin_count = 0;
  {
    Database db(ModeOptions(ExecMode::kAdaptive));
    db.LoadColumn<double>("r", "d", data);
    PersistenceManager pm(db, DirOptions(temp_dir()));
    (void)db.InsertF64("r", "d", -0.0);
    (void)db.InsertF64("r", "d", nan);
    pm.Checkpoint();
    (void)db.InsertF64("r", "d", inf);  // WAL tail
    nan_count = db.CountRangeF64("r", "d", nan, nan);
    neg_count = db.CountRangeF64("r", "d", -inf, 0.0);
    fin_count = db.CountRangeF64("r", "d", 0.0, inf);
    EXPECT_EQ(nan_count, 3u);
  }
  Database db2(ModeOptions(ExecMode::kAdaptive));
  PersistenceManager pm2(db2, DirOptions(temp_dir()));
  ASSERT_TRUE(pm2.recovered());
  EXPECT_EQ(db2.CountRangeF64("r", "d", nan, nan), nan_count);
  EXPECT_EQ(db2.CountRangeF64("r", "d", -inf, 0.0), neg_count);
  EXPECT_EQ(db2.CountRangeF64("r", "d", 0.0, inf), fin_count);
  // -0.0 rows answer a [0.0, x) probe (the canonical zero class).
  EXPECT_EQ(db2.CountRangeF64("r", "d", 0.0, 1.0), 3u);
}

/// Checkpoint → recover must be checksum-equal to the uninterrupted oracle
/// in every exec mode. Modes without update support run a read-only
/// workload (their executors reject Insert/Delete by design); the cracking
/// modes exercise updates too.
class PersistAllModesTest
    : public test::TempDirTest,
      public ::testing::WithParamInterface<ExecMode> {};

TEST_P(PersistAllModesTest, CheckpointRecoverMatchesOracleCounts) {
  const ExecMode mode = GetParam();
  const bool cracking_mode =
      mode == ExecMode::kAdaptive || mode == ExecMode::kStochastic ||
      mode == ExecMode::kCCGI || mode == ExecMode::kHolistic;
  const auto data = test::MakeUniform(kRows, kDomain, 51);

  std::vector<std::pair<int64_t, int64_t>> probes;
  for (int i = 0; i < 12; ++i) {
    const int64_t lo = (i * 131071) % kDomain;
    probes.emplace_back(lo, lo + 4096);
  }
  probes.emplace_back(0, kDomain + 100);

  std::vector<size_t> oracle;
  {
    Database db(ModeOptions(mode));
    db.LoadColumn("r", "a", data);
    PersistenceManager pm(db, DirOptions(temp_dir()));
    for (const auto& [lo, hi] : probes) (void)db.CountRange("r", "a", lo, hi);
    if (cracking_mode) {
      (void)db.Insert("r", "a", kDomain + 1);
      EXPECT_TRUE(db.Delete("r", "a", data[3]));
    }
    pm.Checkpoint();
    if (cracking_mode) (void)db.Insert("r", "a", kDomain + 2);  // WAL tail
    for (const auto& [lo, hi] : probes) {
      oracle.push_back(db.CountRange("r", "a", lo, hi));
    }
  }

  Database db2(ModeOptions(mode));
  PersistenceManager pm2(db2, DirOptions(temp_dir()));
  ASSERT_TRUE(pm2.recovered());
  for (size_t i = 0; i < probes.size(); ++i) {
    EXPECT_EQ(db2.CountRange("r", "a", probes[i].first, probes[i].second),
              oracle[i])
        << "mode " << static_cast<int>(mode) << " probe " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, PersistAllModesTest,
                         ::testing::Values(ExecMode::kScan, ExecMode::kOffline,
                                           ExecMode::kOnline,
                                           ExecMode::kAdaptive,
                                           ExecMode::kStochastic,
                                           ExecMode::kCCGI,
                                           ExecMode::kHolistic));

}  // namespace
}  // namespace holix::persist
