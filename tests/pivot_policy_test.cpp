/// Tests for the §4.2 pivot-policy ablation machinery: extreme-piece pivot
/// suggestion and policy-driven refinement.

#include <gtest/gtest.h>

#include <algorithm>

#include "holistic/adaptive_index.h"
#include "holistic/pivot_policy.h"
#include "util/cache_info.h"
#include "test_support.h"
#include "util/rng.h"

namespace holix {
namespace {

using test::MakeUniform;

TEST(PivotPolicy, Names) {
  EXPECT_STREQ(PivotPolicyName(PivotPolicy::kRandom), "random");
  EXPECT_STREQ(PivotPolicyName(PivotPolicy::kBiggestPiece), "biggest-piece");
  EXPECT_STREQ(PivotPolicyName(PivotPolicy::kSmallestPiece),
               "smallest-piece");
}

TEST(PivotPolicy, SuggestsValueInsideBiggestPiece) {
  const auto base = MakeUniform(100000, 1 << 20, 1);
  CrackerColumn<int64_t> col("a", base);
  // Crack off a small prefix: pieces are [0 .. cut) and [cut .. end),
  // the second much bigger.
  col.CrackAtBlocking(1 << 10);
  Rng rng(2);
  const auto pivot = col.SuggestExtremePiecePivot(/*biggest=*/true, rng);
  ASSERT_TRUE(pivot.has_value());
  EXPECT_GE(*pivot, 1 << 10);  // value from the big upper piece
}

TEST(PivotPolicy, SuggestsValueInsideSmallestPiece) {
  const auto base = MakeUniform(100000, 1 << 20, 3);
  CrackerColumn<int64_t> col("a", base);
  // Carve out a small middle piece [v, v + 2^12).
  col.SelectRange(500000, 500000 + (1 << 12));
  Rng rng(4);
  const auto pivot = col.SuggestExtremePiecePivot(/*biggest=*/false, rng,
                                                  /*min_piece=*/2);
  ASSERT_TRUE(pivot.has_value());
  EXPECT_GE(*pivot, 500000);
  EXPECT_LT(*pivot, 500000 + (1 << 12));
}

TEST(PivotPolicy, RespectsMinPieceFilter) {
  std::vector<int64_t> base(100);
  for (size_t i = 0; i < base.size(); ++i) base[i] = static_cast<int64_t>(i);
  CrackerColumn<int64_t> col("a", base);
  Rng rng(5);
  // With min_piece larger than the column, nothing qualifies.
  EXPECT_FALSE(col.SuggestExtremePiecePivot(true, rng, 1000).has_value());
}

TEST(PivotPolicy, BiggestPieceRefinementBalancesFaster) {
  // Property from the paper's discussion: targeting the biggest piece
  // maximally reduces the maximum piece size per step.
  const auto base = MakeUniform(200000, 1 << 20, 6);
  CrackerColumn<int64_t> col_big("big", base);
  CrackerColumn<int64_t> col_rand("rand", base);
  auto idx_big = std::make_shared<CrackerAdaptiveIndex<int64_t>>(
      std::shared_ptr<CrackerColumn<int64_t>>(&col_big,
                                              [](CrackerColumn<int64_t>*) {}));
  auto idx_rand = std::make_shared<CrackerAdaptiveIndex<int64_t>>(
      std::shared_ptr<CrackerColumn<int64_t>>(&col_rand,
                                              [](CrackerColumn<int64_t>*) {}));
  Rng rng_a(7), rng_b(7);
  CrackConfig cfg;
  for (int i = 0; i < 40; ++i) {
    idx_big->RefineWithPolicy(PivotPolicy::kBiggestPiece, rng_a, cfg);
    idx_rand->RefineWithPolicy(PivotPolicy::kRandom, rng_b, cfg);
  }
  const auto sizes_big = col_big.PieceSizes();
  const auto sizes_rand = col_rand.PieceSizes();
  const size_t max_big =
      *std::max_element(sizes_big.begin(), sizes_big.end());
  const size_t max_rand =
      *std::max_element(sizes_rand.begin(), sizes_rand.end());
  EXPECT_LE(max_big, max_rand);
  EXPECT_TRUE(col_big.CheckInvariants());
  EXPECT_TRUE(col_rand.CheckInvariants());
}

TEST(PivotPolicy, AllPoliciesConvergeToOptimal) {
  OverrideL1DataCacheBytes(8 * 128);
  for (PivotPolicy p : {PivotPolicy::kRandom, PivotPolicy::kBiggestPiece,
                        PivotPolicy::kSmallestPiece}) {
    auto col = std::make_shared<CrackerColumn<int64_t>>(
        "a", MakeUniform(20000, 1 << 20, 8));
    CrackerAdaptiveIndex<int64_t> idx(col);
    Rng rng(9);
    CrackConfig cfg;
    int steps = 0;
    while (!idx.IsOptimal() && steps < 20000) {
      idx.RefineWithPolicy(p, rng, cfg);
      ++steps;
    }
    EXPECT_TRUE(idx.IsOptimal()) << PivotPolicyName(p);
    EXPECT_TRUE(col->CheckInvariants()) << PivotPolicyName(p);
  }
  OverrideL1DataCacheBytes(0);
}

}  // namespace
}  // namespace holix
